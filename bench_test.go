// Package repro_test benchmarks every table and figure of the CLEAR paper
// end-to-end (see DESIGN.md §4 for the experiment index). Each benchmark
// runs the same code path as the cmd/ binaries on a reduced population so
// the whole suite completes in minutes on one core; the binaries regenerate
// the full-size tables.
package repro_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/wemac"
)

// benchPopulation holds the shared reduced dataset (generation + feature
// extraction are excluded from every benchmark's timing).
var (
	benchOnce  sync.Once
	benchUsers []*wemac.UserMaps
	benchCfg   core.Config
)

func benchSetup(b *testing.B) ([]*wemac.UserMaps, core.Config) {
	b.Helper()
	benchOnce.Do(func() {
		ds := wemac.Generate(wemac.Config{
			ArchetypeSizes:     []int{3, 3, 2, 2},
			TrialsPerVolunteer: 6,
			TrialSec:           30,
			Seed:               17,
		})
		ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 4}
		users, err := wemac.ExtractAll(ds, ecfg)
		if err != nil {
			panic(err)
		}
		benchUsers = users
		benchCfg = core.Config{
			K: 4, SubK: 2,
			Extractor: ecfg,
			Model: nn.ModelConfig{
				Conv1: 2, Conv2: 4,
				K1H: 5, K1W: 3, K2H: 3, K2W: 3, Pool1: 4, Pool2: 3,
				LSTMHidden: 12, Dropout: 0.1, Classes: 2, Seed: 1,
			},
			Train:        nn.TrainConfig{Epochs: 6, BatchSize: 16, LR: 3e-3, GradClip: 5, ValFrac: 0.15, Patience: 4, Seed: 1},
			FineTune:     nn.TrainConfig{Epochs: 4, BatchSize: 8, LR: 1e-3, GradClip: 5, Seed: 1},
			Cluster:      cluster.Options{Restarts: 4, MaxIter: 50},
			RefineRounds: 3, RefineSampleFrac: 0.8, Seed: 1,
		}
	})
	return benchUsers, benchCfg
}

// benchLOSO caches one LOSO run for the benchmarks that consume it
// (Table I CLEAR rows and Table II) — mirroring how the binaries share the
// run via -cache.
var (
	benchLOSOOnce sync.Once
	benchLOSORun  *eval.LOSORun
)

func benchLOSOSetup(b *testing.B) *eval.LOSORun {
	b.Helper()
	users, cfg := benchSetup(b)
	benchLOSOOnce.Do(func() {
		run, err := eval.RunLOSO(users, cfg, 0.1, nil)
		if err != nil {
			panic(err)
		}
		benchLOSORun = run
	})
	return benchLOSORun
}

// BenchmarkFig2ModelForward measures one inference of the paper-size
// CNN-LSTM on a 123×8 feature map (Fig. 2).
func BenchmarkFig2ModelForward(b *testing.B) {
	cfg := nn.PaperModelConfig(8)
	m := nn.NewCNNLSTM(cfg)
	x := tensor.Ones(cfg.InH, cfg.InW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

// BenchmarkTable1GeneralModel regenerates the "General Model" row (E1).
func BenchmarkTable1GeneralModel(b *testing.B) {
	users, cfg := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := eval.RunGeneralModel(users, cfg, 5, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(agg.MeanAcc, "acc%")
	}
}

// BenchmarkTable1CLValidation regenerates the "CL validation" row (E2).
func BenchmarkTable1CLValidation(b *testing.B) {
	users, cfg := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunCL(users, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CL.MeanAcc, "acc%")
	}
}

// BenchmarkTable1RTCL regenerates the "RT CL" robustness row (E3); the RT
// evaluation comes from the same intra-cluster LOSO pass.
func BenchmarkTable1RTCL(b *testing.B) {
	users, cfg := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunCL(users, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RT.MeanAcc, "acc%")
	}
}

// BenchmarkTable1CLEARLoso measures the expensive shared step of the CLEAR
// rows: the full LOSO loop (recluster + 4 model trainings per fold) (E4-E6
// setup).
func BenchmarkTable1CLEARLoso(b *testing.B) {
	users, cfg := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunLOSO(users, cfg, 0.1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1CLEARNoFT regenerates "CLEAR w/o FT" (E4) from a cached
// LOSO run.
func BenchmarkTable1CLEARNoFT(b *testing.B) {
	run := benchLOSOSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.EvaluateCLEAR(run, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithoutFT.MeanAcc, "acc%")
	}
}

// BenchmarkTable1RTCLEAR regenerates "RT CLEAR" (E5).
func BenchmarkTable1RTCLEAR(b *testing.B) {
	run := benchLOSOSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.EvaluateCLEAR(run, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RT.MeanAcc, "acc%")
	}
}

// BenchmarkTable1CLEARFT regenerates "CLEAR w FT" (E6); fine-tuning runs
// inside the measured loop.
func BenchmarkTable1CLEARFT(b *testing.B) {
	run := benchLOSOSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.EvaluateCLEAR(run, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithFT.MeanAcc, "acc%")
	}
}

// BenchmarkTable2EdgeAccuracy regenerates the Table II upper block (E7):
// per-device deployment accuracy without fine-tuning.
func BenchmarkTable2EdgeAccuracy(b *testing.B) {
	run := benchLOSOSetup(b)
	devices := []edge.Device{edge.GPU(), edge.CoralTPU(), edge.PiNCS2()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2, err := eval.RunTable2(run, devices, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t2.Results[1].NoFT.MeanAcc, "tpu_acc%")
	}
}

// BenchmarkTable2EdgeFineTune regenerates the Table II lower accuracy block
// (E8): on-device fine-tuning at device precision.
func BenchmarkTable2EdgeFineTune(b *testing.B) {
	run := benchLOSOSetup(b)
	devices := []edge.Device{edge.CoralTPU(), edge.PiNCS2()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2, err := eval.RunTable2(run, devices, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t2.Results[0].FT.MeanAcc, "tpu_ft_acc%")
	}
}

// BenchmarkTable2EdgeCost regenerates the Table II MTC/MPC rows (E9): the
// analytic latency/power model over the deployed model's op counts.
func BenchmarkTable2EdgeCost(b *testing.B) {
	m := nn.NewCNNLSTM(nn.PaperModelConfig(8))
	in := []int{123, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range []edge.Device{edge.GPU(), edge.CoralTPU(), edge.PiNCS2()} {
			c := d.Cost(m, in, 29, 10)
			if c.RetrainS <= 0 {
				b.Fatal("non-positive cost")
			}
		}
	}
}

// BenchmarkKSweep regenerates the K-selection ablation (A1).
func BenchmarkKSweep(b *testing.B) {
	users, _ := benchSetup(b)
	summaries := make([][]float64, len(users))
	for i, u := range users {
		summaries[i] = u.Summary(1.0)
	}
	std := cluster.FitStandardizer(summaries)
	zs := std.ApplyAll(summaries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep, err := cluster.SweepK(zs, 2, 6, cluster.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cluster.BestK(sweep)), "bestK")
	}
}

// BenchmarkColdStartFraction regenerates the cold-start data-budget
// ablation (A2): assignment with 10 % of the newcomer's unlabeled data.
func BenchmarkColdStartFraction(b *testing.B) {
	users, cfg := benchSetup(b)
	p, err := core.ClusterOnly(users[:len(users)-1], cfg.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	newcomer := users[len(users)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := p.Assign(newcomer, 0.1)
		if a.Cluster < 0 {
			b.Fatal("bad assignment")
		}
	}
}

// benchServePipe caches one trained pipeline for the serving benchmark.
var (
	benchServeOnce sync.Once
	benchServePipe *core.Pipeline
)

func benchServeSetup(b *testing.B) *core.Pipeline {
	b.Helper()
	users, cfg := benchSetup(b)
	benchServeOnce.Do(func() {
		p, err := core.Train(users, cfg)
		if err != nil {
			panic(err)
		}
		benchServePipe = p
	})
	return benchServePipe
}

// BenchmarkServeThroughput measures the serving layer end to end: every
// iteration drives a wave of concurrent sessions through enrolment,
// cold-start assignment, and classified streaming via the batched
// executor. Reported metrics are sustained window throughput and the p95
// client-observed per-window latency.
func BenchmarkServeThroughput(b *testing.B) {
	pipe := benchServeSetup(b)
	users, _ := benchSetup(b)
	srv, err := serve.New(pipe, serve.Config{MaxDelay: 500 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown()

	var mu sync.Mutex
	var latencies []float64 // µs per PushWindow
	windows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, u := range users {
			wg.Add(1)
			go func(u *wemac.UserMaps) {
				defer wg.Done()
				sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.1)
				if err != nil {
					b.Error(err)
					return
				}
				local := make([]float64, 0, len(u.Maps))
				for _, lm := range u.Maps {
					start := time.Now()
					if _, err := sess.PushWindow(lm.Map); err != nil {
						b.Error(err)
						return
					}
					local = append(local, float64(time.Since(start).Microseconds()))
				}
				if err := srv.CloseSession(sess.ID()); err != nil {
					b.Error(err)
					return
				}
				mu.Lock()
				latencies = append(latencies, local...)
				windows += len(local)
				mu.Unlock()
			}(u)
		}
		wg.Wait()
	}
	b.StopTimer()
	if windows > 0 {
		sort.Float64s(latencies)
		b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/s")
		b.ReportMetric(latencies[int(0.95*float64(len(latencies)-1))], "p95_us")
	}
}
