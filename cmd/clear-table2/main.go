// Command clear-table2 regenerates Table II of the CLEAR paper: the
// cloud-edge validation. Every LOSO fold's assigned cluster checkpoint is
// deployed to three simulated platforms (GPU baseline, Coral Edge TPU at
// int8, Raspberry Pi + Intel NCS2 at fp16), evaluated before and after
// on-device fine-tuning, and the analytic time/power model reports the
// MTC/MPC rows.
//
// The expensive LOSO pipelines can be cached with -cache and shared with
// clear-table1.
//
// Usage:
//
//	clear-table2 [-profile fast|paper] [-seed N] [-scale F] [-cache run.bin] [-obs addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/wemac"
)

func main() {
	var (
		profile = flag.String("profile", "fast", "experiment profile: fast or paper")
		seed    = flag.Int64("seed", 1, "master seed for data and training")
		scale   = flag.Float64("scale", 1.0, "population scale factor")
		caFrac  = flag.Float64("ca", 0.10, "unlabeled data fraction for cold-start assignment")
		ftFrac  = flag.Float64("ft", 0.20, "labelled data fraction for on-device fine-tuning")
		cache   = flag.String("cache", "", "path to LOSO run cache (load if present, save after computing)")
		obsAddr = flag.String("obs", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans on this address (e.g. :9090)")
		verbose = flag.Bool("v", false, "print per-fold progress")
	)
	flag.Parse()

	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		die(err)
		fmt.Printf("observability server on http://%s (/metrics, /debug/pprof, /debug/spans)\n", addr)
	}

	var cfg core.Config
	switch *profile {
	case "fast":
		cfg = core.DefaultConfig()
	case "paper":
		cfg = core.PaperConfig()
	default:
		die(fmt.Errorf("unknown profile %q", *profile))
	}
	cfg.Seed = *seed

	dcfg := wemac.DefaultConfig()
	dcfg.Seed = *seed
	if *scale != 1.0 {
		for i, s := range dcfg.ArchetypeSizes {
			n := int(float64(s)**scale + 0.5)
			if n < 2 {
				n = 2
			}
			dcfg.ArchetypeSizes[i] = n
		}
	}

	start := time.Now()
	fmt.Printf("generating synthetic WEMAC population (%v volunteers)...\n", dcfg.ArchetypeSizes)
	ds := wemac.Generate(dcfg)
	users, err := wemac.ExtractAll(ds, cfg.Extractor)
	die(err)

	run := loadOrRun(users, cfg, *caFrac, *cache, *verbose)

	fmt.Println("deploying to edge platforms and fine-tuning on-device...")
	depSpan := obs.StartSpan("table2.deploy_finetune")
	t2, err := eval.RunTable2(run, edge.Devices(), *ftFrac)
	depSpan.End()
	die(err)

	paperUpper := map[string][4]float64{
		"GPU":       {80.63, 4.22, 79.97, 4.74},
		"Coral TPU": {74.17, 3.84, 73.57, 4.44},
		"Pi + NCS2": {79.03, 4.10, 78.48, 4.76},
	}
	paperRT := map[string][2]float64{
		"Coral TPU": {65.32, 64.79},
		"Pi + NCS2": {68.47, 69.02},
	}
	paperFT := map[string][4]float64{
		"GPU":       {86.34, 4.04, 86.03, 5.04},
		"Coral TPU": {79.40, 4.51, 79.14, 4.66},
		"Pi + NCS2": {84.49, 4.82, 84.07, 5.16},
	}

	fmt.Printf("\nTABLE II (upper) — deployment without fine-tuning (paper values in brackets)\n")
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "Platform", "Accuracy", "STD(Acc)", "F1-score", "STD(F1)")
	for _, r := range t2.Results {
		p := paperUpper[r.Device]
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %10.2f   [%.2f / %.2f]\n",
			r.Device, r.NoFT.MeanAcc, r.NoFT.StdAcc, r.NoFT.MeanF1, r.NoFT.StdF1, p[0], p[2])
		if rt, ok := paperRT[r.Device]; ok {
			fmt.Printf("%-12s %10.2f %10.2f %10.2f %10.2f   [%.2f / %.2f]\n",
				"  RT CLEAR", r.RT.MeanAcc, r.RT.StdAcc, r.RT.MeanF1, r.RT.StdF1, rt[0], rt[1])
		}
	}

	fmt.Printf("\nTABLE II (lower) — after on-device fine-tuning + cost model\n")
	fmt.Printf("%-18s %12s %12s %12s %6s\n", "", "GPU", "TPU", "Pi+NCS2", "unit")
	row := func(name string, f func(r eval.DeviceResult) float64, unit string) {
		fmt.Printf("%-18s %12.2f %12.2f %12.2f %6s\n", name,
			f(t2.Results[0]), f(t2.Results[1]), f(t2.Results[2]), unit)
	}
	row("Accuracy", func(r eval.DeviceResult) float64 { return r.FT.MeanAcc }, "-")
	fmt.Printf("%-18s %12.2f %12.2f %12.2f %6s\n", "  (paper)",
		paperFT["GPU"][0], paperFT["Coral TPU"][0], paperFT["Pi + NCS2"][0], "-")
	row("Accuracy std", func(r eval.DeviceResult) float64 { return r.FT.StdAcc }, "-")
	row("F1-score", func(r eval.DeviceResult) float64 { return r.FT.MeanF1 }, "-")
	fmt.Printf("%-18s %12.2f %12.2f %12.2f %6s\n", "  (paper)",
		paperFT["GPU"][2], paperFT["Coral TPU"][2], paperFT["Pi + NCS2"][2], "-")
	row("F1 std", func(r eval.DeviceResult) float64 { return r.FT.StdF1 }, "-")
	row("MTC Re-training", func(r eval.DeviceResult) float64 { return r.Cost.RetrainS }, "s")
	row("MPC Re-training", func(r eval.DeviceResult) float64 { return r.Cost.MPCRetrainW }, "W")
	row("MTC Test", func(r eval.DeviceResult) float64 { return r.Cost.TestS * 1000 }, "ms")
	row("MPC Test", func(r eval.DeviceResult) float64 { return r.Cost.MPCTestW }, "W")
	row("MPC Baseline", func(r eval.DeviceResult) float64 { return r.Cost.MPCIdleW }, "W")
	fmt.Printf("\npaper (lower block): FT acc 86.34/79.40/84.49; MTC retrain -/32.48/78.52 s;\n")
	fmt.Printf("MTC test -/47.31/239.70 ms; MPC retrain -/1.82/3.78 W; test -/1.64/3.43 W; idle -/1.28/2.76 W\n")
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Second))

	// MTC-style breakdown of the run itself (see README "Observability").
	fmt.Println("\nOBSERVABILITY — span tree (wall-clock per stage)")
	fmt.Println(obs.SpanTree())
	fmt.Println("\nOBSERVABILITY — metrics snapshot")
	fmt.Println(obs.MetricsDump())
}

// loadOrRun loads the LOSO run cache if present, otherwise computes the run
// and (if a cache path was given) saves it.
func loadOrRun(users []*wemac.UserMaps, cfg core.Config, caFrac float64, cache string, verbose bool) *eval.LOSORun {
	if cache != "" {
		if f, err := os.Open(cache); err == nil {
			defer f.Close()
			run, err := eval.LoadRun(f, users)
			if err == nil {
				fmt.Printf("loaded LOSO run cache from %s (%d folds)\n", cache, len(run.Folds))
				return run
			}
			fmt.Fprintf(os.Stderr, "clear-table2: ignoring bad cache: %v\n", err)
		}
	}
	fmt.Println("running full CLEAR LOSO (recluster + retrain per held-out volunteer)...")
	var progress func(done, total int)
	if verbose {
		progress = func(done, total int) { fmt.Printf("  fold %d/%d\n", done, total) }
	}
	run, err := eval.RunLOSO(users, cfg, caFrac, progress)
	die(err)
	if cache != "" {
		f, err := os.Create(cache)
		if err == nil {
			defer f.Close()
			if err := eval.SaveRun(f, run); err != nil {
				fmt.Fprintf(os.Stderr, "clear-table2: cache save failed: %v\n", err)
			} else {
				fmt.Printf("saved LOSO run cache to %s\n", cache)
			}
		}
	}
	return run
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-table2:", err)
		os.Exit(1)
	}
}
