// Command clear-serve runs the CLEAR cold-start serving layer as an HTTP
// server: it trains (or loads) a pipeline, then serves the full edge
// lifecycle — enrol, cold-start assignment, asynchronous personalisation,
// continuous monitoring — to concurrent clients. Pair it with
// cmd/clear-loadgen for a closed-loop throughput/latency run.
//
// Usage:
//
//	clear-serve [-addr :8080] [-profile fast|paper] [-seed N] [-scale F]
//	            [-pipeline ckpt] [-save ckpt] [-device gpu|coral|pi]
//	            [-maxsessions N] [-batch N] [-maxdelay D] [-cachesize N]
//	            [-ftworkers N] [-assignfrac F] [-loglevel debug|info|warn|error]
//	            [-store dir] [-snapshot dir] [-snapinterval D]
//	            [-peers url,url,...] [-self url] [-vnodes N]
//	            [-membership-admin] [-drain-timeout D]
//	            [-fault-seed N] [-fault-build F] [-fault-stall F]
//	            [-fault-corrupt F] [-fault-store F] [-chaos-admin]
//	            [-replaycap N] [-infertimeout D]
//	            [-drift-window N] [-drift-threshold F] [-drift-consecutive N]
//	            [-drift-cooldown N] [-drift-off]
//	            [-slo-off] [-slo-availability F] [-slo-p99us F] [-slo-lattarget F]
//	            [-slo-short D] [-slo-long D] [-slo-interval D] [-slo-fastburn F]
//	            [-slo-minevents N] [-profdir DIR] [-profmax N] [-profcpu D]
//	            [-profgap D] [-runtimesample D]
//
// -store enables durable session persistence through the file-backed
// internal/store backend rooted at the given directory: sessions are
// written through on every lifecycle mutation (plus a periodic
// -snapinterval flush and one more on SIGTERM), fine-tuned models persist
// as content-addressed checkpoint blobs, and owned sessions are restored
// at boot. -snapshot is the legacy alias for the same directory.
//
// -peers turns on router mode: the comma-separated replica URLs (this
// one included, named by -self) form a consistent-hash ring that assigns
// every session ID one owning replica. Non-owners proxy per-session
// requests to the owner; a down owner's sessions fail over to the next
// live node, which hydrates them from the shared -store directory — so
// all replicas in one ring must share it. The -fault-* flags arm the
// deterministic fault injector (chaos testing); all default to 0 (off).
// With any fault armed (or -chaos-admin set) the durable store is wrapped
// in the fault injector plus a transient-retry decorator, and persist
// failures that survive the retries flow into the serving layer's
// write-behind replay queue instead of being dropped. -chaos-admin
// additionally mounts POST /v1/chaos, which arms time-bounded store
// outages and inbound partitions on the live process — the hook
// cmd/clear-loadgen's -chaos mode drives.
// The -drift-* flags tune the self-healing cluster-assignment detector
// (internal/serve/drift.go); -drift-off disables it entirely.
//
// The observability surface (/metrics, /debug/pprof, /debug/vars,
// /debug/spans, /v1/traces/{id}, /v1/slo) shares the API mux — no separate
// -obs port needed. Structured request logs (JSON, trace-correlated) go to
// stderr at -loglevel and above. The -slo-* flags tune the multi-window
// burn-rate tracker served at /v1/slo; -profdir arms triggered pprof
// capture — a fast burn writes a CPU+heap profile pair into a bounded
// on-disk ring and stamps an always-kept "slo.breach" trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wemac"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		profile     = flag.String("profile", "fast", "experiment profile: fast or paper")
		seed        = flag.Int64("seed", 1, "master seed for data and training")
		scale       = flag.Float64("scale", 1.0, "training population scale factor")
		pipePath    = flag.String("pipeline", "", "load a pipeline checkpoint instead of training")
		savePath    = flag.String("save", "", "save the trained pipeline checkpoint here")
		device      = flag.String("device", "gpu", "session execution platform: gpu, coral, or pi")
		maxSessions = flag.Int("maxsessions", 1024, "live session cap")
		maxBatch    = flag.Int("batch", 16, "executor max minibatch size")
		maxDelay    = flag.Duration("maxdelay", 2*time.Millisecond, "executor max coalescing delay")
		cacheSize   = flag.Int("cachesize", 64, "fine-tuned checkpoint LRU capacity")
		ftWorkers   = flag.Int("ftworkers", 2, "fine-tune worker pool size")
		assignFrac  = flag.Float64("assignfrac", 0.10, "default unlabeled cold-start budget")
		logLevel    = flag.String("loglevel", "info", "structured log threshold: debug, info, warn, or error")

		storeDir     = flag.String("store", "", "durable store directory (enables crash-safe recovery and multi-replica handoff)")
		snapPath     = flag.String("snapshot", "", "legacy alias for -store")
		snapInterval = flag.Duration("snapinterval", 10*time.Second, "periodic store flush cadence")
		peers        = flag.String("peers", "", "comma-separated replica URLs forming the placement ring (router mode)")
		self         = flag.String("self", "", "this replica's URL (router mode; may be absent from -peers to boot as a standby awaiting a join)")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica on the ring (0 = default 128)")
		membAdmin    = flag.Bool("membership-admin", false, "mount POST /v1/membership for runtime join/leave/drain (testing/ops only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain handoff bound on SIGTERM (router mode)")
		inferTimeout = flag.Duration("infertimeout", 10*time.Second, "default per-window inference deadline")

		faultSeed    = flag.Int64("fault-seed", 1, "fault injector seed")
		faultBuild   = flag.Float64("fault-build", 0, "model-build failure rate [0,1]")
		faultStall   = flag.Float64("fault-stall", 0, "inference stall rate [0,1]")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "window corruption rate [0,1]")
		faultStore   = flag.Float64("fault-store", 0, "store write failure rate [0,1]")
		chaosAdmin   = flag.Bool("chaos-admin", false, "mount POST /v1/chaos for runtime fault windows (testing only)")
		replayCap    = flag.Int("replaycap", 0, "write-behind replay queue capacity (0 = default 256)")
		journalCap   = flag.Int("journal", 0, "cluster event journal ring size behind GET /v1/events (0 = default 256)")

		brThreshold = flag.Int("breakerthreshold", 3, "consecutive build failures that open a cluster's breaker")
		brCooldown  = flag.Duration("breakercooldown", 5*time.Second, "breaker open→half-open cooldown")

		driftWindow      = flag.Int("drift-window", 8, "drift-detector evidence ring size in windows")
		driftThreshold   = flag.Float64("drift-threshold", 0.05, "relative score gap for a drift-positive window")
		driftConsecutive = flag.Int("drift-consecutive", 4, "consecutive positives that raise a drift verdict")
		driftCooldown    = flag.Int("drift-cooldown", 64, "post-re-assignment flap-suppression cooldown in windows")
		driftOff         = flag.Bool("drift-off", false, "disable the self-healing assignment detector")

		sloOff       = flag.Bool("slo-off", false, "disable the burn-rate SLO tracker")
		sloAvail     = flag.Float64("slo-availability", 0, "availability objective (e.g. 0.999; 0 = default)")
		sloP99US     = flag.Float64("slo-p99us", 0, "latency objective bound in µs (0 = default 262144)")
		sloLatTarget = flag.Float64("slo-lattarget", 0, "fraction of requests that must beat the bound (0 = default 0.99)")
		sloShort     = flag.Duration("slo-short", 0, "fast-burn short window (0 = default 30s)")
		sloLong      = flag.Duration("slo-long", 0, "fast-burn long window (0 = default 5m)")
		sloInterval  = flag.Duration("slo-interval", 0, "tracker sampling interval (0 = default 1s)")
		sloFastBurn  = flag.Float64("slo-fastburn", 0, "burn-rate multiple that counts as fast (0 = default 10)")
		sloMinEvents = flag.Int64("slo-minevents", 0, "short-window event floor before a verdict (0 = default 10)")

		profDir    = flag.String("profdir", "", "triggered-profile capture directory (empty = capture off)")
		profMax    = flag.Int("profmax", 0, "capture ring size in cpu+heap pairs (0 = default 8)")
		profCPU    = flag.Duration("profcpu", 0, "CPU profile duration per capture (0 = default 250ms)")
		profGap    = flag.Duration("profgap", 0, "minimum gap between captures (0 = default 10s)")
		sampleRate = flag.Duration("runtimesample", time.Second, "runtime-vitals sampling interval (0 = off)")
	)
	flag.Parse()

	obs.SetLogLevel(obs.ParseLogLevel(*logLevel))

	dev, err := deviceByName(*device)
	die(err)

	var pipe *core.Pipeline
	var arch []int
	if *pipePath != "" {
		sp := obs.StartSpan("serve.load_pipeline")
		f, err := os.Open(*pipePath)
		die(err)
		pipe, err = core.Load(f)
		f.Close()
		sp.End()
		die(err)
		fmt.Printf("loaded pipeline from %s (K=%d, %d training users)\n",
			*pipePath, pipe.Cfg.K, len(pipe.TrainUserIDs))
	} else {
		pipe, arch = trainPipeline(*profile, *seed, *scale)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		die(err)
		die(pipe.Save(f))
		die(f.Close())
		fmt.Printf("saved pipeline checkpoint to %s\n", *savePath)
	}

	// Durable store: -store, with -snapshot as the legacy alias.
	dir := *storeDir
	if dir == "" {
		dir = *snapPath
	}
	var st store.Store
	if dir != "" {
		st, err = store.NewFile(dir)
		die(err)
		fmt.Printf("durable store at %s\n", dir)
	}

	// Router mode: -peers forms the initial (epoch-1) membership of the
	// versioned placement ring. -self may be absent from it: the replica
	// then boots as a standby — owning nothing, forwarding everything —
	// until an admin join (POST /v1/membership) admits it.
	var memb *shard.Membership
	selfName := *self
	if *peers != "" {
		nodes := strings.Split(*peers, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
		memb = shard.NewMembership(nodes, *vnodes)
		if selfName == "" {
			die(fmt.Errorf("-peers requires -self naming this replica's URL"))
		}
		if st == nil {
			die(fmt.Errorf("-peers requires a shared -store directory for session handoff"))
		}
		if !memb.View().Contains(selfName) {
			fmt.Printf("standby boot: %s is not in the initial ring; awaiting membership join\n", selfName)
		}
	}

	var inj *fault.Injector
	if *faultBuild > 0 || *faultStall > 0 || *faultCorrupt > 0 || *faultStore > 0 || *chaosAdmin {
		inj = fault.New(*faultSeed).
			Enable(fault.ModelBuild, *faultBuild).
			Enable(fault.InferStall, *faultStall).
			Enable(fault.CorruptWindow, *faultCorrupt).
			Enable(fault.StorePutFail, *faultStore)
		pipe.Fault = inj
		fmt.Printf("fault injection armed (seed %d): build %.2f, stall %.2f, corrupt %.2f, store %.2f\n",
			*faultSeed, *faultBuild, *faultStall, *faultCorrupt, *faultStore)
	}
	if inj != nil && st != nil {
		// Faults inject below the retry decorator, so transient bursts are
		// absorbed the same way a real flaky disk's would be; what leaks
		// through lands in the serving layer's write-behind queue.
		st = store.WithRetry(store.WithFault(st, inj), store.RetryConfig{})
	}

	scfg := serve.Config{
		MaxSessions:      *maxSessions,
		AssignFrac:       *assignFrac,
		Device:           dev,
		MaxBatch:         *maxBatch,
		MaxDelay:         *maxDelay,
		CacheSize:        *cacheSize,
		FineTuneWorkers:  *ftWorkers,
		InferTimeout:     *inferTimeout,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		Store:            st,
		Self:             selfName,
		SnapshotInterval: *snapInterval,
		ReplayQueueCap:   *replayCap,
		JournalEvents:    *journalCap,
		Fault:            inj,
		ChaosAdmin:       *chaosAdmin,
		MembershipAdmin:  *membAdmin,
		DriftWindow:      *driftWindow,
		DriftThreshold:   *driftThreshold,
		DriftConsecutive: *driftConsecutive,
		DriftCooldown:    *driftCooldown,
		DriftDisabled:    *driftOff,

		SLODisabled:       *sloOff,
		SLOAvailability:   *sloAvail,
		SLOLatencyBoundUS: *sloP99US,
		SLOLatencyTarget:  *sloLatTarget,
		SLOShortWindow:    *sloShort,
		SLOLongWindow:     *sloLong,
		SLOInterval:       *sloInterval,
		SLOFastBurn:       *sloFastBurn,
		SLOMinEvents:      *sloMinEvents,

		ProfileDir:    *profDir,
		ProfileMax:    *profMax,
		ProfileCPUDur: *profCPU,
		ProfileMinGap: *profGap,
	}
	if memb != nil {
		m := memb
		me := selfName
		scfg.OwnsID = func(id string) bool {
			v := m.View()
			return v.Contains(me) && v.Ring().Owner(id) == me
		}
	}
	srv, err := serve.New(pipe, scfg)
	die(err)
	if arch != nil {
		srv.SetClusterArchetypes(arch)
	}
	if st != nil {
		// Restore this replica's share of the stored sessions (all of
		// them outside router mode).
		n, err := srv.RestoreAll(context.Background(), scfg.OwnsID)
		die(err)
		if n > 0 {
			fmt.Printf("restored %d sessions from %s\n", n, dir)
		}
	}

	// Runtime vitals (heap, GC pauses, goroutines, scheduler latency) plus
	// the tensor kernel op counters, on one cadence, into /metrics.
	var sampler *obs.RuntimeSampler
	if *sampleRate > 0 {
		sampler = obs.StartRuntimeSampler(*sampleRate, serve.KernelSampleHook())
	}
	if *profDir != "" {
		fmt.Printf("triggered profile capture armed: dir %s\n", *profDir)
	}

	handler := srv.Handler()
	var router *serve.Router
	if memb != nil {
		router = serve.NewRouter(srv, serve.RouterConfig{
			Self:         selfName,
			Membership:   memb,
			DrainTimeout: *drainTimeout,
		})
		handler = router.Handler()
		v := memb.View()
		fmt.Printf("router mode: self %s, epoch %d, ring %v\n", selfName, v.Epoch, v.Members)
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		fmt.Printf("serving CLEAR lifecycle on %s (device %s, clusters %v)\n",
			*addr, dev.Name, pipe.ClusterSizes())
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			die(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\ndraining...")
	// Router mode: graceful drain first, with the HTTP server still up —
	// the replica leaves the ring, sheds creates, and hands every owned
	// session to its new owner (persist → rehydrate-notify → evict)
	// before connections close. An incomplete drain keeps its sessions
	// live until shutdown and exits non-zero with an explicit count.
	drainErr := error(nil)
	if router != nil {
		drainErr = router.Drain(context.Background())
		if drainErr != nil {
			fmt.Fprintf(os.Stderr, "clear-serve: drain_incomplete remaining=%d: %v\n",
				len(srv.LocalIDs()), drainErr)
		}
	}
	_ = hs.Close()
	if router != nil {
		router.Stop()
	}
	srv.Shutdown()
	if st != nil {
		_ = st.Close()
	}
	sampler.Stop()
	fmt.Println("\n── span tree ──")
	fmt.Println(obs.SpanTree())
	fmt.Println("\n── metrics ──")
	fmt.Println(obs.MetricsDump())
	if drainErr != nil {
		os.Exit(1)
	}
}

// trainPipeline builds the serving pipeline from a synthetic WEMAC
// population, returning the per-cluster dominant ground-truth archetypes
// for the /v1/stats diagnostic.
func trainPipeline(profile string, seed int64, scale float64) (*core.Pipeline, []int) {
	var cfg core.Config
	switch profile {
	case "fast":
		cfg = core.DefaultConfig()
	case "paper":
		cfg = core.PaperConfig()
	default:
		die(fmt.Errorf("unknown profile %q", profile))
	}
	cfg.Seed = seed
	dcfg := wemac.DefaultConfig()
	dcfg.Seed = seed
	if scale != 1.0 {
		for i, s := range dcfg.ArchetypeSizes {
			n := int(float64(s)*scale + 0.5)
			if n < 2 {
				n = 2
			}
			dcfg.ArchetypeSizes[i] = n
		}
	}
	start := time.Now()
	fmt.Printf("generating synthetic WEMAC population (%v volunteers)...\n", dcfg.ArchetypeSizes)
	gsp := obs.StartSpan("serve.generate")
	ds := wemac.Generate(dcfg)
	users, err := wemac.ExtractAll(ds, cfg.Extractor)
	gsp.End()
	die(err)
	fmt.Printf("training CLEAR pipeline on %d users...\n", len(users))
	tsp := obs.StartSpan("serve.train")
	pipe, err := core.Train(users, cfg)
	tsp.End()
	die(err)
	fmt.Printf("trained in %v, cluster sizes %v\n", time.Since(start).Round(time.Second), pipe.ClusterSizes())
	arch := make([]int, pipe.Cfg.K)
	for k := range arch {
		arch[k] = eval.DominantArchetype(pipe, users, k)
	}
	fmt.Printf("cluster dominant archetypes %v\n", arch)
	return pipe, arch
}

func deviceByName(name string) (edge.Device, error) {
	switch name {
	case "gpu":
		return edge.GPU(), nil
	case "coral":
		return edge.CoralTPU(), nil
	case "pi":
		return edge.PiNCS2(), nil
	}
	return edge.Device{}, fmt.Errorf("unknown device %q (want gpu, coral, or pi)", name)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-serve:", err)
		os.Exit(1)
	}
}
