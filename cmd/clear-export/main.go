// Command clear-export generates the synthetic WEMAC-like corpus and
// writes it to disk: the full binary corpus (reloadable with
// wemac.ReadDataset), a per-trial raw-signal CSV, or the extracted
// 123-feature maps as CSV for analysis with external tooling.
//
// Usage:
//
//	clear-export -out corpus.bin                      # binary corpus
//	clear-export -csv features.csv                    # feature-map CSV
//	clear-export -trial trial.csv -user 3 -index 2    # one trial's signals
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/features"
	"repro/internal/wemac"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "generation seed")
		scale   = flag.Float64("scale", 1.0, "population scale factor")
		out     = flag.String("out", "", "write the binary corpus to this path")
		csv     = flag.String("csv", "", "write extracted feature maps as CSV to this path")
		trial   = flag.String("trial", "", "write one trial's raw signals as CSV to this path")
		user    = flag.Int("user", 0, "volunteer ID for -trial")
		index   = flag.Int("index", 0, "trial index for -trial")
		windows = flag.Int("windows", 8, "feature-map windows for -csv")
	)
	flag.Parse()
	if *out == "" && *csv == "" && *trial == "" {
		fmt.Fprintln(os.Stderr, "clear-export: nothing to do; pass -out, -csv or -trial")
		flag.Usage()
		os.Exit(2)
	}

	dcfg := wemac.DefaultConfig()
	dcfg.Seed = *seed
	if *scale != 1.0 {
		for i, s := range dcfg.ArchetypeSizes {
			n := int(float64(s)**scale + 0.5)
			if n < 1 {
				n = 1
			}
			dcfg.ArchetypeSizes[i] = n
		}
	}
	fmt.Printf("generating population %v (seed %d)...\n", dcfg.ArchetypeSizes, *seed)
	ds := wemac.Generate(dcfg)

	if *out != "" {
		f, err := os.Create(*out)
		die(err)
		n, err := ds.WriteTo(f)
		die(err)
		die(f.Close())
		fmt.Printf("wrote binary corpus: %s (%.1f MiB, %d volunteers)\n",
			*out, float64(n)/(1<<20), ds.N())
	}

	if *csv != "" {
		users, err := wemac.ExtractAll(ds, features.ExtractorConfig{WindowSec: 8, Windows: *windows})
		die(err)
		f, err := os.Create(*csv)
		die(err)
		die(wemac.WriteFeatureCSV(f, users))
		die(f.Close())
		fmt.Printf("wrote feature CSV: %s (%d maps × %d features × %d windows)\n",
			*csv, wemac.TotalMaps(users), features.TotalFeatureCount, *windows)
	}

	if *trial != "" {
		if *user < 0 || *user >= ds.N() {
			die(fmt.Errorf("user %d out of range [0,%d)", *user, ds.N()))
		}
		v := ds.Volunteers[*user]
		if *index < 0 || *index >= len(v.Trials) {
			die(fmt.Errorf("trial %d out of range [0,%d)", *index, len(v.Trials)))
		}
		f, err := os.Create(*trial)
		die(err)
		die(wemac.WriteTrialCSV(f, &v.Trials[*index]))
		die(f.Close())
		fmt.Printf("wrote trial CSV: %s (volunteer %d, trial %d, label %v)\n",
			*trial, *user, *index, v.Trials[*index].Label)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-export:", err)
		os.Exit(1)
	}
}
