// Command clear-bench records the repo's performance trajectory. It trains
// a small pipeline, drives a serving wave through the real Server (the
// same executor/batching/stage-attribution path production requests take),
// times the hot kernels in isolation, and writes a machine-readable report
// (schema "clear-bench/1") meant to be committed as BENCH_PR<N>.json.
//
// CI re-runs the harness on every change and compares the fresh serving
// throughput against the newest committed baseline: a drop of more than
// -tolerance (default 10%) fails the build, so perf regressions surface in
// review instead of in production, and the committed BENCH_*.json files
// form the recorded benchmark trajectory of the project.
//
// Usage:
//
//	clear-bench [-out BENCH_PR6.json] [-against path|auto] [-tolerance 0.10]
//	            [-quick] [-seed 17]
//
// -against auto globs BENCH_*.json next to -out and compares against the
// lexically newest one that is not -out itself; "none" (or an empty flag)
// skips the gate and only records.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/wemac"
)

// Report is the committed benchmark record. Field names are the contract:
// CI's regression gate and future clear-bench runs parse them, so renames
// are schema changes (bump "schema").
type Report struct {
	Schema string     `json:"schema"`
	Meta   MetaInfo   `json:"meta"`
	Serve  ServeBench `json:"serve"`
	Micro  MicroBench `json:"micro"`
}

type MetaInfo struct {
	Go         string `json:"go"`
	Commit     string `json:"commit"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick,omitempty"`
}

// ServeBench is the end-to-end serving wave: real sessions, real executor
// batching, stage attribution on.
type ServeBench struct {
	Windows              int                `json:"windows"`
	ElapsedSec           float64            `json:"elapsed_sec"`
	WindowsPerSec        float64            `json:"windows_per_sec"`
	WindowsPerSecPerCore float64            `json:"windows_per_sec_per_core"`
	P50US                float64            `json:"p50_us"`
	P95US                float64            `json:"p95_us"`
	P99US                float64            `json:"p99_us"`
	AllocsPerWindow      float64            `json:"allocs_per_window"`
	StageMedianUS        map[string]float64 `json:"stage_median_us"`
}

// MicroBench isolates the kernels the serving numbers decompose into.
type MicroBench struct {
	Matmul64NS     float64 `json:"matmul64_ns"`
	Matmul64GFLOPS float64 `json:"matmul64_gflops"`
	ForwardFP32NS  float64 `json:"forward_fp32_ns"`
	ForwardInt8NS  float64 `json:"forward_int8_ns"`
	VecHotPathNS   float64 `json:"vec_hot_path_ns"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_PR6.json", "report output path")
		against   = flag.String("against", "auto", "baseline to gate against: path, auto, or none")
		tolerance = flag.Float64("tolerance", 0.10, "max allowed windows_per_sec_per_core drop")
		quick     = flag.Bool("quick", false, "smaller wave (smoke-testing the harness, not for committed baselines)")
		seed      = flag.Int64("seed", 17, "pipeline training seed")
	)
	flag.Parse()

	rep := Report{
		Schema: "clear-bench/1",
		Meta: MetaInfo{
			Go:         runtime.Version(),
			Commit:     vcsCommit(),
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Quick:      *quick,
		},
	}

	fmt.Println("clear-bench: training pipeline...")
	pipe, users := buildFixture(*seed)
	fmt.Printf("clear-bench: %d clusters, %d held-out users\n", pipe.Cfg.K, len(users))

	rep.Serve = serveWave(pipe, users, *quick)
	rep.Micro = microBench(pipe, users)

	js, err := json.MarshalIndent(rep, "", "  ")
	die(err)
	js = append(js, '\n')
	die(os.WriteFile(*out, js, 0o644))
	fmt.Printf("clear-bench: wrote %s\n%s", *out, js)

	if *against == "" || *against == "none" {
		return
	}
	basePath := *against
	if basePath == "auto" {
		basePath = newestBaseline(*out)
		if basePath == "" {
			fmt.Println("clear-bench: no committed baseline found; gate skipped")
			return
		}
	}
	die(gate(basePath, rep, *tolerance))
}

// buildFixture trains the same small pipeline the serve test suite uses
// (deterministic, seconds not minutes) and returns held-out users from a
// disjoint generator seed so the wave is a genuine cold-start.
func buildFixture(seed int64) (*core.Pipeline, []*wemac.UserMaps) {
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 4}
	train := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{3, 3, 2, 2},
		TrialsPerVolunteer: 6,
		TrialSec:           30,
		Seed:               seed,
	})
	users, err := wemac.ExtractAll(train, ecfg)
	die(err)
	cfg := core.Config{
		K: 4, SubK: 2,
		Extractor: ecfg,
		Model: nn.ModelConfig{
			Conv1: 2, Conv2: 4,
			K1H: 5, K1W: 3, K2H: 3, K2W: 3, Pool1: 4, Pool2: 3,
			LSTMHidden: 12, Dropout: 0.1, Classes: 2, Seed: 1,
		},
		Train:        nn.TrainConfig{Epochs: 4, BatchSize: 16, LR: 3e-3, GradClip: 5, ValFrac: 0.15, Patience: 3, Seed: 1},
		FineTune:     nn.TrainConfig{Epochs: 2, BatchSize: 8, LR: 1e-3, GradClip: 5, Seed: 1},
		Cluster:      cluster.Options{Restarts: 4, MaxIter: 50},
		RefineRounds: 2, RefineSampleFrac: 0.8, Seed: 1,
	}
	pipe, err := core.Train(users, cfg)
	die(err)
	held := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{2, 2, 2, 2},
		TrialsPerVolunteer: 10,
		TrialSec:           30,
		Seed:               seed + 6,
	})
	heldUsers, err := wemac.ExtractAll(held, ecfg)
	die(err)
	return pipe, heldUsers
}

// serveWave streams every held-out user's windows through a real Server
// and measures per-window latency at the call site. The first pass warms
// caches and JIT-like lazies (metric children, executor goroutines); the
// registry is reset between passes so the stage medians describe only the
// measured wave.
func serveWave(pipe *core.Pipeline, users []*wemac.UserMaps, quick bool) ServeBench {
	passes := 3
	if quick {
		passes = 1
	}

	srv, err := serve.New(pipe, serve.Config{
		MaxDelay:    500 * time.Microsecond,
		SLODisabled: true, // the tracker diffs cumulative counters; the reset below would skew it
	})
	die(err)
	defer srv.Shutdown()

	fmt.Println("clear-bench: warmup pass...")
	runPass(srv, users)
	obs.Default().Reset()

	fmt.Printf("clear-bench: measuring %d passes...\n", passes)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var lats []time.Duration
	for p := 0; p < passes; p++ {
		lats = append(lats, runPass(srv, users)...)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	n := len(lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	wps := float64(n) / elapsed.Seconds()
	return ServeBench{
		Windows:              n,
		ElapsedSec:           elapsed.Seconds(),
		WindowsPerSec:        wps,
		WindowsPerSecPerCore: wps / float64(runtime.GOMAXPROCS(0)),
		P50US:                float64(quantile(lats, 0.50).Microseconds()),
		P95US:                float64(quantile(lats, 0.95).Microseconds()),
		P99US:                float64(quantile(lats, 0.99).Microseconds()),
		AllocsPerWindow:      float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		StageMedianUS:        stageMedians(),
	}
}

// runPass drives one full pass of every user through fresh sessions and
// returns the per-window latencies.
func runPass(srv *serve.Server, users []*wemac.UserMaps) []time.Duration {
	ctx := context.Background()
	var lats []time.Duration
	for _, u := range users {
		sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.1)
		die(err)
		for _, lm := range u.Maps {
			t0 := time.Now()
			_, err := sess.PushWindowCtx(ctx, lm.Map)
			lats = append(lats, time.Since(t0))
			die(err)
		}
		die(srv.CloseSession(sess.ID()))
	}
	return lats
}

// stageMedians estimates the per-stage median from the
// serve.stage_latency_us histogram family, merging cluster children.
// Resolution is one exponential bucket (×2), which is plenty to see a
// stage regress.
func stageMedians() map[string]float64 {
	vec := obs.GetHistogramVec("serve.stage_latency_us", obs.ExpBuckets(1, 2, 26), "stage", "cluster")
	type merged struct {
		counts []int64
		bounds []float64
		total  int64
	}
	byStage := map[string]*merged{}
	vec.Each(func(values []string, h *obs.Histogram) {
		bounds, counts := h.Buckets()
		m := byStage[values[0]]
		if m == nil {
			m = &merged{counts: make([]int64, len(counts)), bounds: bounds}
			byStage[values[0]] = m
		}
		for i, c := range counts {
			m.counts[i] += c
			m.total += c
		}
	})
	out := map[string]float64{}
	for stage, m := range byStage {
		if m.total == 0 {
			continue
		}
		var cum int64
		for i, c := range m.counts {
			cum += c
			if cum*2 >= m.total {
				if i < len(m.bounds) {
					out[stage] = m.bounds[i]
				} else {
					out[stage] = m.bounds[len(m.bounds)-1] * 2 // overflow bucket
				}
				break
			}
		}
	}
	return out
}

// microBench times the kernels underneath the serving numbers.
func microBench(pipe *core.Pipeline, users []*wemac.UserMaps) MicroBench {
	var mb MicroBench

	// 64×64×64 matmul: the dense-kernel floor for everything above it.
	a, b := tensor.New(64, 64), tensor.New(64, 64)
	for i := range a.Data {
		a.Data[i] = float64(i%13) * 0.1
	}
	for i := range b.Data {
		b.Data[i] = float64(i%7) * 0.2
	}
	mb.Matmul64NS = timeIt(200, func() { a.MatMul(b) })
	mb.Matmul64GFLOPS = (2 * 64 * 64 * 64) / mb.Matmul64NS

	// Forward pass on the trained fp32 model vs its int8 edge deployment.
	x := users[0].Maps[0].Map
	m := pipe.Models[0]
	mb.ForwardFP32NS = timeIt(100, func() { m.Probabilities(x) })
	dep := edge.Deploy(m, edge.CoralTPU())
	mb.ForwardInt8NS = timeIt(100, func() { dep.Model.Probabilities(x) })

	// Labeled-counter hot path (per-request metric cost), on a private
	// registry so the serving families stay untouched.
	reg := obs.NewRegistry()
	cv := reg.CounterVec("bench_hot", []string{"endpoint", "code"})
	mb.VecHotPathNS = timeIt(2_000_000, func() { cv.With("windows", "200").Inc() })
	return mb
}

// timeIt returns ns/op over n iterations (one untimed warmup call).
func timeIt(n int, f func()) float64 {
	f()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// quantile returns the q-th latency from sorted samples (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// newestBaseline picks the lexically newest BENCH_*.json sibling of out,
// excluding out itself (the file this run is about to write).
func newestBaseline(out string) string {
	dir := filepath.Dir(out)
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	sort.Strings(matches)
	outAbs, _ := filepath.Abs(out)
	for i := len(matches) - 1; i >= 0; i-- {
		mAbs, _ := filepath.Abs(matches[i])
		if mAbs != outAbs {
			return matches[i]
		}
	}
	return ""
}

// gate compares fresh serving throughput against the committed baseline
// and errors when the drop exceeds tolerance. Sub-metric deltas are
// reported informationally: micro-benchmarks are noisier than the wave
// and machine-dependent, so only the headline number gates.
func gate(basePath string, rep Report, tolerance float64) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", basePath, err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", basePath, err)
	}
	if base.Schema != rep.Schema {
		return fmt.Errorf("baseline %s has schema %q, this build emits %q", basePath, base.Schema, rep.Schema)
	}

	oldT, newT := base.Serve.WindowsPerSecPerCore, rep.Serve.WindowsPerSecPerCore
	delta := (newT - oldT) / oldT
	fmt.Printf("clear-bench: gate vs %s: windows/s/core %.1f -> %.1f (%+.1f%%, tolerance -%.0f%%)\n",
		basePath, oldT, newT, 100*delta, 100*tolerance)
	for name, pair := range map[string][2]float64{
		"p99_us":          {base.Serve.P99US, rep.Serve.P99US},
		"allocs_per_win":  {base.Serve.AllocsPerWindow, rep.Serve.AllocsPerWindow},
		"matmul64_ns":     {base.Micro.Matmul64NS, rep.Micro.Matmul64NS},
		"forward_fp32_ns": {base.Micro.ForwardFP32NS, rep.Micro.ForwardFP32NS},
		"vec_hot_path_ns": {base.Micro.VecHotPathNS, rep.Micro.VecHotPathNS},
	} {
		if pair[0] > 0 {
			fmt.Printf("clear-bench:   %-16s %.0f -> %.0f (%+.1f%%)\n",
				name, pair[0], pair[1], 100*(pair[1]-pair[0])/pair[0])
		}
	}
	if oldT > 0 && newT < oldT*(1-tolerance) {
		return fmt.Errorf("throughput regression: windows/s/core dropped %.1f%% (> %.0f%% tolerance) vs %s",
			-100*delta, 100*tolerance, basePath)
	}
	fmt.Println("clear-bench: gate passed")
	return nil
}

// vcsCommit returns the short VCS revision when the binary carries build
// info ("unknown" under go run, which skips VCS stamping).
func vcsCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	return "unknown"
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-bench:", err)
		os.Exit(1)
	}
}
