// Command clear-features prints the dictionary of all 123 physiological
// features the CLEAR pipeline extracts (84 BVP + 34 GSR + 5 SKT), with
// their modality, computation domain and meaning — the paper's §III-A-1
// feature split as reference documentation.
//
// Usage:
//
//	clear-features [-modality BVP|GSR|SKT] [-domain time|frequency|non-linear|morphology]
package main

import (
	"flag"
	"fmt"

	"repro/internal/features"
)

func main() {
	var (
		modality = flag.String("modality", "", "filter by sensor modality")
		domain   = flag.String("domain", "", "filter by computation domain")
	)
	flag.Parse()

	cat := features.Catalog()
	byModality := map[features.Modality]int{}
	byDomain := map[features.Domain]int{}
	shown := 0
	fmt.Printf("%-4s %-22s %-4s %-11s %s\n", "idx", "name", "mod", "domain", "description")
	for _, info := range cat {
		byModality[info.Modality]++
		byDomain[info.Domain]++
		if *modality != "" && string(info.Modality) != *modality {
			continue
		}
		if *domain != "" && string(info.Domain) != *domain {
			continue
		}
		fmt.Printf("%-4d %-22s %-4s %-11s %s\n",
			info.Index, info.Name, info.Modality, info.Domain, info.Description)
		shown++
	}
	fmt.Printf("\n%d of %d features shown\n", shown, len(cat))
	fmt.Printf("by modality: BVP %d, GSR %d, SKT %d (paper: 84/34/5)\n",
		byModality[features.ModalityBVP], byModality[features.ModalityGSR], byModality[features.ModalitySKT])
	fmt.Printf("by domain: time %d, frequency %d, non-linear %d, morphology %d\n",
		byDomain[features.DomainTime], byDomain[features.DomainFrequency],
		byDomain[features.DomainNonlinear], byDomain[features.DomainMorphology])
}
