// Command clear-ablate runs the design-choice ablations DESIGN.md calls
// out but the paper only motivates in prose:
//
//   - architecture: the Fig. 2 CNN-LSTM versus its CNN-only and LSTM-only
//     ablations, under the same CL-validation protocol ("the CNN-LSTM
//     architecture can effectively integrate the feature maps' global and
//     sequential information, ultimately enhancing classification
//     accuracy");
//   - clustering algorithm: the paper's refined k-means versus
//     agglomerative alternatives (Ward / average / complete linkage) and a
//     random-partition control, measured by downstream CL accuracy and
//     ground-truth archetype purity.
//
// Usage:
//
//	clear-ablate [-seed N] [-scale F] [-arch] [-clustering]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nn"
	"repro/internal/wemac"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "master seed")
		scale    = flag.Float64("scale", 0.6, "population scale factor")
		archOnly = flag.Bool("arch", false, "run only the architecture ablation")
		clusOnly = flag.Bool("clustering", false, "run only the clustering ablation")
	)
	flag.Parse()
	runArch := !*clusOnly
	runClus := !*archOnly

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	dcfg := wemac.DefaultConfig()
	dcfg.Seed = *seed
	for i, s := range dcfg.ArchetypeSizes {
		n := int(float64(s)**scale + 0.5)
		if n < 2 {
			n = 2
		}
		dcfg.ArchetypeSizes[i] = n
	}

	fmt.Printf("generating synthetic WEMAC population (%v volunteers)...\n", dcfg.ArchetypeSizes)
	ds := wemac.Generate(dcfg)
	users, err := wemac.ExtractAll(ds, cfg.Extractor)
	die(err)

	if runArch {
		fmt.Println("\nABLATION — classifier architecture (CL validation protocol)")
		res, err := eval.RunArchAblation(users, cfg,
			[]nn.Arch{nn.ArchCNNLSTM, nn.ArchCNNGRU, nn.ArchCNNOnly, nn.ArchLSTMOnly})
		die(err)
		fmt.Printf("%-10s %10s %10s %10s %12s\n", "arch", "acc", "F1", "params", "MACs")
		for _, r := range res {
			fmt.Printf("%-10s %9.2f%% %9.2f%% %10d %12d\n",
				r.Arch, r.CL.MeanAcc, r.CL.MeanF1, r.Params, r.MACs)
		}
	}

	if runClus {
		fmt.Println("\nABLATION — global clustering algorithm (CL validation protocol)")
		algos := map[string]eval.ClusterAssigner{
			"kmeans+refine": func(pts [][]float64, k int, seed int64) ([]int, error) {
				res, err := cluster.KMeans(pts, k, cluster.Options{Seed: seed*31 + 7})
				if err != nil {
					return nil, err
				}
				res = cluster.Refine(pts, res, cfg.RefineRounds, cfg.RefineSampleFrac, seed*31+11)
				return res.Assign, nil
			},
			"ward":     agglo(cluster.WardLinkage),
			"average":  agglo(cluster.AverageLinkage),
			"complete": agglo(cluster.CompleteLinkage),
			"random": func(pts [][]float64, k int, seed int64) ([]int, error) {
				rng := rand.New(rand.NewSource(seed))
				assign := make([]int, len(pts))
				for i := range assign {
					assign[i] = i % k // balanced random-ish control
				}
				rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
				return assign, nil
			},
		}
		res, err := eval.RunClusteringAblation(users, cfg, algos)
		die(err)
		sort.Slice(res, func(i, j int) bool { return res[i].CL.MeanAcc > res[j].CL.MeanAcc })
		fmt.Printf("%-14s %10s %10s %8s   %s\n", "algorithm", "CL acc", "RT acc", "purity", "sizes")
		for _, r := range res {
			fmt.Printf("%-14s %9.2f%% %9.2f%% %7.0f%%   %v\n",
				r.Name, r.CL.MeanAcc, r.RT.MeanAcc, r.Purity*100, r.Sizes)
		}
	}
}

func agglo(l cluster.Linkage) eval.ClusterAssigner {
	return func(pts [][]float64, k int, seed int64) ([]int, error) {
		res, err := cluster.Agglomerative(pts, k, l)
		if err != nil {
			return nil, err
		}
		return res.Assign, nil
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-ablate:", err)
		os.Exit(1)
	}
}
