// Command clear-ksweep reproduces the paper's two design-selection
// analyses:
//
//   - the choice of K=4 clusters ("the best balance between intra-cluster
//     similarity and inter-cluster separation", §IV-A): silhouette and
//     inertia over K=2..8, with the resulting cluster sizes;
//   - the cold-start data budget ("10 % of the data", §IV-B): assignment
//     stability against the ground-truth archetypes as a function of the
//     unlabeled fraction, including the flat (non-hierarchical) ablation.
//
// Usage:
//
//	clear-ksweep [-seed N] [-kmin 2] [-kmax 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/wemac"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "master seed")
		kmin = flag.Int("kmin", 2, "smallest K")
		kmax = flag.Int("kmax", 8, "largest K")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	dcfg := wemac.DefaultConfig()
	dcfg.Seed = *seed

	fmt.Printf("generating synthetic WEMAC population (%v volunteers)...\n", dcfg.ArchetypeSizes)
	ds := wemac.Generate(dcfg)
	users, err := wemac.ExtractAll(ds, cfg.Extractor)
	die(err)

	// --- A1: K selection -------------------------------------------------
	summaries := make([][]float64, len(users))
	for i, u := range users {
		summaries[i] = u.Summary(1.0)
	}
	std := cluster.FitStandardizer(summaries)
	zs := std.ApplyAll(summaries)
	sweep, err := cluster.SweepK(zs, *kmin, *kmax, cluster.Options{Seed: *seed})
	die(err)
	fmt.Printf("\nABLATION A1 — cluster count selection (paper: K=4, sizes 17/13/7/7)\n")
	fmt.Printf("%-4s %12s %12s %10s %10s   %s\n", "K", "silhouette", "inertia", "DaviesB", "CalinskiH", "sizes")
	for _, p := range sweep {
		res, err := cluster.KMeans(zs, p.K, cluster.Options{Seed: *seed + int64(p.K)*101})
		die(err)
		db := cluster.DaviesBouldin(zs, res)
		ch := cluster.CalinskiHarabasz(zs, res)
		marker := ""
		if p.K == cluster.BestK(sweep) {
			marker = "  ← best silhouette"
		}
		fmt.Printf("%-4d %12.4f %12.1f %10.3f %10.1f   %v%s\n",
			p.K, p.Silhouette, p.Inertia, db, ch, p.Sizes, marker)
	}

	// --- A2: cold-start data budget --------------------------------------
	fmt.Printf("\nABLATION A2 — cold-start assignment vs unlabeled data budget (paper: 10%%)\n")
	fmt.Printf("%-8s %22s %22s\n", "frac", "hierarchical assign", "flat assign (ablation)")
	fracs := []float64{0.05, 0.10, 0.20, 0.50, 1.00}
	for _, frac := range fracs {
		hier, flat := assignmentAccuracy(users, cfg, frac)
		fmt.Printf("%-8.2f %21.0f%% %21.0f%%\n", frac, hier*100, flat*100)
	}
}

// assignmentAccuracy LOSO-clusters the population (no model training) and
// measures how often the held-out user's assignment lands on the cluster
// dominated by their ground-truth archetype, for the hierarchical and flat
// assignment rules.
func assignmentAccuracy(users []*wemac.UserMaps, cfg core.Config, frac float64) (hier, flat float64) {
	nh, nf := 0, 0
	for i := range users {
		train := append(append([]*wemac.UserMaps{}, users[:i]...), users[i+1:]...)
		p, err := eval.ClusterOnly(train, cfg)
		die(err)
		a := p.Assign(users[i], frac)
		fl := p.Hier.AssignFlat(p.Std.Apply(users[i].Summary(frac)))
		if eval.DominantArchetype(p, train, a.Cluster) == users[i].Archetype {
			nh++
		}
		if eval.DominantArchetype(p, train, fl) == users[i].Archetype {
			nf++
		}
	}
	n := float64(len(users))
	return float64(nh) / n, float64(nf) / n
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-ksweep:", err)
		os.Exit(1)
	}
}
