// Command clear-table1 regenerates Table I of the CLEAR paper: accuracy and
// F1 (mean ± std over LOSO folds) for the General model, CL validation with
// its robustness test, and the full CLEAR pipeline with and without
// fine-tuning, on the synthetic WEMAC-like population.
//
// Usage:
//
//	clear-table1 [-profile fast|paper] [-seed N] [-scale F] [-ftsweep] [-obs addr] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/wemac"
)

func main() {
	var (
		profile  = flag.String("profile", "fast", "experiment profile: fast or paper")
		seed     = flag.Int64("seed", 1, "master seed for data and training")
		scale    = flag.Float64("scale", 1.0, "population scale factor (1.0 = the paper's 17/13/7/7)")
		caFrac   = flag.Float64("ca", 0.10, "unlabeled data fraction for cold-start assignment")
		ftFrac   = flag.Float64("ft", 0.20, "labelled data fraction for fine-tuning")
		ftSweep  = flag.Bool("ftsweep", false, "also sweep the fine-tuning label budget")
		ftLR     = flag.Float64("ftlr", 0, "override fine-tuning learning rate")
		ftEpochs = flag.Int("ftepochs", 0, "override fine-tuning epochs")
		cache    = flag.String("cache", "", "LOSO run cache path shared with clear-table2 (load if present, save after computing)")
		mdOut    = flag.String("md", "", "also write the table as markdown to this path")
		obsAddr  = flag.String("obs", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans on this address (e.g. :9090)")
		verbose  = flag.Bool("v", false, "print per-fold progress")
	)
	flag.Parse()

	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clear-table1:", err)
			os.Exit(1)
		}
		fmt.Printf("observability server on http://%s (/metrics, /debug/pprof, /debug/spans)\n", addr)
	}

	cfg, dcfg, err := buildConfigs(*profile, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-table1:", err)
		os.Exit(1)
	}
	if *ftLR > 0 {
		cfg.FineTune.LR = *ftLR
	}
	if *ftEpochs > 0 {
		cfg.FineTune.Epochs = *ftEpochs
	}

	start := time.Now()
	fmt.Printf("generating synthetic WEMAC population (%v volunteers, %d trials each)...\n",
		dcfg.ArchetypeSizes, dcfg.TrialsPerVolunteer)
	ds := wemac.Generate(dcfg)
	users, err := wemac.ExtractAll(ds, cfg.Extractor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-table1:", err)
		os.Exit(1)
	}
	fmt.Printf("extracted %d feature maps (%d features × %d windows) in %v\n\n",
		wemac.TotalMaps(users), features.TotalFeatureCount, cfg.Extractor.Windows,
		time.Since(start).Round(time.Millisecond))

	// General model: group size = mean cluster size (11 in the paper).
	groupSize := len(users) / cfg.K
	if groupSize < 2 {
		groupSize = 2
	}
	fmt.Printf("[1/3] General model (%d random users, intra-group LOSO)...\n", groupSize)
	genSpan := obs.StartSpan("table1.general_model")
	gen, err := eval.RunGeneralModel(users, cfg, groupSize, *seed)
	genSpan.End()
	die(err)

	fmt.Println("[2/3] CL validation (global clustering + intra-cluster LOSO + RT)...")
	clSpan := obs.StartSpan("table1.cl_validation")
	cl, err := eval.RunCL(users, cfg)
	clSpan.End()
	die(err)
	fmt.Printf("      cluster sizes: %v\n", cl.Sizes)
	for k, pc := range cl.PerCluster {
		if pc.Folds > 0 {
			fmt.Printf("      cluster %d (%d users): %v\n", k+1, cl.Sizes[k], pc)
		}
	}

	fmt.Println("[3/3] CLEAR validation (full LOSO: recluster + retrain per held-out volunteer)...")
	var progress func(done, total int)
	if *verbose {
		progress = func(done, total int) { fmt.Printf("      fold %d/%d\n", done, total) }
	}
	clearSpan := obs.StartSpan("table1.clear_validation")
	run := cachedLOSO(users, cfg, *caFrac, *cache, progress)
	clear, err := eval.EvaluateCLEAR(run, *ftFrac)
	clearSpan.End()
	die(err)

	fmt.Printf("\nTABLE I — WEMAC fear / non-fear (paper values in brackets)\n")
	fmt.Printf("%-22s %10s %10s %10s %10s\n", "Validation func", "Accuracy", "STD(Acc)", "F1-score", "STD(F1)")
	fmt.Println("--- previous works (quoted from the paper; not re-run) ---")
	printQuoted("Bindi [22]", 64.63, 16.56, 66.67, 17.31)
	printQuoted("Sun et al. [18]", 79.90, 4.16, 78.13, 6.52)
	fmt.Println("--- without clustering ---")
	printRow("General Model", gen, 75.00, 72.57)
	fmt.Println("--- Clustering and Learning (CL) validation ---")
	printRow("RT CL", cl.RT, 64.33, 62.42)
	printRow("CL validation", cl.CL, 81.90, 80.41)
	fmt.Println("--- CLEAR validation ---")
	printRow("RT CLEAR", clear.RT, 72.68, 70.98)
	printRow("CLEAR w/o FT", clear.WithoutFT, 80.63, 79.97)
	printRow("CLEAR w FT", clear.WithFT, 86.34, 86.03)
	fmt.Printf("\ncold-start assignment matched the ground-truth archetype in %.0f%% of folds\n",
		clear.AssignmentAccuracy*100)
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Second))

	if *mdOut != "" {
		rep := eval.NewReport("Table I — WEMAC fear / non-fear").
			Section("Measured vs paper").
			Table(
				[]string{"Validation func", "Accuracy", "F1-score", "Paper acc", "Paper F1"},
				[][]string{
					{"Bindi [22] (quoted)", "—", "—", "64.63 ± 16.56", "66.67 ± 17.31"},
					{"Sun et al. [18] (quoted)", "—", "—", "79.90 ± 4.16", "78.13 ± 6.52"},
					eval.AggRow("General Model", gen, "75.00 ± 2.76", "72.57 ± 3.12"),
					eval.AggRow("RT CL", cl.RT, "64.33 ± 1.80", "62.42 ± 1.57"),
					eval.AggRow("CL validation", cl.CL, "81.90 ± 3.44", "80.41 ± 3.58"),
					eval.AggRow("RT CLEAR", clear.RT, "72.68 ± 5.10", "70.98 ± 4.26"),
					eval.AggRow("CLEAR w/o FT", clear.WithoutFT, "80.63 ± 4.22", "79.97 ± 4.74"),
					eval.AggRow("CLEAR w FT", clear.WithFT, "86.34 ± 4.04", "86.03 ± 5.04"),
				},
			).
			Paragraph(fmt.Sprintf("\nCold-start assignment matched the ground-truth archetype in %.0f%% of folds.",
				clear.AssignmentAccuracy*100))
		if err := os.WriteFile(*mdOut, []byte(rep.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clear-table1: writing markdown:", err)
		} else {
			fmt.Printf("wrote markdown report to %s\n", *mdOut)
		}
	}

	if *ftSweep {
		fmt.Println("\nABLATION — fine-tuning label budget (reusing the LOSO pipelines)")
		fmt.Printf("%-8s %10s %10s\n", "ft frac", "Accuracy", "F1")
		for _, frac := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
			res, err := eval.EvaluateCLEAR(run, frac)
			die(err)
			fmt.Printf("%-8.2f %10.2f %10.2f\n", frac, res.WithFT.MeanAcc, res.WithFT.MeanF1)
		}
	}

	// MTC-style breakdown: where the wall-clock went, per pipeline stage
	// (see README "Observability" for how this maps to the paper's Table 2).
	fmt.Println("\nOBSERVABILITY — span tree (wall-clock per stage)")
	fmt.Println(obs.SpanTree())
	fmt.Println("\nOBSERVABILITY — metrics snapshot")
	fmt.Println(obs.MetricsDump())
}

// cachedLOSO loads the LOSO run cache if present, otherwise computes the
// run and (if a path was given) saves it for clear-table2 to reuse.
func cachedLOSO(users []*wemac.UserMaps, cfg core.Config, caFrac float64, cache string, progress func(int, int)) *eval.LOSORun {
	if cache != "" {
		if f, err := os.Open(cache); err == nil {
			defer f.Close()
			if run, err := eval.LoadRun(f, users); err == nil {
				fmt.Printf("      loaded LOSO run cache from %s (%d folds)\n", cache, len(run.Folds))
				return run
			}
		}
	}
	run, err := eval.RunLOSO(users, cfg, caFrac, progress)
	die(err)
	if cache != "" {
		if f, err := os.Create(cache); err == nil {
			defer f.Close()
			if err := eval.SaveRun(f, run); err == nil {
				fmt.Printf("      saved LOSO run cache to %s\n", cache)
			}
		}
	}
	return run
}

func buildConfigs(profile string, seed int64, scale float64) (core.Config, wemac.Config, error) {
	var cfg core.Config
	switch profile {
	case "fast":
		cfg = core.DefaultConfig()
	case "paper":
		cfg = core.PaperConfig()
	default:
		return core.Config{}, wemac.Config{}, fmt.Errorf("unknown profile %q", profile)
	}
	cfg.Seed = seed
	dcfg := wemac.DefaultConfig()
	dcfg.Seed = seed
	if scale != 1.0 {
		for i, s := range dcfg.ArchetypeSizes {
			n := int(float64(s)*scale + 0.5)
			if n < 2 {
				n = 2
			}
			dcfg.ArchetypeSizes[i] = n
		}
	}
	return cfg, dcfg, nil
}

func printRow(name string, a eval.Agg, paperAcc, paperF1 float64) {
	fmt.Printf("%-22s %10.2f %10.2f %10.2f %10.2f   [%.2f / %.2f]\n",
		name, a.MeanAcc, a.StdAcc, a.MeanF1, a.StdF1, paperAcc, paperF1)
}

func printQuoted(name string, acc, accStd, f1, f1Std float64) {
	fmt.Printf("%-22s %10.2f %10.2f %10.2f %10.2f   [quoted]\n", name, acc, accStd, f1, f1Std)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-table1:", err)
		os.Exit(1)
	}
}
