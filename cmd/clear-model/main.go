// Command clear-model prints the Fig. 2 CNN-LSTM architecture: per-layer
// output shapes, parameter counts and multiply-accumulate estimates, for
// both the paper-size profile and the fast experiment profile, plus the
// simulated per-device inference cost of each.
//
// Usage:
//
//	clear-model [-windows W]
package main

import (
	"flag"
	"fmt"

	"repro/internal/edge"
	"repro/internal/nn"
)

func main() {
	windows := flag.Int("windows", 8, "feature-map window count W")
	flag.Parse()

	for _, prof := range []struct {
		name string
		cfg  nn.ModelConfig
	}{
		{"paper profile (Fig. 2)", nn.PaperModelConfig(*windows)},
		{"fast profile", nn.FastModelConfig(*windows)},
	} {
		m := nn.NewCNNLSTM(prof.cfg)
		in := []int{prof.cfg.InH, prof.cfg.InW}
		fmt.Printf("=== %s — input %d×%d feature map ===\n", prof.name, in[0], in[1])
		fmt.Print(m.Summary(in))
		fmt.Printf("\nsimulated single-inference latency:\n")
		for _, d := range edge.Devices() {
			c := d.Cost(m, in, 0, 0)
			fmt.Printf("  %-12s %8.2f ms  @ %.2f W\n", d.Name, c.TestS*1000, c.MPCTestW)
		}
		fmt.Println()
	}
}
