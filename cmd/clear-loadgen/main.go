// Command clear-loadgen replays synthetic WEMAC users against a running
// clear-serve instance in closed loop: every simulated user walks the
// whole lifecycle — enrol, stream the unlabeled cold-start budget, get
// assigned, upload labels, wait out the asynchronous fine-tune, then
// stream the remaining windows as a monitored session. It reports
// throughput, client-side latency quantiles, shed rate, and (because the
// generator knows each user's ground-truth archetype) cold-start
// assignment accuracy.
//
// Usage:
//
//	clear-loadgen [-addr http://localhost:8080] [-users 32] [-concurrency 32]
//	              [-trials 10] [-trialsec 45] [-seed 99] [-ftfrac 0.2]
//	              [-raw] [-keep]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/features"
	"repro/internal/wemac"
)

// JSON mirrors of the serve API types (the loadgen speaks only HTTP, as a
// real client would).
type createReq struct {
	UserID          int     `json:"user_id"`
	ExpectedWindows int     `json:"expected_windows"`
	AssignFrac      float64 `json:"assign_frac,omitempty"`
}
type createResp struct {
	ID       string `json:"id"`
	AssignAt int    `json:"assign_at"`
}
type windowResp struct {
	State        string    `json:"state"`
	Cluster      *int      `json:"cluster,omitempty"`
	Probs        []float64 `json:"probs,omitempty"`
	Personalized bool      `json:"personalized"`
	BatchSize    int       `json:"batch_size"`
}
type statusResp struct {
	State        string `json:"state"`
	Personalized bool   `json:"personalized"`
}
type statsResp struct {
	ClusterArchetypes []int `json:"cluster_archetypes"`
	Shed              int64 `json:"shed"`
}

// userResult is one simulated user's outcome.
type userResult struct {
	ok           bool
	err          error
	cluster      int
	archetype    int
	personalized bool
	lifecycleS   float64
	correct      int // monitored windows predicted correctly
	monitored    int
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "clear-serve base URL")
		users    = flag.Int("users", 32, "simulated users")
		conc     = flag.Int("concurrency", 32, "concurrent sessions")
		trials   = flag.Int("trials", 10, "windows per user")
		trialSec = flag.Float64("trialsec", 45, "recording seconds per window")
		seed     = flag.Int64("seed", 99, "generator seed (keep distinct from the server's)")
		ftFrac   = flag.Float64("ftfrac", 0.2, "labelled fraction uploaded for fine-tuning")
		raw      = flag.Bool("raw", false, "send raw signal recordings instead of precomputed maps")
		keep     = flag.Bool("keep", false, "leave sessions open instead of closing them")
		windows  = flag.Int("mapwindows", 8, "feature-map windows (must match the server profile)")
		winSec   = flag.Float64("mapwinsec", 8, "feature window seconds (must match the server profile)")
	)
	flag.Parse()

	// Spread users across the four archetypes so assignment accuracy is
	// measurable for every cluster.
	sizes := make([]int, 4)
	for i := 0; i < *users; i++ {
		sizes[i%4]++
	}
	fmt.Printf("generating %d synthetic users (%v, %d trials × %.0fs)...\n",
		*users, sizes, *trials, *trialSec)
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     sizes,
		TrialsPerVolunteer: *trials,
		TrialSec:           *trialSec,
		Seed:               *seed,
	})
	ecfg := features.ExtractorConfig{WindowSec: *winSec, Windows: *windows}
	var maps []*wemac.UserMaps
	if !*raw {
		var err error
		maps, err = wemac.ExtractAll(ds, ecfg)
		die(err)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	var (
		latMu     sync.Mutex
		latencies []float64 // ms, per window POST
		sheds     int64
	)
	observe := func(d time.Duration, shed int) {
		latMu.Lock()
		latencies = append(latencies, float64(d.Microseconds())/1000)
		sheds += int64(shed)
		latMu.Unlock()
	}

	start := time.Now()
	results := make([]userResult, *users)
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	for i, v := range ds.Volunteers {
		wg.Add(1)
		go func(i int, v *wemac.Volunteer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var um *wemac.UserMaps
			if maps != nil {
				um = maps[i]
			}
			results[i] = runUser(client, *addr, v, um, *ftFrac, *keep, observe)
		}(i, v)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Cluster → dominant archetype, for assignment scoring.
	var stats statsResp
	if err := getJSON(client, *addr+"/v1/stats", &stats); err != nil {
		die(err)
	}

	completed, assignedRight, personalized := 0, 0, 0
	correct, monitored := 0, 0
	var lifecycleSum float64
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "user failed: %v\n", r.err)
			continue
		}
		completed++
		lifecycleSum += r.lifecycleS
		if r.personalized {
			personalized++
		}
		if r.cluster >= 0 && r.cluster < len(stats.ClusterArchetypes) &&
			stats.ClusterArchetypes[r.cluster] == r.archetype {
			assignedRight++
		}
		correct += r.correct
		monitored += r.monitored
	}

	latMu.Lock()
	sort.Float64s(latencies)
	latMu.Unlock()
	nw := len(latencies)
	fmt.Printf("\n── loadgen report ──\n")
	fmt.Printf("users            %d/%d lifecycles completed (%.1f sessions/sec)\n",
		completed, *users, float64(completed)/elapsed.Seconds())
	fmt.Printf("windows          %d posted in %v (%.1f windows/sec)\n",
		nw, elapsed.Round(time.Millisecond), float64(nw)/elapsed.Seconds())
	if nw > 0 {
		fmt.Printf("window latency   p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
			quantile(latencies, 0.50), quantile(latencies, 0.95),
			quantile(latencies, 0.99), latencies[nw-1])
	}
	fmt.Printf("mean lifecycle   %.2fs (enrol → assign → finetune → monitor)\n",
		lifecycleSum/math.Max(1, float64(completed)))
	fmt.Printf("personalized     %d/%d sessions\n", personalized, completed)
	if completed > 0 {
		fmt.Printf("assignment acc   %.0f%% (cold-start cluster matches ground-truth archetype)\n",
			100*float64(assignedRight)/float64(completed))
	}
	if monitored > 0 {
		fmt.Printf("monitor acc      %.1f%% over %d classified windows\n",
			100*float64(correct)/float64(monitored), monitored)
	}
	fmt.Printf("sheds (client)   %d retried;  server shed counter %d\n", sheds, stats.Shed)
	if completed < *users {
		os.Exit(1)
	}
}

// runUser drives one full lifecycle.
func runUser(client *http.Client, addr string, v *wemac.Volunteer, um *wemac.UserMaps,
	ftFrac float64, keep bool, observe func(time.Duration, int)) userResult {

	res := userResult{cluster: -1, archetype: v.Archetype}
	total := len(v.Trials)
	var cr createResp
	if err := postJSON(client, addr+"/v1/sessions",
		createReq{UserID: v.ID, ExpectedWindows: total}, &cr); err != nil {
		res.err = fmt.Errorf("create: %w", err)
		return res
	}
	base := addr + "/v1/sessions/" + cr.ID
	lifecycleStart := time.Now()

	// Labels cover the first ftFrac of post-assignment windows.
	ftN := int(ftFrac*float64(total) + 0.5)
	labels := map[int]int{}

	for t := 0; t < total; t++ {
		payload := windowPayload(v, um, t)
		var wr windowResp
		start := time.Now()
		shed, err := postRetry(client, base+"/windows", payload, &wr)
		observe(time.Since(start), shed)
		if err != nil {
			res.err = fmt.Errorf("window %d: %w", t, err)
			return res
		}
		if wr.Cluster != nil {
			res.cluster = *wr.Cluster
		}
		if len(wr.Probs) > 1 {
			res.monitored++
			pred := 0
			if wr.Probs[1] > wr.Probs[0] {
				pred = 1
			}
			if pred == int(v.Trials[t].Label) {
				res.correct++
			}
		}
		res.personalized = res.personalized || wr.Personalized

		// Right after assignment, upload the labelled budget and wait for
		// the personalised checkpoint before streaming on.
		if t == cr.AssignAt-1 && ftN > 0 {
			for j := t + 1 - ftN; j <= t; j++ {
				if j >= 0 {
					labels[j] = int(v.Trials[j].Label)
				}
			}
			var lr statusResp
			if _, err := postRetry(client, base+"/labels",
				map[string]any{"labels": labels}, &lr); err != nil {
				res.err = fmt.Errorf("labels: %w", err)
				return res
			}
			if err := waitMonitoring(client, base); err != nil {
				res.err = err
				return res
			}
		}
	}
	res.lifecycleS = time.Since(lifecycleStart).Seconds()
	res.ok = true
	if !keep {
		req, _ := http.NewRequest(http.MethodDelete, base, nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	return res
}

// windowPayload builds the window body: a precomputed map when available,
// raw signals otherwise.
func windowPayload(v *wemac.Volunteer, um *wemac.UserMaps, t int) map[string]any {
	if um != nil {
		m := um.Maps[t].Map
		return map[string]any{"map": map[string]any{
			"rows": m.Dim(0), "cols": m.Dim(1), "data": m.Data,
		}}
	}
	rec := v.Trials[t].Rec
	return map[string]any{"recording": map[string]any{
		"bvp": rec.BVP, "bvp_fs": rec.BVPFs,
		"gsr": rec.GSR, "gsr_fs": rec.GSRFs,
		"skt": rec.SKT, "skt_fs": rec.SKTFs,
	}}
}

// waitMonitoring polls the session until the fine-tune lands.
func waitMonitoring(client *http.Client, base string) error {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		var st statusResp
		if err := getJSON(client, base, &st); err != nil {
			return fmt.Errorf("status: %w", err)
		}
		if st.State == "monitoring" || st.Personalized {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("fine-tune did not complete within 5m")
}

// postRetry POSTs with bounded retry on 429, returning how many times the
// request was shed.
func postRetry(client *http.Client, url string, body any, out any) (int, error) {
	shed := 0
	for {
		err := postJSON(client, url, body, out)
		if err == nil {
			return shed, nil
		}
		if he, ok := err.(*httpError); ok && he.code == http.StatusTooManyRequests && shed < 50 {
			shed++
			time.Sleep(time.Duration(10+5*shed) * time.Millisecond)
			continue
		}
		return shed, err
	}
}

type httpError struct {
	code int
	body string
}

func (e *httpError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.body) }

func postJSON(client *http.Client, url string, body, out any) error {
	js, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(js))
	if err != nil {
		return err
	}
	return decodeJSON(resp, out)
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, out)
}

func decodeJSON(resp *http.Response, out any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return &httpError{code: resp.StatusCode, body: string(bytes.TrimSpace(raw))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// quantile reads a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-loadgen:", err)
		os.Exit(1)
	}
}
