// Command clear-loadgen replays synthetic WEMAC users against a running
// clear-serve instance in closed loop: every simulated user walks the
// whole lifecycle — enrol, stream the unlabeled cold-start budget, get
// assigned, upload labels, wait out the asynchronous fine-tune, then
// stream the remaining windows as a monitored session. It reports
// throughput, client-side latency quantiles, shed rate, and (because the
// generator knows each user's ground-truth archetype) cold-start
// assignment accuracy.
//
// Usage:
//
//	clear-loadgen [-addr http://localhost:8080[,http://localhost:8081,...]]
//	              [-users 32] [-concurrency 32]
//	              [-trials 10] [-trialsec 45] [-seed 99] [-ftfrac 0.2]
//	              [-raw] [-keep] [-tracesample F]
//	              [-chaos] [-chaosdrop F] [-accfloor F] [-expectbreaker]
//	              [-storeoutage D] [-outageafter D]
//	              [-partitionfor D] [-partitionafter D]
//	              [-joinafter D] [-joinnode url] [-drainafter D] [-drainnode url]
//	              [-driftusers N] [-driftstart F] [-expectreassign]
//
// -joinafter/-drainafter turn the run into a live-topology smoke (the
// servers must run with -membership-admin): at t+joinafter the loadgen
// POSTs a membership join for -joinnode (a standby replica started
// outside the ring) to the first endpoint and adds it to the rotation;
// at t+drainafter it POSTs a drain to -drainnode (default: the last
// endpoint) and removes it from the rotation. Either flag appends
// topology verdicts to -json: zero_loss_on_join (every lifecycle
// completed, zero unexpected 5xx, the join was applied), drain_clean
// (the drained replica handed off every session — none remaining, not
// incomplete — and the survivors' ring excludes it at a higher epoch),
// and, when a join ran, minimal_movement (the fraction of this run's
// session IDs whose ring owner changed stays near the 1/N consistent-
// hashing ideal, computed with the server's own ring arithmetic).
//
// -addr accepts a comma-separated list of clear-serve replicas. Requests
// rotate round-robin across the pool (the router forwards per-session
// requests to the owning replica, so any endpoint can serve any session),
// and a transport error, 502, or 503 — the shapes a replica mid-restart
// produces — rotates to the next endpoint instead of failing the
// lifecycle. This is the client half of the rolling-restart smoke: with
// replicas restarting under it, the run must still complete every
// lifecycle with zero unexpected 5xx (the no_5xx verdict in -json).
//
// -chaos turns the run into a fault-tolerance check: each window is
// dropped-channel-corrupted client-side at rate -chaosdrop (simulating a
// dead sensor stream; pair with the server's -fault-* flags for build
// failures and stalls), sessions tolerate degraded-mode serving, rejected
// windows (422) are re-read and re-sent, timeouts (504) are absorbed, and
// the run exits non-zero unless the SLOs hold: every lifecycle completes,
// no 5xx server errors, assignment accuracy stays above -accfloor, and —
// with -expectbreaker — a circuit breaker is observed opening and closing
// again during the run.
//
// -storeoutage and -partitionfor arm server-side chaos windows mid-run
// through POST /v1/chaos (the server must run with -chaos-admin): the
// store outage fails every replica's store writes for the window, driving
// the write-behind replay queue, store breaker, and durability admission
// control; the partition silences one replica (the last in -addr) so the
// others must fail its sessions over and hand them back afterwards. A
// run with either window armed appends four extra SLO verdicts —
// no_lifecycle_loss, replay_drained (all queues back to zero, nothing
// dropped), handed_back (local == owned everywhere after a recovery
// wait), and shed_retry_after (every 503 carried a Retry-After hint) —
// and fails unless all hold.
//
// -tracesample F sends a client-generated W3C traceparent on roughly that
// fraction of requests and turns the run into a distributed-tracing
// conformance check: the server must echo the same 128-bit trace id back
// on every response (including 422/429/504 error paths), and for every
// sampled non-2xx response the trace id in the error body must resolve
// through GET /v1/traces/<id> (errors bypass the server's tail sampler).
// Any echo mismatch or unresolvable error trace fails the run.
//
// -driftusers turns the first N users into drift personas: their
// physiology interpolates toward a different archetype from -driftstart of
// the stream onward (wemac.DriftSpec), exercising the server's
// self-healing assignment detector. Assignment accuracy is scored on the
// FIRST cluster each session reports, so a mid-stream re-assignment does
// not corrupt the cold-start metric. With -expectreassign the run fails
// unless at least one detector re-assignment is observed (tune the
// server's -drift-* flags down so the detector can fire within -trials
// windows), no drift session flaps (re-assigns more than once), and the
// zero-5xx SLO holds.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/shard"
	"repro/internal/wemac"
)

// JSON mirrors of the serve API types (the loadgen speaks only HTTP, as a
// real client would).
type createReq struct {
	UserID          int     `json:"user_id"`
	ExpectedWindows int     `json:"expected_windows"`
	AssignFrac      float64 `json:"assign_frac,omitempty"`
}
type createResp struct {
	ID       string `json:"id"`
	AssignAt int    `json:"assign_at"`
}
type windowResp struct {
	State        string    `json:"state"`
	Cluster      *int      `json:"cluster,omitempty"`
	Probs        []float64 `json:"probs,omitempty"`
	Personalized bool      `json:"personalized"`
	Degraded     bool      `json:"degraded"`
	Imputed      bool      `json:"imputed"`
	Reassigned   bool      `json:"reassigned"`
	BatchSize    int       `json:"batch_size"`
}
type statusResp struct {
	State        string `json:"state"`
	Personalized bool   `json:"personalized"`
	Degraded     bool   `json:"degraded"`
}
type statsResp struct {
	ClusterArchetypes []int    `json:"cluster_archetypes"`
	Shed              int64    `json:"shed"`
	Breakers          []string `json:"breakers"`
	DegradedSessions  int      `json:"degraded_sessions"`
	CorruptWindows    int64    `json:"corrupt_windows"`
	ImputedWindows    int64    `json:"imputed_windows"`
	FineTuneRetries   int64    `json:"finetune_retries"`
	FineTuneGiveups   int64    `json:"finetune_giveups"`
	RestoredSessions  int64    `json:"restored_sessions"`
	DriftVerdicts     int64    `json:"drift_verdicts"`
	DriftReassigns    int64    `json:"drift_reassigns"`
	DriftSuppressed   int64    `json:"drift_suppressed"`
	WriteBehind       *struct {
		Queue           int    `json:"queue"`
		Cap             int    `json:"cap"`
		Enqueued        int64  `json:"enqueued"`
		Replayed        int64  `json:"replayed"`
		Dropped         int64  `json:"dropped"`
		Shed            int64  `json:"shed"`
		Breaker         string `json:"breaker"`
		PersistFailures int64  `json:"persist_failures"`
	} `json:"write_behind"`
	Shard *struct {
		Self          string   `json:"self"`
		Down          []string `json:"down"`
		OwnedSessions int      `json:"owned_sessions"`
		LocalSessions int      `json:"local_sessions"`
		Failovers     int64    `json:"failovers"`
		Evicted       int64    `json:"evicted_sessions"`
	} `json:"shard"`
	Membership *struct {
		Epoch           uint64   `json:"epoch"`
		Members         []string `json:"members"`
		Draining        bool     `json:"draining"`
		DrainRemaining  int      `json:"drain_remaining"`
		DrainHandedOff  int      `json:"drain_handed_off"`
		DrainFailures   int      `json:"drain_failures"`
		DrainIncomplete bool     `json:"drain_incomplete"`
	} `json:"membership"`
}

// membershipResp mirrors GET /v1/membership (and the POST responses).
type membershipResp struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
	Hash    string   `json:"hash"`
}

// shed503 / shed503NoRA count 503 responses and the subset missing a
// Retry-After header — under chaos windows every shed must tell the
// client when to come back (the shed_retry_after verdict).
var shed503, shed503NoRA int64

// srvErrs counts 5xx responses other than the tolerated 503/504 — in chaos
// mode any of these (a 500 is what a handler bug looks like) fails the SLO.
var srvErrs int64

// endpoints is the rotating pool of clear-serve base URLs. A single -addr
// degenerates to the classic one-server loop; a comma-separated list
// spreads requests round-robin and lets postRetry/getEP fail over to the
// next replica when one is mid-restart. The pool is mutable mid-run: the
// topology choreography adds a joined replica and removes a draining one
// (mu guards urls; pick and snapshot are the only readers during the run).
type endpoints struct {
	mu   sync.RWMutex
	urls []string
	next uint64
}

func newEndpoints(addr string) *endpoints {
	eps := &endpoints{}
	for _, u := range strings.Split(addr, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			eps.urls = append(eps.urls, u)
		}
	}
	if len(eps.urls) == 0 {
		die(fmt.Errorf("-addr: no endpoints in %q", addr))
	}
	return eps
}

// pick returns the next endpoint round-robin (atomic, so concurrent
// sessions spread evenly without coordination).
func (e *endpoints) pick() string {
	n := atomic.AddUint64(&e.next, 1)
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.urls[int((n-1)%uint64(len(e.urls)))]
}

// snapshot returns a copy of the current pool.
func (e *endpoints) snapshot() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.urls...)
}

// add admits a replica to the rotation (idempotent).
func (e *endpoints) add(u string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, have := range e.urls {
		if have == u {
			return
		}
	}
	e.urls = append(e.urls, u)
}

// remove drops a replica from the rotation.
func (e *endpoints) remove(u string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	live := e.urls[:0]
	for _, have := range e.urls {
		if have != u {
			live = append(live, have)
		}
	}
	if len(live) > 0 { // never empty the pool
		e.urls = live
	}
}

// rotatable reports whether an error warrants retrying the request on the
// next endpoint: transport failures (connection refused/reset — the
// replica is down or draining its listener) and 502/503 responses. A 502
// still counts in srvErrs — this stack never legitimately emits one — but
// the lifecycle gets a chance to complete elsewhere.
func rotatable(err error) bool {
	if he, ok := err.(*httpError); ok {
		return he.code == http.StatusBadGateway || he.code == http.StatusServiceUnavailable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// traceCheck implements -tracesample. Every `every`-th request (atomic
// counter, so the schedule is deterministic regardless of goroutine
// interleaving) carries a client traceparent whose 128-bit id is derived
// from the counter; the response headers must echo it and sampled error
// bodies must carry a trace id that resolves via /v1/traces/<id>.
type traceCheckT struct {
	every       int64 // 0 = disabled
	n           int64 // request counter
	sent        int64 // traceparents attached
	mismatch    int64 // responses that did not echo our trace id
	errResolved int64 // error-path traces found in the server store
	errMissing  int64 // ...and those that were not
}

var traceCheck traceCheckT

// armTrace decides whether this request is sampled and, if so, attaches a
// traceparent and returns the 32-hex trace id (empty otherwise).
func armTrace(req *http.Request) string {
	if traceCheck.every <= 0 {
		return ""
	}
	n := atomic.AddInt64(&traceCheck.n, 1)
	if n%traceCheck.every != 0 {
		return ""
	}
	atomic.AddInt64(&traceCheck.sent, 1)
	tid := fmt.Sprintf("%016x%016x", n, n*2654435761+1) // non-zero, unique
	req.Header.Set("traceparent", fmt.Sprintf("00-%s-%016x-01", tid, n))
	return tid
}

// checkTraceEcho verifies the response carries our trace id back: the
// echoed traceparent must hold the full 128-bit id and X-Trace-Id the low
// 64 bits (the short form used in logs, error bodies, and /v1/traces).
func checkTraceEcho(resp *http.Response, tid string) {
	if tid == "" {
		return
	}
	tp := resp.Header.Get("traceparent")
	short := resp.Header.Get("X-Trace-Id")
	if !strings.Contains(tp, tid) || short != tid[16:] {
		atomic.AddInt64(&traceCheck.mismatch, 1)
	}
}

// resolveErrTrace runs on sampled non-2xx responses: the error body's
// trace_id must exist in the server's trace store (errors bypass tail
// sampling). The lookup deliberately bypasses armTrace so a failing
// lookup cannot recurse into more sampled requests.
func resolveErrTrace(client *http.Client, reqURL, tid string, err error) {
	he, ok := err.(*httpError)
	if tid == "" || !ok {
		return
	}
	var body struct {
		TraceID string `json:"trace_id"`
	}
	base := reqURL
	if i := strings.Index(reqURL, "/v1/"); i >= 0 {
		base = reqURL[:i]
	}
	if json.Unmarshal([]byte(he.body), &body) != nil || body.TraceID != tid[16:] {
		atomic.AddInt64(&traceCheck.errMissing, 1)
		return
	}
	resp, lerr := client.Get(base + "/v1/traces/" + body.TraceID)
	if lerr != nil {
		atomic.AddInt64(&traceCheck.errMissing, 1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		atomic.AddInt64(&traceCheck.errMissing, 1)
		return
	}
	atomic.AddInt64(&traceCheck.errResolved, 1)
}

// probeTraceparent mints a deterministic W3C traceparent outside the
// armTrace counter space, so probe trace ids cannot collide with any id
// the load run minted.
func probeTraceparent(n uint64) (header, tid string) {
	n += 1 << 40
	tid = fmt.Sprintf("%016x%016x", n, n*2654435761+1)
	return fmt.Sprintf("00-%s-%016x-01", tid, n+7), tid
}

// probeDo issues one probe request with an explicit traceparent and
// returns the X-Clear-Node stamp (which replica actually served it)
// alongside the decoded body. It bypasses armTrace/getJSON so the probe
// cannot perturb the run's tracing tallies.
func probeDo(client *http.Client, method, url, traceparent string, body, out any) (string, error) {
	var rd io.Reader
	if body != nil {
		js, err := json.Marshal(body)
		if err != nil {
			return "", err
		}
		rd = bytes.NewReader(js)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	return resp.Header.Get("X-Clear-Node"), decodeJSON(resp, out)
}

// sameNode compares replica URLs modulo a trailing slash.
func sameNode(a, b string) bool {
	return strings.TrimRight(a, "/") == strings.TrimRight(b, "/")
}

// probeTraceStitch drives one cross-node request after the load and
// asserts the fleet observability contract end to end: a traced request
// entering a NON-OWNER replica is forwarded (the X-Clear-Node stamp names
// the owner), and its trace then resolves at that same non-owner as one
// stitched tree with spans from at least two nodes, including the
// `forward` hop attributed to the owner. It runs post-load because the
// server's trace store tail-samples OK traces under sustained QPS; with
// the run drained the probe's trace is always kept. A few full retries
// (fresh session, fresh trace ids) absorb topology transitions mid-probe
// — a restarting replica or a join landing between the create and the
// forwarded GET; in a steady cluster a failure is deterministic.
func probeTraceStitch(client *http.Client, pool []string) (bool, string) {
	detail := ""
	for attempt := uint64(0); attempt < 4; attempt++ {
		var ok bool
		if ok, detail = probeTraceStitchOnce(client, pool, attempt); ok {
			return true, detail
		}
		time.Sleep(500 * time.Millisecond)
	}
	return false, detail
}

func probeTraceStitchOnce(client *http.Client, pool []string, attempt uint64) (bool, string) {
	header, _ := probeTraceparent(2 * attempt)
	var cr createResp
	owner, err := probeDo(client, http.MethodPost, pool[0]+"/v1/sessions", header,
		createReq{UserID: 0, ExpectedWindows: 4}, &cr)
	if err != nil {
		return false, fmt.Sprintf("probe session create failed: %v", err)
	}
	defer probeDo(client, http.MethodDelete, pool[0]+"/v1/sessions/"+cr.ID, "", nil, nil)
	if owner == "" {
		return false, "create response carries no X-Clear-Node stamp"
	}
	entry := ""
	for _, u := range pool {
		if !sameNode(u, owner) {
			entry = u
			break
		}
	}
	if entry == "" {
		return false, fmt.Sprintf("no non-owner entry in pool (owner %s)", owner)
	}

	header, tid := probeTraceparent(2*attempt + 1)
	servedBy, err := probeDo(client, http.MethodGet, entry+"/v1/sessions/"+cr.ID, header, nil, nil)
	if err != nil {
		return false, fmt.Sprintf("forwarded status GET via %s failed: %v", entry, err)
	}
	if !sameNode(servedBy, owner) {
		return false, fmt.Sprintf("status GET via %s served by %q, want owner %q", entry, servedBy, owner)
	}

	// Both segments (the entry's proxy span and the owner's handler span)
	// land asynchronously with the relayed response, so poll briefly.
	var ft struct {
		TraceID string   `json:"trace_id"`
		Nodes   []string `json:"nodes"`
		Spans   []struct {
			Name  string            `json:"name"`
			Node  string            `json:"node"`
			Attrs map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = probeDo(client, http.MethodGet, entry+"/v1/traces/"+tid, "", nil, &ft)
		if err == nil && len(ft.Nodes) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			return false, fmt.Sprintf("trace %s never stitched across >=2 nodes at %s (last: err %v, nodes %v)",
				tid, entry, err, ft.Nodes)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if ft.TraceID != tid {
		return false, fmt.Sprintf("stitched trace id %q, want %q", ft.TraceID, tid)
	}
	nodes := map[string]bool{}
	fwdPeer := ""
	for _, sp := range ft.Spans {
		nodes[sp.Node] = true
		if sp.Name == "forward" && fwdPeer == "" {
			fwdPeer = sp.Attrs["peer"]
		}
	}
	if len(nodes) < 2 {
		return false, fmt.Sprintf("stitched spans cover %d node(s): %v", len(nodes), ft.Nodes)
	}
	if !sameNode(fwdPeer, owner) {
		return false, fmt.Sprintf("forward span peer %q, want owner %q", fwdPeer, owner)
	}
	return true, fmt.Sprintf("trace %s resolved at non-owner %s: spans from %d nodes, forward hop -> %s",
		tid[16:], entry, len(nodes), owner)
}

// chaosCfg is the per-run chaos-mode configuration; rng draws are per-user
// (seeded from the run seed + user ID) so runs replay deterministically
// regardless of goroutine scheduling.
type chaosCfg struct {
	enabled bool
	drop    float64
}

// chaosTally aggregates what the chaos run absorbed.
type chaosTally struct {
	mu       sync.Mutex
	dropped  int  // windows corrupted client-side
	rejected int  // 422s re-read and re-sent
	timeouts int  // 504s absorbed
	degraded int  // windows answered from the cluster baseline
	imputed  int  // windows the server repaired
	sawOpen  bool // a breaker was observed open
	reclosed bool // ...and later observed closed again
}

// loadgenReport is the -json machine-readable mirror of the closed-loop
// report. It shares the clear-bench conventions (a "schema" discriminator,
// a "serve" block with windows_per_sec / p50_us-style keys) so one parser
// handles both artifacts in CI.
type loadgenReport struct {
	Schema string `json:"schema"` // "clear-loadgen/1"
	Meta   struct {
		Go          string `json:"go"`
		Addr        string `json:"addr"`
		Users       int    `json:"users"`
		Concurrency int    `json:"concurrency"`
		Trials      int    `json:"trials"`
		Seed        int64  `json:"seed"`
		Chaos       bool   `json:"chaos,omitempty"`
		DriftUsers  int    `json:"drift_users,omitempty"`
	} `json:"meta"`
	Serve struct {
		Windows       int     `json:"windows"`
		ElapsedSec    float64 `json:"elapsed_sec"`
		WindowsPerSec float64 `json:"windows_per_sec"`
		P50US         float64 `json:"p50_us"`
		P95US         float64 `json:"p95_us"`
		P99US         float64 `json:"p99_us"`
		MaxUS         float64 `json:"max_us"`
		ShedsClient   int64   `json:"sheds_client"`
		ShedsServer   int64   `json:"sheds_server"`
	} `json:"serve"`
	Lifecycle struct {
		Completed        int     `json:"completed"`
		Personalized     int     `json:"personalized"`
		MeanLifecycleSec float64 `json:"mean_lifecycle_sec"`
		AssignAccPct     float64 `json:"assign_acc_pct"`
		MonitorAccPct    float64 `json:"monitor_acc_pct"`
		MonitoredWindows int     `json:"monitored_windows"`
		Reassigned       int     `json:"reassigned_sessions,omitempty"`
		Flapped          int     `json:"flapped_sessions,omitempty"`
	} `json:"lifecycle"`
	Tracing *tracingReport `json:"tracing,omitempty"`
	// ChaosWindows aggregates the write-behind / failover surface across
	// all replicas after the recovery wait; present when -storeoutage or
	// -partitionfor armed a window.
	ChaosWindows *chaosWindowsReport `json:"chaos_windows,omitempty"`
	SLO          []sloVerdict        `json:"slo"`
	Pass         bool                `json:"pass"`
}

type chaosWindowsReport struct {
	StoreOutageSec  float64 `json:"store_outage_sec,omitempty"`
	PartitionSec    float64 `json:"partition_sec,omitempty"`
	PartitionTarget string  `json:"partition_target,omitempty"`
	ReplayEnqueued  int64   `json:"replay_enqueued"`
	ReplayReplayed  int64   `json:"replay_replayed"`
	ReplayDropped   int64   `json:"replay_dropped"`
	ReplayQueueFinal int    `json:"replay_queue_final"`
	PersistFailures int64   `json:"persist_failures"`
	ShedCreates     int64   `json:"shed_creates"`
	Failovers       int64   `json:"failovers"`
	HandedBack      bool    `json:"handed_back"`
	Sheds503        int64   `json:"sheds_503"`
	Sheds503NoRA    int64   `json:"sheds_503_no_retry_after"`
	RecoverySec     float64 `json:"recovery_sec"`
}

// tracingReport is the -tracesample block of the -json report.
type tracingReport struct {
	Sent        int64 `json:"sent"`
	Mismatches  int64 `json:"mismatches"`
	ErrResolved int64 `json:"err_resolved"`
	ErrMissing  int64 `json:"err_missing"`
	// Stitched is the post-run cross-node stitch probe verdict; present
	// only when the endpoint pool spans more than one replica.
	Stitched *bool `json:"stitched,omitempty"`
}

// sloVerdict is one named pass/fail check from the run's SLO gate.
type sloVerdict struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// writeReport emits the -json artifact ("-" = stdout).
func writeReport(path string, rep *loadgenReport) {
	js, err := json.MarshalIndent(rep, "", "  ")
	die(err)
	js = append(js, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(js)
	} else {
		err = os.WriteFile(path, js, 0o644)
		if err == nil {
			fmt.Printf("wrote %s\n", path)
		}
	}
	die(err)
}

// userResult is one simulated user's outcome.
type userResult struct {
	ok           bool
	err          error
	id           string // session ID (for post-hoc ring-movement math)
	base         string // session URL, set when the session was kept open
	cluster      int    // FIRST cluster the session reported (cold-start)
	archetype    int
	drifter      bool // user is a drift persona
	reassigns    int  // detector re-assignments observed mid-stream
	personalized bool
	lifecycleS   float64
	correct      int // monitored windows predicted correctly
	monitored    int
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "clear-serve base URL(s), comma-separated; requests rotate across the pool")
		users    = flag.Int("users", 32, "simulated users")
		conc     = flag.Int("concurrency", 32, "concurrent sessions")
		trials   = flag.Int("trials", 10, "windows per user")
		trialSec = flag.Float64("trialsec", 45, "recording seconds per window")
		seed     = flag.Int64("seed", 99, "generator seed (keep distinct from the server's)")
		ftFrac   = flag.Float64("ftfrac", 0.2, "labelled fraction uploaded for fine-tuning")
		raw      = flag.Bool("raw", false, "send raw signal recordings instead of precomputed maps")
		keep     = flag.Bool("keep", false, "leave sessions open instead of closing them")
		traceFr  = flag.Float64("tracesample", 0, "fraction of requests sent with a client traceparent; echo and error-trace resolution are asserted")
		windows  = flag.Int("mapwindows", 8, "feature-map windows (must match the server profile)")
		winSec   = flag.Float64("mapwinsec", 8, "feature window seconds (must match the server profile)")

		chaos         = flag.Bool("chaos", false, "chaos mode: inject client-side sensor dropouts and assert robustness SLOs")
		chaosDrop     = flag.Float64("chaosdrop", 0.15, "chaos: per-window channel-dropout rate")
		accFloor      = flag.Float64("accfloor", 25, "chaos: minimum assignment accuracy %% (4 clusters ⇒ 25 is chance)")
		expectBreaker = flag.Bool("expectbreaker", false, "chaos: require a breaker open→closed cycle to be observed")

		storeOutage    = flag.Duration("storeoutage", 0, "chaos window: fail store writes on every replica for this long (server needs -chaos-admin)")
		outageAfter    = flag.Duration("outageafter", 2*time.Second, "chaos window: delay before arming the store outage")
		partitionFor   = flag.Duration("partitionfor", 0, "chaos window: partition one replica (the last in -addr) for this long")
		partitionAfter = flag.Duration("partitionafter", 3*time.Second, "chaos window: delay before arming the partition")

		joinAfter  = flag.Duration("joinafter", 0, "topology: POST a membership join for -joinnode this long into the run (server needs -membership-admin)")
		joinNode   = flag.String("joinnode", "", "topology: replica URL to join (a standby started outside the ring)")
		drainAfter = flag.Duration("drainafter", 0, "topology: POST a graceful drain to -drainnode this long into the run")
		drainNode  = flag.String("drainnode", "", "topology: replica URL to drain (default: the last endpoint in -addr)")

		driftUsers     = flag.Int("driftusers", 0, "turn the first N users into drift personas (archetype migrates mid-stream)")
		driftStart     = flag.Float64("driftstart", 0.35, "stream fraction at which drift personas start migrating")
		expectReassign = flag.Bool("expectreassign", false, "chaos: require ≥1 detector re-assignment, and no session to flap")

		jsonOut = flag.String("json", "", "write the closed-loop report as machine-readable JSON to this path ('-' for stdout)")
	)
	flag.Parse()

	eps := newEndpoints(*addr)
	if len(eps.snapshot()) > 1 {
		fmt.Printf("endpoint pool: %d replicas, rotating with failover on transport errors/502/503\n", len(eps.snapshot()))
	}

	if *traceFr > 0 {
		if *traceFr >= 1 {
			traceCheck.every = 1
		} else {
			traceCheck.every = int64(1/(*traceFr) + 0.5)
		}
		fmt.Printf("trace sampling: every %d requests carry a client traceparent\n", traceCheck.every)
	}

	// Spread users across the four archetypes so assignment accuracy is
	// measurable for every cluster.
	sizes := make([]int, 4)
	for i := 0; i < *users; i++ {
		sizes[i%4]++
	}
	// Drift personas: the first -driftusers volunteers migrate toward the
	// "opposite" archetype (two apart, the largest physiological jump) from
	// -driftstart of their stream onward. Generation interleaves archetypes
	// round-robin, so volunteer i belongs to archetype i%4.
	if *driftUsers > *users {
		*driftUsers = *users
	}
	var specs []wemac.DriftSpec
	for i := 0; i < *driftUsers; i++ {
		specs = append(specs, wemac.DriftSpec{
			User: i, To: (i%4 + 2) % 4, StartFrac: *driftStart,
		})
	}
	fmt.Printf("generating %d synthetic users (%v, %d trials × %.0fs, %d drift personas)...\n",
		*users, sizes, *trials, *trialSec, len(specs))
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     sizes,
		TrialsPerVolunteer: *trials,
		TrialSec:           *trialSec,
		Drift:              specs,
		Seed:               *seed,
	})
	ecfg := features.ExtractorConfig{WindowSec: *winSec, Windows: *windows}
	var maps []*wemac.UserMaps
	if !*raw {
		var err error
		maps, err = wemac.ExtractAll(ds, ecfg)
		die(err)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	var (
		latMu     sync.Mutex
		latencies []float64 // ms, per window POST
		sheds     int64
	)
	observe := func(d time.Duration, shed int) {
		latMu.Lock()
		latencies = append(latencies, float64(d.Microseconds())/1000)
		sheds += int64(shed)
		latMu.Unlock()
	}

	ccfg := chaosCfg{enabled: *chaos, drop: *chaosDrop}
	tally := &chaosTally{}
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	if *chaos {
		fmt.Printf("chaos mode: client dropout rate %.2f, accuracy floor %.0f%%, expect breaker cycle %v\n",
			*chaosDrop, *accFloor, *expectBreaker)
		// Watch the breaker states through the public stats surface; the
		// SLO wants an open breaker to be seen healing, not just tripping.
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-pollDone:
					return
				case <-time.After(50 * time.Millisecond):
				}
				var st statsResp
				if err := getEP(client, eps, "/v1/stats", &st); err != nil {
					continue
				}
				tally.mu.Lock()
				open := false
				for _, b := range st.Breakers {
					if b == "open" || b == "half-open" {
						open = true
					}
				}
				if open {
					tally.sawOpen = true
				} else if tally.sawOpen {
					tally.reclosed = true
				}
				tally.mu.Unlock()
			}
		}()
	}

	// Chaos windows arm mid-run via POST /v1/chaos: the store outage hits
	// every replica (each process wraps its own injector around the shared
	// store, so a "disk outage" must be armed everywhere); the partition
	// isolates exactly one replica — deterministically the last in -addr —
	// so the others' routers must fail its sessions over and hand them
	// back when the window closes.
	windowsArmed := *storeOutage > 0 || *partitionFor > 0
	var partitionTarget string
	if *partitionFor > 0 {
		us := eps.snapshot()
		partitionTarget = us[len(us)-1]
	}
	if *storeOutage > 0 {
		d := *storeOutage
		time.AfterFunc(*outageAfter, func() {
			for _, u := range eps.snapshot() {
				if err := postJSON(client, u+"/v1/chaos",
					map[string]any{"store_outage_ms": d.Milliseconds()}, nil); err != nil {
					fmt.Fprintf(os.Stderr, "chaos: arming store outage on %s: %v\n", u, err)
				}
			}
			fmt.Printf("chaos: store outage armed for %v on %d replicas\n", d, len(eps.snapshot()))
		})
	}
	if *partitionFor > 0 {
		d, target := *partitionFor, partitionTarget
		time.AfterFunc(*partitionAfter, func() {
			if err := postJSON(client, target+"/v1/chaos",
				map[string]any{"partition_ms": d.Milliseconds()}, nil); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: arming partition on %s: %v\n", target, err)
			} else {
				fmt.Printf("chaos: %s partitioned for %v\n", target, d)
			}
		})
	}

	// Topology choreography: join a standby replica and/or gracefully drain
	// one mid-run (the servers must run with -membership-admin). The join
	// goes to the first endpoint (any member can admit); the drain goes to
	// the draining replica itself, which leaves the ring and hands its
	// sessions off while the load keeps flowing.
	topoArmed := *joinAfter > 0 || *drainAfter > 0
	var topo struct {
		mu            sync.Mutex
		initMembers   []string
		joined        bool
		joinEpoch     uint64
		drainTarget   string
		drainAccepted bool
		preDrainEpoch uint64
	}
	if topoArmed {
		if *joinAfter > 0 && *joinNode == "" {
			die(fmt.Errorf("-joinafter requires -joinnode"))
		}
		var mv membershipResp
		if err := getEP(client, eps, "/v1/membership", &mv); err != nil {
			die(fmt.Errorf("topology run needs GET /v1/membership (router mode): %w", err))
		}
		topo.initMembers = mv.Members
		topo.drainTarget = strings.TrimRight(*drainNode, "/")
		if topo.drainTarget == "" {
			us := eps.snapshot()
			topo.drainTarget = us[len(us)-1]
		}
		fmt.Printf("topology: initial epoch %d, members %v\n", mv.Epoch, mv.Members)
	}
	if *joinAfter > 0 {
		node := strings.TrimRight(*joinNode, "/")
		admin := eps.snapshot()[0]
		time.AfterFunc(*joinAfter, func() {
			var v membershipResp
			if err := postJSON(client, admin+"/v1/membership",
				map[string]any{"action": "join", "node": node}, &v); err != nil {
				fmt.Fprintf(os.Stderr, "topology: join %s: %v\n", node, err)
				return
			}
			eps.add(node)
			topo.mu.Lock()
			topo.joined = true
			topo.joinEpoch = v.Epoch
			topo.mu.Unlock()
			fmt.Printf("topology: %s joined at epoch %d\n", node, v.Epoch)
		})
	}
	if *drainAfter > 0 {
		time.AfterFunc(*drainAfter, func() {
			topo.mu.Lock()
			target := topo.drainTarget
			topo.mu.Unlock()
			var pre membershipResp
			_ = getJSON(client, target+"/v1/membership", &pre)
			var v membershipResp
			if err := postJSON(client, target+"/v1/membership",
				map[string]any{"action": "drain"}, &v); err != nil {
				fmt.Fprintf(os.Stderr, "topology: drain %s: %v\n", target, err)
				return
			}
			eps.remove(target)
			topo.mu.Lock()
			topo.drainAccepted = true
			topo.preDrainEpoch = pre.Epoch
			topo.mu.Unlock()
			fmt.Printf("topology: drain of %s accepted (pre-drain epoch %d)\n", target, pre.Epoch)
		})
	}

	start := time.Now()
	results := make([]userResult, *users)
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	for i, v := range ds.Volunteers {
		wg.Add(1)
		go func(i int, v *wemac.Volunteer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var um *wemac.UserMaps
			if maps != nil {
				um = maps[i]
			}
			rng := rand.New(rand.NewSource(*seed*1000 + int64(v.ID)))
			// An -expectbreaker run keeps sessions open so the healing
			// phase below has live sessions to drive probes through.
			keepOpen := *keep || (ccfg.enabled && *expectBreaker)
			results[i] = runUser(client, eps, v, um, *ftFrac, keepOpen, observe, ccfg, rng, tally)
		}(i, v)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Breaker healing phase. Lifecycles can finish before any open
	// breaker's cooldown elapses, and half-open probes only fire on
	// windows pushed through degraded sessions — so keep a trickle of
	// clean windows flowing until the poller sees every breaker closed
	// again (or the deadline passes and the SLO check reports the miss).
	if *chaos && *expectBreaker {
		healStart := time.Now()
		for time.Since(healStart) < 60*time.Second {
			tally.mu.Lock()
			healed := tally.reclosed || (!tally.sawOpen && time.Since(healStart) > 2*time.Second)
			tally.mu.Unlock()
			if healed {
				break
			}
			for i, r := range results {
				if r.base == "" {
					continue
				}
				var um *wemac.UserMaps
				if maps != nil {
					um = maps[i]
				}
				v := ds.Volunteers[i]
				var wr windowResp
				_, _ = postRetry(client, eps, r.base+"/windows", windowPayload(v, um, len(v.Trials)-1), &wr)
			}
			time.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("breaker healing phase took %v\n", time.Since(healStart).Round(time.Millisecond))
		if !*keep {
			for _, r := range results {
				if r.base == "" {
					continue
				}
				req, _ := http.NewRequest(http.MethodDelete, eps.pick()+r.base, nil)
				if resp, err := client.Do(req); err == nil {
					resp.Body.Close()
				}
			}
		}
	}
	close(pollDone)
	pollWG.Wait()

	// A short run must not outrun its own choreography: the join/drain
	// timers fire at wall-clock offsets from start, so wait for each armed
	// action to be applied (with slack for its HTTP round-trip) before
	// judging the topology verdicts.
	if topoArmed {
		waitTopo := func(after time.Duration, what string, fired func() bool) {
			if after <= 0 {
				return
			}
			deadline := start.Add(after + 10*time.Second)
			for time.Now().Before(deadline) {
				topo.mu.Lock()
				ok := fired()
				topo.mu.Unlock()
				if ok {
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
			fmt.Fprintf(os.Stderr, "topology: %s never applied\n", what)
		}
		waitTopo(*joinAfter, "join", func() bool { return topo.joined })
		waitTopo(*drainAfter, "drain", func() bool { return topo.drainAccepted })
	}

	// Recovery wait: after chaos windows, the run is not over until every
	// replica reports its write-behind replay queue drained (and breaker
	// closed) and every failover session handed back (local == owned).
	var cw *chaosWindowsReport
	if windowsArmed {
		cw = &chaosWindowsReport{
			StoreOutageSec:  storeOutage.Seconds(),
			PartitionSec:    partitionFor.Seconds(),
			PartitionTarget: partitionTarget,
			ReplayQueueFinal: -1,
		}
		recoverStart := time.Now()
		deadline := recoverStart.Add(90 * time.Second)
		for {
			drained, owned, reachable := true, true, true
			for _, u := range eps.snapshot() {
				var st statsResp
				if err := getJSON(client, u+"/v1/stats", &st); err != nil {
					reachable = false
					break
				}
				if st.WriteBehind != nil && (st.WriteBehind.Queue > 0 || st.WriteBehind.Breaker == "open") {
					drained = false
				}
				if st.Shard != nil && st.Shard.LocalSessions != st.Shard.OwnedSessions {
					owned = false
				}
			}
			if (reachable && drained && owned) || time.Now().After(deadline) {
				cw.HandedBack = reachable && owned
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		cw.RecoverySec = time.Since(recoverStart).Seconds()
		// Final sweep: aggregate the resilience counters across replicas.
		cw.ReplayQueueFinal = 0
		for _, u := range eps.snapshot() {
			var st statsResp
			if err := getJSON(client, u+"/v1/stats", &st); err != nil {
				cw.ReplayQueueFinal = -1 // unreachable replica: fail replay_drained
				continue
			}
			if wb := st.WriteBehind; wb != nil {
				if cw.ReplayQueueFinal >= 0 {
					cw.ReplayQueueFinal += wb.Queue
				}
				cw.ReplayEnqueued += wb.Enqueued
				cw.ReplayReplayed += wb.Replayed
				cw.ReplayDropped += wb.Dropped
				cw.ShedCreates += wb.Shed
				cw.PersistFailures += wb.PersistFailures
			}
			if st.Shard != nil {
				cw.Failovers += st.Shard.Failovers
			}
		}
		cw.Sheds503 = atomic.LoadInt64(&shed503)
		cw.Sheds503NoRA = atomic.LoadInt64(&shed503NoRA)
		fmt.Printf("\n── chaos windows ──\n")
		fmt.Printf("windows          store outage %v (all replicas), partition %v (%s)\n",
			*storeOutage, *partitionFor, partitionTarget)
		fmt.Printf("write-behind     %d enqueued, %d replayed, %d dropped, final queue %d, %d persist failures\n",
			cw.ReplayEnqueued, cw.ReplayReplayed, cw.ReplayDropped, cw.ReplayQueueFinal, cw.PersistFailures)
		fmt.Printf("admission        %d creates shed;  %d 503s (%d without Retry-After)\n",
			cw.ShedCreates, cw.Sheds503, cw.Sheds503NoRA)
		fmt.Printf("failover         %d failovers;  handed back %v;  recovery took %.1fs\n",
			cw.Failovers, cw.HandedBack, cw.RecoverySec)
	}

	// Cluster → dominant archetype, for assignment scoring.
	var stats statsResp
	if err := getEP(client, eps, "/v1/stats", &stats); err != nil {
		die(err)
	}

	completed, assignedRight, personalized := 0, 0, 0
	correct, monitored := 0, 0
	totalReassigns, reassignedSessions, flapped := 0, 0, 0
	var lifecycleSum float64
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "user failed: %v\n", r.err)
			continue
		}
		completed++
		lifecycleSum += r.lifecycleS
		if r.personalized {
			personalized++
		}
		if r.cluster >= 0 && r.cluster < len(stats.ClusterArchetypes) &&
			stats.ClusterArchetypes[r.cluster] == r.archetype {
			assignedRight++
		}
		totalReassigns += r.reassigns
		if r.reassigns > 0 {
			reassignedSessions++
		}
		if r.reassigns > 1 {
			flapped++
		}
		correct += r.correct
		monitored += r.monitored
	}

	latMu.Lock()
	sort.Float64s(latencies)
	latMu.Unlock()
	nw := len(latencies)

	rep := &loadgenReport{Schema: "clear-loadgen/1"}
	rep.Meta.Go = runtime.Version()
	rep.Meta.Addr = *addr
	rep.Meta.Users = *users
	rep.Meta.Concurrency = *conc
	rep.Meta.Trials = *trials
	rep.Meta.Seed = *seed
	rep.Meta.Chaos = *chaos
	rep.Meta.DriftUsers = *driftUsers
	rep.Serve.Windows = nw
	rep.Serve.ElapsedSec = elapsed.Seconds()
	rep.Serve.WindowsPerSec = float64(nw) / elapsed.Seconds()
	if nw > 0 {
		rep.Serve.P50US = 1000 * quantile(latencies, 0.50)
		rep.Serve.P95US = 1000 * quantile(latencies, 0.95)
		rep.Serve.P99US = 1000 * quantile(latencies, 0.99)
		rep.Serve.MaxUS = 1000 * latencies[nw-1]
	}
	rep.Serve.ShedsClient = sheds
	rep.Serve.ShedsServer = stats.Shed
	rep.Lifecycle.Completed = completed
	rep.Lifecycle.Personalized = personalized
	rep.Lifecycle.MeanLifecycleSec = lifecycleSum / math.Max(1, float64(completed))
	rep.Lifecycle.MonitoredWindows = monitored
	if monitored > 0 {
		rep.Lifecycle.MonitorAccPct = 100 * float64(correct) / float64(monitored)
	}
	rep.Lifecycle.Reassigned = reassignedSessions
	rep.Lifecycle.Flapped = flapped
	verdict := func(name string, pass bool, detail string) {
		rep.SLO = append(rep.SLO, sloVerdict{Name: name, Pass: pass, Detail: detail})
	}

	fmt.Printf("\n── loadgen report ──\n")
	fmt.Printf("users            %d/%d lifecycles completed (%.1f sessions/sec)\n",
		completed, *users, float64(completed)/elapsed.Seconds())
	fmt.Printf("windows          %d posted in %v (%.1f windows/sec)\n",
		nw, elapsed.Round(time.Millisecond), float64(nw)/elapsed.Seconds())
	if nw > 0 {
		fmt.Printf("window latency   p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
			quantile(latencies, 0.50), quantile(latencies, 0.95),
			quantile(latencies, 0.99), latencies[nw-1])
	}
	fmt.Printf("mean lifecycle   %.2fs (enrol → assign → finetune → monitor)\n",
		lifecycleSum/math.Max(1, float64(completed)))
	fmt.Printf("personalized     %d/%d sessions\n", personalized, completed)
	if completed > 0 {
		fmt.Printf("assignment acc   %.0f%% (cold-start cluster matches ground-truth archetype)\n",
			100*float64(assignedRight)/float64(completed))
	}
	if monitored > 0 {
		fmt.Printf("monitor acc      %.1f%% over %d classified windows\n",
			100*float64(correct)/float64(monitored), monitored)
	}
	fmt.Printf("sheds (client)   %d retried;  server shed counter %d\n", sheds, stats.Shed)
	if *driftUsers > 0 || totalReassigns > 0 {
		fmt.Printf("self-healing     %d sessions re-assigned (%d swaps, %d flapped);  server verdicts %d, re-assigns %d, suppressed %d\n",
			reassignedSessions, totalReassigns, flapped,
			stats.DriftVerdicts, stats.DriftReassigns, stats.DriftSuppressed)
	}

	traceFailed := false
	if traceCheck.every > 0 {
		sent := atomic.LoadInt64(&traceCheck.sent)
		mm := atomic.LoadInt64(&traceCheck.mismatch)
		res := atomic.LoadInt64(&traceCheck.errResolved)
		miss := atomic.LoadInt64(&traceCheck.errMissing)
		fmt.Printf("tracing          %d requests traced, %d echo mismatches;  error traces: %d resolved, %d unresolvable\n",
			sent, mm, res, miss)
		if mm > 0 || miss > 0 {
			fmt.Println("TRACE FAIL: every traced response must echo its trace id and every traced error must resolve via /v1/traces")
			traceFailed = true
		}
		rep.Tracing = &tracingReport{Sent: sent, Mismatches: mm, ErrResolved: res, ErrMissing: miss}
		verdict("trace_roundtrip", !traceFailed,
			fmt.Sprintf("%d traced, %d mismatches, %d unresolvable error traces", sent, mm, miss))
	}

	// Cross-node stitch probe: with tracing armed and a multi-replica
	// pool, a forwarded request's trace must resolve at a non-owner
	// replica as one tree spanning both hops.
	stitchFailed := false
	if traceCheck.every > 0 && len(eps.snapshot()) >= 2 {
		pass, detail := probeTraceStitch(client, eps.snapshot())
		fmt.Printf("trace stitch     %s\n", detail)
		if !pass {
			fmt.Println("TRACE FAIL: a forwarded request's trace must resolve at a non-owner replica with spans from >=2 nodes")
			stitchFailed = true
		}
		if rep.Tracing != nil {
			ok := pass
			rep.Tracing.Stitched = &ok
		}
		verdict("trace_stitched", pass, detail)
	}

	assignAcc := 100.0
	if completed > 0 {
		assignAcc = 100 * float64(assignedRight) / float64(completed)
	}
	rep.Lifecycle.AssignAccPct = assignAcc

	// Chaos-window SLOs: zero lifecycle loss through the windows, replay
	// queues drained to zero, failover sessions handed back, and every
	// shed carrying a Retry-After hint.
	cwFailed := false
	if cw != nil {
		rep.ChaosWindows = cw
		cwVerdict := func(name string, pass bool, detail string) {
			verdict(name, pass, detail)
			if !pass {
				fmt.Printf("SLO FAIL: %s: %s\n", name, detail)
				cwFailed = true
			}
		}
		cwVerdict("no_lifecycle_loss", completed >= *users,
			fmt.Sprintf("%d/%d lifecycles completed through the chaos windows", completed, *users))
		cwVerdict("replay_drained", cw.ReplayQueueFinal == 0 && cw.ReplayDropped == 0,
			fmt.Sprintf("final queue %d, %d dropped (%d enqueued, %d replayed)",
				cw.ReplayQueueFinal, cw.ReplayDropped, cw.ReplayEnqueued, cw.ReplayReplayed))
		cwVerdict("handed_back", cw.HandedBack,
			fmt.Sprintf("local == owned on all replicas: %v (%d failovers)", cw.HandedBack, cw.Failovers))
		cwVerdict("shed_retry_after", cw.Sheds503NoRA == 0,
			fmt.Sprintf("%d of %d 503s missing Retry-After", cw.Sheds503NoRA, cw.Sheds503))
	}

	// Topology verdicts: zero loss through the join, a clean drain, and
	// minimal ring movement (consistent hashing's 1/N promise).
	topoFailed := false
	if topoArmed {
		tVerdict := func(name string, pass bool, detail string) {
			verdict(name, pass, detail)
			if !pass {
				fmt.Printf("SLO FAIL: %s: %s\n", name, detail)
				topoFailed = true
			}
		}
		fmt.Printf("\n── topology report ──\n")
		n5xx := atomic.LoadInt64(&srvErrs)
		topo.mu.Lock()
		joined, joinEpoch := topo.joined, topo.joinEpoch
		drainTarget, drainAccepted, preDrainEpoch := topo.drainTarget, topo.drainAccepted, topo.preDrainEpoch
		initMembers := topo.initMembers
		topo.mu.Unlock()
		if *joinAfter > 0 {
			tVerdict("zero_loss_on_join", joined && completed >= *users && n5xx == 0,
				fmt.Sprintf("join applied %v (epoch %d); %d/%d lifecycles, %d unexpected 5xx",
					joined, joinEpoch, completed, *users, n5xx))
			// Minimal movement: re-derive ownership of this run's real
			// session IDs under the pre- and post-join rings with the
			// server's own ring arithmetic; consistent hashing should move
			// about 1/N of them, and never wholesale reshuffle.
			pre := shard.New(initMembers, 0)
			post := pre.With(strings.TrimRight(*joinNode, "/"))
			moved, totalIDs := 0, 0
			for _, r := range results {
				if r.id == "" {
					continue
				}
				totalIDs++
				if pre.Owner(r.id) != post.Owner(r.id) {
					moved++
				}
			}
			frac := 0.0
			if totalIDs > 0 {
				frac = float64(moved) / float64(totalIDs)
			}
			bound := 1.6 / float64(post.Len())
			fmt.Printf("movement         %d/%d session owners changed across the join (bound %.0f%%)\n",
				moved, totalIDs, 100*bound)
			tVerdict("minimal_movement", totalIDs > 0 && frac <= bound,
				fmt.Sprintf("%d/%d sessions moved (%.0f%% vs bound %.0f%%)",
					moved, totalIDs, 100*frac, 100*bound))
		}
		if *drainAfter > 0 {
			// Settle: the drained replica must report zero remaining (and
			// not incomplete), and every survivor must exclude it from the
			// ring at an epoch past the pre-drain one.
			clean := false
			cleanDetail := "drain request was not accepted"
			if drainAccepted {
				deadline := time.Now().Add(30 * time.Second)
				for time.Now().Before(deadline) {
					drainedOK := false
					var st statsResp
					if err := getJSON(client, drainTarget+"/v1/stats", &st); err == nil && st.Membership != nil {
						m := st.Membership
						drainedOK = m.Draining && m.DrainRemaining == 0 && !m.DrainIncomplete
						cleanDetail = fmt.Sprintf("drained node: remaining %d, handed off %d, incomplete %v",
							m.DrainRemaining, m.DrainHandedOff, m.DrainIncomplete)
					}
					survivorsOK := true
					for _, u := range eps.snapshot() {
						var mv membershipResp
						if err := getJSON(client, u+"/v1/membership", &mv); err != nil {
							survivorsOK = false
							break
						}
						excluded := true
						for _, m := range mv.Members {
							if m == drainTarget {
								excluded = false
							}
						}
						if !excluded || mv.Epoch <= preDrainEpoch {
							survivorsOK = false
							break
						}
					}
					if drainedOK && survivorsOK {
						clean = true
						break
					}
					time.Sleep(100 * time.Millisecond)
				}
			}
			tVerdict("drain_clean", clean,
				fmt.Sprintf("%s; survivors exclude %s past epoch %d: %v",
					cleanDetail, drainTarget, preDrainEpoch, clean))
		}
	}
	if *chaos {
		tally.mu.Lock()
		fmt.Printf("\n── chaos report ──\n")
		fmt.Printf("client faults    %d windows corrupted (%d rejected+resent, %d timeouts absorbed)\n",
			tally.dropped, tally.rejected, tally.timeouts)
		fmt.Printf("server repair    %d windows imputed;  %d degraded inferences observed\n",
			tally.imputed, tally.degraded)
		fmt.Printf("server counters  corrupt %d, imputed %d, ft retries %d, ft giveups %d, restored %d\n",
			stats.CorruptWindows, stats.ImputedWindows, stats.FineTuneRetries,
			stats.FineTuneGiveups, stats.RestoredSessions)
		fmt.Printf("breakers         final %v (open seen: %v, re-closed: %v)\n",
			stats.Breakers, tally.sawOpen, tally.reclosed)
		failed := false
		n := atomic.LoadInt64(&srvErrs)
		if n > 0 {
			fmt.Printf("SLO FAIL: %d unexpected 5xx server errors\n", n)
			failed = true
		}
		verdict("no_5xx", n == 0, fmt.Sprintf("%d unexpected 5xx responses", n))
		if completed < *users {
			fmt.Printf("SLO FAIL: only %d/%d lifecycles completed under fault load\n", completed, *users)
			failed = true
		}
		verdict("lifecycles_complete", completed >= *users,
			fmt.Sprintf("%d/%d completed", completed, *users))
		if assignAcc < *accFloor {
			fmt.Printf("SLO FAIL: assignment accuracy %.0f%% below floor %.0f%%\n", assignAcc, *accFloor)
			failed = true
		}
		verdict("assign_accuracy", assignAcc >= *accFloor,
			fmt.Sprintf("%.0f%% vs floor %.0f%%", assignAcc, *accFloor))
		if *expectBreaker {
			cycled := tally.sawOpen && tally.reclosed
			if !cycled {
				fmt.Printf("SLO FAIL: no breaker open→re-close cycle observed (open %v, reclosed %v)\n",
					tally.sawOpen, tally.reclosed)
				failed = true
			}
			verdict("breaker_cycle", cycled,
				fmt.Sprintf("open seen %v, re-closed %v", tally.sawOpen, tally.reclosed))
		}
		if *expectReassign {
			if reassignedSessions < 1 {
				fmt.Printf("SLO FAIL: no detector re-assignment observed across %d drift personas\n", *driftUsers)
				failed = true
			}
			if flapped > 0 {
				fmt.Printf("SLO FAIL: %d sessions flapped (re-assigned more than once)\n", flapped)
				failed = true
			}
			verdict("drift_reassign", reassignedSessions >= 1 && flapped == 0,
				fmt.Sprintf("%d re-assigned, %d flapped", reassignedSessions, flapped))
		}
		tally.mu.Unlock()
		rep.Pass = !failed && !traceFailed && !stitchFailed && !cwFailed && !topoFailed
		if *jsonOut != "" {
			writeReport(*jsonOut, rep)
		}
		if !rep.Pass {
			os.Exit(1)
		}
		fmt.Println("all chaos SLOs held")
		return
	}
	verdict("lifecycles_complete", completed >= *users,
		fmt.Sprintf("%d/%d completed", completed, *users))
	n := atomic.LoadInt64(&srvErrs)
	verdict("no_5xx", n == 0, fmt.Sprintf("%d unexpected 5xx responses", n))
	rep.Pass = completed >= *users && n == 0 && !traceFailed && !stitchFailed && !cwFailed && !topoFailed
	if *jsonOut != "" {
		writeReport(*jsonOut, rep)
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

// runUser drives one full lifecycle. In chaos mode it corrupts windows
// client-side at the configured rate, re-sends the clean copy when the
// server rejects one as unrecoverable (422, a client "re-read"), and
// absorbs inference timeouts (504) instead of failing the lifecycle.
func runUser(client *http.Client, eps *endpoints, v *wemac.Volunteer, um *wemac.UserMaps,
	ftFrac float64, keep bool, observe func(time.Duration, int),
	chaos chaosCfg, rng *rand.Rand, tally *chaosTally) userResult {

	res := userResult{cluster: -1, archetype: v.Archetype, drifter: v.DriftTo >= 0}
	total := len(v.Trials)
	var cr createResp
	if _, err := postRetry(client, eps, "/v1/sessions",
		createReq{UserID: v.ID, ExpectedWindows: total}, &cr); err != nil {
		res.err = fmt.Errorf("create: %w", err)
		return res
	}
	res.id = cr.ID
	base := "/v1/sessions/" + cr.ID
	lifecycleStart := time.Now()

	// Labels cover the first ftFrac of post-assignment windows.
	ftN := int(ftFrac*float64(total) + 0.5)
	labels := map[int]int{}

	for t := 0; t < total; t++ {
		payload := windowPayload(v, um, t)
		corrupted := false
		if chaos.enabled && rng.Float64() < chaos.drop {
			payload = dropPayloadChannel(payload, rng.Intn(3))
			corrupted = true
			tally.mu.Lock()
			tally.dropped++
			tally.mu.Unlock()
		}
		var wr windowResp
		start := time.Now()
		shed, err := postRetry(client, eps, base+"/windows", payload, &wr)
		if chaos.enabled && err != nil {
			if he, ok := err.(*httpError); ok {
				switch he.code {
				case http.StatusUnprocessableEntity:
					// Unrecoverable server-side (no history yet): re-read
					// the sensor, i.e. re-send the clean window. The
					// server's own corruption injection can hit the re-send
					// too, so give it a few tries.
					tally.mu.Lock()
					tally.rejected++
					tally.mu.Unlock()
					for try := 0; try < 3; try++ {
						shed2 := 0
						shed2, err = postRetry(client, eps, base+"/windows", windowPayload(v, um, t), &wr)
						shed += shed2
						if he2, ok := err.(*httpError); !ok || he2.code != http.StatusUnprocessableEntity {
							break
						}
					}
				case http.StatusGatewayTimeout:
					// The window was ingested; only the answer is lost.
					tally.mu.Lock()
					tally.timeouts++
					tally.mu.Unlock()
					observe(time.Since(start), shed)
					continue
				}
			}
		}
		observe(time.Since(start), shed)
		if err != nil {
			res.err = fmt.Errorf("window %d: %w", t, err)
			return res
		}
		if chaos.enabled && (wr.Degraded || wr.Imputed || corrupted) {
			tally.mu.Lock()
			if wr.Degraded {
				tally.degraded++
			}
			if wr.Imputed {
				tally.imputed++
			}
			tally.mu.Unlock()
		}
		// Score cold-start assignment on the FIRST cluster the session
		// reports: a detector re-assignment mid-stream (drift personas)
		// must not rewrite the cold-start accuracy metric.
		if wr.Cluster != nil && res.cluster < 0 {
			res.cluster = *wr.Cluster
		}
		if wr.Reassigned {
			res.reassigns++
		}
		if len(wr.Probs) > 1 {
			res.monitored++
			pred := 0
			if wr.Probs[1] > wr.Probs[0] {
				pred = 1
			}
			if pred == int(v.Trials[t].Label) {
				res.correct++
			}
		}
		res.personalized = res.personalized || wr.Personalized

		// Right after assignment, upload the labelled budget and wait for
		// the personalised checkpoint before streaming on.
		if t == cr.AssignAt-1 && ftN > 0 {
			for j := t + 1 - ftN; j <= t; j++ {
				if j >= 0 {
					labels[j] = int(v.Trials[j].Label)
				}
			}
			var lr statusResp
			if _, err := postRetry(client, eps, base+"/labels",
				map[string]any{"labels": labels}, &lr); err != nil {
				res.err = fmt.Errorf("labels: %w", err)
				return res
			}
			if err := waitMonitoring(client, eps, base, chaos.enabled); err != nil {
				res.err = err
				return res
			}
		}
	}
	res.lifecycleS = time.Since(lifecycleStart).Seconds()
	res.ok = true
	if !keep {
		req, _ := http.NewRequest(http.MethodDelete, eps.pick()+base, nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	} else {
		res.base = base
	}
	return res
}

// windowPayload builds the window body: a precomputed map when available,
// raw signals otherwise.
func windowPayload(v *wemac.Volunteer, um *wemac.UserMaps, t int) map[string]any {
	if um != nil {
		m := um.Maps[t].Map
		return map[string]any{"map": map[string]any{
			"rows": m.Dim(0), "cols": m.Dim(1), "data": m.Data,
		}}
	}
	rec := v.Trials[t].Rec
	return map[string]any{"recording": map[string]any{
		"bvp": rec.BVP, "bvp_fs": rec.BVPFs,
		"gsr": rec.GSR, "gsr_fs": rec.GSRFs,
		"skt": rec.SKT, "skt_fs": rec.SKTFs,
	}}
}

// waitMonitoring polls the session until the fine-tune lands. In chaos
// mode a degraded session is also terminal: personalisation failed or was
// breaker-suppressed and the session is legitimately serving from the
// cluster baseline — the lifecycle continues rather than stalling on a
// checkpoint that may never arrive.
func waitMonitoring(client *http.Client, eps *endpoints, base string, tolerateDegraded bool) error {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		var st statusResp
		if err := getEP(client, eps, base, &st); err != nil {
			return fmt.Errorf("status: %w", err)
		}
		if st.State == "monitoring" || st.Personalized {
			return nil
		}
		if tolerateDegraded && st.Degraded {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("fine-tune did not complete within 5m")
}

// dropPayloadChannel simulates a dead sensor stream client-side: channel
// ch (0 BVP, 1 GSR, 2 SKT) is zeroed in a copy of the payload. For map
// payloads the channel's feature-row block goes to zero (JSON cannot carry
// NaN, so dead-channel is the transportable corruption; the server's own
// injector covers the NaN shapes); for recordings the raw samples do.
func dropPayloadChannel(payload map[string]any, ch int) map[string]any {
	if mp, ok := payload["map"].(map[string]any); ok {
		rows, cols := mp["rows"].(int), mp["cols"].(int)
		data := append([]float64(nil), mp["data"].([]float64)...)
		lo, hi := 0, rows
		if rows == features.TotalFeatureCount {
			switch ch % 3 {
			case 0:
				lo, hi = 0, features.BVPFeatureCount
			case 1:
				lo = features.BVPFeatureCount
				hi = lo + features.GSRFeatureCount
			case 2:
				lo = features.BVPFeatureCount + features.GSRFeatureCount
				hi = rows
			}
		}
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				data[i*cols+j] = 0
			}
		}
		return map[string]any{"map": map[string]any{"rows": rows, "cols": cols, "data": data}}
	}
	rec, ok := payload["recording"].(map[string]any)
	if !ok {
		return payload
	}
	out := make(map[string]any, len(rec))
	for k, v := range rec {
		out[k] = v
	}
	zero := func(key string) {
		if s, ok := out[key].([]float64); ok {
			out[key] = make([]float64, len(s))
		}
	}
	switch ch % 3 {
	case 0:
		zero("bvp")
	case 1:
		zero("gsr")
	case 2:
		zero("skt")
	}
	return map[string]any{"recording": out}
}

// postRetry POSTs with bounded retry on 429 (shed back-pressure: pause,
// resend) and bounded endpoint rotation on transport errors/502/503 (the
// replica is down or restarting: try the next one). Every attempt picks
// the next endpoint round-robin; the router forwards per-session requests
// to the owning replica, so stickiness is unnecessary. Returns how many
// times the request was shed.
func postRetry(client *http.Client, eps *endpoints, path string, body any, out any) (int, error) {
	shed, rot := 0, 0
	for {
		err := postJSON(client, eps.pick()+path, body, out)
		if err == nil {
			return shed, nil
		}
		if he, ok := err.(*httpError); ok && he.code == http.StatusTooManyRequests && shed < 50 {
			shed++
			time.Sleep(time.Duration(10+5*shed) * time.Millisecond)
			continue
		}
		if rotatable(err) && rot < 4*len(eps.snapshot()) {
			rot++
			sleep := time.Duration(25*rot) * time.Millisecond
			// A 503 with Retry-After is admission control (durability at
			// risk, or a partition window just closed), not a dead replica:
			// honour the hint (capped) before coming back.
			if he, ok := err.(*httpError); ok && he.retryAfter > 0 {
				if ra := time.Duration(he.retryAfter) * time.Second; ra > sleep {
					sleep = ra
				}
				if sleep > 2*time.Second {
					sleep = 2 * time.Second
				}
			}
			time.Sleep(sleep)
			continue
		}
		return shed, err
	}
}

// getEP GETs with the same endpoint rotation as postRetry (GETs are
// idempotent, so rotation is always safe).
func getEP(client *http.Client, eps *endpoints, path string, out any) error {
	var err error
	for rot := 0; rot <= 4*len(eps.snapshot()); rot++ {
		if err = getJSON(client, eps.pick()+path, out); err == nil || !rotatable(err) {
			return err
		}
		time.Sleep(time.Duration(25*(rot+1)) * time.Millisecond)
	}
	return err
}

type httpError struct {
	code       int
	body       string
	retryAfter int // seconds, from the Retry-After header (0 = none)
}

func (e *httpError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.body) }

func postJSON(client *http.Client, url string, body, out any) error {
	js, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(js))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	tid := armTrace(req)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	checkTraceEcho(resp, tid)
	err = decodeJSON(resp, out)
	resolveErrTrace(client, url, tid, err)
	return err
}

func getJSON(client *http.Client, url string, out any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	tid := armTrace(req)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	checkTraceEcho(resp, tid)
	err = decodeJSON(resp, out)
	resolveErrTrace(client, url, tid, err)
	return err
}

func decodeJSON(resp *http.Response, out any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable &&
			resp.StatusCode != http.StatusGatewayTimeout {
			atomic.AddInt64(&srvErrs, 1)
		}
		ra := 0
		if resp.StatusCode == http.StatusServiceUnavailable {
			atomic.AddInt64(&shed503, 1)
			if v := resp.Header.Get("Retry-After"); v != "" {
				ra, _ = strconv.Atoi(v)
			} else {
				atomic.AddInt64(&shed503NoRA, 1)
			}
		}
		return &httpError{code: resp.StatusCode, body: string(bytes.TrimSpace(raw)), retryAfter: ra}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// quantile reads a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-loadgen:", err)
		os.Exit(1)
	}
}
