// Command clear-rt reproduces the paper's RT (robustness test) experiment
// against the live serving layer and measures the self-healing drift
// detector's recovery. For each held-out user it streams the same windows
// through three serving arms — honest assignment, forced wrong-cluster
// with the detector off (the paper's RT condition), and forced
// wrong-cluster with the detector on — then reports window-level accuracy
// per arm and the recovered fraction of the wrong-cluster gap.
//
// Usage:
//
//	clear-rt [-profile fast|paper] [-seed N] [-scale F] [-pipeline ckpt]
//	         [-held N] [-cycles N] [-out results_rt.txt]
//	         [-drift-window N] [-drift-threshold F] [-drift-consecutive N]
//	         [-drift-cooldown N]
//
// The -drift-* flags mirror clear-serve's detector tuning so the offline
// harness exercises exactly the serving configuration under test.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wemac"
)

func main() {
	var (
		profile  = flag.String("profile", "fast", "experiment profile: fast or paper")
		seed     = flag.Int64("seed", 1, "master seed for data and training")
		scale    = flag.Float64("scale", 1.0, "training population scale factor")
		pipePath = flag.String("pipeline", "", "load a pipeline checkpoint instead of training")
		held     = flag.Int("held", 8, "held-out users to stream (generated from seed+1)")
		cycles   = flag.Int("cycles", 4, "stream passes per arm (detector needs stream length)")
		out      = flag.String("out", "results_rt.txt", "report output path")

		driftWindow      = flag.Int("drift-window", 6, "drift evidence ring size in windows")
		driftThreshold   = flag.Float64("drift-threshold", 0.05, "relative score gap for a drift-positive window")
		driftConsecutive = flag.Int("drift-consecutive", 3, "consecutive positives that raise a verdict")
		driftCooldown    = flag.Int("drift-cooldown", 64, "post-swap flap-suppression cooldown in windows")
	)
	flag.Parse()

	var pipe *core.Pipeline
	if *pipePath != "" {
		f, err := os.Open(*pipePath)
		die(err)
		pipe, err = core.Load(f)
		f.Close()
		die(err)
		fmt.Printf("loaded pipeline from %s (K=%d)\n", *pipePath, pipe.Cfg.K)
	} else {
		pipe = trainPipeline(*profile, *seed, *scale)
	}

	hcfg := wemac.DefaultConfig()
	hcfg.Seed = *seed + 1
	hcfg.ArchetypeSizes = spread(*held, len(hcfg.ArchetypeSizes))
	heldDS := wemac.Generate(hcfg)
	users, err := wemac.ExtractAll(heldDS, pipe.Cfg.Extractor)
	die(err)
	fmt.Printf("streaming %d held-out users, %d cycles, 3 arms\n", len(users), *cycles)

	start := time.Now()
	res, err := eval.RunRT(pipe, users, *cycles, serve.Config{
		MaxDelay:         500 * time.Microsecond,
		DriftWindow:      *driftWindow,
		DriftThreshold:   *driftThreshold,
		DriftConsecutive: *driftConsecutive,
		DriftCooldown:    *driftCooldown,
	}, func(done, total int) {
		fmt.Printf("\ruser %d/%d", done, total)
	})
	fmt.Println()
	die(err)

	report := eval.FormatRT(res)
	die(os.WriteFile(*out, []byte(report), 0o644))
	fmt.Printf("\n%s\n", report)
	fmt.Printf("wrote %s in %v\n", *out, time.Since(start).Round(time.Second))

	if res.Correct <= res.Wrong {
		fmt.Fprintln(os.Stderr, "clear-rt: WARNING: wrong-cluster arm did not lose accuracy; RT condition not reproduced")
		os.Exit(2)
	}
	if res.Recovery < 0.5 {
		fmt.Fprintf(os.Stderr, "clear-rt: WARNING: detector recovered %.2f of the gap (< 0.50)\n", res.Recovery)
		os.Exit(2)
	}
	fmt.Printf("RT reproduced: wrong-cluster loses %.3f accuracy; detector recovers %.0f%% of the gap\n",
		res.Correct-res.Wrong, 100*res.Recovery)
}

// trainPipeline mirrors clear-serve's training path (without the archetype
// diagnostic, which RT does not need).
func trainPipeline(profile string, seed int64, scale float64) *core.Pipeline {
	var cfg core.Config
	switch profile {
	case "fast":
		cfg = core.DefaultConfig()
	case "paper":
		cfg = core.PaperConfig()
	default:
		die(fmt.Errorf("unknown profile %q", profile))
	}
	cfg.Seed = seed
	dcfg := wemac.DefaultConfig()
	dcfg.Seed = seed
	if scale != 1.0 {
		for i, s := range dcfg.ArchetypeSizes {
			n := int(float64(s)*scale + 0.5)
			if n < 2 {
				n = 2
			}
			dcfg.ArchetypeSizes[i] = n
		}
	}
	fmt.Printf("generating synthetic WEMAC population (%v volunteers)...\n", dcfg.ArchetypeSizes)
	ds := wemac.Generate(dcfg)
	users, err := wemac.ExtractAll(ds, cfg.Extractor)
	die(err)
	fmt.Printf("training CLEAR pipeline on %d users...\n", len(users))
	sp := obs.StartSpan("rt.train")
	pipe, err := core.Train(users, cfg)
	sp.End()
	die(err)
	fmt.Printf("cluster sizes %v\n", pipe.ClusterSizes())
	return pipe
}

// spread distributes n held-out users across k archetypes as evenly as
// possible (earlier archetypes get the remainder).
func spread(n, k int) []int {
	out := make([]int, k)
	for i := 0; i < n; i++ {
		out[i%k]++
	}
	return out
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clear-rt:", err)
		os.Exit(1)
	}
}
