package core

import (
	"sync"
	"testing"

	"repro/internal/nn"
)

// TestPipelineConcurrentReaders hammers every read-only Pipeline entry
// point from 8 goroutines at once — the contract internal/serve depends
// on (run with -race; see the concurrency note on Pipeline). Model
// inference is included via per-goroutine clones, which is the documented
// safe pattern: the shared *nn.Model values themselves carry forward
// state and need external serialisation.
func TestPipelineConcurrentReaders(t *testing.T) {
	users := tinyUsers(t)
	holdout := users[len(users)-2:]
	p, err := Train(users[:len(users)-2], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := holdout[g%len(holdout)]
			clones := make([]*nn.Model, len(p.Models))
			for k := range p.Models {
				clones[k] = p.ModelFor(k).Clone()
			}
			for i := 0; i < iters; i++ {
				a := p.Assign(u, 0.1)
				if a.Cluster < 0 || a.Cluster >= p.Cfg.K {
					t.Errorf("goroutine %d: cluster %d out of range", g, a.Cluster)
					return
				}
				if b := p.AssignMaps(u.AllMaps()[:1], 0.1); len(b.Scores) != len(a.Scores) {
					t.Errorf("goroutine %d: AssignMaps scores %d ≠ %d", g, len(b.Scores), len(a.Scores))
					return
				}
				x := p.Apply(u.Maps[i%len(u.Maps)].Map)
				if probs := clones[a.Cluster].Probabilities(x); len(probs) != p.Cfg.Model.Classes {
					t.Errorf("goroutine %d: %d probs", g, len(probs))
					return
				}
				if samples := p.SamplesFor(u); len(samples) != len(u.Maps) {
					t.Errorf("goroutine %d: %d samples", g, len(samples))
					return
				}
				if _, err := p.EnsembleFor(a); err != nil {
					t.Errorf("goroutine %d: EnsembleFor: %v", g, err)
					return
				}
				p.ClusterSizes()
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentAssignMatchesSequential: results under contention are
// bitwise identical to a quiet sequential run — concurrency must not
// change the math, only interleave it.
func TestConcurrentAssignMatchesSequential(t *testing.T) {
	users := tinyUsers(t)
	holdout := users[len(users)-1]
	p, err := Train(users[:len(users)-1], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := p.Assign(holdout, 0.1)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := p.Assign(holdout, 0.1)
				if got.Cluster != want.Cluster {
					t.Errorf("cluster %d ≠ sequential %d", got.Cluster, want.Cluster)
					return
				}
				for k := range want.Scores {
					if got.Scores[k] != want.Scores[k] {
						t.Errorf("score[%d] %v ≠ sequential %v", k, got.Scores[k], want.Scores[k])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
