package core

import (
	"testing"

	"repro/internal/wemac"
)

// TestAssignUsesOnlyEarlyMaps: cold-start assignment with a small fraction
// must not look at the user's later maps (the whole point of the cold
// start: the system decides before most data exists).
func TestAssignUsesOnlyEarlyMaps(t *testing.T) {
	users := tinyUsers(t)
	holdout := users[len(users)-1]
	p, err := Train(users[:len(users)-1], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	frac := 0.26 // uses ⌈0.26·6⌉ ≈ 2 of the 6 maps
	before := p.Assign(holdout, frac)

	// Corrupt every map after the first two; the assignment must not move.
	mutated := &wemac.UserMaps{ID: holdout.ID, Archetype: holdout.Archetype}
	mutated.Maps = append(mutated.Maps, holdout.Maps[:2]...)
	for _, lm := range holdout.Maps[2:] {
		c := lm.Map.Clone()
		for i := range c.Data {
			c.Data[i] = 1e6
		}
		mutated.Maps = append(mutated.Maps, wemac.LabeledMap{Map: c, Label: lm.Label})
	}
	after := p.Assign(mutated, frac)
	if before.Cluster != after.Cluster {
		t.Fatalf("assignment depended on late maps: %d vs %d", before.Cluster, after.Cluster)
	}
	for k := range before.Scores {
		if before.Scores[k] != after.Scores[k] {
			t.Fatalf("assignment scores depended on late maps")
		}
	}
}

func TestWithDefaultsSizesModel(t *testing.T) {
	var cfg Config
	d := cfg.WithDefaults()
	if d.K != 4 || d.SubK != 2 {
		t.Errorf("defaults K=%d SubK=%d", d.K, d.SubK)
	}
	if d.Model.InH != 123 || d.Model.InW != d.Extractor.Windows {
		t.Errorf("model input %dx%d not sized to extractor", d.Model.InH, d.Model.InW)
	}
	// Original untouched (value semantics).
	if cfg.K != 0 {
		t.Error("WithDefaults mutated the receiver")
	}
}

func TestAssignmentScoresConsistent(t *testing.T) {
	users := tinyUsers(t)
	p, err := Train(users[:len(users)-1], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assign(users[len(users)-1], 1.0)
	// The selected cluster's score is the strict minimum or ties with it.
	min := a.Scores[0]
	for _, s := range a.Scores {
		if s < min {
			min = s
		}
	}
	if a.Scores[a.Cluster] != min {
		t.Errorf("selected cluster score %g is not the minimum %g", a.Scores[a.Cluster], min)
	}
	if a.FracUsed != 1.0 {
		t.Errorf("FracUsed %g", a.FracUsed)
	}
}

func TestAssignmentMargin(t *testing.T) {
	a := Assignment{Cluster: 1, Scores: []float64{4, 2, 6, 8}}
	// best=2, runner-up=4 → margin (4−2)/2 = 1.
	if m := a.Margin(); m != 1 {
		t.Errorf("margin %g, want 1", m)
	}
	tie := Assignment{Cluster: 0, Scores: []float64{3, 3}}
	if m := tie.Margin(); m != 0 {
		t.Errorf("tie margin %g, want 0", m)
	}
	single := Assignment{Cluster: 0, Scores: []float64{3}}
	if single.Margin() != 0 {
		t.Error("single-cluster margin should be 0")
	}
}

func TestEnsembleForFollowsAssignment(t *testing.T) {
	users := tinyUsers(t)
	holdout := users[len(users)-1]
	p, err := Train(users[:len(users)-1], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assign(holdout, 0.5)
	e, err := p.EnsembleFor(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Models) != len(p.Models) {
		t.Fatalf("ensemble has %d models", len(e.Models))
	}
	// The assigned cluster must carry the largest weight.
	for k, w := range e.Weights {
		if k != a.Cluster && w > e.Weights[a.Cluster] {
			t.Errorf("cluster %d weight %g exceeds assigned %g", k, w, e.Weights[a.Cluster])
		}
	}
}
