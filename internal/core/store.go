package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/features"
	"repro/internal/nn"
)

// Pipeline checkpoint format (little-endian):
//
//	magic   uint32 0x50524C43 ("CLRP")
//	hdrLen  uint32, hdr JSON (config, normalizer, standardizer, hierarchy,
//	        user assignments)
//	K model checkpoints in nn checkpoint format, cluster order.

const pipelineMagic uint32 = 0x50524C43

// ErrBadPipeline is returned for malformed pipeline checkpoints.
var ErrBadPipeline = errors.New("core: bad pipeline checkpoint")

// ErrBadHeader is returned by ReadHeader for a stream whose magic or
// header block is malformed.
var ErrBadHeader = errors.New("core: bad checkpoint header")

// WriteHeader writes the store framing every checkpoint in this repo
// shares: a little-endian uint32 magic, a uint32 length, then the JSON
// encoding of hdr. Binary payloads (tensors, model checkpoints) follow the
// header in whatever order the header describes.
func WriteHeader(w io.Writer, magic uint32, hdr any) error {
	js, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(js))); err != nil {
		return err
	}
	_, err = w.Write(js)
	return err
}

// ReadHeader reads framing written by WriteHeader, verifying the magic and
// unmarshalling the JSON block into hdr (a pointer). Header blocks above
// 64 MiB are rejected as implausible before any allocation.
func ReadHeader(r io.Reader, magic uint32, hdr any) error {
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return err
	}
	if got != magic {
		return fmt.Errorf("%w: bad magic %#x (want %#x)", ErrBadHeader, got, magic)
	}
	var hdrLen uint32
	if err := binary.Read(r, binary.LittleEndian, &hdrLen); err != nil {
		return err
	}
	if hdrLen > 64<<20 {
		return fmt.Errorf("%w: implausible header size %d", ErrBadHeader, hdrLen)
	}
	js := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, js); err != nil {
		return err
	}
	if err := json.Unmarshal(js, hdr); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	return nil
}

// storeHeader is the JSON-serialisable part of a pipeline.
type storeHeader struct {
	Cfg          Config        `json:"cfg"`
	NormMean     []float64     `json:"norm_mean"`
	NormStd      []float64     `json:"norm_std"`
	StdMean      []float64     `json:"std_mean"`
	StdStd       []float64     `json:"std_std"`
	TopK         int           `json:"top_k"`
	TopCentroids [][]float64   `json:"top_centroids"`
	TopAssign    []int         `json:"top_assign"`
	Sub          [][][]float64 `json:"sub"`
	UserCluster  []int         `json:"user_cluster"`
	TrainUserIDs []int         `json:"train_user_ids"`
}

// Save serialises the pipeline (clustering structure + all cluster
// checkpoints) to w.
func (p *Pipeline) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := storeHeader{
		Cfg:          p.Cfg,
		NormMean:     p.Norm.Mean,
		NormStd:      p.Norm.Std,
		StdMean:      p.Std.Mean,
		StdStd:       p.Std.Std,
		TopK:         p.Hier.Top.K,
		TopCentroids: p.Hier.Top.Centroids,
		TopAssign:    p.Hier.Top.Assign,
		Sub:          p.Hier.Sub,
		UserCluster:  p.UserCluster,
		TrainUserIDs: p.TrainUserIDs,
	}
	if err := WriteHeader(bw, pipelineMagic, hdr); err != nil {
		return err
	}
	for k, m := range p.Models {
		if m == nil {
			return fmt.Errorf("core: cluster %d has no model", k)
		}
		if err := m.Save(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a pipeline checkpoint written by Save.
func Load(r io.Reader) (*Pipeline, error) {
	br := bufio.NewReader(r)
	var hdr storeHeader
	if err := ReadHeader(br, pipelineMagic, &hdr); err != nil {
		if errors.Is(err, ErrBadHeader) {
			return nil, fmt.Errorf("%w: %v", ErrBadPipeline, err)
		}
		return nil, err
	}
	if hdr.TopK < 1 || len(hdr.TopCentroids) != hdr.TopK || len(hdr.Sub) != hdr.TopK {
		return nil, fmt.Errorf("%w: inconsistent clustering structure", ErrBadPipeline)
	}
	p := &Pipeline{
		Cfg:  hdr.Cfg,
		Norm: &features.Normalizer{Mean: hdr.NormMean, Std: hdr.NormStd},
		Std:  &cluster.Standardizer{Mean: hdr.StdMean, Std: hdr.StdStd},
		Hier: &cluster.Hierarchy{
			Top: &cluster.Result{K: hdr.TopK, Centroids: hdr.TopCentroids, Assign: hdr.TopAssign},
			Sub: hdr.Sub,
		},
		UserCluster:  hdr.UserCluster,
		TrainUserIDs: hdr.TrainUserIDs,
	}
	for k := 0; k < hdr.TopK; k++ {
		m, err := nn.Load(br)
		if err != nil {
			return nil, fmt.Errorf("%w: cluster %d model: %v", ErrBadPipeline, k, err)
		}
		p.Models = append(p.Models, m)
	}
	return p, nil
}
