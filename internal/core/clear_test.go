package core

import (
	"bytes"
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/wemac"
)

// tinyCLEARConfig keeps training cheap: 4-window maps, narrow model,
// few epochs.
func tinyCLEARConfig() Config {
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 4}
	mcfg := nn.ModelConfig{
		InH: features.TotalFeatureCount, InW: ecfg.Windows,
		Conv1: 2, Conv2: 4,
		K1H: 5, K1W: 3, K2H: 3, K2W: 3, Pool1: 4, Pool2: 3,
		LSTMHidden: 12, Dropout: 0.1, Classes: 2, Seed: 1,
	}
	tcfg := nn.TrainConfig{Epochs: 6, BatchSize: 16, LR: 3e-3, GradClip: 5, ValFrac: 0.15, Patience: 4, Seed: 1}
	ft := nn.TrainConfig{Epochs: 5, BatchSize: 8, LR: 1e-3, GradClip: 5, Seed: 1}
	return Config{
		K: 4, SubK: 2, Extractor: ecfg, Model: mcfg, Train: tcfg, FineTune: ft,
		RefineRounds: 3, RefineSampleFrac: 0.8, Seed: 1,
	}
}

// tinyUsers generates and extracts a small population once per test run.
func tinyUsers(t *testing.T) []*wemac.UserMaps {
	t.Helper()
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{4, 4, 3, 3},
		TrialsPerVolunteer: 6,
		TrialSec:           30,
		Seed:               21,
	})
	users, err := wemac.ExtractAll(ds, features.ExtractorConfig{WindowSec: 8, Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	return users
}

func TestTrainPipeline(t *testing.T) {
	users := tinyUsers(t)
	p, err := Train(users, tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Models) != 4 {
		t.Fatalf("%d models", len(p.Models))
	}
	sizes := p.ClusterSizes()
	total := 0
	for _, s := range sizes {
		if s == 0 {
			t.Errorf("empty cluster: sizes %v", sizes)
		}
		total += s
	}
	if total != len(users) {
		t.Errorf("cluster sizes %v don't sum to %d", sizes, len(users))
	}
	if len(p.TrainUserIDs) != len(users) {
		t.Errorf("TrainUserIDs %d", len(p.TrainUserIDs))
	}
}

// TestClusteringRecoversArchetypes is the load-bearing structural check:
// the unsupervised global clustering on feature summaries must essentially
// recover the generator's latent archetypes.
func TestClusteringRecoversArchetypes(t *testing.T) {
	users := tinyUsers(t)
	p, err := Train(users, tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cluster purity: for each learned cluster, the dominant archetype
	// fraction averaged over users should be high.
	byCluster := map[int][]int{}
	for i, c := range p.UserCluster {
		byCluster[c] = append(byCluster[c], users[i].Archetype)
	}
	pure, total := 0, 0
	for _, archs := range byCluster {
		counts := map[int]int{}
		for _, a := range archs {
			counts[a]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		pure += best
		total += len(archs)
	}
	purity := float64(pure) / float64(total)
	if purity < 0.8 {
		t.Errorf("cluster purity %.2f, want ≥0.8 (clusters %v)", purity, byCluster)
	}
}

func TestAssignNewUserMatchesArchetypePeers(t *testing.T) {
	users := tinyUsers(t)
	// Hold the last user out.
	holdout := users[len(users)-1]
	train := users[:len(users)-1]
	p, err := Train(train, tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assign(holdout, 0.5)
	if a.Cluster < 0 || a.Cluster >= 4 {
		t.Fatalf("assignment %d out of range", a.Cluster)
	}
	if len(a.Scores) != 4 {
		t.Fatalf("scores %v", a.Scores)
	}
	for k, s := range a.Scores {
		if s < a.Scores[a.Cluster] {
			t.Errorf("cluster %d score %g below selected %g", k, s, a.Scores[a.Cluster])
		}
	}
	// The assigned cluster should contain mostly the holdout's archetype
	// peers.
	match := 0
	members := 0
	for i, c := range p.UserCluster {
		if c != a.Cluster {
			continue
		}
		members++
		if train[i].Archetype == holdout.Archetype {
			match++
		}
	}
	if members == 0 {
		t.Fatal("assigned cluster has no members")
	}
	if float64(match)/float64(members) < 0.5 {
		t.Errorf("assigned cluster only %d/%d archetype peers", match, members)
	}
}

func TestSamplesForNormalised(t *testing.T) {
	users := tinyUsers(t)
	p, err := Train(users, tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := p.SamplesFor(users[0])
	if len(s) != len(users[0].Maps) {
		t.Fatalf("samples %d", len(s))
	}
	for _, smp := range s {
		if smp.X.Dim(0) != features.TotalFeatureCount {
			t.Fatalf("sample shape %v", smp.X.Shape)
		}
		if smp.X.AbsMax() > 50 {
			t.Errorf("normalised sample has extreme value %g", smp.X.AbsMax())
		}
	}
}

func TestFineTuneReturnsNewModel(t *testing.T) {
	users := tinyUsers(t)
	holdout := users[len(users)-1]
	p, err := Train(users[:len(users)-1], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assign(holdout, 0.1)
	data := p.SamplesFor(holdout)
	ft, err := p.FineTune(a.Cluster, data[:4])
	if err != nil {
		t.Fatal(err)
	}
	if ft == p.Models[a.Cluster] {
		t.Fatal("FineTune must not return the stored checkpoint")
	}
	// The stored checkpoint must be unchanged.
	orig := p.Models[a.Cluster]
	diff := false
	op, fp := orig.Params(), ft.Params()
	for i := range op {
		for j := range op[i].W.Data {
			if op[i].W.Data[j] != fp[i].W.Data[j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("fine-tuning changed nothing")
	}
	if _, err := p.FineTune(a.Cluster, nil); err == nil {
		t.Error("want error for empty fine-tune data")
	}
}

func TestTrainErrors(t *testing.T) {
	users := tinyUsers(t)
	cfg := tinyCLEARConfig()
	cfg.K = 100
	if _, err := Train(users, cfg); err == nil {
		t.Error("want error for K > users")
	}
}

func TestPipelineSaveLoadRoundTrip(t *testing.T) {
	users := tinyUsers(t)
	holdout := users[len(users)-1]
	p, err := Train(users[:len(users)-1], tinyCLEARConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same assignment and identical model outputs.
	pa, qa := p.Assign(holdout, 0.5), q.Assign(holdout, 0.5)
	if pa.Cluster != qa.Cluster {
		t.Errorf("assignment changed after reload: %d vs %d", pa.Cluster, qa.Cluster)
	}
	data := p.SamplesFor(holdout)
	for k := range p.Models {
		accP := nn.Accuracy(p.Models[k], data)
		accQ := nn.Accuracy(q.Models[k], data)
		if accP != accQ {
			t.Errorf("cluster %d accuracy changed after reload: %g vs %g", k, accP, accQ)
		}
	}
	// Bitwise prediction parity: a reloaded checkpoint is the same
	// function, not just equally accurate.
	for i := range pa.Scores {
		if pa.Scores[i] != qa.Scores[i] {
			t.Errorf("assignment score[%d] changed after reload: %v vs %v", i, pa.Scores[i], qa.Scores[i])
		}
	}
	for k := range p.Models {
		for i, s := range data {
			got := q.Models[k].Probabilities(s.X)
			want := p.Models[k].Probabilities(s.X)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("cluster %d sample %d class %d: reloaded %v ≠ original %v",
						k, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage stream not a pipeline"))); err == nil {
		t.Error("want error for garbage")
	}
}

func TestDefaultAndPaperConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.K != 4 || d.SubK < 1 {
		t.Error("default config wrong")
	}
	pc := PaperConfig()
	if pc.Model.Conv1 <= d.Model.Conv1 {
		t.Error("paper profile should be wider than fast profile")
	}
}

func TestAugmentFT(t *testing.T) {
	users := tinyUsers(t)
	cfg := tinyCLEARConfig()
	cfg.FTAugment = 3
	cfg.FTAugmentNoise = 0.2
	p, err := Train(users[:len(users)-1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := p.SamplesFor(users[len(users)-1])[:4]
	aug := p.augmentFT(data, 1)
	if len(aug) != 4*(1+3) {
		t.Fatalf("augmented %d samples, want 16", len(aug))
	}
	// Originals preserved verbatim at the front.
	for i := range data {
		for j := range data[i].X.Data {
			if aug[i].X.Data[j] != data[i].X.Data[j] {
				t.Fatal("augmentation corrupted originals")
			}
		}
	}
	// Copies are jittered but labelled identically.
	if aug[4].Y != data[0].Y {
		t.Error("augmented label wrong")
	}
	same := true
	for j := range aug[4].X.Data {
		if aug[4].X.Data[j] != data[0].X.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("augmented copy identical to original")
	}
	// Augmentation off → identity.
	cfg2 := cfg
	cfg2.FTAugment = 0
	p.Cfg = cfg2
	if got := p.augmentFT(data, 1); len(got) != len(data) {
		t.Error("disabled augmentation must be identity")
	}
}

func TestFTBlendInterpolates(t *testing.T) {
	users := tinyUsers(t)
	cfg := tinyCLEARConfig()
	cfg.FTBlend = 1.0 // blend fully back to the original: FT must be a no-op
	p, err := Train(users[:len(users)-1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := p.SamplesFor(users[len(users)-1])[:4]
	a := p.Assign(users[len(users)-1], 0.1)
	ft, err := p.FineTune(a.Cluster, data)
	if err != nil {
		t.Fatal(err)
	}
	op, fp := p.Models[a.Cluster].Params(), ft.Params()
	for i := range op {
		for j := range op[i].W.Data {
			if op[i].W.Data[j] != fp[i].W.Data[j] {
				t.Fatal("FTBlend=1 must return the original weights")
			}
		}
	}
}

func TestBaselineCorrectToggle(t *testing.T) {
	users := tinyUsers(t)
	on := tinyCLEARConfig()
	off := tinyCLEARConfig()
	off.DisableBaselineCorrect = true
	pOn, err := Train(users[:len(users)-1], on)
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := Train(users[:len(users)-1], off)
	if err != nil {
		t.Fatal(err)
	}
	u := users[len(users)-1]
	sOn := pOn.SamplesFor(u)
	sOff := pOff.SamplesFor(u)
	// With correction, every sample's first window is exactly 0 after
	// normalisation only if the normaliser mean is 0 there — instead check
	// the raw transform: corrected maps differ from uncorrected ones.
	diff := false
	for j := range sOn[0].X.Data {
		if sOn[0].X.Data[j] != sOff[0].X.Data[j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("baseline-correct toggle had no effect")
	}
}
