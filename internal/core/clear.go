// Package core implements the CLEAR methodology itself — the paper's
// primary contribution. It wires the substrates together:
//
//   - Stage 1 ("cloud"): per-user feature summaries → global clustering
//     (k-means++ with the iterative refinement of [19]) → hierarchical
//     sub-clusters → one CNN-LSTM classifier trained per cluster.
//   - Stage 2 ("edge"): a new user's *unlabeled* feature maps → cold-start
//     cluster assignment by minimum summed distance to the assigned
//     cluster's internal centroids → optional fine-tuning of the cluster
//     checkpoint with a small labelled fraction of the user's data.
package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/wemac"
)

// Pipeline-stage telemetry: fit/assign/fine-tune counts.
var (
	mCoreFits      = obs.GetCounter("core.fits")
	mCoreAssigns   = obs.GetCounter("core.assigns")
	mCoreFineTunes = obs.GetCounter("core.finetunes")
)

// tensorT shortens signatures below.
type tensorT = tensor.Tensor

// Config parameterises a CLEAR pipeline.
type Config struct {
	// K is the number of top-level clusters (the paper selects 4).
	K int
	// SubK is the number of internal sub-cluster centroids per cluster used
	// by cold-start assignment.
	SubK int
	// Extractor controls feature-map generation (needed to size the model).
	Extractor features.ExtractorConfig
	// Model is the per-cluster classifier architecture. InH/InW are
	// overridden from the extractor configuration.
	Model nn.ModelConfig
	// Train controls per-cluster pre-training.
	Train nn.TrainConfig
	// FineTune controls edge-side personalisation.
	FineTune nn.TrainConfig
	// Cluster passes through to k-means.
	Cluster cluster.Options
	// RefineRounds and RefineSampleFrac control the [19]-style iterative
	// refinement after the initial k-means.
	RefineRounds     int
	RefineSampleFrac float64
	// FTBlend interpolates the fine-tuned weights with the original
	// checkpoint: final = FTBlend·original + (1−FTBlend)·fine-tuned.
	// 0 keeps the pure fine-tuned model; ~0.3–0.5 damps the variance of
	// updates estimated from very few labelled maps (weight-space
	// ensembling).
	FTBlend float64
	// FTAugment is the number of noise-jittered copies of each labelled
	// sample added during fine-tuning (0 disables). With only a handful of
	// labelled maps from a new user, augmentation is what makes gradient
	// descent extract the user-specific signal instead of memorising the
	// few points (cf. the user-adaptive transfer learning of the paper's
	// reference [12]).
	FTAugment int
	// FTAugmentNoise is the augmentation noise scale in units of each
	// feature's training-set standard deviation.
	FTAugmentNoise float64
	// DisableBaselineCorrect turns off the stimulus-locked baseline
	// correction of classifier inputs (see features.BaselineCorrect).
	// Correction is on by default: it removes user/group offsets so models
	// learn response dynamics; the clustering stage always sees raw
	// summaries either way.
	DisableBaselineCorrect bool
	// Seed namespaces all stochastic steps.
	Seed int64
}

// DefaultConfig returns the fast-profile configuration used by the
// experiment harness (identical code path to the paper profile, reduced
// widths/epochs so the full LOSO protocol runs on a laptop CPU).
func DefaultConfig() Config {
	ecfg := features.DefaultExtractorConfig()
	mcfg := nn.FastModelConfig(ecfg.Windows)
	tcfg := nn.DefaultTrainConfig()
	ft := tcfg
	// Fine-tuning sees only a handful of labelled maps; moderate LR over
	// few epochs with noise augmentation (FTAugment below) extracts the
	// user-specific signal without catastrophic forgetting.
	ft.Epochs = 15
	ft.LR = 3e-3
	ft.BatchSize = 8
	ft.ValFrac = 0 // fine-tuning uses every labelled sample
	ft.Patience = 0
	return Config{
		FTAugment:        8,
		FTAugmentNoise:   0.2,
		K:                4,
		SubK:             2,
		Extractor:        ecfg,
		Model:            mcfg,
		Train:            tcfg,
		FineTune:         ft,
		Cluster:          cluster.Options{Restarts: 8, MaxIter: 100},
		RefineRounds:     5,
		RefineSampleFrac: 0.8,
		Seed:             1,
	}
}

// PaperConfig returns the full-size profile (paper-width model, longer
// training).
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Model = nn.PaperModelConfig(cfg.Extractor.Windows)
	cfg.Train.Epochs = 30
	cfg.Train.Patience = 8
	cfg.FineTune.Epochs = 15
	return cfg
}

// WithDefaults returns a copy of c with unset fields defaulted and the
// model input dimensions sized to the extractor output.
func (c Config) WithDefaults() Config {
	c.fillDefaults()
	return c
}

func (c *Config) fillDefaults() {
	if c.K == 0 {
		c.K = 4
	}
	if c.SubK == 0 {
		c.SubK = 2
	}
	if c.Extractor.Windows == 0 {
		c.Extractor = features.DefaultExtractorConfig()
	}
	if c.Model.LSTMHidden == 0 {
		c.Model = nn.FastModelConfig(c.Extractor.Windows)
	}
	c.Model.InH = features.TotalFeatureCount
	c.Model.InW = c.Extractor.Windows
}

// Pipeline is a trained CLEAR system ready for new users.
//
// Concurrency: once built (by Train, ClusterOnly, or Load), a Pipeline is
// read-only and safe for any number of concurrent readers. Assign,
// AssignMaps, Apply, SamplesFor, EnsembleFor, ModelFor, and ClusterSizes
// allocate their results and never write to shared state. The one sharp
// edge is the *nn.Model values in Models (returned by ModelFor): layers
// cache per-forward scratch state, so running inference or fine-tuning on
// the same model instance from multiple goroutines requires external
// serialisation — clone the model per goroutine, or route requests through
// a serialising executor (internal/serve does the latter). FineTune itself
// is safe to call concurrently: it clones the checkpoint before training.
type Pipeline struct {
	Cfg Config
	// Norm z-scores feature maps with statistics from the training users.
	Norm *features.Normalizer
	// Std standardises per-user summary vectors before clustering.
	Std *cluster.Standardizer
	// Hier holds the top-level clusters and their internal centroids.
	Hier *cluster.Hierarchy
	// Models holds one trained classifier per cluster.
	Models []*nn.Model
	// UserCluster maps each training-user index to its cluster.
	UserCluster []int
	// TrainUserIDs records the volunteer IDs used for training, in order.
	TrainUserIDs []int
	// Fault, when non-nil, arms deterministic fault injection on the
	// pipeline's failure points (currently fault.ModelBuild in FineTune).
	// Not serialised; set it after Load when chaos-testing.
	Fault *fault.Injector
}

// ClusterOnly builds the clustering stage of a pipeline (summaries,
// standardiser, hierarchy, normaliser) without training any models. Used
// by assignment-only analyses such as the cold-start ablation.
func ClusterOnly(users []*wemac.UserMaps, cfg Config) (*Pipeline, error) {
	return build(users, cfg, false)
}

// Train builds a complete CLEAR pipeline from the training users' feature
// maps. It is the paper's Stage 1.
func Train(users []*wemac.UserMaps, cfg Config) (*Pipeline, error) {
	return build(users, cfg, true)
}

func build(users []*wemac.UserMaps, cfg Config, trainModels bool) (*Pipeline, error) {
	cfg.fillDefaults()
	if len(users) < cfg.K {
		return nil, fmt.Errorf("core: %d users < K=%d clusters", len(users), cfg.K)
	}
	sp := obs.StartSpan("core.fit")
	defer sp.End()
	mCoreFits.Inc()

	// Per-user unlabeled summaries → standardised clustering space.
	csp := obs.StartSpan("core.cluster")
	summaries := make([][]float64, len(users))
	for i, u := range users {
		summaries[i] = u.Summary(1.0)
	}
	std := cluster.FitStandardizer(summaries)
	zs := std.ApplyAll(summaries)

	copts := cfg.Cluster
	copts.Seed = cfg.Seed*31 + 7
	top, err := cluster.KMeans(zs, cfg.K, copts)
	if err != nil {
		csp.End()
		return nil, fmt.Errorf("core: global clustering: %w", err)
	}
	top = cluster.Refine(zs, top, cfg.RefineRounds, cfg.RefineSampleFrac, cfg.Seed*31+11)
	hier, err := cluster.BuildHierarchy(zs, top, cfg.SubK, copts)
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("core: hierarchy: %w", err)
	}

	// Normalisation statistics come from training users only, computed on
	// the same representation the classifier consumes.
	nsp := obs.StartSpan("core.normalize")
	var allMaps []*tensorT
	for _, u := range users {
		for _, m := range u.AllMaps() {
			allMaps = append(allMaps, correctMap(m, cfg))
		}
	}
	norm := features.FitNormalizer(allMaps)
	nsp.End()

	p := &Pipeline{
		Cfg: cfg, Norm: norm, Std: std, Hier: hier,
		UserCluster: top.Assign,
		Models:      make([]*nn.Model, cfg.K),
	}
	for _, u := range users {
		p.TrainUserIDs = append(p.TrainUserIDs, u.ID)
	}

	if !trainModels {
		return p, nil
	}

	// One classifier per cluster.
	for k := 0; k < cfg.K; k++ {
		var data []nn.Sample
		for i, u := range users {
			if top.Assign[i] != k {
				continue
			}
			data = append(data, p.SamplesFor(u)...)
		}
		tsp := obs.StartSpan("core.train_cluster")
		m, err := p.trainClusterModel(k, data)
		tsp.End()
		if err != nil {
			return nil, err
		}
		p.Models[k] = m
	}
	return p, nil
}

func (p *Pipeline) trainClusterModel(k int, data []nn.Sample) (*nn.Model, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: cluster %d has no training data", k)
	}
	mcfg := p.Cfg.Model
	mcfg.Seed = p.Cfg.Seed*1009 + int64(k)
	m := nn.NewModel(mcfg)
	tcfg := p.Cfg.Train
	tcfg.Seed = p.Cfg.Seed*2003 + int64(k)
	if _, err := nn.Train(m, data, tcfg); err != nil {
		return nil, fmt.Errorf("core: training cluster %d: %w", k, err)
	}
	return m, nil
}

// SamplesFor converts a user's labelled feature maps into classifier
// inputs: baseline-corrected (unless disabled) and z-normalised with the
// training population's statistics.
func (p *Pipeline) SamplesFor(u *wemac.UserMaps) []nn.Sample {
	out := make([]nn.Sample, len(u.Maps))
	for i, lm := range u.Maps {
		out[i] = nn.Sample{X: p.Apply(lm.Map), Y: int(lm.Label)}
	}
	return out
}

// Apply converts one raw feature map into the classifier input
// representation. It satisfies the edge monitor's Normalizer interface, so
// deployments transform streaming maps identically to training.
func (p *Pipeline) Apply(m *tensorT) *tensorT {
	return p.Norm.Apply(correctMap(m, p.Cfg))
}

// correctMap applies the configured per-map baseline correction.
func correctMap(m *tensorT, cfg Config) *tensorT {
	if cfg.DisableBaselineCorrect {
		return m
	}
	return features.BaselineCorrect(m)
}

// Assignment is the cold-start result for a new user.
type Assignment struct {
	// Cluster is the selected cluster index.
	Cluster int
	// Scores holds the per-cluster mean distances to internal centroids
	// (lower is closer); Scores[Cluster] is the minimum.
	Scores []float64
	// FracUsed records how much of the user's unlabeled data was used.
	FracUsed float64
}

// Assign performs unsupervised cold-start cluster assignment using the
// first frac of the new user's *unlabeled* feature maps (the paper uses
// 10 %).
func (p *Pipeline) Assign(u *wemac.UserMaps, frac float64) Assignment {
	return p.assignSummaryCtx(context.Background(), u.Summary(frac), frac)
}

// AssignMaps is the streaming-ingest form of Assign: it assigns from an
// explicit set of raw (un-normalised) feature maps accumulated so far, as
// a serving layer receives them window by window. fracUsed only annotates
// the returned Assignment. The scoring path is identical to Assign, so a
// served cold-start decision is bitwise-equal to the batch eval path given
// the same maps.
func (p *Pipeline) AssignMaps(maps []*tensorT, fracUsed float64) Assignment {
	return p.assignSummaryCtx(context.Background(), features.Summary(maps), fracUsed)
}

// AssignMapsCtx is AssignMaps with request-scoped tracing: when ctx
// carries an obs.Trace the core.assign span lands in that trace instead
// of the process-wide background trace.
func (p *Pipeline) AssignMapsCtx(ctx context.Context, maps []*tensorT, fracUsed float64) Assignment {
	return p.assignSummaryCtx(ctx, features.Summary(maps), fracUsed)
}

// AssignFromSummary performs cold-start assignment from an explicit
// unlabeled per-feature summary vector (the features.Summary
// representation). It is the incremental-evidence entry point: a serving
// layer that maintains a rolling summary over recent windows (e.g. the
// drift detector in internal/serve) can re-score the assignment on every
// window without re-touching the underlying maps. The scoring path is
// identical to Assign/AssignMaps, so rolling verdicts are directly
// comparable to the original cold-start decision.
func (p *Pipeline) AssignFromSummary(summary []float64, fracUsed float64) Assignment {
	return p.assignSummaryCtx(context.Background(), summary, fracUsed)
}

// AssignFromSummaryCtx is AssignFromSummary with request-scoped tracing.
func (p *Pipeline) AssignFromSummaryCtx(ctx context.Context, summary []float64, fracUsed float64) Assignment {
	return p.assignSummaryCtx(ctx, summary, fracUsed)
}

// spanIn opens a span in the request trace carried by ctx, falling back
// to the process-wide background trace when ctx has none — batch
// binaries keep their flat span tree, served requests get scoped ones.
func spanIn(ctx context.Context, name string) *obs.Span {
	if sp := obs.StartSpanCtx(ctx, name); sp != nil {
		return sp
	}
	return obs.StartSpan(name)
}

func (p *Pipeline) assignSummaryCtx(ctx context.Context, summary []float64, fracUsed float64) Assignment {
	sp := spanIn(ctx, "core.assign")
	defer sp.End()
	mCoreAssigns.Inc()
	s := p.Std.Apply(summary)
	best, scores := p.Hier.Assign(s)
	return Assignment{Cluster: best, Scores: scores, FracUsed: fracUsed}
}

// Margin returns the relative score gap between the selected cluster and
// the runner-up: (second − best) / best. Small margins mean the user sits
// between clusters and an ensemble of the two checkpoints may serve them
// better than committing to one.
func (a Assignment) Margin() float64 {
	if len(a.Scores) < 2 {
		return 0
	}
	best := a.Scores[a.Cluster]
	second := -1.0
	for k, s := range a.Scores {
		if k == a.Cluster {
			continue
		}
		if second < 0 || s < second {
			second = s
		}
	}
	if best <= 0 {
		return 0
	}
	return (second - best) / best
}

// RunnerUp returns the index of the second-closest cluster — the
// assignment the user would have received had the selected cluster not
// existed. −1 when fewer than two scores are available. Together with
// Margin it quantifies how contested the assignment is: a drift monitor
// watches whether the runner-up starts beating the assigned cluster on
// fresh data.
func (a Assignment) RunnerUp() int {
	if len(a.Scores) < 2 {
		return -1
	}
	second, runner := -1.0, -1
	for k, s := range a.Scores {
		if k == a.Cluster {
			continue
		}
		if runner < 0 || s < second {
			second, runner = s, k
		}
	}
	return runner
}

// ModelFor returns the pre-trained checkpoint of a cluster.
func (p *Pipeline) ModelFor(k int) *nn.Model { return p.Models[k] }

// EnsembleFor returns a soft-voting ensemble of the cluster checkpoints
// weighted by inverse assignment distance — the low-confidence cold-start
// fallback. With temperature → 0 it reduces to the single assigned model.
func (p *Pipeline) EnsembleFor(a Assignment) (*nn.Ensemble, error) {
	weights := make([]float64, len(p.Models))
	best := a.Scores[a.Cluster]
	if best <= 0 {
		best = 1e-9
	}
	for k, s := range a.Scores {
		// Inverse-distance weights, sharpened so the assigned cluster
		// dominates unless the margin is genuinely small.
		r := best / s
		weights[k] = r * r * r
	}
	return nn.NewEnsemble(p.Models, weights)
}

// FineTune personalises the cluster-k checkpoint with the user's labelled
// samples, returning a new model (the stored checkpoint is untouched).
// When configured, each sample is expanded with noise-jittered copies so
// the optimizer sees enough variation to generalise from a handful of maps.
func (p *Pipeline) FineTune(k int, data []nn.Sample) (*nn.Model, error) {
	return p.FineTuneCtx(context.Background(), k, data)
}

// FineTuneCtx is FineTune with request-scoped tracing: the core.finetune
// span attaches to the trace carried by ctx when present.
func (p *Pipeline) FineTuneCtx(ctx context.Context, k int, data []nn.Sample) (*nn.Model, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: no fine-tuning data")
	}
	sp := spanIn(ctx, "core.finetune")
	defer sp.End()
	mCoreFineTunes.Inc()
	if p.Fault.Fire(fault.ModelBuild) {
		err := fmt.Errorf("core: fine-tuning cluster %d: %w", k, fault.ErrInjected)
		sp.Fail(err)
		return nil, err
	}
	m := p.Models[k].Clone()
	ft := p.Cfg.FineTune
	ft.Seed = p.Cfg.Seed*3001 + int64(k)
	train := p.augmentFT(data, ft.Seed)
	if _, err := nn.Train(m, train, ft); err != nil {
		err = fmt.Errorf("core: fine-tuning cluster %d: %w", k, err)
		sp.Fail(err)
		return nil, err
	}
	if b := p.Cfg.FTBlend; b > 0 {
		orig := p.Models[k].Params()
		tuned := m.Params()
		for i := range tuned {
			for j := range tuned[i].W.Data {
				tuned[i].W.Data[j] = b*orig[i].W.Data[j] + (1-b)*tuned[i].W.Data[j]
			}
		}
	}
	return m, nil
}

// AugmentFT exposes the fine-tuning augmentation for callers that run
// their own training loop (e.g. the on-device fine-tuning of Table II),
// so every fine-tuning path sees the same expanded sample set.
func (p *Pipeline) AugmentFT(data []nn.Sample) []nn.Sample {
	return p.augmentFT(data, p.Cfg.Seed*3001)
}

// augmentFT expands the labelled samples with FTAugment jittered copies
// each. Inputs are already z-scored, so the noise scale is directly in
// feature standard deviations.
func (p *Pipeline) augmentFT(data []nn.Sample, seed int64) []nn.Sample {
	if p.Cfg.FTAugment <= 0 || p.Cfg.FTAugmentNoise <= 0 {
		return data
	}
	rng := rand.New(rand.NewSource(seed*17 + 3))
	out := make([]nn.Sample, 0, len(data)*(1+p.Cfg.FTAugment))
	out = append(out, data...)
	for _, s := range data {
		for c := 0; c < p.Cfg.FTAugment; c++ {
			x := s.X.Clone()
			for i := range x.Data {
				x.Data[i] += rng.NormFloat64() * p.Cfg.FTAugmentNoise
			}
			out = append(out, nn.Sample{X: x, Y: s.Y})
		}
	}
	return out
}

// ClusterSizes returns how many training users landed in each cluster.
func (p *Pipeline) ClusterSizes() []int {
	sizes := make([]int, p.Cfg.K)
	for _, c := range p.UserCluster {
		sizes[c]++
	}
	return sizes
}
