package features

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// tensorT shortens the fixtures below.
type tensorT = tensor.Tensor

// TestExtractDeterministic: identical recordings must yield identical
// feature maps (the extractor has no hidden randomness).
func TestExtractDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rec := synthRecording(rng, 30, 1.2, 5)
	cfg := ExtractorConfig{WindowSec: 8, Windows: 4}
	a, err := ExtractMap(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractMap(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("extraction not deterministic at %d", i)
		}
	}
}

// TestWindowsCoverRecording: with >1 windows, the first window starts at 0
// and the last ends at the recording end; features must differ across
// windows of a non-stationary signal.
func TestWindowsCoverRecording(t *testing.T) {
	fs := 64.0
	n := int(40 * fs)
	bvp := make([]float64, n)
	for i := range bvp {
		// amplitude grows through the recording
		bvp[i] = (1 + float64(i)/float64(n)) * pulse(float64(i)/fs)
	}
	rec := &Recording{
		BVP: bvp, BVPFs: fs,
		GSR: make([]float64, int(40*8.0)), GSRFs: 8,
		SKT: make([]float64, int(40*4.0)), SKTFs: 4,
	}
	m, err := ExtractMap(rec, ExtractorConfig{WindowSec: 8, Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	// bvp_rms (index 7) must increase from the first to the last window.
	first := m.At(7, 0)
	last := m.At(7, 3)
	if last <= first {
		t.Errorf("windows do not track non-stationarity: rms %g → %g", first, last)
	}
}

func pulse(t float64) float64 {
	ph := t * 1.2
	ph -= float64(int(ph))
	d := ph - 0.3
	return expNeg(40 * d * d)
}

func expNeg(x float64) float64 {
	// cheap exp(-x) adequate for the fixture
	if x > 30 {
		return 0
	}
	s := 1.0
	term := 1.0
	for k := 1; k < 20; k++ {
		term *= -x / float64(k)
		s += term
	}
	if s < 0 {
		return 0
	}
	return s
}

// TestNormalizerSeparateFromTest: fitting on one set and applying to
// another must not use the second set's statistics (no leakage).
func TestNormalizerSeparateFromTest(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	trainRec := synthRecording(rng, 20, 1.2, 5)
	cfg := ExtractorConfig{WindowSec: 8, Windows: 2}
	trainMap, err := ExtractMap(trainRec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := FitNormalizer([]*tensorT{trainMap})

	testRec := synthRecording(rng, 20, 1.8, 15) // very different physiology
	testMap, err := ExtractMap(testRec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := norm.Apply(testMap)
	// Refit including the test map: output for the test map must change,
	// proving Apply used only the fitted statistics.
	norm2 := FitNormalizer([]*tensorT{trainMap, testMap})
	after := norm2.Apply(testMap)
	same := true
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("normalizer appears to ignore its fitted statistics")
	}
}
