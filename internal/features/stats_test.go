package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Errorf("Mean = %g, want 5", Mean(x))
	}
	if Variance(x) != 4 {
		t.Errorf("Variance = %g, want 4", Variance(x))
	}
	if Std(x) != 2 {
		t.Errorf("Std = %g, want 2", Std(x))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// Symmetric data → zero skew.
	sym := []float64{-2, -1, 0, 1, 2}
	if math.Abs(Skewness(sym)) > 1e-12 {
		t.Errorf("symmetric skew = %g", Skewness(sym))
	}
	// Right-skewed data → positive skew.
	skewed := []float64{1, 1, 1, 1, 10}
	if Skewness(skewed) <= 0 {
		t.Errorf("right-skewed skew = %g, want >0", Skewness(skewed))
	}
	// Gaussian sample → excess kurtosis near 0.
	rng := rand.New(rand.NewSource(1))
	g := make([]float64, 20000)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	if k := Kurtosis(g); math.Abs(k) > 0.2 {
		t.Errorf("gaussian kurtosis = %g, want ≈0", k)
	}
	// Constant data → 0, not NaN.
	if Skewness([]float64{3, 3, 3, 3}) != 0 || Kurtosis([]float64{3, 3, 3, 3, 3}) != 0 {
		t.Error("degenerate input should yield 0")
	}
}

func TestPercentileMedianIQR(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if Median(x) != 3 {
		t.Errorf("Median = %g", Median(x))
	}
	if Percentile(x, 0) != 1 || Percentile(x, 100) != 5 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(x, 25) != 2 || Percentile(x, 75) != 4 {
		t.Errorf("quartiles %g, %g", Percentile(x, 25), Percentile(x, 75))
	}
	if IQR(x) != 2 {
		t.Errorf("IQR = %g", IQR(x))
	}
	// Percentile must not mutate the input.
	y := []float64{3, 1, 2}
	Median(y)
	if y[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMAD(t *testing.T) {
	x := []float64{1, 1, 2, 2, 4, 6, 9}
	if MAD(x) != 1 {
		t.Errorf("MAD = %g, want 1", MAD(x))
	}
}

func TestMinMaxRange(t *testing.T) {
	x := []float64{3, -1, 4}
	if Min(x) != -1 || Max(x) != 4 || Range(x) != 5 {
		t.Error("Min/Max/Range wrong")
	}
}

func TestZeroCrossingRate(t *testing.T) {
	// Alternating signal crosses at every step.
	x := []float64{1, -1, 1, -1, 1}
	if got := ZeroCrossingRate(x); got != 1 {
		t.Errorf("ZCR = %g, want 1", got)
	}
	// Monotone signal crosses its mean exactly once.
	y := []float64{1, 2, 3, 4}
	if got := ZeroCrossingRate(y); got != 1.0/3 {
		t.Errorf("ZCR = %g, want 1/3", got)
	}
}

func TestLineLengthAndSlope(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	if LineLength(x) != 1 {
		t.Errorf("LineLength = %g", LineLength(x))
	}
	if math.Abs(Slope(x)-1) > 1e-12 {
		t.Errorf("Slope = %g, want 1", Slope(x))
	}
	if Slope([]float64{5}) != 0 {
		t.Error("Slope of singleton should be 0")
	}
}

func TestHjorth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	slow := make([]float64, 1000)
	fast := make([]float64, 1000)
	for i := range slow {
		slow[i] = math.Sin(2 * math.Pi * float64(i) / 200)
		fast[i] = rng.NormFloat64()
	}
	_, mSlow, _ := Hjorth(slow)
	_, mFast, _ := Hjorth(fast)
	if mSlow >= mFast {
		t.Errorf("mobility: slow %g should be below fast %g", mSlow, mFast)
	}
	a, m, c := Hjorth([]float64{1, 1, 1, 1})
	if a != 0 || m != 0 || c != 0 {
		t.Error("Hjorth of constant should be zeros")
	}
}

func TestAutocorrelation(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 10)
	}
	if got := Autocorrelation(x, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("AC lag0 = %g", got)
	}
	if got := Autocorrelation(x, 10); got < 0.7 {
		t.Errorf("AC at period = %g, want high", got)
	}
	if got := Autocorrelation(x, 5); got > -0.7 {
		t.Errorf("AC at half period = %g, want very negative", got)
	}
	if Autocorrelation(x, -1) != 0 || Autocorrelation(x, 1000) != 0 {
		t.Error("out-of-range lag should yield 0")
	}
}

func TestCrestFactor(t *testing.T) {
	// Constant |1| signal → crest factor 1.
	if got := CrestFactor([]float64{1, -1, 1, -1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("crest = %g, want 1", got)
	}
	// Spiky signal → crest factor > 2.
	spiky := make([]float64, 100)
	spiky[50] = 10
	if got := CrestFactor(spiky); got < 2 {
		t.Errorf("spiky crest = %g, want >2", got)
	}
	if CrestFactor([]float64{0, 0}) != 0 {
		t.Error("silent crest should be 0")
	}
}

// Property: Mean is translation-equivariant and Std translation-invariant.
func TestQuickMeanStdTranslation(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 1
		}
		shift = math.Mod(shift, 1e6)
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			y[i] = x[i] + shift
		}
		scale := 1 + math.Abs(shift)
		return math.Abs(Mean(y)-Mean(x)-shift) < 1e-9*scale &&
			math.Abs(Std(y)-Std(x)) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(x, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleEntropyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	regular := make([]float64, 200)
	noisy := make([]float64, 200)
	for i := range regular {
		regular[i] = math.Sin(2 * math.Pi * float64(i) / 20)
		noisy[i] = rng.NormFloat64()
	}
	se1 := SampleEntropy(regular, 2, 0.2*Std(regular))
	se2 := SampleEntropy(noisy, 2, 0.2*Std(noisy))
	if se1 >= se2 {
		t.Errorf("SampEn regular %g should be below noise %g", se1, se2)
	}
	if SampleEntropy([]float64{1, 2}, 2, 0.1) != 0 {
		t.Error("short input should yield 0")
	}
	if SampleEntropy(regular, 2, 0) != 0 {
		t.Error("r=0 should yield 0")
	}
}

func TestApproximateEntropyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	regular := make([]float64, 150)
	noisy := make([]float64, 150)
	for i := range regular {
		regular[i] = math.Sin(2 * math.Pi * float64(i) / 15)
		noisy[i] = rng.NormFloat64()
	}
	a1 := ApproximateEntropy(regular, 2, 0.2*Std(regular))
	a2 := ApproximateEntropy(noisy, 2, 0.2*Std(noisy))
	if a1 >= a2 {
		t.Errorf("ApEn regular %g should be below noise %g", a1, a2)
	}
}

func TestPoincare(t *testing.T) {
	// Constant series: both SDs zero.
	sd1, sd2 := Poincare([]float64{1, 1, 1, 1})
	if sd1 != 0 || sd2 != 0 {
		t.Errorf("constant Poincaré = %g, %g", sd1, sd2)
	}
	// Alternating series: successive differences large → SD1 >> SD2.
	sd1, sd2 = Poincare([]float64{1, 2, 1, 2, 1, 2, 1, 2})
	if sd1 <= sd2 {
		t.Errorf("alternating: SD1 %g should exceed SD2 %g", sd1, sd2)
	}
	// Slow drift: SD2 >> SD1.
	drift := make([]float64, 50)
	for i := range drift {
		drift[i] = float64(i)
	}
	sd1, sd2 = Poincare(drift)
	if sd2 <= sd1 {
		t.Errorf("drift: SD2 %g should exceed SD1 %g", sd2, sd1)
	}
	if s1, s2 := Poincare([]float64{1}); s1 != 0 || s2 != 0 {
		t.Error("single element should be zeros")
	}
}

func TestHiguchiFD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	line := make([]float64, 300)
	noise := make([]float64, 300)
	for i := range line {
		line[i] = float64(i) * 0.01
		noise[i] = rng.NormFloat64()
	}
	fdLine := HiguchiFD(line, 8)
	fdNoise := HiguchiFD(noise, 8)
	if math.Abs(fdLine-1) > 0.1 {
		t.Errorf("line FD = %g, want ≈1", fdLine)
	}
	if fdNoise < 1.7 {
		t.Errorf("noise FD = %g, want ≈2", fdNoise)
	}
	if HiguchiFD([]float64{1, 2}, 8) != 0 {
		t.Error("short input should yield 0")
	}
}
