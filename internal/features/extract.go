package features

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// TotalFeatureCount is the full feature vector length: 84 BVP + 34 GSR +
// 5 SKT = 123, matching the paper.
const TotalFeatureCount = BVPFeatureCount + GSRFeatureCount + SKTFeatureCount

// Recording holds the three raw physiological channels for one stimulus
// presentation, each at its own sample rate.
type Recording struct {
	BVP   []float64 // blood volume pulse
	BVPFs float64   // Hz
	GSR   []float64 // galvanic skin response (skin conductance)
	GSRFs float64   // Hz
	SKT   []float64 // skin temperature
	SKTFs float64   // Hz
}

// Duration returns the recording length in seconds (from the BVP channel).
func (r *Recording) Duration() float64 {
	if r.BVPFs == 0 {
		return 0
	}
	return float64(len(r.BVP)) / r.BVPFs
}

// ExtractorConfig controls how a recording is windowed into a feature map.
type ExtractorConfig struct {
	// WindowSec is the analysis window length in seconds.
	WindowSec float64
	// Windows is the number of windows W per recording. Windows are spaced
	// evenly (overlapping if necessary) to cover the recording.
	Windows int
}

// DefaultExtractorConfig mirrors the paper's setup: W windows per stimulus
// recording, each long enough for heart-beat statistics.
func DefaultExtractorConfig() ExtractorConfig {
	return ExtractorConfig{WindowSec: 8, Windows: 8}
}

// FeatureVector computes the full 123-feature vector for one window of the
// three channels.
func FeatureVector(bvp []float64, bvpFs float64, gsr []float64, gsrFs float64, skt []float64, sktFs float64) []float64 {
	out := make([]float64, 0, TotalFeatureCount)
	out = append(out, ExtractBVP(bvp, bvpFs)...)
	out = append(out, ExtractGSR(gsr, gsrFs)...)
	out = append(out, ExtractSKT(skt, sktFs)...)
	return out
}

// FeatureNames returns all 123 feature names in extraction order.
func FeatureNames() []string {
	out := make([]string, 0, TotalFeatureCount)
	out = append(out, BVPFeatureNames()...)
	out = append(out, GSRFeatureNames()...)
	out = append(out, SKTFeatureNames()...)
	return out
}

// ExtractMap windows the recording into cfg.Windows windows and computes the
// 123-feature vector for each, producing the paper's 2-D feature map
// M ∈ R^{F×W} with F=123 rows and W columns.
func ExtractMap(rec *Recording, cfg ExtractorConfig) (*tensor.Tensor, error) {
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("features: Windows must be ≥1, got %d", cfg.Windows)
	}
	if cfg.WindowSec <= 0 {
		return nil, fmt.Errorf("features: WindowSec must be positive, got %g", cfg.WindowSec)
	}
	dur := rec.Duration()
	if dur < cfg.WindowSec {
		return nil, fmt.Errorf("features: recording %.1fs shorter than window %.1fs", dur, cfg.WindowSec)
	}
	m := tensor.New(TotalFeatureCount, cfg.Windows)
	// Evenly spaced window starts covering [0, dur-WindowSec].
	span := dur - cfg.WindowSec
	for w := 0; w < cfg.Windows; w++ {
		start := 0.0
		if cfg.Windows > 1 {
			start = span * float64(w) / float64(cfg.Windows-1)
		}
		bvp := sliceWindow(rec.BVP, rec.BVPFs, start, cfg.WindowSec)
		gsr := sliceWindow(rec.GSR, rec.GSRFs, start, cfg.WindowSec)
		skt := sliceWindow(rec.SKT, rec.SKTFs, start, cfg.WindowSec)
		vec := FeatureVector(bvp, rec.BVPFs, gsr, rec.GSRFs, skt, rec.SKTFs)
		for f, v := range vec {
			m.Set(v, f, w)
		}
	}
	return m, nil
}

func sliceWindow(x []float64, fs, startSec, lenSec float64) []float64 {
	lo := int(startSec * fs)
	hi := lo + int(lenSec*fs)
	if lo < 0 {
		lo = 0
	}
	if hi > len(x) {
		hi = len(x)
	}
	if lo >= hi {
		return nil
	}
	return x[lo:hi]
}

// BaselineCorrect returns a stimulus-locked baseline-corrected copy of the
// feature map: each feature row has its first-window value subtracted, so
// the map encodes *change from the trial's onset baseline* rather than
// absolute levels. This is the standard pre-processing for event-locked
// physiological analysis; it removes user- and group-specific offsets from
// the classifier's input (absolute levels remain available to the
// clustering stage, which consumes raw summaries).
func BaselineCorrect(m *tensor.Tensor) *tensor.Tensor {
	f, w := m.Dim(0), m.Dim(1)
	out := tensor.New(f, w)
	for i := 0; i < f; i++ {
		base := m.At(i, 0)
		for j := 0; j < w; j++ {
			out.Set(m.At(i, j)-base, i, j)
		}
	}
	return out
}

// Normalizer stores per-feature affine parameters (z-score) fitted on a
// training set of feature maps and applied to any map. Normalising with
// training-set statistics only is what keeps LOSO evaluation unbiased.
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer computes per-feature (per-row) mean and standard deviation
// over all columns of all given maps.
func FitNormalizer(maps []*tensor.Tensor) *Normalizer {
	if len(maps) == 0 {
		return &Normalizer{}
	}
	f := maps[0].Dim(0)
	mean := make([]float64, f)
	count := make([]float64, f)
	for _, m := range maps {
		w := m.Dim(1)
		for i := 0; i < f; i++ {
			for j := 0; j < w; j++ {
				mean[i] += m.At(i, j)
				count[i]++
			}
		}
	}
	for i := range mean {
		if count[i] > 0 {
			mean[i] /= count[i]
		}
	}
	std := make([]float64, f)
	for _, m := range maps {
		w := m.Dim(1)
		for i := 0; i < f; i++ {
			for j := 0; j < w; j++ {
				d := m.At(i, j) - mean[i]
				std[i] += d * d
			}
		}
	}
	for i := range std {
		if count[i] > 0 {
			std[i] = math.Sqrt(std[i] / count[i])
		}
		if std[i] < 1e-9 {
			std[i] = 1 // constant feature: leave centred at 0
		}
	}
	return &Normalizer{Mean: mean, Std: std}
}

// Apply returns a z-scored copy of the feature map m.
func (n *Normalizer) Apply(m *tensor.Tensor) *tensor.Tensor {
	if len(n.Mean) == 0 {
		return m.Clone()
	}
	f, w := m.Dim(0), m.Dim(1)
	out := tensor.New(f, w)
	for i := 0; i < f; i++ {
		for j := 0; j < w; j++ {
			out.Set((m.At(i, j)-n.Mean[i])/n.Std[i], i, j)
		}
	}
	return out
}

// ApplyAll z-scores a batch of maps.
func (n *Normalizer) ApplyAll(maps []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(maps))
	for i, m := range maps {
		out[i] = n.Apply(m)
	}
	return out
}

// Summary returns the per-user feature summary vector used for clustering:
// the per-feature mean over all columns of all the user's maps. This is the
// D ∈ R^{F×N} construction from the paper's Global Clustering step.
func Summary(maps []*tensor.Tensor) []float64 {
	if len(maps) == 0 {
		return nil
	}
	f := maps[0].Dim(0)
	out := make([]float64, f)
	n := 0.0
	for _, m := range maps {
		w := m.Dim(1)
		for i := 0; i < f; i++ {
			for j := 0; j < w; j++ {
				out[i] += m.At(i, j)
			}
		}
		n += float64(w)
	}
	for i := range out {
		out[i] /= n
	}
	return out
}
