package features

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestBaselineCorrectKnown(t *testing.T) {
	m := tensor.FromSlice([]float64{
		10, 12, 15, // row 0
		-3, -3, -1, // row 1
	}, 2, 3)
	c := BaselineCorrect(m)
	want := []float64{0, 2, 5, 0, 0, 2}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("corrected %v, want %v", c.Data, want)
		}
	}
	// Input untouched.
	if m.At(0, 0) != 10 {
		t.Error("BaselineCorrect mutated its input")
	}
}

func TestBaselineCorrectRemovesOffsets(t *testing.T) {
	// Two maps that differ only by per-row offsets become identical.
	rng := rand.New(rand.NewSource(5))
	a := tensor.Randn(rng, 1, 4, 6)
	b := a.Clone()
	for i := 0; i < 4; i++ {
		off := rng.NormFloat64() * 10
		for j := 0; j < 6; j++ {
			b.Set(b.At(i, j)+off, i, j)
		}
	}
	ca, cb := BaselineCorrect(a), BaselineCorrect(b)
	for i := range ca.Data {
		if d := ca.Data[i] - cb.Data[i]; d > 1e-12 || d < -1e-12 {
			t.Fatal("offset maps should correct to (numerically) identical maps")
		}
	}
}

func TestBaselineCorrectFirstColumnZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := tensor.Randn(rng, 1, 123, 8)
	c := BaselineCorrect(m)
	for i := 0; i < 123; i++ {
		if c.At(i, 0) != 0 {
			t.Fatalf("row %d first window %g, want 0", i, c.At(i, 0))
		}
	}
}

func TestBaselineCorrectIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := tensor.Randn(rng, 1, 5, 4)
	once := BaselineCorrect(m)
	twice := BaselineCorrect(once)
	for i := range once.Data {
		if once.Data[i] != twice.Data[i] {
			t.Fatal("BaselineCorrect must be idempotent")
		}
	}
}
