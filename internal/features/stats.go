// Package features implements the 123-feature physiological extractor the
// CLEAR paper builds its 2-D feature maps from: 84 features from blood
// volume pulse (BVP), 34 from galvanic skin response (GSR) and 5 from skin
// temperature (SKT), computed per time window and stacked into an F×W map
// (Sun et al., the paper's reference [18]).
package features

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x))
}

// Skewness returns the sample skewness of x (0 if degenerate).
func Skewness(x []float64) float64 {
	if len(x) < 3 {
		return 0
	}
	m, s := Mean(x), Std(x)
	if s == 0 {
		return 0
	}
	acc := 0.0
	for _, v := range x {
		d := (v - m) / s
		acc += d * d * d
	}
	return acc / float64(len(x))
}

// Kurtosis returns the excess kurtosis of x (0 for a normal distribution,
// 0 if degenerate).
func Kurtosis(x []float64) float64 {
	if len(x) < 4 {
		return 0
	}
	m, s := Mean(x), Std(x)
	if s == 0 {
		return 0
	}
	acc := 0.0
	for _, v := range x {
		d := (v - m) / s
		acc += d * d * d * d
	}
	return acc/float64(len(x)) - 3
}

// RMS returns the root mean square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	ss := 0.0
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss / float64(len(x)))
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between order statistics.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Median returns the 50th percentile of x.
func Median(x []float64) float64 { return Percentile(x, 50) }

// IQR returns the interquartile range of x.
func IQR(x []float64) float64 { return Percentile(x, 75) - Percentile(x, 25) }

// MAD returns the median absolute deviation of x.
func MAD(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - m)
	}
	return Median(dev)
}

// Min returns the minimum of x (0 for empty input).
func Min(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x (0 for empty input).
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Range returns Max(x) - Min(x).
func Range(x []float64) float64 { return Max(x) - Min(x) }

// ZeroCrossingRate returns the fraction of successive sample pairs of the
// mean-removed signal that change sign.
func ZeroCrossingRate(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	count := 0
	for i := 1; i < len(x); i++ {
		if (x[i]-m)*(x[i-1]-m) < 0 {
			count++
		}
	}
	return float64(count) / float64(len(x)-1)
}

// LineLength returns the mean absolute successive difference of x.
func LineLength(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	s := 0.0
	for i := 1; i < len(x); i++ {
		s += math.Abs(x[i] - x[i-1])
	}
	return s / float64(len(x)-1)
}

// Slope returns the least-squares linear slope of x per sample.
func Slope(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	var st, sy, stt, sty float64
	for i, v := range x {
		t := float64(i)
		st += t
		sy += v
		stt += t * t
		sty += t * v
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den == 0 {
		return 0
	}
	return (fn*sty - st*sy) / den
}

// Hjorth returns the Hjorth activity, mobility and complexity parameters
// of x.
func Hjorth(x []float64) (activity, mobility, complexity float64) {
	activity = Variance(x)
	if len(x) < 3 || activity == 0 {
		return activity, 0, 0
	}
	d1 := diff(x)
	d2 := diff(d1)
	v1 := Variance(d1)
	v2 := Variance(d2)
	mobility = math.Sqrt(v1 / activity)
	if v1 > 0 {
		complexity = math.Sqrt(v2/v1) / mobility
	}
	return activity, mobility, complexity
}

func diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := range out {
		out[i] = x[i+1] - x[i]
	}
	return out
}

// Autocorrelation returns the normalised autocorrelation of x at the given
// lag (1 at lag 0; 0 if degenerate or lag out of range).
func Autocorrelation(x []float64, lag int) float64 {
	n := len(x)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		den += (x[i] - m) * (x[i] - m)
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (x[i] - m) * (x[i+lag] - m)
	}
	return num / den
}

// CrestFactor returns peak amplitude over RMS (0 if silent).
func CrestFactor(x []float64) float64 {
	r := RMS(x)
	if r == 0 {
		return 0
	}
	peak := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	return peak / r
}
