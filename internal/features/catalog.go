package features

import "strings"

// Modality identifies the sensor a feature derives from.
type Modality string

// Modalities.
const (
	ModalityBVP Modality = "BVP"
	ModalityGSR Modality = "GSR"
	ModalitySKT Modality = "SKT"
)

// Domain classifies how a feature is computed, following the paper's
// "time domain, frequency domain and non-linear" taxonomy plus the
// morphology group beat/SCR detection enables.
type Domain string

// Domains.
const (
	DomainTime       Domain = "time"
	DomainFrequency  Domain = "frequency"
	DomainNonlinear  Domain = "non-linear"
	DomainMorphology Domain = "morphology"
)

// FeatureInfo documents one of the 123 extracted features.
type FeatureInfo struct {
	// Index is the feature-map row.
	Index int
	// Name matches FeatureNames()[Index].
	Name     string
	Modality Modality
	Domain   Domain
	// Description states what the feature measures.
	Description string
}

// Catalog returns documentation for all 123 features in extraction order.
// The catalog is generated from the name lists, so it can never drift out
// of sync with the extractor; descriptions come from the table below.
func Catalog() []FeatureInfo {
	names := FeatureNames()
	out := make([]FeatureInfo, len(names))
	for i, n := range names {
		info := FeatureInfo{Index: i, Name: n}
		switch {
		case i < BVPFeatureCount:
			info.Modality = ModalityBVP
		case i < BVPFeatureCount+GSRFeatureCount:
			info.Modality = ModalityGSR
		default:
			info.Modality = ModalitySKT
		}
		info.Domain = domainOf(n)
		info.Description = describe(n)
		out[i] = info
	}
	return out
}

// domainOf classifies a feature name into its computation domain.
func domainOf(name string) Domain {
	switch {
	case strings.Contains(name, "sampen"), strings.Contains(name, "apen"),
		strings.Contains(name, "higuchi"), strings.HasPrefix(name, "poincare"),
		strings.Contains(name, "hjorth"):
		return DomainNonlinear
	case strings.Contains(name, "pow"), strings.Contains(name, "spec"),
		strings.Contains(name, "rel_"), strings.HasPrefix(name, "hrv_"):
		return DomainFrequency
	case strings.HasPrefix(name, "pulse_"), strings.HasPrefix(name, "scr_"):
		return DomainMorphology
	default:
		return DomainTime
	}
}

// descriptions holds human explanations for feature name stems.
var descriptions = map[string]string{
	"bvp_mean": "mean of the blood volume pulse signal",
	"bvp_std":  "standard deviation of the BVP signal",
	"bvp_min":  "minimum BVP sample", "bvp_max": "maximum BVP sample",
	"bvp_range":  "peak-to-peak BVP range",
	"bvp_skew":   "skewness of the BVP amplitude distribution",
	"bvp_kurt":   "excess kurtosis of the BVP amplitude distribution",
	"bvp_rms":    "root mean square of the BVP signal",
	"bvp_median": "median BVP sample", "bvp_iqr": "interquartile range of BVP",
	"bvp_mad":    "median absolute deviation of BVP",
	"bvp_zcr":    "zero-crossing rate of the mean-removed BVP",
	"bvp_energy": "total signal energy", "bvp_linelen": "mean absolute successive difference",
	"bvp_hjorth_activity":   "Hjorth activity (variance)",
	"bvp_hjorth_mobility":   "Hjorth mobility (dominant-frequency proxy)",
	"bvp_hjorth_complexity": "Hjorth complexity (bandwidth proxy)",
	"bvp_d1_meanabs":        "mean |first derivative|", "bvp_d1_std": "std of first derivative",
	"bvp_d1_max": "max |first derivative|", "bvp_d1_skew": "skewness of first derivative",
	"bvp_d1_kurt":    "kurtosis of first derivative",
	"bvp_d2_meanabs": "mean |second derivative|", "bvp_d2_std": "std of second derivative",
	"bvp_d2_max": "max |second derivative|",
	"hr_mean":    "mean heart rate from detected beats (bpm)",
	"hr_std":     "heart-rate variability across beats (bpm)",
	"hr_min":     "minimum instantaneous heart rate", "hr_max": "maximum instantaneous heart rate",
	"nn_mean": "mean inter-beat (NN) interval", "nn_sdnn": "SDNN: std of NN intervals",
	"nn_rmssd":  "RMSSD: RMS of successive NN differences",
	"nn_sdsd":   "SDSD: std of successive NN differences",
	"nn_pnn20":  "fraction of successive NN differences > 20 ms",
	"nn_pnn50":  "fraction of successive NN differences > 50 ms",
	"nn_cv":     "coefficient of variation of NN intervals",
	"nn_median": "median NN interval", "nn_iqr": "IQR of NN intervals",
	"nn_min": "shortest NN interval", "nn_max": "longest NN interval",
	"nn_range": "NN interval range",
	"hrv_vlf":  "very-low-frequency HRV power (0.003–0.04 Hz)",
	"hrv_lf":   "low-frequency HRV power (0.04–0.15 Hz)",
	"hrv_hf":   "high-frequency HRV power (0.15–0.4 Hz)",
	"hrv_lfhf": "sympathovagal balance LF/HF",
	"hrv_lfnu": "normalised LF power", "hrv_hfnu": "normalised HF power",
	"hrv_total":   "total HRV spectral power",
	"hrv_lf_peak": "peak frequency in the LF band", "hrv_hf_peak": "peak frequency in the HF band",
	"poincare_sd1":   "Poincaré SD1 (short-term HRV)",
	"poincare_sd2":   "Poincaré SD2 (long-term HRV)",
	"poincare_ratio": "SD1/SD2 ratio", "poincare_area": "Poincaré ellipse area",
	"nn_sampen": "sample entropy of NN intervals", "nn_apen": "approximate entropy of NN intervals",
	"bvp_spec_entropy":  "spectral entropy of the cardiac band",
	"bvp_spec_peak":     "dominant frequency of the cardiac band",
	"bvp_spec_centroid": "spectral centroid", "bvp_spec_spread": "spectral spread",
	"pulse_rate":     "detected pulse rate (per minute)",
	"pulse_amp_mean": "mean systolic peak amplitude", "pulse_amp_std": "std of peak amplitudes",
	"pulse_prom_mean": "mean peak prominence", "pulse_prom_std": "std of peak prominences",
	"pulse_crest":      "crest factor of the pulse waveform",
	"pulse_rise_slope": "mean upstroke slope into systolic peaks",
	"bvp_ac_lag1":      "autocorrelation at lag 1",
	"bvp_ac_beat":      "autocorrelation at one beat period",
	"bvp_ac_firstmin":  "lag of the first autocorrelation minimum",
	"bvp_p5":           "5th percentile", "bvp_p25": "25th percentile",
	"bvp_p75": "75th percentile", "bvp_p95": "95th percentile",
	"bvp_sampen":     "sample entropy of the BVP waveform",
	"bvp_higuchi":    "Higuchi fractal dimension of the BVP waveform",
	"gsr_tonic_mean": "mean tonic skin conductance level",
	"gsr_tonic_std":  "std of the tonic level", "gsr_tonic_min": "minimum tonic level",
	"gsr_tonic_max": "maximum tonic level", "gsr_tonic_range": "tonic level range",
	"gsr_tonic_slope": "tonic drift per second", "gsr_tonic_median": "median tonic level",
	"scr_count": "number of skin conductance responses",
	"scr_rate":  "SCR rate per minute", "scr_amp_mean": "mean SCR amplitude",
	"scr_amp_max": "largest SCR amplitude", "scr_amp_std": "std of SCR amplitudes",
	"scr_prom_mean":  "mean SCR prominence",
	"scr_rise_slope": "mean SCR rise slope", "scr_amp_sum": "summed SCR amplitudes",
	"gsr_d1_mean":    "mean first derivative of skin conductance",
	"gsr_d1_meanabs": "mean |first derivative|", "gsr_d1_std": "std of the first derivative",
	"gsr_d1_max": "max first derivative", "gsr_d1_min": "min first derivative",
	"gsr_d1_pospct": "fraction of rising samples",
	"gsr_skew":      "skewness of skin conductance", "gsr_kurt": "kurtosis of skin conductance",
	"gsr_rms": "RMS of skin conductance", "gsr_iqr": "IQR of skin conductance",
	"gsr_mad": "MAD of skin conductance", "gsr_zcr": "zero-crossing rate of the phasic component",
	"gsr_spec_entropy": "spectral entropy of the phasic component",
	"gsr_spec_peak":    "dominant phasic frequency",
	"gsr_sampen":       "sample entropy of the phasic component",
	"skt_mean":         "mean skin temperature", "skt_std": "std of skin temperature",
	"skt_slope": "temperature drift per second",
	"skt_min":   "minimum temperature", "skt_max": "maximum temperature",
}

// describe resolves a feature description, synthesising one for band-power
// names like "bvp_pow_0.5_1.5".
func describe(name string) string {
	if d, ok := descriptions[name]; ok {
		return d
	}
	switch {
	case strings.HasPrefix(name, "bvp_pow_"):
		return "absolute BVP band power " + strings.TrimPrefix(name, "bvp_pow_") + " Hz"
	case strings.HasPrefix(name, "bvp_rel_"):
		return "relative BVP band power " + strings.TrimPrefix(name, "bvp_rel_") + " Hz"
	case strings.HasPrefix(name, "gsr_pow_"):
		return "phasic GSR band power " + strings.TrimPrefix(name, "gsr_pow_") + " Hz"
	default:
		return "physiological feature " + name
	}
}
