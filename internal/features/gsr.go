package features

import (
	"math"

	"repro/internal/dsp"
)

// GSRFeatureCount is the number of features ExtractGSR produces (34).
const GSRFeatureCount = 34

var gsrFeatureNames = []string{
	// --- tonic component (7) ---
	"gsr_tonic_mean", "gsr_tonic_std", "gsr_tonic_min", "gsr_tonic_max",
	"gsr_tonic_range", "gsr_tonic_slope", "gsr_tonic_median",
	// --- phasic component / SCRs (8) ---
	"scr_count", "scr_rate", "scr_amp_mean", "scr_amp_max",
	"scr_amp_std", "scr_prom_mean", "scr_rise_slope", "scr_amp_sum",
	// --- derivative (6) ---
	"gsr_d1_mean", "gsr_d1_meanabs", "gsr_d1_std", "gsr_d1_max",
	"gsr_d1_min", "gsr_d1_pospct",
	// --- raw statistics (6) ---
	"gsr_skew", "gsr_kurt", "gsr_rms", "gsr_iqr", "gsr_mad", "gsr_zcr",
	// --- spectrum (6) ---
	"gsr_pow_0_0.1", "gsr_pow_0.1_0.2", "gsr_pow_0.2_0.4", "gsr_pow_0.4_1",
	"gsr_spec_entropy", "gsr_spec_peak",
	// --- complexity (1) ---
	"gsr_sampen",
}

// ExtractGSR computes the 34 GSR features from one window of skin
// conductance samples at sample rate fs Hz.
func ExtractGSR(x []float64, fs float64) []float64 {
	out := make([]float64, 0, GSRFeatureCount)
	push := func(vals ...float64) {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			out = append(out, v)
		}
	}

	// Tonic: slow component via moving average (≈4 s window).
	tonicWin := int(4 * fs)
	tonic := dsp.MovingAverage(x, tonicWin)
	push(Mean(tonic), Std(tonic), Min(tonic), Max(tonic),
		Range(tonic), Slope(tonic)*fs, Median(tonic))

	// Phasic: residual after tonic removal; SCRs are its peaks.
	phasic := make([]float64, len(x))
	for i := range x {
		phasic[i] = x[i] - tonic[i]
	}
	prom := 0.5 * Std(phasic)
	minDist := int(fs) // SCRs ≥ 1 s apart
	peaks := dsp.FindPeaks(phasic, 0, prom, minDist)
	winSec := float64(len(x)) / fs
	var amps, proms []float64
	for _, p := range peaks {
		amps = append(amps, p.Height)
		proms = append(proms, p.Prominence)
	}
	rate := 0.0
	if winSec > 0 {
		rate = float64(len(peaks)) / winSec * 60
	}
	push(float64(len(peaks)), rate, Mean(amps), Max(amps),
		Std(amps), Mean(proms), riseSlope(phasic, peaks), sum(amps))

	// Derivative.
	d1 := diff(x)
	pos := 0
	for _, v := range d1 {
		if v > 0 {
			pos++
		}
	}
	posPct := 0.0
	if len(d1) > 0 {
		posPct = float64(pos) / float64(len(d1))
	}
	push(Mean(d1), meanAbs(d1), Std(d1), Max(d1), Min(d1), posPct)

	// Raw statistics.
	push(Skewness(x), Kurtosis(x), RMS(x), IQR(x), MAD(x), ZeroCrossingRate(phasic))

	// Spectrum of the phasic component.
	psd := dsp.Welch(phasic, fs, 64)
	push(psd.BandPower(0.01, 0.1), psd.BandPower(0.1, 0.2),
		psd.BandPower(0.2, 0.4), psd.BandPower(0.4, 1.0),
		psd.SpectralEntropy(0.01, 1.0), psd.PeakFrequency(0.01, 1.0))

	// Complexity (downsampled for cost).
	small := dsp.Resample(phasic, 64)
	push(SampleEntropy(small, 2, 0.2*Std(small)))

	if len(out) != GSRFeatureCount {
		panic("features: ExtractGSR produced wrong count")
	}
	return out
}

// GSRFeatureNames returns the GSR feature names in extraction order.
func GSRFeatureNames() []string { return append([]string(nil), gsrFeatureNames...) }

func sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}
