package features

import (
	"math"

	"repro/internal/dsp"
)

// BVPFeatureCount is the number of features ExtractBVP produces (84, per
// the paper's feature split: 84 BVP + 34 GSR + 5 SKT = 123).
const BVPFeatureCount = 84

// bvpFeatureNames lists the BVP features in output order.
var bvpFeatureNames = []string{
	// --- raw-signal statistics (17) ---
	"bvp_mean", "bvp_std", "bvp_min", "bvp_max", "bvp_range",
	"bvp_skew", "bvp_kurt", "bvp_rms", "bvp_median", "bvp_iqr",
	"bvp_mad", "bvp_zcr", "bvp_energy", "bvp_linelen",
	"bvp_hjorth_activity", "bvp_hjorth_mobility", "bvp_hjorth_complexity",
	// --- first derivative (5) ---
	"bvp_d1_meanabs", "bvp_d1_std", "bvp_d1_max", "bvp_d1_skew", "bvp_d1_kurt",
	// --- second derivative (3) ---
	"bvp_d2_meanabs", "bvp_d2_std", "bvp_d2_max",
	// --- HRV time domain (16) ---
	"hr_mean", "hr_std", "hr_min", "hr_max",
	"nn_mean", "nn_sdnn", "nn_rmssd", "nn_sdsd",
	"nn_pnn20", "nn_pnn50", "nn_cv", "nn_median",
	"nn_iqr", "nn_min", "nn_max", "nn_range",
	// --- HRV frequency domain (9) ---
	"hrv_vlf", "hrv_lf", "hrv_hf", "hrv_lfhf",
	"hrv_lfnu", "hrv_hfnu", "hrv_total", "hrv_lf_peak", "hrv_hf_peak",
	// --- Poincaré (4) ---
	"poincare_sd1", "poincare_sd2", "poincare_ratio", "poincare_area",
	// --- NN entropy (2) ---
	"nn_sampen", "nn_apen",
	// --- BVP spectrum (12) ---
	"bvp_pow_0.5_1.5", "bvp_pow_1.5_2.5", "bvp_pow_2.5_3.5", "bvp_pow_3.5_5",
	"bvp_rel_0.5_1.5", "bvp_rel_1.5_2.5", "bvp_rel_2.5_3.5", "bvp_rel_3.5_5",
	"bvp_spec_entropy", "bvp_spec_peak", "bvp_spec_centroid", "bvp_spec_spread",
	// --- pulse morphology (7) ---
	"pulse_rate", "pulse_amp_mean", "pulse_amp_std",
	"pulse_prom_mean", "pulse_prom_std", "pulse_crest", "pulse_rise_slope",
	// --- autocorrelation (3) ---
	"bvp_ac_lag1", "bvp_ac_beat", "bvp_ac_firstmin",
	// --- percentiles + extras (6) ---
	"bvp_p5", "bvp_p25", "bvp_p75", "bvp_p95", "bvp_sampen", "bvp_higuchi",
}

// ExtractBVP computes the 84 BVP features from one window of blood volume
// pulse samples at sample rate fs Hz. Degenerate windows (too short, flat)
// produce well-defined zeros rather than NaNs.
func ExtractBVP(x []float64, fs float64) []float64 {
	out := make([]float64, 0, BVPFeatureCount)
	push := func(vals ...float64) {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			out = append(out, v)
		}
	}

	// Raw-signal statistics.
	act, mob, comp := Hjorth(x)
	push(Mean(x), Std(x), Min(x), Max(x), Range(x),
		Skewness(x), Kurtosis(x), RMS(x), Median(x), IQR(x),
		MAD(x), ZeroCrossingRate(x), energy(x), LineLength(x),
		act, mob, comp)

	// Derivatives.
	d1 := diff(x)
	d2 := diff(d1)
	push(meanAbs(d1), Std(d1), Max(absAll(d1)), Skewness(d1), Kurtosis(d1))
	push(meanAbs(d2), Std(d2), Max(absAll(d2)))

	// Beat detection → NN intervals (seconds). Detection runs on the
	// cardiac band (0.7–3.5 Hz ≈ 42–210 bpm) so baseline wander, sensor
	// noise and the dicrotic bump cannot masquerade as beats.
	det := dsp.Detrend(x)
	var peaks []dsp.Peak
	if len(x) > 8 && fs > 8 {
		beatSig := dsp.Bandpass(det, 0.7, 3.5, fs)
		minDist := int(fs * 0.35) // refractory ≈ max 170 bpm
		peaks = dsp.FindPeaks(beatSig, 0, 1.0*Std(beatSig), minDist)
	}
	nn := dsp.Intervals(peaks, fs)

	// HRV time domain.
	var hr []float64
	for _, ibi := range nn {
		if ibi > 0 {
			hr = append(hr, 60/ibi)
		}
	}
	push(Mean(hr), Std(hr), Min(hr), Max(hr))
	push(Mean(nn), Std(nn), rmssd(nn), Std(diff(nn)),
		pnnx(nn, 0.020), pnnx(nn, 0.050), cv(nn), Median(nn),
		IQR(nn), Min(nn), Max(nn), Range(nn))

	// HRV frequency domain from the resampled NN tachogram at 4 Hz.
	vlf, lf, hf, lfhf, lfnu, hfnu, totp, lfPeak, hfPeak := hrvSpectral(nn)
	push(vlf, lf, hf, lfhf, lfnu, hfnu, totp, lfPeak, hfPeak)

	// Poincaré.
	sd1, sd2 := Poincare(nn)
	ratio, area := 0.0, math.Pi*sd1*sd2
	if sd2 > 0 {
		ratio = sd1 / sd2
	}
	push(sd1, sd2, ratio, area)

	// NN entropy.
	rTol := 0.2 * Std(nn)
	push(SampleEntropy(nn, 2, rTol), ApproximateEntropy(nn, 2, rTol))

	// BVP spectrum.
	psd := dsp.Welch(det, fs, 256)
	bands := [][2]float64{{0.5, 1.5}, {1.5, 2.5}, {2.5, 3.5}, {3.5, 5}}
	tot := psd.BandPower(0.5, 5)
	var abs [4]float64
	for i, b := range bands {
		abs[i] = psd.BandPower(b[0], b[1])
	}
	push(abs[0], abs[1], abs[2], abs[3])
	for _, a := range abs {
		if tot > 0 {
			push(a / tot)
		} else {
			push(0)
		}
	}
	cen, spread := spectralMoments(psd, 0.5, 5)
	push(psd.SpectralEntropy(0.5, 5), psd.PeakFrequency(0.5, 5), cen, spread)

	// Pulse morphology.
	winSec := float64(len(x)) / fs
	pulseRate := 0.0
	if winSec > 0 {
		pulseRate = float64(len(peaks)) / winSec * 60
	}
	var amps, proms []float64
	for _, p := range peaks {
		amps = append(amps, p.Height)
		proms = append(proms, p.Prominence)
	}
	push(pulseRate, Mean(amps), Std(amps), Mean(proms), Std(proms),
		CrestFactor(det), riseSlope(det, peaks))

	// Autocorrelation.
	beatLag := 0
	if m := Mean(nn); m > 0 {
		beatLag = int(m * fs)
	}
	push(Autocorrelation(det, 1), Autocorrelation(det, beatLag), firstACMinimum(det, int(fs)))

	// Percentiles + complexity of the raw window (downsampled for cost).
	small := dsp.Resample(det, 128)
	push(Percentile(x, 5), Percentile(x, 25), Percentile(x, 75), Percentile(x, 95),
		SampleEntropy(small, 2, 0.2*Std(small)), HiguchiFD(small, 8))

	if len(out) != BVPFeatureCount {
		panic("features: ExtractBVP produced wrong count")
	}
	return out
}

// BVPFeatureNames returns the BVP feature names in extraction order.
func BVPFeatureNames() []string { return append([]string(nil), bvpFeatureNames...) }

func energy(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func meanAbs(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s / float64(len(x))
}

func absAll(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Abs(v)
	}
	return out
}

func rmssd(nn []float64) float64 {
	d := diff(nn)
	if len(d) == 0 {
		return 0
	}
	return RMS(d)
}

func pnnx(nn []float64, thresh float64) float64 {
	d := diff(nn)
	if len(d) == 0 {
		return 0
	}
	count := 0
	for _, v := range d {
		if math.Abs(v) > thresh {
			count++
		}
	}
	return float64(count) / float64(len(d))
}

func cv(x []float64) float64 {
	m := Mean(x)
	if m == 0 {
		return 0
	}
	return Std(x) / m
}

// hrvSpectral resamples the NN tachogram to 4 Hz and integrates the
// conventional VLF/LF/HF bands.
func hrvSpectral(nn []float64) (vlf, lf, hf, lfhf, lfnu, hfnu, total, lfPeak, hfPeak float64) {
	if len(nn) < 4 {
		return
	}
	const fsTach = 4.0
	dur := 0.0
	for _, v := range nn {
		dur += v
	}
	n := int(dur * fsTach)
	if n < 16 {
		n = 16
	}
	tach := dsp.Resample(nn, n)
	psd := dsp.Welch(dsp.Detrend(tach), fsTach, 64)
	vlf = psd.BandPower(0.003, 0.04)
	lf = psd.BandPower(0.04, 0.15)
	hf = psd.BandPower(0.15, 0.4)
	total = vlf + lf + hf
	if hf > 0 {
		lfhf = lf / hf
	}
	if lf+hf > 0 {
		lfnu = lf / (lf + hf)
		hfnu = hf / (lf + hf)
	}
	lfPeak = psd.PeakFrequency(0.04, 0.15)
	hfPeak = psd.PeakFrequency(0.15, 0.4)
	return
}

// spectralMoments returns the spectral centroid and spread within [lo, hi].
func spectralMoments(psd dsp.PSD, lo, hi float64) (centroid, spread float64) {
	var wsum, psum float64
	for i, f := range psd.Freqs {
		if f < lo || f > hi {
			continue
		}
		wsum += f * psd.Power[i]
		psum += psd.Power[i]
	}
	if psum == 0 {
		return 0, 0
	}
	centroid = wsum / psum
	var vsum float64
	for i, f := range psd.Freqs {
		if f < lo || f > hi {
			continue
		}
		vsum += (f - centroid) * (f - centroid) * psd.Power[i]
	}
	spread = math.Sqrt(vsum / psum)
	return centroid, spread
}

// riseSlope returns the mean upward slope into detected peaks over a short
// pre-peak horizon.
func riseSlope(x []float64, peaks []dsp.Peak) float64 {
	if len(peaks) == 0 {
		return 0
	}
	const horizon = 5
	s := 0.0
	n := 0
	for _, p := range peaks {
		j := p.Index - horizon
		if j < 0 {
			continue
		}
		s += (x[p.Index] - x[j]) / horizon
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// firstACMinimum returns the lag (in samples, as float) of the first local
// minimum of the autocorrelation within maxLag, or 0 if none.
func firstACMinimum(x []float64, maxLag int) float64 {
	if maxLag > len(x)-1 {
		maxLag = len(x) - 1
	}
	prev := Autocorrelation(x, 0)
	for lag := 1; lag <= maxLag; lag++ {
		cur := Autocorrelation(x, lag)
		if cur > prev {
			return float64(lag - 1)
		}
		prev = cur
	}
	return 0
}
