package features

import (
	"strings"
	"testing"
)

func TestCatalogCoversAllFeatures(t *testing.T) {
	cat := Catalog()
	if len(cat) != TotalFeatureCount {
		t.Fatalf("catalog has %d entries, want %d", len(cat), TotalFeatureCount)
	}
	names := FeatureNames()
	for i, info := range cat {
		if info.Index != i {
			t.Errorf("entry %d has index %d", i, info.Index)
		}
		if info.Name != names[i] {
			t.Errorf("entry %d name %q != %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
		if strings.HasPrefix(info.Description, "physiological feature ") {
			t.Errorf("%s: missing curated description", info.Name)
		}
	}
}

func TestCatalogModalityCounts(t *testing.T) {
	counts := map[Modality]int{}
	for _, info := range Catalog() {
		counts[info.Modality]++
	}
	if counts[ModalityBVP] != BVPFeatureCount {
		t.Errorf("BVP count %d", counts[ModalityBVP])
	}
	if counts[ModalityGSR] != GSRFeatureCount {
		t.Errorf("GSR count %d", counts[ModalityGSR])
	}
	if counts[ModalitySKT] != SKTFeatureCount {
		t.Errorf("SKT count %d", counts[ModalitySKT])
	}
}

func TestCatalogDomainsSane(t *testing.T) {
	byDomain := map[Domain]int{}
	for _, info := range Catalog() {
		byDomain[info.Domain]++
	}
	// The paper's taxonomy: time, frequency and non-linear features all
	// present, plus the morphology group from beat/SCR detection.
	for _, d := range []Domain{DomainTime, DomainFrequency, DomainNonlinear, DomainMorphology} {
		if byDomain[d] == 0 {
			t.Errorf("domain %s has no features", d)
		}
	}
	// Spot checks.
	cat := Catalog()
	idx := map[string]FeatureInfo{}
	for _, info := range cat {
		idx[info.Name] = info
	}
	if idx["hrv_lf"].Domain != DomainFrequency {
		t.Error("hrv_lf should be frequency-domain")
	}
	if idx["nn_sampen"].Domain != DomainNonlinear {
		t.Error("nn_sampen should be non-linear")
	}
	if idx["scr_count"].Domain != DomainMorphology {
		t.Error("scr_count should be morphology")
	}
	if idx["skt_mean"].Domain != DomainTime {
		t.Error("skt_mean should be time-domain")
	}
	if idx["skt_mean"].Modality != ModalitySKT {
		t.Error("skt_mean should be SKT")
	}
}
