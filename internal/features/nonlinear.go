package features

import "math"

// SampleEntropy computes SampEn(m, r) of x: the negative log of the
// conditional probability that sequences matching for m points (within
// tolerance r, Chebyshev distance) also match for m+1 points. Returns 0 for
// degenerate inputs, and caps the result to avoid ±Inf when no m+1 matches
// exist.
func SampleEntropy(x []float64, m int, r float64) float64 {
	n := len(x)
	if n <= m+1 || r <= 0 {
		return 0
	}
	countM, countM1 := 0, 0
	for i := 0; i < n-m; i++ {
		for j := i + 1; j < n-m; j++ {
			match := true
			for k := 0; k < m; k++ {
				if math.Abs(x[i+k]-x[j+k]) > r {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			countM++
			if math.Abs(x[i+m]-x[j+m]) <= r {
				countM1++
			}
		}
	}
	if countM == 0 {
		return 0
	}
	if countM1 == 0 {
		// Conventional cap: maximal entropy estimate for the template count.
		return math.Log(float64(countM)) + math.Log(2)
	}
	return -math.Log(float64(countM1) / float64(countM))
}

// ApproximateEntropy computes ApEn(m, r) of x (Pincus). Returns 0 for
// degenerate inputs.
func ApproximateEntropy(x []float64, m int, r float64) float64 {
	n := len(x)
	if n <= m+1 || r <= 0 {
		return 0
	}
	phi := func(m int) float64 {
		count := n - m + 1
		sum := 0.0
		for i := 0; i < count; i++ {
			matches := 0
			for j := 0; j < count; j++ {
				ok := true
				for k := 0; k < m; k++ {
					if math.Abs(x[i+k]-x[j+k]) > r {
						ok = false
						break
					}
				}
				if ok {
					matches++
				}
			}
			sum += math.Log(float64(matches) / float64(count))
		}
		return sum / float64(count)
	}
	return phi(m) - phi(m+1)
}

// Poincare returns the SD1 (short-term) and SD2 (long-term) descriptors of
// the Poincaré plot of successive values of x (typically inter-beat
// intervals).
func Poincare(x []float64) (sd1, sd2 float64) {
	if len(x) < 2 {
		return 0, 0
	}
	var d, s []float64
	for i := 1; i < len(x); i++ {
		d = append(d, (x[i]-x[i-1])/math.Sqrt2)
		s = append(s, (x[i]+x[i-1])/math.Sqrt2)
	}
	return Std(d), Std(s)
}

// HiguchiFD estimates the Higuchi fractal dimension of x with maximum delay
// kMax. Returns 0 for degenerate inputs. Values near 1 indicate smooth
// curves; near 2, space-filling noise.
func HiguchiFD(x []float64, kMax int) float64 {
	n := len(x)
	if n < 10 || kMax < 2 {
		return 0
	}
	var logk, logl []float64
	for k := 1; k <= kMax; k++ {
		lk := 0.0
		used := 0
		for m := 0; m < k; m++ {
			steps := (n - 1 - m) / k
			if steps < 1 {
				continue
			}
			length := 0.0
			for i := 1; i <= steps; i++ {
				length += math.Abs(x[m+i*k] - x[m+(i-1)*k])
			}
			norm := float64(n-1) / (float64(steps) * float64(k))
			lk += length * norm / float64(k)
			used++
		}
		if used == 0 {
			continue
		}
		lk /= float64(used)
		if lk <= 0 {
			continue
		}
		logk = append(logk, math.Log(1/float64(k)))
		logl = append(logl, math.Log(lk))
	}
	if len(logk) < 2 {
		return 0
	}
	// Least-squares slope of log L(k) vs log 1/k.
	mk, ml := Mean(logk), Mean(logl)
	var num, den float64
	for i := range logk {
		num += (logk[i] - mk) * (logl[i] - ml)
		den += (logk[i] - mk) * (logk[i] - mk)
	}
	if den == 0 {
		return 0
	}
	return num / den
}
