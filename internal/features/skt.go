package features

import "math"

// SKTFeatureCount is the number of features ExtractSKT produces (5).
const SKTFeatureCount = 5

var sktFeatureNames = []string{
	"skt_mean", "skt_std", "skt_slope", "skt_min", "skt_max",
}

// ExtractSKT computes the 5 skin-temperature features from one window of
// samples at sample rate fs Hz: mean, standard deviation, per-second linear
// slope, minimum and maximum.
func ExtractSKT(x []float64, fs float64) []float64 {
	out := []float64{Mean(x), Std(x), Slope(x) * fs, Min(x), Max(x)}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out[i] = 0
		}
	}
	if len(out) != SKTFeatureCount {
		panic("features: ExtractSKT produced wrong count")
	}
	return out
}

// SKTFeatureNames returns the SKT feature names in extraction order.
func SKTFeatureNames() []string { return append([]string(nil), sktFeatureNames...) }
