package features

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// synthRecording builds a plausible physiological recording: BVP pulse train
// at the given heart rate, GSR with tonic drift plus SCR bumps, SKT drift.
func synthRecording(rng *rand.Rand, durSec, hrHz, scrPerMin float64) *Recording {
	bvpFs, gsrFs, sktFs := 64.0, 8.0, 4.0
	nb := int(durSec * bvpFs)
	bvp := make([]float64, nb)
	for i := range bvp {
		ph := math.Mod(float64(i)/bvpFs*hrHz, 1)
		bvp[i] = math.Exp(-40*(ph-0.3)*(ph-0.3)) + 0.02*rng.NormFloat64()
	}
	ng := int(durSec * gsrFs)
	gsr := make([]float64, ng)
	level := 2.0
	for i := range gsr {
		tSec := float64(i) / gsrFs
		level += 0.0005 * rng.NormFloat64()
		v := level + 0.05*math.Sin(2*math.Pi*tSec/30)
		// SCR bumps at roughly scrPerMin rate.
		if rng.Float64() < scrPerMin/60/gsrFs {
			v += 0.5
		}
		gsr[i] = v
	}
	// Smooth the SCR impulses into bump shapes.
	for pass := 0; pass < 3; pass++ {
		for i := 1; i < len(gsr); i++ {
			gsr[i] = 0.6*gsr[i] + 0.4*gsr[i-1]
		}
	}
	ns := int(durSec * sktFs)
	skt := make([]float64, ns)
	for i := range skt {
		skt[i] = 33 + 0.01*float64(i)/sktFs + 0.01*rng.NormFloat64()
	}
	return &Recording{BVP: bvp, BVPFs: bvpFs, GSR: gsr, GSRFs: gsrFs, SKT: skt, SKTFs: sktFs}
}

func TestFeatureCountsConsistent(t *testing.T) {
	if TotalFeatureCount != 123 {
		t.Fatalf("TotalFeatureCount = %d, want 123", TotalFeatureCount)
	}
	if len(BVPFeatureNames()) != BVPFeatureCount {
		t.Errorf("BVP names %d != count %d", len(BVPFeatureNames()), BVPFeatureCount)
	}
	if len(GSRFeatureNames()) != GSRFeatureCount {
		t.Errorf("GSR names %d != count %d", len(GSRFeatureNames()), GSRFeatureCount)
	}
	if len(SKTFeatureNames()) != SKTFeatureCount {
		t.Errorf("SKT names %d != count %d", len(SKTFeatureNames()), SKTFeatureCount)
	}
	if len(FeatureNames()) != 123 {
		t.Errorf("FeatureNames length %d", len(FeatureNames()))
	}
	seen := map[string]bool{}
	for _, n := range FeatureNames() {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestExtractBVPFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rec := synthRecording(rng, 10, 1.2, 4)
	vec := ExtractBVP(rec.BVP, rec.BVPFs)
	if len(vec) != BVPFeatureCount {
		t.Fatalf("len = %d", len(vec))
	}
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %s = %g", bvpFeatureNames[i], v)
		}
	}
}

func TestExtractBVPHeartRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, hr := range []float64{1.0, 1.5} {
		rec := synthRecording(rng, 20, hr, 2)
		vec := ExtractBVP(rec.BVP, rec.BVPFs)
		idx := indexOf(bvpFeatureNames, "hr_mean")
		got := vec[idx]
		want := hr * 60
		if math.Abs(got-want) > 8 {
			t.Errorf("hr_mean = %g, want ≈%g", got, want)
		}
		prIdx := indexOf(bvpFeatureNames, "pulse_rate")
		if math.Abs(vec[prIdx]-want) > 10 {
			t.Errorf("pulse_rate = %g, want ≈%g", vec[prIdx], want)
		}
	}
}

func TestExtractBVPDegenerateInputs(t *testing.T) {
	for _, x := range [][]float64{nil, {1}, {1, 1, 1, 1, 1}} {
		vec := ExtractBVP(x, 64)
		if len(vec) != BVPFeatureCount {
			t.Fatalf("degenerate len = %d", len(vec))
		}
		for i, v := range vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("degenerate feature %s = %g", bvpFeatureNames[i], v)
			}
		}
	}
}

func TestExtractGSRFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rec := synthRecording(rng, 10, 1.2, 6)
	vec := ExtractGSR(rec.GSR, rec.GSRFs)
	if len(vec) != GSRFeatureCount {
		t.Fatalf("len = %d", len(vec))
	}
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %s = %g", gsrFeatureNames[i], v)
		}
	}
	// Tonic mean should be near the synthetic level ≈2.
	if m := vec[indexOf(gsrFeatureNames, "gsr_tonic_mean")]; m < 1 || m > 4 {
		t.Errorf("gsr_tonic_mean = %g, want ≈2", m)
	}
}

func TestExtractGSRSCRRateOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	calm := synthRecording(rng, 30, 1.1, 1)
	arous := synthRecording(rng, 30, 1.1, 20)
	calmV := ExtractGSR(calm.GSR, calm.GSRFs)
	arousV := ExtractGSR(arous.GSR, arous.GSRFs)
	idx := indexOf(gsrFeatureNames, "scr_count")
	if arousV[idx] <= calmV[idx] {
		t.Errorf("SCR count: aroused %g should exceed calm %g", arousV[idx], calmV[idx])
	}
}

func TestExtractGSRDegenerate(t *testing.T) {
	vec := ExtractGSR(nil, 8)
	if len(vec) != GSRFeatureCount {
		t.Fatalf("len = %d", len(vec))
	}
	for _, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Error("degenerate GSR features must be finite")
		}
	}
}

func TestExtractSKT(t *testing.T) {
	// 2-minute SKT rising at 0.02 °C/s from 33.
	fs := 4.0
	x := make([]float64, int(120*fs))
	for i := range x {
		x[i] = 33 + 0.02*float64(i)/fs
	}
	vec := ExtractSKT(x, fs)
	if len(vec) != SKTFeatureCount {
		t.Fatalf("len = %d", len(vec))
	}
	if math.Abs(vec[0]-34.2) > 0.05 {
		t.Errorf("skt_mean = %g", vec[0])
	}
	if math.Abs(vec[2]-0.02) > 1e-6 {
		t.Errorf("skt_slope = %g, want 0.02", vec[2])
	}
	if vec[3] != 33 {
		t.Errorf("skt_min = %g", vec[3])
	}
	if ExtractSKT(nil, 4)[0] != 0 {
		t.Error("empty SKT should be zeros")
	}
}

func TestExtractMapShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rec := synthRecording(rng, 60, 1.2, 5)
	cfg := ExtractorConfig{WindowSec: 8, Windows: 6}
	m, err := ExtractMap(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim(0) != 123 || m.Dim(1) != 6 {
		t.Fatalf("map shape %v", m.Shape)
	}
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("feature map contains non-finite values")
		}
	}
}

func TestExtractMapErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rec := synthRecording(rng, 4, 1.2, 5)
	if _, err := ExtractMap(rec, ExtractorConfig{WindowSec: 8, Windows: 4}); err == nil {
		t.Error("want error for recording shorter than window")
	}
	long := synthRecording(rng, 20, 1.2, 5)
	if _, err := ExtractMap(long, ExtractorConfig{WindowSec: 8, Windows: 0}); err == nil {
		t.Error("want error for zero windows")
	}
	if _, err := ExtractMap(long, ExtractorConfig{WindowSec: 0, Windows: 4}); err == nil {
		t.Error("want error for zero window length")
	}
}

func TestExtractMapSingleWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rec := synthRecording(rng, 12, 1.2, 5)
	m, err := ExtractMap(rec, ExtractorConfig{WindowSec: 8, Windows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim(1) != 1 {
		t.Fatalf("shape %v", m.Shape)
	}
}

func TestNormalizer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var maps []*tensor.Tensor
	for i := 0; i < 5; i++ {
		m := tensor.Randn(rng, 3, 4, 6)
		// Shift feature 2 to a large offset to verify per-row normalisation.
		for j := 0; j < 6; j++ {
			m.Set(m.At(2, j)+100, 2, j)
		}
		maps = append(maps, m)
	}
	norm := FitNormalizer(maps)
	normed := norm.ApplyAll(maps)
	// Pooled per-row mean ≈ 0, std ≈ 1.
	for f := 0; f < 4; f++ {
		var vals []float64
		for _, m := range normed {
			for j := 0; j < 6; j++ {
				vals = append(vals, m.At(f, j))
			}
		}
		if math.Abs(Mean(vals)) > 1e-9 {
			t.Errorf("row %d mean = %g", f, Mean(vals))
		}
		if math.Abs(Std(vals)-1) > 1e-9 {
			t.Errorf("row %d std = %g", f, Std(vals))
		}
	}
}

func TestNormalizerConstantFeature(t *testing.T) {
	m := tensor.Full(7, 2, 3)
	norm := FitNormalizer([]*tensor.Tensor{m})
	out := norm.Apply(m)
	for _, v := range out.Data {
		if v != 0 {
			t.Errorf("constant feature should normalise to 0, got %g", v)
		}
	}
}

func TestNormalizerEmpty(t *testing.T) {
	norm := FitNormalizer(nil)
	m := tensor.Ones(2, 2)
	out := norm.Apply(m)
	if out.At(0, 0) != 1 {
		t.Error("empty normalizer should be identity")
	}
}

func TestSummary(t *testing.T) {
	m1 := tensor.FromSlice([]float64{1, 3, 10, 30}, 2, 2)
	m2 := tensor.FromSlice([]float64{5, 7, 50, 70}, 2, 2)
	s := Summary([]*tensor.Tensor{m1, m2})
	if len(s) != 2 {
		t.Fatalf("summary len %d", len(s))
	}
	if s[0] != 4 || s[1] != 40 {
		t.Errorf("summary = %v, want [4 40]", s)
	}
	if Summary(nil) != nil {
		t.Error("empty summary should be nil")
	}
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	panic("feature name not found: " + want)
}

func BenchmarkFeatureVector(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rec := synthRecording(rng, 8, 1.2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeatureVector(rec.BVP, rec.BVPFs, rec.GSR, rec.GSRFs, rec.SKT, rec.SKTFs)
	}
}
