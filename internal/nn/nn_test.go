package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// tinyConfig is a minimal architecture for fast unit tests (dropout 0 so
// gradient checks are exact).
func tinyConfig() ModelConfig {
	return ModelConfig{
		InH: 24, InW: 5,
		Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3,
		Pool1: 2, Pool2: 2,
		LSTMHidden: 6,
		Dropout:    0,
		Classes:    2,
		Seed:       7,
	}
}

func randInput(rng *rand.Rand, cfg ModelConfig) *tensor.Tensor {
	return tensor.Randn(rng, 1, cfg.InH, cfg.InW)
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum %g", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax ordering %v", p)
	}
	// Stability with huge logits.
	p = Softmax([]float64{1000, 1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("softmax stability %v", p)
	}
}

func TestCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0}, 2)
	loss, grad := CrossEntropy(logits, 0)
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Errorf("loss %g, want ln2", loss)
	}
	if math.Abs(grad.Data[0]+0.5) > 1e-9 || math.Abs(grad.Data[1]-0.5) > 1e-9 {
		t.Errorf("grad %v", grad.Data)
	}
}

func TestModelForwardShape(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(1))
	out := m.Forward(randInput(rng, cfg), false)
	if out.Size() != 2 {
		t.Fatalf("output size %d", out.Size())
	}
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite logits")
		}
	}
}

func TestModelDeterministicInit(t *testing.T) {
	cfg := tinyConfig()
	a, b := NewCNNLSTM(cfg), NewCNNLSTM(cfg)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatal("same seed must give identical weights")
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := NewCNNLSTM(cfg2)
	if c.Params()[0].W.Data[0] == a.Params()[0].W.Data[0] {
		t.Error("different seeds should differ")
	}
}

func TestGradCheckParams(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(2))
	x := randInput(rng, cfg)
	reports, err := GradCheck(m, x, 1, 1e-5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no parameters checked")
	}
	for _, r := range reports {
		if r.Checked == 0 {
			t.Errorf("%s: nothing checked", r.Param)
		}
		if r.MaxRelError > 2e-4 {
			t.Errorf("%s: max relative gradient error %g", r.Param, r.MaxRelError)
		}
	}
}

func TestGradCheckInput(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(3))
	x := randInput(rng, cfg)
	rel, err := GradCheckInput(m, x, 0, 1e-5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 2e-4 {
		t.Errorf("input gradient relative error %g", rel)
	}
}

func TestGradAccumulationAcrossSamples(t *testing.T) {
	// Backward twice without ZeroGrad must accumulate (sum) gradients.
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(4))
	x := randInput(rng, cfg)
	m.ZeroGrad()
	logits := m.Forward(x, true)
	_, g := CrossEntropy(logits, 0)
	m.Backward(g)
	p := m.Params()[0]
	once := p.Grad.Clone()
	logits = m.Forward(x, true)
	_, g = CrossEntropy(logits, 0)
	m.Backward(g)
	for i := range once.Data {
		if math.Abs(p.Grad.Data[i]-2*once.Data[i]) > 1e-9*(1+math.Abs(once.Data[i])) {
			t.Fatalf("gradient did not accumulate at %d: %g vs 2*%g", i, p.Grad.Data[i], once.Data[i])
		}
	}
}

// trainToy builds a linearly separable toy problem over feature maps:
// class 1 maps have a positive mean stripe, class 0 negative.
func trainToy(t *testing.T, cfg ModelConfig, n int, seed int64) ([]Sample, []Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var train, test []Sample
	for i := 0; i < n; i++ {
		y := i % 2
		x := tensor.Randn(rng, 0.5, cfg.InH, cfg.InW)
		shift := -1.2
		if y == 1 {
			shift = 1.2
		}
		for r := 0; r < 8; r++ {
			for c := 0; c < cfg.InW; c++ {
				x.Set(x.At(r, c)+shift, r, c)
			}
		}
		s := Sample{X: x, Y: y}
		if i < n*4/5 {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	return train, test
}

func TestTrainLearnsToyProblem(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, test := trainToy(t, cfg, 100, 5)
	res, err := Train(m, train, TrainConfig{
		Epochs: 30, BatchSize: 8, LR: 3e-3, Optimizer: "adam",
		GradClip: 5, ValFrac: 0.15, Patience: 15, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Errorf("toy accuracy %.3f, want ≥0.9", acc)
	}
}

func TestTrainSGDAlsoLearns(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, test := trainToy(t, cfg, 80, 6)
	_, err := Train(m, train, TrainConfig{
		Epochs: 25, BatchSize: 8, LR: 2e-2, Optimizer: "sgd", Momentum: 0.9,
		GradClip: 5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Errorf("SGD toy accuracy %.3f", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	m := NewCNNLSTM(tinyConfig())
	if _, err := Train(m, nil, TrainConfig{}); err == nil {
		t.Error("want error for empty data")
	}
	if _, err := Train(m, []Sample{{X: tensor.New(24, 5), Y: 0}},
		TrainConfig{Optimizer: "nope"}); err == nil {
		t.Error("want error for unknown optimizer")
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := tinyConfig()
	train, _ := trainToy(t, cfg, 40, 7)
	tc := TrainConfig{Epochs: 4, BatchSize: 8, LR: 1e-3, Seed: 7}
	m1, m2 := NewCNNLSTM(cfg), NewCNNLSTM(cfg)
	if _, err := Train(m1, train, tc); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m2, train, tc); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].W.Data {
			if p1[i].W.Data[j] != p2[i].W.Data[j] {
				t.Fatal("training must be deterministic for a fixed seed")
			}
		}
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	// Random labels: validation accuracy cannot improve steadily.
	rng := rand.New(rand.NewSource(8))
	var data []Sample
	for i := 0; i < 40; i++ {
		data = append(data, Sample{X: randInput(rng, cfg), Y: rng.Intn(2)})
	}
	res, err := Train(m, data, TrainConfig{
		Epochs: 60, BatchSize: 8, LR: 1e-3, ValFrac: 0.25, Patience: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 60 {
		t.Errorf("early stopping never fired (ran %d epochs)", res.Epochs)
	}
}

func TestSnapshotRestore(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	snap := m.Snapshot()
	orig := m.Params()[0].W.Data[0]
	m.Params()[0].W.Data[0] = 42
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.Params()[0].W.Data[0] != orig {
		t.Error("restore failed")
	}
	if err := m.Restore(snap[:1]); err == nil {
		t.Error("want error for wrong snapshot length")
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	c := m.Clone()
	rng := rand.New(rand.NewSource(9))
	x := randInput(rng, cfg)
	a := m.Forward(x, false)
	b := c.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("clone output differs")
		}
	}
	c.Params()[0].W.Data[0] += 1
	a2 := m.Forward(x, false)
	if a2.Data[0] != a.Data[0] {
		t.Error("mutating clone affected original")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(10))
	x := randInput(rng, cfg)
	want := m.Forward(x, false)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Forward(x, false)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("loaded model output differs: %v vs %v", got.Data, want.Data)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint stream"))); err == nil {
		t.Error("want error for garbage")
	}
	var buf bytes.Buffer
	m := NewCNNLSTM(tinyConfig())
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt final weight byte — still loads (no checksum)
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("want error for truncated stream")
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDropout(rng, 0.5)
	x := tensor.Ones(1000)
	outTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range outTrain.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Errorf("dropout zeroed %d of 1000, want ≈500", zeros)
	}
	outEval := d.Forward(x, false)
	for _, v := range outEval.Data {
		if v != 1 {
			t.Fatal("eval mode must be pass-through")
		}
	}
	// Backward mirrors the kept mask.
	d.Forward(x, true)
	g := d.Backward(tensor.Ones(1000))
	for i, k := range d.keep {
		want := 0.0
		if k {
			want = 2
		}
		if g.Data[i] != want {
			t.Fatalf("dropout backward[%d] = %g, want %g", i, g.Data[i], want)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := p.Forward(x, false)
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("pool out %v", out.Data)
		}
	}
	g := p.Backward(tensor.Ones(1, 2, 2))
	if g.At(0, 1, 1) != 1 || g.At(0, 0, 0) != 0 {
		t.Errorf("pool backward wrong: %v", g.Data)
	}
}

func TestSeqReshapeRoundTrip(t *testing.T) {
	s := NewSeqReshape()
	rng := rand.New(rand.NewSource(12))
	x := tensor.Randn(rng, 1, 3, 4, 5)
	out := s.Forward(x, false)
	if out.Dim(0) != 5 || out.Dim(1) != 12 {
		t.Fatalf("seq shape %v", out.Shape)
	}
	// Value mapping: out[w, c*H+h] == x[c, h, w].
	if out.At(2, 1*4+3) != x.At(1, 3, 2) {
		t.Error("seq reshape value mapping wrong")
	}
	back := s.Backward(out)
	for i := range x.Data {
		if back.Data[i] != x.Data[i] {
			t.Fatal("seq reshape backward is not the inverse")
		}
	}
}

func TestModelSummaryAndFLOPs(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	sum := m.Summary([]int{cfg.InH, cfg.InW})
	if sum == "" {
		t.Fatal("empty summary")
	}
	fl := m.TotalFLOPs([]int{cfg.InH, cfg.InW})
	if fl <= 0 {
		t.Errorf("TotalFLOPs = %d", fl)
	}
	if m.NumParams() <= 0 {
		t.Error("NumParams = 0")
	}
}

func TestModelConfigValidate(t *testing.T) {
	bad := tinyConfig()
	bad.InH = 2
	if err := bad.Validate(); err == nil {
		t.Error("want error for tiny input height")
	}
	bad = tinyConfig()
	bad.Conv1 = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero channels")
	}
	if err := tinyConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPaperAndFastConfigsBuild(t *testing.T) {
	for _, cfg := range []ModelConfig{PaperModelConfig(8), FastModelConfig(8)} {
		m := NewCNNLSTM(cfg)
		rng := rand.New(rand.NewSource(13))
		out := m.Forward(tensor.Randn(rng, 1, cfg.InH, cfg.InW), false)
		if out.Size() != 2 {
			t.Errorf("config %+v output size %d", cfg, out.Size())
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := &Param{Name: "p", W: tensor.New(2), Grad: tensor.FromSlice([]float64{3, 4}, 2)}
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm %g", norm)
	}
	if math.Abs(p.Grad.Norm2()-1) > 1e-9 {
		t.Errorf("post-clip norm %g", p.Grad.Norm2())
	}
	// Below threshold: untouched.
	p.Grad = tensor.FromSlice([]float64{0.1, 0}, 2)
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.1 {
		t.Error("clip should not rescale small gradients")
	}
}

func TestAccuracyAndMeanLoss(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	if Accuracy(m, nil) != 0 || MeanLoss(m, nil) != 0 {
		t.Error("empty data should yield 0")
	}
}

func BenchmarkForwardFast(b *testing.B) {
	cfg := FastModelConfig(8)
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(14))
	x := tensor.Randn(rng, 1, cfg.InH, cfg.InW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func BenchmarkTrainStepFast(b *testing.B) {
	cfg := FastModelConfig(8)
	m := NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(15))
	x := tensor.Randn(rng, 1, cfg.InH, cfg.InW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		logits := m.Forward(x, true)
		_, g := CrossEntropy(logits, i%2)
		m.Backward(g)
	}
}
