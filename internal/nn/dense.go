package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer on flat vectors: y = Wx + b with W of
// shape (Out, In).
type Dense struct {
	In, Out int

	w, b *Param
	inX  *tensor.Tensor
}

// NewDense builds a dense layer with He initialisation.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out}
	w := tensor.New(out, in)
	heInit(rng, w, in)
	d.w = &Param{Name: "dense.w", W: w, Grad: tensor.New(out, in)}
	d.b = &Param{Name: "dense.b", W: tensor.New(out), Grad: tensor.New(out)}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int { return []int{d.Out} }

// FLOPs implements Layer.
func (d *Dense) FLOPs(in []int) int64 { return int64(d.In) * int64(d.Out) }

// Forward implements Layer. Inputs of any rank are flattened.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Size() != d.In {
		panic(fmt.Sprintf("nn: Dense input size %d, want %d", x.Size(), d.In))
	}
	flat := x.Reshape(d.In)
	d.inX = flat
	out := tensor.New(d.Out)
	wd := d.w.W.Data
	for o := 0; o < d.Out; o++ {
		s := d.b.W.Data[o]
		row := wd[o*d.In : (o+1)*d.In]
		for i, v := range flat.Data {
			s += row[i] * v
		}
		out.Data[o] = s
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gw := d.w.Grad.Data
	wd := d.w.W.Data
	dx := tensor.New(d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.b.Grad.Data[o] += g
		if g == 0 {
			continue
		}
		row := wd[o*d.In : (o+1)*d.In]
		grow := gw[o*d.In : (o+1)*d.In]
		for i, v := range d.inX.Data {
			grow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU builds a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	r.mask = make([]bool, x.Size())
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(grad.Shape...)
	for i, m := range r.mask {
		if m {
			dx.Data[i] = grad.Data[i]
		}
	}
	return dx
}

// Dropout zeroes activations with probability Rate during training and
// rescales survivors by 1/(1−Rate) (inverted dropout). Inference is a
// pass-through.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	keep []bool
}

// NewDropout builds a dropout layer with its own RNG stream.
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(rng.Int63()))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.Rate) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// FLOPs implements Layer.
func (d *Dropout) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate <= 0 {
		d.keep = nil
		return x
	}
	out := tensor.New(x.Shape...)
	d.keep = make([]bool, x.Size())
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.Rate {
			out.Data[i] = v * scale
			d.keep[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return grad
	}
	dx := tensor.New(grad.Shape...)
	scale := 1 / (1 - d.Rate)
	for i, k := range d.keep {
		if k {
			dx.Data[i] = grad.Data[i] * scale
		}
	}
	return dx
}

// SeqReshape converts a (C, H, W) activation volume into the (W, C·H)
// sequence the LSTM consumes: each of the W time steps (the feature-map
// windows) becomes one input vector of the channel×height features.
type SeqReshape struct {
	inShape []int
}

// NewSeqReshape builds the reshaping layer.
func NewSeqReshape() *SeqReshape { return &SeqReshape{} }

// Name implements Layer.
func (s *SeqReshape) Name() string { return "SeqReshape" }

// Params implements Layer.
func (s *SeqReshape) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *SeqReshape) OutShape(in []int) []int { return []int{in[2], in[0] * in[1]} }

// FLOPs implements Layer.
func (s *SeqReshape) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (s *SeqReshape) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	s.inShape = append([]int(nil), x.Shape...)
	out := tensor.New(w, ch*h)
	for cc := 0; cc < ch; cc++ {
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				out.Data[j*(ch*h)+cc*h+i] = x.Data[(cc*h+i)*w+j]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (s *SeqReshape) Backward(grad *tensor.Tensor) *tensor.Tensor {
	ch, h, w := s.inShape[0], s.inShape[1], s.inShape[2]
	dx := tensor.New(ch, h, w)
	for cc := 0; cc < ch; cc++ {
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				dx.Data[(cc*h+i)*w+j] = grad.Data[j*(ch*h)+cc*h+i]
			}
		}
	}
	return dx
}
