package nn

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens the checkpoint loader: arbitrary bytes must produce an
// error or a consistent model, never a panic or runaway allocation.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	m := NewCNNLSTM(ModelConfig{
		InH: 16, InW: 4, Conv1: 1, Conv2: 2,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 4, Classes: 2, Seed: 1,
	})
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0xFF // inside the config JSON
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded model must be usable.
		if loaded.NumParams() <= 0 {
			t.Fatal("loaded model has no parameters")
		}
		x := newTensor(loaded.Config.InH, loaded.Config.InW)
		out := loaded.Forward(x, false)
		if out.Size() != loaded.Config.Classes {
			t.Fatalf("loaded model produced %d logits, config says %d",
				out.Size(), loaded.Config.Classes)
		}
	})
}
