package nn

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// captureLogger collects training log lines for assertions.
type captureLogger struct {
	lines []string
}

func (l *captureLogger) Logf(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// TestTrainLoggerCapture checks that a pluggable Logger receives one
// progress line per epoch (Verbose no longer required).
func TestTrainLoggerCapture(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, _ := trainToy(t, cfg, 40, 9)
	log := &captureLogger{}
	res, err := Train(m, train, TrainConfig{
		Epochs: 4, BatchSize: 8, LR: 3e-3, ValFrac: 0.2, Seed: 9,
		Logger: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.lines) != res.Epochs {
		t.Fatalf("captured %d lines, want %d (one per epoch)", len(log.lines), res.Epochs)
	}
	for i, line := range log.lines {
		if !strings.Contains(line, fmt.Sprintf("epoch %d:", i)) || !strings.Contains(line, "valacc") {
			t.Errorf("line %d malformed: %q", i, line)
		}
	}
}

// TestTrainOnEpochHook checks the telemetry hook: one call per epoch with
// monotone epoch indices and validation stats present.
func TestTrainOnEpochHook(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, _ := trainToy(t, cfg, 40, 11)
	var stats []EpochStats
	epochsBefore := obs.GetCounter("nn.train.epochs").Value()
	res, err := Train(m, train, TrainConfig{
		Epochs: 3, BatchSize: 8, LR: 3e-3, ValFrac: 0.2, Seed: 11,
		OnEpoch: func(s EpochStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != res.Epochs {
		t.Fatalf("hook ran %d times, want %d", len(stats), res.Epochs)
	}
	for i, s := range stats {
		if s.Epoch != i || s.Epochs != 3 {
			t.Errorf("stats[%d] epoch = %d/%d", i, s.Epoch, s.Epochs)
		}
		if !s.HasVal {
			t.Errorf("stats[%d] missing validation metrics", i)
		}
		if s.LR <= 0 {
			t.Errorf("stats[%d] LR = %v", i, s.LR)
		}
	}
	if got := obs.GetCounter("nn.train.epochs").Value() - epochsBefore; got != int64(res.Epochs) {
		t.Errorf("epoch counter += %d, want %d", got, res.Epochs)
	}
}

// TestTrainSilentByDefault checks that an unset Logger with Verbose=false
// emits nothing (progress must go through the Logger seam, not stdout).
func TestTrainSilentByDefault(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, _ := trainToy(t, cfg, 20, 13)
	// No Logger, no Verbose: nothing should panic and training proceeds;
	// the stdout path is exercised implicitly by Verbose tests elsewhere.
	if _, err := Train(m, train, TrainConfig{Epochs: 1, BatchSize: 8, Seed: 13}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainOnEpochFiresOnEarlyStop checks the hook also sees the epoch
// that triggered early stopping.
func TestTrainOnEpochFiresOnEarlyStop(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, _ := trainToy(t, cfg, 40, 15)
	calls := 0
	res, err := Train(m, train, TrainConfig{
		Epochs: 50, BatchSize: 8, LR: 3e-3, ValFrac: 0.2, Patience: 2, Seed: 15,
		OnEpoch: func(EpochStats) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Epochs {
		t.Fatalf("hook ran %d times over %d epochs", calls, res.Epochs)
	}
}
