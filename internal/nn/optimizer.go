package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its Grad (already averaged over the
	// minibatch by the caller) and leaves Grad untouched.
	Step(params []*Param)
	// SetLR changes the learning rate (used by epoch-level schedules).
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with optional classical momentum and
// decoupled weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: map[*Param]*tensor.Tensor{}}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.LR = lr }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.WeightDecay > 0 {
			p.W.ScaleInPlace(1 - s.LR*s.WeightDecay)
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape...)
				s.velocity[p] = v
			}
			for i := range v.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LR*p.Grad.Data[i]
				p.W.Data[i] += v.Data[i]
			}
		} else {
			p.W.AddScaledInPlace(-s.LR, p.Grad)
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with decoupled weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam builds an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: map[*Param]*tensor.Tensor{}, v: map[*Param]*tensor.Tensor{}}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape...)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Shape...)
		}
		v := a.v[p]
		if a.WeightDecay > 0 {
			p.W.ScaleInPlace(1 - a.LR*a.WeightDecay)
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var ss float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			ss += g * g
		}
	}
	norm := math.Sqrt(ss)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
