package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory over a (T, In) sequence,
// returning the final hidden state h_T as a length-Hidden vector (the
// configuration the paper's Fig. 2 classifier uses before its dense head).
//
// Gate layout within the stacked weight matrices is [input, forget, cell,
// output] (i, f, g, o), each a Hidden-row block. The forget-gate bias is
// initialised to 1, the standard trick that stabilises early training.
type LSTM struct {
	In, Hidden int

	wx, wh, b *Param

	// cached forward state for BPTT
	xs              *tensor.Tensor // (T, In)
	hs, cs          *tensor.Tensor // (T+1, Hidden), index 0 is the zero state
	gi, gf, gg, gog *tensor.Tensor // gate activations per step (T, Hidden)
}

// NewLSTM builds an LSTM with Xavier-initialised weights.
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	l := &LSTM{In: in, Hidden: hidden}
	wx := tensor.New(4*hidden, in)
	xavierInit(rng, wx, in, hidden)
	wh := tensor.New(4*hidden, hidden)
	xavierInit(rng, wh, hidden, hidden)
	b := tensor.New(4 * hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data[i] = 1 // forget gate bias
	}
	l.wx = &Param{Name: "lstm.wx", W: wx, Grad: tensor.New(4*hidden, in)}
	l.wh = &Param{Name: "lstm.wh", W: wh, Grad: tensor.New(4*hidden, hidden)}
	l.b = &Param{Name: "lstm.b", W: b, Grad: tensor.New(4 * hidden)}
	return l
}

// Name implements Layer.
func (l *LSTM) Name() string { return fmt.Sprintf("LSTM(%d→%d)", l.In, l.Hidden) }

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// OutShape implements Layer.
func (l *LSTM) OutShape(in []int) []int { return []int{l.Hidden} }

// FLOPs implements Layer.
func (l *LSTM) FLOPs(in []int) int64 {
	t := int64(in[0])
	return t * 4 * int64(l.Hidden) * int64(l.In+l.Hidden)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer. x must be (T, In); the output is h_T.
func (l *LSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: LSTM input shape %v, want (T,%d)", x.Shape, l.In))
	}
	T := x.Dim(0)
	H := l.Hidden
	l.xs = x
	l.hs = tensor.New(T+1, H)
	l.cs = tensor.New(T+1, H)
	l.gi = tensor.New(T, H)
	l.gf = tensor.New(T, H)
	l.gg = tensor.New(T, H)
	l.gog = tensor.New(T, H)

	wx, wh, b := l.wx.W.Data, l.wh.W.Data, l.b.W.Data
	for t := 0; t < T; t++ {
		xt := x.Data[t*l.In : (t+1)*l.In]
		hPrev := l.hs.Data[t*H : (t+1)*H]
		cPrev := l.cs.Data[t*H : (t+1)*H]
		hCur := l.hs.Data[(t+1)*H : (t+2)*H]
		cCur := l.cs.Data[(t+1)*H : (t+2)*H]
		for u := 0; u < H; u++ {
			// Pre-activations for the four gates of unit u.
			var z [4]float64
			for g := 0; g < 4; g++ {
				row := g*H + u
				s := b[row]
				wxRow := wx[row*l.In : (row+1)*l.In]
				for i, v := range xt {
					s += wxRow[i] * v
				}
				whRow := wh[row*H : (row+1)*H]
				for i, v := range hPrev {
					s += whRow[i] * v
				}
				z[g] = s
			}
			i := sigmoid(z[0])
			f := sigmoid(z[1])
			g := math.Tanh(z[2])
			o := sigmoid(z[3])
			c := f*cPrev[u] + i*g
			cCur[u] = c
			hCur[u] = o * math.Tanh(c)
			l.gi.Data[t*H+u] = i
			l.gf.Data[t*H+u] = f
			l.gg.Data[t*H+u] = g
			l.gog.Data[t*H+u] = o
		}
	}
	out := tensor.New(H)
	copy(out.Data, l.hs.Data[T*H:(T+1)*H])
	return out
}

// Backward implements Layer. grad is dL/dh_T; the return value is dL/dx of
// shape (T, In).
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	T := l.xs.Dim(0)
	H := l.Hidden
	dx := tensor.New(T, l.In)
	dh := make([]float64, H) // dL/dh_t flowing backwards
	dc := make([]float64, H) // dL/dc_t flowing backwards
	copy(dh, grad.Data)

	wx, wh := l.wx.W.Data, l.wh.W.Data
	gwx, gwh, gb := l.wx.Grad.Data, l.wh.Grad.Data, l.b.Grad.Data

	dhPrev := make([]float64, H)
	dcPrev := make([]float64, H)
	for t := T - 1; t >= 0; t-- {
		xt := l.xs.Data[t*l.In : (t+1)*l.In]
		hPrev := l.hs.Data[t*H : (t+1)*H]
		cPrev := l.cs.Data[t*H : (t+1)*H]
		cCur := l.cs.Data[(t+1)*H : (t+2)*H]
		for u := range dhPrev {
			dhPrev[u] = 0
			dcPrev[u] = 0
		}
		for u := 0; u < H; u++ {
			i := l.gi.Data[t*H+u]
			f := l.gf.Data[t*H+u]
			g := l.gg.Data[t*H+u]
			o := l.gog.Data[t*H+u]
			tc := math.Tanh(cCur[u])
			dcTot := dc[u] + dh[u]*o*(1-tc*tc)
			dzi := dcTot * g * i * (1 - i)
			dzf := dcTot * cPrev[u] * f * (1 - f)
			dzg := dcTot * i * (1 - g*g)
			dzo := dh[u] * tc * o * (1 - o)
			dcPrev[u] += dcTot * f

			dz := [4]float64{dzi, dzf, dzg, dzo}
			for gi, dzv := range dz {
				if dzv == 0 {
					continue
				}
				row := gi*H + u
				gb[row] += dzv
				wxRow := wx[row*l.In : (row+1)*l.In]
				gwxRow := gwx[row*l.In : (row+1)*l.In]
				dxRow := dx.Data[t*l.In : (t+1)*l.In]
				for k, v := range xt {
					gwxRow[k] += dzv * v
					dxRow[k] += dzv * wxRow[k]
				}
				whRow := wh[row*H : (row+1)*H]
				gwhRow := gwh[row*H : (row+1)*H]
				for k, v := range hPrev {
					gwhRow[k] += dzv * v
					dhPrev[k] += dzv * whRow[k]
				}
			}
		}
		copy(dh, dhPrev)
		copy(dc, dcPrev)
	}
	return dx
}
