package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// tensorT keeps the layer signatures below readable.
type tensorT = tensor.Tensor

// newTensor forwards to tensor.New for layers defined in this package.
func newTensor(shape ...int) *tensorT { return tensor.New(shape...) }

// ModelConfig describes the Fig. 2 CNN-LSTM architecture: two convolutional
// blocks (conv + ReLU + height-wise max-pool) feeding an LSTM over the
// feature-map windows, a dropout layer and a dense softmax head.
type ModelConfig struct {
	// InH and InW are the feature-map dimensions (F×W; 123×W in the paper).
	InH, InW int
	// Conv1 and Conv2 are the channel counts of the two convolutions.
	Conv1, Conv2 int
	// K1H/K1W and K2H/K2W are the kernel sizes (height × width).
	K1H, K1W int
	K2H, K2W int
	// Pool1 and Pool2 are the height-wise pooling factors.
	Pool1, Pool2 int
	// LSTMHidden is the LSTM state size.
	LSTMHidden int
	// Dropout is the dropout rate before the dense head.
	Dropout float64
	// Classes is the output class count (2: fear / non-fear).
	Classes int
	// Seed initialises the weights deterministically.
	Seed int64
	// Arch selects the architecture (default ArchCNNLSTM, the Fig. 2
	// model); ArchCNNOnly and ArchLSTMOnly are its ablations.
	Arch Arch `json:"arch,omitempty"`
}

// PaperModelConfig is the full-size architecture for F=123 feature maps.
func PaperModelConfig(inW int) ModelConfig {
	return ModelConfig{
		InH: 123, InW: inW,
		Conv1: 8, Conv2: 16,
		K1H: 5, K1W: 3, K2H: 3, K2W: 3,
		Pool1: 3, Pool2: 3,
		LSTMHidden: 48,
		Dropout:    0.3,
		Classes:    2,
		Seed:       1,
	}
}

// FastModelConfig is a reduced-width profile running the identical code
// path; used by tests, benches and the default experiment harness.
func FastModelConfig(inW int) ModelConfig {
	return ModelConfig{
		InH: 123, InW: inW,
		Conv1: 4, Conv2: 8,
		K1H: 5, K1W: 3, K2H: 3, K2W: 3,
		Pool1: 4, Pool2: 3,
		LSTMHidden: 24,
		Dropout:    0.2,
		Classes:    2,
		Seed:       1,
	}
}

func (c *ModelConfig) fillDefaults() {
	if c.Classes == 0 {
		c.Classes = 2
	}
	if c.K1H == 0 {
		c.K1H, c.K1W = 5, 3
	}
	if c.K2H == 0 {
		c.K2H, c.K2W = 3, 3
	}
	if c.Pool1 == 0 {
		c.Pool1 = 3
	}
	if c.Pool2 == 0 {
		c.Pool2 = 3
	}
}

// Validate reports configuration errors before construction.
func (c ModelConfig) Validate() error {
	c.fillDefaults()
	if c.InH < c.K1H || c.InW < 1 {
		return fmt.Errorf("nn: input %dx%d too small for conv1 kernel %dx%d", c.InH, c.InW, c.K1H, c.K1W)
	}
	h := c.InH / c.Pool1
	if h < c.K2H {
		return fmt.Errorf("nn: height %d after pool1 too small for conv2 kernel %d", h, c.K2H)
	}
	if h/c.Pool2 < 1 {
		return fmt.Errorf("nn: height collapses to zero after pool2")
	}
	if c.Conv1 < 1 || c.Conv2 < 1 || c.LSTMHidden < 1 {
		return fmt.Errorf("nn: channel/hidden sizes must be positive")
	}
	return nil
}

// NewCNNLSTM constructs the Fig. 2 architecture. Input tensors are F×W
// feature maps (rank 2); the model reshapes them to (1, F, W) internally
// via the leading ReshapeTo3D layer. Width is preserved through "same"
// padding so the LSTM always sees the full window sequence.
func NewCNNLSTM(cfg ModelConfig) *Model {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var layers []Layer
	layers = append(layers, NewReshapeTo3D())
	// Conv block 1: same-pad both dims, pool height only.
	layers = append(layers,
		NewConv2D(rng, 1, cfg.Conv1, cfg.K1H, cfg.K1W, cfg.K1H/2, cfg.K1W/2),
		NewReLU(),
		NewMaxPool2D(cfg.Pool1, 1),
	)
	// Conv block 2.
	layers = append(layers,
		NewConv2D(rng, cfg.Conv1, cfg.Conv2, cfg.K2H, cfg.K2W, cfg.K2H/2, cfg.K2W/2),
		NewReLU(),
		NewMaxPool2D(cfg.Pool2, 1),
	)
	// LSTM over the W windows.
	h1 := cfg.InH / cfg.Pool1
	h2 := h1 / cfg.Pool2
	layers = append(layers,
		NewSeqReshape(),
		NewLSTM(rng, cfg.Conv2*h2, cfg.LSTMHidden),
		NewDropout(rng, cfg.Dropout),
		NewDense(rng, cfg.LSTMHidden, cfg.Classes),
	)
	return &Model{Layers: layers, Config: cfg}
}

// ReshapeTo3D lifts a rank-2 (H, W) feature map to a single-channel
// (1, H, W) volume.
type ReshapeTo3D struct {
	was2D bool
}

// NewReshapeTo3D builds the lifting layer.
func NewReshapeTo3D() *ReshapeTo3D { return &ReshapeTo3D{} }

// Name implements Layer.
func (r *ReshapeTo3D) Name() string { return "Reshape3D" }

// Params implements Layer.
func (r *ReshapeTo3D) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReshapeTo3D) OutShape(in []int) []int {
	if len(in) == 2 {
		return []int{1, in[0], in[1]}
	}
	return append([]int(nil), in...)
}

// FLOPs implements Layer.
func (r *ReshapeTo3D) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (r *ReshapeTo3D) Forward(x *tensorT, train bool) *tensorT {
	if x.Rank() == 2 {
		r.was2D = true
		return x.Reshape(1, x.Dim(0), x.Dim(1))
	}
	r.was2D = false
	return x
}

// Backward implements Layer.
func (r *ReshapeTo3D) Backward(grad *tensorT) *tensorT {
	if r.was2D {
		return grad.Reshape(grad.Dim(1), grad.Dim(2))
	}
	return grad
}
