package nn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Checkpoint format (little-endian):
//
//	magic    uint32 0x4B43_4C43 ("CLCK")
//	cfgLen   uint32
//	cfg      cfgLen bytes of JSON ModelConfig
//	nParams  uint32
//	for each parameter: nameLen uint32, name bytes, tensor (tensor format)

const ckptMagic uint32 = 0x4B434C43

// ErrBadCheckpoint is returned for malformed checkpoint streams.
var ErrBadCheckpoint = errors.New("nn: bad checkpoint format")

// Save writes the model architecture and weights to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cfg, err := json.Marshal(m.Config)
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(cfg))); err != nil {
		return err
	}
	if _, err := bw.Write(cfg); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		if _, err := p.W.WriteTo(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a checkpoint written by Save and reconstructs the model.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadCheckpoint, magic)
	}
	var cfgLen uint32
	if err := binary.Read(br, binary.LittleEndian, &cfgLen); err != nil {
		return nil, err
	}
	if cfgLen > 1<<20 {
		return nil, fmt.Errorf("%w: implausible config size %d", ErrBadCheckpoint, cfgLen)
	}
	cfgBytes := make([]byte, cfgLen)
	if _, err := io.ReadFull(br, cfgBytes); err != nil {
		return nil, err
	}
	var cfg ModelConfig
	if err := json.Unmarshal(cfgBytes, &cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	m := NewModel(cfg)
	var nParams uint32
	if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
		return nil, err
	}
	params := m.Params()
	if int(nParams) != len(params) {
		return nil, fmt.Errorf("%w: %d parameters, model expects %d", ErrBadCheckpoint, nParams, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 1024 {
			return nil, fmt.Errorf("%w: implausible name length %d", ErrBadCheckpoint, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var t tensor.Tensor
		if _, err := t.ReadFrom(br); err != nil {
			return nil, err
		}
		if !t.SameShape(p.W) {
			return nil, fmt.Errorf("%w: parameter %q shape %v, want %v",
				ErrBadCheckpoint, string(name), t.Shape, p.W.Shape)
		}
		copy(p.W.Data, t.Data)
	}
	return m, nil
}
