// Package nn is a from-scratch neural-network framework sufficient to train
// the paper's CNN-LSTM emotion classifier (Fig. 2): Conv2D, MaxPool2D, an
// LSTM with full back-propagation through time, Dense, ReLU and Dropout
// layers, softmax cross-entropy loss, SGD/momentum and Adam optimizers, a
// training loop with best-checkpoint tracking, finite-difference gradient
// checking, and binary checkpoint serialisation.
//
// The framework processes one sample at a time (the datasets in this
// reproduction are small); minibatch gradients are accumulated across
// samples before each optimizer step.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/tensor"
)

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward caches whatever Backward needs;
// layers are therefore stateful and a single layer instance must not be
// shared across concurrent samples.
type Layer interface {
	// Forward computes the layer output. train enables behaviours such as
	// dropout that differ between training and inference.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients along the way.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (nil if none).
	Params() []*Param
	// Name returns a short identifier used in summaries and checkpoints.
	Name() string
	// OutShape computes the output shape for a given input shape.
	OutShape(in []int) []int
	// FLOPs estimates multiply-accumulate operations for one forward pass
	// with the given input shape (used by the edge cost model).
	FLOPs(in []int) int64
}

// Model is a sequential stack of layers ending in class logits.
type Model struct {
	Layers []Layer
	// Config records how the model was constructed, for checkpointing.
	Config ModelConfig
}

// Forward runs all layers.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all learnable parameters.
func (m *Model) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar weights.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Size()
	}
	return n
}

// Predict returns the argmax class for input x.
func (m *Model) Predict(x *tensor.Tensor) int {
	return m.Forward(x, false).ArgMax()
}

// Probabilities returns the softmax class distribution for input x.
func (m *Model) Probabilities(x *tensor.Tensor) []float64 {
	logits := m.Forward(x, false)
	return Softmax(logits.Data)
}

// ProbabilitiesBatch runs inference for a minibatch of inputs in one pass
// through the model and returns one softmax distribution per input.
//
// Layers cache forward state, so the framework processes samples
// sequentially; what a batch buys a serving layer is amortisation — one
// dispatch (and one model lock acquisition) per minibatch instead of per
// request. A model instance must not run ProbabilitiesBatch concurrently
// with any other forward pass; callers coordinate (see internal/serve's
// batched executor) or Clone.
func (m *Model) ProbabilitiesBatch(xs []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Probabilities(x)
	}
	return out
}

// BatchTiming is the wall-clock split of one batched inference pass, used
// by the serving layer's stage-latency attribution: Quant is the time
// spent in activation-quantisation layers (int8/fp16 deployments insert
// them; zero for fp32 models), Total the whole pass.
type BatchTiming struct {
	Total time.Duration
	Quant time.Duration
}

// ProbabilitiesBatchTimed is ProbabilitiesBatch plus a BatchTiming split.
// The layer classification is computed once per call (Name() allocates),
// and per-layer clocks are only read around quantisation layers, so the
// overhead over ProbabilitiesBatch is two time reads per quant layer per
// sample — noise next to the matmuls. Same concurrency contract as
// ProbabilitiesBatch.
func (m *Model) ProbabilitiesBatchTimed(xs []*tensor.Tensor) ([][]float64, BatchTiming) {
	t0 := time.Now()
	hasQuant := false
	isQuant := make([]bool, len(m.Layers))
	for j, l := range m.Layers {
		if strings.HasPrefix(l.Name(), "ActQuant") {
			isQuant[j] = true
			hasQuant = true
		}
	}
	out := make([][]float64, len(xs))
	var quant time.Duration
	for i, x := range xs {
		if !hasQuant {
			out[i] = m.Probabilities(x)
			continue
		}
		for j, l := range m.Layers {
			if isQuant[j] {
				q0 := time.Now()
				x = l.Forward(x, false)
				quant += time.Since(q0)
			} else {
				x = l.Forward(x, false)
			}
		}
		out[i] = Softmax(x.Data)
	}
	return out, BatchTiming{Total: time.Since(t0), Quant: quant}
}

// CloneWeightsTo copies m's weights into dst, which must have an identical
// architecture.
func (m *Model) CloneWeightsTo(dst *Model) error {
	sp, dp := m.Params(), dst.Params()
	if len(sp) != len(dp) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(sp), len(dp))
	}
	for i := range sp {
		if !sp[i].W.SameShape(dp[i].W) {
			return fmt.Errorf("nn: parameter %q shape mismatch %v vs %v",
				sp[i].Name, sp[i].W.Shape, dp[i].W.Shape)
		}
		copy(dp[i].W.Data, sp[i].W.Data)
	}
	return nil
}

// Clone returns a deep copy of the model (fresh layer state, copied
// weights).
func (m *Model) Clone() *Model {
	c := NewModel(m.Config)
	if err := m.CloneWeightsTo(c); err != nil {
		panic("nn: Clone of self failed: " + err.Error())
	}
	return c
}

// Snapshot captures the current weights as flat copies.
func (m *Model) Snapshot() []*tensor.Tensor {
	ps := m.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.W.Clone()
	}
	return out
}

// Restore loads a Snapshot back into the model.
func (m *Model) Restore(snap []*tensor.Tensor) error {
	ps := m.Params()
	if len(snap) != len(ps) {
		return fmt.Errorf("nn: snapshot has %d tensors, model has %d", len(snap), len(ps))
	}
	for i, p := range ps {
		if !p.W.SameShape(snap[i]) {
			return fmt.Errorf("nn: snapshot tensor %d shape mismatch", i)
		}
		copy(p.W.Data, snap[i].Data)
	}
	return nil
}

// Summary renders a per-layer table of output shapes, parameter counts and
// MAC estimates for the given input shape (the Fig. 2 walkthrough).
func (m *Model) Summary(in []int) string {
	s := fmt.Sprintf("%-16s %-14s %10s %12s\n", "layer", "output", "params", "MACs")
	shape := in
	var totP int
	var totF int64
	for _, l := range m.Layers {
		f := l.FLOPs(shape)
		shape = l.OutShape(shape)
		np := 0
		for _, p := range l.Params() {
			np += p.W.Size()
		}
		totP += np
		totF += f
		s += fmt.Sprintf("%-16s %-14s %10d %12d\n", l.Name(), fmt.Sprint(shape), np, f)
	}
	s += fmt.Sprintf("%-16s %-14s %10d %12d\n", "total", "", totP, totF)
	return s
}

// TotalFLOPs estimates the MACs of one forward pass for input shape in.
func (m *Model) TotalFLOPs(in []int) int64 {
	var tot int64
	shape := in
	for _, l := range m.Layers {
		tot += l.FLOPs(shape)
		shape = l.OutShape(shape)
	}
	return tot
}

// heInit fills t with He-normal initialisation for fanIn inputs.
func heInit(rng *rand.Rand, t *tensor.Tensor, fanIn int) {
	std := 0.0
	if fanIn > 0 {
		std = math.Sqrt(2 / float64(fanIn))
	}
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// xavierInit fills t with Glorot-normal initialisation.
func xavierInit(rng *rand.Rand, t *tensor.Tensor, fanIn, fanOut int) {
	std := 0.0
	if fanIn+fanOut > 0 {
		std = math.Sqrt(2 / float64(fanIn+fanOut))
	}
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}
