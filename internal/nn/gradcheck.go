package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GradCheckReport summarises a finite-difference check of one parameter.
type GradCheckReport struct {
	Param       string
	MaxRelError float64
	Checked     int
}

// GradCheck verifies analytic gradients against central finite differences
// for a model and one labelled sample. It checks every parameter element
// when the parameter has ≤ maxPerParam elements, otherwise a strided
// subset. Dropout must be disabled (rate 0) for the check to be exact.
func GradCheck(m *Model, x *tensor.Tensor, label int, eps float64, maxPerParam int) ([]GradCheckReport, error) {
	if eps <= 0 {
		eps = 1e-5
	}
	if maxPerParam <= 0 {
		maxPerParam = 64
	}
	// Analytic gradients.
	m.ZeroGrad()
	logits := m.Forward(x, true)
	_, grad := CrossEntropy(logits, label)
	m.Backward(grad)

	lossAt := func() float64 {
		l := m.Forward(x, true)
		loss, _ := CrossEntropy(l, label)
		return loss
	}

	var reports []GradCheckReport
	for _, p := range m.Params() {
		stride := 1
		if p.W.Size() > maxPerParam {
			stride = p.W.Size() / maxPerParam
		}
		rep := GradCheckReport{Param: p.Name}
		for i := 0; i < p.W.Size(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.Grad.Data[i]
			denom := math.Max(1e-8, math.Abs(num)+math.Abs(ana))
			rel := math.Abs(num-ana) / denom
			if rel > rep.MaxRelError {
				rep.MaxRelError = rel
			}
			rep.Checked++
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// GradCheckInput verifies the gradient with respect to the *input* tensor,
// exercising every layer's Backward input path.
func GradCheckInput(m *Model, x *tensor.Tensor, label int, eps float64, maxElems int) (float64, error) {
	if eps <= 0 {
		eps = 1e-5
	}
	if maxElems <= 0 {
		maxElems = 64
	}
	m.ZeroGrad()
	logits := m.Forward(x, true)
	_, grad := CrossEntropy(logits, label)
	dx := m.Backward(grad)
	if dx.Size() != x.Size() {
		return 0, fmt.Errorf("nn: input gradient size %d, want %d", dx.Size(), x.Size())
	}
	stride := 1
	if x.Size() > maxElems {
		stride = x.Size() / maxElems
	}
	maxRel := 0.0
	for i := 0; i < x.Size(); i += stride {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(m, x, label)
		x.Data[i] = orig - eps
		lm := lossOf(m, x, label)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := dx.Data[i]
		denom := math.Max(1e-8, math.Abs(num)+math.Abs(ana))
		if rel := math.Abs(num-ana) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel, nil
}

func lossOf(m *Model, x *tensor.Tensor, label int) float64 {
	logits := m.Forward(x, true)
	loss, _ := CrossEntropy(logits, label)
	return loss
}
