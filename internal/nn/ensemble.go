package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Ensemble combines several models by averaging their softmax outputs
// (soft voting), optionally with non-uniform weights. CLEAR uses it for
// low-confidence cold starts: when a new user sits between two clusters,
// blending the two cluster checkpoints beats committing to either.
type Ensemble struct {
	Models  []*Model
	Weights []float64 // normalised at construction; nil = uniform
}

// NewEnsemble builds a soft-voting ensemble. weights may be nil (uniform);
// otherwise it must match models in length, with non-negative entries
// summing to a positive value.
func NewEnsemble(models []*Model, weights []float64) (*Ensemble, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("nn: empty ensemble")
	}
	if weights == nil {
		weights = make([]float64, len(models))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(models) {
		return nil, fmt.Errorf("nn: %d weights for %d models", len(weights), len(models))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("nn: negative ensemble weight %g", w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("nn: ensemble weights sum to %g", sum)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Ensemble{Models: models, Weights: norm}, nil
}

// Probabilities returns the weighted average class distribution.
func (e *Ensemble) Probabilities(x *tensor.Tensor) []float64 {
	var acc []float64
	for i, m := range e.Models {
		p := m.Probabilities(x)
		if acc == nil {
			acc = make([]float64, len(p))
		}
		for c, v := range p {
			acc[c] += e.Weights[i] * v
		}
	}
	return acc
}

// Predict returns the argmax class of the averaged distribution.
func (e *Ensemble) Predict(x *tensor.Tensor) int {
	p := e.Probabilities(x)
	best, bi := p[0], 0
	for c, v := range p[1:] {
		if v > best {
			best, bi = v, c+1
		}
	}
	return bi
}

// EnsembleAccuracy evaluates the ensemble on labelled samples.
func EnsembleAccuracy(e *Ensemble, data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, s := range data {
		if e.Predict(s.X) == s.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}
