package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Sample is one training example: a feature map and its class label.
type Sample struct {
	X *tensor.Tensor
	Y int
}

// Logger receives training progress lines. Library consumers plug their
// own implementation via TrainConfig.Logger to capture logs; when unset,
// output goes to stdout if Verbose is true and nowhere otherwise.
type Logger interface {
	Logf(format string, args ...any)
}

// stdoutLogger preserves the historical Verbose behaviour.
type stdoutLogger struct{}

func (stdoutLogger) Logf(format string, args ...any) { fmt.Printf(format, args...) }

// EpochStats is the per-epoch training telemetry passed to
// TrainConfig.OnEpoch and published as gauges in the obs registry.
type EpochStats struct {
	// Epoch is the 0-based epoch index; Epochs is the configured total.
	Epoch, Epochs int
	// Loss is the mean training loss of this epoch.
	Loss float64
	// LR is the learning rate the optimizer used this epoch.
	LR float64
	// ValAcc and ValLoss are valid only when HasVal is true.
	ValAcc, ValLoss float64
	HasVal          bool
}

// Training telemetry published to the process-global registry; the last
// written value wins, so these read as "most recent epoch anywhere".
var (
	mTrainEpochs = obs.GetCounter("nn.train.epochs")
	mTrainRuns   = obs.GetCounter("nn.train.runs")
	gTrainLoss   = obs.GetGauge("nn.train.loss")
	gTrainValAcc = obs.GetGauge("nn.train.val_acc")
	gTrainLR     = obs.GetGauge("nn.train.lr")
)

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// LR is the base learning rate.
	LR float64
	// Optimizer selects "adam" (default) or "sgd".
	Optimizer string
	// Momentum applies to SGD only.
	Momentum float64
	// WeightDecay is decoupled L2 regularisation.
	WeightDecay float64
	// GradClip bounds the global gradient norm per step (0 disables).
	GradClip float64
	// ValFrac holds out this fraction of the data for checkpoint selection
	// (0 disables validation; the final weights are then the result).
	ValFrac float64
	// Patience stops training after this many epochs without validation
	// improvement (0 disables early stopping).
	Patience int
	// FreezeExcept, when non-empty, freezes every parameter whose Name is
	// not listed: their gradients are cleared before each optimizer step.
	// Used for head-only fine-tuning (e.g. []string{"dense.w", "dense.b"}),
	// which recalibrates the classifier to a new user without disturbing
	// the learned features.
	FreezeExcept []string
	// LRSchedule selects the per-epoch learning-rate schedule:
	// "constant" (default), "cosine" (anneal to ~0 over Epochs), or
	// "step" (halve every StepEvery epochs).
	LRSchedule string
	// StepEvery is the period of the "step" schedule (default 10).
	StepEvery int
	// Seed drives shuffling and the validation split.
	Seed int64
	// Silent suppresses progress output (the default; set Verbose instead).
	Verbose bool
	// Logger, when non-nil, receives all progress lines (and implies
	// Verbose). Excluded from checkpoints (not serialisable).
	Logger Logger `json:"-"`
	// OnEpoch, when non-nil, runs after every epoch with that epoch's
	// telemetry (loss, LR, validation metrics). It fires after EpochEnd so
	// it observes any weight post-processing (e.g. edge re-quantisation).
	// Excluded from checkpoints (not serialisable).
	OnEpoch func(EpochStats) `json:"-"`
	// EpochEnd, when non-nil, runs after every epoch's optimizer steps and
	// before validation. The edge simulator uses it to re-quantise weights
	// so on-device fine-tuning stays representable in device precision.
	// Excluded from checkpoints (not serialisable).
	EpochEnd func(epoch int, m *Model) `json:"-"`
}

// DefaultTrainConfig returns the settings used by the experiment harness's
// fast profile.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:    30,
		BatchSize: 16,
		LR:        3e-3,
		Optimizer: "adam",
		GradClip:  5,
		ValFrac:   0.15,
		Patience:  6,
		Seed:      1,
	}
}

func (c *TrainConfig) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
}

// TrainResult reports what happened during training.
type TrainResult struct {
	Epochs        int     // epochs actually run
	BestValAcc    float64 // best validation accuracy (if ValFrac > 0)
	FinalLoss     float64 // mean training loss of the last epoch
	UsedEarlyStop bool
}

// Train fits the model on data. When cfg.ValFrac > 0 a validation split is
// held out, the best-validation-accuracy weights are kept (the paper's
// "best-performing training checkpoints ... are saved"), and early stopping
// applies after cfg.Patience stale epochs.
func Train(m *Model, data []Sample, cfg TrainConfig) (*TrainResult, error) {
	cfg.fillDefaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("nn: no training data")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Validation split (stratified by label to survive tiny datasets).
	train, val := stratifiedSplit(data, cfg.ValFrac, rng)
	if len(train) == 0 {
		train, val = data, nil
	}

	var opt Optimizer
	switch cfg.Optimizer {
	case "adam":
		opt = NewAdam(cfg.LR, cfg.WeightDecay)
	case "sgd":
		opt = NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", cfg.Optimizer)
	}

	schedule, err := lrSchedule(cfg)
	if err != nil {
		return nil, err
	}
	trainable := map[string]bool{}
	for _, name := range cfg.FreezeExcept {
		trainable[name] = true
	}

	logf := func(string, ...any) {}
	if cfg.Logger != nil {
		logf = cfg.Logger.Logf
	} else if cfg.Verbose {
		logf = stdoutLogger{}.Logf
	}
	sp := obs.StartSpan("nn.train")
	defer sp.End()
	mTrainRuns.Inc()

	res := &TrainResult{}
	var bestSnap []*tensor.Tensor
	bestValLoss := math.Inf(1)
	stale := 0
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	params := m.Params()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * schedule(epoch)
		opt.SetLR(lr)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			m.ZeroGrad()
			for _, di := range idx[start:end] {
				s := train[di]
				logits := m.Forward(s.X, true)
				loss, grad := CrossEntropy(logits, s.Y)
				epochLoss += loss
				m.Backward(grad)
			}
			// Average gradients over the batch.
			inv := 1 / float64(end-start)
			for _, p := range params {
				p.Grad.ScaleInPlace(inv)
			}
			if len(trainable) > 0 {
				for _, p := range params {
					if !trainable[p.Name] {
						p.Grad.Zero()
					}
				}
			}
			if cfg.GradClip > 0 {
				ClipGradNorm(params, cfg.GradClip)
			}
			opt.Step(params)
		}
		res.Epochs = epoch + 1
		res.FinalLoss = epochLoss / float64(len(idx))
		if cfg.EpochEnd != nil {
			cfg.EpochEnd(epoch, m)
		}

		stats := EpochStats{Epoch: epoch, Epochs: cfg.Epochs, Loss: res.FinalLoss, LR: lr}
		mTrainEpochs.Inc()
		gTrainLoss.Set(res.FinalLoss)
		gTrainLR.Set(lr)

		earlyStop := false
		if len(val) > 0 {
			acc := Accuracy(m, val)
			valLoss := MeanLoss(m, val)
			stats.HasVal, stats.ValAcc, stats.ValLoss = true, acc, valLoss
			gTrainValAcc.Set(acc)
			logf("epoch %d: loss %.4f valacc %.3f valloss %.4f\n", epoch, res.FinalLoss, acc, valLoss)
			// Ties on accuracy are broken by lower validation loss so a
			// saturated early epoch does not freeze the checkpoint.
			if acc > res.BestValAcc || (acc == res.BestValAcc && valLoss < bestValLoss) {
				res.BestValAcc = acc
				bestValLoss = valLoss
				bestSnap = m.Snapshot()
				stale = 0
			} else {
				stale++
				if cfg.Patience > 0 && stale >= cfg.Patience {
					res.UsedEarlyStop = true
					earlyStop = true
				}
			}
		} else {
			logf("epoch %d: loss %.4f\n", epoch, res.FinalLoss)
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(stats)
		}
		if earlyStop {
			break
		}
	}
	if bestSnap != nil {
		if err := m.Restore(bestSnap); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// stratifiedSplit holds out frac of each class for validation.
func stratifiedSplit(data []Sample, frac float64, rng *rand.Rand) (train, val []Sample) {
	if frac <= 0 || len(data) < 4 {
		return data, nil
	}
	byClass := map[int][]int{}
	for i, s := range data {
		byClass[s.Y] = append(byClass[s.Y], i)
	}
	valSet := map[int]bool{}
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		n := int(frac * float64(len(idxs)))
		if n < 1 && len(idxs) > 1 {
			n = 1
		}
		for _, i := range idxs[:n] {
			valSet[i] = true
		}
	}
	for i, s := range data {
		if valSet[i] {
			val = append(val, s)
		} else {
			train = append(train, s)
		}
	}
	return train, val
}

// Accuracy returns the fraction of samples the model classifies correctly.
func Accuracy(m *Model, data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, s := range data {
		if m.Predict(s.X) == s.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

// MeanLoss returns the mean cross-entropy of the model on data.
func MeanLoss(m *Model, data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range data {
		logits := m.Forward(s.X, false)
		loss, _ := CrossEntropy(logits, s.Y)
		total += loss
	}
	return total / float64(len(data))
}

// lrSchedule resolves the configured schedule into an epoch → multiplier
// function.
func lrSchedule(cfg TrainConfig) (func(epoch int) float64, error) {
	switch cfg.LRSchedule {
	case "", "constant":
		return func(int) float64 { return 1 }, nil
	case "cosine":
		total := cfg.Epochs
		return func(epoch int) float64 {
			if total <= 1 {
				return 1
			}
			return 0.5 * (1 + math.Cos(math.Pi*float64(epoch)/float64(total-1)))
		}, nil
	case "step":
		every := cfg.StepEvery
		if every <= 0 {
			every = 10
		}
		return func(epoch int) float64 {
			return math.Pow(0.5, float64(epoch/every))
		}, nil
	default:
		return nil, fmt.Errorf("nn: unknown LR schedule %q", cfg.LRSchedule)
	}
}
