package nn

import (
	"fmt"
	"math/rand"
)

// Arch selects the classifier architecture. The paper's Fig. 2 model is
// ArchCNNLSTM; the other two are the ablations that motivate it ("the
// CNN-LSTM architecture can effectively integrate feature maps' global and
// sequential information"): a pure CNN that sees the same map but no
// recurrence, and a pure LSTM that consumes raw feature columns with no
// convolutional feature mixing.
type Arch string

// Architecture names. The zero value resolves to ArchCNNLSTM.
const (
	ArchCNNLSTM  Arch = "cnn-lstm"
	ArchCNNOnly  Arch = "cnn"
	ArchLSTMOnly Arch = "lstm"
	ArchCNNGRU   Arch = "cnn-gru"
)

// NewModel constructs the architecture selected by cfg.Arch. NewCNNLSTM
// remains the Fig. 2 entry point; checkpoints reconstruct through here.
func NewModel(cfg ModelConfig) *Model {
	switch cfg.Arch {
	case "", ArchCNNLSTM:
		return NewCNNLSTM(cfg)
	case ArchCNNOnly:
		return newCNNOnly(cfg)
	case ArchLSTMOnly:
		return newLSTMOnly(cfg)
	case ArchCNNGRU:
		return newCNNGRU(cfg)
	default:
		panic(fmt.Sprintf("nn: unknown architecture %q", cfg.Arch))
	}
}

// newCNNOnly keeps the two convolutional blocks of Fig. 2 but replaces the
// LSTM with global average pooling over the window axis and a dense head:
// same receptive field, no sequential modelling.
func newCNNOnly(cfg ModelConfig) *Model {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h1 := cfg.InH / cfg.Pool1
	h2 := h1 / cfg.Pool2
	layers := []Layer{
		NewReshapeTo3D(),
		NewConv2D(rng, 1, cfg.Conv1, cfg.K1H, cfg.K1W, cfg.K1H/2, cfg.K1W/2),
		NewReLU(),
		NewMaxPool2D(cfg.Pool1, 1),
		NewConv2D(rng, cfg.Conv1, cfg.Conv2, cfg.K2H, cfg.K2W, cfg.K2H/2, cfg.K2W/2),
		NewReLU(),
		NewMaxPool2D(cfg.Pool2, 1),
		NewGlobalAvgPoolW(),
		NewDropout(rng, cfg.Dropout),
		NewDense(rng, cfg.Conv2*h2, cfg.Classes),
	}
	return &Model{Layers: layers, Config: cfg}
}

// newLSTMOnly feeds the raw feature-map columns (one 123-vector per
// window) straight into the LSTM: sequential modelling with no learned
// spatial features.
func newLSTMOnly(cfg ModelConfig) *Model {
	cfg.fillDefaults()
	if cfg.InH < 1 || cfg.InW < 1 || cfg.LSTMHidden < 1 {
		panic(fmt.Sprintf("nn: invalid LSTM-only config %dx%d hidden %d", cfg.InH, cfg.InW, cfg.LSTMHidden))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	layers := []Layer{
		NewReshapeTo3D(),
		NewSeqReshape(), // (1, F, W) → (W, F)
		NewLSTM(rng, cfg.InH, cfg.LSTMHidden),
		NewDropout(rng, cfg.Dropout),
		NewDense(rng, cfg.LSTMHidden, cfg.Classes),
	}
	return &Model{Layers: layers, Config: cfg}
}

// newCNNGRU is the Fig. 2 stack with the LSTM swapped for a GRU of the
// same hidden width — the recurrent-cell ablation.
func newCNNGRU(cfg ModelConfig) *Model {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h1 := cfg.InH / cfg.Pool1
	h2 := h1 / cfg.Pool2
	layers := []Layer{
		NewReshapeTo3D(),
		NewConv2D(rng, 1, cfg.Conv1, cfg.K1H, cfg.K1W, cfg.K1H/2, cfg.K1W/2),
		NewReLU(),
		NewMaxPool2D(cfg.Pool1, 1),
		NewConv2D(rng, cfg.Conv1, cfg.Conv2, cfg.K2H, cfg.K2W, cfg.K2H/2, cfg.K2W/2),
		NewReLU(),
		NewMaxPool2D(cfg.Pool2, 1),
		NewSeqReshape(),
		NewGRU(rng, cfg.Conv2*h2, cfg.LSTMHidden),
		NewDropout(rng, cfg.Dropout),
		NewDense(rng, cfg.LSTMHidden, cfg.Classes),
	}
	return &Model{Layers: layers, Config: cfg}
}

// GlobalAvgPoolW averages a (C, H, W) volume over its window axis W,
// producing a (C, H, 1)-shaped summary flattened to length C·H.
type GlobalAvgPoolW struct {
	inShape []int
}

// NewGlobalAvgPoolW builds the pooling layer.
func NewGlobalAvgPoolW() *GlobalAvgPoolW { return &GlobalAvgPoolW{} }

// Name implements Layer.
func (g *GlobalAvgPoolW) Name() string { return "GlobalAvgPoolW" }

// Params implements Layer.
func (g *GlobalAvgPoolW) Params() []*Param { return nil }

// OutShape implements Layer.
func (g *GlobalAvgPoolW) OutShape(in []int) []int { return []int{in[0] * in[1]} }

// FLOPs implements Layer.
func (g *GlobalAvgPoolW) FLOPs(in []int) int64 {
	return int64(in[0]) * int64(in[1]) * int64(in[2])
}

// Forward implements Layer.
func (g *GlobalAvgPoolW) Forward(x *tensorT, train bool) *tensorT {
	ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	g.inShape = append([]int(nil), x.Shape...)
	out := newTensor(ch * h)
	inv := 1 / float64(w)
	for cc := 0; cc < ch; cc++ {
		for i := 0; i < h; i++ {
			s := 0.0
			for j := 0; j < w; j++ {
				s += x.Data[(cc*h+i)*w+j]
			}
			out.Data[cc*h+i] = s * inv
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPoolW) Backward(grad *tensorT) *tensorT {
	ch, h, w := g.inShape[0], g.inShape[1], g.inShape[2]
	dx := newTensor(ch, h, w)
	inv := 1 / float64(w)
	for cc := 0; cc < ch; cc++ {
		for i := 0; i < h; i++ {
			gv := grad.Data[cc*h+i] * inv
			for j := 0; j < w; j++ {
				dx.Data[(cc*h+i)*w+j] = gv
			}
		}
	}
	return dx
}
