package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestEnsembleErrors(t *testing.T) {
	if _, err := NewEnsemble(nil, nil); err == nil {
		t.Error("want error for empty ensemble")
	}
	m := NewCNNLSTM(tinyConfig())
	if _, err := NewEnsemble([]*Model{m}, []float64{1, 2}); err == nil {
		t.Error("want error for weight count mismatch")
	}
	if _, err := NewEnsemble([]*Model{m}, []float64{-1}); err == nil {
		t.Error("want error for negative weight")
	}
	if _, err := NewEnsemble([]*Model{m}, []float64{0}); err == nil {
		t.Error("want error for zero-sum weights")
	}
}

func TestEnsembleSingleModelIdentity(t *testing.T) {
	m := NewCNNLSTM(tinyConfig())
	e, err := NewEnsemble([]*Model{m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	x := tensor.Randn(rng, 1, 24, 5)
	pm := m.Probabilities(x)
	pe := e.Probabilities(x)
	for i := range pm {
		if math.Abs(pm[i]-pe[i]) > 1e-12 {
			t.Fatal("single-model ensemble must match the model")
		}
	}
	if e.Predict(x) != m.Predict(x) {
		t.Fatal("prediction mismatch")
	}
}

func TestEnsembleWeightsNormalised(t *testing.T) {
	cfg := tinyConfig()
	m1 := NewCNNLSTM(cfg)
	cfg2 := cfg
	cfg2.Seed = 99
	m2 := NewCNNLSTM(cfg2)
	e, err := NewEnsemble([]*Model{m1, m2}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Weights[0]-0.25) > 1e-12 || math.Abs(e.Weights[1]-0.75) > 1e-12 {
		t.Errorf("weights %v", e.Weights)
	}
	rng := rand.New(rand.NewSource(62))
	x := tensor.Randn(rng, 1, 24, 5)
	p := e.Probabilities(x)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ensemble probabilities sum to %g", sum)
	}
}

func TestEnsembleDominantWeightFollowsModel(t *testing.T) {
	cfg := tinyConfig()
	m1 := NewCNNLSTM(cfg)
	cfg2 := cfg
	cfg2.Seed = 77
	m2 := NewCNNLSTM(cfg2)
	rng := rand.New(rand.NewSource(63))
	// Find an input where the two disagree.
	var x *tensor.Tensor
	for i := 0; i < 200; i++ {
		cand := tensor.Randn(rng, 1, 24, 5)
		if m1.Predict(cand) != m2.Predict(cand) {
			x = cand
			break
		}
	}
	if x == nil {
		t.Skip("no disagreement point found")
	}
	heavy1, _ := NewEnsemble([]*Model{m1, m2}, []float64{1000, 1})
	heavy2, _ := NewEnsemble([]*Model{m1, m2}, []float64{1, 1000})
	if heavy1.Predict(x) != m1.Predict(x) {
		t.Error("weight-dominated ensemble should follow model 1")
	}
	if heavy2.Predict(x) != m2.Predict(x) {
		t.Error("weight-dominated ensemble should follow model 2")
	}
}

func TestEnsembleAccuracy(t *testing.T) {
	m := NewCNNLSTM(tinyConfig())
	e, _ := NewEnsemble([]*Model{m}, nil)
	if EnsembleAccuracy(e, nil) != 0 {
		t.Error("empty data accuracy should be 0")
	}
	rng := rand.New(rand.NewSource(64))
	data := []Sample{{X: tensor.Randn(rng, 1, 24, 5), Y: 0}}
	acc := EnsembleAccuracy(e, data)
	if acc != 0 && acc != 1 {
		t.Errorf("accuracy %g", acc)
	}
}
