package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// GRU is a single-layer gated recurrent unit over a (T, In) sequence,
// returning the final hidden state. It is the lighter alternative to the
// LSTM in the Fig. 2 head (ArchCNNGRU in the architecture study): three
// gates instead of four and no cell state, so ~25 % fewer recurrent
// parameters at the same hidden width.
//
// Gate layout within the stacked weights is [reset, update, candidate]
// (r, z, n), each a Hidden-row block:
//
//	r_t = σ(Wr x_t + Ur h_{t-1} + br)
//	z_t = σ(Wz x_t + Uz h_{t-1} + bz)
//	n_t = tanh(Wn x_t + r_t ⊙ (Un h_{t-1}) + bn)
//	h_t = (1−z_t) ⊙ n_t + z_t ⊙ h_{t-1}
type GRU struct {
	In, Hidden int

	wx, wh, b *Param

	// cached forward state for BPTT
	xs         *tensor.Tensor // (T, In)
	hs         *tensor.Tensor // (T+1, Hidden)
	gr, gz, gn *tensor.Tensor // gate activations per step (T, Hidden)
	uh         *tensor.Tensor // Un·h_{t-1} pre-product per step (T, Hidden)
}

// NewGRU builds a GRU with Xavier-initialised weights and a positive
// update-gate bias (biasing towards carrying state early in training).
func NewGRU(rng *rand.Rand, in, hidden int) *GRU {
	g := &GRU{In: in, Hidden: hidden}
	wx := tensor.New(3*hidden, in)
	xavierInit(rng, wx, in, hidden)
	wh := tensor.New(3*hidden, hidden)
	xavierInit(rng, wh, hidden, hidden)
	b := tensor.New(3 * hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data[i] = 1 // update gate bias
	}
	g.wx = &Param{Name: "gru.wx", W: wx, Grad: tensor.New(3*hidden, in)}
	g.wh = &Param{Name: "gru.wh", W: wh, Grad: tensor.New(3*hidden, hidden)}
	g.b = &Param{Name: "gru.b", W: b, Grad: tensor.New(3 * hidden)}
	return g
}

// Name implements Layer.
func (g *GRU) Name() string { return fmt.Sprintf("GRU(%d→%d)", g.In, g.Hidden) }

// Params implements Layer.
func (g *GRU) Params() []*Param { return []*Param{g.wx, g.wh, g.b} }

// OutShape implements Layer.
func (g *GRU) OutShape(in []int) []int { return []int{g.Hidden} }

// FLOPs implements Layer.
func (g *GRU) FLOPs(in []int) int64 {
	t := int64(in[0])
	return t * 3 * int64(g.Hidden) * int64(g.In+g.Hidden)
}

// Forward implements Layer. x must be (T, In); the output is h_T.
func (g *GRU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != g.In {
		panic(fmt.Sprintf("nn: GRU input shape %v, want (T,%d)", x.Shape, g.In))
	}
	T := x.Dim(0)
	H := g.Hidden
	g.xs = x
	g.hs = tensor.New(T+1, H)
	g.gr = tensor.New(T, H)
	g.gz = tensor.New(T, H)
	g.gn = tensor.New(T, H)
	g.uh = tensor.New(T, H)

	wx, wh, b := g.wx.W.Data, g.wh.W.Data, g.b.W.Data
	for t := 0; t < T; t++ {
		xt := x.Data[t*g.In : (t+1)*g.In]
		hPrev := g.hs.Data[t*H : (t+1)*H]
		hCur := g.hs.Data[(t+1)*H : (t+2)*H]
		for u := 0; u < H; u++ {
			pre := func(gi int, withH bool) float64 {
				row := gi*H + u
				s := b[row]
				wxRow := wx[row*g.In : (row+1)*g.In]
				for i, v := range xt {
					s += wxRow[i] * v
				}
				if withH {
					whRow := wh[row*H : (row+1)*H]
					for i, v := range hPrev {
						s += whRow[i] * v
					}
				}
				return s
			}
			r := sigmoid(pre(0, true))
			z := sigmoid(pre(1, true))
			// Candidate uses r ⊙ (Un h_{t-1}): compute Un h separately.
			row := 2*H + u
			uhv := 0.0
			whRow := wh[row*H : (row+1)*H]
			for i, v := range hPrev {
				uhv += whRow[i] * v
			}
			nPre := b[row]
			wxRow := wx[row*g.In : (row+1)*g.In]
			for i, v := range xt {
				nPre += wxRow[i] * v
			}
			n := math.Tanh(nPre + r*uhv)
			hCur[u] = (1-z)*n + z*hPrev[u]
			g.gr.Data[t*H+u] = r
			g.gz.Data[t*H+u] = z
			g.gn.Data[t*H+u] = n
			g.uh.Data[t*H+u] = uhv
		}
	}
	out := tensor.New(H)
	copy(out.Data, g.hs.Data[T*H:(T+1)*H])
	return out
}

// Backward implements Layer. grad is dL/dh_T; returns dL/dx of shape
// (T, In).
func (g *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	T := g.xs.Dim(0)
	H := g.Hidden
	dx := tensor.New(T, g.In)
	dh := make([]float64, H)
	copy(dh, grad.Data)

	wx, wh := g.wx.W.Data, g.wh.W.Data
	gwx, gwh, gb := g.wx.Grad.Data, g.wh.Grad.Data, g.b.Grad.Data

	dhPrev := make([]float64, H)
	for t := T - 1; t >= 0; t-- {
		xt := g.xs.Data[t*g.In : (t+1)*g.In]
		hPrev := g.hs.Data[t*H : (t+1)*H]
		for u := range dhPrev {
			dhPrev[u] = 0
		}
		for u := 0; u < H; u++ {
			r := g.gr.Data[t*H+u]
			z := g.gz.Data[t*H+u]
			n := g.gn.Data[t*H+u]
			uhv := g.uh.Data[t*H+u]
			dhu := dh[u]
			if dhu == 0 {
				continue
			}
			// h = (1−z)n + z h_prev
			dz := dhu * (hPrev[u] - n) * z * (1 - z)
			dn := dhu * (1 - z) * (1 - n*n) // gradient at the tanh pre-activation
			dhPrev[u] += dhu * z
			// n pre-activation = Wn x + bn + r·uh
			dr := dn * uhv * r * (1 - r)
			duh := dn * r

			// Accumulate for the three gate rows.
			type gateGrad struct {
				row  int
				dpre float64
			}
			gates := [3]gateGrad{
				{0*H + u, dr},
				{1*H + u, dz},
				{2*H + u, dn},
			}
			for gi, gg := range gates {
				if gg.dpre == 0 {
					continue
				}
				gb[gg.row] += gg.dpre
				wxRow := wx[gg.row*g.In : (gg.row+1)*g.In]
				gwxRow := gwx[gg.row*g.In : (gg.row+1)*g.In]
				dxRow := dx.Data[t*g.In : (t+1)*g.In]
				for k, v := range xt {
					gwxRow[k] += gg.dpre * v
					dxRow[k] += gg.dpre * wxRow[k]
				}
				if gi < 2 {
					// r and z see Ur/Uz · h_prev directly.
					whRow := wh[gg.row*H : (gg.row+1)*H]
					gwhRow := gwh[gg.row*H : (gg.row+1)*H]
					for k, v := range hPrev {
						gwhRow[k] += gg.dpre * v
						dhPrev[k] += gg.dpre * whRow[k]
					}
				}
			}
			// Candidate recurrent path: uh = Un · h_prev, scaled by r.
			row := 2*H + u
			whRow := wh[row*H : (row+1)*H]
			gwhRow := gwh[row*H : (row+1)*H]
			for k, v := range hPrev {
				gwhRow[k] += duh * v
				dhPrev[k] += duh * whRow[k]
			}
		}
		copy(dh, dhPrev)
	}
	return dx
}
