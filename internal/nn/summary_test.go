package nn

import (
	"strings"
	"testing"
)

func TestSummaryAllArchitectures(t *testing.T) {
	for _, arch := range []Arch{ArchCNNLSTM, ArchCNNGRU, ArchCNNOnly, ArchLSTMOnly} {
		cfg := archConfig(arch)
		m := NewModel(cfg)
		s := m.Summary([]int{cfg.InH, cfg.InW})
		if !strings.Contains(s, "total") {
			t.Errorf("%s: summary missing total row", arch)
		}
		lines := strings.Count(s, "\n")
		if lines < len(m.Layers)+1 {
			t.Errorf("%s: summary has %d lines for %d layers", arch, lines, len(m.Layers))
		}
		if m.TotalFLOPs([]int{cfg.InH, cfg.InW}) <= 0 {
			t.Errorf("%s: non-positive FLOPs", arch)
		}
	}
}

func TestOutShapeChainsMatchForward(t *testing.T) {
	// Every layer's OutShape must agree with the tensor its Forward
	// actually produces.
	for _, arch := range []Arch{ArchCNNLSTM, ArchCNNGRU, ArchCNNOnly, ArchLSTMOnly} {
		cfg := archConfig(arch)
		m := NewModel(cfg)
		x := newTensor(cfg.InH, cfg.InW)
		shape := []int{cfg.InH, cfg.InW}
		for li, l := range m.Layers {
			want := l.OutShape(shape)
			x = l.Forward(x, false)
			if len(x.Shape) != len(want) {
				t.Fatalf("%s layer %d (%s): rank %v vs declared %v", arch, li, l.Name(), x.Shape, want)
			}
			for d := range want {
				if x.Shape[d] != want[d] {
					t.Fatalf("%s layer %d (%s): shape %v vs declared %v", arch, li, l.Name(), x.Shape, want)
				}
			}
			shape = want
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	m := NewCNNLSTM(tinyConfig())
	x := newTensor(24, 5)
	for i := range x.Data {
		x.Data[i] = float64(i%7) - 3
	}
	p := m.Probabilities(x)
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("probabilities sum to %g", sum)
	}
}
