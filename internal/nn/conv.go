package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over (C, H, W) inputs with stride 1 and
// explicit zero padding. Weights have shape (OutC, InC, KH, KW).
type Conv2D struct {
	InC, OutC  int
	KH, KW     int
	PadH, PadW int

	w, b *Param

	// cached forward state
	inPadded *tensor.Tensor
	inShape  []int
}

// NewConv2D builds a convolution with He initialisation.
func NewConv2D(rng *rand.Rand, inC, outC, kh, kw, padH, padW int) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, KH: kh, KW: kw, PadH: padH, PadW: padW}
	w := tensor.New(outC, inC, kh, kw)
	heInit(rng, w, inC*kh*kw)
	c.w = &Param{Name: "conv.w", W: w, Grad: tensor.New(outC, inC, kh, kw)}
	c.b = &Param{Name: "conv.b", W: tensor.New(outC), Grad: tensor.New(outC)}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d,%dx%d)", c.InC, c.OutC, c.KH, c.KW)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	h := in[1] + 2*c.PadH - c.KH + 1
	w := in[2] + 2*c.PadW - c.KW + 1
	return []int{c.OutC, h, w}
}

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(in []int) int64 {
	out := c.OutShape(in)
	return int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(c.InC*c.KH*c.KW)
}

func (c *Conv2D) pad(x *tensor.Tensor) *tensor.Tensor {
	if c.PadH == 0 && c.PadW == 0 {
		return x
	}
	ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(ch, h+2*c.PadH, w+2*c.PadW)
	for cc := 0; cc < ch; cc++ {
		for i := 0; i < h; i++ {
			srcOff := (cc*h + i) * w
			dstOff := (cc*(h+2*c.PadH)+i+c.PadH)*(w+2*c.PadW) + c.PadW
			copy(out.Data[dstOff:dstOff+w], x.Data[srcOff:srcOff+w])
		}
	}
	return out
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (%d,H,W)", x.Shape, c.InC))
	}
	c.inShape = append([]int(nil), x.Shape...)
	xp := c.pad(x)
	c.inPadded = xp
	ph, pw := xp.Dim(1), xp.Dim(2)
	oh := ph - c.KH + 1
	ow := pw - c.KW + 1
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: Conv2D kernel %dx%d too large for padded input %dx%d", c.KH, c.KW, ph, pw))
	}
	out := tensor.New(c.OutC, oh, ow)
	wd := c.w.W.Data
	xd := xp.Data
	od := out.Data
	bd := c.b.W.Data
	for oc := 0; oc < c.OutC; oc++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				sum := bd[oc]
				for ic := 0; ic < c.InC; ic++ {
					for ki := 0; ki < c.KH; ki++ {
						xrow := (ic*ph+i+ki)*pw + j
						wrow := ((oc*c.InC+ic)*c.KH + ki) * c.KW
						for kj := 0; kj < c.KW; kj++ {
							sum += xd[xrow+kj] * wd[wrow+kj]
						}
					}
				}
				od[(oc*oh+i)*ow+j] = sum
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	xp := c.inPadded
	ph, pw := xp.Dim(1), xp.Dim(2)
	oh, ow := grad.Dim(1), grad.Dim(2)
	gd := grad.Data
	xd := xp.Data
	wd := c.w.W.Data
	gw := c.w.Grad.Data
	gb := c.b.Grad.Data
	dxp := tensor.New(c.InC, ph, pw)
	dxd := dxp.Data
	for oc := 0; oc < c.OutC; oc++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				g := gd[(oc*oh+i)*ow+j]
				if g == 0 {
					continue
				}
				gb[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ki := 0; ki < c.KH; ki++ {
						xrow := (ic*ph+i+ki)*pw + j
						wrow := ((oc*c.InC+ic)*c.KH + ki) * c.KW
						for kj := 0; kj < c.KW; kj++ {
							gw[wrow+kj] += g * xd[xrow+kj]
							dxd[xrow+kj] += g * wd[wrow+kj]
						}
					}
				}
			}
		}
	}
	// Strip padding.
	if c.PadH == 0 && c.PadW == 0 {
		return dxp
	}
	h, w := c.inShape[1], c.inShape[2]
	dx := tensor.New(c.InC, h, w)
	for ic := 0; ic < c.InC; ic++ {
		for i := 0; i < h; i++ {
			srcOff := (ic*ph+i+c.PadH)*pw + c.PadW
			dstOff := (ic*h + i) * w
			copy(dx.Data[dstOff:dstOff+w], dxd[srcOff:srcOff+w])
		}
	}
	return dx
}

// MaxPool2D pools (C, H, W) inputs with a KH×KW window and matching stride.
// Ragged edges are truncated (floor division), as in most frameworks'
// default.
type MaxPool2D struct {
	KH, KW int

	argmax  []int
	inShape []int
}

// NewMaxPool2D builds a max-pooling layer.
func NewMaxPool2D(kh, kw int) *MaxPool2D { return &MaxPool2D{KH: kh, KW: kw} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%dx%d)", p.KH, p.KW) }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / p.KH, in[2] / p.KW}
}

// FLOPs implements Layer.
func (p *MaxPool2D) FLOPs(in []int) int64 {
	out := p.OutShape(in)
	return int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(p.KH*p.KW)
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/p.KH, w/p.KW
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: MaxPool2D %dx%d too large for input %v", p.KH, p.KW, x.Shape))
	}
	p.inShape = append([]int(nil), x.Shape...)
	out := tensor.New(ch, oh, ow)
	p.argmax = make([]int, out.Size())
	for cc := 0; cc < ch; cc++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				best := -1
				bestV := 0.0
				for ki := 0; ki < p.KH; ki++ {
					for kj := 0; kj < p.KW; kj++ {
						idx := (cc*h+i*p.KH+ki)*w + j*p.KW + kj
						if best == -1 || x.Data[idx] > bestV {
							best, bestV = idx, x.Data[idx]
						}
					}
				}
				oidx := (cc*oh+i)*ow + j
				out.Data[oidx] = bestV
				p.argmax[oidx] = best
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	for oidx, src := range p.argmax {
		dx.Data[src] += grad.Data[oidx]
	}
	return dx
}
