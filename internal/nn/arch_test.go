package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func archConfig(arch Arch) ModelConfig {
	cfg := tinyConfig()
	cfg.Arch = arch
	return cfg
}

func TestNewModelDispatch(t *testing.T) {
	for _, arch := range []Arch{"", ArchCNNLSTM, ArchCNNOnly, ArchLSTMOnly} {
		m := NewModel(archConfig(arch))
		rng := rand.New(rand.NewSource(1))
		out := m.Forward(tensor.Randn(rng, 1, 24, 5), false)
		if out.Size() != 2 {
			t.Errorf("arch %q output size %d", arch, out.Size())
		}
	}
}

func TestNewModelUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := archConfig("transformer")
	NewModel(cfg)
}

func TestArchGradChecks(t *testing.T) {
	for _, arch := range []Arch{ArchCNNOnly, ArchLSTMOnly} {
		m := NewModel(archConfig(arch))
		rng := rand.New(rand.NewSource(2))
		x := tensor.Randn(rng, 1, 24, 5)
		reports, err := GradCheck(m, x, 1, 1e-5, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if r.MaxRelError > 2e-4 {
				t.Errorf("%s %s: gradient error %g", arch, r.Param, r.MaxRelError)
			}
		}
		rel, err := GradCheckInput(m, x, 0, 1e-5, 32)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 2e-4 {
			t.Errorf("%s input gradient error %g", arch, rel)
		}
	}
}

func TestArchCheckpointRoundTrip(t *testing.T) {
	for _, arch := range []Arch{ArchCNNOnly, ArchLSTMOnly} {
		m := NewModel(archConfig(arch))
		rng := rand.New(rand.NewSource(3))
		x := tensor.Randn(rng, 1, 24, 5)
		want := m.Forward(x, false)
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m2.Config.Arch != arch {
			t.Errorf("arch lost in checkpoint: %q", m2.Config.Arch)
		}
		got := m2.Forward(x, false)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s output changed after reload", arch)
			}
		}
	}
}

func TestArchCloneRespectsArch(t *testing.T) {
	m := NewModel(archConfig(ArchCNNOnly))
	c := m.Clone()
	if c.Config.Arch != ArchCNNOnly {
		t.Fatal("clone lost arch")
	}
	if len(c.Layers) != len(m.Layers) {
		t.Fatal("clone layer count differs")
	}
}

func TestArchLearnToy(t *testing.T) {
	// Both ablation architectures must still learn the separable toy task
	// (they are weaker, not broken).
	for _, arch := range []Arch{ArchCNNOnly, ArchLSTMOnly} {
		cfg := archConfig(arch)
		m := NewModel(cfg)
		train, test := trainToy(t, cfg, 80, 9)
		if _, err := Train(m, train, TrainConfig{
			Epochs: 25, BatchSize: 8, LR: 3e-3, GradClip: 5, Seed: 9,
		}); err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(m, test); acc < 0.8 {
			t.Errorf("%s toy accuracy %.2f", arch, acc)
		}
	}
}

func TestGlobalAvgPoolW(t *testing.T) {
	g := NewGlobalAvgPoolW()
	x := tensor.FromSlice([]float64{
		1, 2, 3, // c0 h0
		4, 5, 6, // c0 h1
		10, 20, 30, // c1 h0
		40, 50, 60, // c1 h1
	}, 2, 2, 3)
	out := g.Forward(x, false)
	want := []float64{2, 5, 20, 50}
	for i, v := range want {
		if math.Abs(out.Data[i]-v) > 1e-12 {
			t.Fatalf("avg pool out %v, want %v", out.Data, want)
		}
	}
	if got := g.OutShape([]int{2, 2, 3}); got[0] != 4 {
		t.Errorf("OutShape %v", got)
	}
	// Backward spreads gradient evenly.
	back := g.Backward(tensor.FromSlice([]float64{3, 0, 0, 0}, 4))
	if back.At(0, 0, 0) != 1 || back.At(0, 0, 2) != 1 || back.At(0, 1, 0) != 0 {
		t.Errorf("avg pool backward %v", back.Data)
	}
}

// referenceLSTMForward is a deliberately simple, obviously-correct LSTM
// used to cross-check the optimised layer's forward pass.
func referenceLSTMForward(l *LSTM, x *tensor.Tensor) []float64 {
	T, H, In := x.Dim(0), l.Hidden, l.In
	wx, wh, b := l.wx.W, l.wh.W, l.b.W
	h := make([]float64, H)
	c := make([]float64, H)
	for t := 0; t < T; t++ {
		newH := make([]float64, H)
		newC := make([]float64, H)
		for u := 0; u < H; u++ {
			gate := func(g int) float64 {
				row := g*H + u
				s := b.Data[row]
				for i := 0; i < In; i++ {
					s += wx.At(row, i) * x.At(t, i)
				}
				for i := 0; i < H; i++ {
					s += wh.At(row, i) * h[i]
				}
				return s
			}
			i := 1 / (1 + math.Exp(-gate(0)))
			f := 1 / (1 + math.Exp(-gate(1)))
			g := math.Tanh(gate(2))
			o := 1 / (1 + math.Exp(-gate(3)))
			newC[u] = f*c[u] + i*g
			newH[u] = o * math.Tanh(newC[u])
		}
		h, c = newH, newC
	}
	return h
}

func TestLSTMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLSTM(rng, 7, 5)
	x := tensor.Randn(rng, 1, 6, 7)
	got := l.Forward(x, false)
	want := referenceLSTMForward(l, x)
	for i := range want {
		if math.Abs(got.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("LSTM[%d] = %g, reference %g", i, got.Data[i], want[i])
		}
	}
}

// referenceConvForward cross-checks Conv2D against naive direct convolution
// including padding.
func referenceConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	inC, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh := h + 2*c.PadH - c.KH + 1
	ow := w + 2*c.PadW - c.KW + 1
	out := tensor.New(c.OutC, oh, ow)
	at := func(ic, i, j int) float64 {
		i -= c.PadH
		j -= c.PadW
		if i < 0 || i >= h || j < 0 || j >= w {
			return 0
		}
		return x.At(ic, i, j)
	}
	for oc := 0; oc < c.OutC; oc++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				s := c.b.W.Data[oc]
				for ic := 0; ic < inC; ic++ {
					for ki := 0; ki < c.KH; ki++ {
						for kj := 0; kj < c.KW; kj++ {
							s += at(ic, i+ki, j+kj) * c.w.W.At(oc, ic, ki, kj)
						}
					}
				}
				out.Set(s, oc, i, j)
			}
		}
	}
	return out
}

func TestConv2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, pad := range [][2]int{{0, 0}, {1, 1}, {2, 1}} {
		c := NewConv2D(rng, 2, 3, 3, 3, pad[0], pad[1])
		x := tensor.Randn(rng, 1, 2, 7, 6)
		got := c.Forward(x, false)
		want := referenceConvForward(c, x)
		if !got.SameShape(want) {
			t.Fatalf("pad %v: shape %v vs %v", pad, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("pad %v: conv[%d] = %g, reference %g", pad, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGRUGradCheck(t *testing.T) {
	m := NewModel(archConfig(ArchCNNGRU))
	rng := rand.New(rand.NewSource(51))
	x := tensor.Randn(rng, 1, 24, 5)
	reports, err := GradCheck(m, x, 1, 1e-5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.MaxRelError > 2e-4 {
			t.Errorf("gru %s: gradient error %g", r.Param, r.MaxRelError)
		}
	}
	rel, err := GradCheckInput(m, x, 0, 1e-5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 2e-4 {
		t.Errorf("gru input gradient error %g", rel)
	}
}

func TestGRUFewerParamsThanLSTM(t *testing.T) {
	lstm := NewModel(archConfig(ArchCNNLSTM))
	gru := NewModel(archConfig(ArchCNNGRU))
	if gru.NumParams() >= lstm.NumParams() {
		t.Errorf("GRU params %d should be below LSTM %d", gru.NumParams(), lstm.NumParams())
	}
}

func TestGRULearnsToy(t *testing.T) {
	cfg := archConfig(ArchCNNGRU)
	m := NewModel(cfg)
	train, test := trainToy(t, cfg, 80, 52)
	if _, err := Train(m, train, TrainConfig{
		Epochs: 25, BatchSize: 8, LR: 3e-3, GradClip: 5, Seed: 52,
	}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Errorf("GRU toy accuracy %.2f", acc)
	}
}

// referenceGRUForward cross-checks the GRU forward pass.
func referenceGRUForward(g *GRU, x *tensor.Tensor) []float64 {
	T, H, In := x.Dim(0), g.Hidden, g.In
	h := make([]float64, H)
	for t := 0; t < T; t++ {
		newH := make([]float64, H)
		for u := 0; u < H; u++ {
			pre := func(gi int) (withX, withH float64) {
				row := gi*H + u
				sx := g.b.W.Data[row]
				for i := 0; i < In; i++ {
					sx += g.wx.W.At(row, i) * x.At(t, i)
				}
				sh := 0.0
				for i := 0; i < H; i++ {
					sh += g.wh.W.At(row, i) * h[i]
				}
				return sx, sh
			}
			rx, rh := pre(0)
			zx, zh := pre(1)
			nx, nh := pre(2)
			r := 1 / (1 + math.Exp(-(rx + rh)))
			z := 1 / (1 + math.Exp(-(zx + zh)))
			n := math.Tanh(nx + r*nh)
			newH[u] = (1-z)*n + z*h[u]
		}
		h = newH
	}
	return h
}

func TestGRUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := NewGRU(rng, 7, 5)
	x := tensor.Randn(rng, 1, 6, 7)
	got := g.Forward(x, false)
	want := referenceGRUForward(g, x)
	for i := range want {
		if math.Abs(got.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("GRU[%d] = %g, reference %g", i, got.Data[i], want[i])
		}
	}
}
