package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// quadratic bowl: L(w) = ½‖w − target‖²; gradient = w − target.
func bowlGrad(p *Param, target []float64) {
	for i := range p.W.Data {
		p.Grad.Data[i] = p.W.Data[i] - target[i]
	}
}

func TestSGDConvergesOnBowl(t *testing.T) {
	p := &Param{Name: "w", W: tensor.FromSlice([]float64{5, -3, 2}, 3), Grad: tensor.New(3)}
	target := []float64{1, 2, 3}
	opt := NewSGD(0.1, 0, 0)
	for i := 0; i < 200; i++ {
		bowlGrad(p, target)
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.W.Data[i]-want) > 1e-6 {
			t.Fatalf("SGD w[%d] = %g, want %g", i, p.W.Data[i], want)
		}
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	// Ill-conditioned bowl: L = ½(25 w0² + w1²). Momentum should reach the
	// optimum faster than plain SGD at the same stable LR.
	grad := func(p *Param) {
		p.Grad.Data[0] = 25 * p.W.Data[0]
		p.Grad.Data[1] = p.W.Data[1]
	}
	run := func(momentum float64, steps int) float64 {
		p := &Param{Name: "w", W: tensor.FromSlice([]float64{1, 1}, 2), Grad: tensor.New(2)}
		opt := NewSGD(0.03, momentum, 0)
		for i := 0; i < steps; i++ {
			grad(p)
			opt.Step([]*Param{p})
		}
		return math.Abs(p.W.Data[0]) + math.Abs(p.W.Data[1])
	}
	plain := run(0, 120)
	heavy := run(0.9, 120)
	if heavy >= plain {
		t.Errorf("momentum residual %g should beat plain %g", heavy, plain)
	}
}

func TestAdamConvergesOnBowl(t *testing.T) {
	p := &Param{Name: "w", W: tensor.FromSlice([]float64{50, -30}, 2), Grad: tensor.New(2)}
	target := []float64{-1, 4}
	opt := NewAdam(0.5, 0)
	for i := 0; i < 500; i++ {
		bowlGrad(p, target)
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.W.Data[i]-want) > 1e-3 {
			t.Fatalf("Adam w[%d] = %g, want %g", i, p.W.Data[i], want)
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// Zero gradient + weight decay: weights must decay geometrically.
	p := &Param{Name: "w", W: tensor.FromSlice([]float64{1}, 1), Grad: tensor.New(1)}
	opt := NewSGD(0.1, 0, 0.5)
	for i := 0; i < 10; i++ {
		p.Grad.Zero()
		opt.Step([]*Param{p})
	}
	want := math.Pow(1-0.1*0.5, 10)
	if math.Abs(p.W.Data[0]-want) > 1e-12 {
		t.Errorf("decayed weight %g, want %g", p.W.Data[0], want)
	}
	// Adam with decoupled decay behaves the same for zero gradients
	// (modulo the eps term keeping the update ~0).
	p2 := &Param{Name: "w", W: tensor.FromSlice([]float64{1}, 1), Grad: tensor.New(1)}
	opt2 := NewAdam(0.001, 0.5)
	for i := 0; i < 10; i++ {
		p2.Grad.Zero()
		opt2.Step([]*Param{p2})
	}
	if p2.W.Data[0] >= 1 {
		t.Error("Adam weight decay had no effect")
	}
}

func TestAdamStateIsPerParam(t *testing.T) {
	// Two parameters with different gradient scales must keep separate
	// moment estimates.
	a := &Param{Name: "a", W: tensor.FromSlice([]float64{0}, 1), Grad: tensor.New(1)}
	b := &Param{Name: "b", W: tensor.FromSlice([]float64{0}, 1), Grad: tensor.New(1)}
	opt := NewAdam(0.1, 0)
	for i := 0; i < 50; i++ {
		a.Grad.Data[0] = 1
		b.Grad.Data[0] = -1
		opt.Step([]*Param{a, b})
	}
	if !(a.W.Data[0] < 0 && b.W.Data[0] > 0) {
		t.Errorf("directions wrong: a=%g b=%g", a.W.Data[0], b.W.Data[0])
	}
	if math.Abs(a.W.Data[0]+b.W.Data[0]) > 1e-9 {
		t.Errorf("symmetric problem should give symmetric trajectories: %g vs %g",
			a.W.Data[0], b.W.Data[0])
	}
}
