package nn

import (
	"math"
	"testing"
)

func TestLRScheduleConstant(t *testing.T) {
	f, err := lrSchedule(TrainConfig{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		if f(e) != 1 {
			t.Fatalf("constant schedule at %d = %g", e, f(e))
		}
	}
}

func TestLRScheduleCosine(t *testing.T) {
	f, err := lrSchedule(TrainConfig{Epochs: 11, LRSchedule: "cosine"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(0)-1) > 1e-12 {
		t.Errorf("cosine start %g", f(0))
	}
	if math.Abs(f(10)) > 1e-12 {
		t.Errorf("cosine end %g", f(10))
	}
	if math.Abs(f(5)-0.5) > 1e-12 {
		t.Errorf("cosine middle %g", f(5))
	}
	// Monotone decreasing.
	prev := 2.0
	for e := 0; e < 11; e++ {
		if f(e) > prev+1e-12 {
			t.Fatalf("cosine increased at %d", e)
		}
		prev = f(e)
	}
	// Single-epoch degenerate case.
	f1, _ := lrSchedule(TrainConfig{Epochs: 1, LRSchedule: "cosine"})
	if f1(0) != 1 {
		t.Error("single-epoch cosine should be 1")
	}
}

func TestLRScheduleStep(t *testing.T) {
	f, err := lrSchedule(TrainConfig{Epochs: 30, LRSchedule: "step", StepEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if f(0) != 1 || f(9) != 1 {
		t.Error("step before first boundary should be 1")
	}
	if f(10) != 0.5 || f(19) != 0.5 {
		t.Error("step after first boundary should be 0.5")
	}
	if f(20) != 0.25 {
		t.Error("step after second boundary should be 0.25")
	}
	// Default period.
	fd, _ := lrSchedule(TrainConfig{Epochs: 30, LRSchedule: "step"})
	if fd(10) != 0.5 {
		t.Error("default StepEvery should be 10")
	}
}

func TestLRScheduleUnknown(t *testing.T) {
	if _, err := lrSchedule(TrainConfig{LRSchedule: "linear-warmup"}); err == nil {
		t.Fatal("want error for unknown schedule")
	}
	m := NewCNNLSTM(tinyConfig())
	if _, err := Train(m, []Sample{{X: newTensor(24, 5), Y: 0}},
		TrainConfig{Epochs: 1, LRSchedule: "nope"}); err == nil {
		t.Fatal("Train must surface bad schedule")
	}
}

func TestTrainWithCosineStillLearns(t *testing.T) {
	cfg := tinyConfig()
	m := NewCNNLSTM(cfg)
	train, test := trainToy(t, cfg, 80, 41)
	if _, err := Train(m, train, TrainConfig{
		Epochs: 25, BatchSize: 8, LR: 5e-3, LRSchedule: "cosine",
		GradClip: 5, Seed: 41,
	}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Errorf("cosine-schedule accuracy %.2f", acc)
	}
}

func TestOptimizerSetLR(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	s.SetLR(0.05)
	if s.LR != 0.05 {
		t.Error("SGD SetLR failed")
	}
	a := NewAdam(0.1, 0)
	a.SetLR(0.02)
	if a.LR != 0.02 {
		t.Error("Adam SetLR failed")
	}
}
