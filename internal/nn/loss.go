package nn

import (
	"math"

	"repro/internal/tensor"
)

// Softmax returns the softmax distribution of logits, computed stably.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	if len(logits) == 0 {
		return out
	}
	m := logits[0]
	for _, v := range logits[1:] {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropy computes softmax cross-entropy loss for one sample and the
// gradient with respect to the logits: probs − onehot(label).
func CrossEntropy(logits *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor) {
	probs := Softmax(logits.Data)
	const eps = 1e-12
	loss = -math.Log(probs[label] + eps)
	grad = tensor.New(logits.Shape...)
	copy(grad.Data, probs)
	grad.Data[label] -= 1
	return loss, grad
}
