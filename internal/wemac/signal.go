package wemac

import (
	"math"
	"math/rand"

	"repro/internal/features"
)

// Sample rates for the three synthetic channels. The real WEMAC wearable
// samples BVP at 200 Hz; 64 Hz preserves all morphology the extractor uses
// while keeping generation cheap.
const (
	BVPFs = 64.0
	GSRFs = 8.0
	SKTFs = 4.0
)

// trialCondition is a physiological operating point.
type trialCondition struct {
	hrBPM    float64 // mean heart rate
	hrvStd   float64 // IBI jitter (s)
	pulseAmp float64
	gsrTonic float64
	scrRate  float64 // per minute
	sktLevel float64
	sktDrift float64 // °C/min
	noise    float64
}

// lerp interpolates between two operating points.
func lerp(a, b trialCondition, w float64) trialCondition {
	mix := func(x, y float64) float64 { return x + w*(y-x) }
	return trialCondition{
		hrBPM:    mix(a.hrBPM, b.hrBPM),
		hrvStd:   mix(a.hrvStd, b.hrvStd),
		pulseAmp: mix(a.pulseAmp, b.pulseAmp),
		gsrTonic: mix(a.gsrTonic, b.gsrTonic),
		scrRate:  mix(a.scrRate, b.scrRate),
		sktLevel: mix(a.sktLevel, b.sktLevel),
		sktDrift: mix(a.sktDrift, b.sktDrift),
		noise:    mix(a.noise, b.noise),
	}
}

// trialDynamics describes one trial's time course: the baseline operating
// point, the (possibly identical) full-response operating point, and the
// response envelope rising from 0 to 1 after stimulus onset. Emotion
// induction is not instantaneous — the physiological response ramps up over
// several seconds — and this within-trial dynamic is what makes feature
// maps informative *relative to the user's own baseline*, the
// baseline-free signal that transfers across response archetypes.
type trialDynamics struct {
	base, peak trialCondition
	onsetSec   float64 // envelope is 0 before this
	tauSec     float64 // exponential rise time constant
}

// at returns the operating point at time t.
func (d *trialDynamics) at(t float64) trialCondition {
	if t <= d.onsetSec {
		return d.base
	}
	w := 1 - math.Exp(-(t-d.onsetSec)/d.tauSec)
	return lerp(d.base, d.peak, w)
}

// resolveDynamics combines archetype baseline, user idiosyncrasy, per-trial
// non-stationarity and the (possibly zero) fear response into a trial time
// course.
func resolveDynamics(rng *rand.Rand, a Archetype, u UserParams, j trialJitter, fear bool, efficacy float64) trialDynamics {
	base := trialCondition{
		hrBPM:    clamp(a.RestHR+u.DHR+j.dHR, 40, 180),
		hrvStd:   a.HRVStd,
		pulseAmp: a.PulseAmp * j.ampScale,
		gsrTonic: math.Max(0.2, a.GSRTonic+u.DGSR+j.dGSR),
		scrRate:  a.SCRRate * j.scrScale,
		sktLevel: a.SKTLevel + u.DSKT + j.dSKT,
		sktDrift: a.SKTDrift,
		noise:    a.RespNoise * u.NoiseGain,
	}
	d := trialDynamics{
		base:     base,
		peak:     base,
		onsetSec: 4 + 6*rng.Float64(),
		tauSec:   5 + 7*rng.Float64(),
	}
	if fear {
		g := u.ResponseGain * efficacy
		cardio := g * u.ChannelBias
		eda := g / u.ChannelBias
		p := base
		p.hrBPM = clamp(p.hrBPM+a.FearDHR*cardio, 40, 180)
		p.hrvStd = math.Max(0.004, p.hrvStd+a.FearDHRV*cardio)
		p.pulseAmp = math.Max(0.15, p.pulseAmp+(a.FearDAmp+u.IdioDAmp)*cardio)
		p.gsrTonic = math.Max(0.2, p.gsrTonic+(a.FearDGSR+u.IdioDGSR)*eda)
		p.scrRate *= 1 + (a.FearSCRMult-1)*eda
		p.sktDrift += a.FearDSKT * g
		d.peak = p
	}
	return d
}

// synthBVP renders a BVP pulse train under time-varying dynamics:
// Gaussian-bump systolic peaks with a smaller dicrotic bump, beat-to-beat
// interval jitter, baseline wander and measurement noise.
func synthBVP(rng *rand.Rand, d *trialDynamics, durSec float64) []float64 {
	n := int(durSec * BVPFs)
	x := make([]float64, n)
	// Generate beat onset times with the instantaneous heart rate.
	t := 0.0
	type beat struct{ at, amp float64 }
	var beats []beat
	for t < durSec+1.5 {
		c := d.at(t)
		beats = append(beats, beat{at: t, amp: c.pulseAmp * (1 + 0.05*rng.NormFloat64())})
		ibi := 60/c.hrBPM + rng.NormFloat64()*c.hrvStd
		if ibi < 0.3 {
			ibi = 0.3
		}
		t += ibi
	}
	// Render each beat: systolic peak + dicrotic notch bump.
	for _, b := range beats {
		lo := int((b.at - 0.1) * BVPFs)
		hi := int((b.at + 0.65) * BVPFs)
		for i := lo; i <= hi; i++ {
			if i < 0 || i >= n {
				continue
			}
			dt := float64(i)/BVPFs - b.at
			x[i] += b.amp * math.Exp(-dt*dt/(2*0.05*0.05))
			dd := dt - 0.28
			x[i] += 0.35 * b.amp * math.Exp(-dd*dd/(2*0.07*0.07))
		}
	}
	// Respiratory baseline wander (~0.25 Hz) and noise.
	respF := 0.2 + 0.1*rng.Float64()
	phase := rng.Float64() * 2 * math.Pi
	noise := d.base.noise
	for i := range x {
		ti := float64(i) / BVPFs
		x[i] += 0.08 * math.Sin(2*math.Pi*respF*ti+phase)
		x[i] += noise * rng.NormFloat64()
	}
	return x
}

// synthGSR renders skin conductance under time-varying dynamics: a tonic
// level tracking the trial time course plus SCR events with fast rise and
// slow exponential decay.
func synthGSR(rng *rand.Rand, d *trialDynamics, durSec float64) []float64 {
	n := int(durSec * GSRFs)
	x := make([]float64, n)
	walk := 0.0
	for i := range x {
		ti := float64(i) / GSRFs
		walk += 0.002 * rng.NormFloat64() // tonic random walk
		x[i] = d.at(ti).gsrTonic + walk
	}
	// SCR events as an inhomogeneous Poisson process.
	for i := 0; i < n; i++ {
		ti := float64(i) / GSRFs
		perSample := d.at(ti).scrRate / 60 / GSRFs
		if rng.Float64() >= perSample {
			continue
		}
		amp := 0.25 + 0.35*rng.Float64()
		rise := 1.0 + 0.5*rng.Float64()  // seconds
		decay := 3.0 + 2.0*rng.Float64() // seconds
		for j := i; j < n && j < i+int(20*GSRFs); j++ {
			dt := float64(j-i) / GSRFs
			x[j] += amp * (1 - math.Exp(-dt/rise)) * math.Exp(-dt/decay)
		}
	}
	noise := d.base.noise
	for i := range x {
		x[i] += 0.01 * noise / 0.05 * rng.NormFloat64()
		if x[i] < 0.05 {
			x[i] = 0.05
		}
	}
	return x
}

// synthSKT renders skin temperature under time-varying dynamics: baseline +
// integrated drift + very slow vasomotor oscillation + sensor noise.
func synthSKT(rng *rand.Rand, d *trialDynamics, durSec float64) []float64 {
	n := int(durSec * SKTFs)
	x := make([]float64, n)
	vf := 0.01 + 0.01*rng.Float64() // vasomotor frequency, Hz
	phase := rng.Float64() * 2 * math.Pi
	noise := d.base.noise
	level := d.base.sktLevel
	for i := range x {
		ti := float64(i) / SKTFs
		level += d.at(ti).sktDrift / 60 / SKTFs
		x[i] = level +
			0.05*math.Sin(2*math.Pi*vf*ti+phase) +
			0.01*noise/0.05*rng.NormFloat64()
	}
	return x
}

// synthRecording renders all three channels for one trial.
func synthRecording(rng *rand.Rand, d *trialDynamics, durSec float64) *features.Recording {
	return &features.Recording{
		BVP: synthBVP(rng, d, durSec), BVPFs: BVPFs,
		GSR: synthGSR(rng, d, durSec), GSRFs: GSRFs,
		SKT: synthSKT(rng, d, durSec), SKTFs: SKTFs,
	}
}
