// Package wemac synthesises a WEMAC-like multi-modal affective dataset.
//
// The real WEMAC corpus (Miranda et al., the paper's reference [21]) is
// access-restricted, so this package implements the substitution described
// in DESIGN.md: a parametric generator that reproduces the *statistical
// structure* the CLEAR paper's claims rest on —
//
//  1. volunteers fall into a small number of physiological response
//     archetypes (the paper finds K=4 clusters of sizes 17/13/7/7);
//  2. baseline physiology separates the archetypes even without labels,
//     which is what makes unsupervised cold-start assignment possible;
//  3. the fear → signal mapping is consistent within an archetype but
//     conflicts across archetypes (direction and modality differ), which is
//     why population-wide models underperform cluster models;
//  4. every volunteer adds an idiosyncratic offset and gain on top of the
//     archetype response, which is the headroom fine-tuning exploits;
//  5. emotion induction sometimes fails (weak-response trials), which caps
//     attainable accuracy below 100 %.
package wemac

import "math/rand"

// Archetype describes one latent physiological response group.
type Archetype struct {
	// Name is a short descriptive label.
	Name string
	// Baseline (non-fear) physiology.
	RestHR    float64 // beats per minute
	HRVStd    float64 // inter-beat interval jitter, seconds
	GSRTonic  float64 // skin conductance level, µS
	SCRRate   float64 // spontaneous skin conductance responses per minute
	SKTLevel  float64 // skin temperature, °C
	SKTDrift  float64 // °C per minute under neutral conditions
	PulseAmp  float64 // BVP pulse amplitude, a.u.
	RespNoise float64 // broadband measurement noise level
	// Fear response deltas (applied when the stimulus induces fear,
	// scaled by induction efficacy and the user's response gain).
	FearDHR     float64 // Δ heart rate, bpm (can be negative: freeze response)
	FearDHRV    float64 // Δ HRV jitter, seconds
	FearSCRMult float64 // multiplicative SCR rate factor
	FearDGSR    float64 // Δ tonic skin conductance, µS
	FearDSKT    float64 // Δ skin temperature drift, °C/min (vasoconstriction)
	FearDAmp    float64 // Δ pulse amplitude (peripheral vasoconstriction)
}

// Archetypes returns the four latent response groups. Sizes 17/13/7/7
// mirror the cluster sizes the paper reports.
//
// Group design (see package comment): A and B share response *directions*
// but differ in magnitude (so cross-evaluation stays above chance), C
// responds with the opposite heart-rate sign (freeze/bradycardia), and D is
// electrodermally blunted, responding mainly through skin temperature.
func Archetypes() []Archetype {
	return []Archetype{
		{
			Name:   "sympathetic",
			RestHR: 76, HRVStd: 0.045, GSRTonic: 8.0, SCRRate: 4, SKTLevel: 33.5,
			SKTDrift: 0.00, PulseAmp: 1.0, RespNoise: 0.05,
			FearDHR: 16, FearDHRV: -0.018, FearSCRMult: 3.0, FearDGSR: 1.2,
			FearDSKT: -0.10, FearDAmp: -0.30,
		},
		{
			Name:   "moderate",
			RestHR: 67, HRVStd: 0.060, GSRTonic: 4.0, SCRRate: 3, SKTLevel: 34.2,
			SKTDrift: 0.01, PulseAmp: 1.15, RespNoise: 0.05,
			FearDHR: 7, FearDHRV: -0.010, FearSCRMult: 1.8, FearDGSR: 0.55,
			FearDSKT: -0.05, FearDAmp: -0.15,
		},
		{
			Name:   "freeze",
			RestHR: 61, HRVStd: 0.075, GSRTonic: 6.0, SCRRate: 2, SKTLevel: 32.8,
			SKTDrift: -0.01, PulseAmp: 0.9, RespNoise: 0.05,
			FearDHR: -9, FearDHRV: 0.020, FearSCRMult: 1.5, FearDGSR: 0.30,
			FearDSKT: -0.20, FearDAmp: 0.05,
		},
		{
			Name:   "blunted",
			RestHR: 82, HRVStd: 0.035, GSRTonic: 2.0, SCRRate: 1.5, SKTLevel: 34.8,
			SKTDrift: 0.02, PulseAmp: 1.3, RespNoise: 0.05,
			FearDHR: 3, FearDHRV: -0.004, FearSCRMult: 1.5, FearDGSR: 0.35,
			FearDSKT: -0.55, FearDAmp: -0.25,
		},
	}
}

// DefaultArchetypeSizes are the per-archetype volunteer counts reported in
// the paper (clusters 1–4).
func DefaultArchetypeSizes() []int { return []int{17, 13, 7, 7} }

// lerpArchetype interpolates every parameter of two archetypes: the
// physiological operating point a drift persona passes through w of the
// way from a to b. w is clamped to [0,1].
func lerpArchetype(a, b Archetype, w float64) Archetype {
	w = clamp(w, 0, 1)
	mix := func(x, y float64) float64 { return x + w*(y-x) }
	return Archetype{
		Name:        a.Name + "→" + b.Name,
		RestHR:      mix(a.RestHR, b.RestHR),
		HRVStd:      mix(a.HRVStd, b.HRVStd),
		GSRTonic:    mix(a.GSRTonic, b.GSRTonic),
		SCRRate:     mix(a.SCRRate, b.SCRRate),
		SKTLevel:    mix(a.SKTLevel, b.SKTLevel),
		SKTDrift:    mix(a.SKTDrift, b.SKTDrift),
		PulseAmp:    mix(a.PulseAmp, b.PulseAmp),
		RespNoise:   mix(a.RespNoise, b.RespNoise),
		FearDHR:     mix(a.FearDHR, b.FearDHR),
		FearDHRV:    mix(a.FearDHRV, b.FearDHRV),
		FearSCRMult: mix(a.FearSCRMult, b.FearSCRMult),
		FearDGSR:    mix(a.FearDGSR, b.FearDGSR),
		FearDSKT:    mix(a.FearDSKT, b.FearDSKT),
		FearDAmp:    mix(a.FearDAmp, b.FearDAmp),
	}
}

// weightAt returns the interpolation weight of trial t in a total-trial
// stream: 0 before StartFrac, ramping linearly to 1 at EndFrac (default:
// the end of the stream).
func (s *DriftSpec) weightAt(t, total int) float64 {
	if total <= 1 {
		return 1
	}
	frac := float64(t) / float64(total-1)
	start := clamp(s.StartFrac, 0, 1)
	end := s.EndFrac
	if end <= 0 || end > 1 {
		end = 1
	}
	switch {
	case frac <= start:
		return 0
	case frac >= end || end <= start:
		return 1
	default:
		return (frac - start) / (end - start)
	}
}

// UserParams are the idiosyncratic deviations of one volunteer from their
// archetype. They are what a personalised (fine-tuned) model can learn and
// a cluster model cannot.
type UserParams struct {
	// Additive baseline offsets.
	DHR  float64 // bpm
	DGSR float64 // µS
	DSKT float64 // °C
	// Multiplicative response gain applied to all fear deltas.
	ResponseGain float64
	// ChannelBias tilts which modality this user expresses fear in most
	// strongly: >1 boosts cardiovascular response, <1 boosts electrodermal.
	ChannelBias float64
	// IdioDGSR and IdioDAmp are user-specific fear-response offsets in the
	// two dominant channels. They are coherent across a user's trials but
	// average to ~zero within a cluster, so cluster models cannot absorb
	// them — they are precisely the signal on-edge fine-tuning recovers.
	IdioDGSR float64
	IdioDAmp float64
	// NoiseGain scales measurement noise for this user's sensors.
	NoiseGain float64
}

// sampleUserParams draws a volunteer's idiosyncrasies.
func sampleUserParams(rng *rand.Rand) UserParams {
	return UserParams{
		DHR:          rng.NormFloat64() * 3.5,
		DGSR:         rng.NormFloat64() * 0.6,
		DSKT:         rng.NormFloat64() * 0.4,
		ResponseGain: clamp(1+rng.NormFloat64()*0.35, 0.3, 2.0),
		ChannelBias:  clamp(1+rng.NormFloat64()*0.35, 0.45, 1.8),
		IdioDGSR:     rng.NormFloat64() * 0.45,
		IdioDAmp:     rng.NormFloat64() * 0.11,
		NoiseGain:    clamp(1+rng.NormFloat64()*0.2, 0.6, 1.6),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// trialJitter captures slow physiological non-stationarity between trials
// (posture changes, electrode drift, time-of-day effects): small random
// offsets on the operating point that are not informative about the label.
// This is what keeps even intra-cluster accuracy away from 100 %.
type trialJitter struct {
	dHR      float64 // bpm
	dGSR     float64 // µS
	dSKT     float64 // °C
	scrScale float64
	ampScale float64
}

func sampleTrialJitter(rng *rand.Rand) trialJitter {
	return trialJitter{
		dHR:      rng.NormFloat64() * 2.2,
		dGSR:     rng.NormFloat64() * 0.35,
		dSKT:     rng.NormFloat64() * 0.20,
		scrScale: clamp(1+rng.NormFloat64()*0.20, 0.5, 1.8),
		ampScale: clamp(1+rng.NormFloat64()*0.08, 0.75, 1.25),
	}
}

// inductionEfficacy models how strongly a fear stimulus actually induced
// fear in this trial. Most trials succeed (≈1); a minority induce only a
// weak response, which is the irreducible label noise that caps accuracy.
func inductionEfficacy(rng *rand.Rand) float64 {
	if rng.Float64() < 0.30 {
		return 0.05 + 0.30*rng.Float64() // failed / weak induction
	}
	return clamp(0.85+rng.NormFloat64()*0.12, 0.5, 1.2)
}
