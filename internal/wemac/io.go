package wemac

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/features"
)

// Dataset serialisation. Two formats:
//
//   - a compact binary corpus (WriteTo/ReadFrom) for caching generated
//     populations between experiment runs;
//   - a CSV trial dump (WriteTrialCSV) matching how physiological corpora
//     like WEMAC ship their signals, for inspection with external tooling.

const corpusMagic uint32 = 0x43414D57 // "WMAC"

// ErrBadCorpus is returned when a stream is not a valid corpus.
var ErrBadCorpus = errors.New("wemac: bad corpus format")

// WriteTo serialises the full dataset (config, volunteers, trials,
// signals).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	putF64s := func(x []float64) error {
		if err := put(uint32(len(x))); err != nil {
			return err
		}
		for _, v := range x {
			if err := put(math.Float64bits(v)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := put(corpusMagic); err != nil {
		return n, err
	}
	if err := put(int64(d.Config.Seed)); err != nil {
		return n, err
	}
	if err := put(uint32(d.Config.TrialsPerVolunteer)); err != nil {
		return n, err
	}
	if err := put(math.Float64bits(d.Config.TrialSec)); err != nil {
		return n, err
	}
	if err := put(uint32(len(d.Config.ArchetypeSizes))); err != nil {
		return n, err
	}
	for _, s := range d.Config.ArchetypeSizes {
		if err := put(uint32(s)); err != nil {
			return n, err
		}
	}
	if err := put(uint32(len(d.Volunteers))); err != nil {
		return n, err
	}
	for _, v := range d.Volunteers {
		if err := put(uint32(v.ID)); err != nil {
			return n, err
		}
		if err := put(uint32(v.Archetype)); err != nil {
			return n, err
		}
		if err := put(uint32(len(v.Trials))); err != nil {
			return n, err
		}
		for _, tr := range v.Trials {
			if err := put(uint32(tr.Label)); err != nil {
				return n, err
			}
			if err := put(math.Float64bits(tr.Efficacy)); err != nil {
				return n, err
			}
			if err := putF64s(tr.Rec.BVP); err != nil {
				return n, err
			}
			if err := putF64s(tr.Rec.GSR); err != nil {
				return n, err
			}
			if err := putF64s(tr.Rec.SKT); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadDataset deserialises a corpus written by WriteTo.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var u32 uint32
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	getF64 := func() (float64, error) {
		var b uint64
		err := get(&b)
		return math.Float64frombits(b), err
	}
	getF64s := func() ([]float64, error) {
		var l uint32
		if err := get(&l); err != nil {
			return nil, err
		}
		if l > 1<<28 {
			return nil, fmt.Errorf("%w: implausible signal length %d", ErrBadCorpus, l)
		}
		out := make([]float64, l)
		for i := range out {
			v, err := getF64()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if err := get(&u32); err != nil {
		return nil, err
	}
	if u32 != corpusMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadCorpus, u32)
	}
	d := &Dataset{}
	var seed int64
	if err := get(&seed); err != nil {
		return nil, err
	}
	d.Config.Seed = seed
	if err := get(&u32); err != nil {
		return nil, err
	}
	d.Config.TrialsPerVolunteer = int(u32)
	ts, err := getF64()
	if err != nil {
		return nil, err
	}
	d.Config.TrialSec = ts
	if err := get(&u32); err != nil {
		return nil, err
	}
	if u32 > 64 {
		return nil, fmt.Errorf("%w: implausible archetype count %d", ErrBadCorpus, u32)
	}
	d.Config.ArchetypeSizes = make([]int, u32)
	for i := range d.Config.ArchetypeSizes {
		if err := get(&u32); err != nil {
			return nil, err
		}
		d.Config.ArchetypeSizes[i] = int(u32)
	}
	if err := get(&u32); err != nil {
		return nil, err
	}
	nVol := int(u32)
	if nVol > 1<<20 {
		return nil, fmt.Errorf("%w: implausible volunteer count %d", ErrBadCorpus, nVol)
	}
	for i := 0; i < nVol; i++ {
		v := &Volunteer{}
		if err := get(&u32); err != nil {
			return nil, err
		}
		v.ID = int(u32)
		if err := get(&u32); err != nil {
			return nil, err
		}
		v.Archetype = int(u32)
		if err := get(&u32); err != nil {
			return nil, err
		}
		nTr := int(u32)
		if nTr > 1<<20 {
			return nil, fmt.Errorf("%w: implausible trial count %d", ErrBadCorpus, nTr)
		}
		for t := 0; t < nTr; t++ {
			var tr Trial
			if err := get(&u32); err != nil {
				return nil, err
			}
			tr.Label = Label(u32)
			eff, err := getF64()
			if err != nil {
				return nil, err
			}
			tr.Efficacy = eff
			bvp, err := getF64s()
			if err != nil {
				return nil, err
			}
			gsr, err := getF64s()
			if err != nil {
				return nil, err
			}
			skt, err := getF64s()
			if err != nil {
				return nil, err
			}
			tr.Rec = &features.Recording{
				BVP: bvp, BVPFs: BVPFs,
				GSR: gsr, GSRFs: GSRFs,
				SKT: skt, SKTFs: SKTFs,
			}
			v.Trials = append(v.Trials, tr)
		}
		d.Volunteers = append(d.Volunteers, v)
	}
	return d, nil
}

// WriteTrialCSV dumps one trial's three channels as CSV rows of
// "time_s,channel,value" (channels are sampled at different rates, so the
// long format is the natural one).
func WriteTrialCSV(w io.Writer, tr *Trial) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time_s,channel,value\n"); err != nil {
		return err
	}
	emit := func(name string, x []float64, fs float64) error {
		for i, v := range x {
			line := strconv.FormatFloat(float64(i)/fs, 'f', 4, 64) + "," + name + "," +
				strconv.FormatFloat(v, 'g', -1, 64) + "\n"
			if _, err := bw.WriteString(line); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("bvp", tr.Rec.BVP, tr.Rec.BVPFs); err != nil {
		return err
	}
	if err := emit("gsr", tr.Rec.GSR, tr.Rec.GSRFs); err != nil {
		return err
	}
	if err := emit("skt", tr.Rec.SKT, tr.Rec.SKTFs); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFeatureCSV dumps a population's feature maps as CSV rows of
// "user,archetype,trial,label,window,feature,value" for analysis with
// external tooling.
func WriteFeatureCSV(w io.Writer, users []*UserMaps) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("user,archetype,trial,label,window,feature,value\n"); err != nil {
		return err
	}
	names := features.FeatureNames()
	for _, u := range users {
		for ti, lm := range u.Maps {
			f, ww := lm.Map.Dim(0), lm.Map.Dim(1)
			for fi := 0; fi < f; fi++ {
				for wi := 0; wi < ww; wi++ {
					line := strconv.Itoa(u.ID) + "," + strconv.Itoa(u.Archetype) + "," +
						strconv.Itoa(ti) + "," + strconv.Itoa(int(lm.Label)) + "," +
						strconv.Itoa(wi) + "," + names[fi] + "," +
						strconv.FormatFloat(lm.Map.At(fi, wi), 'g', -1, 64) + "\n"
					if _, err := bw.WriteString(line); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}
