package wemac

import (
	"testing"
)

func driftTestConfig(specs []DriftSpec) Config {
	return Config{
		ArchetypeSizes:     []int{2, 2, 1, 1},
		TrialsPerVolunteer: 8,
		TrialSec:           20,
		Seed:               41,
		Drift:              specs,
	}
}

// recEqual compares two recordings sample-for-sample (bitwise: float64
// equality, no tolerance).
func recEqual(a, b *Trial) bool {
	if a.Label != b.Label || a.Efficacy != b.Efficacy {
		return false
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Rec.BVP, b.Rec.BVP) && eq(a.Rec.GSR, b.Rec.GSR) && eq(a.Rec.SKT, b.Rec.SKT)
}

// TestDriftPersonaLeavesOthersBitwiseUnchanged is the satellite guarantee:
// arming a drift spec for one volunteer must not perturb any other
// volunteer's generated signals by a single bit.
func TestDriftPersonaLeavesOthersBitwiseUnchanged(t *testing.T) {
	base := Generate(driftTestConfig(nil))
	drifted := Generate(driftTestConfig([]DriftSpec{{User: 2, To: 0, StartFrac: 0.25}}))

	if base.N() != drifted.N() {
		t.Fatalf("population size changed: %d vs %d", base.N(), drifted.N())
	}
	for i := range base.Volunteers {
		bv, dv := base.Volunteers[i], drifted.Volunteers[i]
		if i == 2 {
			continue // the persona itself — checked below
		}
		if dv.DriftTo != -1 {
			t.Errorf("volunteer %d unexpectedly marked as drift persona", i)
		}
		for ti := range bv.Trials {
			if !recEqual(&bv.Trials[ti], &dv.Trials[ti]) {
				t.Fatalf("volunteer %d trial %d changed bitwise under an unrelated drift spec", i, ti)
			}
		}
	}
}

// TestDriftPersonaInterpolatesMidStream checks the persona itself: trials
// before the drift onset are bitwise identical to the stable run (the
// blend consumes no RNG draws), trials after it differ, and the ground
// truth fields record the migration.
func TestDriftPersonaInterpolatesMidStream(t *testing.T) {
	base := Generate(driftTestConfig(nil))
	drifted := Generate(driftTestConfig([]DriftSpec{{User: 2, To: 0, StartFrac: 0.25}}))

	bv, dv := base.Volunteers[2], drifted.Volunteers[2]
	if dv.DriftTo != 0 {
		t.Fatalf("DriftTo = %d, want 0", dv.DriftTo)
	}
	if dv.DriftStart <= 0 || dv.DriftStart >= len(dv.Trials) {
		t.Fatalf("DriftStart = %d, want mid-stream (0 < t < %d)", dv.DriftStart, len(dv.Trials))
	}
	for ti := 0; ti < dv.DriftStart; ti++ {
		if !recEqual(&bv.Trials[ti], &dv.Trials[ti]) {
			t.Fatalf("pre-drift trial %d changed (onset at %d)", ti, dv.DriftStart)
		}
	}
	changed := 0
	for ti := dv.DriftStart; ti < len(dv.Trials); ti++ {
		if !recEqual(&bv.Trials[ti], &dv.Trials[ti]) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatalf("no post-onset trial differs from the stable persona")
	}
}

// TestDriftWeightRamp pins the interpolation schedule.
func TestDriftWeightRamp(t *testing.T) {
	s := DriftSpec{StartFrac: 0.25, EndFrac: 0.75}
	total := 9 // frac(t) = t/8
	if w := s.weightAt(0, total); w != 0 {
		t.Errorf("w(0) = %v, want 0", w)
	}
	if w := s.weightAt(2, total); w != 0 {
		t.Errorf("w at StartFrac = %v, want 0", w)
	}
	if w := s.weightAt(4, total); w <= 0 || w >= 1 {
		t.Errorf("mid-ramp w = %v, want in (0,1)", w)
	}
	if w := s.weightAt(8, total); w != 1 {
		t.Errorf("w(end) = %v, want 1", w)
	}
	// EndFrac unset defaults to the end of the stream.
	s2 := DriftSpec{StartFrac: 0.5}
	if w := s2.weightAt(8, total); w != 1 {
		t.Errorf("default EndFrac: w(end) = %v, want 1", w)
	}
	// lerpArchetype endpoints.
	a, b := Archetypes()[0], Archetypes()[2]
	if got := lerpArchetype(a, b, 0).RestHR; got != a.RestHR {
		t.Errorf("lerp(0) RestHR = %v, want %v", got, a.RestHR)
	}
	if got := lerpArchetype(a, b, 1).FearDHR; got != b.FearDHR {
		t.Errorf("lerp(1) FearDHR = %v, want %v", got, b.FearDHR)
	}
}
