package wemac

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the response envelope starts at the baseline operating point
// and approaches the peak monotonically after onset.
func TestQuickDynamicsMonotoneEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Archetypes()[rng.Intn(4)]
		u := sampleUserParams(rng)
		j := sampleTrialJitter(rng)
		d := resolveDynamics(rng, a, u, j, true, 1.0)

		// Before onset: exactly the baseline.
		c0 := d.at(0)
		if c0 != d.base {
			return false
		}
		// GSR approaches the peak monotonically (envelope is monotone).
		prev := d.at(d.onsetSec).gsrTonic
		dir := d.peak.gsrTonic - d.base.gsrTonic
		for tt := d.onsetSec + 1; tt < d.onsetSec+60; tt += 2 {
			cur := d.at(tt).gsrTonic
			if dir >= 0 && cur < prev-1e-12 {
				return false
			}
			if dir < 0 && cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		// Far past onset the operating point converges to the peak.
		far := d.at(d.onsetSec + 100*d.tauSec)
		return math.Abs(far.gsrTonic-d.peak.gsrTonic) < 1e-6*(1+math.Abs(d.peak.gsrTonic))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: non-fear trials have identical base and peak (no response).
func TestQuickDynamicsNonFearFlat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Archetypes()[rng.Intn(4)]
		u := sampleUserParams(rng)
		j := sampleTrialJitter(rng)
		d := resolveDynamics(rng, a, u, j, false, 1.0)
		return d.base == d.peak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: generated signals are always finite and within physiological
// sanity bounds.
func TestSignalsSane(t *testing.T) {
	ds := Generate(Config{
		ArchetypeSizes:     []int{2, 2, 2, 2},
		TrialsPerVolunteer: 4,
		TrialSec:           25,
		Seed:               91,
	})
	for _, v := range ds.Volunteers {
		for ti, tr := range v.Trials {
			for _, s := range tr.Rec.BVP {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					t.Fatalf("user %d trial %d: non-finite BVP", v.ID, ti)
				}
			}
			for _, s := range tr.Rec.GSR {
				if s < 0.05-1e-12 {
					t.Fatalf("user %d trial %d: GSR %g below floor", v.ID, ti, s)
				}
				if s > 50 {
					t.Fatalf("user %d trial %d: GSR %g implausible", v.ID, ti, s)
				}
			}
			for _, s := range tr.Rec.SKT {
				if s < 25 || s > 45 {
					t.Fatalf("user %d trial %d: SKT %g outside physiologic range", v.ID, ti, s)
				}
			}
		}
	}
}

// Property: efficacy scales the response — a strong induction moves the
// peak further from baseline than a weak one.
func TestEfficacyScalesResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := Archetypes()[0]
	u := sampleUserParams(rng)
	j := sampleTrialJitter(rng)
	weakRng := rand.New(rand.NewSource(93))
	strongRng := rand.New(rand.NewSource(93))
	weak := resolveDynamics(weakRng, a, u, j, true, 0.1)
	strong := resolveDynamics(strongRng, a, u, j, true, 1.0)
	dWeak := math.Abs(weak.peak.gsrTonic - weak.base.gsrTonic)
	dStrong := math.Abs(strong.peak.gsrTonic - strong.base.gsrTonic)
	if dStrong <= dWeak {
		t.Errorf("strong induction ΔGSR %g should exceed weak %g", dStrong, dWeak)
	}
	hWeak := math.Abs(weak.peak.hrBPM - weak.base.hrBPM)
	hStrong := math.Abs(strong.peak.hrBPM - strong.base.hrBPM)
	if hStrong <= hWeak {
		t.Errorf("strong induction ΔHR %g should exceed weak %g", hStrong, hWeak)
	}
}
