package wemac

import (
	"math"
	"testing"

	"repro/internal/features"
)

// smallConfig keeps generation cheap for unit tests.
func smallConfig() Config {
	return Config{
		ArchetypeSizes:     []int{3, 3, 2, 2},
		TrialsPerVolunteer: 4,
		TrialSec:           20,
		Seed:               7,
	}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(smallConfig())
	if ds.N() != 10 {
		t.Fatalf("N = %d, want 10", ds.N())
	}
	counts := map[int]int{}
	for _, v := range ds.Volunteers {
		counts[v.Archetype]++
		if len(v.Trials) != 4 {
			t.Errorf("volunteer %d has %d trials", v.ID, len(v.Trials))
		}
		for _, tr := range v.Trials {
			if got := tr.Rec.Duration(); math.Abs(got-20) > 0.5 {
				t.Errorf("trial duration %g, want 20", got)
			}
		}
	}
	want := map[int]int{0: 3, 1: 3, 2: 2, 3: 2}
	for a, n := range want {
		if counts[a] != n {
			t.Errorf("archetype %d count = %d, want %d", a, counts[a], n)
		}
	}
}

func TestGenerateInterleavesArchetypes(t *testing.T) {
	ds := Generate(smallConfig())
	// The first four volunteers must span all four archetypes.
	seen := map[int]bool{}
	for _, v := range ds.Volunteers[:4] {
		seen[v.Archetype] = true
	}
	if len(seen) != 4 {
		t.Errorf("first 4 volunteers span %d archetypes, want 4", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	for i := range a.Volunteers {
		va, vb := a.Volunteers[i], b.Volunteers[i]
		if va.Params != vb.Params {
			t.Fatalf("volunteer %d params differ", i)
		}
		for j := range va.Trials {
			ra, rb := va.Trials[j].Rec, vb.Trials[j].Rec
			for k := range ra.BVP {
				if ra.BVP[k] != rb.BVP[k] {
					t.Fatalf("volunteer %d trial %d BVP differs at %d", i, j, k)
				}
			}
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	cfg.Seed = 8
	b := Generate(cfg)
	if a.Volunteers[0].Trials[0].Rec.BVP[100] == b.Volunteers[0].Trials[0].Rec.BVP[100] {
		t.Error("different seeds should produce different signals")
	}
}

func TestLabelsBalanced(t *testing.T) {
	ds := Generate(smallConfig())
	for _, v := range ds.Volunteers {
		fear := 0
		for _, tr := range v.Trials {
			if tr.Label == Fear {
				fear++
			}
		}
		if fear != len(v.Trials)/2 {
			t.Errorf("volunteer %d: %d fear of %d", v.ID, fear, len(v.Trials))
		}
	}
}

func TestFearRaisesHeartRateForSympathetic(t *testing.T) {
	// Archetype 0 (sympathetic) responds to fear with a strong HR increase.
	cfg := Config{ArchetypeSizes: []int{6}, TrialsPerVolunteer: 6, TrialSec: 30, Seed: 3}
	ds := Generate(cfg)
	var fearHR, calmHR []float64
	for _, v := range ds.Volunteers {
		for _, tr := range v.Trials {
			hr := estimateHR(tr.Rec)
			if tr.Label == Fear {
				fearHR = append(fearHR, hr)
			} else {
				calmHR = append(calmHR, hr)
			}
		}
	}
	mf, mc := features.Mean(fearHR), features.Mean(calmHR)
	if mf-mc < 5 {
		t.Errorf("sympathetic fear HR %.1f vs calm %.1f: want ≥5 bpm gap", mf, mc)
	}
}

func TestFreezeArchetypeLowersHeartRate(t *testing.T) {
	cfg := Config{ArchetypeSizes: []int{0, 0, 6}, TrialsPerVolunteer: 6, TrialSec: 30, Seed: 4}
	ds := Generate(cfg)
	var fearHR, calmHR []float64
	for _, v := range ds.Volunteers {
		if v.Archetype != 2 {
			t.Fatalf("expected freeze archetype, got %d", v.Archetype)
		}
		for _, tr := range v.Trials {
			hr := estimateHR(tr.Rec)
			if tr.Label == Fear {
				fearHR = append(fearHR, hr)
			} else {
				calmHR = append(calmHR, hr)
			}
		}
	}
	mf, mc := features.Mean(fearHR), features.Mean(calmHR)
	if mc-mf < 2 {
		t.Errorf("freeze fear HR %.1f vs calm %.1f: fear should be lower", mf, mc)
	}
}

// estimateHR measures mean pulse rate over the second half of the trial
// (the response plateau — the fear response ramps up after stimulus onset,
// so whole-trial means dilute it).
func estimateHR(rec *features.Recording) float64 {
	half := rec.BVP[len(rec.BVP)/2:]
	vec := features.ExtractBVP(half, rec.BVPFs)
	// hr_mean is feature index 25 (after 17 raw + 5 d1 + 3 d2).
	return vec[25]
}

func TestArchetypeBaselinesSeparate(t *testing.T) {
	// Tonic GSR differs across archetypes even on non-fear trials: that is
	// what makes unsupervised clustering possible.
	cfg := Config{ArchetypeSizes: []int{4, 4, 4, 4}, TrialsPerVolunteer: 4, TrialSec: 20, Seed: 5}
	ds := Generate(cfg)
	tonic := map[int][]float64{}
	for _, v := range ds.Volunteers {
		for _, tr := range v.Trials {
			if tr.Label == NonFear {
				tonic[v.Archetype] = append(tonic[v.Archetype], features.Mean(tr.Rec.GSR))
			}
		}
	}
	mSym := features.Mean(tonic[0]) // archetype 0: tonic ≈ 8
	mBlu := features.Mean(tonic[3]) // archetype 3: tonic ≈ 2
	if mSym-mBlu < 3 {
		t.Errorf("GSR tonic separation: sympathetic %.2f vs blunted %.2f", mSym, mBlu)
	}
}

func TestInductionEfficacyRecorded(t *testing.T) {
	ds := Generate(smallConfig())
	weak, strong := 0, 0
	for _, v := range ds.Volunteers {
		for _, tr := range v.Trials {
			if tr.Label != Fear {
				continue
			}
			if tr.Efficacy < 0.4 {
				weak++
			} else {
				strong++
			}
		}
	}
	if strong == 0 {
		t.Error("no strong inductions generated")
	}
	// Weak inductions exist in expectation (~15 %); with 20 fear trials the
	// chance of zero is (0.85)^20 ≈ 3.9 %, accepted for a fixed seed.
	if weak == 0 {
		t.Log("note: no weak inductions at this seed (possible but rare)")
	}
}

func TestExtractAll(t *testing.T) {
	ds := Generate(smallConfig())
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 3}
	users, err := ExtractAll(ds, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != ds.N() {
		t.Fatalf("users %d", len(users))
	}
	if TotalMaps(users) != ds.N()*4 {
		t.Errorf("TotalMaps = %d, want %d", TotalMaps(users), ds.N()*4)
	}
	for _, u := range users {
		for _, lm := range u.Maps {
			if lm.Map.Dim(0) != features.TotalFeatureCount || lm.Map.Dim(1) != 3 {
				t.Fatalf("map shape %v", lm.Map.Shape)
			}
		}
	}
}

func TestExtractAllErrorPropagates(t *testing.T) {
	ds := Generate(smallConfig())
	// Window longer than the trial must surface an error.
	_, err := ExtractAll(ds, features.ExtractorConfig{WindowSec: 100, Windows: 2})
	if err == nil {
		t.Fatal("want extraction error")
	}
}

func TestUserMapsSummary(t *testing.T) {
	ds := Generate(smallConfig())
	users, err := ExtractAll(ds, features.ExtractorConfig{WindowSec: 8, Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := users[0]
	s := u.Summary(0.1) // rounds up to 1 map
	if len(s) != features.TotalFeatureCount {
		t.Fatalf("summary length %d", len(s))
	}
	full := u.Summary(1.0)
	if len(full) != features.TotalFeatureCount {
		t.Fatalf("full summary length %d", len(full))
	}
	// Fractions outside (0,1] clamp sanely.
	if got := u.Summary(5.0); len(got) != features.TotalFeatureCount {
		t.Error("over-fraction should clamp")
	}
	if got := u.Summary(-1); len(got) != features.TotalFeatureCount {
		t.Error("under-fraction should clamp to one map")
	}
}

func TestLabelString(t *testing.T) {
	if Fear.String() != "fear" || NonFear.String() != "non-fear" {
		t.Error("Label.String wrong")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TrialsPerVolunteer != 18 || cfg.TrialSec != 60 {
		t.Error("default config changed unexpectedly")
	}
	sum := 0
	for _, s := range cfg.ArchetypeSizes {
		sum += s
	}
	if sum != 44 {
		t.Errorf("default population %d, want 44 (17+13+7+7)", sum)
	}
}
