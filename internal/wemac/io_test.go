package wemac

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/features"
)

func TestCorpusRoundTrip(t *testing.T) {
	d := Generate(smallConfig())
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != d.N() {
		t.Fatalf("N %d vs %d", got.N(), d.N())
	}
	if got.Config.Seed != d.Config.Seed || got.Config.TrialSec != d.Config.TrialSec {
		t.Error("config lost in round trip")
	}
	for i, v := range d.Volunteers {
		g := got.Volunteers[i]
		if g.ID != v.ID || g.Archetype != v.Archetype {
			t.Fatalf("volunteer %d metadata differs", i)
		}
		if len(g.Trials) != len(v.Trials) {
			t.Fatalf("volunteer %d trial count differs", i)
		}
		for j, tr := range v.Trials {
			gt := g.Trials[j]
			if gt.Label != tr.Label || gt.Efficacy != tr.Efficacy {
				t.Fatalf("trial %d/%d metadata differs", i, j)
			}
			for k := range tr.Rec.BVP {
				if gt.Rec.BVP[k] != tr.Rec.BVP[k] {
					t.Fatalf("BVP differs at %d/%d/%d", i, j, k)
				}
			}
			if len(gt.Rec.GSR) != len(tr.Rec.GSR) || len(gt.Rec.SKT) != len(tr.Rec.SKT) {
				t.Fatalf("channel lengths differ at %d/%d", i, j)
			}
			if gt.Rec.BVPFs != BVPFs || gt.Rec.GSRFs != GSRFs || gt.Rec.SKTFs != SKTFs {
				t.Fatal("sample rates not restored")
			}
		}
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("not a corpus at all"))); err == nil {
		t.Error("want error for garbage")
	}
	// Truncated valid stream.
	d := Generate(smallConfig())
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Error("want error for truncated corpus")
	}
}

func TestWriteTrialCSV(t *testing.T) {
	d := Generate(smallConfig())
	var buf bytes.Buffer
	if err := WriteTrialCSV(&buf, &d.Volunteers[0].Trials[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time_s,channel,value" {
		t.Errorf("header %q", lines[0])
	}
	wantRows := len(d.Volunteers[0].Trials[0].Rec.BVP) +
		len(d.Volunteers[0].Trials[0].Rec.GSR) +
		len(d.Volunteers[0].Trials[0].Rec.SKT)
	if len(lines)-1 != wantRows {
		t.Errorf("rows %d, want %d", len(lines)-1, wantRows)
	}
	if !strings.Contains(out, ",bvp,") || !strings.Contains(out, ",gsr,") || !strings.Contains(out, ",skt,") {
		t.Error("missing channel rows")
	}
}

func TestWriteFeatureCSV(t *testing.T) {
	d := Generate(smallConfig())
	users, err := ExtractAll(d, features.ExtractorConfig{WindowSec: 8, Windows: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFeatureCSV(&buf, users[:2]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := 1 + 2*len(users[0].Maps)*features.TotalFeatureCount*2
	if len(lines) != want {
		t.Errorf("rows %d, want %d", len(lines), want)
	}
	if !strings.Contains(lines[1], "hr_mean") && !strings.Contains(buf.String(), "hr_mean") {
		t.Error("feature names missing")
	}
}
