package wemac

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/features"
	"repro/internal/tensor"
)

// Label is the binary emotion class of a trial.
type Label int

// The fear-detection task is binary, as in the paper's Table I.
const (
	NonFear Label = 0
	Fear    Label = 1
)

func (l Label) String() string {
	if l == Fear {
		return "fear"
	}
	return "non-fear"
}

// Trial is one stimulus presentation: a label and the recorded signals.
type Trial struct {
	Label Label
	// Efficacy records how strongly the stimulus induced the target emotion
	// (generator ground truth; not visible to models).
	Efficacy float64
	Rec      *features.Recording
}

// Volunteer is one synthetic participant.
type Volunteer struct {
	ID        int
	Archetype int // ground-truth latent group (not visible to models)
	Params    UserParams
	Trials    []Trial
}

// Config controls dataset generation.
type Config struct {
	// ArchetypeSizes gives the number of volunteers per archetype.
	// Defaults to the paper's 17/13/7/7.
	ArchetypeSizes []int
	// TrialsPerVolunteer is the number of stimulus presentations each
	// volunteer watches (default 18, yielding ≈800 feature maps for the
	// default population).
	TrialsPerVolunteer int
	// TrialSec is the recording length per stimulus (default 60 s).
	TrialSec float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		ArchetypeSizes:     DefaultArchetypeSizes(),
		TrialsPerVolunteer: 18,
		TrialSec:           60,
		Seed:               1,
	}
}

func (c *Config) fillDefaults() {
	if len(c.ArchetypeSizes) == 0 {
		c.ArchetypeSizes = DefaultArchetypeSizes()
	}
	if c.TrialsPerVolunteer == 0 {
		c.TrialsPerVolunteer = 18
	}
	if c.TrialSec == 0 {
		c.TrialSec = 60
	}
}

// Dataset is a generated synthetic population.
type Dataset struct {
	Config     Config
	Volunteers []*Volunteer
}

// N returns the number of volunteers.
func (d *Dataset) N() int { return len(d.Volunteers) }

// Generate builds a deterministic synthetic dataset. Volunteers are
// interleaved across archetypes (so ID order carries no group information)
// and each volunteer's signals derive from an independent sub-seeded RNG,
// making per-volunteer content stable under population changes.
func Generate(cfg Config) *Dataset {
	cfg.fillDefaults()
	archs := Archetypes()
	if len(cfg.ArchetypeSizes) > len(archs) {
		panic(fmt.Sprintf("wemac: %d archetype sizes but only %d archetypes defined",
			len(cfg.ArchetypeSizes), len(archs)))
	}
	// Build the interleaved archetype assignment sequence.
	remaining := append([]int(nil), cfg.ArchetypeSizes...)
	var order []int
	for {
		progress := false
		for a, r := range remaining {
			if r > 0 {
				order = append(order, a)
				remaining[a]--
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	ds := &Dataset{Config: cfg}
	type job struct {
		id, arch int
	}
	jobs := make([]job, len(order))
	for i, a := range order {
		jobs[i] = job{id: i, arch: a}
	}
	vols := make([]*Volunteer, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			vols[j.id] = generateVolunteer(cfg, j.id, j.arch)
		}(j)
	}
	wg.Wait()
	ds.Volunteers = vols
	return ds
}

func generateVolunteer(cfg Config, id, arch int) *Volunteer {
	// Stable per-volunteer stream: mix the dataset seed with the ID.
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id)*7919))
	a := Archetypes()[arch]
	v := &Volunteer{ID: id, Archetype: arch, Params: sampleUserParams(rng)}
	for t := 0; t < cfg.TrialsPerVolunteer; t++ {
		fear := t%2 == 1 // balanced classes, alternating
		eff := 1.0
		if fear {
			eff = inductionEfficacy(rng)
		}
		dyn := resolveDynamics(rng, a, v.Params, sampleTrialJitter(rng), fear, eff)
		label := NonFear
		if fear {
			label = Fear
		}
		v.Trials = append(v.Trials, Trial{
			Label:    label,
			Efficacy: eff,
			Rec:      synthRecording(rng, &dyn, cfg.TrialSec),
		})
	}
	return v
}

// LabeledMap pairs a feature map with its trial label.
type LabeledMap struct {
	Map   *tensor.Tensor // F×W feature map
	Label Label
}

// UserMaps holds the extracted feature maps for one volunteer.
type UserMaps struct {
	ID        int
	Archetype int
	Maps      []LabeledMap
}

// BudgetWindows returns how many of total maps a frac budget covers — the
// rounding Summary applies: nearest integer, at least one, at most total.
// Serving code uses it to trigger cold-start assignment after exactly the
// number of windows the batch eval path would consume.
func BudgetWindows(total int, frac float64) int {
	n := int(frac*float64(total) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}

// Summary returns the volunteer's unlabeled per-feature mean vector over the
// first frac of their maps (frac in (0,1]; the paper's cold-start assignment
// uses 10 %, i.e. frac = 0.1, with at least one map).
func (u *UserMaps) Summary(frac float64) []float64 {
	n := BudgetWindows(len(u.Maps), frac)
	ms := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		ms[i] = u.Maps[i].Map
	}
	return features.Summary(ms)
}

// AllMaps returns just the tensors of u's maps.
func (u *UserMaps) AllMaps() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(u.Maps))
	for i, lm := range u.Maps {
		out[i] = lm.Map
	}
	return out
}

// ExtractAll converts every trial of every volunteer into a feature map,
// in parallel. The result preserves volunteer order; within a volunteer,
// maps follow trial order.
func ExtractAll(ds *Dataset, ecfg features.ExtractorConfig) ([]*UserMaps, error) {
	out := make([]*UserMaps, ds.N())
	errs := make([]error, ds.N())
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, v := range ds.Volunteers {
		wg.Add(1)
		go func(i int, v *Volunteer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			um := &UserMaps{ID: v.ID, Archetype: v.Archetype}
			for _, tr := range v.Trials {
				m, err := features.ExtractMap(tr.Rec, ecfg)
				if err != nil {
					errs[i] = fmt.Errorf("volunteer %d: %w", v.ID, err)
					return
				}
				um.Maps = append(um.Maps, LabeledMap{Map: m, Label: tr.Label})
			}
			out[i] = um
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TotalMaps counts feature maps across all users.
func TotalMaps(users []*UserMaps) int {
	n := 0
	for _, u := range users {
		n += len(u.Maps)
	}
	return n
}
