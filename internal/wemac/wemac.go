package wemac

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/features"
	"repro/internal/tensor"
)

// Label is the binary emotion class of a trial.
type Label int

// The fear-detection task is binary, as in the paper's Table I.
const (
	NonFear Label = 0
	Fear    Label = 1
)

func (l Label) String() string {
	if l == Fear {
		return "fear"
	}
	return "non-fear"
}

// Trial is one stimulus presentation: a label and the recorded signals.
type Trial struct {
	Label Label
	// Efficacy records how strongly the stimulus induced the target emotion
	// (generator ground truth; not visible to models).
	Efficacy float64
	Rec      *features.Recording
}

// Volunteer is one synthetic participant.
type Volunteer struct {
	ID        int
	Archetype int // ground-truth latent group (not visible to models)
	Params    UserParams
	Trials    []Trial
	// DriftTo / DriftStart record the drift-persona ground truth: from
	// trial DriftStart onward the volunteer's generator parameters
	// interpolate from Archetype toward DriftTo (−1 / 0 for stable
	// volunteers). Not visible to models.
	DriftTo    int
	DriftStart int
}

// Config controls dataset generation.
type Config struct {
	// ArchetypeSizes gives the number of volunteers per archetype.
	// Defaults to the paper's 17/13/7/7.
	ArchetypeSizes []int
	// TrialsPerVolunteer is the number of stimulus presentations each
	// volunteer watches (default 18, yielding ≈800 feature maps for the
	// default population).
	TrialsPerVolunteer int
	// TrialSec is the recording length per stimulus (default 60 s).
	TrialSec float64
	// Drift optionally turns individual volunteers into drift personas:
	// from StartFrac of their trial sequence onward, the volunteer's
	// generator parameters interpolate from their own archetype toward
	// another (see DriftSpec). Volunteers without a spec are generated
	// bitwise-identically to a drift-free run — each volunteer's signals
	// derive from an independent sub-seeded RNG, so adding a spec for one
	// user cannot perturb any other.
	Drift []DriftSpec
	// Seed makes generation deterministic.
	Seed int64
}

// DriftSpec turns one volunteer into a drift persona: a synthetic user
// whose physiology migrates from their assigned archetype to another
// mid-stream — the statistical fault the paper's robustness tests (RT)
// measure as "served by a wrong-cluster model". Used by the serving
// layer's drift-detector tests and clear-loadgen's chaos mode.
type DriftSpec struct {
	// User is the volunteer ID (generation-order index) to drift.
	User int
	// To is the target archetype the volunteer migrates toward.
	To int
	// StartFrac is the fraction of the trial sequence at which the
	// interpolation begins (trials before it are pure source archetype —
	// keep it past the cold-start budget so the initial assignment is
	// clean). Clamped to [0,1].
	StartFrac float64
	// EndFrac is where the interpolation reaches the full target
	// archetype; 0 defaults to 1 (drift completes at the end of the
	// stream).
	EndFrac float64
}

// driftFor returns the drift spec covering volunteer id, nil for stable
// volunteers.
func (c *Config) driftFor(id int) *DriftSpec {
	for i := range c.Drift {
		if c.Drift[i].User == id {
			return &c.Drift[i]
		}
	}
	return nil
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		ArchetypeSizes:     DefaultArchetypeSizes(),
		TrialsPerVolunteer: 18,
		TrialSec:           60,
		Seed:               1,
	}
}

func (c *Config) fillDefaults() {
	if len(c.ArchetypeSizes) == 0 {
		c.ArchetypeSizes = DefaultArchetypeSizes()
	}
	if c.TrialsPerVolunteer == 0 {
		c.TrialsPerVolunteer = 18
	}
	if c.TrialSec == 0 {
		c.TrialSec = 60
	}
}

// Dataset is a generated synthetic population.
type Dataset struct {
	Config     Config
	Volunteers []*Volunteer
}

// N returns the number of volunteers.
func (d *Dataset) N() int { return len(d.Volunteers) }

// Generate builds a deterministic synthetic dataset. Volunteers are
// interleaved across archetypes (so ID order carries no group information)
// and each volunteer's signals derive from an independent sub-seeded RNG,
// making per-volunteer content stable under population changes.
func Generate(cfg Config) *Dataset {
	cfg.fillDefaults()
	archs := Archetypes()
	if len(cfg.ArchetypeSizes) > len(archs) {
		panic(fmt.Sprintf("wemac: %d archetype sizes but only %d archetypes defined",
			len(cfg.ArchetypeSizes), len(archs)))
	}
	// Build the interleaved archetype assignment sequence.
	remaining := append([]int(nil), cfg.ArchetypeSizes...)
	var order []int
	for {
		progress := false
		for a, r := range remaining {
			if r > 0 {
				order = append(order, a)
				remaining[a]--
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	ds := &Dataset{Config: cfg}
	type job struct {
		id, arch int
	}
	jobs := make([]job, len(order))
	for i, a := range order {
		jobs[i] = job{id: i, arch: a}
	}
	vols := make([]*Volunteer, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			vols[j.id] = generateVolunteer(cfg, j.id, j.arch)
		}(j)
	}
	wg.Wait()
	ds.Volunteers = vols
	return ds
}

func generateVolunteer(cfg Config, id, arch int) *Volunteer {
	// Stable per-volunteer stream: mix the dataset seed with the ID.
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id)*7919))
	a := Archetypes()[arch]
	spec := cfg.driftFor(id)
	v := &Volunteer{ID: id, Archetype: arch, DriftTo: -1, Params: sampleUserParams(rng)}
	if spec != nil {
		v.DriftTo = spec.To
		v.DriftStart = cfg.TrialsPerVolunteer
	}
	for t := 0; t < cfg.TrialsPerVolunteer; t++ {
		fear := t%2 == 1 // balanced classes, alternating
		eff := 1.0
		if fear {
			eff = inductionEfficacy(rng)
		}
		// Drift personas glide toward the target archetype. The blend is a
		// pure value substitution — it consumes no RNG draws, so trials
		// before the drift onset (w == 0) stay bitwise identical to the
		// stable persona's.
		ta := a
		if spec != nil {
			if w := spec.weightAt(t, cfg.TrialsPerVolunteer); w > 0 {
				ta = lerpArchetype(a, Archetypes()[spec.To], w)
				if t < v.DriftStart {
					v.DriftStart = t
				}
			}
		}
		dyn := resolveDynamics(rng, ta, v.Params, sampleTrialJitter(rng), fear, eff)
		label := NonFear
		if fear {
			label = Fear
		}
		v.Trials = append(v.Trials, Trial{
			Label:    label,
			Efficacy: eff,
			Rec:      synthRecording(rng, &dyn, cfg.TrialSec),
		})
	}
	return v
}

// LabeledMap pairs a feature map with its trial label.
type LabeledMap struct {
	Map   *tensor.Tensor // F×W feature map
	Label Label
}

// UserMaps holds the extracted feature maps for one volunteer.
type UserMaps struct {
	ID        int
	Archetype int
	Maps      []LabeledMap
}

// BudgetWindows returns how many of total maps a frac budget covers — the
// rounding Summary applies: nearest integer, at least one, at most total.
// Serving code uses it to trigger cold-start assignment after exactly the
// number of windows the batch eval path would consume.
func BudgetWindows(total int, frac float64) int {
	n := int(frac*float64(total) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}

// Summary returns the volunteer's unlabeled per-feature mean vector over the
// first frac of their maps (frac in (0,1]; the paper's cold-start assignment
// uses 10 %, i.e. frac = 0.1, with at least one map).
func (u *UserMaps) Summary(frac float64) []float64 {
	n := BudgetWindows(len(u.Maps), frac)
	ms := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		ms[i] = u.Maps[i].Map
	}
	return features.Summary(ms)
}

// AllMaps returns just the tensors of u's maps.
func (u *UserMaps) AllMaps() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(u.Maps))
	for i, lm := range u.Maps {
		out[i] = lm.Map
	}
	return out
}

// ExtractAll converts every trial of every volunteer into a feature map,
// in parallel. The result preserves volunteer order; within a volunteer,
// maps follow trial order.
func ExtractAll(ds *Dataset, ecfg features.ExtractorConfig) ([]*UserMaps, error) {
	out := make([]*UserMaps, ds.N())
	errs := make([]error, ds.N())
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, v := range ds.Volunteers {
		wg.Add(1)
		go func(i int, v *Volunteer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			um := &UserMaps{ID: v.ID, Archetype: v.Archetype}
			for _, tr := range v.Trials {
				m, err := features.ExtractMap(tr.Rec, ecfg)
				if err != nil {
					errs[i] = fmt.Errorf("volunteer %d: %w", v.ID, err)
					return
				}
				um.Maps = append(um.Maps, LabeledMap{Map: m, Label: tr.Label})
			}
			out[i] = um
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TotalMaps counts feature maps across all users.
func TotalMaps(users []*UserMaps) int {
	n := 0
	for _, u := range users {
		n += len(u.Maps)
	}
	return n
}
