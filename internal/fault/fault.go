// Package fault is a deterministic, seedable fault injector for chaos
// testing the serving stack. Production code exposes optional injection
// points (a nil *Injector field); when no injector is installed every hook
// is a nil-receiver method call that returns immediately, so the
// production path pays nothing beyond a pointer test.
//
// The injector is deliberately tiny: each Point carries an independent
// firing probability, decisions are drawn from one seeded RNG so a chaos
// run replays bit-identically for a given seed, and every fired fault is
// counted both locally (Counts, for test assertions) and on the shared obs
// registry (fault.injected.* counters, for the /metrics surface).
package fault

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected marks an error as synthesised by the injector; hardened code
// treats it like any other failure, tests branch on it with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Point identifies one injection site in the serving stack.
type Point string

// The failure points the serving stack exposes.
const (
	// ModelBuild fails a fine-tune build (core.Pipeline.FineTune).
	ModelBuild Point = "model_build"
	// InferStall delays a batched inference pass inside the executor,
	// exercising deadline/watchdog handling.
	InferStall Point = "infer_stall"
	// ChannelDropout blanks one sensor channel of an incoming window
	// (the dominant real-world wearable failure).
	ChannelDropout Point = "channel_dropout"
	// CorruptWindow poisons an incoming window with NaN/Inf values.
	CorruptWindow Point = "corrupt_window"
	// StorePutFail fails a store write (session record, blob, manifest),
	// simulating a durable-store outage on the persist path.
	StorePutFail Point = "store_put_fail"
	// StoreGetStall delays a store read, simulating a slow or saturated
	// backend on the hydrate path.
	StoreGetStall Point = "store_get_stall"
	// StoreLeaseLost invalidates a held fine-tune lease so Refresh/Release
	// return ErrLeaseLost, simulating lease expiry under a wedged holder.
	StoreLeaseLost Point = "store_lease_lost"
	// StoreCorruptRead flips a byte in a record read back from the store,
	// exercising the caller's framing/digest integrity checks.
	StoreCorruptRead Point = "store_corrupt_read"
)

// Points lists every defined injection point.
func Points() []Point {
	return []Point{
		ModelBuild, InferStall, ChannelDropout, CorruptWindow,
		StorePutFail, StoreGetStall, StoreLeaseLost, StoreCorruptRead,
	}
}

// Injector decides deterministically (per seed) whether each hook fires.
// The zero value never fires; a nil *Injector is safe to call and never
// fires — installing nil is how production disables injection.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rates map[Point]float64
	fired map[Point]int64
	stall time.Duration
}

// Fired-fault telemetry, one counter per point on the default registry.
var (
	mInjected = map[Point]*obs.Counter{
		ModelBuild:       obs.GetCounter("fault.injected.model_build"),
		InferStall:       obs.GetCounter("fault.injected.infer_stall"),
		ChannelDropout:   obs.GetCounter("fault.injected.channel_dropout"),
		CorruptWindow:    obs.GetCounter("fault.injected.corrupt_window"),
		StorePutFail:     obs.GetCounter("fault.injected.store_put_fail"),
		StoreGetStall:    obs.GetCounter("fault.injected.store_get_stall"),
		StoreLeaseLost:   obs.GetCounter("fault.injected.store_lease_lost"),
		StoreCorruptRead: obs.GetCounter("fault.injected.store_corrupt_read"),
	}
)

// New returns an injector with no active points; Enable arms them.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rates: map[Point]float64{},
		fired: map[Point]int64{},
		stall: 250 * time.Millisecond,
	}
}

// Enable arms a point with a firing probability in [0,1] and returns the
// injector for chaining. A rate ≤ 0 disarms the point.
func (in *Injector) Enable(p Point, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if rate <= 0 {
		delete(in.rates, p)
	} else {
		if rate > 1 {
			rate = 1
		}
		in.rates[p] = rate
	}
	return in
}

// SetStall sets the delay an InferStall firing imposes.
func (in *Injector) SetStall(d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if d > 0 {
		in.stall = d
	}
	return in
}

// Fire reports whether point p's fault fires now. Nil-safe: a nil injector
// never fires. Each firing is counted locally and on the obs registry.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	rate, armed := in.rates[p]
	hit := armed && in.rng.Float64() < rate
	if hit {
		in.fired[p]++
	}
	in.mu.Unlock()
	if hit {
		if c, ok := mInjected[p]; ok {
			c.Inc()
		}
	}
	return hit
}

// Stall returns the delay an InferStall firing should impose. Nil-safe.
func (in *Injector) Stall() time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stall
}

// Intn draws a deterministic choice in [0,n) from the injector's stream
// (e.g. which sensor channel to drop). Nil-safe: a nil injector returns 0.
func (in *Injector) Intn(n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Counts snapshots how many times each point has fired.
func (in *Injector) Counts() map[Point]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]int64, len(in.fired))
	for p, n := range in.fired {
		out[p] = n
	}
	return out
}

// Armed reports whether any point is armed. Nil-safe; lets call sites skip
// setup work (e.g. cloning a window before corruption) when injection is
// entirely off.
func (in *Injector) Armed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.rates) > 0
}
