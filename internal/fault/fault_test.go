package fault

import (
	"sync"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, p := range Points() {
		if in.Fire(p) {
			t.Fatalf("nil injector fired %s", p)
		}
	}
	if in.Stall() != 0 {
		t.Fatal("nil injector has a stall duration")
	}
	if in.Intn(7) != 0 {
		t.Fatal("nil injector drew a nonzero choice")
	}
	if in.Armed() {
		t.Fatal("nil injector reports armed")
	}
	if in.Counts() != nil {
		t.Fatal("nil injector has counts")
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 1000; i++ {
		if in.Fire(ModelBuild) {
			t.Fatal("unarmed point fired")
		}
	}
	in.Enable(ModelBuild, 0.5).Enable(ModelBuild, 0)
	if in.Armed() {
		t.Fatal("disarmed injector reports armed")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []bool {
		in := New(42).Enable(CorruptWindow, 0.3).Enable(InferStall, 0.1)
		out := make([]bool, 0, 2000)
		for i := 0; i < 1000; i++ {
			out = append(out, in.Fire(CorruptWindow), in.Fire(InferStall))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across same-seed replays", i)
		}
	}
}

func TestRatesAndCounts(t *testing.T) {
	in := New(7).Enable(ChannelDropout, 0.25)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if in.Fire(ChannelDropout) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("firing rate %.3f far from configured 0.25", frac)
	}
	if got := in.Counts()[ChannelDropout]; got != int64(hits) {
		t.Fatalf("Counts = %d, observed %d", got, hits)
	}
	// Rates above 1 clamp to always-fire.
	in.Enable(ModelBuild, 5)
	if !in.Fire(ModelBuild) {
		t.Fatal("rate-1 point did not fire")
	}
}

func TestStallConfig(t *testing.T) {
	in := New(1)
	if d := in.Stall(); d <= 0 {
		t.Fatalf("default stall %v not positive", d)
	}
	in.SetStall(5 * time.Millisecond)
	if d := in.Stall(); d != 5*time.Millisecond {
		t.Fatalf("stall = %v, want 5ms", d)
	}
	in.SetStall(0) // ignored
	if d := in.Stall(); d != 5*time.Millisecond {
		t.Fatalf("zero SetStall overwrote the stall (%v)", d)
	}
}

// TestConcurrentFire exercises the injector from many goroutines (run with
// -race); totals must be exact.
func TestConcurrentFire(t *testing.T) {
	in := New(3).Enable(CorruptWindow, 0.5).Enable(ModelBuild, 1)
	var wg sync.WaitGroup
	const gs, per = 8, 500
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.Fire(CorruptWindow)
				in.Fire(ModelBuild)
				in.Intn(3)
			}
		}()
	}
	wg.Wait()
	if got := in.Counts()[ModelBuild]; got != gs*per {
		t.Fatalf("ModelBuild fired %d, want %d", got, gs*per)
	}
}
