package eval

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/wemac"
)

func TestBinaryMetricsKnown(t *testing.T) {
	yTrue := []int{1, 1, 1, 0, 0, 0}
	yPred := []int{1, 1, 0, 0, 0, 1}
	m, err := BinaryMetrics(yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Accuracy-4.0/6) > 1e-12 {
		t.Errorf("accuracy %g", m.Accuracy)
	}
	// tp=2 fp=1 fn=1 → F1 = 2*2/(4+1+1) = 2/3.
	if math.Abs(m.F1-2.0/3) > 1e-12 {
		t.Errorf("F1 %g", m.F1)
	}
	if m.N != 6 {
		t.Errorf("N %d", m.N)
	}
}

func TestBinaryMetricsEdgeCases(t *testing.T) {
	if _, err := BinaryMetrics([]int{1}, []int{1, 0}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := BinaryMetrics(nil, nil); err == nil {
		t.Error("want error for empty input")
	}
	// All-negative truth and predictions: F1 undefined → 0, accuracy 1.
	m, _ := BinaryMetrics([]int{0, 0}, []int{0, 0})
	if m.Accuracy != 1 || m.F1 != 0 {
		t.Errorf("all-negative metrics %+v", m)
	}
}

func TestAggregate(t *testing.T) {
	ms := []Metrics{
		{Accuracy: 0.8, F1: 0.7},
		{Accuracy: 0.6, F1: 0.5},
	}
	a := Aggregate(ms)
	if math.Abs(a.MeanAcc-70) > 1e-9 || math.Abs(a.MeanF1-60) > 1e-9 {
		t.Errorf("agg %+v", a)
	}
	if math.Abs(a.StdAcc-10) > 1e-9 {
		t.Errorf("std %g", a.StdAcc)
	}
	if a.Folds != 2 {
		t.Errorf("folds %d", a.Folds)
	}
	if Aggregate(nil).Folds != 0 {
		t.Error("empty aggregate")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestSplitForFineTune(t *testing.T) {
	var data []nn.Sample
	for i := 0; i < 10; i++ {
		data = append(data, nn.Sample{X: tensor.New(1), Y: i % 2})
	}
	ft, test := SplitForFineTune(data, 0.2)
	if len(ft)+len(test) != 10 {
		t.Fatalf("split sizes %d + %d", len(ft), len(test))
	}
	// 20% of 5 per class = 1 per class.
	counts := map[int]int{}
	for _, s := range ft {
		counts[s.Y]++
	}
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("ft class counts %v", counts)
	}
	// frac 1.0 must still leave at least one test sample per class.
	ft, test = SplitForFineTune(data, 1.0)
	if len(test) == 0 {
		t.Error("frac=1 must not empty the test set")
	}
	// Tiny input.
	one := []nn.Sample{{X: tensor.New(1), Y: 0}}
	ft, test = SplitForFineTune(one, 0.5)
	if len(ft) != 0 || len(test) != 1 {
		t.Errorf("singleton split %d/%d", len(ft), len(test))
	}
}

func TestMeanMetrics(t *testing.T) {
	m := meanMetrics([]Metrics{{Accuracy: 1, F1: 0.5, N: 10}, {Accuracy: 0, F1: 0.5, N: 20}})
	if m.Accuracy != 0.5 || m.F1 != 0.5 || m.N != 30 {
		t.Errorf("%+v", m)
	}
}

// ---- Integration: Table I orderings on a small synthetic population ----

var (
	integOnce  sync.Once
	integUsers []*wemac.UserMaps
	integCfg   core.Config
)

// integSetup generates a small population and config shared by the
// integration tests (generation + extraction is the expensive part).
func integSetup(t *testing.T) ([]*wemac.UserMaps, core.Config) {
	t.Helper()
	integOnce.Do(func() {
		ds := wemac.Generate(wemac.Config{
			ArchetypeSizes:     []int{5, 4, 3, 3},
			TrialsPerVolunteer: 10,
			TrialSec:           45,
			Seed:               31,
		})
		ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 4}
		users, err := wemac.ExtractAll(ds, ecfg)
		if err != nil {
			panic(err)
		}
		integUsers = users
		cfg := core.Config{
			K: 4, SubK: 2,
			Extractor: ecfg,
			Model: nn.ModelConfig{
				Conv1: 3, Conv2: 6,
				K1H: 5, K1W: 3, K2H: 3, K2W: 3, Pool1: 4, Pool2: 3,
				LSTMHidden: 16, Dropout: 0.1, Classes: 2, Seed: 1,
			},
			Train:    nn.TrainConfig{Epochs: 30, BatchSize: 16, LR: 3e-3, GradClip: 5, ValFrac: 0.15, Patience: 6, Seed: 1},
			FineTune: nn.TrainConfig{Epochs: 6, BatchSize: 8, LR: 1e-3, GradClip: 5, Seed: 1},
			Cluster:  integCfg.Cluster, RefineRounds: 3, RefineSampleFrac: 0.8, Seed: 1,
		}
		integCfg = cfg
	})
	return integUsers, integCfg
}

func TestRunGeneralModel(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	agg, err := RunGeneralModel(users, cfg, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Folds != 8 {
		t.Fatalf("folds %d", agg.Folds)
	}
	if agg.MeanAcc < 50 || agg.MeanAcc > 100 {
		t.Errorf("general accuracy %.1f implausible", agg.MeanAcc)
	}
	if _, err := RunGeneralModel(users, cfg, 1, 3); err == nil {
		t.Error("want error for group size 1")
	}
}

func TestRunCLOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	res, err := RunCL(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CL.Folds == 0 || res.RT.Folds == 0 {
		t.Fatalf("fold counts %d / %d", res.CL.Folds, res.RT.Folds)
	}
	// The paper's central claim: intra-cluster models beat cross-cluster
	// evaluation by a wide margin.
	if res.CL.MeanAcc <= res.RT.MeanAcc {
		t.Errorf("CL %.1f must beat RT CL %.1f", res.CL.MeanAcc, res.RT.MeanAcc)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(users) {
		t.Errorf("sizes %v", res.Sizes)
	}
	// Per-cluster folds must sum to the overall CL fold count.
	perFolds := 0
	for _, pc := range res.PerCluster {
		perFolds += pc.Folds
	}
	if perFolds != res.CL.Folds {
		t.Errorf("per-cluster folds %d != CL folds %d", perFolds, res.CL.Folds)
	}
}

func TestRunLOSOAndCLEAR(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	run, err := RunLOSO(users, cfg, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Folds) != len(users) {
		t.Fatalf("folds %d", len(run.Folds))
	}
	res, err := EvaluateCLEAR(run, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Cold-start assignment should mostly hit the right archetype.
	if res.AssignmentAccuracy < 0.6 {
		t.Errorf("assignment accuracy %.2f", res.AssignmentAccuracy)
	}
	// Ordering claims (soft, small population).
	if res.WithoutFT.MeanAcc <= res.RT.MeanAcc {
		t.Errorf("CLEAR w/o FT %.1f must beat RT CLEAR %.1f",
			res.WithoutFT.MeanAcc, res.RT.MeanAcc)
	}
	if res.WithFT.Folds == 0 {
		t.Fatal("no FT folds")
	}

	// Table II on the same run (the expensive pipelines are reused).
	t2, err := RunTable2(run, edge.Devices(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Results) != 3 {
		t.Fatalf("%d device results", len(t2.Results))
	}
	gpu, tpu, ncs := t2.Results[0], t2.Results[1], t2.Results[2]
	// GPU no-FT equals the float CLEAR w/o FT row.
	if math.Abs(gpu.NoFT.MeanAcc-res.WithoutFT.MeanAcc) > 1e-9 {
		t.Errorf("GPU NoFT %.2f != CLEAR w/o FT %.2f", gpu.NoFT.MeanAcc, res.WithoutFT.MeanAcc)
	}
	// int8 should hurt at least as much as fp16 (soft: allow 5-point slack
	// on this small population).
	if tpu.NoFT.MeanAcc > ncs.NoFT.MeanAcc+5 {
		t.Errorf("TPU NoFT %.1f unexpectedly above NCS2 %.1f", tpu.NoFT.MeanAcc, ncs.NoFT.MeanAcc)
	}
	// Cost orderings are hard requirements.
	if !(tpu.Cost.TestS < ncs.Cost.TestS) {
		t.Error("TPU inference must be faster than NCS2")
	}
	if !(tpu.Cost.RetrainS < ncs.Cost.RetrainS) {
		t.Error("TPU retraining must be faster than NCS2")
	}
	if !(gpu.Cost.TestS < tpu.Cost.TestS) {
		t.Error("GPU must be fastest")
	}
}

func TestRunLOSOTooFewUsers(t *testing.T) {
	users, cfg := integSetup(t)
	if _, err := RunLOSO(users[:3], cfg, 0.1, nil); err == nil {
		t.Error("want error for too few users")
	}
}
