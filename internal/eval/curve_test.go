package eval

import (
	"testing"

	"repro/internal/wemac"
)

// usersOfArchetype filters a population by ground-truth archetype.
func usersOfArchetype(users []*wemac.UserMaps, arch int) []*wemac.UserMaps {
	var out []*wemac.UserMaps
	for _, u := range users {
		if u.Archetype == arch {
			out = append(out, u)
		}
	}
	return out
}

func TestRunLearningCurveErrors(t *testing.T) {
	users, cfg := integSetup(t)
	if _, err := RunLearningCurve(users[:2], cfg, []int{2}, 1, 1); err == nil {
		t.Error("want error for too few users")
	}
	if _, err := RunLearningCurve(users, cfg, []int{1}, 1, 1); err == nil {
		t.Error("want error for size 1")
	}
	if _, err := RunLearningCurve(users, cfg, []int{len(users)}, 1, 1); err == nil {
		t.Error("want error for size ≥ population")
	}
}

func TestRunLearningCurveGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	pureUsers := usersOfArchetype(users, 0)
	if len(pureUsers) < 4 {
		t.Skip("not enough archetype-0 users in the fixture")
	}
	curve, err := RunLearningCurve(pureUsers, cfg, []int{2, len(pureUsers) - 1}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0].Agg.Folds != 3 || curve[1].Agg.Folds != 3 {
		t.Errorf("fold counts %d/%d, want 3", curve[0].Agg.Folds, curve[1].Agg.Folds)
	}
	// More users should not hurt badly (soft check: within 15 points or
	// improving — tiny fixtures are noisy).
	if curve[1].Agg.MeanAcc < curve[0].Agg.MeanAcc-15 {
		t.Errorf("accuracy collapsed with more users: %.1f → %.1f",
			curve[0].Agg.MeanAcc, curve[1].Agg.MeanAcc)
	}
}
