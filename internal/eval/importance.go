package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/features"
	"repro/internal/nn"
)

// Importance is the permutation importance of one feature (or feature
// group): the accuracy lost when that feature's rows are shuffled across
// samples, breaking their relationship with the label while preserving
// their marginal distribution.
type Importance struct {
	Name string
	// Rows are the feature-map row indices the entry covers.
	Rows []int
	// BaseAcc and PermAcc are accuracies before and after permutation.
	BaseAcc float64
	PermAcc float64
	// Drop = BaseAcc − PermAcc (higher = more important).
	Drop float64
}

// PermutationImportance measures how much each named row group contributes
// to the model's accuracy on data. Groups map display names to feature-map
// row indices; repeats averages over that many independent permutations.
func PermutationImportance(m *nn.Model, data []nn.Sample, groups map[string][]int, repeats int, seed int64) ([]Importance, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("eval: no data for importance")
	}
	if repeats < 1 {
		repeats = 1
	}
	base := nn.Accuracy(m, data)
	rng := rand.New(rand.NewSource(seed))

	var out []Importance
	for name, rows := range groups {
		dropSum := 0.0
		for r := 0; r < repeats; r++ {
			perm := rng.Perm(len(data))
			shuffled := make([]nn.Sample, len(data))
			for i, s := range data {
				x := s.X.Clone()
				src := data[perm[i]].X
				w := x.Dim(1)
				for _, row := range rows {
					for j := 0; j < w; j++ {
						x.Set(src.At(row, j), row, j)
					}
				}
				shuffled[i] = nn.Sample{X: x, Y: s.Y}
			}
			dropSum += base - nn.Accuracy(m, shuffled)
		}
		drop := dropSum / float64(repeats)
		out = append(out, Importance{
			Name: name, Rows: rows,
			BaseAcc: base, PermAcc: base - drop, Drop: drop,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Drop > out[j].Drop })
	return out, nil
}

// ModalityGroups returns the three sensor-modality row groups of the
// 123-feature map: BVP (rows 0–83), GSR (84–117) and SKT (118–122).
func ModalityGroups() map[string][]int {
	groups := map[string][]int{}
	add := func(name string, lo, n int) {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = lo + i
		}
		groups[name] = rows
	}
	add("BVP", 0, features.BVPFeatureCount)
	add("GSR", features.BVPFeatureCount, features.GSRFeatureCount)
	add("SKT", features.BVPFeatureCount+features.GSRFeatureCount, features.SKTFeatureCount)
	return groups
}

// TopFeatureGroups returns per-feature singleton groups for the named
// features (for fine-grained importance).
func TopFeatureGroups(names ...string) (map[string][]int, error) {
	all := features.FeatureNames()
	idx := map[string]int{}
	for i, n := range all {
		idx[n] = i
	}
	groups := map[string][]int{}
	for _, n := range names {
		i, ok := idx[n]
		if !ok {
			return nil, fmt.Errorf("eval: unknown feature %q", n)
		}
		groups[n] = []int{i}
	}
	return groups, nil
}
