package eval

import (
	"strings"
	"testing"
)

func TestReportRendersMarkdown(t *testing.T) {
	r := NewReport("Table I").
		Section("Results").
		Paragraph("Measured on the synthetic population.").
		Table(
			[]string{"row", "acc", "f1", "paper acc", "paper f1"},
			[][]string{
				AggRow("CL validation", Agg{MeanAcc: 81.9, StdAcc: 3.4, MeanF1: 80.4, StdF1: 3.6}, "81.90", "80.41"),
				{"short row"},
			},
		)
	out := r.String()
	for _, want := range []string{
		"# Table I",
		"## Results",
		"| row | acc | f1 | paper acc | paper f1 |",
		"|---|---|---|---|---|",
		"| CL validation | 81.90 ± 3.40 | 80.40 ± 3.60 | 81.90 | 80.41 |",
		"| short row |  |  |  |  |", // padded
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReportEmptyTable(t *testing.T) {
	r := NewReport("t")
	before := r.String()
	r.Table(nil, nil)
	if r.String() != before {
		t.Error("empty header should render nothing")
	}
}
