package eval

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/wemac"
)

// ArchResult is one architecture's CL-validation performance.
type ArchResult struct {
	Arch   nn.Arch
	CL     Agg
	Params int
	MACs   int64
}

// RunArchAblation reruns the CL validation (global clustering +
// intra-cluster LOSO) once per architecture, quantifying the paper's Fig. 2
// design claim that the CNN-LSTM "effectively integrates the feature maps'
// global and sequential information" versus its CNN-only and LSTM-only
// ablations.
func RunArchAblation(users []*wemac.UserMaps, cfg core.Config, archs []nn.Arch) ([]ArchResult, error) {
	cfg = cfg.WithDefaults()
	var out []ArchResult
	for _, arch := range archs {
		acfg := cfg
		acfg.Model.Arch = arch
		res, err := RunCL(users, acfg)
		if err != nil {
			return nil, err
		}
		mcfg := acfg.Model
		m := nn.NewModel(mcfg)
		in := []int{mcfg.InH, mcfg.InW}
		out = append(out, ArchResult{
			Arch:   arch,
			CL:     res.CL,
			Params: m.NumParams(),
			MACs:   m.TotalFLOPs(in),
		})
	}
	return out, nil
}

// ClusteringResult is one clustering algorithm's downstream performance.
type ClusteringResult struct {
	Name string
	CL   Agg
	RT   Agg
	// Purity is the mean dominant-archetype fraction of the clusters
	// (generator ground truth).
	Purity float64
	Sizes  []int
}

// ClusterAssigner produces a K-partition of user summaries; the k-means
// path and alternative algorithms plug in here.
type ClusterAssigner func(points [][]float64, k int, seed int64) ([]int, error)

// RunClusteringAblation reruns intra-cluster LOSO with the partitions of
// each supplied clustering algorithm, isolating how much of CLEAR's gain
// comes from the specific clustering method versus any reasonable
// partition.
func RunClusteringAblation(users []*wemac.UserMaps, cfg core.Config, algos map[string]ClusterAssigner) ([]ClusteringResult, error) {
	cfg = cfg.WithDefaults()
	summaries := make([][]float64, len(users))
	for i, u := range users {
		summaries[i] = u.Summary(1.0)
	}
	std := cluster.FitStandardizer(summaries)
	zs := std.ApplyAll(summaries)

	var out []ClusteringResult
	for name, algo := range algos {
		assign, err := algo(zs, cfg.K, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cl, rt, err := intraClusterLOSO(users, assign, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ClusteringResult{
			Name:   name,
			CL:     cl,
			RT:     rt,
			Purity: partitionPurity(users, assign, cfg.K),
			Sizes:  partitionSizes(assign, cfg.K),
		})
	}
	return out, nil
}

// intraClusterLOSO runs the CL-validation protocol on a fixed partition.
func intraClusterLOSO(users []*wemac.UserMaps, assign []int, cfg core.Config) (cl, rt Agg, err error) {
	var clFolds, rtFolds []Metrics
	k := cfg.K
	for c := 0; c < k; c++ {
		var members []int
		for i, a := range assign {
			if a == c {
				members = append(members, i)
			}
		}
		if len(members) < 2 {
			continue
		}
		for fi, testIdx := range members {
			var train []*wemac.UserMaps
			for _, mi := range members {
				if mi != testIdx {
					train = append(train, users[mi])
				}
			}
			m, norm, err := trainOne(train, cfg, cfg.Seed*509+int64(c)*43+int64(fi))
			if err != nil {
				return Agg{}, Agg{}, err
			}
			met, err := EvaluateModel(m, norm.samples(users[testIdx]))
			if err != nil {
				return Agg{}, Agg{}, err
			}
			clFolds = append(clFolds, met)

			var outData []nn.Sample
			for i, a := range assign {
				if a != c {
					outData = append(outData, norm.samples(users[i])...)
				}
			}
			if len(outData) > 0 {
				rmet, err := EvaluateModel(m, outData)
				if err != nil {
					return Agg{}, Agg{}, err
				}
				rtFolds = append(rtFolds, rmet)
			}
		}
	}
	return Aggregate(clFolds), Aggregate(rtFolds), nil
}

func partitionPurity(users []*wemac.UserMaps, assign []int, k int) float64 {
	pure, total := 0, 0
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		n := 0
		for i, a := range assign {
			if a == c {
				counts[users[i].Archetype]++
				n++
			}
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		pure += best
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(pure) / float64(total)
}

func partitionSizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, a := range assign {
		if a >= 0 && a < k {
			sizes[a]++
		}
	}
	return sizes
}
