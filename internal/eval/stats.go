package eval

import (
	"math"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a two-sided confidence interval for the mean of
// per-fold values by nonparametric bootstrap. level is e.g. 0.95;
// resamples is typically 1000–10000.
func BootstrapCI(values []float64, level float64, resamples int, seed int64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	if len(values) == 1 {
		return values[0], values[0]
	}
	if resamples < 100 {
		resamples = 100
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		s := 0.0
		for i := 0; i < len(values); i++ {
			s += values[rng.Intn(len(values))]
		}
		means[r] = s / float64(len(values))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx]
}

// PairedPermutationTest returns the two-sided p-value for the hypothesis
// that paired per-fold samples a and b share a mean, by sign-flipping the
// per-fold differences. This is the right test for comparing two Table I
// rows that were evaluated on the same LOSO folds (e.g. CLEAR w FT vs
// w/o FT).
func PairedPermutationTest(a, b []float64, permutations int, seed int64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 1
	}
	if permutations < 100 {
		permutations = 100
	}
	diffs := make([]float64, n)
	obs := 0.0
	for i := range a {
		diffs[i] = a[i] - b[i]
		obs += diffs[i]
	}
	obs = math.Abs(obs / float64(n))
	rng := rand.New(rand.NewSource(seed))
	extreme := 0
	for p := 0; p < permutations; p++ {
		s := 0.0
		for _, d := range diffs {
			if rng.Intn(2) == 0 {
				s += d
			} else {
				s -= d
			}
		}
		if math.Abs(s/float64(n)) >= obs-1e-15 {
			extreme++
		}
	}
	return float64(extreme+1) / float64(permutations+1)
}

// FoldAccuracies extracts the per-fold accuracy values (in percent) from a
// metrics slice, for use with the statistics helpers above.
func FoldAccuracies(ms []Metrics) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Accuracy * 100
	}
	return out
}
