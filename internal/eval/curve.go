package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/wemac"
)

// CurvePoint is one point of a cluster-size learning curve.
type CurvePoint struct {
	// TrainUsers is the number of users the model was trained on.
	TrainUsers int
	Agg        Agg
}

// RunLearningCurve measures how intra-cluster accuracy grows with the
// number of users available to a cluster model — the effect behind the
// paper's unequal 17/13/7/7 clusters (larger clusters give their members
// better models). Users should share one archetype/cluster; for each n in
// sizes, nRepeats random n-user subsets are trained and evaluated on a
// held-out member (LOSO-style).
func RunLearningCurve(users []*wemac.UserMaps, cfg core.Config, sizes []int, nRepeats int, seed int64) ([]CurvePoint, error) {
	cfg = cfg.WithDefaults()
	if len(users) < 3 {
		return nil, fmt.Errorf("eval: learning curve needs ≥3 users, got %d", len(users))
	}
	if nRepeats < 1 {
		nRepeats = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var out []CurvePoint
	for _, n := range sizes {
		if n < 2 || n >= len(users) {
			return nil, fmt.Errorf("eval: curve size %d invalid for %d users", n, len(users))
		}
		var folds []Metrics
		for r := 0; r < nRepeats; r++ {
			perm := rng.Perm(len(users))
			test := users[perm[0]]
			var train []*wemac.UserMaps
			for _, i := range perm[1 : n+1] {
				train = append(train, users[i])
			}
			m, norm, err := trainOne(train, cfg, seed*607+int64(n)*31+int64(r))
			if err != nil {
				return nil, err
			}
			met, err := EvaluateModel(m, norm.samples(test))
			if err != nil {
				return nil, err
			}
			folds = append(folds, met)
		}
		out = append(out, CurvePoint{TrainUsers: n, Agg: Aggregate(folds)})
	}
	return out, nil
}
