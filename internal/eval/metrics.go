// Package eval implements the paper's evaluation protocol: binary
// accuracy/F1 metrics with per-fold standard deviations, Leave-One-Subject-
// Out (LOSO) drivers for every Table I scenario (General model, CL
// validation, RT CL, CLEAR w/o FT, RT CLEAR, CLEAR w FT) and the Table II
// cloud-edge deployment experiments.
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
)

// Metrics holds binary classification quality for one evaluation.
type Metrics struct {
	Accuracy float64
	F1       float64 // F1 of the positive (fear) class
	N        int     // number of evaluated samples
}

// BinaryMetrics computes accuracy and positive-class F1. Slices must be the
// same length; label 1 is the positive class.
func BinaryMetrics(yTrue, yPred []int) (Metrics, error) {
	if len(yTrue) != len(yPred) {
		return Metrics{}, fmt.Errorf("eval: %d labels vs %d predictions", len(yTrue), len(yPred))
	}
	if len(yTrue) == 0 {
		return Metrics{}, fmt.Errorf("eval: empty evaluation")
	}
	var tp, fp, fn, correct int
	for i, y := range yTrue {
		p := yPred[i]
		if p == y {
			correct++
		}
		switch {
		case p == 1 && y == 1:
			tp++
		case p == 1 && y == 0:
			fp++
		case p == 0 && y == 1:
			fn++
		}
	}
	m := Metrics{Accuracy: float64(correct) / float64(len(yTrue)), N: len(yTrue)}
	if 2*tp+fp+fn > 0 {
		m.F1 = 2 * float64(tp) / float64(2*tp+fp+fn)
	}
	return m, nil
}

// EvaluateModel runs the model over data and computes metrics.
func EvaluateModel(m *nn.Model, data []nn.Sample) (Metrics, error) {
	if len(data) == 0 {
		return Metrics{}, fmt.Errorf("eval: no data")
	}
	yTrue := make([]int, len(data))
	yPred := make([]int, len(data))
	for i, s := range data {
		yTrue[i] = s.Y
		yPred[i] = m.Predict(s.X)
	}
	return BinaryMetrics(yTrue, yPred)
}

// Agg is a cross-fold aggregate: mean ± std of accuracy and F1, as the
// paper's tables report (percentages).
type Agg struct {
	MeanAcc float64
	StdAcc  float64
	MeanF1  float64
	StdF1   float64
	Folds   int
}

// Aggregate combines per-fold metrics. Values are scaled to percent.
func Aggregate(ms []Metrics) Agg {
	if len(ms) == 0 {
		return Agg{}
	}
	var acc, f1 []float64
	for _, m := range ms {
		acc = append(acc, m.Accuracy*100)
		f1 = append(f1, m.F1*100)
	}
	return Agg{
		MeanAcc: mean(acc), StdAcc: std(acc),
		MeanF1: mean(f1), StdF1: std(f1),
		Folds: len(ms),
	}
}

// String renders the aggregate like a Table I row.
func (a Agg) String() string {
	return fmt.Sprintf("acc %.2f±%.2f  f1 %.2f±%.2f  (%d folds)",
		a.MeanAcc, a.StdAcc, a.MeanF1, a.StdF1, a.Folds)
}

func mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func std(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := mean(x)
	ss := 0.0
	for _, v := range x {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(x)))
}

// newRand builds a deterministic RNG (test helper shared across files).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
