package eval

import (
	"math/rand"
	"testing"
)

func TestBootstrapCICoversMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 40)
	for i := range values {
		values[i] = 80 + rng.NormFloat64()*4
	}
	lo, hi := BootstrapCI(values, 0.95, 2000, 1)
	if !(lo < 80.5 && hi > 79.5) {
		t.Errorf("CI [%.2f, %.2f] implausible for mean≈80", lo, hi)
	}
	if hi-lo <= 0 {
		t.Errorf("empty interval [%.2f, %.2f]", lo, hi)
	}
	if hi-lo > 6 {
		t.Errorf("interval [%.2f, %.2f] too wide for n=40, σ=4", lo, hi)
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 0.95, 100, 1); lo != 0 || hi != 0 {
		t.Error("empty input should give zero interval")
	}
	if lo, hi := BootstrapCI([]float64{42}, 0.95, 100, 1); lo != 42 || hi != 42 {
		t.Error("single value should give point interval")
	}
	// Bad level falls back to 0.95 without panicking.
	lo, hi := BootstrapCI([]float64{1, 2, 3}, 2.0, 100, 1)
	if lo > hi {
		t.Error("inverted interval")
	}
}

func TestBootstrapCIWidthShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	small := make([]float64, 10)
	large := make([]float64, 200)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	lo1, hi1 := BootstrapCI(small, 0.95, 2000, 3)
	lo2, hi2 := BootstrapCI(large, 0.95, 2000, 3)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("larger sample CI (%.3f) should be narrower than smaller (%.3f)",
			hi2-lo2, hi1-lo1)
	}
}

func TestPairedPermutationDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := 75 + rng.NormFloat64()*5
		a[i] = base + 6 // consistent +6 point improvement
		b[i] = base
	}
	p := PairedPermutationTest(a, b, 2000, 4)
	if p > 0.01 {
		t.Errorf("p = %.4f for a consistent 6-point effect, want <0.01", p)
	}
}

func TestPairedPermutationNullIsUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	p := PairedPermutationTest(a, b, 2000, 5)
	if p < 0.001 {
		t.Errorf("p = %.4f under the null, suspiciously small", p)
	}
}

func TestPairedPermutationEdgeCases(t *testing.T) {
	if p := PairedPermutationTest(nil, nil, 100, 1); p != 1 {
		t.Errorf("empty input p = %g, want 1", p)
	}
	if p := PairedPermutationTest([]float64{1}, []float64{1, 2}, 100, 1); p != 1 {
		t.Errorf("mismatched input p = %g, want 1", p)
	}
}

func TestFoldAccuracies(t *testing.T) {
	ms := []Metrics{{Accuracy: 0.5}, {Accuracy: 0.75}}
	accs := FoldAccuracies(ms)
	if len(accs) != 2 || accs[0] != 50 || accs[1] != 75 {
		t.Errorf("%v", accs)
	}
}
