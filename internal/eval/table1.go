package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/wemac"
)

// trainOne fits a fresh classifier on the pooled samples of the given
// users, normalising with their statistics only (LOSO hygiene).
func trainOne(users []*wemac.UserMaps, cfg core.Config, seed int64) (*nn.Model, *pipelineNorm, error) {
	norm := fitNorm(users, cfg)
	var data []nn.Sample
	for _, u := range users {
		data = append(data, norm.samples(u)...)
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("eval: no training data")
	}
	mcfg := cfg.Model
	mcfg.Seed = seed
	m := nn.NewModel(mcfg)
	tcfg := cfg.Train
	tcfg.Seed = seed
	if _, err := nn.Train(m, data, tcfg); err != nil {
		return nil, nil, err
	}
	return m, norm, nil
}

// RunGeneralModel reproduces the paper's "General Model" row: groupSize
// users are drawn at random (11 in the paper, matching the mean cluster
// size), a single population model is LOSO-trained within the group without
// any clustering, and per-fold metrics are aggregated.
func RunGeneralModel(users []*wemac.UserMaps, cfg core.Config, groupSize int, seed int64) (Agg, error) {
	cfg = cfg.WithDefaults()
	if groupSize < 2 || groupSize > len(users) {
		return Agg{}, fmt.Errorf("eval: group size %d invalid for %d users", groupSize, len(users))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(users))
	group := make([]*wemac.UserMaps, groupSize)
	for i := 0; i < groupSize; i++ {
		group[i] = users[perm[i]]
	}
	var folds []Metrics
	for i := range group {
		train := withoutIndex(group, i)
		m, norm, err := trainOne(train, cfg, seed*101+int64(i))
		if err != nil {
			return Agg{}, err
		}
		met, err := EvaluateModel(m, norm.samples(group[i]))
		if err != nil {
			return Agg{}, err
		}
		folds = append(folds, met)
	}
	return Aggregate(folds), nil
}

// CLResult carries both halves of the paper's CL validation block.
type CLResult struct {
	// CL is intra-cluster LOSO performance ("CL validation").
	CL Agg
	// RT is the robustness test: each fold's model evaluated on the users
	// of *other* clusters ("RT CL").
	RT Agg
	// Sizes are the global-clustering cluster sizes.
	Sizes []int
	// PerCluster breaks the CL row down by cluster (index-aligned with
	// Sizes; clusters with fewer than two members have zero folds).
	PerCluster []Agg
}

// RunCL reproduces the "Clustering and Learning validation" block: global
// clustering over the whole population, intra-cluster LOSO for each
// cluster, and the RT cross-cluster evaluation.
func RunCL(users []*wemac.UserMaps, cfg core.Config) (CLResult, error) {
	cfg = cfg.WithDefaults()
	assign, _, err := clusterUsers(users, cfg)
	if err != nil {
		return CLResult{}, err
	}
	sizes := make([]int, cfg.K)
	for _, c := range assign {
		sizes[c]++
	}
	var clFolds, rtFolds []Metrics
	perCluster := make([]Agg, cfg.K)
	for k := 0; k < cfg.K; k++ {
		var members []int
		for i, c := range assign {
			if c == k {
				members = append(members, i)
			}
		}
		if len(members) < 2 {
			continue // intra-cluster LOSO needs at least 2 members
		}
		var kFolds []Metrics
		for fi, testIdx := range members {
			var train []*wemac.UserMaps
			for _, mi := range members {
				if mi != testIdx {
					train = append(train, users[mi])
				}
			}
			m, norm, err := trainOne(train, cfg, cfg.Seed*307+int64(k)*41+int64(fi))
			if err != nil {
				return CLResult{}, err
			}
			met, err := EvaluateModel(m, norm.samples(users[testIdx]))
			if err != nil {
				return CLResult{}, err
			}
			clFolds = append(clFolds, met)
			kFolds = append(kFolds, met)

			// RT: the same fold model on every user outside cluster k.
			var outData []nn.Sample
			for i, c := range assign {
				if c != k {
					outData = append(outData, norm.samples(users[i])...)
				}
			}
			if len(outData) > 0 {
				rtMet, err := EvaluateModel(m, outData)
				if err != nil {
					return CLResult{}, err
				}
				rtFolds = append(rtFolds, rtMet)
			}
		}
		perCluster[k] = Aggregate(kFolds)
	}
	return CLResult{CL: Aggregate(clFolds), RT: Aggregate(rtFolds), Sizes: sizes, PerCluster: perCluster}, nil
}

// clusterUsers runs the pipeline's global clustering step alone (summaries
// → standardise → k-means++ → refine) and returns assignments and the
// standardizer.
func clusterUsers(users []*wemac.UserMaps, cfg core.Config) ([]int, *cluster.Standardizer, error) {
	summaries := make([][]float64, len(users))
	for i, u := range users {
		summaries[i] = u.Summary(1.0)
	}
	std := cluster.FitStandardizer(summaries)
	zs := std.ApplyAll(summaries)
	copts := cfg.Cluster
	copts.Seed = cfg.Seed*31 + 7
	top, err := cluster.KMeans(zs, cfg.K, copts)
	if err != nil {
		return nil, nil, err
	}
	top = cluster.Refine(zs, top, cfg.RefineRounds, cfg.RefineSampleFrac, cfg.Seed*31+11)
	return top.Assign, std, nil
}

func withoutIndex(users []*wemac.UserMaps, i int) []*wemac.UserMaps {
	out := make([]*wemac.UserMaps, 0, len(users)-1)
	out = append(out, users[:i]...)
	return append(out, users[i+1:]...)
}

// pipelineNorm is a feature transform bound to a training population:
// optional stimulus-locked baseline correction followed by z-scoring with
// the training users' statistics.
type pipelineNorm struct {
	n       *features.Normalizer
	correct bool
}

// fitNorm fits feature normalisation on the given users' maps only, in the
// representation the classifier will consume.
func fitNorm(users []*wemac.UserMaps, cfg core.Config) *pipelineNorm {
	correct := !cfg.DisableBaselineCorrect
	var maps []*tensor.Tensor
	for _, u := range users {
		for _, m := range u.AllMaps() {
			if correct {
				m = features.BaselineCorrect(m)
			}
			maps = append(maps, m)
		}
	}
	return &pipelineNorm{n: features.FitNormalizer(maps), correct: correct}
}

func (p *pipelineNorm) samples(u *wemac.UserMaps) []nn.Sample {
	out := make([]nn.Sample, len(u.Maps))
	for i, lm := range u.Maps {
		m := lm.Map
		if p.correct {
			m = features.BaselineCorrect(m)
		}
		out[i] = nn.Sample{X: p.n.Apply(m), Y: int(lm.Label)}
	}
	return out
}
