package eval

import (
	"fmt"
	"sort"

	"repro/internal/nn"
)

// ROCPoint is one operating point of a classifier's ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // sensitivity at this threshold
	FPR       float64 // 1 − specificity
}

// ROC computes the ROC curve of fear-probability scores against binary
// labels (1 = fear). Points are ordered from the strictest threshold to the
// laxest, so the curve runs from (0,0) to (1,1).
func ROC(scores []float64, labels []int) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("eval: empty ROC input")
	}
	pos, neg := 0, 0
	for _, y := range labels {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("eval: ROC needs both classes (pos=%d neg=%d)", pos, neg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var out []ROCPoint
	tp, fp := 0, 0
	out = append(out, ROCPoint{Threshold: scores[idx[0]] + 1, TPR: 0, FPR: 0})
	i := 0
	for i < len(idx) {
		// Process ties together so the curve is well-defined.
		thr := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == thr {
			if labels[idx[i]] == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: thr,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out, nil
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// ModelAUC scores every sample with the model's fear probability and
// returns the ROC AUC.
func ModelAUC(m *nn.Model, data []nn.Sample) (float64, error) {
	scores := make([]float64, len(data))
	labels := make([]int, len(data))
	for i, s := range data {
		p := m.Probabilities(s.X)
		if len(p) > 1 {
			scores[i] = p[1]
		}
		labels[i] = s.Y
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		return 0, err
	}
	return AUC(curve), nil
}
