package eval

import (
	"fmt"
	"strings"
)

// Report renders experiment results as GitHub-flavoured markdown, so the
// cmd binaries can regenerate EXPERIMENTS.md sections directly.
type Report struct {
	b strings.Builder
}

// NewReport starts a report with a title.
func NewReport(title string) *Report {
	r := &Report{}
	fmt.Fprintf(&r.b, "# %s\n", title)
	return r
}

// Section adds a second-level heading.
func (r *Report) Section(title string) *Report {
	fmt.Fprintf(&r.b, "\n## %s\n\n", title)
	return r
}

// Paragraph adds free text.
func (r *Report) Paragraph(text string) *Report {
	fmt.Fprintf(&r.b, "%s\n", text)
	return r
}

// Table renders a markdown table. Rows shorter than the header are padded.
func (r *Report) Table(header []string, rows [][]string) *Report {
	if len(header) == 0 {
		return r
	}
	fmt.Fprintf(&r.b, "| %s |\n", strings.Join(header, " | "))
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&r.b, "|%s|\n", strings.Join(seps, "|"))
	for _, row := range rows {
		cells := make([]string, len(header))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		fmt.Fprintf(&r.b, "| %s |\n", strings.Join(cells, " | "))
	}
	return r
}

// AggRow formats an aggregate as "acc ± std / f1 ± std" table cells.
func AggRow(name string, a Agg, paperAcc, paperF1 string) []string {
	return []string{
		name,
		fmt.Sprintf("%.2f ± %.2f", a.MeanAcc, a.StdAcc),
		fmt.Sprintf("%.2f ± %.2f", a.MeanF1, a.StdF1),
		paperAcc,
		paperF1,
	}
}

// String returns the rendered markdown.
func (r *Report) String() string { return r.b.String() }
