package eval

import (
	"repro/internal/edge"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// calibrationSet builds the post-training quantisation calibration inputs
// for one fold: feature maps from the fold's *training* users (the held-out
// volunteer's data must not inform the conversion), in the classifier input
// representation.
func calibrationSet(run *LOSORun, fold LOSOFold, n int) []*tensor.Tensor {
	p := fold.Pipeline
	var out []*tensor.Tensor
	for i, u := range run.Users {
		if i == fold.UserIdx {
			continue
		}
		for _, s := range p.SamplesFor(u) {
			out = append(out, s.X)
			if len(out) >= n {
				return out
			}
			break // one map per user spreads coverage across users
		}
	}
	return out
}

// DeviceResult is one platform's block of Table II.
type DeviceResult struct {
	Device string
	// NoFT is the deployed (device-precision) accuracy of the assigned
	// cluster checkpoint without fine-tuning (Table II upper).
	NoFT Agg
	// RT is the robustness test at device precision: the other clusters'
	// models on the held-out volunteer.
	RT Agg
	// FT is the accuracy after on-device fine-tuning (Table II lower).
	FT Agg
	// Cost is the simulated MTC/MPC block.
	Cost edge.CostReport
}

// Table2 is the full edge validation.
type Table2 struct {
	Results []DeviceResult
}

// RunTable2 deploys every LOSO fold's assigned checkpoint to each device,
// evaluates without fine-tuning, fine-tunes on-device with ftFrac of the
// volunteer's labelled data, re-evaluates, and reports the analytic
// time/power model. The GPU entry is the in-precision baseline.
func RunTable2(run *LOSORun, devices []edge.Device, ftFrac float64) (*Table2, error) {
	out := &Table2{}
	for _, dev := range devices {
		var noFT, rt, ft []Metrics
		var ftSamples, ftEpochs int
		for _, fold := range run.Folds {
			u := run.Users[fold.UserIdx]
			p := fold.Pipeline
			data := p.SamplesFor(u)
			calib := calibrationSet(run, fold, 16)

			dep := edge.DeployCalibrated(p.ModelFor(fold.Assignment.Cluster), dev, calib)
			met, err := EvaluateModel(dep.Model, data)
			if err != nil {
				return nil, err
			}
			noFT = append(noFT, met)

			// RT at device precision.
			var rts []Metrics
			for k := range p.Models {
				if k == fold.Assignment.Cluster {
					continue
				}
				rdep := edge.DeployCalibrated(p.ModelFor(k), dev, calib)
				rmet, err := EvaluateModel(rdep.Model, data)
				if err != nil {
					return nil, err
				}
				rts = append(rts, rmet)
			}
			if len(rts) > 0 {
				rt = append(rt, meanMetrics(rts))
			}

			// On-device fine-tuning.
			ftTrain, ftTest := SplitForFineTune(data, ftFrac)
			if len(ftTrain) == 0 || len(ftTest) == 0 {
				continue
			}
			ftCfg := run.Cfg.FineTune
			ftCfg.Seed = run.Cfg.Seed*4007 + int64(fold.UserIdx)
			res, err := dep.FineTune(p.AugmentFT(ftTrain), ftCfg)
			if err != nil {
				return nil, err
			}
			fmet, err := EvaluateModel(dep.Model, ftTest)
			if err != nil {
				return nil, err
			}
			ft = append(ft, fmet)
			ftSamples = len(ftTrain)
			ftEpochs = res.Epochs
		}
		inShape := []int{run.Cfg.Model.InH, run.Cfg.Model.InW}
		var costModel *nn.Model
		if len(run.Folds) > 0 {
			costModel = run.Folds[0].Pipeline.ModelFor(0)
		}
		dr := DeviceResult{
			Device: dev.Name,
			NoFT:   Aggregate(noFT),
			RT:     Aggregate(rt),
			FT:     Aggregate(ft),
		}
		if costModel != nil {
			if ftEpochs == 0 {
				ftEpochs = run.Cfg.FineTune.Epochs
			}
			dr.Cost = dev.Cost(costModel, inShape, ftSamples, ftEpochs)
		}
		out.Results = append(out.Results, dr)
	}
	return out, nil
}
