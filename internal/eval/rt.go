package eval

// The online robustness-test (RT) harness. The paper's RT experiment
// (Table I, "RT CLEAR") measures what a wrong-cluster model costs by
// evaluating every held-out volunteer under the *other* clusters'
// checkpoints — a large accuracy loss. This harness reproduces that
// experiment against the live serving layer and measures how much of the
// loss the self-healing drift detector (internal/serve/drift.go) claws
// back.
//
// Three arms per held-out user, all streaming the same windows through
// real serving sessions:
//
//	correct  cold-start assignment as served (the CLEAR w/o FT condition)
//	wrong    assignment overridden to the most distant cluster right
//	         after cold-start, detector disabled (the RT condition)
//	healed   same wrong override, detector enabled: the session must
//	         notice the rolling evidence contradicting its assignment
//	         and re-assign itself mid-stream
//
// Accuracy is window-level over every classified (post-assignment)
// window, so the healed arm pays for the windows served wrong before the
// detector fires — recovery counts real serving output, not an oracle
// switch. Recovery = (healed − wrong) / (correct − wrong).

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wemac"
)

var mRTUsers = obs.GetCounter("eval.rt.users_done")

// RTUser is one held-out user's three-arm outcome.
type RTUser struct {
	ID int `json:"id"`
	// Cluster is the honest cold-start assignment; WrongCluster the
	// most-distant cluster the wrong/healed arms are forced onto.
	Cluster      int `json:"cluster"`
	WrongCluster int `json:"wrong_cluster"`
	// Window-level accuracies per arm.
	Correct float64 `json:"correct"`
	Wrong   float64 `json:"wrong"`
	Healed  float64 `json:"healed"`
	// HealedAt is the classified-window index at which the detector
	// re-assigned (-1: never fired).
	HealedAt int `json:"healed_at"`
	// HealedTo is the cluster the detector chose (-1: never fired).
	HealedTo int `json:"healed_to"`
}

// RTResult aggregates the online RT experiment.
type RTResult struct {
	Users  int `json:"users"`
	Cycles int `json:"cycles"`
	// Mean window-level accuracy per arm.
	Correct float64 `json:"correct"`
	Wrong   float64 `json:"wrong"`
	Healed  float64 `json:"healed"`
	// Recovery is the healed arm's position in the correct−wrong gap:
	// 0 = no better than serving the wrong cluster forever, 1 = as good
	// as never having been misassigned.
	Recovery float64 `json:"recovery"`
	// Reassigned counts healed-arm users whose detector fired;
	// MeanHealAt is their mean classified-window index at re-assignment.
	Reassigned int      `json:"reassigned"`
	MeanHealAt float64  `json:"mean_heal_at"`
	PerUser    []RTUser `json:"per_user"`
}

// RunRT runs the three arms for every held-out user against pipe. Each
// arm streams the user's maps cycles times (the detector needs stream
// length to amortise its evidence window; the paper's trials are minutes
// long, the fixture's seconds). scfg parameterises the serving layer; the
// harness forces snapshotting off and flips DriftDisabled per arm.
// Progress, if non-nil, is called after each user.
func RunRT(pipe *core.Pipeline, users []*wemac.UserMaps, cycles int, scfg serve.Config, progress func(done, total int)) (RTResult, error) {
	if cycles < 1 {
		cycles = 1
	}
	sp := obs.StartSpan("eval.rt")
	defer sp.End()
	scfg.Store = nil
	scfg.Fault = nil

	// One server per arm: the detector switch is server-wide, and
	// separate registries keep the arms from sharing fine-tune caches.
	offCfg := scfg
	offCfg.DriftDisabled = true
	onCfg := scfg
	onCfg.DriftDisabled = false

	srvCorrect, err := serve.New(pipe, onCfg)
	if err != nil {
		return RTResult{}, err
	}
	defer srvCorrect.Shutdown()
	srvWrong, err := serve.New(pipe, offCfg)
	if err != nil {
		return RTResult{}, err
	}
	defer srvWrong.Shutdown()
	srvHealed, err := serve.New(pipe, onCfg)
	if err != nil {
		return RTResult{}, err
	}
	defer srvHealed.Shutdown()

	res := RTResult{Users: len(users), Cycles: cycles}
	var sumHealAt float64
	for i, u := range users {
		honest := pipe.Assign(u, 0.1)
		wrongK := worstCluster(honest)

		correct, _, _, err := streamArm(srvCorrect, u, cycles, -1)
		if err != nil {
			return RTResult{}, fmt.Errorf("eval: rt user %d correct arm: %w", u.ID, err)
		}
		wrong, _, _, err := streamArm(srvWrong, u, cycles, wrongK)
		if err != nil {
			return RTResult{}, fmt.Errorf("eval: rt user %d wrong arm: %w", u.ID, err)
		}
		healed, healedAt, healedTo, err := streamArm(srvHealed, u, cycles, wrongK)
		if err != nil {
			return RTResult{}, fmt.Errorf("eval: rt user %d healed arm: %w", u.ID, err)
		}

		res.PerUser = append(res.PerUser, RTUser{
			ID: u.ID, Cluster: honest.Cluster, WrongCluster: wrongK,
			Correct: correct, Wrong: wrong, Healed: healed,
			HealedAt: healedAt, HealedTo: healedTo,
		})
		res.Correct += correct
		res.Wrong += wrong
		res.Healed += healed
		if healedAt >= 0 {
			res.Reassigned++
			sumHealAt += float64(healedAt)
		}
		mRTUsers.Inc()
		if progress != nil {
			progress(i+1, len(users))
		}
	}
	if res.Users > 0 {
		n := float64(res.Users)
		res.Correct /= n
		res.Wrong /= n
		res.Healed /= n
	}
	if res.Reassigned > 0 {
		res.MeanHealAt = sumHealAt / float64(res.Reassigned)
	}
	if gap := res.Correct - res.Wrong; gap > 0 {
		res.Recovery = (res.Healed - res.Wrong) / gap
	}
	return res, nil
}

// worstCluster returns the cluster the assignment scored most distant —
// the strongest wrong-cluster condition the serving layer can be forced
// into.
func worstCluster(a core.Assignment) int {
	worst, ws := a.Cluster, -1.0
	for k, s := range a.Scores {
		if s > ws {
			ws, worst = s, k
		}
	}
	return worst
}

// streamArm drives one serving session through cycles passes over u's
// maps. overrideK ≥ 0 forces the assignment onto that cluster immediately
// after cold-start (the wrong/healed arms). Returns window-level accuracy
// over all classified windows, plus the classified-window index and
// target of the first detector re-assignment (-1, -1 when none).
func streamArm(srv *serve.Server, u *wemac.UserMaps, cycles, overrideK int) (acc float64, healedAt, healedTo int, err error) {
	// One request-scoped trace per user-arm: every span the serving layer
	// emits for this stream (core.assign, exec.submit, edge.deploy) nests
	// under it, and the session's flight-recorder events carry its id.
	tr := obs.NewTrace("eval.rt.arm")
	ctx := obs.WithTrace(context.Background(), tr)
	defer func() {
		if err != nil {
			tr.MarkError()
		}
		tr.Finish()
		srv.Traces().Add(tr)
	}()
	total := len(u.Maps)
	sess, err := srv.CreateSessionCtx(ctx, u.ID, total, 0.1)
	if err != nil {
		return 0, -1, -1, err
	}
	defer func() { _ = srv.CloseSession(sess.ID()) }()
	healedAt, healedTo = -1, -1
	hits, n := 0, 0
	for c := 0; c < cycles; c++ {
		for i, lm := range u.Maps {
			res, perr := sess.PushWindowCtx(ctx, lm.Map)
			if perr != nil {
				return 0, -1, -1, perr
			}
			if res.Assignment != nil && overrideK >= 0 && c == 0 && i+1 == wemac.BudgetWindows(total, 0.1) {
				// Cold-start just fired: force the wrong cluster before
				// any window is classified under the honest one.
				if oerr := sess.OverrideAssignment(overrideK); oerr != nil {
					return 0, -1, -1, oerr
				}
				continue
			}
			if res.Probs == nil {
				continue
			}
			if res.Reassigned && healedAt < 0 {
				healedAt = n
				healedTo = res.Assignment.Cluster
			}
			if argmax(res.Probs) == int(lm.Label) {
				hits++
			}
			n++
		}
	}
	if n > 0 {
		acc = float64(hits) / float64(n)
	}
	return acc, healedAt, healedTo, nil
}

func argmax(xs []float64) int {
	best, bi := -1.0, 0
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// FormatRT renders the RT result as the markdown report results_rt.txt
// carries.
func FormatRT(res RTResult) string {
	r := NewReport("Online RT: wrong-cluster serving and self-healing recovery")
	r.Paragraph(fmt.Sprintf(
		"%d held-out users, %d stream cycles per arm. Window-level accuracy over all classified windows; "+
			"the healed arm includes the windows served wrong before the detector fired.",
		res.Users, res.Cycles))
	r.Section("Arms")
	r.Table(
		[]string{"arm", "accuracy", "condition"},
		[][]string{
			{"correct", fmt.Sprintf("%.3f", res.Correct), "honest cold-start assignment"},
			{"wrong (RT)", fmt.Sprintf("%.3f", res.Wrong), "forced onto the most distant cluster, detector off"},
			{"healed", fmt.Sprintf("%.3f", res.Healed), "same wrong start, self-healing detector on"},
		})
	r.Paragraph(fmt.Sprintf(
		"Recovery (healed−wrong)/(correct−wrong): **%.2f**. Detector fired for %d/%d users, mean heal at classified window %.1f.",
		res.Recovery, res.Reassigned, res.Users, res.MeanHealAt))
	r.Section("Per user")
	var rows [][]string
	for _, pu := range res.PerUser {
		heal := "—"
		if pu.HealedAt >= 0 {
			heal = fmt.Sprintf("w%d → c%d", pu.HealedAt, pu.HealedTo)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", pu.ID),
			fmt.Sprintf("c%d", pu.Cluster),
			fmt.Sprintf("c%d", pu.WrongCluster),
			fmt.Sprintf("%.3f", pu.Correct),
			fmt.Sprintf("%.3f", pu.Wrong),
			fmt.Sprintf("%.3f", pu.Healed),
			heal,
		})
	}
	r.Table([]string{"user", "cluster", "forced", "correct", "wrong", "healed", "healed at"}, rows)
	return r.String()
}
