package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionKnownValues(t *testing.T) {
	c := Confusion{TP: 40, FP: 10, FN: 20, TN: 30}
	if c.Total() != 100 {
		t.Errorf("total %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.7 {
		t.Errorf("accuracy %g", got)
	}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision %g", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall %g", got)
	}
	if got := c.Specificity(); got != 0.75 {
		t.Errorf("specificity %g", got)
	}
	wantF1 := 2 * 0.8 * (2.0 / 3) / (0.8 + 2.0/3)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("f1 %g want %g", got, wantF1)
	}
	if got := c.BalancedAccuracy(); math.Abs(got-(2.0/3+0.75)/2) > 1e-12 {
		t.Errorf("bacc %g", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 ||
		c.Specificity() != 0 || c.F1() != 0 || c.MCC() != 0 {
		t.Error("empty confusion must yield zeros")
	}
}

func TestConfusionMCCRange(t *testing.T) {
	perfect := Confusion{TP: 50, TN: 50}
	if math.Abs(perfect.MCC()-1) > 1e-12 {
		t.Errorf("perfect MCC %g", perfect.MCC())
	}
	inverted := Confusion{FP: 50, FN: 50}
	if math.Abs(inverted.MCC()+1) > 1e-12 {
		t.Errorf("inverted MCC %g", inverted.MCC())
	}
}

func TestConfusionAddAndString(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	b := Confusion{TP: 10, FP: 20, FN: 30, TN: 40}
	a.Add(b)
	if a.TP != 11 || a.TN != 44 {
		t.Errorf("%+v", a)
	}
	s := a.String()
	if !strings.Contains(s, "pred fear") || !strings.Contains(s, "mcc") {
		t.Errorf("String missing fields: %q", s)
	}
}

// Property: confusion-derived accuracy/F1 agree with BinaryMetrics on the
// same predictions.
func TestQuickConfusionMatchesBinaryMetrics(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		n := 2 + rng.Intn(60)
		yTrue := make([]int, n)
		yPred := make([]int, n)
		for i := range yTrue {
			yTrue[i] = rng.Intn(2)
			yPred[i] = rng.Intn(2)
		}
		var c Confusion
		for i := range yTrue {
			switch {
			case yPred[i] == 1 && yTrue[i] == 1:
				c.TP++
			case yPred[i] == 1 && yTrue[i] == 0:
				c.FP++
			case yPred[i] == 0 && yTrue[i] == 1:
				c.FN++
			default:
				c.TN++
			}
		}
		m, err := BinaryMetrics(yTrue, yPred)
		if err != nil {
			return false
		}
		return math.Abs(m.Accuracy-c.Accuracy()) < 1e-12 &&
			math.Abs(m.F1-c.F1()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
