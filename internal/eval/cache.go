package eval

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wemac"
)

// Cache accounting: a hit is a LoadRun that produced a usable run, a miss
// is any failed load (bad magic, truncated stream, population mismatch) —
// the cases that force the caller to recompute the LOSO run.
var (
	mCacheHits   = obs.GetCounter("eval.cache.hits")
	mCacheMisses = obs.GetCounter("eval.cache.misses")
	mCacheSaves  = obs.GetCounter("eval.cache.saves")
)

// A LOSO run is the expensive artefact shared by Table I's CLEAR rows and
// all of Table II (44 pipelines × 4 models each). SaveRun/LoadRun let the
// cmd binaries compute it once and reuse it. The population itself is not
// stored: it regenerates deterministically from its seed, and LoadRun
// verifies identity via the fold count and user IDs.

const runMagic uint32 = 0x4E555243 // "CRUN"

// ErrBadRun is returned for malformed run caches.
var ErrBadRun = errors.New("eval: bad LOSO run cache")

type runHeader struct {
	Cfg     core.Config `json:"cfg"`
	CAFrac  float64     `json:"ca_frac"`
	UserIDs []int       `json:"user_ids"`
	Folds   []runFold   `json:"folds"`
}

type runFold struct {
	UserIdx        int       `json:"user_idx"`
	Cluster        int       `json:"cluster"`
	Scores         []float64 `json:"scores"`
	FracUsed       float64   `json:"frac_used"`
	ArchetypeMatch bool      `json:"archetype_match"`
}

// SaveRun serialises the run (header + every fold's pipeline).
func SaveRun(w io.Writer, run *LOSORun) error {
	bw := bufio.NewWriter(w)
	hdr := runHeader{Cfg: run.Cfg, CAFrac: run.CAFrac}
	for _, u := range run.Users {
		hdr.UserIDs = append(hdr.UserIDs, u.ID)
	}
	for _, f := range run.Folds {
		hdr.Folds = append(hdr.Folds, runFold{
			UserIdx:        f.UserIdx,
			Cluster:        f.Assignment.Cluster,
			Scores:         f.Assignment.Scores,
			FracUsed:       f.Assignment.FracUsed,
			ArchetypeMatch: f.ArchetypeMatch,
		})
	}
	js, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, runMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(js))); err != nil {
		return err
	}
	if _, err := bw.Write(js); err != nil {
		return err
	}
	for _, f := range run.Folds {
		if err := f.Pipeline.Save(bw); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	mCacheSaves.Inc()
	return nil
}

// LoadRun reads a run cache and re-attaches it to the (identical)
// population the caller regenerated. Successful loads count as cache hits
// in the obs registry, failed loads as misses.
func LoadRun(r io.Reader, users []*wemac.UserMaps) (run *LOSORun, err error) {
	defer func() {
		if err != nil {
			mCacheMisses.Inc()
		} else {
			mCacheHits.Inc()
		}
	}()
	return loadRun(r, users)
}

func loadRun(r io.Reader, users []*wemac.UserMaps) (*LOSORun, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != runMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadRun, magic)
	}
	var hdrLen uint32
	if err := binary.Read(br, binary.LittleEndian, &hdrLen); err != nil {
		return nil, err
	}
	if hdrLen > 64<<20 {
		return nil, fmt.Errorf("%w: implausible header size", ErrBadRun)
	}
	js := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, js); err != nil {
		return nil, err
	}
	var hdr runHeader
	if err := json.Unmarshal(js, &hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRun, err)
	}
	if len(hdr.UserIDs) != len(users) {
		return nil, fmt.Errorf("%w: cache has %d users, population has %d",
			ErrBadRun, len(hdr.UserIDs), len(users))
	}
	for i, id := range hdr.UserIDs {
		if users[i].ID != id {
			return nil, fmt.Errorf("%w: user %d has ID %d, cache expects %d",
				ErrBadRun, i, users[i].ID, id)
		}
	}
	run := &LOSORun{Users: users, Cfg: hdr.Cfg, CAFrac: hdr.CAFrac}
	for _, f := range hdr.Folds {
		p, err := core.Load(br)
		if err != nil {
			return nil, fmt.Errorf("%w: fold %d pipeline: %v", ErrBadRun, f.UserIdx, err)
		}
		run.Folds = append(run.Folds, LOSOFold{
			UserIdx:  f.UserIdx,
			Pipeline: p,
			Assignment: core.Assignment{
				Cluster: f.Cluster, Scores: f.Scores, FracUsed: f.FracUsed,
			},
			ArchetypeMatch: f.ArchetypeMatch,
		})
	}
	return run, nil
}
