package eval

import (
	"bytes"
	"math"
	"testing"
)

// TestCacheMissCounter checks miss accounting without the expensive LOSO
// setup: every malformed load must count exactly one miss and no hit.
func TestCacheMissCounter(t *testing.T) {
	hits, misses := mCacheHits.Value(), mCacheMisses.Value()
	if _, err := LoadRun(bytes.NewReader([]byte("garbage")), nil); err == nil {
		t.Fatal("want error for garbage stream")
	}
	if _, err := LoadRun(bytes.NewReader(nil), nil); err == nil {
		t.Fatal("want error for empty stream")
	}
	if got := mCacheMisses.Value() - misses; got != 2 {
		t.Errorf("misses += %d, want 2", got)
	}
	if got := mCacheHits.Value() - hits; got != 0 {
		t.Errorf("hits += %d, want 0", got)
	}
}

func TestSaveLoadRunRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	run, err := RunLOSO(users[:6], cfg, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hits, misses, saves := mCacheHits.Value(), mCacheMisses.Value(), mCacheSaves.Value()
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRun(bytes.NewReader(buf.Bytes()), users[:6])
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Folds) != len(run.Folds) {
		t.Fatalf("folds %d vs %d", len(loaded.Folds), len(run.Folds))
	}
	if got := mCacheSaves.Value() - saves; got != 1 {
		t.Errorf("saves += %d, want 1", got)
	}
	if got := mCacheHits.Value() - hits; got != 1 {
		t.Errorf("hits += %d, want 1", got)
	}
	// Evaluations from the reloaded run must match exactly.
	a, err := EvaluateCLEAR(run, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateCLEAR(loaded, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.WithoutFT.MeanAcc-b.WithoutFT.MeanAcc) > 1e-9 {
		t.Errorf("w/o FT accuracy changed after reload: %.4f vs %.4f",
			a.WithoutFT.MeanAcc, b.WithoutFT.MeanAcc)
	}
	if math.Abs(a.WithFT.MeanAcc-b.WithFT.MeanAcc) > 1e-9 {
		t.Errorf("FT accuracy changed after reload: %.4f vs %.4f",
			a.WithFT.MeanAcc, b.WithFT.MeanAcc)
	}

	// Mismatched population must be rejected — and counted as misses.
	if _, err := LoadRun(bytes.NewReader(buf.Bytes()), users[:5]); err == nil {
		t.Error("want error for population size mismatch")
	}
	if _, err := LoadRun(bytes.NewReader(buf.Bytes()), users[1:7]); err == nil {
		t.Error("want error for user ID mismatch")
	}
	if _, err := LoadRun(bytes.NewReader([]byte("junk")), users[:6]); err == nil {
		t.Error("want error for garbage stream")
	}
	if got := mCacheMisses.Value() - misses; got != 3 {
		t.Errorf("misses += %d, want 3", got)
	}
}
