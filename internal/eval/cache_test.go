package eval

import (
	"bytes"
	"math"
	"testing"
)

func TestSaveLoadRunRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	run, err := RunLOSO(users[:6], cfg, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRun(bytes.NewReader(buf.Bytes()), users[:6])
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Folds) != len(run.Folds) {
		t.Fatalf("folds %d vs %d", len(loaded.Folds), len(run.Folds))
	}
	// Evaluations from the reloaded run must match exactly.
	a, err := EvaluateCLEAR(run, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateCLEAR(loaded, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.WithoutFT.MeanAcc-b.WithoutFT.MeanAcc) > 1e-9 {
		t.Errorf("w/o FT accuracy changed after reload: %.4f vs %.4f",
			a.WithoutFT.MeanAcc, b.WithoutFT.MeanAcc)
	}
	if math.Abs(a.WithFT.MeanAcc-b.WithFT.MeanAcc) > 1e-9 {
		t.Errorf("FT accuracy changed after reload: %.4f vs %.4f",
			a.WithFT.MeanAcc, b.WithFT.MeanAcc)
	}

	// Mismatched population must be rejected.
	if _, err := LoadRun(bytes.NewReader(buf.Bytes()), users[:5]); err == nil {
		t.Error("want error for population size mismatch")
	}
	if _, err := LoadRun(bytes.NewReader(buf.Bytes()), users[1:7]); err == nil {
		t.Error("want error for user ID mismatch")
	}
	if _, err := LoadRun(bytes.NewReader([]byte("junk")), users[:6]); err == nil {
		t.Error("want error for garbage stream")
	}
}
