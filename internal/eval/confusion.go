package eval

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/nn"
)

// Confusion is a binary confusion matrix for the fear-detection task
// (positive class = fear).
type Confusion struct {
	TP, FP, FN, TN int
}

// ConfusionOf tallies a model's predictions over data.
func ConfusionOf(m *nn.Model, data []nn.Sample) Confusion {
	var c Confusion
	for _, s := range data {
		p := m.Predict(s.X)
		switch {
		case p == 1 && s.Y == 1:
			c.TP++
		case p == 1 && s.Y == 0:
			c.FP++
		case p == 0 && s.Y == 1:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Total returns the number of tallied samples.
func (c Confusion) Total() int { return c.TP + c.FP + c.FN + c.TN }

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP) (0 when undefined).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), the fear-detection sensitivity.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Specificity returns TN/(TN+FP).
func (c Confusion) Specificity() float64 {
	if c.TN+c.FP == 0 {
		return 0
	}
	return float64(c.TN) / float64(c.TN+c.FP)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BalancedAccuracy returns the mean of recall and specificity — the metric
// of choice when fear episodes are rare in deployment.
func (c Confusion) BalancedAccuracy() float64 {
	return (c.Recall() + c.Specificity()) / 2
}

// MCC returns the Matthews correlation coefficient (0 when undefined).
func (c Confusion) MCC() float64 {
	tp, fp, fn, tn := float64(c.TP), float64(c.FP), float64(c.FN), float64(c.TN)
	den := (tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / math.Sqrt(den)
}

// Add accumulates another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// String renders the matrix and derived rates.
func (c Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "            pred fear  pred non-fear\n")
	fmt.Fprintf(&b, "fear        %9d  %13d\n", c.TP, c.FN)
	fmt.Fprintf(&b, "non-fear    %9d  %13d\n", c.FP, c.TN)
	fmt.Fprintf(&b, "acc %.3f  prec %.3f  rec %.3f  spec %.3f  f1 %.3f  bacc %.3f  mcc %.3f",
		c.Accuracy(), c.Precision(), c.Recall(), c.Specificity(), c.F1(), c.BalancedAccuracy(), c.MCC())
	return b.String()
}
