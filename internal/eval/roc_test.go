package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2, 0.1}
	labels := []int{1, 1, 1, 0, 0}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect AUC %g", auc)
	}
	// Curve ends at (1,1).
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("curve end %+v", last)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); math.Abs(auc) > 1e-12 {
		t.Errorf("inverted AUC %g, want 0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := newRand(7)
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); math.Abs(auc-0.5) > 0.05 {
		t.Errorf("random AUC %g, want ≈0.5", auc)
	}
}

func TestROCTiesHandled(t *testing.T) {
	// All scores identical: a single diagonal step; AUC must be 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC %g", auc)
	}
	if len(curve) != 2 {
		t.Errorf("tied curve has %d points, want 2", len(curve))
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []int{1, 0}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := ROC(nil, nil); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ROC([]float64{0.5, 0.6}, []int{1, 1}); err == nil {
		t.Error("want error for single-class labels")
	}
}

// Property: AUC is invariant under any strictly monotone transform of the
// scores, and lies in [0, 1].
func TestQuickAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		n := 4 + rng.Intn(60)
		scores := make([]float64, n)
		trans := make([]float64, n)
		labels := make([]int, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			trans[i] = math.Exp(scores[i]) // strictly monotone
			labels[i] = rng.Intn(2)
			if labels[i] == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		c1, err1 := ROC(scores, labels)
		c2, err2 := ROC(trans, labels)
		if err1 != nil || err2 != nil {
			return false
		}
		a1, a2 := AUC(c1), AUC(c2)
		if a1 < -1e-12 || a1 > 1+1e-12 {
			return false
		}
		return math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
