package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/wemac"
)

// LOSO progress telemetry: folds completed so far (a live progress counter
// for /metrics during a long run) and the configured total.
var (
	mLOSOFolds  = obs.GetCounter("eval.loso.folds_done")
	gLOSOTotal  = obs.GetGauge("eval.loso.folds_total")
	mEvalClears = obs.GetCounter("eval.clear.evaluations")
)

// LOSOFold is one iteration of the full CLEAR LOSO protocol: volunteer V_x
// held out, a pipeline trained on everyone else, V_x cold-start assigned.
type LOSOFold struct {
	// UserIdx indexes the held-out volunteer in the population slice.
	UserIdx int
	// Pipeline was trained without the held-out volunteer.
	Pipeline *core.Pipeline
	// Assignment is the unsupervised cold-start result for the volunteer.
	Assignment core.Assignment
	// ArchetypeMatch reports whether the assigned cluster's dominant
	// ground-truth archetype equals the volunteer's archetype (generator
	// ground truth; a diagnostic the paper cannot compute on real data).
	ArchetypeMatch bool
}

// LOSORun is the full set of folds. Both the Table I CLEAR rows and all of
// Table II consume one run, so the expensive training happens once.
type LOSORun struct {
	Users  []*wemac.UserMaps
	Cfg    core.Config
	CAFrac float64
	Folds  []LOSOFold
}

// RunLOSO trains one pipeline per held-out volunteer (the paper's CLEAR
// validation protocol) and cold-start assigns each volunteer with caFrac of
// their unlabeled data (the paper uses 0.1). Progress, if non-nil, is
// called after each fold.
func RunLOSO(users []*wemac.UserMaps, cfg core.Config, caFrac float64, progress func(done, total int)) (*LOSORun, error) {
	cfg = cfg.WithDefaults()
	if len(users) < cfg.K+1 {
		return nil, fmt.Errorf("eval: %d users too few for K=%d LOSO", len(users), cfg.K)
	}
	run := &LOSORun{Users: users, Cfg: cfg, CAFrac: caFrac}
	sp := obs.StartSpan("eval.loso")
	defer sp.End()
	gLOSOTotal.Set(float64(len(users)))
	for i := range users {
		fsp := obs.StartSpan("loso.fold")
		train := withoutIndex(users, i)
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed*7919 + int64(i)
		p, err := core.Train(train, foldCfg)
		if err != nil {
			fsp.End()
			return nil, fmt.Errorf("eval: fold %d: %w", i, err)
		}
		a := p.Assign(users[i], caFrac)
		run.Folds = append(run.Folds, LOSOFold{
			UserIdx:        i,
			Pipeline:       p,
			Assignment:     a,
			ArchetypeMatch: archetypeMatches(p, train, a.Cluster, users[i].Archetype),
		})
		fsp.End()
		mLOSOFolds.Inc()
		if progress != nil {
			progress(i+1, len(users))
		}
	}
	return run, nil
}

// ClusterOnly exposes the clustering-only pipeline construction for
// assignment ablations (no model training).
func ClusterOnly(users []*wemac.UserMaps, cfg core.Config) (*core.Pipeline, error) {
	return core.ClusterOnly(users, cfg.WithDefaults())
}

// DominantArchetype returns the most common ground-truth archetype among
// the training users assigned to cluster k.
func DominantArchetype(p *core.Pipeline, train []*wemac.UserMaps, k int) int {
	return dominantArchetype(p, train, k)
}

// dominantArchetype returns the most common ground-truth archetype among
// the training users assigned to cluster k. Ties break toward the lower
// archetype index — a fixed rule, so the diagnostic is deterministic run
// to run instead of riding on map iteration order.
func dominantArchetype(p *core.Pipeline, train []*wemac.UserMaps, k int) int {
	counts := archetypeCounts(p, train, k)
	best, bestArch := -1, -1
	for a, c := range counts {
		if c > best || (c == best && a < bestArch) {
			best, bestArch = c, a
		}
	}
	return bestArch
}

func archetypeCounts(p *core.Pipeline, train []*wemac.UserMaps, k int) map[int]int {
	counts := map[int]int{}
	for i, c := range p.UserCluster {
		if c == k {
			counts[train[i].Archetype]++
		}
	}
	return counts
}

// archetypeMatches reports whether arch is among cluster k's most common
// ground-truth archetypes. A cluster whose majority is tied represents
// every tied archetype equally — the clustering merged them — so
// assigning a user of any tied archetype is not a cold-start mistake.
// (dominantArchetype stays single-valued for surfaces that need one label
// per cluster, e.g. /v1/stats.)
func archetypeMatches(p *core.Pipeline, train []*wemac.UserMaps, k, arch int) bool {
	counts := archetypeCounts(p, train, k)
	best := -1
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return best >= 0 && counts[arch] == best
}

// CLEARResult carries the three CLEAR rows of Table I.
type CLEARResult struct {
	// WithoutFT is "CLEAR w/o FT": the assigned cluster model on the
	// held-out volunteer's full data.
	WithoutFT Agg
	// RT is "RT CLEAR": the *other* clusters' models on the held-out
	// volunteer (averaged per fold).
	RT Agg
	// WithFT is "CLEAR w FT": the assigned model fine-tuned on ftFrac of
	// the volunteer's labelled maps, tested on the remainder.
	WithFT Agg
	// AssignmentAccuracy is the fraction of folds whose cold-start cluster
	// matched the volunteer's ground-truth archetype.
	AssignmentAccuracy float64
}

// EvaluateCLEAR computes the Table I CLEAR rows from a LOSO run. ftFrac is
// the labelled fraction used for fine-tuning (the paper uses 0.2).
func EvaluateCLEAR(run *LOSORun, ftFrac float64) (CLEARResult, error) {
	sp := obs.StartSpan("eval.clear")
	defer sp.End()
	mEvalClears.Inc()
	var woFolds, rtFolds, ftFolds []Metrics
	matches := 0
	for _, fold := range run.Folds {
		u := run.Users[fold.UserIdx]
		p := fold.Pipeline
		data := p.SamplesFor(u)
		if fold.ArchetypeMatch {
			matches++
		}

		// CLEAR w/o FT.
		m := p.ModelFor(fold.Assignment.Cluster)
		met, err := EvaluateModel(m, data)
		if err != nil {
			return CLEARResult{}, err
		}
		woFolds = append(woFolds, met)

		// RT CLEAR: mean over the other clusters' models.
		var rts []Metrics
		for k := range p.Models {
			if k == fold.Assignment.Cluster {
				continue
			}
			rmet, err := EvaluateModel(p.ModelFor(k), data)
			if err != nil {
				return CLEARResult{}, err
			}
			rts = append(rts, rmet)
		}
		if len(rts) > 0 {
			rtFolds = append(rtFolds, meanMetrics(rts))
		}

		// CLEAR w FT.
		ftTrain, ftTest := SplitForFineTune(data, ftFrac)
		if len(ftTrain) == 0 || len(ftTest) == 0 {
			continue
		}
		ftModel, err := p.FineTune(fold.Assignment.Cluster, ftTrain)
		if err != nil {
			return CLEARResult{}, err
		}
		fmet, err := EvaluateModel(ftModel, ftTest)
		if err != nil {
			return CLEARResult{}, err
		}
		ftFolds = append(ftFolds, fmet)
	}
	res := CLEARResult{
		WithoutFT: Aggregate(woFolds),
		RT:        Aggregate(rtFolds),
		WithFT:    Aggregate(ftFolds),
	}
	if len(run.Folds) > 0 {
		res.AssignmentAccuracy = float64(matches) / float64(len(run.Folds))
	}
	return res, nil
}

// SplitForFineTune takes the leading frac of samples per class for
// fine-tuning (label-stratified, preserving order so the "first sessions"
// interpretation holds) and returns the rest as the test set.
func SplitForFineTune(data []nn.Sample, frac float64) (ft, test []nn.Sample) {
	perClass := map[int]int{}
	for _, s := range data {
		perClass[s.Y]++
	}
	want := map[int]int{}
	for y, n := range perClass {
		w := int(frac*float64(n) + 0.5)
		if w < 1 && n > 1 {
			w = 1
		}
		if w >= n {
			w = n - 1
		}
		if w < 0 {
			w = 0
		}
		want[y] = w
	}
	taken := map[int]int{}
	for _, s := range data {
		if taken[s.Y] < want[s.Y] {
			ft = append(ft, s)
			taken[s.Y]++
		} else {
			test = append(test, s)
		}
	}
	return ft, test
}

// meanMetrics averages a set of metrics into one (equal weights).
func meanMetrics(ms []Metrics) Metrics {
	var acc, f1 float64
	n := 0
	for _, m := range ms {
		acc += m.Accuracy
		f1 += m.F1
		n += m.N
	}
	k := float64(len(ms))
	return Metrics{Accuracy: acc / k, F1: f1 / k, N: n}
}
