package eval

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestModalityGroupsCover123(t *testing.T) {
	groups := ModalityGroups()
	if len(groups) != 3 {
		t.Fatalf("%d groups", len(groups))
	}
	seen := map[int]bool{}
	for _, rows := range groups {
		for _, r := range rows {
			if seen[r] {
				t.Fatalf("row %d in two groups", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != 123 {
		t.Errorf("groups cover %d rows, want 123", len(seen))
	}
}

func TestTopFeatureGroups(t *testing.T) {
	groups, err := TopFeatureGroups("hr_mean", "gsr_tonic_mean")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups["hr_mean"]) != 1 {
		t.Errorf("groups %v", groups)
	}
	if _, err := TopFeatureGroups("no_such_feature"); err == nil {
		t.Error("want error for unknown feature")
	}
}

// TestPermutationImportanceFindsPlantedSignal trains a tiny model whose
// label depends only on rows 0–5, then checks permutation importance ranks
// that group above an irrelevant one.
func TestPermutationImportanceFindsPlantedSignal(t *testing.T) {
	cfg := nn.ModelConfig{
		InH: 24, InW: 5, Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 6, Classes: 2, Seed: 31,
	}
	m := nn.NewCNNLSTM(cfg)
	train, test := trainToyEval(cfg, 120, 31)
	if _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 20, BatchSize: 8, LR: 3e-3, GradClip: 5, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	if acc := nn.Accuracy(m, test); acc < 0.85 {
		t.Fatalf("fixture accuracy %.2f too low", acc)
	}
	groups := map[string][]int{
		"signal":     {0, 1, 2, 3, 4, 5},
		"irrelevant": {16, 17, 18, 19, 20, 21},
	}
	imps, err := PermutationImportance(m, test, groups, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Name != "signal" {
		t.Errorf("top importance %q, want signal (%+v)", imps[0].Name, imps)
	}
	if imps[0].Drop < 0.15 {
		t.Errorf("signal drop %.2f too small", imps[0].Drop)
	}
	var irrDrop float64
	for _, im := range imps {
		if im.Name == "irrelevant" {
			irrDrop = im.Drop
		}
	}
	if irrDrop > imps[0].Drop/2 {
		t.Errorf("irrelevant drop %.2f vs signal %.2f", irrDrop, imps[0].Drop)
	}
	if _, err := PermutationImportance(m, nil, groups, 1, 1); err == nil {
		t.Error("want error for empty data")
	}
}

// trainToyEval plants a label signal in rows 0–5.
func trainToyEval(cfg nn.ModelConfig, n int, seed int64) (train, test []nn.Sample) {
	rng := newRand(seed)
	for i := 0; i < n; i++ {
		y := i % 2
		x := tensor.Randn(rng, 0.5, cfg.InH, cfg.InW)
		shift := -1.2
		if y == 1 {
			shift = 1.2
		}
		for r := 0; r < 6; r++ {
			for c := 0; c < cfg.InW; c++ {
				x.Set(x.At(r, c)+shift, r, c)
			}
		}
		s := nn.Sample{X: x, Y: y}
		if i < n*3/4 {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	return train, test
}

func TestRunArchAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	res, err := RunArchAblation(users, cfg, []nn.Arch{nn.ArchCNNLSTM, nn.ArchCNNOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.CL.Folds == 0 {
			t.Errorf("%s: no folds", r.Arch)
		}
		if r.Params <= 0 || r.MACs <= 0 {
			t.Errorf("%s: params %d MACs %d", r.Arch, r.Params, r.MACs)
		}
	}
}

func TestRunClusteringAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	users, cfg := integSetup(t)
	algos := map[string]ClusterAssigner{
		"kmeans": func(pts [][]float64, k int, seed int64) ([]int, error) {
			res, err := cluster.KMeans(pts, k, cluster.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return res.Assign, nil
		},
		"ward": func(pts [][]float64, k int, seed int64) ([]int, error) {
			res, err := cluster.Agglomerative(pts, k, cluster.WardLinkage)
			if err != nil {
				return nil, err
			}
			return res.Assign, nil
		},
		"roundrobin": func(pts [][]float64, k int, seed int64) ([]int, error) {
			assign := make([]int, len(pts))
			for i := range assign {
				assign[i] = i % k
			}
			return assign, nil
		},
	}
	res, err := RunClusteringAblation(users, cfg, algos)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ClusteringResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	// Real clusterings must be purer than round-robin. (On this tiny
	// fixture the CL accuracies are within fold noise of each other —
	// the full-scale clustering ablation in cmd/clear-ablate shows the
	// ~5-point accuracy gap — so only a loose accuracy bound is asserted.)
	if byName["kmeans"].Purity <= byName["roundrobin"].Purity {
		t.Errorf("kmeans purity %.2f vs roundrobin %.2f",
			byName["kmeans"].Purity, byName["roundrobin"].Purity)
	}
	if byName["kmeans"].CL.MeanAcc < byName["roundrobin"].CL.MeanAcc-10 {
		t.Errorf("kmeans CL %.1f far below roundrobin %.1f",
			byName["kmeans"].CL.MeanAcc, byName["roundrobin"].CL.MeanAcc)
	}
	if byName["ward"].Purity < 0.7 {
		t.Errorf("ward purity %.2f", byName["ward"].Purity)
	}
}
