package edge

import (
	"math/rand"
	"testing"
)

// TestMonitorResetMatchesFresh: a recycled monitor must be
// indistinguishable from a freshly constructed one — same EWMA seeding,
// same hysteresis trajectory, cleared per-monitor stats. This guards the
// session-recycling path in internal/serve, where monitors outlive the
// user they were built for.
func TestMonitorResetMatchesFresh(t *testing.T) {
	dep, _, ecfg := monitorFixture(t)

	// A probability stream that exercises both hysteresis transitions.
	rng := rand.New(rand.NewSource(7))
	probs := make([]float64, 40)
	for i := range probs {
		switch {
		case i < 10:
			probs[i] = 0.1 + 0.2*rng.Float64() // quiet
		case i < 25:
			probs[i] = 0.8 + 0.15*rng.Float64() // fear episode → alarm on
		default:
			probs[i] = 0.1 + 0.1*rng.Float64() // recovery → alarm off
		}
	}

	run := func(m *Monitor) []Event {
		out := make([]Event, len(probs))
		for i, p := range probs {
			out[i] = m.Observe(p)
		}
		return out
	}

	// Dirty the monitor with a different stream, then reset.
	recycled := NewMonitor(dep, nil, ecfg)
	for i := 0; i < 17; i++ {
		recycled.Observe(0.95) // latches the alarm and pushes the EWMA high
	}
	if !recycled.Alarmed() {
		t.Fatal("setup: monitor should be alarmed before Reset")
	}
	recycled.Reset()

	if st := recycled.Stats(); st != (MonitorStats{}) {
		t.Fatalf("Reset left per-monitor stats %+v", st)
	}
	if recycled.Alarmed() {
		t.Fatal("Reset left the alarm latched")
	}

	fresh := NewMonitor(dep, nil, ecfg)
	got, want := run(recycled), run(fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d diverged after recycle: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if gs, ws := recycled.Stats(), fresh.Stats(); gs != ws {
		t.Fatalf("stats diverged after recycle: got %+v, want %+v", gs, ws)
	}
	if ws := fresh.Stats(); ws.Transitions < 2 {
		t.Fatalf("stream only produced %d transitions; the test needs both edges", ws.Transitions)
	}
}
