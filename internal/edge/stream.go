package edge

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Streaming telemetry. Latency is the wall-clock cost of one Process call
// (extraction + normalisation + inference) in microseconds; energy is the
// cumulative modelled on-device energy (J) of the horizons processed so
// far, i.e. the running MPC·MTC integral of the paper's Table II.
var (
	// Latency is labeled by the simulated device so mixed-device
	// deployments stay separable in one scrape (Prometheus form:
	// edge_monitor_latency_us_bucket{device="...",le="..."}).
	hMonLatencyVec  = obs.GetHistogramVec("edge.monitor.latency_us", obs.ExpBuckets(1, 2, 24), "device")
	mMonHorizons    = obs.GetCounter("edge.monitor.horizons")
	mMonTransitions = obs.GetCounter("edge.monitor.alarm_transitions")
	mMonDropouts    = obs.GetCounter("edge.monitor.channel_dropouts")
	mMonClamped     = obs.GetCounter("edge.monitor.clamped_features")
	gMonEnergyJ     = obs.GetGauge("edge.monitor.energy_j")
	gMonDeviceS     = obs.GetGauge("edge.monitor.device_infer_s")
)

// Monitor turns a deployment into a continuous fear monitor: raw signal
// chunks stream in, feature maps are extracted over a sliding horizon, and
// an exponentially smoothed fear probability with hysteresis drives an
// alarm — the end-to-end loop the paper's motivating application (a
// wearable that detects fear episodes in real time) runs on-device.
type Monitor struct {
	dep  *Deployment
	norm Normalizer
	ecfg features.ExtractorConfig
	// hLat is the device-labeled latency child, hoisted at construction so
	// the per-horizon path pays no label lookup.
	hLat *obs.Histogram

	// Smoothing and hysteresis parameters.
	Alpha   float64 // EWMA factor for the fear probability (0..1]
	OnThr   float64 // alarm turns on when smoothed prob rises above this
	OffThr  float64 // alarm turns off when it falls below this
	prob    float64
	alarmed bool
	nSeen   int

	// Per-monitor lifetime accounting (the global obs metrics aggregate
	// across every monitor in the process; these are this monitor's own,
	// and are what Reset clears when a session is recycled).
	stats MonitorStats

	// inferJ is the modelled per-horizon energy on this deployment's
	// device (TestS × MPCTestW), accumulated into the energy gauge.
	inferJ float64

	// Fault, when non-nil, arms fault injection on the monitor's ingest
	// path: fault.ChannelDropout blanks one raw sensor channel before
	// extraction, simulating a detached electrode or a dead BLE stream.
	// Nil costs one pointer check per horizon.
	Fault *fault.Injector
}

// MonitorStats is one monitor's own accounting since construction or the
// last Reset.
type MonitorStats struct {
	// Horizons counts processed recording horizons.
	Horizons int
	// Transitions counts alarm state changes.
	Transitions int
	// EnergyJ is the modelled on-device inference energy consumed.
	EnergyJ float64
}

// Normalizer matches features.Normalizer's Apply without importing the
// concrete type, so monitors work with any map normalisation.
type Normalizer interface {
	Apply(m *tensor.Tensor) *tensor.Tensor
}

// NewMonitor wraps a deployment for streaming use.
func NewMonitor(dep *Deployment, norm Normalizer, ecfg features.ExtractorConfig) *Monitor {
	cost := dep.Cost([]int{features.TotalFeatureCount, ecfg.Windows}, 1, 1)
	gMonDeviceS.Set(cost.TestS)
	return &Monitor{
		dep: dep, norm: norm, ecfg: ecfg,
		hLat:  hMonLatencyVec.With(dep.Device.Name),
		Alpha: 0.4, OnThr: 0.7, OffThr: 0.4,
		inferJ: cost.TestEnergyJ,
	}
}

// Event is the monitor's output for one processed recording horizon.
type Event struct {
	// Index counts processed horizons.
	Index int
	// RawProb is the classifier's fear probability for this horizon.
	RawProb float64
	// SmoothProb is the hysteresis input (EWMA of RawProb).
	SmoothProb float64
	// Alarm reports the hysteresis state after this horizon.
	Alarm bool
	// Changed reports whether this horizon toggled the alarm.
	Changed bool
}

// Process classifies one recording horizon and updates the alarm state.
// Non-finite extracted features (the numeric fallout of degenerate or
// injected-faulty signals) are clamped to zero — the feature's post-z-score
// mean — so one bad horizon perturbs, rather than poisons, the EWMA.
func (m *Monitor) Process(rec *features.Recording) (Event, error) {
	start := time.Now()
	if m.Fault.Fire(fault.ChannelDropout) {
		rec = dropChannel(rec, m.Fault.Intn(3))
		mMonDropouts.Inc()
	}
	fm, err := features.ExtractMap(rec, m.ecfg)
	if err != nil {
		return Event{}, fmt.Errorf("edge: monitor extraction: %w", err)
	}
	x := fm
	if m.norm != nil {
		x = m.norm.Apply(fm)
	}
	clampNonFinite(x)
	probs := m.dep.Model.Probabilities(x)
	raw := 0.0
	if len(probs) > 1 {
		raw = probs[1]
	}
	ev := m.Observe(raw)
	m.hLat.Observe(float64(time.Since(start).Microseconds()))
	return ev, nil
}

// Observe updates the smoothing and alarm state with an externally
// computed fear probability and returns the resulting event. It is the
// inference-free half of Process, for deployments where the forward pass
// happens elsewhere (e.g. batched across sessions by a serving layer) but
// the hysteresis and energy accounting still belong to this monitor.
func (m *Monitor) Observe(raw float64) Event {
	if m.nSeen == 0 {
		m.prob = raw
	} else {
		m.prob = m.Alpha*raw + (1-m.Alpha)*m.prob
	}
	m.nSeen++

	changed := false
	if !m.alarmed && m.prob >= m.OnThr {
		m.alarmed = true
		changed = true
	} else if m.alarmed && m.prob <= m.OffThr {
		m.alarmed = false
		changed = true
	}
	mMonHorizons.Inc()
	if changed {
		mMonTransitions.Inc()
	}
	gMonEnergyJ.Add(m.inferJ)
	m.stats.Horizons++
	if changed {
		m.stats.Transitions++
	}
	m.stats.EnergyJ += m.inferJ
	return Event{
		Index:      m.nSeen - 1,
		RawProb:    raw,
		SmoothProb: m.prob,
		Alarm:      m.alarmed,
		Changed:    changed,
	}
}

// Alarmed reports the current alarm state.
func (m *Monitor) Alarmed() bool { return m.alarmed }

// Stats returns this monitor's own accounting since construction or the
// last Reset. The global obs metrics are process-wide aggregates and are
// deliberately not affected by Reset.
func (m *Monitor) Stats() MonitorStats { return m.stats }

// Reset returns the monitor to its just-constructed state so a recycled
// session starts clean: the EWMA history (including the first-sample
// seeding path), the alarm state, and the per-monitor stats all clear
// together. Only the process-global obs metrics keep accumulating.
func (m *Monitor) Reset() {
	m.prob = 0
	m.alarmed = false
	m.nSeen = 0
	m.stats = MonitorStats{}
}

// dropChannel returns a shallow copy of rec with one physiological channel
// (0 BVP, 1 GSR, 2 SKT) zeroed — the injected shape of a sensor dropout.
// The original recording is never mutated.
func dropChannel(rec *features.Recording, ch int) *features.Recording {
	out := *rec
	switch ch % 3 {
	case 0:
		out.BVP = make([]float64, len(rec.BVP))
	case 1:
		out.GSR = make([]float64, len(rec.GSR))
	case 2:
		out.SKT = make([]float64, len(rec.SKT))
	}
	return &out
}

// clampNonFinite zeroes NaN/Inf cells of a normalised feature map in
// place. Zero is the training mean after z-scoring, so a clamped feature
// is a neutral vote rather than a poison pill for the forward pass.
func clampNonFinite(x *tensor.Tensor) {
	for i, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			x.Data[i] = 0
			mMonClamped.Inc()
		}
	}
}

// The concrete features.Normalizer satisfies Normalizer.
var _ Normalizer = (*features.Normalizer)(nil)
