package edge

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

// Property: cost is monotone in fine-tuning work (samples × epochs).
func TestQuickCostMonotone(t *testing.T) {
	m := nn.NewCNNLSTM(nn.FastModelConfig(8))
	in := []int{123, 8}
	f := func(seedA, seedB uint8) bool {
		s1, e1 := int(seedA%20)+1, int(seedB%10)+1
		s2, e2 := s1*2, e1+3
		for _, d := range Devices() {
			c1 := d.Cost(m, in, s1, e1)
			c2 := d.Cost(m, in, s2, e2)
			if c2.RetrainS <= c1.RetrainS {
				return false
			}
			if c1.TestS != c2.TestS { // inference cost is per-sample, FT-independent
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCostZeroFineTune(t *testing.T) {
	m := nn.NewCNNLSTM(nn.FastModelConfig(8))
	c := CoralTPU().Cost(m, []int{123, 8}, 0, 0)
	if c.RetrainS != 0 {
		t.Errorf("zero fine-tuning should cost zero retrain time, got %g", c.RetrainS)
	}
	if c.TestS <= 0 {
		t.Error("inference must still cost time")
	}
}

func TestPowerHierarchy(t *testing.T) {
	for _, d := range Devices() {
		if !(d.IdleW < d.IdleW+d.TestDeltaW && d.IdleW+d.TestDeltaW < d.IdleW+d.TrainDeltaW) {
			t.Errorf("%s: power states not ordered idle < test < train", d.Name)
		}
	}
}
