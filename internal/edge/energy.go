package edge

import (
	"fmt"
	"math"
)

// DutyCycle describes a continuous-monitoring deployment: how often the
// device wakes to classify a new feature-map window, and how often it
// re-personalises. This models the paper's motivating application (the
// Bindi wearable, which monitors continuously for fear responses).
type DutyCycle struct {
	// InferencesPerHour is how many windows are classified per hour.
	InferencesPerHour float64
	// RetrainsPerDay is how many fine-tuning sessions run per day.
	RetrainsPerDay float64
	// RetrainSamples and RetrainEpochs size each fine-tuning session.
	RetrainSamples int
	RetrainEpochs  int
}

// DefaultDutyCycle matches one classification per minute with a nightly
// re-personalisation, a plausible wearable configuration.
func DefaultDutyCycle() DutyCycle {
	return DutyCycle{InferencesPerHour: 60, RetrainsPerDay: 1, RetrainSamples: 8, RetrainEpochs: 10}
}

// EnergyReport is the daily energy budget of a deployment.
type EnergyReport struct {
	Device string
	// ActiveSecPerDay is the total compute-active time per day.
	ActiveSecPerDay float64
	// IdleSecPerDay is the remainder of the day.
	IdleSecPerDay float64
	// EnergyJPerDay is the total daily energy (active + idle).
	EnergyJPerDay float64
	// InferenceJ and RetrainJ break the active energy down.
	InferenceJ float64
	RetrainJ   float64
	// BatteryHours estimates runtime on the given battery.
	BatteryHours float64
}

// EnergyBudget evaluates the daily energy cost of running the deployment's
// model under the given duty cycle, and the resulting runtime on a battery
// of batteryWh watt-hours. Wearables in the paper's application class carry
// 1–4 Wh cells.
func (dep *Deployment) EnergyBudget(inShape []int, dc DutyCycle, batteryWh float64) EnergyReport {
	d := dep.Device
	cost := d.Cost(dep.Model, inShape, dc.RetrainSamples, dc.RetrainEpochs)

	inferSec := cost.TestS * dc.InferencesPerHour * 24
	retrainSec := cost.RetrainS * dc.RetrainsPerDay
	activeSec := inferSec + retrainSec
	daySec := 24 * 3600.0
	idleSec := math.Max(0, daySec-activeSec)

	inferJ := inferSec * cost.MPCTestW
	retrainJ := retrainSec * cost.MPCRetrainW
	idleJ := idleSec * d.IdleW
	total := inferJ + retrainJ + idleJ

	rep := EnergyReport{
		Device:          d.Name,
		ActiveSecPerDay: activeSec,
		IdleSecPerDay:   idleSec,
		EnergyJPerDay:   total,
		InferenceJ:      inferJ,
		RetrainJ:        retrainJ,
	}
	if total > 0 && batteryWh > 0 {
		rep.BatteryHours = batteryWh * 3600 / (total / 24)
	}
	return rep
}

// String renders the report compactly.
func (r EnergyReport) String() string {
	return fmt.Sprintf("%s: %.0f J/day (infer %.0f J, retrain %.0f J), active %.0fs/day, battery %.1f h",
		r.Device, r.EnergyJPerDay, r.InferenceJ, r.RetrainJ, r.ActiveSecPerDay, r.BatteryHours)
}
