package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func tinyModel(seed int64) *nn.Model {
	return nn.NewCNNLSTM(nn.ModelConfig{
		InH: 24, InW: 5, Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 6, Classes: 2, Seed: seed,
	})
}

func TestDeviceProfiles(t *testing.T) {
	devs := Devices()
	if len(devs) != 3 {
		t.Fatalf("%d devices", len(devs))
	}
	if devs[0].Precision != quant.FP64 || devs[1].Precision != quant.INT8 || devs[2].Precision != quant.FP16 {
		t.Error("device precisions wrong")
	}
	for _, d := range devs {
		if d.MACsPerSec <= 0 || d.IdleW <= 0 {
			t.Errorf("%s: non-positive constants", d.Name)
		}
		if d.String() == "" {
			t.Error("empty String()")
		}
	}
}

// TestCostModelMatchesTableII checks that the paper-size model lands near
// the measured Table II latencies and powers (shape targets, ±40 %).
func TestCostModelMatchesTableII(t *testing.T) {
	m := nn.NewCNNLSTM(nn.PaperModelConfig(8))
	in := []int{123, 8}
	// The paper fine-tunes with 20 % of a user's data (≈4 labelled maps);
	// the fast-profile harness runs 15 epochs over them.
	const ftSamples, ftEpochs = 4, 15

	tpu := CoralTPU().Cost(m, in, ftSamples, ftEpochs)
	ncs := PiNCS2().Cost(m, in, ftSamples, ftEpochs)

	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	if !within(tpu.TestS, 0.04731, 0.4) {
		t.Errorf("TPU test time %.4fs, paper 47.31ms", tpu.TestS)
	}
	if !within(ncs.TestS, 0.2397, 0.4) {
		t.Errorf("NCS2 test time %.4fs, paper 239.70ms", ncs.TestS)
	}
	if !within(tpu.RetrainS, 32.48, 0.4) {
		t.Errorf("TPU retrain %.1fs, paper 32.48s", tpu.RetrainS)
	}
	if !within(ncs.RetrainS, 78.52, 0.4) {
		t.Errorf("NCS2 retrain %.1fs, paper 78.52s", ncs.RetrainS)
	}
	// Power rows are direct constants; match tightly.
	if !within(tpu.MPCRetrainW, 1.82, 0.05) || !within(tpu.MPCTestW, 1.64, 0.05) || !within(tpu.MPCIdleW, 1.28, 0.05) {
		t.Errorf("TPU power rows %+v", tpu)
	}
	if !within(ncs.MPCRetrainW, 3.78, 0.05) || !within(ncs.MPCTestW, 3.43, 0.05) || !within(ncs.MPCIdleW, 2.76, 0.05) {
		t.Errorf("NCS2 power rows %+v", ncs)
	}
	// Orderings the paper emphasises.
	if !(tpu.RetrainS < ncs.RetrainS && tpu.TestS < ncs.TestS) {
		t.Error("TPU must be faster than Pi+NCS2")
	}
	gpu := GPU().Cost(m, in, ftSamples, ftEpochs)
	if !(gpu.TestS < tpu.TestS) {
		t.Error("GPU must be fastest")
	}
	if tpu.RetrainEnergyJ <= 0 || tpu.TestEnergyJ <= 0 {
		t.Error("energies must be positive")
	}
}

func TestCostScalesWithModelSize(t *testing.T) {
	small := tinyModel(1)
	big := nn.NewCNNLSTM(nn.PaperModelConfig(8))
	d := CoralTPU()
	cs := d.Cost(small, []int{24, 5}, 10, 5)
	cb := d.Cost(big, []int{123, 8}, 10, 5)
	if cb.TestS <= cs.TestS {
		t.Error("bigger model must cost more per inference")
	}
	if cb.RetrainS <= cs.RetrainS {
		t.Error("bigger model must cost more to retrain")
	}
}

func TestDeployPrecisionAccuracyOrdering(t *testing.T) {
	// Train a model on a separable toy task, then deploy to all three
	// devices: fp64 ≥ fp16 ≥ int8 − small tolerance.
	cfg := nn.ModelConfig{
		InH: 24, InW: 5, Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 6, Classes: 2, Seed: 11,
	}
	m := nn.NewCNNLSTM(cfg)
	rng := rand.New(rand.NewSource(12))
	mk := func(n int) []nn.Sample {
		var out []nn.Sample
		for i := 0; i < n; i++ {
			y := i % 2
			x := tensor.Randn(rng, 0.6, 24, 5)
			shift := -0.5
			if y == 1 {
				shift = 0.5
			}
			for r := 0; r < 8; r++ {
				for c := 0; c < 5; c++ {
					x.Set(x.At(r, c)+shift, r, c)
				}
			}
			out = append(out, nn.Sample{X: x, Y: y})
		}
		return out
	}
	train, test := mk(80), mk(60)
	if _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 15, BatchSize: 8, LR: 3e-3, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	accGPU := Deploy(m, GPU()).Accuracy(test)
	accNCS := Deploy(m, PiNCS2()).Accuracy(test)
	accTPU := Deploy(m, CoralTPU()).Accuracy(test)
	if accGPU < 0.8 {
		t.Fatalf("GPU accuracy %.3f too low for the ordering test to mean anything", accGPU)
	}
	if accNCS < accGPU-0.1 {
		t.Errorf("fp16 accuracy %.3f dropped too far below fp64 %.3f", accNCS, accGPU)
	}
	if accTPU > accGPU+1e-9 && accTPU > accNCS+1e-9 {
		t.Logf("note: int8 (%.3f) beat higher precisions (gpu %.3f, ncs %.3f) on this toy set", accTPU, accGPU, accNCS)
	}
}

func TestDeployDoesNotMutateSource(t *testing.T) {
	m := tinyModel(2)
	rng := rand.New(rand.NewSource(14))
	x := tensor.Randn(rng, 1, 24, 5)
	before := m.Forward(x, false).Clone()
	dep := Deploy(m, CoralTPU())
	var data []nn.Sample
	for i := 0; i < 8; i++ {
		data = append(data, nn.Sample{X: tensor.Randn(rng, 1, 24, 5), Y: i % 2})
	}
	if _, err := dep.FineTune(data, nn.TrainConfig{Epochs: 2, BatchSize: 4, LR: 1e-2, Seed: 14}); err != nil {
		t.Fatal(err)
	}
	after := m.Forward(x, false)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("on-device fine-tuning leaked into the source checkpoint")
		}
	}
}

func TestFineTuneKeepsWeightsQuantised(t *testing.T) {
	m := tinyModel(3)
	dep := Deploy(m, CoralTPU())
	rng := rand.New(rand.NewSource(15))
	var data []nn.Sample
	for i := 0; i < 8; i++ {
		data = append(data, nn.Sample{X: tensor.Randn(rng, 1, 24, 5), Y: i % 2})
	}
	if _, err := dep.FineTune(data, nn.TrainConfig{Epochs: 2, BatchSize: 4, LR: 1e-2, Seed: 15}); err != nil {
		t.Fatal(err)
	}
	// Every weight tensor must be exactly representable in int8 grid:
	// requantising must be a no-op.
	for _, p := range dep.Model.Params() {
		before := p.W.Clone()
		quant.FakeQuant(p.W, quant.INT8)
		for i := range before.Data {
			if before.Data[i] != p.W.Data[i] {
				t.Fatalf("weight %s not on the int8 grid after fine-tune", p.Name)
			}
		}
	}
}

func TestFineTuneErrors(t *testing.T) {
	dep := Deploy(tinyModel(4), CoralTPU())
	if _, err := dep.FineTune(nil, nn.TrainConfig{}); err == nil {
		t.Error("want error for empty data")
	}
}

func TestDeploymentCostDelegates(t *testing.T) {
	dep := Deploy(tinyModel(5), PiNCS2())
	c := dep.Cost([]int{24, 5}, 10, 5)
	if c.Device != "Pi + NCS2" || c.TestS <= 0 {
		t.Errorf("cost %+v", c)
	}
}
