package edge

import (
	"math/rand"
	"testing"
)

// TestMonitorTelemetry checks the registry accounting the monitor feeds:
// one latency observation per horizon, a transition count matching the
// Changed events, and a monotonically growing modelled-energy gauge.
func TestMonitorTelemetry(t *testing.T) {
	dep, norm, ecfg := monitorFixture(t)
	mon := NewMonitor(dep, norm, ecfg)
	rng := rand.New(rand.NewSource(26))

	horizons0 := mMonHorizons.Value()
	hLat := hMonLatencyVec.With(dep.Device.Name)
	latCount0 := hLat.Count()
	trans0 := mMonTransitions.Value()
	energy0 := gMonEnergyJ.Value()

	transitions := 0
	const n = 10
	for i := 0; i < n; i++ {
		ev, err := mon.Process(synthMonitorRec(rng, i >= 3 && i < 7, 18))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Changed {
			transitions++
		}
	}

	if got := mMonHorizons.Value() - horizons0; got != n {
		t.Errorf("horizon counter += %d, want %d", got, n)
	}
	if got := hLat.Count() - latCount0; got != n {
		t.Errorf("latency histogram += %d observations, want %d", got, n)
	}
	if got := mMonTransitions.Value() - trans0; got != int64(transitions) {
		t.Errorf("transition counter += %d, want %d", got, transitions)
	}
	if got := gMonEnergyJ.Value() - energy0; got <= 0 {
		t.Errorf("energy gauge += %g J, want > 0", got)
	}
	if hLat.Quantile(0.95) < hLat.Quantile(0.50) {
		t.Error("p95 latency below p50")
	}
	if gMonDeviceS.Value() <= 0 {
		t.Error("modelled per-inference time gauge not set")
	}
}
