package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestEnergyBudgetBasics(t *testing.T) {
	m := nn.NewCNNLSTM(nn.PaperModelConfig(8))
	dc := DefaultDutyCycle()
	in := []int{123, 8}

	var reports []EnergyReport
	for _, dev := range Devices() {
		dep := Deploy(m, dev)
		rep := dep.EnergyBudget(in, dc, 2.0)
		reports = append(reports, rep)
		if rep.EnergyJPerDay <= 0 {
			t.Errorf("%s: non-positive daily energy", dev.Name)
		}
		if rep.ActiveSecPerDay+rep.IdleSecPerDay > 24*3600+1 {
			t.Errorf("%s: day has too many seconds", dev.Name)
		}
		if rep.BatteryHours <= 0 {
			t.Errorf("%s: battery hours %g", dev.Name, rep.BatteryHours)
		}
		if rep.String() == "" {
			t.Error("empty String")
		}
	}
	// The TPU platform idles lower than the Pi+NCS2 → longer battery life.
	tpu, ncs := reports[1], reports[2]
	if tpu.BatteryHours <= ncs.BatteryHours {
		t.Errorf("TPU battery %f h should beat NCS2 %f h", tpu.BatteryHours, ncs.BatteryHours)
	}
	// Idle dominates at 60 inferences/hour for all edge platforms.
	if tpu.ActiveSecPerDay > 0.2*24*3600 {
		t.Errorf("TPU active fraction implausibly high: %f s", tpu.ActiveSecPerDay)
	}
}

func TestEnergyBudgetScalesWithRate(t *testing.T) {
	m := nn.NewCNNLSTM(nn.PaperModelConfig(8))
	dep := Deploy(m, PiNCS2())
	in := []int{123, 8}
	low := dep.EnergyBudget(in, DutyCycle{InferencesPerHour: 6, RetrainsPerDay: 0, RetrainSamples: 1, RetrainEpochs: 1}, 2)
	high := dep.EnergyBudget(in, DutyCycle{InferencesPerHour: 600, RetrainsPerDay: 0, RetrainSamples: 1, RetrainEpochs: 1}, 2)
	if high.EnergyJPerDay <= low.EnergyJPerDay {
		t.Error("more inferences must cost more energy")
	}
	if high.BatteryHours >= low.BatteryHours {
		t.Error("more inferences must shorten battery life")
	}
}

// trainedMonitorModel builds a model that fires on high-GSR windows by
// training on synthetic maps with a planted signature.
func monitorFixture(t *testing.T) (*Deployment, *features.Normalizer, features.ExtractorConfig) {
	t.Helper()
	cfg := nn.ModelConfig{
		InH: features.TotalFeatureCount, InW: 2,
		Conv1: 2, Conv2: 3, K1H: 5, K1W: 3, K2H: 3, K2W: 3,
		Pool1: 4, Pool2: 3, LSTMHidden: 8, Classes: 2, Seed: 21,
	}
	m := nn.NewCNNLSTM(cfg)
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 2}

	// Build labelled recordings: "fear" = fast strong pulses + SCR bursts.
	rng := rand.New(rand.NewSource(22))
	var recs []*features.Recording
	var labels []int
	for i := 0; i < 40; i++ {
		fear := i%2 == 1
		recs = append(recs, synthMonitorRec(rng, fear, 18))
		if fear {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	var maps []*tensor.Tensor
	for _, r := range recs {
		fm, err := features.ExtractMap(r, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		maps = append(maps, fm)
	}
	norm := features.FitNormalizer(maps)
	var data []nn.Sample
	for i, fm := range maps {
		data = append(data, nn.Sample{X: norm.Apply(fm), Y: labels[i]})
	}
	if _, err := nn.Train(m, data, nn.TrainConfig{Epochs: 12, BatchSize: 8, LR: 3e-3, GradClip: 5, Seed: 23}); err != nil {
		t.Fatal(err)
	}
	return Deploy(m, GPU()), norm, ecfg
}

// synthMonitorRec renders a simple recording whose "fear" condition has a
// markedly higher heart rate and GSR level.
func synthMonitorRec(rng *rand.Rand, fear bool, durSec float64) *features.Recording {
	bvpFs, gsrFs, sktFs := 64.0, 8.0, 4.0
	hr := 1.1
	gsrLevel := 2.0
	if fear {
		hr = 1.9
		gsrLevel = 6.0
	}
	nb := int(durSec * bvpFs)
	bvp := make([]float64, nb)
	for i := range bvp {
		ph := math.Mod(float64(i)/bvpFs*hr, 1)
		bvp[i] = math.Exp(-40*(ph-0.3)*(ph-0.3)) + 0.03*rng.NormFloat64()
	}
	ng := int(durSec * gsrFs)
	gsr := make([]float64, ng)
	for i := range gsr {
		gsr[i] = gsrLevel + 0.05*rng.NormFloat64()
	}
	ns := int(durSec * sktFs)
	skt := make([]float64, ns)
	for i := range skt {
		skt[i] = 33 + 0.02*rng.NormFloat64()
	}
	return &features.Recording{BVP: bvp, BVPFs: bvpFs, GSR: gsr, GSRFs: gsrFs, SKT: skt, SKTFs: sktFs}
}

func TestMonitorAlarmCycle(t *testing.T) {
	dep, norm, ecfg := monitorFixture(t)
	mon := NewMonitor(dep, norm, ecfg)
	rng := rand.New(rand.NewSource(24))

	// Calm phase: no alarm.
	for i := 0; i < 4; i++ {
		ev, err := mon.Process(synthMonitorRec(rng, false, 18))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Alarm {
			t.Fatalf("alarm during calm phase at %d (prob %.2f)", i, ev.SmoothProb)
		}
	}
	// Fear phase: alarm must engage.
	engaged := false
	for i := 0; i < 6; i++ {
		ev, err := mon.Process(synthMonitorRec(rng, true, 18))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Alarm {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("alarm never engaged during fear phase")
	}
	// Recovery: alarm must clear.
	cleared := false
	for i := 0; i < 8; i++ {
		ev, err := mon.Process(synthMonitorRec(rng, false, 18))
		if err != nil {
			t.Fatal(err)
		}
		if !ev.Alarm {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("alarm never cleared after recovery")
	}
	mon.Reset()
	if mon.Alarmed() {
		t.Error("Reset must clear the alarm")
	}
}

func TestMonitorHysteresisStability(t *testing.T) {
	dep, norm, ecfg := monitorFixture(t)
	mon := NewMonitor(dep, norm, ecfg)
	rng := rand.New(rand.NewSource(25))
	// Alternating borderline inputs: the alarm must not toggle every step.
	toggles := 0
	for i := 0; i < 12; i++ {
		ev, err := mon.Process(synthMonitorRec(rng, i%2 == 0, 18))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Changed {
			toggles++
		}
	}
	if toggles > 4 {
		t.Errorf("alarm toggled %d times in 12 alternating windows; hysteresis too weak", toggles)
	}
}

func TestMonitorErrorPropagates(t *testing.T) {
	dep, norm, ecfg := monitorFixture(t)
	mon := NewMonitor(dep, norm, ecfg)
	short := &features.Recording{BVP: make([]float64, 10), BVPFs: 64}
	if _, err := mon.Process(short); err == nil {
		t.Error("want error for too-short recording")
	}
}
