package edge

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Deployment is a model loaded onto a simulated device.
type Deployment struct {
	Device Device
	// Model is the device-precision copy (weights fake-quantised,
	// activation quantisers inserted). The source checkpoint is untouched.
	Model *nn.Model
}

// Deploy converts a trained checkpoint to device precision with dynamic
// activation scaling (an idealisation; prefer DeployCalibrated when
// representative inputs are available).
func Deploy(m *nn.Model, d Device) *Deployment {
	return &Deployment{Device: d, Model: quant.DeployModel(m, d.Precision)}
}

// DeployCalibrated converts a trained checkpoint to device precision and,
// for int8 devices, freezes the activation-quantiser scales from the
// calibration inputs (post-training static quantisation, as the Coral
// toolchain performs at model conversion).
func DeployCalibrated(m *nn.Model, d Device, calib []*tensor.Tensor) *Deployment {
	dep := Deploy(m, d)
	if len(calib) > 0 {
		quant.Calibrate(dep.Model, calib)
	}
	return dep
}

// Predict runs one on-device inference.
func (dep *Deployment) Predict(x *nn.Sample) int { return dep.Model.Predict(x.X) }

// Accuracy evaluates the deployed model on data.
func (dep *Deployment) Accuracy(data []nn.Sample) float64 {
	return nn.Accuracy(dep.Model, data)
}

// FineTune re-trains the deployed model on-device with the user's labelled
// samples. Weights are re-quantised to device precision after every epoch
// (the accelerator can only store device-precision weights), which is what
// degrades fine-tuning quality on the int8 TPU relative to the GPU, as in
// Table II.
func (dep *Deployment) FineTune(data []nn.Sample, cfg nn.TrainConfig) (*nn.TrainResult, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("edge: no fine-tuning data")
	}
	p := dep.Device.Precision
	prev := cfg.EpochEnd
	cfg.EpochEnd = func(epoch int, m *nn.Model) {
		quant.RequantizeWeights(m, p)
		if prev != nil {
			prev(epoch, m)
		}
	}
	res, err := nn.Train(dep.Model, data, cfg)
	if err != nil {
		return nil, err
	}
	quant.RequantizeWeights(dep.Model, p)
	return res, nil
}

// Cost reports the simulated Table II time/power block for this deployment
// fine-tuning ftSamples samples over ftEpochs epochs.
func (dep *Deployment) Cost(inShape []int, ftSamples, ftEpochs int) CostReport {
	return dep.Device.Cost(dep.Model, inShape, ftSamples, ftEpochs)
}
