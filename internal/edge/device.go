// Package edge simulates the paper's three execution platforms — the GPU
// training baseline, the Coral Edge TPU Dev Board (8-bit) and the Raspberry
// Pi + Intel Movidius NCS2 (fp16) — as substitutes for the physical
// hardware (see DESIGN.md). Each device is a numeric precision plus an
// analytic latency/power model driven by the deployed model's actual
// multiply-accumulate counts, so Table II's time and power rows respond to
// architecture changes the way the hardware would.
package edge

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
)

// Device describes one execution platform.
type Device struct {
	// Name identifies the platform in reports.
	Name string
	// Precision is the arithmetic the platform executes.
	Precision quant.Precision
	// MACsPerSec is the effective sustained multiply-accumulate throughput
	// for this model class (far below peak silicon numbers: small models on
	// these runtimes are overhead-dominated, which the paper's latencies
	// reflect).
	MACsPerSec float64
	// InferOverheadS is the fixed per-inference cost (interpreter dispatch,
	// USB transfer on the NCS2, tensor (de)quantisation).
	InferOverheadS float64
	// EpochOverheadS is the fixed per-epoch cost of on-device re-training
	// (data pipeline, weight IO, graph rebuild).
	EpochOverheadS float64
	// IdleW is the platform's quiescent power ("Baseline" row in Table II).
	IdleW float64
	// TrainDeltaW and TestDeltaW are the additional active power draws
	// during re-training and inference.
	TrainDeltaW float64
	TestDeltaW  float64
}

// GPU returns the cloud/workstation baseline platform. It computes in
// native precision; its cost constants represent a desktop-class card and
// are reported for completeness (the paper leaves these cells blank).
func GPU() Device {
	return Device{
		Name:           "GPU",
		Precision:      quant.FP64,
		MACsPerSec:     2e9,
		InferOverheadS: 0.002,
		EpochOverheadS: 0.05,
		IdleW:          18,
		TrainDeltaW:    95,
		TestDeltaW:     45,
	}
}

// CoralTPU returns the Coral Edge TPU Dev Board model: int8 arithmetic,
// fast accelerator, low power. Constants are calibrated so the paper-size
// CNN-LSTM lands near Table II's measurements (≈47 ms inference, ≈32 s
// re-training, 1.28/1.64/1.82 W idle/test/train).
func CoralTPU() Device {
	return Device{
		Name:           "Coral TPU",
		Precision:      quant.INT8,
		MACsPerSec:     1.5e8,
		InferOverheadS: 0.040,
		EpochOverheadS: 2.1,
		IdleW:          1.28,
		TrainDeltaW:    0.54,
		TestDeltaW:     0.36,
	}
}

// PiNCS2 returns the Raspberry Pi + Intel Movidius NCS2 model: fp16
// arithmetic over a USB-attached accelerator, slower and hungrier.
// Calibrated to Table II (≈240 ms inference, ≈79 s re-training,
// 2.76/3.43/3.78 W idle/test/train).
func PiNCS2() Device {
	return Device{
		Name:           "Pi + NCS2",
		Precision:      quant.FP16,
		MACsPerSec:     2.5e7,
		InferOverheadS: 0.200,
		EpochOverheadS: 5.0,
		IdleW:          2.76,
		TrainDeltaW:    1.02,
		TestDeltaW:     0.67,
	}
}

// Devices returns the three platforms in the order Table II reports them.
func Devices() []Device { return []Device{GPU(), CoralTPU(), PiNCS2()} }

// CostReport is the simulated Table II bottom block for one device.
type CostReport struct {
	Device string
	// RetrainS is the mean time consumption (MTC) of on-device fine-tuning
	// to convergence, in seconds.
	RetrainS float64
	// TestS is the MTC of one inference (feature map in → class out), in
	// seconds.
	TestS float64
	// MPCRetrainW / MPCTestW / MPCIdleW are the mean power consumptions.
	MPCRetrainW float64
	MPCTestW    float64
	MPCIdleW    float64
	// RetrainEnergyJ and TestEnergyJ are the corresponding energies.
	RetrainEnergyJ float64
	TestEnergyJ    float64
}

// Cost evaluates the analytic latency/power model for fine-tuning
// ftSamples samples over ftEpochs epochs and for single-sample inference,
// given the deployed model and its input shape.
func (d Device) Cost(m *nn.Model, inShape []int, ftSamples, ftEpochs int) CostReport {
	macs := float64(m.TotalFLOPs(inShape))
	// One training step ≈ forward + backward ≈ 3× forward MACs.
	trainMACs := 3 * macs * float64(ftSamples) * float64(ftEpochs)
	retrain := trainMACs/d.MACsPerSec + float64(ftEpochs)*d.EpochOverheadS
	test := macs/d.MACsPerSec + d.InferOverheadS
	r := CostReport{
		Device:      d.Name,
		RetrainS:    retrain,
		TestS:       test,
		MPCRetrainW: d.IdleW + d.TrainDeltaW,
		MPCTestW:    d.IdleW + d.TestDeltaW,
		MPCIdleW:    d.IdleW,
	}
	r.RetrainEnergyJ = r.RetrainS * r.MPCRetrainW
	r.TestEnergyJ = r.TestS * r.MPCTestW
	return r
}

// String renders the device for logs.
func (d Device) String() string {
	return fmt.Sprintf("%s(%v, %.3g MAC/s)", d.Name, d.Precision, d.MACsPerSec)
}
