package quant

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestDeployAllArchitectures: quantised deployment must work for every
// classifier architecture, not just the Fig. 2 CNN-LSTM.
func TestDeployAllArchitectures(t *testing.T) {
	for _, arch := range []nn.Arch{nn.ArchCNNLSTM, nn.ArchCNNOnly, nn.ArchLSTMOnly} {
		cfg := nn.ModelConfig{
			InH: 24, InW: 5, Conv1: 2, Conv2: 3,
			K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
			LSTMHidden: 6, Classes: 2, Seed: 5, Arch: arch,
		}
		m := nn.NewModel(cfg)
		rng := rand.New(rand.NewSource(6))
		x := tensor.Randn(rng, 1, 24, 5)
		for _, p := range []Precision{FP64, FP16, INT8} {
			dep := DeployModel(m, p)
			out := dep.Forward(x, false)
			if out.Size() != 2 {
				t.Errorf("%s @ %v: output size %d", arch, p, out.Size())
			}
		}
	}
}

// TestQuantErrorSmallRelativeToWeights: int8 per-tensor quantisation of
// realistic weight tensors keeps mean error well under the weight scale.
func TestQuantErrorSmallRelativeToWeights(t *testing.T) {
	m := nn.NewCNNLSTM(nn.PaperModelConfig(8))
	for _, p := range m.Params() {
		if p.W.Size() < 8 {
			continue
		}
		std := p.W.Std()
		if std == 0 {
			continue
		}
		err8 := MeanQuantError(p.W, INT8)
		if err8 > std/5 {
			t.Errorf("%s: int8 error %g vs weight std %g", p.Name, err8, std)
		}
		err16 := MeanQuantError(p.W, FP16)
		if err16 > err8 {
			t.Errorf("%s: fp16 error %g exceeds int8 %g", p.Name, err16, err8)
		}
	}
}

// TestFloat16BitPatterns: spot-check exact binary16 encodings.
func TestFloat16BitPatterns(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-2, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
	}
	for _, c := range cases {
		if got := Float32ToFloat16(c.f); got != c.bits {
			t.Errorf("Float32ToFloat16(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := Float16ToFloat32(c.bits); back != c.f {
			t.Errorf("Float16ToFloat32(%#04x) = %g, want %g", c.bits, back, c.f)
		}
	}
}

func TestCalibrateFreezesScales(t *testing.T) {
	m := nn.NewCNNLSTM(nn.ModelConfig{
		InH: 24, InW: 5, Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 6, Classes: 2, Seed: 8,
	})
	dep := DeployModel(m, INT8)
	rng := rand.New(rand.NewSource(9))
	var calib []*tensor.Tensor
	for i := 0; i < 12; i++ {
		calib = append(calib, tensor.Randn(rng, 1, 24, 5))
	}
	n := Calibrate(dep, calib)
	if n == 0 {
		t.Fatal("no quantisers calibrated")
	}
	for _, l := range dep.Layers {
		if aq, ok := l.(*ActQuant); ok {
			if aq.Scale <= 0 {
				t.Fatal("calibration left a dynamic scale")
			}
		}
	}
	// Outlier activations must saturate: feed a 10x-larger input and check
	// the first quantiser's output is clamped to ±127·scale... observable
	// end-to-end: output must stay finite and the deployed model must still
	// produce 2 logits.
	big := tensor.Randn(rng, 10, 24, 5)
	out := dep.Forward(big, false)
	if out.Size() != 2 {
		t.Fatal("calibrated model broken")
	}
	// FP64 deployment has nothing to calibrate.
	if Calibrate(DeployModel(m, FP64), calib) != 0 {
		t.Error("FP64 deployment should have no int8 quantisers")
	}
}

func TestCalibratedQuantSaturates(t *testing.T) {
	aq := NewActQuant(INT8)
	aq.Scale = 0.01 // representable range ±1.27
	x := tensor.FromSlice([]float64{0.5, 2.0, -3.0}, 3)
	out := aq.Forward(x, false)
	if out.Data[0] != 0.5 {
		t.Errorf("in-range value %g, want 0.5", out.Data[0])
	}
	if out.Data[1] != 1.27 {
		t.Errorf("positive outlier %g, want saturated 1.27", out.Data[1])
	}
	if out.Data[2] != -1.28 {
		t.Errorf("negative outlier %g, want saturated -1.28", out.Data[2])
	}
}
