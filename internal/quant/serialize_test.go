package quant

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestQuantizedCheckpointBitwiseRoundTrip: saving a weight-quantised model
// and loading it back yields bitwise identical predictions, for every
// device precision. Quantised values are exactly representable in float64
// and the checkpoint stores raw float64 bits, so any drift here is a
// serialisation bug, not rounding.
func TestQuantizedCheckpointBitwiseRoundTrip(t *testing.T) {
	cfg := nn.ModelConfig{
		InH: 24, InW: 5, Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 6, Classes: 2, Seed: 11,
	}
	m := nn.NewModel(cfg)
	rng := rand.New(rand.NewSource(12))
	inputs := make([]*tensor.Tensor, 8)
	for i := range inputs {
		inputs[i] = tensor.Randn(rng, 1, 24, 5)
	}

	for _, p := range []Precision{FP64, FP16, INT8} {
		qm := QuantizeModelWeights(m, p)
		want := make([][]float64, len(inputs))
		for i, x := range inputs {
			want[i] = qm.Probabilities(x)
		}

		var buf bytes.Buffer
		if err := qm.Save(&buf); err != nil {
			t.Fatalf("%v: Save: %v", p, err)
		}
		loaded, err := nn.Load(&buf)
		if err != nil {
			t.Fatalf("%v: Load: %v", p, err)
		}

		for i, x := range inputs {
			got := loaded.Probabilities(x)
			if len(got) != len(want[i]) {
				t.Fatalf("%v input %d: %d probs, want %d", p, i, len(got), len(want[i]))
			}
			for j := range want[i] {
				if got[j] != want[i][j] {
					t.Fatalf("%v input %d class %d: reloaded %v ≠ original %v",
						p, i, j, got[j], want[i][j])
				}
			}
		}
	}
}
