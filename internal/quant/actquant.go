package quant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ActQuant is a layer that fake-quantises activations flowing through it,
// modelling a device that computes in reduced precision rather than merely
// storing weights in it. Backward uses the straight-through estimator
// (gradients pass unchanged), the standard choice for quantisation-aware
// training.
//
// For INT8, the quantiser has two modes. By default the scale is dynamic
// (recomputed per tensor) — an idealisation. After Calibrate, the scale is
// frozen from the calibration data's activation range, and activations
// outside it saturate, as on real int8 accelerators whose scales are fixed
// at conversion time. Frozen scales are what reproduce the Coral TPU's
// accuracy drop in Table II.
type ActQuant struct {
	P Precision
	// Scale, when positive, is the frozen int8 step size. Zero means
	// dynamic scaling.
	Scale float64

	calibrating bool
	maxima      []float64 // per-forward absmax during calibration
}

// NewActQuant builds an activation quantiser.
func NewActQuant(p Precision) *ActQuant { return &ActQuant{P: p} }

// Name implements nn.Layer.
func (a *ActQuant) Name() string { return fmt.Sprintf("ActQuant(%v)", a.P) }

// Params implements nn.Layer.
func (a *ActQuant) Params() []*nn.Param { return nil }

// OutShape implements nn.Layer.
func (a *ActQuant) OutShape(in []int) []int { return append([]int(nil), in...) }

// FLOPs implements nn.Layer.
func (a *ActQuant) FLOPs(in []int) int64 { return 0 }

// Forward implements nn.Layer.
func (a *ActQuant) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if a.P == FP64 {
		return x
	}
	if a.P == INT8 {
		if a.calibrating {
			a.maxima = append(a.maxima, x.AbsMax())
			return x
		}
		if a.Scale > 0 {
			out := x.Clone()
			for i, v := range out.Data {
				q := math.RoundToEven(v / a.Scale)
				if q > 127 {
					q = 127
				}
				if q < -128 {
					q = -128
				}
				out.Data[i] = q * a.Scale
			}
			return out
		}
	}
	return FakeQuant(x.Clone(), a.P)
}

// Backward implements nn.Layer (straight-through estimator).
func (a *ActQuant) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// DeployModel returns a copy of m prepared for a device of the given
// precision: weights fake-quantised and an activation quantiser inserted
// after every computational layer. FP64 returns a plain clone.
func DeployModel(m *nn.Model, p Precision) *nn.Model {
	c := m.Clone()
	if p == FP64 {
		return c
	}
	QuantizeModelWeights(c, p)
	var layers []nn.Layer
	for _, l := range c.Layers {
		layers = append(layers, l)
		if len(l.Params()) > 0 { // quantise after every parametric layer
			layers = append(layers, NewActQuant(p))
		}
	}
	c.Layers = layers
	return c
}

// RequantizeWeights re-applies weight quantisation, used after each
// fine-tuning step on a quantised device so weights stay representable.
func RequantizeWeights(m *nn.Model, p Precision) {
	if p == FP64 {
		return
	}
	QuantizeModelWeights(m, p)
}

// Calibrate freezes every ActQuant scale in the deployed model from the
// activation ranges observed on the calibration inputs (post-training
// static quantisation). Scales use percentile range selection — the
// standard converter practice (outliers are sacrificed to keep resolution
// for the bulk of the distribution), which is precisely what makes strong
// physiological responses saturate on-device and costs the int8 platform
// accuracy in Table II. Returns the number of quantisers calibrated.
func Calibrate(m *nn.Model, calib []*tensor.Tensor) int {
	const rangePercentile = 80 // keep resolution for the central mass
	var qs []*ActQuant
	for _, l := range m.Layers {
		if aq, ok := l.(*ActQuant); ok && aq.P == INT8 {
			aq.calibrating = true
			aq.maxima = nil
			qs = append(qs, aq)
		}
	}
	if len(qs) == 0 {
		return 0
	}
	for _, x := range calib {
		m.Forward(x, false)
	}
	for _, aq := range qs {
		aq.calibrating = false
		if len(aq.maxima) > 0 {
			sort.Float64s(aq.maxima)
			idx := int(float64(len(aq.maxima)-1) * rangePercentile / 100)
			if r := aq.maxima[idx]; r > 0 {
				aq.Scale = r / 127
			}
		}
		aq.maxima = nil
	}
	return len(qs)
}
