package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestFP16KnownValues(t *testing.T) {
	cases := map[float64]float64{
		0:       0,
		1:       1,
		-1:      -1,
		2:       2,
		0.5:     0.5,
		65504:   65504,          // max finite fp16
		1.0 / 3: 0.333251953125, // nearest fp16 to 1/3
	}
	for in, want := range cases {
		if got := RoundFP16(in); got != want {
			t.Errorf("RoundFP16(%g) = %.13g, want %.13g", in, got, want)
		}
	}
}

func TestFP16Overflow(t *testing.T) {
	if !math.IsInf(RoundFP16(1e6), 1) {
		t.Error("1e6 should overflow fp16 to +Inf")
	}
	if !math.IsInf(RoundFP16(-1e6), -1) {
		t.Error("-1e6 should overflow fp16 to -Inf")
	}
}

func TestFP16Subnormal(t *testing.T) {
	// Smallest positive fp16 subnormal is 2^-24 ≈ 5.96e-8.
	sub := math.Pow(2, -24)
	if got := RoundFP16(sub); got != sub {
		t.Errorf("subnormal %g rounded to %g", sub, got)
	}
	if got := RoundFP16(math.Pow(2, -30)); got != 0 {
		t.Errorf("tiny value should underflow to 0, got %g", got)
	}
}

func TestFP16NaN(t *testing.T) {
	if !math.IsNaN(RoundFP16(math.NaN())) {
		t.Error("NaN should round to NaN")
	}
}

// Property: RoundFP16 is idempotent and monotone error-bounded (relative
// error ≤ 2^-11 for normal range).
func TestQuickFP16Properties(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		// Clamp into the fp16 normal range.
		x = math.Mod(x, 60000)
		r := RoundFP16(x)
		if RoundFP16(r) != r {
			return false // not idempotent
		}
		if math.Abs(x) >= math.Pow(2, -14) && !math.IsInf(r, 0) {
			if math.Abs(r-x) > math.Abs(x)*math.Pow(2, -11)+1e-30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestInt8RoundTrip(t *testing.T) {
	data := []float64{-1, -0.5, 0, 0.25, 1}
	q, scale := QuantizeInt8(data)
	if q[4] != 127 || q[0] != -127 {
		t.Errorf("q = %v", q)
	}
	d := DequantizeInt8(q, scale)
	for i, v := range data {
		if math.Abs(d[i]-v) > scale {
			t.Errorf("dequant[%d] = %g, want ≈%g", i, d[i], v)
		}
	}
}

func TestInt8ZeroTensor(t *testing.T) {
	q, scale := QuantizeInt8([]float64{0, 0, 0})
	if scale != 1 {
		t.Errorf("zero scale %g", scale)
	}
	d := DequantizeInt8(q, scale)
	for _, v := range d {
		if v != 0 {
			t.Error("zero tensor must round-trip to zero")
		}
	}
}

// Property: int8 quantisation error is bounded by scale/2 per element.
func TestQuickInt8ErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 10
		}
		q, scale := QuantizeInt8(data)
		d := DequantizeInt8(q, scale)
		for i := range data {
			if math.Abs(d[i]-data[i]) > scale/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFakeQuantPrecisionOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 1000)
	errNone := MeanQuantError(x, FP64)
	errFP16 := MeanQuantError(x, FP16)
	errINT8 := MeanQuantError(x, INT8)
	if errNone != 0 {
		t.Errorf("FP64 error %g", errNone)
	}
	if !(errINT8 > errFP16) {
		t.Errorf("int8 error %g should exceed fp16 error %g", errINT8, errFP16)
	}
	if errFP16 <= 0 {
		t.Errorf("fp16 error %g should be positive", errFP16)
	}
}

func TestFakeQuantInPlace(t *testing.T) {
	x := tensor.FromSlice([]float64{1.0 / 3}, 1)
	FakeQuant(x, FP16)
	if x.Data[0] == 1.0/3 {
		t.Error("FakeQuant must modify in place")
	}
}

func TestPrecisionString(t *testing.T) {
	if FP64.String() != "fp64" || FP16.String() != "fp16" || INT8.String() != "int8" {
		t.Error("Precision strings wrong")
	}
}

func tinyModel() *nn.Model {
	return nn.NewCNNLSTM(nn.ModelConfig{
		InH: 24, InW: 5, Conv1: 2, Conv2: 3,
		K1H: 3, K1W: 3, K2H: 3, K2W: 3, Pool1: 2, Pool2: 2,
		LSTMHidden: 6, Classes: 2, Seed: 3,
	})
}

func TestQuantizeModelWeights(t *testing.T) {
	m := tinyModel()
	orig := m.Snapshot()
	QuantizeModelWeights(m, INT8)
	changed := false
	for i, p := range m.Params() {
		for j := range p.W.Data {
			if p.W.Data[j] != orig[i].Data[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("int8 weight quantisation changed nothing")
	}
}

func TestDeployModelOutputsDiffer(t *testing.T) {
	m := tinyModel()
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 24, 5)

	fp64 := DeployModel(m, FP64)
	fp16 := DeployModel(m, FP16)
	int8m := DeployModel(m, INT8)

	a := m.Forward(x, false)
	b := fp64.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("FP64 deployment must be exact")
		}
	}
	c := fp16.Forward(x, false)
	d := int8m.Forward(x, false)
	d16 := math.Abs(c.Data[0]-a.Data[0]) + math.Abs(c.Data[1]-a.Data[1])
	d8 := math.Abs(d.Data[0]-a.Data[0]) + math.Abs(d.Data[1]-a.Data[1])
	if d8 <= d16 {
		t.Errorf("int8 logit error %g should exceed fp16 %g", d8, d16)
	}
	// Deployment must not mutate the source model.
	a2 := m.Forward(x, false)
	if a2.Data[0] != a.Data[0] {
		t.Error("DeployModel mutated the source model")
	}
}

func TestDeployModelInsertsActQuant(t *testing.T) {
	m := tinyModel()
	dep := DeployModel(m, INT8)
	count := 0
	for _, l := range dep.Layers {
		if _, ok := l.(*ActQuant); ok {
			count++
		}
	}
	// conv1, conv2, lstm, dense → 4 parametric layers.
	if count != 4 {
		t.Errorf("inserted %d ActQuant layers, want 4", count)
	}
	if len(DeployModel(m, FP64).Layers) != len(m.Layers) {
		t.Error("FP64 deployment must not insert layers")
	}
}

func TestActQuantStraightThrough(t *testing.T) {
	a := NewActQuant(INT8)
	rng := rand.New(rand.NewSource(4))
	x := tensor.Randn(rng, 1, 10)
	a.Forward(x, true)
	g := tensor.Randn(rng, 1, 10)
	back := a.Backward(g)
	for i := range g.Data {
		if back.Data[i] != g.Data[i] {
			t.Fatal("ActQuant backward must be identity (straight-through)")
		}
	}
}

func TestDeployedModelTrainable(t *testing.T) {
	// Fine-tuning through ActQuant layers must not panic and must change
	// the weights.
	m := tinyModel()
	dep := DeployModel(m, INT8)
	rng := rand.New(rand.NewSource(5))
	var data []nn.Sample
	for i := 0; i < 8; i++ {
		data = append(data, nn.Sample{X: tensor.Randn(rng, 1, 24, 5), Y: i % 2})
	}
	before := dep.Snapshot()
	if _, err := nn.Train(dep, data, nn.TrainConfig{Epochs: 2, BatchSize: 4, LR: 1e-2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	RequantizeWeights(dep, INT8)
	changed := false
	for i, p := range dep.Params() {
		for j := range p.W.Data {
			if p.W.Data[j] != before[i].Data[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("fine-tuning a deployed model changed nothing")
	}
}
