// Package quant implements the numeric-precision machinery of the edge
// deployment experiments: IEEE binary16 (fp16) rounding as executed by the
// Intel NCS2, symmetric per-tensor int8 quantisation as executed by the
// Coral Edge TPU, fake-quantisation of model weights and activations, and a
// straight-through activation quantiser layer enabling on-device
// fine-tuning under reduced precision.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Precision enumerates the numeric formats of the paper's three platforms.
type Precision int

// Precision values. FP64 is the native (GPU baseline) format of this
// reproduction; FP16 models the NCS2; INT8 models the Edge TPU.
const (
	FP64 Precision = iota
	FP16
	INT8
)

func (p Precision) String() string {
	switch p {
	case FP64:
		return "fp64"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// RoundFP16 rounds x to the nearest IEEE binary16 value (round-to-nearest-
// even) and returns it as float64. Overflow saturates to ±Inf as the
// hardware does; subnormals are preserved.
func RoundFP16(x float64) float64 {
	return float64(Float16ToFloat32(Float32ToFloat16(float32(x))))
}

// Float32ToFloat16 converts f to its IEEE binary16 bit pattern with
// round-to-nearest-even.
func Float32ToFloat16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	exp := int32((b>>23)&0xFF) - 127 + 15
	mant := b & 0x7FFFFF

	switch {
	case exp >= 0x1F: // overflow or Inf/NaN
		if (b>>23)&0xFF == 0xFF && mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// Subnormal: shift mantissa (with implicit leading 1) right.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// Round-to-nearest-even on ties.
		if mant&(half|(half-1)) == half {
			rounded = mant + half - 1 + (mant>>shift)&1
		}
		return sign | uint16(rounded>>shift)
	default:
		// Normal: round the 23-bit mantissa to 10 bits.
		rounded := mant + 0x0FFF + ((mant >> 13) & 1)
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1F {
				return sign | 0x7C00
			}
		}
		return sign | uint16(exp<<10) | uint16(rounded>>13)
	}
}

// Float16ToFloat32 expands an IEEE binary16 bit pattern to float32.
func Float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// QuantizeInt8 symmetrically quantises data with scale = absmax/127.
// A zero tensor gets scale 1 so dequantisation is exact.
func QuantizeInt8(data []float64) (q []int8, scale float64) {
	absMax := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > absMax {
			absMax = a
		}
	}
	scale = absMax / 127
	if scale == 0 {
		scale = 1
	}
	q = make([]int8, len(data))
	for i, v := range data {
		r := math.RoundToEven(v / scale)
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q[i] = int8(r)
	}
	return q, scale
}

// DequantizeInt8 reverses QuantizeInt8.
func DequantizeInt8(q []int8, scale float64) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = float64(v) * scale
	}
	return out
}

// FakeQuant rounds every element of t through the given precision in place
// and returns t. FP64 is the identity.
func FakeQuant(t *tensor.Tensor, p Precision) *tensor.Tensor {
	switch p {
	case FP64:
		return t
	case FP16:
		for i, v := range t.Data {
			t.Data[i] = RoundFP16(v)
		}
		return t
	case INT8:
		q, scale := QuantizeInt8(t.Data)
		for i, v := range q {
			t.Data[i] = float64(v) * scale
		}
		return t
	default:
		panic(fmt.Sprintf("quant: unknown precision %v", p))
	}
}

// QuantizeModelWeights fake-quantises every parameter of m in place,
// reproducing the precision loss of deploying a float checkpoint to the
// device. Returns m.
func QuantizeModelWeights(m *nn.Model, p Precision) *nn.Model {
	for _, param := range m.Params() {
		FakeQuant(param.W, p)
	}
	return m
}

// MeanQuantError returns the mean absolute element error introduced by
// fake-quantising t at precision p (t is not modified).
func MeanQuantError(t *tensor.Tensor, p Precision) float64 {
	if t.Size() == 0 {
		return 0
	}
	c := t.Clone()
	FakeQuant(c, p)
	s := 0.0
	for i, v := range t.Data {
		s += math.Abs(v - c.Data[i])
	}
	return s / float64(t.Size())
}
