package store

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// IsTransient classifies a store error: transient errors (I/O hiccups,
// injected outages, anything a backend didn't map to a typed error) are
// worth retrying; permanent errors are semantic outcomes retrying cannot
// change — the record is missing, the lease is held by someone else, the
// bytes are corrupt, the store is closed, the write lost its fence, or
// the caller's context is done.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrNotFound),
		errors.Is(err, ErrLocked),
		errors.Is(err, ErrLeaseLost),
		errors.Is(err, ErrCorrupt),
		errors.Is(err, ErrClosed),
		errors.Is(err, ErrFenced),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// RetryConfig bounds the retry decorator's backoff schedule.
type RetryConfig struct {
	// Attempts is the total number of tries per op (first call included).
	// Default 3.
	Attempts int
	// Base is the first retry's backoff; each subsequent retry doubles it.
	// Default 10ms.
	Base time.Duration
	// Cap bounds the per-retry backoff. Default 500ms.
	Cap time.Duration
}

func (c *RetryConfig) fill() {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Base <= 0 {
		c.Base = 10 * time.Millisecond
	}
	if c.Cap <= 0 {
		c.Cap = 500 * time.Millisecond
	}
}

// Retry wraps a Store and re-issues transiently failing ops with capped
// exponential backoff. Permanent errors (see IsTransient) pass through on
// the first attempt; reads and writes alike are safe to retry because
// every Store op is idempotent (puts replace, deletes are no-ops on
// missing keys, PutBlob is content-addressed).
type Retry struct {
	inner Store
	cfg   RetryConfig
}

var mStoreRetries = obs.GetCounterVec("store.retries", "backend", "op")

// WithRetry wraps inner with the given retry policy.
func WithRetry(inner Store, cfg RetryConfig) *Retry {
	cfg.fill()
	return &Retry{inner: inner, cfg: cfg}
}

// Backend reports the inner backend's name: the wrapper is transparent to
// metrics and stats labels.
func (r *Retry) Backend() string { return r.inner.Backend() }

// Stats implements Store.
func (r *Retry) Stats() Stats { return r.inner.Stats() }

// Close implements Store.
func (r *Retry) Close() error { return r.inner.Close() }

// do runs op until it succeeds, fails permanently, attempts are exhausted,
// or ctx is done — whichever comes first.
func (r *Retry) do(ctx context.Context, op string, fn func() error) error {
	backoff := r.cfg.Base
	var err error
	for attempt := 0; attempt < r.cfg.Attempts; attempt++ {
		if attempt > 0 {
			mStoreRetries.With(r.inner.Backend(), op).Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return checkCtx(ctx)
			}
			if backoff *= 2; backoff > r.cfg.Cap {
				backoff = r.cfg.Cap
			}
		}
		if err = fn(); !IsTransient(err) {
			return err
		}
	}
	return err
}

// PutSession implements SessionStore.
func (r *Retry) PutSession(ctx context.Context, id string, data []byte) error {
	return r.do(ctx, "put_session", func() error {
		return r.inner.PutSession(ctx, id, data)
	})
}

// PutSessionFenced implements SessionStore. ErrFenced is permanent — the
// caller's state is stale by construction, retrying cannot change that.
func (r *Retry) PutSessionFenced(ctx context.Context, id string, f Fence, data []byte) error {
	return r.do(ctx, "put_session_fenced", func() error {
		return r.inner.PutSessionFenced(ctx, id, f, data)
	})
}

// GetSession implements SessionStore.
func (r *Retry) GetSession(ctx context.Context, id string) (data []byte, err error) {
	err = r.do(ctx, "get_session", func() error {
		data, err = r.inner.GetSession(ctx, id)
		return err
	})
	return data, err
}

// DeleteSession implements SessionStore.
func (r *Retry) DeleteSession(ctx context.Context, id string) error {
	return r.do(ctx, "delete_session", func() error {
		return r.inner.DeleteSession(ctx, id)
	})
}

// ListSessions implements SessionStore.
func (r *Retry) ListSessions(ctx context.Context) (ids []string, err error) {
	err = r.do(ctx, "list_sessions", func() error {
		ids, err = r.inner.ListSessions(ctx)
		return err
	})
	return ids, err
}

// PutBlob implements CheckpointStore.
func (r *Retry) PutBlob(ctx context.Context, data []byte) (d Digest, created bool, err error) {
	err = r.do(ctx, "put_blob", func() error {
		d, created, err = r.inner.PutBlob(ctx, data)
		return err
	})
	return d, created, err
}

// GetBlob implements CheckpointStore.
func (r *Retry) GetBlob(ctx context.Context, d Digest) (data []byte, err error) {
	err = r.do(ctx, "get_blob", func() error {
		data, err = r.inner.GetBlob(ctx, d)
		return err
	})
	return data, err
}

// HasBlob implements CheckpointStore.
func (r *Retry) HasBlob(ctx context.Context, d Digest) (ok bool, err error) {
	err = r.do(ctx, "has_blob", func() error {
		ok, err = r.inner.HasBlob(ctx, d)
		return err
	})
	return ok, err
}

// PutCheckpoint implements CheckpointStore.
func (r *Retry) PutCheckpoint(ctx context.Context, ck Checkpoint) error {
	return r.do(ctx, "put_checkpoint", func() error {
		return r.inner.PutCheckpoint(ctx, ck)
	})
}

// GetCheckpoint implements CheckpointStore.
func (r *Retry) GetCheckpoint(ctx context.Context, key string) (ck Checkpoint, err error) {
	err = r.do(ctx, "get_checkpoint", func() error {
		ck, err = r.inner.GetCheckpoint(ctx, key)
		return err
	})
	return ck, err
}

// DeleteCheckpoint implements CheckpointStore.
func (r *Retry) DeleteCheckpoint(ctx context.Context, key string) error {
	return r.do(ctx, "delete_checkpoint", func() error {
		return r.inner.DeleteCheckpoint(ctx, key)
	})
}

// Lock implements LockSource. ErrLocked is permanent (another owner holds
// the lease — the caller's backoff discipline applies, not ours), so only
// genuine backend failures are retried.
func (r *Retry) Lock(ctx context.Context, key, owner string, ttl time.Duration) (ls Lease, err error) {
	err = r.do(ctx, "lock", func() error {
		ls, err = r.inner.Lock(ctx, key, owner, ttl)
		return err
	})
	return ls, err
}
