package store_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// The full production stack — retry over fault over mem, faults off —
// must still pass conformance.
func TestRetryFaultConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
		fs := store.WithFault(store.NewMem(), fault.New(1))
		return store.WithRetry(fs, store.RetryConfig{}), nil
	})
}

func TestIsTransient(t *testing.T) {
	permanent := []error{
		store.ErrNotFound, store.ErrLocked, store.ErrLeaseLost,
		store.ErrCorrupt, store.ErrClosed,
		context.Canceled, context.DeadlineExceeded, nil,
	}
	for _, err := range permanent {
		if store.IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
	if !store.IsTransient(errors.New("disk on fire")) {
		t.Error("unknown error classified permanent")
	}
	if !store.IsTransient(fault.ErrInjected) {
		t.Error("injected outage classified permanent")
	}
}

// countingStore counts calls to one overridden op.
type countingStore struct {
	store.Store
	gets int
	errs []error // error script for successive GetSession calls
}

func (c *countingStore) GetSession(ctx context.Context, id string) ([]byte, error) {
	i := c.gets
	c.gets++
	if i < len(c.errs) && c.errs[i] != nil {
		return nil, c.errs[i]
	}
	return c.Store.GetSession(ctx, id)
}

func TestRetryRecoversTransient(t *testing.T) {
	flaky := errors.New("transient hiccup")
	cs := &countingStore{Store: store.NewMem(), errs: []error{flaky, flaky}}
	ctx := context.Background()
	if err := cs.Store.PutSession(ctx, "s1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rs := store.WithRetry(cs, store.RetryConfig{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond})
	got, err := rs.GetSession(ctx, "s1")
	if err != nil || string(got) != "x" {
		t.Fatalf("GetSession = %q, %v after transient errors", got, err)
	}
	if cs.gets != 3 {
		t.Fatalf("attempts = %d, want 3 (two failures + success)", cs.gets)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	flaky := errors.New("transient hiccup")
	cs := &countingStore{Store: store.NewMem(), errs: []error{flaky, flaky, flaky, flaky}}
	rs := store.WithRetry(cs, store.RetryConfig{Attempts: 2, Base: time.Millisecond})
	if _, err := rs.GetSession(context.Background(), "s1"); !errors.Is(err, flaky) {
		t.Fatalf("err = %v, want the last transient error", err)
	}
	if cs.gets != 2 {
		t.Fatalf("attempts = %d, want exactly Attempts", cs.gets)
	}
}

func TestRetryPermanentNoRetry(t *testing.T) {
	cs := &countingStore{Store: store.NewMem()}
	rs := store.WithRetry(cs, store.RetryConfig{Attempts: 5, Base: time.Millisecond})
	if _, err := rs.GetSession(context.Background(), "missing"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if cs.gets != 1 {
		t.Fatalf("attempts = %d for permanent error, want 1", cs.gets)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	flaky := errors.New("transient hiccup")
	cs := &countingStore{Store: store.NewMem(), errs: []error{flaky, flaky, flaky}}
	rs := store.WithRetry(cs, store.RetryConfig{Attempts: 4, Base: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rs.GetSession(ctx, "s1")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("retry slept past context deadline")
	}
}
