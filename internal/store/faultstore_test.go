package store_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// The fault wrapper with no points armed must be indistinguishable from
// the backend it wraps: the full conformance suite runs through it.
func TestFaultConformanceUnarmed(t *testing.T) {
	storetest.Run(t, func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
		return store.WithFault(store.NewMem(), fault.New(1)), nil
	})
}

// A nil injector is the documented production no-op.
func TestFaultConformanceNilInjector(t *testing.T) {
	storetest.Run(t, func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
		return store.WithFault(store.NewMem(), nil), nil
	})
}

func TestFaultPutFail(t *testing.T) {
	inj := fault.New(42)
	inj.Enable(fault.StorePutFail, 1)
	fs := store.WithFault(store.NewMem(), inj)
	ctx := context.Background()

	if err := fs.PutSession(ctx, "s1", []byte("x")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("PutSession err = %v, want ErrInjected", err)
	}
	if _, _, err := fs.PutBlob(ctx, []byte("x")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("PutBlob err = %v, want ErrInjected", err)
	}
	if err := fs.PutCheckpoint(ctx, store.Checkpoint{Key: "k"}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("PutCheckpoint err = %v, want ErrInjected", err)
	}
	if err := fs.DeleteSession(ctx, "s1"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("DeleteSession err = %v, want ErrInjected", err)
	}
	if _, err := fs.Lock(ctx, "k", "me", time.Second); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Lock err = %v, want ErrInjected", err)
	}
	// Writes must all classify as transient: the retry decorator and the
	// write-behind queue both key off this.
	if !store.IsTransient(putSessionErr(fs)) {
		t.Fatal("injected put failure classified permanent")
	}
	// Disarm: the same wrapper serves normally again.
	inj.Enable(fault.StorePutFail, 0)
	if err := fs.PutSession(ctx, "s1", []byte("x")); err != nil {
		t.Fatalf("PutSession after disarm: %v", err)
	}
}

func putSessionErr(s store.Store) error {
	return s.PutSession(context.Background(), "probe", []byte("p"))
}

func TestFaultGetStall(t *testing.T) {
	inj := fault.New(7).SetStall(50 * time.Millisecond)
	inj.Enable(fault.StoreGetStall, 1)
	fs := store.WithFault(store.NewMem(), inj)
	ctx := context.Background()
	if err := fs.PutSession(ctx, "s1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := fs.GetSession(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("GetSession returned in %v, want ≥ stall", d)
	}
	// A cancelled context bounds the stall.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	start = time.Now()
	_, _ = fs.GetSession(cctx, "s1")
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Fatalf("cancelled GetSession stalled %v", d)
	}
}

func TestFaultCorruptRead(t *testing.T) {
	inj := fault.New(3)
	inj.Enable(fault.StoreCorruptRead, 1)
	fs := store.WithFault(store.NewMem(), inj)
	ctx := context.Background()

	want := []byte("payload-bytes")
	if err := fs.PutSession(ctx, "s1", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.GetSession(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(want) {
		t.Fatal("corrupt read returned pristine bytes")
	}
	// Blob reads re-verify the digest, so corruption surfaces as ErrCorrupt
	// rather than silently poisoned weights.
	inj.Enable(fault.StoreCorruptRead, 0)
	d, _, err := fs.PutBlob(ctx, []byte("blob-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	inj.Enable(fault.StoreCorruptRead, 1)
	if _, err := fs.GetBlob(ctx, d); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("GetBlob err = %v, want ErrCorrupt", err)
	}
	// The backing store is untouched: disarm and read back clean.
	inj.Enable(fault.StoreCorruptRead, 0)
	if got, err := fs.GetSession(ctx, "s1"); err != nil || string(got) != string(want) {
		t.Fatalf("pristine read after disarm: %q, %v", got, err)
	}
}

func TestFaultLeaseLost(t *testing.T) {
	inj := fault.New(5)
	inj.Enable(fault.StoreLeaseLost, 1)
	fs := store.WithFault(store.NewMem(), inj)
	ctx := context.Background()

	ls, err := fs.Lock(ctx, "ft:s1", "me", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Refresh(ctx, time.Minute); !errors.Is(err, store.ErrLeaseLost) {
		t.Fatalf("Refresh err = %v, want ErrLeaseLost", err)
	}
	if err := ls.Release(); !errors.Is(err, store.ErrLeaseLost) {
		t.Fatalf("Release err = %v, want ErrLeaseLost", err)
	}
	// The doomed lease released the inner lock, so the key is free for the
	// next taker rather than wedged until TTL expiry.
	inj.Enable(fault.StoreLeaseLost, 0)
	ls2, err := fs.Lock(ctx, "ft:s1", "other", time.Minute)
	if err != nil {
		t.Fatalf("re-lock after doomed lease: %v", err)
	}
	if err := ls2.Release(); err != nil {
		t.Fatal(err)
	}
}
