package store

import (
	"context"
	"sync"
	"time"
)

// Mem is the in-memory backend: a single-process Store for tests and for
// running clear-serve without durability. All state lives in maps behind
// one mutex; data is copied on the way in and out so callers can't alias
// store internals.
type Mem struct {
	mu       sync.Mutex
	closed   bool
	sessions map[string][]byte
	fences   map[string]Fence
	blobs    map[Digest][]byte
	cks      map[string]Checkpoint
	locks    map[string]*memLock
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		sessions: map[string][]byte{},
		fences:   map[string]Fence{},
		blobs:    map[Digest][]byte{},
		cks:      map[string]Checkpoint{},
		locks:    map[string]*memLock{},
	}
}

// Backend implements Store.
func (m *Mem) Backend() string { return "mem" }

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// guard folds closed/cancelled checks into one place; callers hold no lock.
func (m *Mem) guard(ctx context.Context) error {
	if err := checkCtx(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return nil
}

// PutSession implements SessionStore.
func (m *Mem) PutSession(ctx context.Context, id string, data []byte) (err error) {
	start := time.Now()
	defer func() { instrument("mem", "put_session", start, err) }()
	if err = m.guard(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessions[id] = append([]byte(nil), data...)
	m.fences[id] = Fence{} // unfenced write resets the fence: it always wins
	return nil
}

// PutSessionFenced implements SessionStore.
func (m *Mem) PutSessionFenced(ctx context.Context, id string, f Fence, data []byte) (err error) {
	start := time.Now()
	defer func() { instrument("mem", "put_session_fenced", start, err) }()
	if err = m.guard(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; ok && f.Before(m.fences[id]) {
		return ErrFenced
	}
	m.sessions[id] = append([]byte(nil), data...)
	m.fences[id] = f
	return nil
}

// GetSession implements SessionStore.
func (m *Mem) GetSession(ctx context.Context, id string) (data []byte, err error) {
	start := time.Now()
	defer func() { instrument("mem", "get_session", start, err) }()
	if err = m.guard(ctx); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), b...), nil
}

// DeleteSession implements SessionStore.
func (m *Mem) DeleteSession(ctx context.Context, id string) (err error) {
	start := time.Now()
	defer func() { instrument("mem", "delete_session", start, err) }()
	if err = m.guard(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, id)
	delete(m.fences, id)
	return nil
}

// ListSessions implements SessionStore.
func (m *Mem) ListSessions(ctx context.Context) (ids []string, err error) {
	start := time.Now()
	defer func() { instrument("mem", "list_sessions", start, err) }()
	if err = m.guard(ctx); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ids = make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	return ids, nil
}

// PutBlob implements CheckpointStore.
func (m *Mem) PutBlob(ctx context.Context, data []byte) (d Digest, created bool, err error) {
	start := time.Now()
	defer func() { instrument("mem", "put_blob", start, err) }()
	if err = m.guard(ctx); err != nil {
		return "", false, err
	}
	d = DigestOf(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[d]; ok {
		return d, false, nil
	}
	m.blobs[d] = append([]byte(nil), data...)
	return d, true, nil
}

// GetBlob implements CheckpointStore.
func (m *Mem) GetBlob(ctx context.Context, d Digest) (data []byte, err error) {
	start := time.Now()
	defer func() { instrument("mem", "get_blob", start, err) }()
	if err = m.guard(ctx); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[d]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), b...), nil
}

// HasBlob implements CheckpointStore.
func (m *Mem) HasBlob(ctx context.Context, d Digest) (ok bool, err error) {
	start := time.Now()
	defer func() { instrument("mem", "has_blob", start, err) }()
	if err = m.guard(ctx); err != nil {
		return false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok = m.blobs[d]
	return ok, nil
}

// PutCheckpoint implements CheckpointStore.
func (m *Mem) PutCheckpoint(ctx context.Context, ck Checkpoint) (err error) {
	start := time.Now()
	defer func() { instrument("mem", "put_checkpoint", start, err) }()
	if err = m.guard(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range []Digest{ck.Base, ck.Fine} {
		if _, ok := m.blobs[d]; !ok {
			return ErrNotFound
		}
	}
	m.cks[ck.Key] = ck
	return nil
}

// GetCheckpoint implements CheckpointStore.
func (m *Mem) GetCheckpoint(ctx context.Context, key string) (ck Checkpoint, err error) {
	start := time.Now()
	defer func() { instrument("mem", "get_checkpoint", start, err) }()
	if err = m.guard(ctx); err != nil {
		return Checkpoint{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ck, ok := m.cks[key]
	if !ok {
		return Checkpoint{}, ErrNotFound
	}
	return ck, nil
}

// DeleteCheckpoint implements CheckpointStore.
func (m *Mem) DeleteCheckpoint(ctx context.Context, key string) (err error) {
	start := time.Now()
	defer func() { instrument("mem", "delete_checkpoint", start, err) }()
	if err = m.guard(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cks, key)
	return nil
}

// memLock is the shared lock record; the Lease handed out points at it
// and checks generation so a takeover invalidates stale leases.
type memLock struct {
	owner    string
	gen      int64
	deadline time.Time
}

// memLease implements Lease over a Mem store.
type memLease struct {
	m     *Mem
	key   string
	owner string
	gen   int64
}

func (l *memLease) Key() string   { return l.key }
func (l *memLease) Owner() string { return l.owner }

// Lock implements LockSource.
func (m *Mem) Lock(ctx context.Context, key, owner string, ttl time.Duration) (ls Lease, err error) {
	start := time.Now()
	defer func() { instrument("mem", "lock", start, err) }()
	if err = m.guard(ctx); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	if cur, ok := m.locks[key]; ok && now.Before(cur.deadline) {
		return nil, ErrLocked
	}
	var gen int64
	if cur, ok := m.locks[key]; ok {
		gen = cur.gen + 1 // takeover of an expired lease bumps generation
	}
	m.locks[key] = &memLock{owner: owner, gen: gen, deadline: now.Add(ttl)}
	return &memLease{m: m, key: key, owner: owner, gen: gen}, nil
}

// Refresh implements Lease.
func (l *memLease) Refresh(ctx context.Context, ttl time.Duration) error {
	if err := checkCtx(ctx); err != nil {
		return err
	}
	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	cur, ok := l.m.locks[l.key]
	if !ok || cur.gen != l.gen {
		return ErrLeaseLost
	}
	cur.deadline = time.Now().Add(ttl)
	return nil
}

// Release implements Lease.
func (l *memLease) Release() error {
	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	cur, ok := l.m.locks[l.key]
	if !ok || cur.gen != l.gen {
		return ErrLeaseLost
	}
	delete(l.m.locks, l.key)
	return nil
}

// Stats implements Store.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bytes int64
	for _, b := range m.blobs {
		bytes += int64(len(b))
	}
	logical := 2 * len(m.cks) // each manifest references base + fine
	held := 0
	now := time.Now()
	for _, lk := range m.locks {
		if now.Before(lk.deadline) {
			held++
		}
	}
	return Stats{
		Backend:       "mem",
		Sessions:      len(m.sessions),
		Checkpoints:   len(m.cks),
		BlobsPhysical: len(m.blobs),
		BlobsLogical:  logical,
		BlobBytes:     bytes,
		DedupRatio:    dedupRatio(logical, len(m.blobs)),
		LocksHeld:     held,
	}
}
