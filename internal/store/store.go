// Package store is the durable state layer under multi-replica
// clear-serve: session records, fine-tuned checkpoint blobs, and the
// per-session leases that keep exactly one replica fine-tuning a user at
// a time. The design cribs claircore's datastore split — a narrow
// interface pair with swappable backends, content-addressed immutable
// blobs, and a lock source — scaled down to this repo's needs.
//
// Three concerns, one Store:
//
//   - SessionStore: opaque per-session records keyed by session ID. The
//     serving layer owns the encoding (core.WriteHeader framing, see
//     internal/serve/snapshot.go); the store only promises bitwise
//     round-trips, which the storetest conformance suite asserts.
//   - CheckpointStore: content-addressed blobs plus tiny named manifests.
//     A fine-tuned model is stored as a manifest referencing two blobs —
//     the cluster baseline it started from and the fine-tuned weights —
//     so every user fine-tuned from cluster k's baseline shares one
//     physical baseline blob. PutBlob reports whether it created the blob,
//     making the dedup directly observable.
//   - LockSource: TTL leases. A replica takes "ft:<session>" before
//     fine-tuning; a second replica racing for the same user gets
//     ErrLocked and backs off. TTLs bound how long a crashed holder can
//     wedge a key.
//
// Backends: Mem (tests, single-process), File (durable, shared directory
// across local replicas). Both are exercised by the same conformance
// suite in storetest.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// Errors every backend maps its internal failures onto, so callers can
// errors.Is without knowing the backend.
var (
	// ErrNotFound reports a missing session, blob, or checkpoint key.
	ErrNotFound = errors.New("store: not found")
	// ErrLocked reports a lease already held by another owner.
	ErrLocked = errors.New("store: lease held")
	// ErrLeaseLost reports a Refresh/Release on a lease that expired and
	// was taken over (or released) out from under the holder.
	ErrLeaseLost = errors.New("store: lease lost")
	// ErrCorrupt reports stored bytes failing their integrity check
	// (digest mismatch, bad framing) — surfaced, never silently dropped.
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrFenced reports a fenced session write losing to a record already
	// stored under a newer fence — a lagging ex-owner trying to clobber
	// the new owner's state. The write was not applied; the caller must
	// not retry it (the state it holds is stale by construction).
	ErrFenced = errors.New("store: write fenced off by newer record")
)

// Fence orders session writes across ownership changes: Epoch is the
// ring-membership epoch the writer served under, Seq the writer's
// session sequence. Ordering is epoch-first, then seq — an owner under a
// newer ring epoch always dominates a lagging ex-owner regardless of how
// many writes the ex-owner buffered.
type Fence struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// Before reports whether f is strictly older than g.
func (f Fence) Before(g Fence) bool {
	if f.Epoch != g.Epoch {
		return f.Epoch < g.Epoch
	}
	return f.Seq < g.Seq
}

// Digest is a content address: "sha256:<64 hex chars>". The digest of a
// blob is derived from its bytes alone, so two replicas writing the same
// cluster baseline produce one physical blob.
type Digest string

// DigestOf returns the content address of data.
func DigestOf(data []byte) Digest {
	sum := sha256.Sum256(data)
	return Digest("sha256:" + hex.EncodeToString(sum[:]))
}

// Valid reports whether d is a well-formed sha256 digest.
func (d Digest) Valid() bool {
	s, ok := strings.CutPrefix(string(d), "sha256:")
	if !ok || len(s) != 64 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// Hex returns the hex portion of the digest (file backends use it as the
// blob filename).
func (d Digest) Hex() string {
	s, _ := strings.CutPrefix(string(d), "sha256:")
	return s
}

// Checkpoint is the manifest for one session's personalised model: which
// cluster baseline it started from and the fine-tuned weights it landed
// on, both as blob references. Manifests are tiny and mutable (a session
// may fine-tune again after drift re-assignment); blobs are immutable.
type Checkpoint struct {
	// Key is the manifest name, conventionally the session ID.
	Key string `json:"key"`
	// Cluster is the archetype cluster the baseline belongs to.
	Cluster int `json:"cluster"`
	// Base is the cluster-baseline blob the fine-tune started from.
	Base Digest `json:"base"`
	// Fine is the fine-tuned weights blob.
	Fine Digest `json:"fine"`
	// Labels is how many user labels had been absorbed when the
	// checkpoint was cut — lets a hydrating replica skip replaying them.
	Labels int `json:"labels"`
}

// SessionStore persists opaque per-session records.
type SessionStore interface {
	// PutSession durably stores data under id, replacing any prior record.
	// Unfenced puts carry the zero Fence and always win — the pre-fencing
	// behavior, kept for single-replica deployments and tooling.
	PutSession(ctx context.Context, id string, data []byte) error
	// PutSessionFenced conditionally stores data under id: if the stored
	// record carries a fence strictly newer than f, the write is rejected
	// with ErrFenced and the stored record is untouched. Writes at an
	// equal fence are idempotent replays and are applied.
	PutSessionFenced(ctx context.Context, id string, f Fence, data []byte) error
	// GetSession returns the record for id, or ErrNotFound.
	GetSession(ctx context.Context, id string) ([]byte, error)
	// DeleteSession removes id's record. Deleting a missing id is a no-op.
	DeleteSession(ctx context.Context, id string) error
	// ListSessions returns the IDs of every stored session.
	ListSessions(ctx context.Context) ([]string, error)
}

// CheckpointStore persists content-addressed blobs and named checkpoint
// manifests referencing them.
type CheckpointStore interface {
	// PutBlob stores data at its content address. created reports whether
	// a new physical blob was written (false = deduplicated).
	PutBlob(ctx context.Context, data []byte) (d Digest, created bool, err error)
	// GetBlob returns the bytes at d, verifying them against the digest.
	// Missing blobs return ErrNotFound; mismatches return ErrCorrupt.
	GetBlob(ctx context.Context, d Digest) ([]byte, error)
	// HasBlob reports whether d exists without reading its bytes.
	HasBlob(ctx context.Context, d Digest) (bool, error)
	// PutCheckpoint stores ck's manifest under ck.Key, replacing any
	// prior manifest. The referenced blobs must already exist.
	PutCheckpoint(ctx context.Context, ck Checkpoint) error
	// GetCheckpoint returns the manifest under key, or ErrNotFound.
	GetCheckpoint(ctx context.Context, key string) (Checkpoint, error)
	// DeleteCheckpoint removes the manifest under key (blobs stay — they
	// may be shared). Deleting a missing key is a no-op.
	DeleteCheckpoint(ctx context.Context, key string) error
}

// Lease is a held TTL lock. The holder must Release when done and may
// Refresh to extend; both return ErrLeaseLost if the lease expired and
// another owner took it over in the meantime.
type Lease interface {
	// Key returns the locked key.
	Key() string
	// Owner returns the holder identity passed to Lock.
	Owner() string
	// Refresh extends the lease by ttl from now.
	Refresh(ctx context.Context, ttl time.Duration) error
	// Release drops the lease so other owners can take it.
	Release() error
}

// LockSource grants per-key TTL leases.
type LockSource interface {
	// Lock acquires key for owner with the given ttl. A live lease held
	// by someone else returns ErrLocked; an expired lease is taken over.
	Lock(ctx context.Context, key, owner string, ttl time.Duration) (Lease, error)
}

// Stats is a point-in-time census of a store, surfaced via /v1/stats.
type Stats struct {
	Backend     string `json:"backend"`
	Sessions    int    `json:"sessions"`
	Checkpoints int    `json:"checkpoints"`
	// BlobsPhysical counts distinct stored blobs; BlobsLogical counts
	// manifest references to blobs. Logical > physical means
	// content-addressing is deduplicating (shared cluster baselines).
	BlobsPhysical int     `json:"blobs_physical"`
	BlobsLogical  int     `json:"blobs_logical"`
	BlobBytes     int64   `json:"blob_bytes"`
	DedupRatio    float64 `json:"dedup_ratio"`
	LocksHeld     int     `json:"locks_held"`
}

// Store is the full state layer a clear-serve replica binds to.
type Store interface {
	SessionStore
	CheckpointStore
	LockSource
	// Backend names the implementation ("mem", "file") for metrics.
	Backend() string
	// Stats returns a point-in-time census.
	Stats() Stats
	// Close releases backend resources. Operations after Close return
	// ErrClosed.
	Close() error
}

// Store op metrics, shared by all backends: a counter per {backend, op}
// and a latency histogram per backend (1µs–32s exponential buckets,
// matching the serve-layer stage histograms).
var (
	mStoreOps   = obs.GetCounterVec("store.ops", "backend", "op")
	mStoreErrs  = obs.GetCounterVec("store.op_errors", "backend", "op")
	hStoreLatUS = obs.GetHistogramVec("store.op_latency_us", obs.ExpBuckets(1, 2, 26), "backend")
)

// instrument records one store op: count, error count, latency. Backends
// wrap every public op in it so the store_ops / store_op_latency_us
// families stay uniform across implementations.
func instrument(backend, op string, start time.Time, err error) {
	mStoreOps.With(backend, op).Inc()
	if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrLocked) {
		// Not-found and lease-held are expected control flow, not faults.
		mStoreErrs.With(backend, op).Inc()
	}
	hStoreLatUS.With(backend).Observe(float64(time.Since(start).Microseconds()))
}

// dedupRatio computes logical/physical, defined as 1 when nothing is
// stored so dashboards start at "no dedup" rather than NaN.
func dedupRatio(logical, physical int) float64 {
	if physical == 0 {
		return 1
	}
	return float64(logical) / float64(physical)
}

// checkCtx folds context cancellation into the store error space.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
