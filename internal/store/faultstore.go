package store

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
)

// Fault wraps a Store with deterministic fault injection driven by the
// shared injector from internal/fault. With no points armed (or a nil
// injector) every call is a straight delegate — the wrapper passes the
// storetest conformance suite untouched — so chaos runs can leave it
// installed permanently and arm points at runtime.
//
// Injection sites:
//
//   - StorePutFail fails every write (PutSession, PutBlob, PutCheckpoint,
//     DeleteSession, DeleteCheckpoint, Lock) with an ErrInjected-wrapped
//     error, simulating a store outage.
//   - StoreGetStall sleeps the injector's stall duration before a read
//     (GetSession, GetBlob, GetCheckpoint, ListSessions, HasBlob),
//     simulating a slow or saturated backend.
//   - StoreCorruptRead flips one byte of a GetSession/GetBlob payload on
//     the way out, exercising the caller's framing/digest checks.
//   - StoreLeaseLost wraps granted leases so Refresh/Release report
//     ErrLeaseLost, simulating expiry-takeover under a wedged holder.
type Fault struct {
	inner Store
	inj   *fault.Injector
}

// WithFault wraps inner with injection from inj. A nil inj is legal and
// makes the wrapper a pure pass-through.
func WithFault(inner Store, inj *fault.Injector) *Fault {
	return &Fault{inner: inner, inj: inj}
}

// Backend reports the inner backend's name: the wrapper is transparent to
// metrics and stats labels.
func (f *Fault) Backend() string { return f.inner.Backend() }

// Stats implements Store.
func (f *Fault) Stats() Stats { return f.inner.Stats() }

// Close implements Store.
func (f *Fault) Close() error { return f.inner.Close() }

// putErr synthesises the injected write failure for op.
func putErr(op string) error {
	return fmt.Errorf("store: %s: %w", op, fault.ErrInjected)
}

// stallRead sleeps if StoreGetStall fires; bounded by ctx so a cancelled
// caller is not held hostage by the injector.
func (f *Fault) stallRead(ctx context.Context) {
	if !f.inj.Fire(fault.StoreGetStall) {
		return
	}
	select {
	case <-time.After(f.inj.Stall()):
	case <-ctx.Done():
	}
}

// corrupt flips one injector-chosen byte of data (copied first — the inner
// store may alias its own buffers) when StoreCorruptRead fires.
func (f *Fault) corrupt(data []byte) []byte {
	if len(data) == 0 || !f.inj.Fire(fault.StoreCorruptRead) {
		return data
	}
	out := append([]byte(nil), data...)
	out[f.inj.Intn(len(out))] ^= 0xff
	return out
}

// PutSession implements SessionStore.
func (f *Fault) PutSession(ctx context.Context, id string, data []byte) error {
	if f.inj.Fire(fault.StorePutFail) {
		return putErr("put_session")
	}
	return f.inner.PutSession(ctx, id, data)
}

// PutSessionFenced implements SessionStore.
func (f *Fault) PutSessionFenced(ctx context.Context, id string, fc Fence, data []byte) error {
	if f.inj.Fire(fault.StorePutFail) {
		return putErr("put_session_fenced")
	}
	return f.inner.PutSessionFenced(ctx, id, fc, data)
}

// GetSession implements SessionStore.
func (f *Fault) GetSession(ctx context.Context, id string) ([]byte, error) {
	f.stallRead(ctx)
	data, err := f.inner.GetSession(ctx, id)
	if err != nil {
		return nil, err
	}
	return f.corrupt(data), nil
}

// DeleteSession implements SessionStore.
func (f *Fault) DeleteSession(ctx context.Context, id string) error {
	if f.inj.Fire(fault.StorePutFail) {
		return putErr("delete_session")
	}
	return f.inner.DeleteSession(ctx, id)
}

// ListSessions implements SessionStore.
func (f *Fault) ListSessions(ctx context.Context) ([]string, error) {
	f.stallRead(ctx)
	return f.inner.ListSessions(ctx)
}

// PutBlob implements CheckpointStore.
func (f *Fault) PutBlob(ctx context.Context, data []byte) (Digest, bool, error) {
	if f.inj.Fire(fault.StorePutFail) {
		return "", false, putErr("put_blob")
	}
	return f.inner.PutBlob(ctx, data)
}

// GetBlob implements CheckpointStore. A corrupted read is re-verified
// against the digest here so the wrapper honours GetBlob's contract
// (mismatch → ErrCorrupt) instead of handing poisoned bytes to callers
// that trust the digest.
func (f *Fault) GetBlob(ctx context.Context, d Digest) ([]byte, error) {
	f.stallRead(ctx)
	data, err := f.inner.GetBlob(ctx, d)
	if err != nil {
		return nil, err
	}
	data = f.corrupt(data)
	if DigestOf(data) != d {
		return nil, fmt.Errorf("store: blob %s: %w", d, ErrCorrupt)
	}
	return data, nil
}

// HasBlob implements CheckpointStore.
func (f *Fault) HasBlob(ctx context.Context, d Digest) (bool, error) {
	f.stallRead(ctx)
	return f.inner.HasBlob(ctx, d)
}

// PutCheckpoint implements CheckpointStore.
func (f *Fault) PutCheckpoint(ctx context.Context, ck Checkpoint) error {
	if f.inj.Fire(fault.StorePutFail) {
		return putErr("put_checkpoint")
	}
	return f.inner.PutCheckpoint(ctx, ck)
}

// GetCheckpoint implements CheckpointStore.
func (f *Fault) GetCheckpoint(ctx context.Context, key string) (Checkpoint, error) {
	f.stallRead(ctx)
	return f.inner.GetCheckpoint(ctx, key)
}

// DeleteCheckpoint implements CheckpointStore.
func (f *Fault) DeleteCheckpoint(ctx context.Context, key string) error {
	if f.inj.Fire(fault.StorePutFail) {
		return putErr("delete_checkpoint")
	}
	return f.inner.DeleteCheckpoint(ctx, key)
}

// Lock implements LockSource. An armed StoreLeaseLost point marks the
// granted lease doomed: its next Refresh or Release reports ErrLeaseLost,
// the same shape a real expiry-takeover produces.
func (f *Fault) Lock(ctx context.Context, key, owner string, ttl time.Duration) (Lease, error) {
	if f.inj.Fire(fault.StorePutFail) {
		return nil, putErr("lock")
	}
	ls, err := f.inner.Lock(ctx, key, owner, ttl)
	if err != nil {
		return nil, err
	}
	if f.inj.Fire(fault.StoreLeaseLost) {
		return &doomedLease{Lease: ls}, nil
	}
	return ls, nil
}

// doomedLease simulates a lease lost to expiry-takeover: the holder's
// Refresh and Release fail with ErrLeaseLost. The inner lease is released
// on first use so the key does not stay wedged for the full TTL.
type doomedLease struct {
	Lease
	mu       sync.Mutex
	released bool
}

func (l *doomedLease) Refresh(ctx context.Context, ttl time.Duration) error {
	l.drop()
	return ErrLeaseLost
}

func (l *doomedLease) Release() error {
	l.drop()
	return ErrLeaseLost
}

func (l *doomedLease) drop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.released {
		l.released = true
		_ = l.Lease.Release()
	}
}
