package store_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/store/storetest"
)

// Both backends run the identical conformance suite; a behavioural
// difference between them fails here, not in production.

func TestMemConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
		return store.NewMem(), nil // memory has no crash durability
	})
}

func TestFileConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) (store.Store, func(t *testing.T) store.Store) {
		dir := t.TempDir()
		s, err := store.NewFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		reopen := func(t *testing.T) store.Store {
			s2, err := store.NewFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			return s2
		}
		return s, reopen
	})
}
