package store

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// File is the durable backend: a directory shared by every replica on
// the host (or a shared mount). Layout under the root:
//
//	sessions/<esc(id)>.sess    framed session record (recordMagic)
//	blobs/<hex>                raw blob bytes, named by sha256
//	checkpoints/<esc(key)>.ck  framed manifest (manifestMagic)
//	locks/<esc(key)>.lock      JSON lease record, created O_EXCL
//
// Records reuse the repo-wide core.WriteHeader framing (LE magic +
// uint32 len + JSON header) with the payload after the header, so a
// session file is self-describing and integrity-checked the same way the
// pipeline checkpoints are. Writes go through tmp+rename in the same
// directory, so readers never observe a torn record; blob writes are
// idempotent because the name IS the content hash.
type File struct {
	root   string
	mu     sync.Mutex
	closed bool
	// fenceMu serializes fenced session writes so the read-compare-write
	// in PutSessionFenced is atomic within this process. Replicas on one
	// host share the directory but open separate File handles; the
	// cross-process fence race window (two rename-based writers passing
	// the compare simultaneously) collapses to last-wins, which matches
	// the pre-fencing behavior and is closed for the deployment CI
	// exercises because only one replica owns a session per epoch.
	fenceMu sync.Mutex
}

const (
	// recordMagic frames session records: "SREC".
	recordMagic uint32 = 0x53524543
	// manifestMagic frames checkpoint manifests: "SMAN".
	manifestMagic uint32 = 0x534D414E
)

// recordHeader describes the payload that follows a framed record.
type recordHeader struct {
	ID     string `json:"id"`
	Len    int    `json:"len"`
	Sum    Digest `json:"sum"`
	Stored int64  `json:"stored_unix_us"`
	// Epoch/Seq carry the write fence (see store.Fence). Absent on
	// records written before fencing existed and on unfenced puts —
	// both decode as the zero fence, which any fenced write dominates.
	Epoch uint64 `json:"epoch,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
}

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	for _, sub := range []string{"sessions", "blobs", "checkpoints", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: init %s: %w", sub, err)
		}
	}
	return &File{root: dir}, nil
}

// Backend implements Store.
func (f *File) Backend() string { return "file" }

// Root returns the store's root directory.
func (f *File) Root() string { return f.root }

// Close implements Store.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *File) guard(ctx context.Context) error {
	if err := checkCtx(ctx); err != nil {
		return err
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return nil
}

// esc makes an arbitrary key filesystem-safe and reversible.
func esc(key string) string { return url.QueryEscape(key) }

func unesc(name string) (string, error) { return url.QueryUnescape(name) }

func (f *File) sessPath(id string) string {
	return filepath.Join(f.root, "sessions", esc(id)+".sess")
}

func (f *File) blobPath(d Digest) string {
	return filepath.Join(f.root, "blobs", d.Hex())
}

func (f *File) ckPath(key string) string {
	return filepath.Join(f.root, "checkpoints", esc(key)+".ck")
}

func (f *File) lockPath(key string) string {
	return filepath.Join(f.root, "locks", esc(key)+".lock")
}

// writeAtomic writes data to path via a same-directory tmp file and
// rename, so concurrent readers see either the old record or the new one.
func writeAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// PutSession implements SessionStore.
func (f *File) PutSession(ctx context.Context, id string, data []byte) (err error) {
	start := time.Now()
	defer func() { instrument("file", "put_session", start, err) }()
	if err = f.guard(ctx); err != nil {
		return err
	}
	return f.putSessionRecord(id, Fence{}, data)
}

// PutSessionFenced implements SessionStore: read the stored record's
// fence, reject if it is strictly newer, then write. fenceMu makes the
// compare-and-write atomic against other fenced writers in this process.
func (f *File) PutSessionFenced(ctx context.Context, id string, fc Fence, data []byte) (err error) {
	start := time.Now()
	defer func() { instrument("file", "put_session_fenced", start, err) }()
	if err = f.guard(ctx); err != nil {
		return err
	}
	f.fenceMu.Lock()
	defer f.fenceMu.Unlock()
	stored, err := f.readFence(id)
	if err != nil {
		return err
	}
	if fc.Before(stored) {
		return ErrFenced
	}
	return f.putSessionRecord(id, fc, data)
}

// readFence returns the fence on id's stored record; a missing or
// corrupt record reads as the zero fence (corrupt records must be
// overwritable, not wedged forever behind an unreadable fence).
func (f *File) readFence(id string) (Fence, error) {
	r, err := os.Open(f.sessPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return Fence{}, nil
	}
	if err != nil {
		return Fence{}, err
	}
	defer r.Close()
	var hdr recordHeader
	if err := core.ReadHeader(r, recordMagic, &hdr); err != nil {
		return Fence{}, nil
	}
	return Fence{Epoch: hdr.Epoch, Seq: hdr.Seq}, nil
}

func (f *File) putSessionRecord(id string, fc Fence, data []byte) error {
	hdr := recordHeader{
		ID: id, Len: len(data), Sum: DigestOf(data),
		Stored: time.Now().UnixMicro(), Epoch: fc.Epoch, Seq: fc.Seq,
	}
	return writeAtomic(f.sessPath(id), func(w *os.File) error {
		if err := core.WriteHeader(w, recordMagic, hdr); err != nil {
			return err
		}
		_, err := w.Write(data)
		return err
	})
}

// GetSession implements SessionStore.
func (f *File) GetSession(ctx context.Context, id string) (data []byte, err error) {
	start := time.Now()
	defer func() { instrument("file", "get_session", start, err) }()
	if err = f.guard(ctx); err != nil {
		return nil, err
	}
	r, err := os.Open(f.sessPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var hdr recordHeader
	if err := core.ReadHeader(r, recordMagic, &hdr); err != nil {
		return nil, fmt.Errorf("%w: session %s: %v", ErrCorrupt, id, err)
	}
	data = make([]byte, hdr.Len)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("%w: session %s payload: %v", ErrCorrupt, id, err)
	}
	if DigestOf(data) != hdr.Sum {
		return nil, fmt.Errorf("%w: session %s digest mismatch", ErrCorrupt, id)
	}
	return data, nil
}

// DeleteSession implements SessionStore.
func (f *File) DeleteSession(ctx context.Context, id string) (err error) {
	start := time.Now()
	defer func() { instrument("file", "delete_session", start, err) }()
	if err = f.guard(ctx); err != nil {
		return err
	}
	if err := os.Remove(f.sessPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// ListSessions implements SessionStore.
func (f *File) ListSessions(ctx context.Context) (ids []string, err error) {
	start := time.Now()
	defer func() { instrument("file", "list_sessions", start, err) }()
	if err = f.guard(ctx); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(filepath.Join(f.root, "sessions"))
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name, ok := strings.CutSuffix(e.Name(), ".sess")
		if !ok || e.IsDir() {
			continue // tmp files mid-rename, strays
		}
		id, err := unesc(name)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// PutBlob implements CheckpointStore. Content addressing makes this
// naturally idempotent: if the name already exists the bytes are already
// right, so concurrent writers of the same blob can't conflict.
func (f *File) PutBlob(ctx context.Context, data []byte) (d Digest, created bool, err error) {
	start := time.Now()
	defer func() { instrument("file", "put_blob", start, err) }()
	if err = f.guard(ctx); err != nil {
		return "", false, err
	}
	d = DigestOf(data)
	path := f.blobPath(d)
	if _, err := os.Stat(path); err == nil {
		return d, false, nil
	}
	err = writeAtomic(path, func(w *os.File) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return "", false, err
	}
	return d, true, nil
}

// GetBlob implements CheckpointStore.
func (f *File) GetBlob(ctx context.Context, d Digest) (data []byte, err error) {
	start := time.Now()
	defer func() { instrument("file", "get_blob", start, err) }()
	if err = f.guard(ctx); err != nil {
		return nil, err
	}
	if !d.Valid() {
		return nil, fmt.Errorf("%w: bad digest %q", ErrCorrupt, d)
	}
	data, err = os.ReadFile(f.blobPath(d))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if DigestOf(data) != d {
		return nil, fmt.Errorf("%w: blob %s digest mismatch", ErrCorrupt, d)
	}
	return data, nil
}

// HasBlob implements CheckpointStore.
func (f *File) HasBlob(ctx context.Context, d Digest) (ok bool, err error) {
	start := time.Now()
	defer func() { instrument("file", "has_blob", start, err) }()
	if err = f.guard(ctx); err != nil {
		return false, err
	}
	_, err = os.Stat(f.blobPath(d))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// PutCheckpoint implements CheckpointStore.
func (f *File) PutCheckpoint(ctx context.Context, ck Checkpoint) (err error) {
	start := time.Now()
	defer func() { instrument("file", "put_checkpoint", start, err) }()
	if err = f.guard(ctx); err != nil {
		return err
	}
	for _, d := range []Digest{ck.Base, ck.Fine} {
		ok, herr := f.HasBlob(ctx, d)
		if herr != nil {
			return herr
		}
		if !ok {
			return ErrNotFound
		}
	}
	return writeAtomic(f.ckPath(ck.Key), func(w *os.File) error {
		return core.WriteHeader(w, manifestMagic, ck)
	})
}

// GetCheckpoint implements CheckpointStore.
func (f *File) GetCheckpoint(ctx context.Context, key string) (ck Checkpoint, err error) {
	start := time.Now()
	defer func() { instrument("file", "get_checkpoint", start, err) }()
	if err = f.guard(ctx); err != nil {
		return Checkpoint{}, err
	}
	r, err := os.Open(f.ckPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return Checkpoint{}, ErrNotFound
	}
	if err != nil {
		return Checkpoint{}, err
	}
	defer r.Close()
	if err := core.ReadHeader(r, manifestMagic, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint %s: %v", ErrCorrupt, key, err)
	}
	return ck, nil
}

// DeleteCheckpoint implements CheckpointStore.
func (f *File) DeleteCheckpoint(ctx context.Context, key string) (err error) {
	start := time.Now()
	defer func() { instrument("file", "delete_checkpoint", start, err) }()
	if err = f.guard(ctx); err != nil {
		return err
	}
	if err := os.Remove(f.ckPath(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// lockRecord is the JSON body of a lock file.
type lockRecord struct {
	Owner    string `json:"owner"`
	Token    string `json:"token"` // random nonce distinguishing holders with equal owner strings
	Deadline int64  `json:"deadline_unix_us"`
}

func (lr lockRecord) expired(now time.Time) bool {
	return now.UnixMicro() >= lr.Deadline
}

// fileLease implements Lease over a lock file.
type fileLease struct {
	f     *File
	key   string
	owner string
	token string
}

func (l *fileLease) Key() string   { return l.key }
func (l *fileLease) Owner() string { return l.owner }

func newToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is process-fatal territory; fall back to a
		// time-derived token rather than panicking in a lease path.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Lock implements LockSource. Fresh acquisition is O_CREATE|O_EXCL — the
// filesystem arbitrates racing replicas. Takeover of an expired lease is
// write-then-verify: write our record via rename, read it back, and only
// claim the lease if our token survived (two racing takeovers both
// rename, but only the last one's token is on disk).
func (f *File) Lock(ctx context.Context, key, owner string, ttl time.Duration) (ls Lease, err error) {
	start := time.Now()
	defer func() { instrument("file", "lock", start, err) }()
	if err = f.guard(ctx); err != nil {
		return nil, err
	}
	path := f.lockPath(key)
	rec := lockRecord{Owner: owner, Token: newToken(), Deadline: time.Now().Add(ttl).UnixMicro()}
	body, _ := json.Marshal(rec)

	w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err == nil {
		if _, werr := w.Write(body); werr != nil {
			w.Close()
			os.Remove(path)
			return nil, werr
		}
		if werr := w.Close(); werr != nil {
			os.Remove(path)
			return nil, werr
		}
		return &fileLease{f: f, key: key, owner: owner, token: rec.Token}, nil
	}
	if !errors.Is(err, fs.ErrExist) {
		return nil, err
	}

	cur, rerr := readLock(path)
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			return nil, ErrLocked // holder released between our attempts; let caller retry
		}
		return nil, rerr
	}
	if !cur.expired(time.Now()) {
		return nil, ErrLocked
	}
	// Expired: take over, then verify our token won any takeover race.
	err = writeAtomic(path, func(w *os.File) error {
		_, werr := w.Write(body)
		return werr
	})
	if err != nil {
		return nil, err
	}
	got, rerr := readLock(path)
	if rerr != nil || got.Token != rec.Token {
		return nil, ErrLocked
	}
	return &fileLease{f: f, key: key, owner: owner, token: rec.Token}, nil
}

func readLock(path string) (lockRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return lockRecord{}, err
	}
	var rec lockRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return lockRecord{}, fmt.Errorf("%w: lock %s: %v", ErrCorrupt, path, err)
	}
	return rec, nil
}

// Refresh implements Lease.
func (l *fileLease) Refresh(ctx context.Context, ttl time.Duration) error {
	if err := checkCtx(ctx); err != nil {
		return err
	}
	path := l.f.lockPath(l.key)
	cur, err := readLock(path)
	if err != nil || cur.Token != l.token {
		return ErrLeaseLost
	}
	cur.Deadline = time.Now().Add(ttl).UnixMicro()
	body, _ := json.Marshal(cur)
	if err := writeAtomic(path, func(w *os.File) error {
		_, werr := w.Write(body)
		return werr
	}); err != nil {
		return err
	}
	// Same write-then-verify as takeover: a racing takeover of our
	// expired lease could interleave with the rename.
	got, err := readLock(path)
	if err != nil || got.Token != l.token {
		return ErrLeaseLost
	}
	return nil
}

// Release implements Lease.
func (l *fileLease) Release() error {
	path := l.f.lockPath(l.key)
	cur, err := readLock(path)
	if err != nil || cur.Token != l.token {
		return ErrLeaseLost
	}
	return os.Remove(path)
}

// Stats implements Store. Counts come from directory walks — O(entries),
// fine at the session counts a single host serves, and only hit on the
// /v1/stats path.
func (f *File) Stats() Stats {
	st := Stats{Backend: "file"}
	if ents, err := os.ReadDir(filepath.Join(f.root, "sessions")); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".sess") {
				st.Sessions++
			}
		}
	}
	if ents, err := os.ReadDir(filepath.Join(f.root, "blobs")); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			st.BlobsPhysical++
			if fi, err := e.Info(); err == nil {
				st.BlobBytes += fi.Size()
			}
		}
	}
	if ents, err := os.ReadDir(filepath.Join(f.root, "checkpoints")); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".ck") {
				st.Checkpoints++
			}
		}
	}
	st.BlobsLogical = 2 * st.Checkpoints
	st.DedupRatio = dedupRatio(st.BlobsLogical, st.BlobsPhysical)
	now := time.Now()
	if ents, err := os.ReadDir(filepath.Join(f.root, "locks")); err == nil {
		for _, e := range ents {
			rec, err := readLock(filepath.Join(f.root, "locks", e.Name()))
			if err == nil && !rec.expired(now) {
				st.LocksHeld++
			}
		}
	}
	return st
}
