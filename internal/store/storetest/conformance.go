// Package storetest is the backend-agnostic conformance suite for
// store.Store implementations. Both shipped backends (mem, file) run the
// same suite, so a behavioural difference between them is a test failure,
// not a production surprise. A future backend (e.g. a real KV service)
// passes by running Run against its constructor.
package storetest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// Factory builds a fresh, empty store for one subtest. reopen, if
// non-nil, simulates a process crash and restart: it must return a new
// handle onto the same underlying state WITHOUT any flush/close of the
// original (durable backends return a second handle; memory backends
// return nil to skip crash tests).
type Factory func(t *testing.T) (s store.Store, reopen func(t *testing.T) store.Store)

// Run executes the full conformance suite against the backend the
// factory builds.
func Run(t *testing.T, newStore Factory) {
	t.Run("SessionRoundTrip", func(t *testing.T) { testSessionRoundTrip(t, newStore) })
	t.Run("SessionOverwriteDelete", func(t *testing.T) { testSessionOverwriteDelete(t, newStore) })
	t.Run("SessionFencedPut", func(t *testing.T) { testSessionFencedPut(t, newStore) })
	t.Run("BlobContentAddress", func(t *testing.T) { testBlobContentAddress(t, newStore) })
	t.Run("CheckpointManifest", func(t *testing.T) { testCheckpointManifest(t, newStore) })
	t.Run("CheckpointRoundTripBitwise", func(t *testing.T) { testCheckpointBitwise(t, newStore) })
	t.Run("LeaseExclusion", func(t *testing.T) { testLeaseExclusion(t, newStore) })
	t.Run("LeaseExpiryTakeover", func(t *testing.T) { testLeaseExpiryTakeover(t, newStore) })
	t.Run("LeaseContention", func(t *testing.T) { testLeaseContention(t, newStore) })
	t.Run("HydrateAfterCrash", func(t *testing.T) { testHydrateAfterCrash(t, newStore) })
	t.Run("Stats", func(t *testing.T) { testStats(t, newStore) })
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// randBytes returns deterministic pseudo-random payloads — binary, with
// zero bytes and high bytes, to catch any backend that treats records as
// text.
func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func testSessionRoundTrip(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	// IDs include ring-prefixed ("n1-s000001") and hostile characters the
	// file backend must escape.
	ids := []string{"s000001", "n1-s000042", "user/7#x", "..", "a b%c"}
	for i, id := range ids {
		want := randBytes(int64(i+1), 1024+i*257)
		if err := s.PutSession(ctx, id, want); err != nil {
			t.Fatalf("PutSession(%q): %v", id, err)
		}
		got, err := s.GetSession(ctx, id)
		if err != nil {
			t.Fatalf("GetSession(%q): %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("session %q: %d bytes in, %d out, mismatch", id, len(want), len(got))
		}
	}
	list, err := s.ListSessions(ctx)
	if err != nil {
		t.Fatalf("ListSessions: %v", err)
	}
	if len(list) != len(ids) {
		t.Fatalf("ListSessions = %d ids, want %d (%q)", len(list), len(ids), list)
	}
	if _, err := s.GetSession(ctx, "never-stored"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing session err = %v, want ErrNotFound", err)
	}
}

func testSessionOverwriteDelete(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	id := "s000007"
	if err := s.PutSession(ctx, id, randBytes(1, 512)); err != nil {
		t.Fatal(err)
	}
	want := randBytes(2, 2048) // overwrite with different size
	if err := s.PutSession(ctx, id, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetSession(ctx, id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("overwrite not visible: err=%v", err)
	}
	if err := s.DeleteSession(ctx, id); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	if _, err := s.GetSession(ctx, id); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("deleted session err = %v, want ErrNotFound", err)
	}
	if err := s.DeleteSession(ctx, id); err != nil {
		t.Fatalf("double delete must be a no-op, got %v", err)
	}
}

// testSessionFencedPut pins the conditional-put contract that fences
// ownership churn: a strictly older fence loses with ErrFenced and the
// stored bytes are untouched; equal fences are idempotent replays;
// epoch dominates seq; unfenced puts reset the fence and always win.
func testSessionFencedPut(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	id := "s000033"

	newOwner := randBytes(10, 1024)
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 3, Seq: 9}, newOwner); err != nil {
		t.Fatalf("first fenced put: %v", err)
	}
	// A lagging ex-owner under an older epoch loses, even at higher seq.
	stale := randBytes(11, 1024)
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 2, Seq: 999}, stale); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale-epoch put err = %v, want ErrFenced", err)
	}
	// Same epoch, older seq loses too.
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 3, Seq: 8}, stale); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale-seq put err = %v, want ErrFenced", err)
	}
	got, err := s.GetSession(ctx, id)
	if err != nil || !bytes.Equal(got, newOwner) {
		t.Fatalf("fenced-off write mutated the record: err=%v", err)
	}
	// Equal fence: idempotent replay, applied.
	replay := randBytes(12, 512)
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 3, Seq: 9}, replay); err != nil {
		t.Fatalf("equal-fence replay: %v", err)
	}
	// Newer seq within the epoch, then a newer epoch, both win.
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 3, Seq: 10}, randBytes(13, 512)); err != nil {
		t.Fatalf("newer-seq put: %v", err)
	}
	next := randBytes(14, 512)
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 4, Seq: 0}, next); err != nil {
		t.Fatalf("newer-epoch put: %v", err)
	}
	got, err = s.GetSession(ctx, id)
	if err != nil || !bytes.Equal(got, next) {
		t.Fatalf("newer-epoch write not visible: err=%v", err)
	}
	// Unfenced put resets the fence: it wins, and a later fenced put at
	// any epoch wins over it.
	plain := randBytes(15, 256)
	if err := s.PutSession(ctx, id, plain); err != nil {
		t.Fatalf("unfenced overwrite: %v", err)
	}
	got, err = s.GetSession(ctx, id)
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("unfenced overwrite not visible: err=%v", err)
	}
	if err := s.PutSessionFenced(ctx, id, store.Fence{Epoch: 1, Seq: 1}, randBytes(16, 256)); err != nil {
		t.Fatalf("fenced put after unfenced reset: %v", err)
	}
	// A fenced put on a missing id is a plain create.
	if err := s.PutSessionFenced(ctx, "fresh-id", store.Fence{Epoch: 9, Seq: 1}, randBytes(17, 128)); err != nil {
		t.Fatalf("fenced create: %v", err)
	}
}

func testBlobContentAddress(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	data := randBytes(3, 4096)
	d1, created, err := s.PutBlob(ctx, data)
	if err != nil || !created {
		t.Fatalf("first PutBlob: created=%v err=%v", created, err)
	}
	if d1 != store.DigestOf(data) || !d1.Valid() {
		t.Fatalf("digest %q does not match content", d1)
	}
	// Same bytes again: deduplicated, same address.
	d2, created, err := s.PutBlob(ctx, append([]byte(nil), data...))
	if err != nil || created || d2 != d1 {
		t.Fatalf("dedup PutBlob: d=%q created=%v err=%v", d2, created, err)
	}
	got, err := s.GetBlob(ctx, d1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetBlob: err=%v", err)
	}
	ok, err := s.HasBlob(ctx, d1)
	if err != nil || !ok {
		t.Fatalf("HasBlob(existing) = %v, %v", ok, err)
	}
	missing := store.DigestOf([]byte("not stored"))
	if ok, err := s.HasBlob(ctx, missing); err != nil || ok {
		t.Fatalf("HasBlob(missing) = %v, %v", ok, err)
	}
	if _, err := s.GetBlob(ctx, missing); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("GetBlob(missing) err = %v, want ErrNotFound", err)
	}
}

func testCheckpointManifest(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	base := randBytes(4, 8192)
	fine := randBytes(5, 8192)
	db, _, err := s.PutBlob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	df, _, err := s.PutBlob(ctx, fine)
	if err != nil {
		t.Fatal(err)
	}
	ck := store.Checkpoint{Key: "s000001", Cluster: 3, Base: db, Fine: df, Labels: 12}
	if err := s.PutCheckpoint(ctx, ck); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	got, err := s.GetCheckpoint(ctx, ck.Key)
	if err != nil || got != ck {
		t.Fatalf("GetCheckpoint = %+v, %v; want %+v", got, err, ck)
	}
	// Manifests referencing missing blobs are rejected, not stored broken.
	bad := store.Checkpoint{Key: "sX", Cluster: 0, Base: db, Fine: store.DigestOf([]byte("gone"))}
	if err := s.PutCheckpoint(ctx, bad); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("dangling manifest err = %v, want ErrNotFound", err)
	}
	if err := s.DeleteCheckpoint(ctx, ck.Key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetCheckpoint(ctx, ck.Key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("deleted manifest err = %v, want ErrNotFound", err)
	}
	// Blobs survive manifest deletion — they may be shared.
	if ok, _ := s.HasBlob(ctx, db); !ok {
		t.Fatal("base blob vanished with its manifest")
	}
}

// testCheckpointBitwise is the issue's "bitwise checkpoint round-trip":
// the full base+fine blob pair of two checkpoints sharing a baseline
// comes back byte-identical, and the shared baseline is one physical blob.
func testCheckpointBitwise(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	base := randBytes(6, 64*1024) // cluster baseline, shared
	fineA := randBytes(7, 64*1024)
	fineB := randBytes(8, 64*1024)

	db, createdBase, err := s.PutBlob(ctx, base)
	if err != nil || !createdBase {
		t.Fatal(err)
	}
	dA, _, _ := s.PutBlob(ctx, fineA)
	// Replica 2 re-pushes the same baseline before its own fine blob.
	db2, createdAgain, err := s.PutBlob(ctx, base)
	if err != nil || createdAgain || db2 != db {
		t.Fatalf("baseline not deduplicated: created=%v %q vs %q", createdAgain, db2, db)
	}
	dB, _, _ := s.PutBlob(ctx, fineB)

	for _, ck := range []store.Checkpoint{
		{Key: "sA", Cluster: 1, Base: db, Fine: dA, Labels: 10},
		{Key: "sB", Cluster: 1, Base: db, Fine: dB, Labels: 10},
	} {
		if err := s.PutCheckpoint(ctx, ck); err != nil {
			t.Fatal(err)
		}
	}
	ckA, _ := s.GetCheckpoint(ctx, "sA")
	ckB, _ := s.GetCheckpoint(ctx, "sB")
	if ckA.Base != ckB.Base {
		t.Fatalf("checkpoints from one baseline do not share a blob: %q vs %q", ckA.Base, ckB.Base)
	}
	for _, pair := range []struct {
		d    store.Digest
		want []byte
	}{{ckA.Base, base}, {ckA.Fine, fineA}, {ckB.Fine, fineB}} {
		got, err := s.GetBlob(ctx, pair.d)
		if err != nil || !bytes.Equal(got, pair.want) {
			t.Fatalf("blob %s not bitwise identical (err=%v)", pair.d, err)
		}
	}
	st := s.Stats()
	if st.BlobsPhysical != 3 || st.BlobsLogical != 4 {
		t.Fatalf("stats physical=%d logical=%d, want 3 physical / 4 logical", st.BlobsPhysical, st.BlobsLogical)
	}
	if st.DedupRatio <= 1 {
		t.Fatalf("dedup ratio %.2f, want > 1 with a shared baseline", st.DedupRatio)
	}
}

func testLeaseExclusion(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	l1, err := s.Lock(ctx, "ft:s000001", "replica-a", time.Minute)
	if err != nil {
		t.Fatalf("first Lock: %v", err)
	}
	if l1.Key() != "ft:s000001" || l1.Owner() != "replica-a" {
		t.Fatalf("lease identity wrong: %q/%q", l1.Key(), l1.Owner())
	}
	if _, err := s.Lock(ctx, "ft:s000001", "replica-b", time.Minute); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("second Lock err = %v, want ErrLocked", err)
	}
	// Unrelated key is independent.
	l2, err := s.Lock(ctx, "ft:s000002", "replica-b", time.Minute)
	if err != nil {
		t.Fatalf("unrelated Lock: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
	if err := l1.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	// Released key is reacquirable.
	l3, err := s.Lock(ctx, "ft:s000001", "replica-b", time.Minute)
	if err != nil {
		t.Fatalf("re-Lock after release: %v", err)
	}
	l3.Release()
}

func testLeaseExpiryTakeover(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	l1, err := s.Lock(ctx, "ft:s1", "crashed-replica", 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond) // lease expires, holder "crashed"
	l2, err := s.Lock(ctx, "ft:s1", "replica-b", time.Minute)
	if err != nil {
		t.Fatalf("takeover of expired lease: %v", err)
	}
	// The stale lease is dead: both Refresh and Release must fail.
	if err := l1.Refresh(ctx, time.Minute); !errors.Is(err, store.ErrLeaseLost) {
		t.Fatalf("stale Refresh err = %v, want ErrLeaseLost", err)
	}
	if err := l1.Release(); !errors.Is(err, store.ErrLeaseLost) {
		t.Fatalf("stale Release err = %v, want ErrLeaseLost", err)
	}
	// The live lease refreshes fine.
	if err := l2.Refresh(ctx, time.Minute); err != nil {
		t.Fatalf("live Refresh: %v", err)
	}
	l2.Release()
}

// testLeaseContention is the issue's "lease contention under 8
// goroutines": run with -race, assert mutual exclusion via a counter
// that would race if two leases were ever live at once.
func testLeaseContention(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	const goroutines = 8
	const key = "ft:contended"
	var inCritical int32 // guarded only by the lease — the race detector audits it
	var acquired int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := fmt.Sprintf("replica-%d", g)
			for try := 0; try < 200; try++ {
				l, err := s.Lock(ctx, key, owner, time.Minute)
				if errors.Is(err, store.ErrLocked) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				if n := inCritical; n != 0 {
					t.Errorf("lease granted while %d holders inside", n)
				}
				inCritical++
				time.Sleep(100 * time.Microsecond)
				inCritical--
				if err := l.Release(); err != nil {
					t.Errorf("Release: %v", err)
				}
				mu.Lock()
				acquired++
				mu.Unlock()
				return
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if acquired != goroutines {
		t.Fatalf("%d/%d goroutines ever acquired the lease", acquired, goroutines)
	}
}

// testHydrateAfterCrash writes sessions and a checkpoint through one
// handle, then reopens the same state via a second handle with no
// flush/close of the first — the crash model — and asserts everything
// reads back intact.
func testHydrateAfterCrash(t *testing.T, newStore Factory) {
	s, reopen := newStore(t)
	if reopen == nil {
		t.Skip("backend has no crash-durability to test")
	}
	ctx := ctxT(t)
	sess := randBytes(9, 3000)
	base := randBytes(10, 50000)
	fine := randBytes(11, 50000)
	if err := s.PutSession(ctx, "s000042", sess); err != nil {
		t.Fatal(err)
	}
	db, _, _ := s.PutBlob(ctx, base)
	df, _, _ := s.PutBlob(ctx, fine)
	if err := s.PutCheckpoint(ctx, store.Checkpoint{Key: "s000042", Cluster: 2, Base: db, Fine: df, Labels: 9}); err != nil {
		t.Fatal(err)
	}
	// "Crash": no Close, no flush. New handle, same state.
	s2 := reopen(t)
	got, err := s2.GetSession(ctx, "s000042")
	if err != nil || !bytes.Equal(got, sess) {
		t.Fatalf("session lost across crash: err=%v", err)
	}
	ck, err := s2.GetCheckpoint(ctx, "s000042")
	if err != nil || ck.Cluster != 2 || ck.Labels != 9 {
		t.Fatalf("checkpoint lost across crash: %+v err=%v", ck, err)
	}
	for _, pair := range []struct {
		d    store.Digest
		want []byte
	}{{ck.Base, base}, {ck.Fine, fine}} {
		b, err := s2.GetBlob(ctx, pair.d)
		if err != nil || !bytes.Equal(b, pair.want) {
			t.Fatalf("blob %s lost across crash: err=%v", pair.d, err)
		}
	}
}

func testStats(t *testing.T, newStore Factory) {
	s, _ := newStore(t)
	ctx := ctxT(t)
	st := s.Stats()
	if st.Sessions != 0 || st.BlobsPhysical != 0 || st.Checkpoints != 0 {
		t.Fatalf("fresh store stats not zero: %+v", st)
	}
	if st.Backend != s.Backend() {
		t.Fatalf("stats backend %q != %q", st.Backend, s.Backend())
	}
	s.PutSession(ctx, "a", randBytes(12, 100))
	s.PutSession(ctx, "b", randBytes(13, 100))
	d, _, _ := s.PutBlob(ctx, randBytes(14, 100))
	s.PutCheckpoint(ctx, store.Checkpoint{Key: "a", Base: d, Fine: d})
	l, err := s.Lock(ctx, "k", "o", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Sessions != 2 || st.BlobsPhysical != 1 || st.Checkpoints != 1 || st.LocksHeld != 1 {
		t.Fatalf("stats census wrong: %+v", st)
	}
	if st.BlobBytes != 100 {
		t.Fatalf("blob bytes %d, want 100", st.BlobBytes)
	}
	l.Release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetSession(ctx, "a"); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("op after Close err = %v, want ErrClosed", err)
	}
}
