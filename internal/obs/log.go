package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
)

// The package logger emits JSON lines (log/slog) to stderr by default.
// Serving code logs through Log(ctx) so every record carries the
// request's trace_id and can be joined against the trace store and the
// per-session flight recorder.

var (
	logLevel  = func() *slog.LevelVar { v := &slog.LevelVar{}; v.Set(slog.LevelInfo); return v }()
	logMu     sync.Mutex
	logOut    io.Writer = os.Stderr
	curLogger atomic.Pointer[slog.Logger]
)

func buildLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: logLevel}))
}

// Logger returns the process-wide structured logger.
func Logger() *slog.Logger {
	if l := curLogger.Load(); l != nil {
		return l
	}
	logMu.Lock()
	defer logMu.Unlock()
	if l := curLogger.Load(); l != nil {
		return l
	}
	l := buildLogger(logOut)
	curLogger.Store(l)
	return l
}

// SetLogWriter redirects the structured logger (tests, log shipping).
func SetLogWriter(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	logOut = w
	curLogger.Store(buildLogger(w))
}

// SetLogLevel adjusts the minimum level (default Info; serving request
// logs are emitted at Debug so steady-state traffic is quiet).
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// ParseLogLevel maps a -loglevel flag value to a slog.Level, defaulting
// to Info for unknown strings.
func ParseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Log returns the structured logger, annotated with the trace_id of the
// trace carried by ctx (if any) so log lines correlate with traces.
func Log(ctx context.Context) *slog.Logger {
	l := Logger()
	if t := TraceOf(ctx); t != nil {
		return l.With("trace_id", t.ID().String())
	}
	return l
}
