package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceStore is a bounded in-memory buffer of finished traces with
// tail-sampling admission: errored traces are always kept, OK traces pass
// through a token bucket so a healthy high-QPS server retains a steady
// trickle instead of churning the buffer. Eviction is FIFO once the
// capacity is hit, so an error trace is still findable for roughly
// capacity/QPS seconds after it happened.
type TraceStore struct {
	mu         sync.Mutex
	capacity   int
	okPerSec   float64
	okBurst    float64
	okBudget   float64
	lastRefill time.Time
	byID       map[uint64]*TraceSnapshot
	order      []uint64
	kept       int64
	shed       int64
	evicted    int64
}

// NewTraceStore returns a store holding at most capacity traces and
// admitting at most okPerSec non-error traces per second (errors are
// always admitted).
func NewTraceStore(capacity int, okPerSec float64) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	if okPerSec < 0 {
		okPerSec = 0
	}
	burst := math.Max(okPerSec, 8)
	return &TraceStore{
		capacity:   capacity,
		okPerSec:   okPerSec,
		okBurst:    burst,
		okBudget:   burst,
		lastRefill: time.Now(),
		byID:       map[uint64]*TraceSnapshot{},
	}
}

// Add finishes t, applies the tail-sampling admission decision, and
// stores a snapshot keyed by the trace id's low word. It reports whether
// the trace was kept.
func (st *TraceStore) Add(t *Trace) bool {
	if st == nil || t == nil {
		return false
	}
	t.Finish()
	errored := t.Errored()
	st.mu.Lock()
	defer st.mu.Unlock()
	if !errored {
		now := time.Now()
		st.okBudget = math.Min(st.okBurst, st.okBudget+now.Sub(st.lastRefill).Seconds()*st.okPerSec)
		st.lastRefill = now
		if st.okBudget < 1 {
			st.shed++
			return false
		}
		st.okBudget--
	}
	snap := t.Snapshot()
	key := t.ID().Lo
	if _, dup := st.byID[key]; !dup {
		st.order = append(st.order, key)
	}
	st.byID[key] = &snap
	st.kept++
	for len(st.order) > st.capacity {
		old := st.order[0]
		st.order = st.order[1:]
		delete(st.byID, old)
		st.evicted++
	}
	return true
}

// parseTraceKey accepts a 16-hex (low word) or 32-hex (full W3C) trace id
// and returns the 64-bit lookup key.
func parseTraceKey(id string) (uint64, bool) {
	id = strings.TrimSpace(id)
	if len(id) == 32 {
		id = id[16:]
	}
	if len(id) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Get looks up a stored trace by id — either the 16-hex short form or the
// full 32-hex W3C form.
func (st *TraceStore) Get(id string) (TraceSnapshot, bool) {
	key, ok := parseTraceKey(id)
	if !ok {
		return TraceSnapshot{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	snap, ok := st.byID[key]
	if !ok {
		return TraceSnapshot{}, false
	}
	return *snap, true
}

// Len returns the number of traces currently held.
func (st *TraceStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// TraceStoreStats is a point-in-time view of the store's admission
// accounting.
type TraceStoreStats struct {
	Held    int   `json:"held"`
	Kept    int64 `json:"kept"`
	Shed    int64 `json:"shed"`
	Evicted int64 `json:"evicted"`
}

// Stats returns the store's admission accounting.
func (st *TraceStore) Stats() TraceStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return TraceStoreStats{Held: len(st.byID), Kept: st.kept, Shed: st.shed, Evicted: st.evicted}
}
