package obs

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrapeMetrics(t *testing.T, h http.Handler, acceptEncoding string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	return rr
}

func TestMetricsContentTypeAndGzip(t *testing.T) {
	GetCounter("gzip_test.marker").Add(7)
	h := Handler()

	// Plain scrape: exposition content type, no encoding.
	rr := scrapeMetrics(t, h, "")
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	if rr.Header().Get("Content-Encoding") != "" {
		t.Fatal("plain scrape must not be encoded")
	}
	plain := rr.Body.String()
	if !strings.Contains(plain, "gzip_test_marker 7") {
		t.Fatalf("marker metric missing:\n%s", plain)
	}

	// Gzip scrape: encoded body gunzips to the same exposition.
	rr = scrapeMetrics(t, h, "gzip")
	if rr.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", rr.Header().Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(rr.Body)
	if err != nil {
		t.Fatalf("body is not gzip: %v", err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(unzipped), "gzip_test_marker 7") {
		t.Fatal("gunzipped body lacks marker metric")
	}
	if len(rr.Body.Bytes()) >= len(unzipped) && len(unzipped) > 256 {
		t.Fatalf("gzip did not compress: %d encoded vs %d plain", rr.Body.Len(), len(unzipped))
	}
}

func TestAcceptsGzipNegotiation(t *testing.T) {
	cases := []struct {
		hdr  string
		want bool
	}{
		{"", false},
		{"gzip", true},
		{"GZIP", true},
		{"deflate, gzip;q=0.5, br", true},
		{"gzip;q=0", false},
		{"gzip; q=0.0", false},
		{"xgzipx", false},
		{"deflate", false},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		if c.hdr != "" {
			req.Header.Set("Accept-Encoding", c.hdr)
		}
		if got := acceptsGzip(req); got != c.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", c.hdr, got, c.want)
		}
	}
}
