package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultMaxCardinality bounds the number of distinct label-value
// combinations a vec will materialise. Combination number maxCard+1 and
// beyond share one overflow child whose every label value is
// OverflowLabel, so a bug that interpolates user input into a label value
// degrades the metric instead of exhausting memory.
const DefaultMaxCardinality = 64

// OverflowLabel is the label value assigned to the shared overflow child
// once a vec hits its cardinality bound.
const OverflowLabel = "other"

// vecSep joins label values into a map key; 0x1f (ASCII unit separator)
// cannot appear in sane label values.
const vecSep = "\x1f"

// vecKey validates the value count and joins values into a child key.
func vecKey(name string, labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("obs: vec %s expects %d label values (%v), got %d",
			name, len(labels), labels, len(values)))
	}
	return strings.Join(values, vecSep)
}

func overflowKey(labels []string) string {
	vals := make([]string, len(labels))
	for i := range vals {
		vals[i] = OverflowLabel
	}
	return strings.Join(vals, vecSep)
}

// sortedKeys returns the map keys sorted, so every iteration over a vec's
// children (Dump, Snapshot, Prometheus exposition) is deterministic.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec is a family of counters partitioned by label values, e.g.
// serve.http_requests{endpoint, code}. With is safe for concurrent use;
// hold the child handle when the label values are fixed at a call site.
type CounterVec struct {
	name     string
	labels   []string
	maxCard  int
	ovKey    string
	mu       sync.RWMutex
	children map[string]*Counter
}

func newCounterVec(name string, labels []string) *CounterVec {
	return &CounterVec{
		name:     name,
		labels:   append([]string(nil), labels...),
		maxCard:  DefaultMaxCardinality,
		ovKey:    overflowKey(labels),
		children: map[string]*Counter{},
	}
}

// Labels returns the vec's label names in declaration order.
func (v *CounterVec) Labels() []string { return append([]string(nil), v.labels...) }

// SetMaxCardinality adjusts the distinct-combination bound (the overflow
// child is exempt). Intended for setup time, before traffic.
func (v *CounterVec) SetMaxCardinality(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n >= 1 {
		v.maxCard = n
	}
}

// With returns the child counter for the given label values (one per
// label, in order), creating it on first use. Past the cardinality bound
// it returns the shared overflow child.
func (v *CounterVec) With(values ...string) *Counter {
	k := vecKey(v.name, v.labels, values)
	v.mu.RLock()
	c := v.children[k]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[k]; c != nil {
		return c
	}
	if len(v.children) >= v.maxCard && k != v.ovKey {
		k = v.ovKey
		if c := v.children[k]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.children[k] = c
	return c
}

// Each calls f for every child in sorted label order (the same
// deterministic order Dump and the Prometheus exposition use). f must not
// call back into the vec.
func (v *CounterVec) Each(f func(values []string, c *Counter)) { v.each(f) }

// each calls f for every child in sorted label order.
func (v *CounterVec) each(f func(values []string, c *Counter)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, k := range sortedKeys(v.children) {
		f(strings.Split(k, vecSep), v.children[k])
	}
}

func (v *CounterVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, c := range v.children {
		c.reset()
	}
}

// GaugeVec is a family of gauges partitioned by label values, e.g.
// serve.breaker_state{cluster}.
type GaugeVec struct {
	name     string
	labels   []string
	maxCard  int
	ovKey    string
	mu       sync.RWMutex
	children map[string]*Gauge
}

func newGaugeVec(name string, labels []string) *GaugeVec {
	return &GaugeVec{
		name:     name,
		labels:   append([]string(nil), labels...),
		maxCard:  DefaultMaxCardinality,
		ovKey:    overflowKey(labels),
		children: map[string]*Gauge{},
	}
}

// Labels returns the vec's label names in declaration order.
func (v *GaugeVec) Labels() []string { return append([]string(nil), v.labels...) }

// SetMaxCardinality adjusts the distinct-combination bound.
func (v *GaugeVec) SetMaxCardinality(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n >= 1 {
		v.maxCard = n
	}
}

// With returns the child gauge for the given label values, creating it on
// first use; past the cardinality bound it returns the overflow child.
func (v *GaugeVec) With(values ...string) *Gauge {
	k := vecKey(v.name, v.labels, values)
	v.mu.RLock()
	g := v.children[k]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g := v.children[k]; g != nil {
		return g
	}
	if len(v.children) >= v.maxCard && k != v.ovKey {
		k = v.ovKey
		if g := v.children[k]; g != nil {
			return g
		}
	}
	g = &Gauge{}
	v.children[k] = g
	return g
}

// Each calls f for every child in sorted label order. f must not call
// back into the vec.
func (v *GaugeVec) Each(f func(values []string, g *Gauge)) { v.each(f) }

func (v *GaugeVec) each(f func(values []string, g *Gauge)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, k := range sortedKeys(v.children) {
		f(strings.Split(k, vecSep), v.children[k])
	}
}

func (v *GaugeVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range v.children {
		g.reset()
	}
}

// HistogramVec is a family of histograms partitioned by label values,
// sharing one set of bucket bounds, e.g. serve.http_latency_us{endpoint}.
type HistogramVec struct {
	name     string
	labels   []string
	bounds   []float64
	maxCard  int
	ovKey    string
	mu       sync.RWMutex
	children map[string]*Histogram
}

func newHistogramVec(name string, bounds []float64, labels []string) *HistogramVec {
	return &HistogramVec{
		name:     name,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		maxCard:  DefaultMaxCardinality,
		ovKey:    overflowKey(labels),
		children: map[string]*Histogram{},
	}
}

// Labels returns the vec's label names in declaration order.
func (v *HistogramVec) Labels() []string { return append([]string(nil), v.labels...) }

// SetMaxCardinality adjusts the distinct-combination bound.
func (v *HistogramVec) SetMaxCardinality(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n >= 1 {
		v.maxCard = n
	}
}

// With returns the child histogram for the given label values, creating
// it (with the vec's shared bounds) on first use; past the cardinality
// bound it returns the overflow child.
func (v *HistogramVec) With(values ...string) *Histogram {
	k := vecKey(v.name, v.labels, values)
	v.mu.RLock()
	h := v.children[k]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[k]; h != nil {
		return h
	}
	if len(v.children) >= v.maxCard && k != v.ovKey {
		k = v.ovKey
		if h := v.children[k]; h != nil {
			return h
		}
	}
	h = newHistogram(v.bounds)
	v.children[k] = h
	return h
}

// Each calls f for every child in sorted label order. f must not call
// back into the vec.
func (v *HistogramVec) Each(f func(values []string, h *Histogram)) { v.each(f) }

func (v *HistogramVec) each(f func(values []string, h *Histogram)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, k := range sortedKeys(v.children) {
		f(strings.Split(k, vecSep), v.children[k])
	}
}

func (v *HistogramVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, h := range v.children {
		h.reset()
	}
}

// labelPairs renders `name{l1="v1",l2="v2"}`-style suffixes for Dump and
// Snapshot keys (Prometheus exposition has its own escaping path).
func labelPairs(labels, values []string) string {
	parts := make([]string, len(labels))
	for i := range labels {
		parts[i] = labels[i] + "=" + values[i]
	}
	return "{" + strings.Join(parts, ",") + "}"
}
