package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceID is a W3C-trace-context-compatible 128-bit trace id. The low 64
// bits (Lo) are the internal lookup key; when a caller hands us a 128-bit
// id via traceparent the high word is preserved so the id echoed back
// matches what they sent byte-for-byte.
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the full 32-hex-digit W3C form.
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// Short renders the 16-hex-digit low word — the key accepted by
// TraceStore.Get and the /v1/traces/<id> endpoint.
func (id TraceID) Short() string { return fmt.Sprintf("%016x", id.Lo) }

// SpanID is a 64-bit span id.
type SpanID uint64

// String renders the 16-hex-digit W3C form.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// randID returns a non-zero random 64-bit id (zero is invalid in W3C
// trace context). math/rand/v2's global generator is concurrency-safe and
// seeded per process.
func randID() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// Span caps: a request trace that would record more spans than this is
// misbehaving (a loop instrumenting per-element); further spans are
// counted in dropped and discarded rather than growing without bound. The
// background trace keeps the old unbounded behaviour because batch
// binaries legitimately record thousands of fold/epoch spans.
const defaultMaxSpans = 512

// Trace owns one tree of spans plus the identity that ties it to a
// request: a 128-bit trace id, a root span id (echoed as the parent id in
// traceparent), an error flag for tail-sampling, and a done bit set by
// Finish. Start/End are mutex-guarded; parent attribution follows call
// order, which is correct because each request's spans are sequential
// within its own trace. Concurrent hot paths that share one trace should
// stick to metrics.
type Trace struct {
	mu       sync.Mutex
	id       TraceID
	name     string
	start    time.Time
	dur      time.Duration
	done     bool
	err      bool
	nspans   int
	dropped  int
	maxSpans int
	root     *Span
	cur      *Span
}

// NewTrace returns a trace with a fresh random 64-bit id.
func NewTrace(name string) *Trace {
	t := &Trace{id: TraceID{Lo: randID()}, name: name, maxSpans: defaultMaxSpans}
	t.reset()
	return t
}

// NewTraceFromParent returns a trace continuing the given W3C traceparent
// header: the caller's 128-bit trace id is kept (so it round-trips on the
// response) and a fresh root span id is minted. An empty or malformed
// header yields a fresh trace, same as NewTrace.
func NewTraceFromParent(name, traceparent string) *Trace {
	t := NewTrace(name)
	if id, _, ok := ParseTraceparent(traceparent); ok {
		t.id = id
	}
	return t
}

func (t *Trace) reset() {
	t.start = time.Now()
	t.dur = 0
	t.done = false
	t.err = false
	t.nspans = 0
	t.dropped = 0
	t.root = &Span{name: "root", id: SpanID(randID()), start: t.start}
	t.cur = t.root
}

// ID returns the trace id.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Name returns the trace's name (e.g. "http.windows").
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Traceparent renders the trace identity as a W3C traceparent header
// value, using the root span as the parent id.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("00-%s-%s-01", t.id.String(), t.root.id.String())
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It returns ok=false for malformed
// headers, all-zero ids, or the reserved version ff.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceID{}, 0, false
	}
	if _, err := strconv.ParseUint(parts[0], 16, 8); err != nil || strings.EqualFold(parts[0], "ff") {
		return TraceID{}, 0, false
	}
	hi, err1 := strconv.ParseUint(parts[1][:16], 16, 64)
	lo, err2 := strconv.ParseUint(parts[1][16:], 16, 64)
	sp, err3 := strconv.ParseUint(parts[2], 16, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return TraceID{}, 0, false
	}
	id := TraceID{Hi: hi, Lo: lo}
	if id.IsZero() || sp == 0 {
		return TraceID{}, 0, false
	}
	return id, SpanID(sp), true
}

// Start opens a span as a child of the innermost open span. It is nil-safe
// and returns nil (a no-op span) once the trace is finished or has hit its
// span cap.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil
	}
	if t.nspans >= t.maxSpans {
		t.dropped++
		return nil
	}
	t.nspans++
	s := &Span{name: name, id: SpanID(randID()), start: time.Now(), parent: t.cur, t: t}
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// MarkError flags the trace as errored; errored traces bypass the
// TraceStore's OK-trace rate limit (tail sampling keeps them all).
func (t *Trace) MarkError() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.err = true
	t.mu.Unlock()
}

// Errored reports whether the trace (or any span in it) recorded an error.
func (t *Trace) Errored() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Finish closes every open span, freezes the trace duration, and marks the
// trace done (further Start calls return nil). Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	now := time.Now()
	endTree(t.root, now)
	t.cur = t.root
	t.dur = now.Sub(t.start)
	t.done = true
}

func endTree(s *Span, now time.Time) {
	for _, c := range s.children {
		if !c.ended {
			c.dur = now.Sub(c.start)
			c.ended = true
		}
		endTree(c, now)
	}
}

// RecordStages attaches a finished StageTimer breakdown to the trace as
// pre-ended synthetic child spans of the root, named "stage.<name>" and
// tiled sequentially from the trace start. The HTTP layer calls this right
// before handing the trace to the store, so /v1/traces/<id> shows where a
// request's time went stage by stage even though the stages were measured
// across goroutines (where live spans would race). Works on finished
// traces too: the spans carry their own durations.
func (t *Trace) RecordStages(stages []StageDur) {
	if t == nil || len(stages) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	off := time.Duration(0)
	for _, sd := range stages {
		if sd.Dur <= 0 {
			continue
		}
		if t.nspans >= t.maxSpans {
			t.dropped++
			continue
		}
		t.nspans++
		s := &Span{
			name:   "stage." + sd.Kind.String(),
			id:     SpanID(randID()),
			start:  t.start.Add(off),
			dur:    sd.Dur,
			ended:  true,
			parent: t.root,
			t:      t,
		}
		t.root.children = append(t.root.children, s)
		off += sd.Dur
	}
}

// Render returns the trace's span tree as indented text. Same-named
// siblings are merged into one line with a repetition count, total, and
// mean duration; their children are merged recursively, so 44 LOSO folds
// render as one `loso.fold[44]` subtree instead of 44 copies.
func (t *Trace) Render() string {
	if t == nil {
		return "(no spans recorded)"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.root.children) == 0 {
		return "(no spans recorded)"
	}
	var b strings.Builder
	renderGroups(&b, groupByName(t.root.children), 0, time.Now())
	return strings.TrimRight(b.String(), "\n")
}

// SpanSnap is one span flattened out of a trace tree, JSON-ready.
type SpanSnap struct {
	ID      string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Err     string `json:"error,omitempty"`
	// Attrs carries span attributes (SetAttr): cross-node hops record the
	// peer they targeted and the ring epoch they were sent under.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Node names the replica that recorded the span. Empty in a single
	// node's own snapshot; the federated trace stitcher stamps it so a
	// merged tree attributes every span to its origin replica.
	Node string `json:"node,omitempty"`
}

// TraceSnapshot is an immutable JSON-ready copy of a trace, the unit the
// TraceStore holds and /v1/traces/<id> returns.
type TraceSnapshot struct {
	TraceID string     `json:"trace_id"`
	Name    string     `json:"name"`
	Start   time.Time  `json:"start"`
	DurUS   int64      `json:"dur_us"`
	Error   bool       `json:"error"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Spans   []SpanSnap `json:"spans"`
}

// Snapshot flattens the trace into a TraceSnapshot. Spans still open are
// reported with their elapsed-so-far duration.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	snap := TraceSnapshot{
		TraceID: t.id.String(),
		Name:    t.name,
		Start:   t.start,
		Error:   t.err,
		Dropped: t.dropped,
	}
	if t.done {
		snap.DurUS = t.dur.Microseconds()
	} else {
		snap.DurUS = now.Sub(t.start).Microseconds()
	}
	var walk func(s *Span, parent SpanID)
	walk = func(s *Span, parent SpanID) {
		for _, c := range s.children {
			ss := SpanSnap{
				ID:      c.id.String(),
				Name:    c.name,
				StartUS: c.start.Sub(t.start).Microseconds(),
				DurUS:   c.elapsed(now).Microseconds(),
			}
			if parent != 0 {
				ss.Parent = parent.String()
			}
			if c.err != nil {
				ss.Err = c.err.Error()
			}
			if len(c.attrs) > 0 {
				ss.Attrs = make(map[string]string, len(c.attrs))
				for k, v := range c.attrs {
					ss.Attrs[k] = v
				}
			}
			snap.Spans = append(snap.Spans, ss)
			walk(c, c.id)
		}
	}
	walk(t.root, 0)
	return snap
}

// traceKey carries a *Trace through a context.Context.
type traceKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceOf returns the trace carried by ctx, or nil.
func TraceOf(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpanCtx opens a span on the trace carried by ctx. When ctx carries
// no trace it returns nil — a no-op span — so concurrent hot paths called
// outside a request (tests, batch eval) never contend on a shared tree.
func StartSpanCtx(ctx context.Context, name string) *Span {
	if t := TraceOf(ctx); t != nil {
		return t.Start(name)
	}
	return nil
}

// defTrace is the process-global background trace that the legacy
// StartSpan/SpanTree API renders; batch binaries print it at exit as a
// Table-II-style timing breakdown. It is unbounded because batch runs
// legitimately record thousands of spans.
var defTrace = func() *Trace {
	t := NewTrace("process")
	t.maxSpans = 1 << 20
	return t
}()

// BackgroundTrace returns the process-global trace behind StartSpan.
func BackgroundTrace() *Trace { return defTrace }

// StartSpan opens a span on the background trace. Sequential pipeline
// stages (fit, cluster, train, eval folds) use this; request paths should
// carry a per-request trace via context and StartSpanCtx instead.
func StartSpan(name string) *Span { return defTrace.Start(name) }

// SpanTree renders the background trace's span tree.
func SpanTree() string { return defTrace.Render() }

// ResetSpans discards the background trace's span tree (tests and
// repeated in-process runs).
func ResetSpans() {
	defTrace.mu.Lock()
	defer defTrace.mu.Unlock()
	max := defTrace.maxSpans
	defTrace.reset()
	defTrace.maxSpans = max
}
