package obs

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestJournalWrap fills a small ring past capacity and checks the oldest
// events fall off while order, sequence numbering, and accounting hold.
func TestJournalWrap(t *testing.T) {
	j := NewJournal("nodeA", 4)
	for i := 0; i < 10; i++ {
		j.Record(context.Background(), "k", "event %d", i)
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("held %d events, want ring capacity 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := int64(7 + i) // events 6..9 survive, seq is 1-based
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if want := fmt.Sprintf("event %d", 6+i); ev.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
		if ev.Node != "nodeA" {
			t.Fatalf("event %d node = %q", i, ev.Node)
		}
	}
	st := j.Stats()
	if st.Held != 4 || st.Cap != 4 || st.Total != 10 {
		t.Fatalf("stats = %+v, want held=4 cap=4 total=10", st)
	}
}

// TestJournalEpochAndTrace checks the epoch source and the recording
// context's trace id are stamped onto events.
func TestJournalEpochAndTrace(t *testing.T) {
	j := NewJournal("nodeA", 8)
	epoch := uint64(0)
	j.SetEpochSource(func() uint64 { return epoch })
	j.Record(context.Background(), "a", "before")
	epoch = 3
	tr := NewTrace("test")
	j.Record(WithTrace(context.Background(), tr), "b", "after")
	evs := j.Events()
	if evs[0].Epoch != 0 || evs[1].Epoch != 3 {
		t.Fatalf("epochs = %d,%d, want 0,3", evs[0].Epoch, evs[1].Epoch)
	}
	if evs[0].TraceID != "" {
		t.Fatalf("untraced event carries trace id %q", evs[0].TraceID)
	}
	if evs[1].TraceID != tr.ID().Short() {
		t.Fatalf("traced event id = %q, want %q", evs[1].TraceID, tr.ID().Short())
	}
}

// TestJournalConcurrentWriters hammers one journal from many goroutines
// (run under -race) and checks every surviving event is well-formed with
// strictly increasing sequence numbers.
func TestJournalConcurrentWriters(t *testing.T) {
	j := NewJournal("nodeA", 64)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Record(context.Background(), "k", "writer %d event %d", w, i)
			}
		}(w)
	}
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() { // concurrent reader: Events must be safe mid-write
		defer rwg.Done()
		for i := 0; i < 100; i++ {
			j.Events()
			j.Stats()
		}
	}()
	wg.Wait()
	rwg.Wait()
	evs := j.Events()
	if len(evs) != 64 {
		t.Fatalf("held %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if st := j.Stats(); st.Total != writers*perWriter {
		t.Fatalf("total = %d, want %d", st.Total, writers*perWriter)
	}
}

// TestMergeEventsStable checks the fleet merge is ordered by
// (epoch, node, seq) and is independent of segment arrival order — the
// stitched stream must be identical no matter which replica merged it.
func TestMergeEventsStable(t *testing.T) {
	a := []JournalEvent{
		{Node: "a", Seq: 1, Epoch: 1, Kind: "node_joined"},
		{Node: "a", Seq: 2, Epoch: 2, Kind: "view_adopted"},
		{Node: "a", Seq: 3, Epoch: 2, Kind: "peer_down"},
	}
	b := []JournalEvent{
		{Node: "b", Seq: 1, Epoch: 1, Kind: "node_joined"},
		{Node: "b", Seq: 2, Epoch: 1, Kind: "chaos"},
		{Node: "b", Seq: 3, Epoch: 2, Kind: "view_adopted"},
	}
	ab := MergeEvents(a, b)
	ba := MergeEvents(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge order depends on segment order:\nab=%v\nba=%v", ab, ba)
	}
	for i := 1; i < len(ab); i++ {
		prev, cur := ab[i-1], ab[i]
		if cur.Epoch < prev.Epoch {
			t.Fatalf("epoch order violated at %d: %+v after %+v", i, cur, prev)
		}
		if cur.Epoch == prev.Epoch && cur.Node == prev.Node && cur.Seq < prev.Seq {
			t.Fatalf("per-node seq order violated at %d", i)
		}
	}
	// Epoch-1 events from both nodes all precede every epoch-2 event.
	for i, ev := range ab {
		if ev.Epoch == 2 {
			for _, rest := range ab[i:] {
				if rest.Epoch < 2 {
					t.Fatalf("epoch-1 event after first epoch-2 event: %v", ab)
				}
			}
			break
		}
	}
}
