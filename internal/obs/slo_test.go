package obs

import (
	"testing"
	"time"
)

// sloHarness drives a tracker with a manual clock and a scripted sample
// stream.
type sloHarness struct {
	tr     *SLOTracker
	clock  time.Time
	sample SLOSample
}

func newSLOHarness(cfg SLOConfig) *sloHarness {
	h := &sloHarness{clock: time.Unix(1_700_000_000, 0)}
	h.tr = NewSLOTracker(cfg, func() SLOSample { return h.sample })
	h.tr.now = func() time.Time { return h.clock }
	return h
}

// step advances the clock one interval, adds the given deltas to the
// cumulative sample, and ticks.
func (h *sloHarness) step(total, errors, latTotal, latUnder int64) {
	h.clock = h.clock.Add(h.tr.cfg.Interval)
	h.sample.Total += total
	h.sample.Errors += errors
	h.sample.LatTotal += latTotal
	h.sample.LatUnder += latUnder
	h.tr.Tick()
}

func TestSLOHealthyTrafficNoBreach(t *testing.T) {
	h := newSLOHarness(SLOConfig{
		Availability: 0.999, LatencyTarget: 0.99,
		ShortWindow: 5 * time.Second, LongWindow: 20 * time.Second,
		Interval: time.Second, FastBurn: 10, MinEvents: 5,
	})
	for i := 0; i < 30; i++ {
		h.step(100, 0, 100, 100)
	}
	st := h.tr.Status()
	if st.FastBurning {
		t.Fatalf("healthy traffic burning: %+v", st)
	}
	for _, o := range st.Objectives {
		if o.Breaching || o.BreachCount != 0 || o.ShortBurn != 0 {
			t.Fatalf("objective %s not clean: %+v", o.Name, o)
		}
	}
}

func TestSLOAvailabilityFastBurnFiresOnceAndRecovers(t *testing.T) {
	h := newSLOHarness(SLOConfig{
		Availability: 0.999, LatencyTarget: 0.99,
		ShortWindow: 5 * time.Second, LongWindow: 10 * time.Second,
		Interval: time.Second, FastBurn: 10, MinEvents: 5,
		Rearm: time.Hour, // one callback per test
	})
	var fires []SLOStatus
	h.tr.OnFastBurn(func(st SLOStatus) { fires = append(fires, st) })

	// Warm up healthy, then a 100% error burst: burn = 1/0.001 = 1000.
	for i := 0; i < 12; i++ {
		h.step(50, 0, 50, 50)
	}
	for i := 0; i < 12; i++ {
		h.step(50, 50, 50, 50)
	}
	if len(fires) != 1 {
		t.Fatalf("fast-burn callbacks = %d, want 1 (rearm gating)", len(fires))
	}
	st := h.tr.Status()
	if !st.FastBurning || !st.Objectives[0].Breaching {
		t.Fatalf("availability should be breaching: %+v", st)
	}
	if st.Objectives[0].BreachCount != 1 {
		t.Fatalf("breach count = %d, want 1", st.Objectives[0].BreachCount)
	}
	if st.Objectives[1].Breaching {
		t.Fatalf("latency objective should not breach: %+v", st.Objectives[1])
	}

	// Recovery: healthy traffic long enough to flush both windows.
	for i := 0; i < 25; i++ {
		h.step(50, 0, 50, 50)
	}
	st = h.tr.Status()
	if st.FastBurning || st.Objectives[0].Breaching {
		t.Fatalf("should have recovered: %+v", st)
	}
	if st.Objectives[0].BreachCount != 1 {
		t.Fatalf("recovery must not reset breach count: %+v", st.Objectives[0])
	}
}

func TestSLOLatencyObjectiveBreaches(t *testing.T) {
	h := newSLOHarness(SLOConfig{
		Availability: 0.999, LatencyTarget: 0.99,
		ShortWindow: 5 * time.Second, LongWindow: 10 * time.Second,
		Interval: time.Second, FastBurn: 10, MinEvents: 5,
	})
	fired := 0
	h.tr.OnFastBurn(func(SLOStatus) { fired++ })
	// Every request succeeds but half are over the bound: bad frac 0.5,
	// burn 50 ≥ 10.
	for i := 0; i < 15; i++ {
		h.step(40, 0, 40, 20)
	}
	st := h.tr.Status()
	if st.Objectives[0].Breaching {
		t.Fatalf("availability must not breach: %+v", st.Objectives[0])
	}
	if !st.Objectives[1].Breaching || fired == 0 {
		t.Fatalf("latency should breach (fired=%d): %+v", fired, st.Objectives[1])
	}
}

func TestSLOMinEventsGuardsIdleServer(t *testing.T) {
	h := newSLOHarness(SLOConfig{
		Availability: 0.999, ShortWindow: 5 * time.Second,
		LongWindow: 10 * time.Second, Interval: time.Second,
		FastBurn: 10, MinEvents: 100,
	})
	// A lone failed request on an idle server: burn is enormous but the
	// event floor suppresses the verdict.
	for i := 0; i < 15; i++ {
		h.step(1, 1, 1, 0)
	}
	if st := h.tr.Status(); st.FastBurning {
		t.Fatalf("min-events floor failed: %+v", st)
	}
}

func TestSLOStartStop(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Interval: time.Millisecond}, func() SLOSample { return SLOSample{} })
	tr.Start()
	time.Sleep(10 * time.Millisecond)
	tr.Stop()
	tr.Stop() // idempotent

	// Stop without Start must not hang.
	tr2 := NewSLOTracker(SLOConfig{}, func() SLOSample { return SLOSample{} })
	done := make(chan struct{})
	go func() { tr2.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hung")
	}
}
