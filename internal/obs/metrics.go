// Package obs is the repo's zero-dependency observability layer: a
// process-global metrics registry (counters, gauges, fixed-bucket
// histograms with quantile snapshots), hierarchical wall-clock spans that
// render as an indented trace tree, and optional HTTP wiring for
// /debug/pprof, /debug/vars, and /metrics.
//
// The paper's edge evaluation is a measurement exercise — mean time
// consumption (MTC) and mean power consumption (MPC) per platform — so the
// pipeline's stages are instrumented here rather than with ad-hoc prints:
// training publishes per-epoch gauges, clustering publishes convergence
// counters, the LOSO harness opens one span per fold, and the edge monitor
// feeds a per-horizon inference-latency histogram. Binaries print
// SpanTree() and MetricsDump() at exit to produce a Table-II-style
// breakdown of where time went.
//
// Counters and gauges are safe for concurrent use and allocation-free on
// the hot path; hold the handle returned by Counter/Gauge/Histogram in a
// package-level variable instead of re-looking it up per event.
package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a last-value (or accumulated) float64 measurement.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge (used for cumulative quantities such
// as energy in joules).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram is a fixed-bucket distribution with atomic per-bucket counts.
// Bounds are inclusive upper bucket edges; observations above the last
// bound land in an overflow bucket. Quantiles are estimated by linear
// interpolation inside the covering bucket, clamped to the observed
// min/max, which is exact enough for latency-style distributions.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sum     Gauge
	min     atomic.Uint64 // float64 bits; valid only when count > 0
	max     atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. It is concurrency-safe and allocation-free.
// Non-finite values (NaN, ±Inf) are dropped: one NaN would otherwise
// poison sum/min/max and make every later Quantile call return garbage.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if math.Float64frombits(old) <= v || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min and Max return the extreme observed values (0 when empty).
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution. Within the covering bucket the value is linearly
// interpolated; results are clamped to the observed min/max. An empty
// histogram deterministically returns 0 for every q, and a NaN q is
// treated as 0 (the minimum) rather than propagating.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := h.Min()
			if i > 0 {
				lower = math.Max(lower, h.bounds[i-1])
			}
			upper := h.Max()
			if i < len(h.bounds) {
				upper = math.Min(upper, h.bounds[i])
			}
			if upper < lower {
				upper = lower
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return h.Max()
}

// Buckets snapshots the histogram's bucket layout: bounds are the
// inclusive upper edges and counts has len(bounds)+1 entries, the last
// being the overflow bucket. The SLO tracker diffs successive snapshots to
// compute windowed latency-threshold rates, and clear-bench merges
// snapshots across vec children to report stage medians.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return bounds, counts
}

// CumulativeCount returns the number of observations in buckets whose
// upper edge is ≤ le — i.e. observations known to be ≤ le at bucket
// resolution. Used for latency-SLO "good event" counting, where le is
// chosen to coincide with a bucket edge.
func (h *Histogram) CumulativeCount(le float64) int64 {
	var n int64
	for i, b := range h.bounds {
		if b > le {
			return n
		}
		n += h.buckets[i].Load()
	}
	return n
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.reset()
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor: {start, start·f, start·f², …}.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds:
// {start, start+width, …}.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. Most code uses the process-global default registry via
// the package-level Counter/Gauge/Histogram functions.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	hvecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry (mainly for tests; production code
// shares the default registry so one dump covers the whole process).
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		cvecs:    map[string]*CounterVec{},
		gvecs:    map[string]*GaugeVec{},
		hvecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls return the existing histogram and
// ignore bounds, so call sites can share a handle without coordinating.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named labeled counter family, creating it with
// the given label names on first use. Later calls return the existing vec
// and ignore labels, mirroring Histogram's bounds behaviour.
func (r *Registry) CounterVec(name string, labels []string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cvecs[name]
	if !ok {
		v = newCounterVec(name, labels)
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named labeled gauge family, creating it on first
// use.
func (r *Registry) GaugeVec(name string, labels []string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gvecs[name]
	if !ok {
		v = newGaugeVec(name, labels)
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named labeled histogram family, creating it
// with the given shared bucket bounds on first use.
func (r *Registry) HistogramVec(name string, bounds []float64, labels []string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hvecs[name]
	if !ok {
		v = newHistogramVec(name, bounds, labels)
		r.hvecs[name] = v
	}
	return v
}

// Reset zeroes every registered metric in place. Handles held by
// instrumented packages stay valid, so tests can isolate accounting
// without re-registering.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, v := range r.cvecs {
		v.reset()
	}
	for _, v := range r.gvecs {
		v.reset()
	}
	for _, v := range r.hvecs {
		v.reset()
	}
}

// histSummary is the JSON-friendly quantile digest shared by Snapshot and
// the expvar export.
func histSummary(h *Histogram) map[string]any {
	return map[string]any{
		"count": h.Count(),
		"sum":   h.Sum(),
		"min":   h.Min(),
		"max":   h.Max(),
		"p50":   h.Quantile(0.50),
		"p95":   h.Quantile(0.95),
		"p99":   h.Quantile(0.99),
	}
}

// Snapshot returns a JSON-friendly view of every metric, used by the
// expvar export. Vec children appear under `name{label=value,…}` keys;
// encoding/json sorts map keys, so the marshalled form is deterministic.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]any{}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = histSummary(h)
	}
	for name, v := range r.cvecs {
		v.each(func(values []string, c *Counter) {
			out[name+labelPairs(v.labels, values)] = c.Value()
		})
	}
	for name, v := range r.gvecs {
		v.each(func(values []string, g *Gauge) {
			out[name+labelPairs(v.labels, values)] = g.Value()
		})
	}
	for name, v := range r.hvecs {
		v.each(func(values []string, h *Histogram) {
			out[name+labelPairs(v.labels, values)] = histSummary(h)
		})
	}
	return out
}

// Dump renders every metric as sorted plain text, one per line — the
// payload of the /debug/metrics endpoint and of the end-of-run snapshot
// the binaries print. The output is deterministically ordered (sorted by
// metric name, vec children by label values) so run-to-run CI log diffs
// are stable.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, g.Value()))
	}
	histLine := func(name string, h *Histogram) string {
		return fmt.Sprintf(
			"%s count=%d mean=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
			name, h.Count(), h.Mean(), h.Min(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	}
	for name, h := range r.hists {
		lines = append(lines, histLine(name, h))
	}
	for name, v := range r.cvecs {
		v.each(func(values []string, c *Counter) {
			lines = append(lines, fmt.Sprintf("%s %d", name+labelPairs(v.labels, values), c.Value()))
		})
	}
	for name, v := range r.gvecs {
		v.each(func(values []string, g *Gauge) {
			lines = append(lines, fmt.Sprintf("%s %g", name+labelPairs(v.labels, values), g.Value()))
		})
	}
	for name, v := range r.hvecs {
		v.each(func(values []string, h *Histogram) {
			lines = append(lines, histLine(name+labelPairs(v.labels, values), h))
		})
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// def is the process-global registry used by all instrumented packages.
var def = NewRegistry()

var publishOnce sync.Once

// Default returns the process-global registry.
func Default() *Registry {
	publishExpvar()
	return def
}

// publishExpvar exposes the default registry under the "clear" expvar key
// so /debug/vars includes the pipeline metrics alongside memstats.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("clear", expvar.Func(func() any { return def.Snapshot() }))
	})
}

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return def.Counter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return def.Gauge(name) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name string, bounds []float64) *Histogram { return def.Histogram(name, bounds) }

// GetCounterVec returns a labeled counter family from the default registry.
func GetCounterVec(name string, labels ...string) *CounterVec { return def.CounterVec(name, labels) }

// GetGaugeVec returns a labeled gauge family from the default registry.
func GetGaugeVec(name string, labels ...string) *GaugeVec { return def.GaugeVec(name, labels) }

// GetHistogramVec returns a labeled histogram family from the default
// registry.
func GetHistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	return def.HistogramVec(name, bounds, labels)
}

// MetricsDump renders the default registry as plain text.
func MetricsDump() string { return Default().Dump() }

// ResetMetrics zeroes the default registry (tests and repeated runs).
func ResetMetrics() { def.Reset() }
