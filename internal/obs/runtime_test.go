package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	s := StartRuntimeSampler(time.Millisecond, func() {
		GetGauge("test.hook_ran").Set(1)
	})
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent

	if gGoroutines.Value() <= 0 {
		t.Fatalf("runtime.goroutines = %v, want > 0", gGoroutines.Value())
	}
	if gHeapAlloc.Value() <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %v, want > 0", gHeapAlloc.Value())
	}
	if gUptime.Value() <= 0 {
		t.Fatalf("process_uptime_seconds = %v, want > 0", gUptime.Value())
	}
	if GetGauge("test.hook_ran").Value() != 1 {
		t.Fatal("onSample hook did not run")
	}
}

func TestPublishBuildInfoSeries(t *testing.T) {
	PublishBuildInfo()
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `build_info{`) {
		t.Fatal("build_info series missing from render")
	}
	if !strings.Contains(text, `goversion="`+runtime.Version()+`"`) {
		t.Fatalf("build_info lacks goversion label:\n%s", text)
	}
	if !strings.Contains(text, "process_uptime_seconds") {
		t.Fatal("process_uptime_seconds missing from render")
	}
}

func TestRuntimeSamplerNilStop(t *testing.T) {
	var s *RuntimeSampler
	s.Stop() // must not panic
}
