package obs

// Runtime health telemetry: a background sampler that publishes Go
// runtime vitals (heap, GC pauses, goroutine count, scheduler latency)
// into the default registry so /metrics exposes them alongside the
// serving metrics, plus process identity gauges (build_info, uptime).
// The SLO tracker and the triggered profile capturer lean on these: a
// burn caused by GC pressure or scheduler starvation is visible in the
// same scrape that shows the burn.

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// procStart anchors process_uptime_seconds. Package init runs before any
// serving starts, which is close enough to process birth.
var procStart = time.Now()

var (
	gGoroutines = GetGauge("runtime.goroutines")
	gHeapAlloc  = GetGauge("runtime.heap_alloc_bytes")
	gHeapSys    = GetGauge("runtime.heap_sys_bytes")
	gHeapObj    = GetGauge("runtime.heap_objects")
	gNextGC     = GetGauge("runtime.next_gc_bytes")
	gGCCycles   = GetGauge("runtime.gc_cycles")
	gUptime     = GetGauge("process_uptime_seconds")
	// GC pauses are tens of µs to tens of ms; scheduler-latency probes are
	// timer overshoots, same range.
	hGCPauseUS = GetHistogram("runtime.gc_pause_us", ExpBuckets(1, 2, 20))
	hSchedUS   = GetHistogram("runtime.sched_latency_us", ExpBuckets(1, 2, 20))
)

var buildInfoOnce sync.Once

// PublishBuildInfo registers the build_info{goversion,commit} identity
// gauge (constant 1, Prometheus convention) in the default registry.
// Idempotent; called by StartRuntimeSampler and by obs.Handler so the
// series is present in every /metrics scrape.
func PublishBuildInfo() {
	buildInfoOnce.Do(func() {
		commit := "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && s.Value != "" {
					commit = s.Value
					if len(commit) > 12 {
						commit = commit[:12]
					}
				}
			}
		}
		GetGaugeVec("build_info", "goversion", "commit").
			With(runtime.Version(), commit).Set(1)
		gUptime.Set(time.Since(procStart).Seconds())
	})
}

// RuntimeSampler periodically reads runtime.MemStats and publishes the
// gauges above. Start with StartRuntimeSampler; Stop is idempotent.
type RuntimeSampler struct {
	interval time.Duration
	probe    time.Duration
	onSample []func()

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	lastNumGC uint32
}

// StartRuntimeSampler begins sampling at the given interval (default 1s
// when non-positive). Optional onSample hooks run after each built-in
// sample — callers use them to publish gauges the obs package cannot see
// (e.g. tensor kernel op counters) on the same cadence.
func StartRuntimeSampler(interval time.Duration, onSample ...func()) *RuntimeSampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{
		interval: interval,
		probe:    time.Millisecond,
		onSample: onSample,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	PublishBuildInfo()
	s.sample()
	go s.loop()
	return s
}

// Stop halts the sampler and waits for its goroutine to exit. Idempotent.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sample()
			s.probeSched()
		}
	}
}

// sample publishes one MemStats reading. GC pauses are drained from the
// PauseNs ring: only cycles newer than the previous sample are observed,
// so each pause lands in the histogram exactly once.
func (s *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gGoroutines.Set(float64(runtime.NumGoroutine()))
	gHeapAlloc.Set(float64(ms.HeapAlloc))
	gHeapSys.Set(float64(ms.HeapSys))
	gHeapObj.Set(float64(ms.HeapObjects))
	gNextGC.Set(float64(ms.NextGC))
	gGCCycles.Set(float64(ms.NumGC))
	gUptime.Set(time.Since(procStart).Seconds())
	for gc := s.lastNumGC; gc < ms.NumGC && ms.NumGC-gc <= uint32(len(ms.PauseNs)); gc++ {
		hGCPauseUS.Observe(float64(ms.PauseNs[gc%uint32(len(ms.PauseNs))]) / 1e3)
	}
	s.lastNumGC = ms.NumGC
	for _, f := range s.onSample {
		f()
	}
}

// probeSched measures scheduler latency as timer overshoot: sleep for a
// short fixed probe and record how much later than requested the
// goroutine actually ran. Under a healthy scheduler this is tens of µs;
// under CPU starvation it stretches to ms — exactly the signal that
// explains a latency-SLO burn that heap gauges don't.
func (s *RuntimeSampler) probeSched() {
	t0 := time.Now()
	timer := time.NewTimer(s.probe)
	select {
	case <-timer.C:
		if over := time.Since(t0) - s.probe; over > 0 {
			hSchedUS.Observe(float64(over.Microseconds()))
		}
	case <-s.stop:
		timer.Stop()
	}
}
