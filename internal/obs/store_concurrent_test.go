package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestTraceStoreConcurrentFIFOCapacity hammers Add from many goroutines
// with errored traces (which bypass the OK token bucket) and checks the
// FIFO capacity bound and admission accounting stay consistent under
// contention. Run with -race.
func TestTraceStoreConcurrentFIFOCapacity(t *testing.T) {
	const capacity, writers, perWriter = 32, 8, 50
	st := NewTraceStore(capacity, 0)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := NewTrace(fmt.Sprintf("op-%d", i))
				tr.MarkError()
				if !st.Add(tr) {
					t.Error("errored trace shed")
				}
			}
		}()
	}
	wg.Wait()

	if st.Len() != capacity {
		t.Fatalf("held %d traces, want capacity %d", st.Len(), capacity)
	}
	s := st.Stats()
	if s.Kept != writers*perWriter {
		t.Fatalf("kept = %d, want %d", s.Kept, writers*perWriter)
	}
	if s.Kept-s.Evicted != int64(s.Held) {
		t.Fatalf("accounting broken: kept %d - evicted %d != held %d", s.Kept, s.Evicted, s.Held)
	}
}

// TestTraceStoreErrorsSurviveOKFlood floods the store with OK traces from
// concurrent writers while a handful of errored traces land; every errored
// trace must remain resolvable by id — the tail-sampling guarantee the
// breach-diagnosis path depends on.
func TestTraceStoreErrorsSurviveOKFlood(t *testing.T) {
	const errTraces = 16
	st := NewTraceStore(128, 1) // burst 8: the flood is mostly shed

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				st.Add(NewTrace("ok"))
			}
		}()
	}
	ids := make([]string, errTraces)
	var emu sync.Mutex
	for e := 0; e < errTraces; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			tr := NewTrace("boom")
			tr.MarkError()
			id := tr.ID().Short()
			if !st.Add(tr) {
				t.Errorf("errored trace %d shed during flood", e)
			}
			emu.Lock()
			ids[e] = id
			emu.Unlock()
		}(e)
	}
	wg.Wait()

	for e, id := range ids {
		snap, ok := st.Get(id)
		if !ok {
			t.Fatalf("errored trace %d (%s) evicted by OK flood", e, id)
		}
		if !snap.Error {
			t.Fatalf("trace %s lost its error mark", id)
		}
	}
	if s := st.Stats(); s.Shed == 0 {
		t.Fatalf("flood was not shed at all: %+v", s)
	}
}
