package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Journal is a bounded per-node ring of operator-grade cluster events:
// membership changes, drains, epoch adoptions, breaker transitions, chaos
// windows, SLO breaches. Each event is stamped with the recording node,
// a per-node monotonic sequence number, the ring epoch in effect when it
// was recorded, and (when the recording context carries a trace) the
// request trace id — so a fleet-merged event stream can be ordered
// causally by epoch and tied back to the traces that drove it. The ring
// overwrites oldest-first once capacity is hit, like the per-session
// flight recorder: the journal answers "what happened to this cluster
// recently", not "everything that ever happened".
type Journal struct {
	mu      sync.Mutex
	node    string
	epochFn func() uint64
	buf     []JournalEvent
	next    int
	n       int
	seq     int64
	total   int64
}

// JournalEvent is one recorded cluster event.
type JournalEvent struct {
	// Node is the replica that recorded the event; Seq its per-node
	// monotonic sequence number. (Node, Seq) is unique fleet-wide, and
	// within one node Seq is the recording order.
	Node string `json:"node"`
	Seq  int64  `json:"seq"`
	// Epoch is the ring epoch in effect when the event was recorded
	// (0 single-replica / before the router installs its epoch source).
	Epoch uint64 `json:"epoch"`
	// TMS is the wall-clock record time (Unix ms) — display only; merge
	// ordering uses (Epoch, Node, Seq), never the clock.
	TMS int64 `json:"t_ms"`
	// Kind classifies the event (node_joined, node_left, drain,
	// view_adopted, peer_down, peer_up, peer_breaker, store_breaker,
	// chaos, slo_breach, ...); Detail is its human-readable payload.
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	// TraceID is the short id of the trace under which the event was
	// recorded, when the recording context carried one.
	TraceID string `json:"trace_id,omitempty"`
}

// NewJournal returns a journal for node holding at most capacity events.
func NewJournal(node string, capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{node: node, buf: make([]JournalEvent, capacity)}
}

// SetEpochSource installs the ring-epoch reader stamped into every
// subsequent event (router mode; nil-safe to leave unset).
func (j *Journal) SetEpochSource(fn func() uint64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.epochFn = fn
	j.mu.Unlock()
}

// Record appends one event. The ctx's trace id (if any) is stamped onto
// it; a nil journal drops the event, so call sites need no guards.
func (j *Journal) Record(ctx context.Context, kind, format string, args ...any) {
	if j == nil {
		return
	}
	ev := JournalEvent{
		TMS:    time.Now().UnixMilli(),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	}
	if t := TraceOf(ctx); t != nil {
		ev.TraceID = t.ID().Short()
	}
	j.mu.Lock()
	ev.Node = j.node
	if j.epochFn != nil {
		ev.Epoch = j.epochFn()
	}
	j.seq++
	ev.Seq = j.seq
	j.buf[j.next] = ev
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	j.total++
	j.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (j *Journal) Events() []JournalEvent {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEvent, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// JournalStats is the journal's accounting surface.
type JournalStats struct {
	// Held is the number of events currently retained; Cap the ring bound;
	// Total the number ever recorded (Total-Held were overwritten).
	Held  int   `json:"held"`
	Cap   int   `json:"cap"`
	Total int64 `json:"total"`
}

// Stats snapshots the journal's accounting.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Held: j.n, Cap: len(j.buf), Total: j.total}
}

// MergeEvents merges per-node event segments into one fleet-ordered
// stream: by epoch first (the cluster's causal clock — an event recorded
// under epoch 3 cannot precede the change that minted epoch 3), then by
// node and per-node sequence for a deterministic total order that is
// stable regardless of which replica performed the merge or the order
// segments arrived in.
func MergeEvents(segments ...[]JournalEvent) []JournalEvent {
	var out []JournalEvent
	for _, seg := range segments {
		out = append(out, seg...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Epoch != out[b].Epoch {
			return out[a].Epoch < out[b].Epoch
		}
		if out[a].Node != out[b].Node {
			return out[a].Node < out[b].Node
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

var nodeInfoOnce sync.Once

// PublishNodeInfo registers the node_info{node} identity gauge (constant
// 1, build_info convention) so a Prometheus scraping several replicas of
// this process can tell them apart by a stable label rather than by
// scrape target address. Idempotent — first caller wins, matching the
// one-node-per-process deployment model.
func PublishNodeInfo(node string) {
	if node == "" {
		return
	}
	nodeInfoOnce.Do(func() {
		GetGaugeVec("node_info", "node").With(node).Set(1)
	})
}
