package obs

import (
	"compress/gzip"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Serve starts a background HTTP server exposing the process's
// observability surface:
//
//	/metrics        Prometheus text exposition of the default registry
//	/debug/metrics  human-oriented plain-text dump (quantile digests)
//	/debug/vars     expvar JSON (includes the "clear" registry snapshot)
//	/debug/pprof    the standard Go profiler endpoints
//	/debug/spans    the background span tree (live; open spans show elapsed)
//
// It returns the bound address (useful with ":0") once the listener is
// up; the server itself runs until the process exits. Binaries enable it
// behind a -obs flag so profiling a slow LOSO run is one flag away.
func Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	go func() { _ = http.Serve(ln, Handler()) }()
	return ln.Addr(), nil
}

// Handler returns the observability HTTP handler used by Serve, so
// long-running servers can mount it on their own mux instead.
func Handler() http.Handler {
	publishExpvar()
	PublishBuildInfo()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Refresh uptime on scrape so the gauge is live even without a
		// running runtime sampler.
		gUptime.Set(time.Since(procStart).Seconds())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var out io.Writer = w
		if acceptsGzip(r) {
			w.Header().Set("Content-Encoding", "gzip")
			gz := gzip.NewWriter(w)
			defer gz.Close()
			out = gz
		}
		_ = Default().WritePrometheus(out)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, MetricsDump()+"\n")
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, SpanTree()+"\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// acceptsGzip reports whether the scraper advertised gzip support.
// Token-level match (not a raw substring) so "xgzipx" does not count, and
// an explicit "gzip;q=0" refusal is honoured; Prometheus sends a plain
// "gzip" token.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		params := ""
		if i := strings.IndexByte(enc, ';'); i >= 0 {
			enc, params = strings.TrimSpace(enc[:i]), strings.ReplaceAll(enc[i+1:], " ", "")
		}
		if !strings.EqualFold(enc, "gzip") {
			continue
		}
		if strings.HasPrefix(params, "q=") {
			switch params[2:] {
			case "0", "0.0", "0.00", "0.000":
				return false
			}
		}
		return true
	}
	return false
}
