package obs

import (
	"testing"
)

// BenchmarkCounterInc is the inference-path budget check: one counter
// increment must cost well under 1 µs and zero allocations.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.hits")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncParallel measures the contended case (8 goroutines
// hammering one counter), the worst the edge monitor can produce.
func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench.hits")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkGaugeAdd covers the cumulative-energy path.
func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench.energy")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(0.001)
	}
}

// BenchmarkHistogramObserve covers the per-horizon latency path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.lat", ExpBuckets(1, 2, 24))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

// BenchmarkRegistryLookup measures the cost of a by-name handle lookup —
// call sites should hoist handles, but a lookup per event must still be
// cheap and allocation-free.
func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench.lookup")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("bench.lookup").Inc()
	}
}

// BenchmarkSpanStartEnd measures one span open/close pair (coarse-grained
// stages only; not used on per-inference paths).
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTrace("t")
	tr.maxSpans = 1 << 30 // the bench loops far past the request-trace cap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start("bench.span").End()
	}
}

// BenchmarkVecHotPath measures a labeled-counter increment through the
// With lookup — the worst case the HTTP layer pays per request when it
// does not hoist the child handle.
func BenchmarkVecHotPath(b *testing.B) {
	v := newCounterVec("bench.vec", []string{"endpoint", "code"})
	v.With("windows", "200") // pre-create so the loop hits the RLock path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("windows", "200").Inc()
	}
}

// BenchmarkVecHotPathParallel is the contended variant.
func BenchmarkVecHotPathParallel(b *testing.B) {
	v := newCounterVec("bench.vec", []string{"endpoint", "code"})
	v.With("windows", "200")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.With("windows", "200").Inc()
		}
	})
}
