package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestStageTimerResidualReconciles(t *testing.T) {
	st := NewStageTimer()
	st.Add(StageDecode, 1*time.Millisecond)
	st.Add(StageForward, 2*time.Millisecond)
	time.Sleep(10 * time.Millisecond) // wall time exceeds measured stages → residual > 0
	total, stages := st.Finish()
	if total <= 0 {
		t.Fatalf("total = %v, want > 0", total)
	}
	var sum time.Duration
	seen := map[StageKind]time.Duration{}
	for _, sd := range stages {
		sum += sd.Dur
		seen[sd.Kind] = sd.Dur
	}
	// The residual "other" stage makes the breakdown tile the total
	// exactly.
	if sum != total {
		t.Fatalf("stage sum %v != total %v", sum, total)
	}
	if seen[StageDecode] != 1*time.Millisecond || seen[StageForward] != 2*time.Millisecond {
		t.Fatalf("explicit stages wrong: %v", seen)
	}
	if seen[StageOther] <= 0 {
		t.Fatalf("missing residual other stage: %v", seen)
	}
}

func TestStageTimerFinishIdempotent(t *testing.T) {
	st := NewStageTimer()
	st.Add(StageSanitize, time.Millisecond)
	total1, s1 := st.Finish()
	time.Sleep(2 * time.Millisecond)
	st.Add(StageDecode, time.Hour) // after Finish: dropped
	total2, s2 := st.Finish()
	if total1 != total2 || len(s1) != len(s2) {
		t.Fatalf("Finish not idempotent: (%v,%d) vs (%v,%d)", total1, len(s1), total2, len(s2))
	}
}

func TestStageTimerNilSafe(t *testing.T) {
	var st *StageTimer
	st.Add(StageDecode, time.Second)
	st.Time(StageEncode)()
	st.SetCluster("3")
	if c := st.Cluster(); c != "none" {
		t.Fatalf("nil Cluster() = %q, want none", c)
	}
	if total, stages := st.Finish(); total != 0 || stages != nil {
		t.Fatalf("nil Finish() = (%v, %v)", total, stages)
	}
	if _, got := st.FlushTo(nil); got != nil {
		t.Fatalf("nil FlushTo returned stages")
	}
	if StageTimerOf(context.Background()) != nil {
		t.Fatal("StageTimerOf on bare ctx should be nil")
	}
}

func TestStageTimerContextCarriage(t *testing.T) {
	st := NewStageTimer()
	ctx := WithStageTimer(context.Background(), st)
	if got := StageTimerOf(ctx); got != st {
		t.Fatal("context round-trip lost the timer")
	}
}

func TestStageTimerFlushTo(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("stage_test", ExpBuckets(1, 2, 20), []string{"stage", "cluster"})
	st := NewStageTimer()
	st.SetCluster("2")
	st.Add(StageForward, 3*time.Millisecond)
	time.Sleep(5 * time.Millisecond) // leave room for a residual other stage
	_, stages := st.FlushTo(vec)
	if len(stages) < 2 { // forward + other
		t.Fatalf("stages = %v", stages)
	}
	h := vec.With("forward", "2")
	if h.Count() != 1 {
		t.Fatalf("forward{cluster=2} count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got < 2900 || got > 3100 {
		t.Fatalf("forward sum = %vµs, want ≈3000", got)
	}
	if vec.With("other", "2").Count() != 1 {
		t.Fatal("residual other not flushed")
	}
}

func TestStageTimerConcurrentAdd(t *testing.T) {
	st := NewStageTimer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k StageKind) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.Add(k, time.Microsecond)
			}
		}(StageKind(i % int(StageOther))) // only explicit stages; Other is residual-owned
	}
	wg.Wait()
	_, stages := st.Finish()
	var sum time.Duration
	for _, sd := range stages {
		if sd.Kind != StageOther {
			sum += sd.Dur
		}
	}
	if sum != 800*time.Microsecond {
		t.Fatalf("concurrent adds lost time: %v, want 800µs", sum)
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames len %d, want %d", len(names), NumStages)
	}
	if StageKind(99).String() != "unknown" {
		t.Fatal("out-of-range StageKind should stringify to unknown")
	}
}
