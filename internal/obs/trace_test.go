package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("req")
	h := tr.Traceparent()
	id, sp, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", h)
	}
	if id != tr.ID() || sp == 0 {
		t.Fatalf("parsed (%v, %v) from %q, want id %v", id, sp, h, tr.ID())
	}
	// A child trace continues the caller's 128-bit id verbatim.
	child := NewTraceFromParent("req", h)
	if child.ID() != tr.ID() {
		t.Fatalf("child id %v, want parent id %v", child.ID(), tr.ID())
	}
	if !strings.Contains(child.Traceparent(), tr.ID().String()) {
		t.Fatalf("child traceparent %q missing parent trace id", child.Traceparent())
	}
}

func TestTraceparentKeepsHighWord(t *testing.T) {
	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := NewTraceFromParent("req", header)
	if got := tr.ID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ingested id = %s, want the full caller id", got)
	}
	if got := tr.ID().Short(); got != "a3ce929d0e0e4736" {
		t.Fatalf("short id = %s, want low word", got)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-zz",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4bf92f3577b34da6-00f067aa0ba902b7-01",                 // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
	if _, _, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Error("canonical W3C example rejected")
	}
}

func TestTraceContextCarrier(t *testing.T) {
	tr := NewTrace("req")
	ctx := WithTrace(context.Background(), tr)
	if TraceOf(ctx) != tr {
		t.Fatal("TraceOf did not return the carried trace")
	}
	sp := StartSpanCtx(ctx, "stage")
	if sp == nil {
		t.Fatal("StartSpanCtx returned nil with a trace present")
	}
	sp.End()
	// No trace in ctx: nil span, and all methods are no-ops.
	var nilSpan *Span
	if got := StartSpanCtx(context.Background(), "stage"); got != nilSpan {
		t.Fatal("StartSpanCtx without a trace should return nil")
	}
	nilSpan.End()
	nilSpan.Fail(errors.New("x"))
	if !strings.Contains(tr.Render(), "stage") {
		t.Fatal("span missing from render")
	}
}

func TestTraceErrorPropagation(t *testing.T) {
	tr := NewTrace("req")
	sp := tr.Start("infer")
	sp.Fail(errors.New("deadline"))
	if !tr.Errored() {
		t.Fatal("Fail did not mark the trace errored")
	}
	snap := tr.Snapshot()
	if !snap.Error || len(snap.Spans) != 1 || snap.Spans[0].Err != "deadline" {
		t.Fatalf("snapshot did not carry span error: %+v", snap)
	}
	if !strings.Contains(tr.Render(), "(error)") {
		t.Fatal("render missing error marker")
	}
}

func TestTraceSpanCapDrops(t *testing.T) {
	tr := NewTrace("req")
	for i := 0; i < defaultMaxSpans+10; i++ {
		tr.Start("s").End()
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != defaultMaxSpans {
		t.Fatalf("kept %d spans, want cap %d", len(snap.Spans), defaultMaxSpans)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
}

func TestTraceFinishClosesOpenSpansAndStopsStarts(t *testing.T) {
	tr := NewTrace("req")
	outer := tr.Start("outer")
	tr.Start("inner") // left open
	tr.Finish()
	if !outer.ended {
		t.Fatal("Finish left a span open")
	}
	if tr.Start("late") != nil {
		t.Fatal("Start after Finish should return nil")
	}
	d := tr.Snapshot().DurUS
	time.Sleep(2 * time.Millisecond)
	if tr.Snapshot().DurUS != d {
		t.Fatal("duration not frozen by Finish")
	}
}

func TestTraceSnapshotParentLinks(t *testing.T) {
	tr := NewTrace("req")
	p := tr.Start("parent")
	tr.Start("child").End()
	p.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(snap.Spans))
	}
	if snap.Spans[0].Parent != "" {
		t.Fatalf("top-level span has parent %q", snap.Spans[0].Parent)
	}
	if snap.Spans[1].Parent != snap.Spans[0].ID {
		t.Fatalf("child parent = %q, want %q", snap.Spans[1].Parent, snap.Spans[0].ID)
	}
}

func TestTraceStoreTailSampling(t *testing.T) {
	st := NewTraceStore(1000, 0) // zero OK budget after burst drains
	okKept := 0
	for i := 0; i < 50; i++ {
		tr := NewTrace("ok")
		if st.Add(tr) {
			okKept++
		}
	}
	if okKept != 8 { // burst floor is 8 even with okPerSec=0
		t.Fatalf("kept %d OK traces, want the burst of 8", okKept)
	}
	// Errors always get through, even with the bucket empty.
	for i := 0; i < 20; i++ {
		tr := NewTrace("err")
		tr.MarkError()
		if !st.Add(tr) {
			t.Fatal("error trace was shed")
		}
	}
	s := st.Stats()
	if s.Kept != 28 || s.Shed != 42 {
		t.Fatalf("stats = %+v, want kept=28 shed=42", s)
	}
}

func TestTraceStoreGetAndEviction(t *testing.T) {
	st := NewTraceStore(4, 1000)
	var first, last *Trace
	for i := 0; i < 8; i++ {
		tr := NewTrace("req")
		tr.MarkError()
		tr.Start("s").End()
		st.Add(tr)
		if i == 0 {
			first = tr
		}
		last = tr
	}
	if st.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", st.Len())
	}
	if _, ok := st.Get(first.ID().String()); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	// Lookup works with both the 32-hex and 16-hex forms.
	for _, key := range []string{last.ID().String(), last.ID().Short()} {
		snap, ok := st.Get(key)
		if !ok {
			t.Fatalf("Get(%q) missed", key)
		}
		if snap.TraceID != last.ID().String() || len(snap.Spans) != 1 {
			t.Fatalf("bad snapshot for %q: %+v", key, snap)
		}
	}
	if _, ok := st.Get("not-hex"); ok {
		t.Fatal("Get accepted a malformed id")
	}
}

func TestBackgroundTraceUnbounded(t *testing.T) {
	ResetSpans()
	defer ResetSpans()
	for i := 0; i < defaultMaxSpans+50; i++ {
		StartSpan("s").End()
	}
	if BackgroundTrace().Snapshot().Dropped != 0 {
		t.Fatal("background trace dropped spans below its cap")
	}
}
