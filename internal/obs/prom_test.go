package obs

import (
	"math"
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// promLineRe matches one valid Prometheus text-format line: a comment or
// a `name{labels} value` sample. The same check runs in CI against the
// live /metrics endpoint.
var promLineRe = regexp.MustCompile(
	`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+)$`)

func TestWritePrometheusSyntaxAndContent(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.windows").Add(7)
	r.Gauge("serve.sessions_open").Set(3)
	r.Histogram("serve.window_us", []float64{10, 100}).Observe(42)
	cv := r.CounterVec("serve.http_requests", []string{"endpoint", "code"})
	cv.With("windows", "200").Add(5)
	cv.With("windows", "429").Inc()
	r.GaugeVec("serve.breaker_state", []string{"cluster"}).With("2").Set(1)
	hv := r.HistogramVec("serve.http_latency_us", []float64{100, 1000}, []string{"endpoint"})
	hv.With("windows").Observe(250)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLineRe.MatchString(line) {
			t.Errorf("line %d not valid prom text: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"# TYPE serve_windows counter\nserve_windows 7",
		"# TYPE serve_sessions_open gauge\nserve_sessions_open 3",
		`serve_http_requests{endpoint="windows",code="200"} 5`,
		`serve_http_requests{endpoint="windows",code="429"} 1`,
		`serve_breaker_state{cluster="2"} 1`,
		`serve_window_us_bucket{le="10"} 0`,
		`serve_window_us_bucket{le="100"} 1`,
		`serve_window_us_bucket{le="+Inf"} 1`,
		"serve_window_us_sum 42",
		"serve_window_us_count 1",
		`serve_http_latency_us_bucket{endpoint="windows",le="1000"} 1`,
		`serve_http_latency_us_sum{endpoint="windows"} 250`,
		`serve_http_latency_us_count{endpoint="windows"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at the total count.
	if strings.Count(out, "# TYPE serve_window_us histogram") != 1 {
		t.Error("histogram family should have exactly one TYPE line")
	}
}

func TestPromNameAndEscape(t *testing.T) {
	if got := promName("serve.http-latency.us"); got != "serve_http_latency_us" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_9lives" {
		t.Fatalf("promName leading digit = %q", got)
	}
	if got := promEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("promEscape = %q", got)
	}
}

// TestDumpDeterministic is the satellite regression test: two registries
// populated in different orders must render byte-identical Dump output,
// and the rendered lines must be sorted.
func TestDumpDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("z.count").Add(3) },
			func() { r.Gauge("a.gauge").Set(1.5) },
			func() { r.Histogram("m.hist", []float64{1, 10}).Observe(5) },
			func() { r.CounterVec("v.req", []string{"code"}).With("200").Add(2) },
			func() { r.CounterVec("v.req", []string{"code"}).With("429").Inc() },
			func() { r.GaugeVec("b.state", []string{"cluster"}).With("0").Set(2) },
		}
		for _, i := range order {
			ops[i]()
		}
		return r
	}
	fwd := build([]int{0, 1, 2, 3, 4, 5}).Dump()
	rev := build([]int{5, 4, 3, 2, 1, 0}).Dump()
	if fwd != rev {
		t.Fatalf("Dump depends on registration order:\n--- fwd ---\n%s\n--- rev ---\n%s", fwd, rev)
	}
	lines := strings.Split(fwd, "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("dump not sorted at line %d: %q > %q", i, lines[i-1], lines[i])
		}
	}
	// Prometheus output is deterministic too.
	var b1, b2 strings.Builder
	_ = build([]int{0, 1, 2, 3, 4, 5}).WritePrometheus(&b1)
	_ = build([]int{5, 4, 3, 2, 1, 0}).WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatal("WritePrometheus depends on registration order")
	}
}

// TestHistogramQuantileEmptyAndNaN is the satellite regression test for
// Quantile on degenerate inputs: empty histograms return a deterministic
// 0 for every q, non-finite observations are dropped instead of
// poisoning the digest, and a NaN q does not propagate.
func TestHistogramQuantileEmptyAndNaN(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 8))
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations counted: %d", h.Count())
	}
	h.Observe(4)
	if got := h.Quantile(math.NaN()); math.IsNaN(got) {
		t.Error("Quantile(NaN) propagated NaN")
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("single-value p50 = %v, want 4", got)
	}
}

// TestHistogramQuantileMonotonic checks q1 <= q2 implies
// Quantile(q1) <= Quantile(q2) across a randomized distribution.
func TestHistogramQuantileMonotonic(t *testing.T) {
	h := newHistogram(ExpBuckets(0.5, 1.7, 20))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		h.Observe(math.Exp(rng.NormFloat64() * 2)) // heavy-tailed
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile(%v) = %v", q, got, q-0.01, prev)
		}
		prev = got
	}
	if h.Quantile(0) < h.Min() || h.Quantile(1) > h.Max() {
		t.Fatal("quantiles escaped the observed min/max clamp")
	}
}
