package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http.requests", []string{"endpoint", "code"})
	v.With("windows", "200").Add(3)
	v.With("windows", "429").Inc()
	v.With("windows", "200").Inc()
	if got := v.With("windows", "200").Value(); got != 4 {
		t.Fatalf("child value = %d, want 4", got)
	}
	if r.CounterVec("http.requests", nil) != v {
		t.Fatal("vec lookup did not return the registered handle")
	}
	d := r.Dump()
	for _, want := range []string{
		`http.requests{endpoint=windows,code=200} 4`,
		`http.requests{endpoint=windows,code=429} 1`,
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	v := newCounterVec("x", []string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong label count did not panic")
		}
	}()
	v.With("only-one")
}

// TestVecCardinalityBound checks the vec saturates into the shared
// `other` child instead of growing without bound.
func TestVecCardinalityBound(t *testing.T) {
	v := newCounterVec("cards", []string{"user"})
	v.SetMaxCardinality(4)
	for i := 0; i < 100; i++ {
		v.With(fmt.Sprintf("u%03d", i)).Inc()
	}
	v.mu.RLock()
	n := len(v.children)
	v.mu.RUnlock()
	if n != 5 { // 4 real combos + 1 overflow
		t.Fatalf("children = %d, want 4 + overflow", n)
	}
	if got := v.With(OverflowLabel).Value(); got != 96 {
		t.Fatalf("overflow child = %d, want 96", got)
	}
	// Existing combos still resolve to their own child.
	if got := v.With("u001").Value(); got != 1 {
		t.Fatalf("pre-bound child = %d, want 1", got)
	}
}

func TestGaugeAndHistogramVecBound(t *testing.T) {
	gv := newGaugeVec("g", []string{"cluster"})
	gv.SetMaxCardinality(2)
	for i := 0; i < 10; i++ {
		gv.With(fmt.Sprintf("c%d", i)).Set(float64(i))
	}
	gv.mu.RLock()
	gn := len(gv.children)
	gv.mu.RUnlock()
	if gn != 3 {
		t.Fatalf("gauge children = %d, want 2 + overflow", gn)
	}
	hv := newHistogramVec("h", []float64{1, 10, 100}, []string{"cluster"})
	hv.SetMaxCardinality(2)
	for i := 0; i < 10; i++ {
		hv.With(fmt.Sprintf("c%d", i)).Observe(float64(i))
	}
	if got := hv.With(OverflowLabel).Count(); got != 8 {
		t.Fatalf("histogram overflow count = %d, want 8", got)
	}
}

// TestVecConcurrentLookup hammers With from many goroutines (run under
// -race in extended verify) while combos churn past the bound.
func TestVecConcurrentLookup(t *testing.T) {
	v := newCounterVec("conc", []string{"endpoint", "code"})
	v.SetMaxCardinality(8)
	hv := newHistogramVec("conc.lat", ExpBuckets(1, 2, 8), []string{"endpoint"})
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v.With(fmt.Sprintf("e%d", i%16), "200").Inc()
				hv.With(fmt.Sprintf("e%d", g%4)).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	var total int64
	v.each(func(_ []string, c *Counter) { total += c.Value() })
	if total != goroutines*perG {
		t.Fatalf("total across children = %d, want %d", total, goroutines*perG)
	}
}

func TestRegistryResetZeroesVecs(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("a", []string{"l"}).With("x")
	g := r.GaugeVec("b", []string{"l"}).With("x")
	h := r.HistogramVec("c", []float64{1}, []string{"l"}).With("x")
	c.Inc()
	g.Set(2)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset did not zero vec children")
	}
	c.Inc()
	if r.CounterVec("a", nil).With("x").Value() != 1 {
		t.Fatal("vec child handle detached after Reset")
	}
}
