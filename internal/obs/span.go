package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed region of a trace. Spans nest: a span started while
// another is open becomes its child, so a request (or a batch run on the
// background trace) produces a trace tree that Render collapses into an
// indented per-stage timing summary. All methods are nil-safe, so call
// sites can hold the result of StartSpanCtx without checking for a
// missing trace.
type Span struct {
	name     string
	id       SpanID
	start    time.Time
	dur      time.Duration
	ended    bool
	err      error
	attrs    map[string]string
	parent   *Span
	children []*Span
	t        *Trace
}

// ID returns the span's 64-bit id (zero for a no-op span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr records a key/value attribute on the span (e.g. the peer and
// ring epoch of a cross-node hop). Attributes ride the span into
// SpanSnap.Attrs, so a federated trace shows which replica each hop
// targeted. Nil-safe, like every Span method.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End closes the span, recording its wall-clock duration. Ending a span
// whose children are still open closes them too (their durations are
// capped at the parent's end), so a forgotten End deep in a helper cannot
// corrupt the tree. End is idempotent.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	now := time.Now()
	// If s is on the open chain, implicitly end every open descendant and
	// pop the cursor to s's parent.
	for c := s.t.cur; c != nil && c != s.t.root; c = c.parent {
		if c != s {
			continue
		}
		for d := s.t.cur; d != s; d = d.parent {
			if !d.ended {
				d.dur = now.Sub(d.start)
				d.ended = true
			}
		}
		s.t.cur = s.parent
		break
	}
	s.dur = now.Sub(s.start)
	s.ended = true
}

// Fail records err on the span, marks the owning trace as errored (so the
// trace store's tail sampling keeps it), and ends the span. A nil err just
// ends the span.
func (s *Span) Fail(err error) {
	if s == nil || s.t == nil {
		return
	}
	if err != nil {
		s.t.mu.Lock()
		s.err = err
		s.t.err = true
		s.t.mu.Unlock()
	}
	s.End()
}

// elapsed returns the span's duration, using the current time for spans
// still open (so Render mid-run shows live figures).
func (s *Span) elapsed(now time.Time) time.Duration {
	if s.ended {
		return s.dur
	}
	return now.Sub(s.start)
}

// spanGroup is a set of same-named siblings collapsed into one rendered
// line (e.g. kmeans.restart[8]).
type spanGroup struct {
	name  string
	spans []*Span
}

// groupByName collapses spans by name, preserving first-appearance order.
func groupByName(spans []*Span) []spanGroup {
	var out []spanGroup
	idx := map[string]int{}
	for _, s := range spans {
		if i, ok := idx[s.name]; ok {
			out[i].spans = append(out[i].spans, s)
			continue
		}
		idx[s.name] = len(out)
		out = append(out, spanGroup{name: s.name, spans: []*Span{s}})
	}
	return out
}

func renderGroups(b *strings.Builder, groups []spanGroup, depth int, now time.Time) {
	for _, g := range groups {
		var total time.Duration
		running := false
		failed := false
		var kids []*Span
		for _, s := range g.spans {
			total += s.elapsed(now)
			running = running || !s.ended
			failed = failed || s.err != nil
			kids = append(kids, s.children...)
		}
		label := g.name
		if n := len(g.spans); n > 1 {
			label = fmt.Sprintf("%s[%d]", g.name, n)
		}
		line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth), label)
		b.WriteString(fmt.Sprintf("%-44s %10s", line, fmtDur(total)))
		if n := len(g.spans); n > 1 {
			b.WriteString(fmt.Sprintf("  (avg %s)", fmtDur(total/time.Duration(n))))
		}
		if running {
			b.WriteString("  (running)")
		}
		if failed {
			b.WriteString("  (error)")
		}
		b.WriteString("\n")
		renderGroups(b, groupByName(kids), depth+1, now)
	}
}

// fmtDur rounds a duration to a scale-appropriate precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
