package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed region of the pipeline. Spans nest: a span started
// while another is open becomes its child, so a full run produces a trace
// tree (fit > cluster > kmeans.restart) that Render collapses into an
// indented per-stage timing summary.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	parent   *Span
	children []*Span
	t        *Tracer
}

// Tracer owns one trace tree. Start/End are mutex-guarded and safe to call
// from multiple goroutines, but parent attribution follows call order: the
// instrumented pipeline stages are sequential, which is what makes a
// ctx-free API sufficient. Concurrent hot paths use the metrics registry
// instead of spans.
type Tracer struct {
	mu   sync.Mutex
	root *Span
	cur  *Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	t := &Tracer{}
	t.reset()
	return t
}

func (t *Tracer) reset() {
	t.root = &Span{name: "root", start: time.Now()}
	t.cur = t.root
}

// Start opens a span as a child of the innermost open span.
func (t *Tracer) Start(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{name: name, start: time.Now(), parent: t.cur, t: t}
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// End closes the span, recording its wall-clock duration. Ending a span
// whose children are still open closes them too (their durations are
// capped at the parent's end), so a forgotten End deep in a helper cannot
// corrupt the tree. End is idempotent.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	now := time.Now()
	// If s is on the open chain, implicitly end every open descendant and
	// pop the cursor to s's parent.
	for c := s.t.cur; c != nil && c != s.t.root; c = c.parent {
		if c != s {
			continue
		}
		for d := s.t.cur; d != s; d = d.parent {
			if !d.ended {
				d.dur = now.Sub(d.start)
				d.ended = true
			}
		}
		s.t.cur = s.parent
		break
	}
	s.dur = now.Sub(s.start)
	s.ended = true
}

// elapsed returns the span's duration, using the current time for spans
// still open (so Render mid-run shows live figures).
func (s *Span) elapsed(now time.Time) time.Duration {
	if s.ended {
		return s.dur
	}
	return now.Sub(s.start)
}

// spanGroup is a set of same-named siblings collapsed into one rendered
// line (e.g. kmeans.restart[8]).
type spanGroup struct {
	name  string
	spans []*Span
}

// groupByName collapses spans by name, preserving first-appearance order.
func groupByName(spans []*Span) []spanGroup {
	var out []spanGroup
	idx := map[string]int{}
	for _, s := range spans {
		if i, ok := idx[s.name]; ok {
			out[i].spans = append(out[i].spans, s)
			continue
		}
		idx[s.name] = len(out)
		out = append(out, spanGroup{name: s.name, spans: []*Span{s}})
	}
	return out
}

// Render returns the trace tree as indented text. Same-named siblings are
// merged into one line with a repetition count, total, and mean duration;
// their children are merged recursively, so 44 LOSO folds render as one
// `loso.fold[44]` subtree instead of 44 copies.
func (t *Tracer) Render() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.root.children) == 0 {
		return "(no spans recorded)"
	}
	var b strings.Builder
	renderGroups(&b, groupByName(t.root.children), 0, time.Now())
	return strings.TrimRight(b.String(), "\n")
}

func renderGroups(b *strings.Builder, groups []spanGroup, depth int, now time.Time) {
	for _, g := range groups {
		var total time.Duration
		running := false
		var kids []*Span
		for _, s := range g.spans {
			total += s.elapsed(now)
			running = running || !s.ended
			kids = append(kids, s.children...)
		}
		label := g.name
		if n := len(g.spans); n > 1 {
			label = fmt.Sprintf("%s[%d]", g.name, n)
		}
		line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth), label)
		b.WriteString(fmt.Sprintf("%-44s %10s", line, fmtDur(total)))
		if n := len(g.spans); n > 1 {
			b.WriteString(fmt.Sprintf("  (avg %s)", fmtDur(total/time.Duration(n))))
		}
		if running {
			b.WriteString("  (running)")
		}
		b.WriteString("\n")
		renderGroups(b, groupByName(kids), depth+1, now)
	}
}

// fmtDur rounds a duration to a scale-appropriate precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// defTracer is the process-global tracer the instrumented packages share.
var defTracer = NewTracer()

// StartSpan opens a span on the default tracer.
func StartSpan(name string) *Span { return defTracer.Start(name) }

// SpanTree renders the default tracer's trace tree.
func SpanTree() string { return defTracer.Render() }

// ResetSpans discards the default tracer's trace tree (tests and repeated
// in-process runs).
func ResetSpans() {
	defTracer.mu.Lock()
	defer defTracer.mu.Unlock()
	defTracer.reset()
}
