package obs

// Stage-latency attribution. A StageTimer rides one request through the
// serving pipeline (HTTP decode → sanitisation → executor queue → batched
// forward pass → encode) and splits the end-to-end wall time into named
// stages. Each layer adds the durations it can measure; Finish computes a
// residual "other" stage (total minus the sum of the measured stages,
// clamped at zero) so the per-request stage sums reconcile with the
// end-to-end latency by construction — the invariant the serve-level
// reconciliation test asserts against http_latency_us.
//
// The timer is carried in the request context (WithStageTimer /
// StageTimerOf) and every method is nil-safe, so instrumented layers never
// need to check whether the caller attached one. Stage durations are only
// ever written from the request's own goroutine: the executor reports its
// queue/batch/forward splits inside InferResult and the submitting
// goroutine records them, which keeps the timer free of cross-goroutine
// data races without per-Add locking on the hot path.

import (
	"context"
	"sync"
	"time"
)

// StageKind identifies one pipeline stage.
type StageKind int

// Pipeline stages, in request order. StageOther is the residual computed
// by Finish; NumStages bounds arrays indexed by StageKind.
const (
	// StageDecode is HTTP body read + JSON decode + payload-to-tensor.
	StageDecode StageKind = iota
	// StageSanitize is window validation/imputation under the session lock.
	StageSanitize
	// StageQueueWait is submission until the dispatcher collected the
	// request's coalescing round.
	StageQueueWait
	// StageBatchWait is round collection until the model pass started
	// (concurrency semaphore + per-model lock).
	StageBatchWait
	// StageForward is the matmul/dense part of the batched model pass.
	StageForward
	// StageQuant is the activation-quantisation part of the pass (int8/fp16
	// deployments; zero for fp32 models).
	StageQuant
	// StageEncode is response marshalling + write.
	StageEncode
	// StageStore is durable-store I/O on the request path: write-through
	// session persists and on-demand hydration reads (internal/store).
	StageStore
	// StageProxy is time spent forwarding a request to the replica that
	// owns its session (consistent-hash routing, internal/shard).
	StageProxy
	// StageOther is the residual: total minus every measured stage
	// (middleware, locking, scheduling gaps).
	StageOther
	// NumStages is the number of stage kinds.
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "sanitize", "queue_wait", "batch_wait",
	"forward", "quant", "encode", "store", "proxy", "other",
}

// String returns the stage's metric label value.
func (k StageKind) String() string {
	if k < 0 || k >= NumStages {
		return "unknown"
	}
	return stageNames[k]
}

// StageNames returns the label values of all stages in pipeline order.
func StageNames() []string { return append([]string(nil), stageNames[:]...) }

// StageDur is one named stage duration in a finished breakdown.
type StageDur struct {
	Kind StageKind
	Dur  time.Duration
}

// StageTimer accumulates per-stage durations for one request. Create with
// NewStageTimer; the zero value and the nil pointer are inert.
type StageTimer struct {
	start time.Time

	mu      sync.Mutex
	dur     [NumStages]time.Duration
	cluster string
	done    bool
	total   time.Duration
}

// NewStageTimer starts the end-to-end clock for one request. The cluster
// label defaults to "none" until the serving layer learns the session's
// assignment.
func NewStageTimer() *StageTimer {
	return &StageTimer{start: time.Now(), cluster: "none"}
}

// Add accumulates d into stage k. Negative durations are dropped (clock
// skew between goroutine timestamps must not produce negative buckets).
// Nil-safe.
func (st *StageTimer) Add(k StageKind, d time.Duration) {
	if st == nil || k < 0 || k >= NumStages || d <= 0 {
		return
	}
	st.mu.Lock()
	if !st.done {
		st.dur[k] += d
	}
	st.mu.Unlock()
}

// Time starts measuring stage k and returns a stop function that records
// the elapsed time when called: defer st.Time(StageDecode)(). Nil-safe.
func (st *StageTimer) Time(k StageKind) func() {
	if st == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { st.Add(k, time.Since(t0)) }
}

// SetCluster records the cluster label the flushed stage series will carry
// ("none" before assignment). Nil-safe.
func (st *StageTimer) SetCluster(c string) {
	if st == nil || c == "" {
		return
	}
	st.mu.Lock()
	st.cluster = c
	st.mu.Unlock()
}

// Cluster returns the current cluster label. Nil-safe ("none").
func (st *StageTimer) Cluster() string {
	if st == nil {
		return "none"
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cluster
}

// Finish stops the end-to-end clock, computes the residual StageOther, and
// returns the total with the per-stage breakdown. Idempotent: later calls
// return the first result. Nil-safe (zero total, nil breakdown).
func (st *StageTimer) Finish() (time.Duration, []StageDur) {
	if st == nil {
		return 0, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.done {
		st.done = true
		st.total = time.Since(st.start)
		var sum time.Duration
		for k := StageKind(0); k < StageOther; k++ {
			sum += st.dur[k]
		}
		if rest := st.total - sum; rest > 0 {
			st.dur[StageOther] = rest
		}
	}
	out := make([]StageDur, 0, NumStages)
	for k := StageKind(0); k < NumStages; k++ {
		if st.dur[k] > 0 {
			out = append(out, StageDur{Kind: k, Dur: st.dur[k]})
		}
	}
	return st.total, out
}

// FlushTo finishes the timer and records every non-zero stage into the
// given histogram family under {stage, cluster} labels, returning the
// total and breakdown. Nil-safe on both receiver and vec.
func (st *StageTimer) FlushTo(vec *HistogramVec) (time.Duration, []StageDur) {
	total, stages := st.Finish()
	if st == nil || vec == nil {
		return total, stages
	}
	cluster := st.Cluster()
	for _, sd := range stages {
		vec.With(sd.Kind.String(), cluster).Observe(float64(sd.Dur.Microseconds()))
	}
	return total, stages
}

type stageTimerKey struct{}

// WithStageTimer returns a context carrying st.
func WithStageTimer(ctx context.Context, st *StageTimer) context.Context {
	if st == nil {
		return ctx
	}
	return context.WithValue(ctx, stageTimerKey{}, st)
}

// StageTimerOf returns the stage timer carried by ctx, or nil. All
// StageTimer methods tolerate nil, so callers can chain without checking.
func StageTimerOf(ctx context.Context) *StageTimer {
	if ctx == nil {
		return nil
	}
	st, _ := ctx.Value(stageTimerKey{}).(*StageTimer)
	return st
}
