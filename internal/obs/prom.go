package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName mangles a dotted internal metric name into the Prometheus
// name charset [a-zA-Z0-9_:] (dots become underscores).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders {l1="v1",l2="v2"} (plus optional extra pre-rendered
// pairs such as le="0.5"); empty input renders as "".
func promLabels(labels, values []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels)+len(extra))
	for i := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", promName(labels[i]), promEscape(values[i])))
	}
	parts = append(parts, extra...)
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat formats a float64 sample value (Prometheus accepts Go's 'g'
// forms plus +Inf/-Inf/NaN spellings).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one `# TYPE` block: a metric name, its type, and its
// sample lines (already label-sorted by the vec iteration order).
type promFamily struct {
	name  string
	typ   string
	lines []string
}

// promHist appends the text-format lines of one histogram (cumulative
// le-buckets, _sum, _count) with the given pre-rendered label pairs.
func promHist(f *promFamily, h *Histogram, labels, values []string) {
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = promFloat(h.bounds[i])
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			f.name, promLabels(labels, values, fmt.Sprintf("le=%q", le)), cum))
	}
	f.lines = append(f.lines,
		fmt.Sprintf("%s_sum%s %s", f.name, promLabels(labels, values), promFloat(h.Sum())),
		fmt.Sprintf("%s_count%s %d", f.name, promLabels(labels, values), h.Count()))
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, families sorted
// by name, vec children sorted by label values. Internal dotted names are
// mangled to underscores (serve.http_requests → serve_http_requests).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]promFamily, 0,
		len(r.counters)+len(r.gauges)+len(r.hists)+len(r.cvecs)+len(r.gvecs)+len(r.hvecs))
	for name, c := range r.counters {
		fams = append(fams, promFamily{name: promName(name), typ: "counter",
			lines: []string{fmt.Sprintf("%s %d", promName(name), c.Value())}})
	}
	for name, g := range r.gauges {
		fams = append(fams, promFamily{name: promName(name), typ: "gauge",
			lines: []string{fmt.Sprintf("%s %s", promName(name), promFloat(g.Value()))}})
	}
	for name, h := range r.hists {
		f := promFamily{name: promName(name), typ: "histogram"}
		promHist(&f, h, nil, nil)
		fams = append(fams, f)
	}
	for name, v := range r.cvecs {
		f := promFamily{name: promName(name), typ: "counter"}
		v.each(func(values []string, c *Counter) {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d", f.name, promLabels(v.labels, values), c.Value()))
		})
		fams = append(fams, f)
	}
	for name, v := range r.gvecs {
		f := promFamily{name: promName(name), typ: "gauge"}
		v.each(func(values []string, g *Gauge) {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %s", f.name, promLabels(v.labels, values), promFloat(g.Value())))
		})
		fams = append(fams, f)
	}
	for name, v := range r.hvecs {
		f := promFamily{name: promName(name), typ: "histogram"}
		v.each(func(values []string, h *Histogram) {
			promHist(&f, h, v.labels, values)
		})
		fams = append(fams, f)
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if len(f.lines) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
