package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProfileCapturerWritesAndBounds(t *testing.T) {
	dir := t.TempDir()
	pc, err := NewProfileCapturer(dir, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pc.SetMinGap(0)

	var recs []ProfileCapture
	for i := 0; i < 3; i++ {
		rec, ok := pc.Capture("test")
		if !ok {
			t.Fatalf("capture %d suppressed", i)
		}
		if rec.HeapFile == "" {
			t.Fatalf("capture %d: no heap profile (err=%q)", i, rec.Err)
		}
		recs = append(recs, rec)
	}

	list := pc.List()
	if len(list) != 2 {
		t.Fatalf("ring holds %d, want 2", len(list))
	}
	if list[0].Seq != 2 || list[1].Seq != 3 {
		t.Fatalf("ring not FIFO-evicted: %+v", list)
	}
	// The evicted capture's files are deleted; the survivors' exist.
	if _, err := os.Stat(recs[0].HeapFile); !os.IsNotExist(err) {
		t.Fatalf("evicted heap profile still on disk: %v", err)
	}
	for _, rec := range list {
		if _, err := os.Stat(rec.HeapFile); err != nil {
			t.Fatalf("held heap profile missing: %v", err)
		}
		if rec.CPUFile != "" {
			st, err := os.Stat(rec.CPUFile)
			if err != nil {
				t.Fatalf("held cpu profile missing: %v", err)
			}
			if st.Size() == 0 {
				t.Fatal("cpu profile empty")
			}
		}
	}
	// Nothing outside the ring lingers in the directory.
	got, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(got) > 4 {
		t.Fatalf("directory holds %d files, want ≤ 4 (2 pairs)", len(got))
	}
}

func TestProfileCapturerMinGap(t *testing.T) {
	pc, err := NewProfileCapturer(t.TempDir(), 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pc.SetMinGap(time.Hour)
	if _, ok := pc.Capture("first"); !ok {
		t.Fatal("first capture suppressed")
	}
	if _, ok := pc.Capture("second"); ok {
		t.Fatal("storm guard failed: second capture within min gap succeeded")
	}
	if n := len(pc.List()); n != 1 {
		t.Fatalf("ring holds %d, want 1", n)
	}
}

func TestProfileCapturerNilAndBadDir(t *testing.T) {
	var pc *ProfileCapturer
	if _, ok := pc.Capture("x"); ok {
		t.Fatal("nil capturer captured")
	}
	if pc.List() != nil || pc.Dir() != "" {
		t.Fatal("nil capturer not inert")
	}
	if _, err := NewProfileCapturer("", 1, time.Millisecond); err == nil {
		t.Fatal("empty dir must error")
	}
}
