package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.hits")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// Same name returns the same handle.
	if r.Counter("test.hits") != c {
		t.Error("Counter did not return the registered handle")
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.energy_j")
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	want := 0.5 * goroutines * perG
	if got := g.Value(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge after Set = %v, want 3.25", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.lat", ExpBuckets(1, 2, 16))
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / 1000)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramQuantiles checks quantile estimates against a known uniform
// distribution: values 1..10000 observed once each, fine linear buckets.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(LinearBuckets(100, 100, 100))
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		h.Observe(float64(i + 1))
	}
	if h.Count() != n {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != n {
		t.Fatalf("min/max = %v/%v, want 1/%d", h.Min(), h.Max(), n)
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)/2.0) > 1e-6 {
		t.Fatalf("mean = %v, want %v", mean, (n+1)/2.0)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000}, {0.95, 9500}, {0.99, 9900}, {0, 1}, {1, n},
	} {
		got := h.Quantile(tc.q)
		// One bucket of slack: interpolation is exact only within buckets.
		if math.Abs(got-tc.want) > 100 {
			t.Errorf("p%g = %v, want %v ± 100", tc.q*100, got, tc.want)
		}
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(100) // overflow bucket
	h.Observe(150)
	if got := h.Quantile(0.99); got < 100 || got > 150 {
		t.Errorf("overflow quantile = %v, want within [100, 150]", got)
	}
}

func TestRegistryResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", []float64{1})
	c.Inc()
	g.Set(2)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
	c.Inc()
	if r.Counter("a").Value() != 1 {
		t.Fatal("handle detached after Reset")
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Gauge("a.gauge").Set(1.5)
	r.Histogram("m.hist", []float64{1, 10}).Observe(5)
	d := r.Dump()
	for _, want := range []string{"z.count 3", "a.gauge 1.5", "m.hist count=1"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	// Sorted output: gauge line before counter line.
	if strings.Index(d, "a.gauge") > strings.Index(d, "z.count") {
		t.Error("dump not sorted")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("t")
	fit := tr.Start("fit")
	cl := tr.Start("cluster")
	for i := 0; i < 3; i++ {
		tr.Start("kmeans.restart").End()
	}
	cl.End()
	tn := tr.Start("train")
	tn.End()
	fit.End()

	out := tr.Render()
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 rendered lines, got %d:\n%s", len(lines), out)
	}
	checks := []struct{ line, want string }{
		{lines[0], "fit"},
		{lines[1], "  cluster"},
		{lines[2], "    kmeans.restart[3]"},
		{lines[3], "  train"},
	}
	for _, c := range checks {
		if !strings.HasPrefix(c.line, c.want) {
			t.Errorf("line %q does not start with %q", c.line, c.want)
		}
	}
	if !strings.Contains(lines[2], "avg") {
		t.Errorf("merged siblings should show avg: %q", lines[2])
	}
}

// TestSpanSiblingMerge checks that children of merged siblings merge too:
// N folds each containing a fit render as fold[N] > fit[N].
func TestSpanSiblingMerge(t *testing.T) {
	tr := NewTrace("t")
	for i := 0; i < 5; i++ {
		f := tr.Start("fold")
		tr.Start("fit").End()
		f.End()
	}
	out := tr.Render()
	if !strings.Contains(out, "fold[5]") || !strings.Contains(out, "fit[5]") {
		t.Fatalf("merged render wrong:\n%s", out)
	}
	if got := len(strings.Split(out, "\n")); got != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", got, out)
	}
}

func TestSpanEndIsIdempotentAndClosesChildren(t *testing.T) {
	tr := NewTrace("t")
	outer := tr.Start("outer")
	inner := tr.Start("inner")
	outer.End() // inner still open: must be closed implicitly
	if !inner.ended {
		t.Fatal("ending a parent should close open children")
	}
	d := inner.dur
	inner.End() // idempotent
	if inner.dur != d {
		t.Fatal("second End changed the duration")
	}
	// New spans attach at the root again.
	s := tr.Start("next")
	s.End()
	if !strings.Contains(tr.Render(), "next") {
		t.Fatal("cursor not restored to root")
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTrace("t")
	s := tr.Start("sleep")
	time.Sleep(5 * time.Millisecond)
	s.End()
	if s.dur < 5*time.Millisecond {
		t.Fatalf("span duration %v < slept 5ms", s.dur)
	}
}

func TestEmptyTreeRender(t *testing.T) {
	if got := NewTrace("t").Render(); !strings.Contains(got, "no spans") {
		t.Fatalf("empty render = %q", got)
	}
}

func TestDefaultTracerReset(t *testing.T) {
	ResetSpans()
	StartSpan("x").End()
	if !strings.Contains(SpanTree(), "x") {
		t.Fatal("default tracer did not record span")
	}
	ResetSpans()
	if !strings.Contains(SpanTree(), "no spans") {
		t.Fatal("ResetSpans did not clear the tree")
	}
}

// TestServe exercises the HTTP surface end-to-end on a loopback listener.
func TestServe(t *testing.T) {
	GetCounter("test.serve.hits").Inc()
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "test_serve_hits") {
		t.Errorf("/metrics missing counter in Prometheus form:\n%s", body)
	}
	if body := get("/debug/metrics"); !strings.Contains(body, "test.serve.hits") {
		t.Errorf("/debug/metrics missing counter:\n%s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["clear"]; !ok {
		t.Error("/debug/vars missing the clear registry snapshot")
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	get("/debug/spans")
}
