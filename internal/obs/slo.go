package obs

// Multi-window burn-rate SLO tracking (the Google SRE alerting shape).
// Two objectives are tracked, both expressed as "good events / total
// events": availability (non-5xx fraction of requests) and latency
// (fraction of requests at or under a latency bound — a p99 objective is
// "99% of requests under the bound"). A SampleFunc periodically snapshots
// cumulative good/total counts from the serving metrics; the tracker
// keeps a time-indexed ring of snapshots and computes the error-budget
// burn rate over a short and a long window by diffing them.
//
// Burn rate = (bad fraction over the window) / (error budget). Burn 1
// consumes the budget exactly over the objective period; a fast burn
// (both windows over FastBurn) means the budget is vanishing in hours,
// not weeks — that is the trigger that captures pprof profiles and
// stamps a trace event, so the diagnosis artefacts exist from the first
// minutes of an incident.

import (
	"sync"
	"time"
)

// SLOSample is one cumulative snapshot of the counters feeding the two
// objectives. All fields are monotonically non-decreasing.
type SLOSample struct {
	// Total and Errors feed availability: error fraction = ΔErrors/ΔTotal.
	Total  int64
	Errors int64
	// LatTotal and LatUnder feed latency: good fraction = ΔLatUnder/ΔLatTotal,
	// where LatUnder counts observations at or under the latency bound.
	LatTotal int64
	LatUnder int64
}

// SLOConfig parameterises the tracker. Zero values take the defaults
// noted per field.
type SLOConfig struct {
	// Availability is the target good fraction, e.g. 0.999 (default).
	Availability float64
	// LatencyBoundUS is the latency objective's bound in µs (default
	// 250000). Pick a value on a histogram bucket edge; counting is at
	// bucket resolution.
	LatencyBoundUS float64
	// LatencyTarget is the fraction of requests that must be under the
	// bound, e.g. 0.99 for a p99 objective (default).
	LatencyTarget float64
	// ShortWindow and LongWindow are the two burn windows (defaults 30s
	// and 5m). Both must exceed the sampling interval.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// FastBurn is the burn-rate threshold that, sustained over both
	// windows, constitutes a fast burn (default 10).
	FastBurn float64
	// Interval is the sampling cadence (default 1s).
	Interval time.Duration
	// MinEvents is the minimum ΔTotal in the short window before a burn
	// verdict is rendered, so one failed request against an idle server
	// does not page (default 10).
	MinEvents int64
	// Rearm is the minimum gap between fast-burn callbacks (default
	// ShortWindow), preventing capture storms while a burn persists.
	Rearm time.Duration
}

func (c *SLOConfig) fillDefaults() {
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if c.LatencyBoundUS <= 0 {
		c.LatencyBoundUS = 250_000
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 30 * time.Second
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = 10 * c.ShortWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 10
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 10
	}
	if c.Rearm <= 0 {
		c.Rearm = c.ShortWindow
	}
}

// ObjectiveStatus is the JSON-ready state of one objective.
type ObjectiveStatus struct {
	Name          string  `json:"name"`
	Target        float64 `json:"target"`
	BoundUS       float64 `json:"bound_us,omitempty"`
	ShortBurn     float64 `json:"short_burn"`
	LongBurn      float64 `json:"long_burn"`
	ShortBadFrac  float64 `json:"short_bad_frac"`
	WindowEvents  int64   `json:"window_events"`
	Breaching     bool    `json:"breaching"`
	BreachCount   int64   `json:"breach_count"`
	LastBreachMS  int64   `json:"last_breach_unix_ms,omitempty"`
	BudgetPerHour float64 `json:"budget_burn_per_hour"`
}

// SLOStatus is the tracker's full JSON-ready state, served at /v1/slo.
type SLOStatus struct {
	ShortWindowSec float64           `json:"short_window_sec"`
	LongWindowSec  float64           `json:"long_window_sec"`
	FastBurn       float64           `json:"fast_burn_threshold"`
	FastBurning    bool              `json:"fast_burning"`
	Objectives     []ObjectiveStatus `json:"objectives"`
}

type sloPoint struct {
	t time.Time
	s SLOSample
}

type objectiveState struct {
	breaching   bool
	breachCount int64
	lastBreach  time.Time
}

// SLOTracker evaluates the two objectives against sampled counters. Use
// NewSLOTracker, then either Start for the background ticker loop or
// Tick directly (tests, custom cadences).
type SLOTracker struct {
	cfg    SLOConfig
	sample func() SLOSample
	now    func() time.Time // injectable clock for tests

	mu       sync.Mutex
	ring     []sloPoint
	avail    objectiveState
	latency  objectiveState
	lastFire time.Time
	onFast   func(SLOStatus)

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSLOTracker builds a tracker over the given cumulative-sample source.
func NewSLOTracker(cfg SLOConfig, sample func() SLOSample) *SLOTracker {
	cfg.fillDefaults()
	return &SLOTracker{
		cfg:    cfg,
		sample: sample,
		now:    time.Now,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// OnFastBurn registers the callback fired (rate-limited by Rearm) when a
// fast burn begins. The callback runs on the tracker's goroutine — keep
// it bounded; profile capture offloads its slow part internally.
func (t *SLOTracker) OnFastBurn(f func(SLOStatus)) {
	t.mu.Lock()
	t.onFast = f
	t.mu.Unlock()
}

// Start launches the background sampling loop. Stop with Stop.
func (t *SLOTracker) Start() {
	t.mu.Lock()
	t.started = true
	t.mu.Unlock()
	go func() {
		defer close(t.done)
		tick := time.NewTicker(t.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.Tick()
			}
		}
	}()
}

// Stop halts the loop started by Start and waits for it. Idempotent; safe
// to call even if Start was never called.
func (t *SLOTracker) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.mu.Lock()
	started := t.started
	t.mu.Unlock()
	if started {
		<-t.done
	}
}

// Tick takes one sample and re-evaluates both objectives, firing the
// fast-burn callback on a rearm-gated transition into burning.
func (t *SLOTracker) Tick() {
	now := t.now()
	s := t.sample()

	t.mu.Lock()
	t.ring = append(t.ring, sloPoint{t: now, s: s})
	cutoff := now.Add(-t.cfg.LongWindow - t.cfg.Interval)
	for len(t.ring) > 1 && t.ring[0].t.Before(cutoff) {
		t.ring = t.ring[1:]
	}
	availShort, latShort, nShort := t.windowLocked(now, t.cfg.ShortWindow)
	availLong, latLong, _ := t.windowLocked(now, t.cfg.LongWindow)

	enough := nShort >= t.cfg.MinEvents
	availBurning := enough &&
		availShort >= t.cfg.FastBurn && availLong >= t.cfg.FastBurn
	latBurning := enough &&
		latShort >= t.cfg.FastBurn && latLong >= t.cfg.FastBurn

	fired := false
	for _, o := range []struct {
		st      *objectiveState
		burning bool
	}{{&t.avail, availBurning}, {&t.latency, latBurning}} {
		if o.burning && !o.st.breaching {
			o.st.breachCount++
			o.st.lastBreach = now
			fired = true
		}
		o.st.breaching = o.burning
	}
	var cb func(SLOStatus)
	if fired && t.onFast != nil && now.Sub(t.lastFire) >= t.cfg.Rearm {
		t.lastFire = now
		cb = t.onFast
	}
	st := t.statusLocked(now)
	t.mu.Unlock()

	if cb != nil {
		cb(st)
	}
}

// windowLocked returns (availability burn, latency burn, total events)
// over the trailing window d. With fewer than two samples, or an empty
// window, burns are 0. Caller holds t.mu.
func (t *SLOTracker) windowLocked(now time.Time, d time.Duration) (availBurn, latBurn float64, events int64) {
	if len(t.ring) < 2 {
		return 0, 0, 0
	}
	latest := t.ring[len(t.ring)-1]
	// Newest point at or before the window start; the oldest point when
	// history is shorter than the window (burn over what we have).
	base := t.ring[0]
	start := now.Add(-d)
	for _, p := range t.ring {
		if p.t.After(start) {
			break
		}
		base = p
	}
	dTotal := latest.s.Total - base.s.Total
	dErr := latest.s.Errors - base.s.Errors
	if dTotal > 0 {
		availBurn = (float64(dErr) / float64(dTotal)) / (1 - t.cfg.Availability)
	}
	dLatTotal := latest.s.LatTotal - base.s.LatTotal
	dUnder := latest.s.LatUnder - base.s.LatUnder
	if dLatTotal > 0 {
		bad := float64(dLatTotal-dUnder) / float64(dLatTotal)
		latBurn = bad / (1 - t.cfg.LatencyTarget)
	}
	return availBurn, latBurn, dTotal
}

// Status snapshots the tracker state for /v1/slo.
func (t *SLOTracker) Status() SLOStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statusLocked(t.now())
}

func (t *SLOTracker) statusLocked(now time.Time) SLOStatus {
	availShort, latShort, nShort := t.windowLocked(now, t.cfg.ShortWindow)
	availLong, latLong, _ := t.windowLocked(now, t.cfg.LongWindow)
	mk := func(name string, target, boundUS, short, long float64, st objectiveState) ObjectiveStatus {
		o := ObjectiveStatus{
			Name:         name,
			Target:       target,
			BoundUS:      boundUS,
			ShortBurn:    short,
			LongBurn:     long,
			ShortBadFrac: short * (1 - target),
			WindowEvents: nShort,
			Breaching:    st.breaching,
			BreachCount:  st.breachCount,
			// Burn b consumes b error budgets per objective period; report
			// it normalised to budgets/hour of long window for operators.
			BudgetPerHour: long * (time.Hour.Seconds() / t.cfg.LongWindow.Seconds()) * (1 - target),
		}
		if !st.lastBreach.IsZero() {
			o.LastBreachMS = st.lastBreach.UnixMilli()
		}
		return o
	}
	return SLOStatus{
		ShortWindowSec: t.cfg.ShortWindow.Seconds(),
		LongWindowSec:  t.cfg.LongWindow.Seconds(),
		FastBurn:       t.cfg.FastBurn,
		FastBurning:    t.avail.breaching || t.latency.breaching,
		Objectives: []ObjectiveStatus{
			mk("availability", t.cfg.Availability, 0, availShort, availLong, t.avail),
			mk("latency_p99", t.cfg.LatencyTarget, t.cfg.LatencyBoundUS, latShort, latLong, t.latency),
		},
	}
}
