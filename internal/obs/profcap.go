package obs

// Triggered pprof capture into a bounded on-disk ring. When the SLO
// tracker detects a fast burn it calls Capture, which writes a short CPU
// profile and a heap profile to the capture directory, records the pair
// in an in-memory ring, and deletes the oldest pair once the ring is
// full — so an unattended edge box keeps the last few incidents' worth
// of profiles without ever growing the disk footprint. A minimum gap
// between captures and a single-flight guard keep a sustained burn from
// turning into a profile storm.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// ProfileCapture describes one captured profile pair.
type ProfileCapture struct {
	Seq      int64  `json:"seq"`
	TMS      int64  `json:"t_ms"`
	Reason   string `json:"reason"`
	CPUFile  string `json:"cpu_file,omitempty"`
	HeapFile string `json:"heap_file,omitempty"`
	Err      string `json:"error,omitempty"`
}

// ProfileCapturer owns the capture directory and the ring. Create with
// NewProfileCapturer.
type ProfileCapturer struct {
	dir     string
	max     int
	cpuDur  time.Duration
	minGap  time.Duration
	busy    atomic.Bool
	mu      sync.Mutex
	seq     int64
	lastCap time.Time
	ring    []ProfileCapture
}

// NewProfileCapturer prepares a capturer writing to dir (created if
// missing), keeping at most max capture pairs (default 8), with CPU
// profiles of cpuDur (default 250ms, clamped to 5s).
func NewProfileCapturer(dir string, max int, cpuDur time.Duration) (*ProfileCapturer, error) {
	if dir == "" {
		return nil, fmt.Errorf("profcap: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profcap: %w", err)
	}
	if max < 1 {
		max = 8
	}
	if cpuDur <= 0 {
		cpuDur = 250 * time.Millisecond
	}
	if cpuDur > 5*time.Second {
		cpuDur = 5 * time.Second
	}
	return &ProfileCapturer{dir: dir, max: max, cpuDur: cpuDur, minGap: 10 * time.Second}, nil
}

// SetMinGap adjusts the minimum spacing between captures (storm guard).
// Call at setup time.
func (p *ProfileCapturer) SetMinGap(d time.Duration) {
	if p == nil || d < 0 {
		return
	}
	p.mu.Lock()
	p.minGap = d
	p.mu.Unlock()
}

// Dir returns the capture directory.
func (p *ProfileCapturer) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// Capture writes one CPU+heap profile pair tagged with reason and returns
// its record. It blocks for the CPU profile duration. Calls arriving
// while a capture is in flight, or sooner than the minimum gap after the
// last one, return ok=false without touching the disk. Nil-safe.
func (p *ProfileCapturer) Capture(reason string) (ProfileCapture, bool) {
	if p == nil {
		return ProfileCapture{}, false
	}
	if !p.busy.CompareAndSwap(false, true) {
		return ProfileCapture{}, false
	}
	defer p.busy.Store(false)

	p.mu.Lock()
	if !p.lastCap.IsZero() && time.Since(p.lastCap) < p.minGap {
		p.mu.Unlock()
		return ProfileCapture{}, false
	}
	p.seq++
	rec := ProfileCapture{Seq: p.seq, TMS: time.Now().UnixMilli(), Reason: reason}
	p.lastCap = time.Now()
	p.mu.Unlock()

	base := fmt.Sprintf("capture-%06d", rec.Seq)
	cpuPath := filepath.Join(p.dir, base+".cpu.pprof")
	heapPath := filepath.Join(p.dir, base+".heap.pprof")

	if err := p.writeCPU(cpuPath); err != nil {
		// CPU profiling may already be active (e.g. /debug/pprof/profile in
		// flight); keep the heap profile rather than failing the capture.
		rec.Err = err.Error()
	} else {
		rec.CPUFile = cpuPath
	}
	if err := p.writeHeap(heapPath); err != nil {
		if rec.Err != "" {
			rec.Err += "; "
		}
		rec.Err += err.Error()
	} else {
		rec.HeapFile = heapPath
	}

	p.mu.Lock()
	p.ring = append(p.ring, rec)
	for len(p.ring) > p.max {
		old := p.ring[0]
		p.ring = p.ring[1:]
		if old.CPUFile != "" {
			os.Remove(old.CPUFile)
		}
		if old.HeapFile != "" {
			os.Remove(old.HeapFile)
		}
	}
	p.mu.Unlock()
	return rec, true
}

func (p *ProfileCapturer) writeCPU(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cpu profile: %w", err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		os.Remove(path)
		return fmt.Errorf("cpu profile: %w", err)
	}
	time.Sleep(p.cpuDur)
	pprof.StopCPUProfile()
	return nil
}

func (p *ProfileCapturer) writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		os.Remove(path)
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}

// List returns the held capture records, oldest first. Nil-safe.
func (p *ProfileCapturer) List() []ProfileCapture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProfileCapture(nil), p.ring...)
}
