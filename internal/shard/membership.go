package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// View is one immutable snapshot of ring membership: a monotonically
// increasing epoch, the sorted member set at that epoch, and the ring
// derived from it. Views are value-copied freely; the ring pointer is
// shared but Ring itself is immutable.
type View struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
	ring    *Ring
}

// Ring returns the consistent-hash ring for this view's member set.
func (v View) Ring() *Ring { return v.ring }

// Contains reports whether node is a member of this view.
func (v View) Contains(node string) bool {
	i := sort.SearchStrings(v.Members, node)
	return i < len(v.Members) && v.Members[i] == node
}

// Hash returns a short stable digest of the member set (epoch excluded):
// two views with identical members hash identically regardless of how
// they were reached. Exposed on /healthz so the router's probe detects
// membership skew without comparing full member lists.
func (v View) Hash() string {
	return fmt.Sprintf("%016x", hash64(strings.Join(v.Members, "\x00")))
}

// Membership is a versioned, mutable ring: every Join/Leave derives a
// new Ring via With/Without and bumps the epoch, so concurrent readers
// always observe a consistent (epoch, members, ring) triple. Replicas
// converge by exchanging views and adopting the newer one (Adopt).
type Membership struct {
	mu     sync.RWMutex
	vnodes int
	cur    View
}

// NewMembership starts a membership at epoch 1 over the given members
// (deduplicated and sorted, like New). vnodes <= 0 means DefaultVNodes.
func NewMembership(members []string, vnodes int) *Membership {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ring := New(members, vnodes)
	return &Membership{
		vnodes: vnodes,
		cur:    View{Epoch: 1, Members: ring.Nodes(), ring: ring},
	}
}

// View returns the current membership snapshot.
func (m *Membership) View() View {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur
}

// Epoch returns the current epoch.
func (m *Membership) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur.Epoch
}

// Join adds node and bumps the epoch. A no-op (already a member, or
// empty node) returns the current view and false.
func (m *Membership) Join(node string) (View, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if node == "" || m.cur.ring.Has(node) {
		return m.cur, false
	}
	ring := m.cur.ring.With(node)
	m.cur = View{Epoch: m.cur.Epoch + 1, Members: ring.Nodes(), ring: ring}
	return m.cur, true
}

// Leave removes node and bumps the epoch. A no-op returns the current
// view and false. Removing the last member yields an empty ring — the
// caller decides whether that is meaningful (a fully drained cluster).
func (m *Membership) Leave(node string) (View, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.cur.ring.Has(node) {
		return m.cur, false
	}
	ring := m.cur.ring.Without(node)
	m.cur = View{Epoch: m.cur.Epoch + 1, Members: ring.Nodes(), ring: ring}
	return m.cur, true
}

// Adopt replaces the local view with a remote one iff the remote view is
// newer: strictly higher epoch, or — for concurrent mutations that raced
// to the same epoch on different replicas — equal epoch with the smaller
// member-set hash (an arbitrary but deterministic total order, so every
// replica converges on the same winner; the losing mutation is dropped
// and must be re-issued). Returns the view now in effect and whether the
// remote one was adopted.
func (m *Membership) Adopt(epoch uint64, members []string) (View, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	remote := View{Epoch: epoch, Members: New(members, m.vnodes).Nodes()}
	if epoch < m.cur.Epoch {
		return m.cur, false
	}
	if epoch == m.cur.Epoch && remote.Hash() >= m.cur.Hash() {
		return m.cur, false
	}
	remote.ring = New(remote.Members, m.vnodes)
	m.cur = remote
	return m.cur, true
}
