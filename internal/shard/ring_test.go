package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%06d", i)
	}
	return out
}

func TestOwnerDeterministicAndMember(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := New(nodes, 0)
	r2 := New([]string{"http://c:3", "http://a:1", "http://b:2", "http://a:1"}, 0) // order+dup insensitive
	for _, k := range keys(500) {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("owner(%q) differs across equivalent rings: %q vs %q", k, o1, o2)
		}
		if !r1.Has(o1) {
			t.Fatalf("owner(%q) = %q not a ring member", k, o1)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(nil, 0)
	if got := r.Owner("s000001"); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
}

// TestRebalanceProperty asserts the consistent-hashing contract exactly,
// not just the ≤ K/N bound from the issue:
//   - leave: only keys owned by the departed node move, and every one of
//     them moves (their owner is gone);
//   - join: the only keys that move are those the new node steals.
func TestRebalanceProperty(t *testing.T) {
	nodes := []string{"http://r1:18080", "http://r2:18081", "http://r3:18082", "http://r4:18083"}
	ks := keys(2000)
	full := New(nodes, 0)

	t.Run("leave", func(t *testing.T) {
		before := make(map[string]string, len(ks))
		for _, k := range ks {
			before[k] = full.Owner(k)
		}
		departed := nodes[1]
		after := full.Without(departed)
		moved := 0
		for _, k := range ks {
			na := after.Owner(k)
			if before[k] == departed {
				moved++
				if na == departed {
					t.Fatalf("key %q still owned by departed node", k)
				}
				continue
			}
			if na != before[k] {
				t.Fatalf("key %q moved %q -> %q but its owner did not leave", k, before[k], na)
			}
		}
		// ≤ K/N within vnode variance: the departed node's share.
		share := float64(moved) / float64(len(ks))
		if share > 1.6/float64(len(nodes)) {
			t.Fatalf("leave moved %.1f%% of keys, expected ≈ %.1f%%", 100*share, 100.0/float64(len(nodes)))
		}
		if moved == 0 {
			t.Fatal("leave moved zero keys — ring not exercising the departed node")
		}
	})

	t.Run("join", func(t *testing.T) {
		joined := "http://r5:18084"
		after := full.With(joined)
		moved := 0
		for _, k := range ks {
			ob, oa := full.Owner(k), after.Owner(k)
			if ob == oa {
				continue
			}
			if oa != joined {
				t.Fatalf("key %q moved %q -> %q on join of %q", k, ob, oa, joined)
			}
			moved++
		}
		share := float64(moved) / float64(len(ks))
		if share > 1.6/float64(len(nodes)+1) {
			t.Fatalf("join moved %.1f%% of keys, expected ≈ %.1f%%", 100*share, 100.0/float64(len(nodes)+1))
		}
		if moved == 0 {
			t.Fatal("join moved zero keys to the new node")
		}
	})
}

func TestOwnerExcludingFailover(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := New(nodes, 0)
	down := map[string]bool{}
	for _, k := range keys(300) {
		if r.OwnerExcluding(k, down) != r.Owner(k) {
			t.Fatalf("no-down OwnerExcluding differs from Owner for %q", k)
		}
	}
	dead := r.Owner("s000042")
	down[dead] = true
	fo := r.OwnerExcluding("s000042", down)
	if fo == dead || fo == "" || !r.Has(fo) {
		t.Fatalf("failover owner %q invalid (dead=%q)", fo, dead)
	}
	// Failover must agree with the derived ring every replica would build.
	if want := r.Without(dead).Owner("s000042"); fo != want {
		t.Fatalf("OwnerExcluding = %q, Without().Owner = %q", fo, want)
	}
	// All nodes down: no owner.
	for _, n := range nodes {
		down[n] = true
	}
	if got := r.OwnerExcluding("s000042", down); got != "" {
		t.Fatalf("all-down OwnerExcluding = %q, want \"\"", got)
	}
}

func TestOwnershipCounts(t *testing.T) {
	r := New([]string{"http://a:1", "http://b:2", "http://c:3"}, 0)
	ks := keys(900)
	counts := r.OwnershipCounts(ks)
	total := 0
	for n, c := range counts {
		if !r.Has(n) {
			t.Fatalf("count for non-member %q", n)
		}
		if c == 0 {
			t.Fatalf("node %q owns zero of %d keys — vnode spread broken", n, len(ks))
		}
		total += c
	}
	if total != len(ks) {
		t.Fatalf("counts sum %d != %d keys", total, len(ks))
	}
}
