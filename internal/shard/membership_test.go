package shard

import (
	"fmt"
	"testing"
)

// TestMembershipEpochMonotonic drives a random-ish join/leave sequence
// and asserts the epoch is strictly monotonic across every effective
// mutation and unchanged across no-ops.
func TestMembershipEpochMonotonic(t *testing.T) {
	m := NewMembership([]string{"http://a:1", "http://b:2"}, 0)
	last := m.Epoch()
	if last != 1 {
		t.Fatalf("fresh membership epoch = %d, want 1", last)
	}
	steps := []struct {
		join bool
		node string
		eff  bool
	}{
		{true, "http://c:3", true},
		{true, "http://c:3", false}, // duplicate join: no-op
		{false, "http://a:1", true},
		{false, "http://a:1", false}, // duplicate leave: no-op
		{true, "", false},            // empty node: no-op
		{true, "http://d:4", true},
		{false, "http://b:2", true},
	}
	for i, s := range steps {
		var v View
		var ok bool
		if s.join {
			v, ok = m.Join(s.node)
		} else {
			v, ok = m.Leave(s.node)
		}
		if ok != s.eff {
			t.Fatalf("step %d: effective = %v, want %v", i, ok, s.eff)
		}
		if s.eff {
			if v.Epoch != last+1 {
				t.Fatalf("step %d: epoch %d after %d, want strict +1", i, v.Epoch, last)
			}
			last = v.Epoch
		} else if v.Epoch != last {
			t.Fatalf("step %d: no-op changed epoch %d -> %d", i, last, v.Epoch)
		}
		if got := m.View().Epoch; got != last {
			t.Fatalf("step %d: View().Epoch = %d, want %d", i, got, last)
		}
	}
}

// TestMembershipMinimalMovement reuses the ring rebalance property
// through the Membership layer: each single join steals keys only for
// the new node and each single leave moves only the departed node's
// keys, both within the ≤ 1.6/N vnode-variance bound.
func TestMembershipMinimalMovement(t *testing.T) {
	members := []string{"http://r1:18080", "http://r2:18081", "http://r3:18082", "http://r4:18083"}
	ks := keys(2000)
	m := NewMembership(members, 0)

	ownerMap := func(v View) map[string]string {
		out := make(map[string]string, len(ks))
		for _, k := range ks {
			out[k] = v.Ring().Owner(k)
		}
		return out
	}

	before := ownerMap(m.View())

	// Join: only the new node gains keys.
	joined := "http://r5:18084"
	vj, ok := m.Join(joined)
	if !ok {
		t.Fatal("join not effective")
	}
	afterJoin := ownerMap(vj)
	moved := 0
	for _, k := range ks {
		if before[k] == afterJoin[k] {
			continue
		}
		if afterJoin[k] != joined {
			t.Fatalf("key %q moved %q -> %q on join of %q", k, before[k], afterJoin[k], joined)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("join moved zero keys")
	}
	if share := float64(moved) / float64(len(ks)); share > 1.6/float64(len(members)+1) {
		t.Fatalf("join moved %.1f%% of keys, want ≈ %.1f%%", 100*share, 100.0/float64(len(members)+1))
	}

	// Leave: only the departed node's keys move.
	departed := members[1]
	vl, ok := m.Leave(departed)
	if !ok {
		t.Fatal("leave not effective")
	}
	afterLeave := ownerMap(vl)
	moved = 0
	for _, k := range ks {
		if afterJoin[k] == departed {
			moved++
			if afterLeave[k] == departed {
				t.Fatalf("key %q still owned by departed node", k)
			}
			continue
		}
		if afterLeave[k] != afterJoin[k] {
			t.Fatalf("key %q moved %q -> %q but its owner did not leave", k, afterJoin[k], afterLeave[k])
		}
	}
	if moved == 0 {
		t.Fatal("leave moved zero keys")
	}
	if share := float64(moved) / float64(len(ks)); share > 1.6/float64(len(members)+1) {
		t.Fatalf("leave moved %.1f%% of keys, want ≈ %.1f%%", 100*share, 100.0/float64(len(members)+1))
	}
}

// TestMembershipAdopt pins the convergence rule: higher epoch always
// wins, lower never, and an equal-epoch tie breaks deterministically on
// the member-set hash so two replicas that raced divergent mutations to
// the same epoch agree on one winner.
func TestMembershipAdopt(t *testing.T) {
	base := []string{"http://a:1", "http://b:2"}

	m := NewMembership(base, 0)
	// Lower epoch: rejected.
	if _, ok := m.Adopt(0, []string{"http://z:9"}); ok {
		t.Fatal("adopted a lower epoch")
	}
	// Higher epoch: adopted.
	v, ok := m.Adopt(7, []string{"http://a:1", "http://c:3"})
	if !ok || v.Epoch != 7 || !v.Contains("http://c:3") {
		t.Fatalf("higher-epoch adopt: ok=%v view=%+v", ok, v)
	}
	// Same epoch, same members: no-op.
	if _, ok := m.Adopt(7, []string{"http://c:3", "http://a:1"}); ok {
		t.Fatal("adopted an identical view")
	}

	// Equal-epoch divergence: both replicas must converge on the same
	// view no matter which direction the exchange happens.
	m1 := NewMembership(base, 0)
	m2 := NewMembership(base, 0)
	v1, _ := m1.Join("http://c:3")
	v2, _ := m2.Join("http://d:4")
	if v1.Epoch != v2.Epoch {
		t.Fatalf("setup: epochs diverge %d vs %d", v1.Epoch, v2.Epoch)
	}
	m1.Adopt(v2.Epoch, v2.Members)
	m2.Adopt(v1.Epoch, v1.Members)
	g1, g2 := m1.View(), m2.View()
	if g1.Hash() != g2.Hash() || g1.Epoch != g2.Epoch {
		t.Fatalf("replicas did not converge: %+v vs %+v", g1, g2)
	}
}

// TestViewHashStable asserts the hash depends only on the member set.
func TestViewHashStable(t *testing.T) {
	a := NewMembership([]string{"http://a:1", "http://b:2"}, 0)
	b := NewMembership([]string{"http://b:2", "http://a:1", "http://a:1"}, 0)
	if a.View().Hash() != b.View().Hash() {
		t.Fatal("hash differs for identical member sets")
	}
	c, _ := a.Join("http://c:3")
	if c.Hash() == b.View().Hash() {
		t.Fatal("hash unchanged after membership change")
	}
	if want := fmt.Sprintf("%016x", hash64("http://a:1\x00http://b:2")); b.View().Hash() != want {
		t.Fatalf("hash construction drifted: %s != %s", b.View().Hash(), want)
	}
}
