// Package shard places sessions onto clear-serve replicas with a
// consistent-hash ring. Each replica (a "node", identified by its base
// URL) owns a contiguous set of hash-space arcs via virtual nodes; a
// session ID hashes to a point on the ring and is owned by the first node
// clockwise from it. The construction gives the two properties the
// serving layer's scale-out leans on:
//
//   - Stability: removing a node only re-homes the sessions that node
//     owned (≈ K/N of K sessions across N nodes), and adding a node only
//     steals sessions for itself — no unrelated session ever moves. The
//     rebalance property test in ring_test.go asserts both exactly.
//   - Determinism: every replica builds the ring from the same -peers
//     list and computes identical ownership with no coordination, so the
//     router (internal/serve/router.go) can forward or serve purely from
//     local state.
//
// Rings are immutable: With/Without derive new rings, so a router can
// compute failover ownership (ring minus a dead peer) without locking.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 128 keeps
// the per-node ownership share within a few percent of 1/N for the
// replica counts this system targets (single digits to low tens).
const DefaultVNodes = 128

// point is one virtual node: a position on the 64-bit hash circle and
// the physical node that owns the arc ending there.
type point struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring over named nodes.
type Ring struct {
	vnodes int
	nodes  []string // sorted, unique
	points []point  // sorted by hash
}

// New builds a ring over the given nodes with vnodes virtual nodes each
// (DefaultVNodes when vnodes <= 0). Duplicate nodes are collapsed; an
// empty node list yields a ring whose Owner returns "".
func New(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{h: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	return r
}

// hash64 is FNV-1a followed by a splitmix64 finalizer. Ownership must
// agree across replicas and process restarts, so the hash cannot be
// seeded per-process (which rules out maphash); but raw FNV-1a clusters
// sequential keys like "s000041"/"s000042" into nearby ring positions —
// with arc-sized gaps of ~2^55 that starves whole nodes — so the avalanche
// finalizer is load-bearing, not decoration.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the virtual-node count the ring was built with, so a
// derived structure (Membership) can rebuild compatible rings.
func (r *Ring) VNodes() int { return r.vnodes }

// Nodes returns the physical nodes in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Has reports whether node is a ring member.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the lowest
	}
	return r.points[i].node
}

// OwnerExcluding returns the owner of key on the ring with the down nodes
// removed — the deterministic failover owner every replica agrees on when
// a peer is unreachable. With every node down it returns "".
func (r *Ring) OwnerExcluding(key string, down map[string]bool) string {
	if len(down) == 0 {
		return r.Owner(key)
	}
	live := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if !down[n] {
			live = append(live, n)
		}
	}
	if len(live) == len(r.nodes) {
		return r.Owner(key)
	}
	return New(live, r.vnodes).Owner(key)
}

// Without derives the ring with node removed.
func (r *Ring) Without(node string) *Ring {
	live := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			live = append(live, n)
		}
	}
	return New(live, r.vnodes)
}

// With derives the ring with node added.
func (r *Ring) With(node string) *Ring {
	return New(append(r.Nodes(), node), r.vnodes)
}

// OwnershipCounts buckets keys by owning node — the /v1/stats ring
// surface showing how live sessions spread across replicas.
func (r *Ring) OwnershipCounts(keys []string) map[string]int {
	out := make(map[string]int, len(r.nodes))
	for _, n := range r.nodes {
		out[n] = 0
	}
	for _, k := range keys {
		if o := r.Owner(k); o != "" {
			out[o]++
		}
	}
	return out
}
