package dsp

import "sort"

// Peak describes a local maximum found by FindPeaks.
type Peak struct {
	// Index is the sample index of the peak.
	Index int
	// Height is the sample value at the peak.
	Height float64
	// Prominence is the height of the peak above the higher of the two
	// minima separating it from taller neighbours.
	Prominence float64
}

// FindPeaks locates local maxima of x that are at least minHeight tall,
// at least minDist samples apart, and have prominence ≥ minProminence.
// Peaks are returned in index order. When two candidate peaks are closer
// than minDist the taller one wins.
func FindPeaks(x []float64, minHeight, minProminence float64, minDist int) []Peak {
	if minDist < 1 {
		minDist = 1
	}
	var cands []Peak
	for i := 1; i < len(x)-1; i++ {
		if x[i] < minHeight {
			continue
		}
		// Strictly greater than the left neighbour; plateaus resolve to the
		// first sample of the plateau that is followed by a drop.
		if x[i] <= x[i-1] {
			continue
		}
		j := i
		for j < len(x)-1 && x[j+1] == x[i] {
			j++
		}
		if j == len(x)-1 || x[j+1] > x[i] {
			i = j
			continue
		}
		p := prominence(x, i)
		if p >= minProminence {
			cands = append(cands, Peak{Index: i, Height: x[i], Prominence: p})
		}
		i = j
	}
	if len(cands) == 0 {
		return nil
	}
	// Enforce minimum distance, preferring taller peaks.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cands[order[a]].Height > cands[order[b]].Height })
	kept := make([]bool, len(cands))
	taken := []int{}
	for _, ci := range order {
		ok := true
		for _, ti := range taken {
			d := cands[ci].Index - cands[ti].Index
			if d < 0 {
				d = -d
			}
			if d < minDist {
				ok = false
				break
			}
		}
		if ok {
			kept[ci] = true
			taken = append(taken, ci)
		}
	}
	var out []Peak
	for i, k := range kept {
		if k {
			out = append(out, cands[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// prominence computes the topographic prominence of the peak at index i.
func prominence(x []float64, i int) float64 {
	h := x[i]
	// Walk left until a taller sample or the boundary; track the minimum.
	leftMin := h
	for j := i - 1; j >= 0; j-- {
		if x[j] > h {
			break
		}
		if x[j] < leftMin {
			leftMin = x[j]
		}
	}
	rightMin := h
	for j := i + 1; j < len(x); j++ {
		if x[j] > h {
			break
		}
		if x[j] < rightMin {
			rightMin = x[j]
		}
	}
	base := leftMin
	if rightMin > base {
		base = rightMin
	}
	return h - base
}

// Intervals returns the successive differences of peak indices converted to
// seconds at sample rate fs. Used for inter-beat intervals.
func Intervals(peaks []Peak, fs float64) []float64 {
	if len(peaks) < 2 {
		return nil
	}
	out := make([]float64, len(peaks)-1)
	for i := 1; i < len(peaks); i++ {
		out[i-1] = float64(peaks[i].Index-peaks[i-1].Index) / fs
	}
	return out
}
