package dsp

import "math"

// MovingAverage returns the centred moving average of x with the given
// window size (clamped to ≥1). Edges use a shrunken window.
func MovingAverage(x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(x))
	half := window / 2
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// Detrend removes the least-squares straight line from x and returns the
// residual.
func Detrend(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n < 2 {
		copy(out, x)
		return out
	}
	// Fit y = a + b t with t = 0..n-1.
	var st, sy, stt, sty float64
	for i, v := range x {
		t := float64(i)
		st += t
		sy += v
		stt += t * t
		sty += t * v
	}
	fn := float64(n)
	den := fn*stt - st*st
	b := 0.0
	if den != 0 {
		b = (fn*sty - st*sy) / den
	}
	a := (sy - b*st) / fn
	for i, v := range x {
		out[i] = v - (a + b*float64(i))
	}
	return out
}

// Biquad is a direct-form-I second-order IIR filter section.
type Biquad struct {
	B0, B1, B2 float64 // numerator
	A1, A2     float64 // denominator (a0 normalised to 1)
}

// Filter applies the biquad to x and returns the output.
func (q Biquad) Filter(x []float64) []float64 {
	out := make([]float64, len(x))
	var x1, x2, y1, y2 float64
	for i, v := range x {
		y := q.B0*v + q.B1*x1 + q.B2*x2 - q.A1*y1 - q.A2*y2
		out[i] = y
		x2, x1 = x1, v
		y2, y1 = y1, y
	}
	return out
}

// LowpassBiquad designs a Butterworth-response low-pass biquad with cutoff
// fc Hz at sample rate fs Hz (bilinear transform, Q = 1/√2).
func LowpassBiquad(fc, fs float64) Biquad {
	w0 := 2 * math.Pi * fc / fs
	cw, sw := math.Cos(w0), math.Sin(w0)
	q := 1 / math.Sqrt2
	alpha := sw / (2 * q)
	a0 := 1 + alpha
	return Biquad{
		B0: (1 - cw) / 2 / a0,
		B1: (1 - cw) / a0,
		B2: (1 - cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}
}

// HighpassBiquad designs a Butterworth-response high-pass biquad with cutoff
// fc Hz at sample rate fs Hz.
func HighpassBiquad(fc, fs float64) Biquad {
	w0 := 2 * math.Pi * fc / fs
	cw, sw := math.Cos(w0), math.Sin(w0)
	q := 1 / math.Sqrt2
	alpha := sw / (2 * q)
	a0 := 1 + alpha
	return Biquad{
		B0: (1 + cw) / 2 / a0,
		B1: -(1 + cw) / a0,
		B2: (1 + cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}
}

// Bandpass applies a high-pass at lo Hz followed by a low-pass at hi Hz.
func Bandpass(x []float64, lo, hi, fs float64) []float64 {
	return LowpassBiquad(hi, fs).Filter(HighpassBiquad(lo, fs).Filter(x))
}

// Resample linearly resamples x from length len(x) to length n.
func Resample(x []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if len(x) == 0 {
		return out
	}
	if len(x) == 1 || n == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	scale := float64(len(x)-1) / float64(n-1)
	for i := range out {
		pos := float64(i) * scale
		j := int(pos)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}

// Diff returns the first difference x[i+1]-x[i] (length len(x)-1).
func Diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := range out {
		out[i] = x[i+1] - x[i]
	}
	return out
}
