package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Resample preserves endpoints and stays within input bounds.
func TestQuickResampleBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := 2 + rng.Intn(50)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = rng.NormFloat64()
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		y := Resample(x, m)
		if len(y) != m {
			return false
		}
		if y[0] != x[0] || math.Abs(y[m-1]-x[n-1]) > 1e-9 {
			return false
		}
		for _, v := range y {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false // linear interpolation cannot overshoot
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: biquad filters are BIBO stable for the designed coefficients —
// the impulse response decays.
func TestBiquadImpulseDecays(t *testing.T) {
	for _, q := range []Biquad{
		LowpassBiquad(5, 100),
		LowpassBiquad(40, 100),
		HighpassBiquad(0.5, 100),
		HighpassBiquad(30, 100),
	} {
		impulse := make([]float64, 512)
		impulse[0] = 1
		y := q.Filter(impulse)
		head := 0.0
		for _, v := range y[:64] {
			head += math.Abs(v)
		}
		tail := 0.0
		for _, v := range y[448:] {
			tail += math.Abs(v)
		}
		if tail > head*1e-3 {
			t.Errorf("biquad %+v: impulse response does not decay (head %g, tail %g)", q, head, tail)
		}
	}
}

// Property: moving average is bounded by the input range and preserves a
// constant signal exactly.
func TestQuickMovingAverageBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		w := 1 + rng.Intn(12)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = rng.NormFloat64()
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		y := MovingAverage(x, w)
		for _, v := range y {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = 7
		}
		for _, v := range MovingAverage(c, w) {
			if math.Abs(v-7) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: detrending twice equals detrending once (projection).
func TestQuickDetrendIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() + 0.3*float64(i)
		}
		once := Detrend(x)
		twice := Detrend(once)
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: band powers over a partition sum to the total power.
func TestBandPowerAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	psd := Welch(x, 64, 256)
	full := psd.BandPower(0, 32)
	parts := psd.BandPower(0, 4) + psd.BandPower(4, 12) + psd.BandPower(12, 32)
	if math.Abs(full-parts) > 1e-9*(1+full) {
		t.Errorf("band powers not additive: %g vs %g", parts, full)
	}
}

// Property: peak indices returned by FindPeaks are genuinely local maxima
// (accounting for plateaus).
func TestQuickPeaksAreLocalMaxima(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for _, p := range FindPeaks(x, -10, 0, 1) {
			if p.Index <= 0 || p.Index >= n-1 {
				return false
			}
			if x[p.Index] <= x[p.Index-1] {
				return false
			}
			// To the right a plateau may extend; the first drop must come
			// before any rise above the peak value.
			j := p.Index
			for j < n-1 && x[j+1] == x[p.Index] {
				j++
			}
			if j < n-1 && x[j+1] > x[p.Index] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
