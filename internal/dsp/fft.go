// Package dsp implements the signal-processing substrate used by the
// physiological feature extractor: an iterative radix-2 FFT, Welch power
// spectral density estimation, band-power integration, simple IIR/FIR
// filtering, detrending, resampling and peak detection (heart beats in BVP,
// skin-conductance responses in GSR).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place decimation-in-time radix-2 FFT of x and returns
// it. len(x) must be a power of two (and non-zero).
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return x
}

// IFFT computes the inverse FFT of x in place and returns it.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * complex(inv, 0)
	}
	return x
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// RealFFT computes the FFT of a real signal, zero-padded to the next power
// of two, and returns the complex spectrum (full length).
func RealFFT(x []float64) []complex128 {
	n := NextPow2(len(x))
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// Magnitudes returns |x[i]| for each element.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// HannWindow returns the length-n Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}
