package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSine(t *testing.T) {
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*4*float64(i)/n), 0)
	}
	FFT(x)
	mags := Magnitudes(x)
	// Energy must concentrate at bins 4 and n-4.
	for i, m := range mags {
		if i == 4 || i == n-4 {
			if math.Abs(m-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude = %g, want %g", i, m, float64(n)/2)
			}
		} else if m > 1e-9 {
			t.Errorf("bin %d magnitude = %g, want ~0", i, m)
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 128)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip [%d]: %v != %v", i, x[i], orig[i])
		}
	}
}

// Property: Parseval — sum |x|² == (1/N) sum |X|².
func TestQuickParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4))
		x := make([]complex128, n)
		tsum := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tsum += real(x[i]) * real(x[i])
		}
		FFT(x)
		fsum := 0.0
		for _, v := range x {
			fsum += real(v)*real(v) + imag(v)*imag(v)
		}
		fsum /= float64(n)
		return math.Abs(tsum-fsum) < 1e-8*(1+tsum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FFT linearity.
func TestQuickFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		s := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), 0)
			b[i] = complex(rng.NormFloat64(), 0)
			s[i] = a[i] + 2*b[i]
		}
		FFT(a)
		FFT(b)
		FFT(s)
		for i := range s {
			if cmplx.Abs(s[i]-(a[i]+2*b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestWelchPeak(t *testing.T) {
	// 5 Hz sine at fs=100 → PSD peak near 5 Hz.
	fs := 100.0
	x := make([]float64, 1024)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5 * float64(i) / fs)
	}
	psd := Welch(x, fs, 256)
	if pf := psd.PeakFrequency(0.5, 50); math.Abs(pf-5) > 0.5 {
		t.Errorf("peak frequency = %g, want ≈5", pf)
	}
	// Band power around the tone dominates the rest.
	inBand := psd.BandPower(4, 6)
	outBand := psd.BandPower(10, 40)
	if inBand < 10*outBand {
		t.Errorf("band power in=%g out=%g: tone not concentrated", inBand, outBand)
	}
}

func TestWelchTotalPowerApproxVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fs := 50.0
	x := make([]float64, 4096)
	va := 0.0
	for i := range x {
		x[i] = rng.NormFloat64()
		va += x[i] * x[i]
	}
	va /= float64(len(x))
	psd := Welch(x, fs, 256)
	tp := psd.TotalPower()
	if tp < va/3 || tp > va*3 {
		t.Errorf("total power %g not within 3x of variance %g", tp, va)
	}
}

func TestWelchEmptyAndShort(t *testing.T) {
	if p := Welch(nil, 10, 64); len(p.Freqs) != 0 {
		t.Error("empty input should yield empty PSD")
	}
	p := Welch([]float64{1, 2, 3}, 10, 64)
	if len(p.Freqs) == 0 {
		t.Error("short input should still yield a PSD via zero-padding")
	}
}

func TestSpectralEntropy(t *testing.T) {
	fs := 100.0
	tone := make([]float64, 2048)
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * 10 * float64(i) / fs)
	}
	rng := rand.New(rand.NewSource(3))
	noise := make([]float64, 2048)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	eTone := Welch(tone, fs, 256).SpectralEntropy(0.5, 45)
	eNoise := Welch(noise, fs, 256).SpectralEntropy(0.5, 45)
	if eTone >= eNoise {
		t.Errorf("entropy of tone (%g) should be below noise (%g)", eTone, eNoise)
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 1, 10, 1, 1}
	y := MovingAverage(x, 3)
	if y[2] != 4 {
		t.Errorf("MovingAverage centre = %g, want 4", y[2])
	}
	if y[0] != 1 {
		t.Errorf("MovingAverage edge = %g, want 1", y[0])
	}
	if got := MovingAverage(x, 0); got[2] != 10 {
		t.Errorf("window clamp failed: %v", got)
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 3 + 0.5*float64(i)
	}
	y := Detrend(x)
	for i, v := range y {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("Detrend residual[%d] = %g, want 0", i, v)
		}
	}
}

func TestDetrendPreservesOscillation(t *testing.T) {
	x := make([]float64, 200)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/20) + 0.1*float64(i)
	}
	y := Detrend(x)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	if math.Abs(mean) > 1e-9 {
		t.Errorf("Detrend mean = %g, want 0", mean)
	}
	ss := 0.0
	for _, v := range y {
		ss += v * v
	}
	if ss/float64(len(y)) < 0.3 {
		t.Errorf("Detrend removed oscillation: power %g", ss/float64(len(y)))
	}
}

func TestLowpassAttenuatesHighFreq(t *testing.T) {
	fs := 100.0
	x := make([]float64, 2048)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*1*ti) + math.Sin(2*math.Pi*30*ti)
	}
	y := LowpassBiquad(5, fs).Filter(x)
	psd := Welch(y[256:], fs, 512)
	lo := psd.BandPower(0.5, 2)
	hi := psd.BandPower(25, 35)
	if lo < 20*hi {
		t.Errorf("lowpass failed: low band %g, high band %g", lo, hi)
	}
}

func TestHighpassAttenuatesLowFreq(t *testing.T) {
	fs := 100.0
	x := make([]float64, 2048)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*0.2*ti) + math.Sin(2*math.Pi*10*ti)
	}
	y := HighpassBiquad(2, fs).Filter(x)
	psd := Welch(y[256:], fs, 512)
	lo := psd.BandPower(0.05, 0.5)
	hi := psd.BandPower(8, 12)
	if hi < 20*lo {
		t.Errorf("highpass failed: low band %g, high band %g", lo, hi)
	}
}

func TestBandpass(t *testing.T) {
	fs := 100.0
	x := make([]float64, 4096)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*0.1*ti) + math.Sin(2*math.Pi*5*ti) + math.Sin(2*math.Pi*40*ti)
	}
	y := Bandpass(x, 1, 10, fs)
	psd := Welch(y[512:], fs, 512)
	mid := psd.BandPower(4, 6)
	if mid < 10*psd.BandPower(30, 45) || mid < 10*psd.BandPower(0.02, 0.3) {
		t.Error("bandpass did not isolate the mid band")
	}
}

func TestResample(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := Resample(x, 7)
	if len(y) != 7 {
		t.Fatalf("Resample length %d", len(y))
	}
	if y[0] != 0 || y[6] != 3 {
		t.Errorf("Resample endpoints %g, %g", y[0], y[6])
	}
	if math.Abs(y[3]-1.5) > 1e-12 {
		t.Errorf("Resample midpoint %g, want 1.5", y[3])
	}
	if got := Resample([]float64{5}, 3); got[0] != 5 || got[2] != 5 {
		t.Errorf("constant resample %v", got)
	}
	if Resample(nil, 0) != nil {
		t.Error("Resample(nil,0) should be nil")
	}
}

func TestDiff(t *testing.T) {
	d := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i, v := range want {
		if d[i] != v {
			t.Errorf("Diff[%d] = %g, want %g", i, d[i], v)
		}
	}
	if Diff([]float64{1}) != nil {
		t.Error("Diff of single element should be nil")
	}
}

func TestFindPeaksSimple(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	peaks := FindPeaks(x, 0.5, 0.5, 1)
	if len(peaks) != 3 {
		t.Fatalf("found %d peaks, want 3: %+v", len(peaks), peaks)
	}
	if peaks[0].Index != 1 || peaks[2].Index != 5 {
		t.Errorf("peak indices %+v", peaks)
	}
	if peaks[2].Height != 3 {
		t.Errorf("peak height %g", peaks[2].Height)
	}
}

func TestFindPeaksMinDistance(t *testing.T) {
	x := []float64{0, 5, 4, 6, 0}
	peaks := FindPeaks(x, 0, 0.5, 3)
	if len(peaks) != 1 {
		t.Fatalf("found %d peaks, want 1 (distance suppression)", len(peaks))
	}
	if peaks[0].Index != 3 {
		t.Errorf("kept peak at %d, want 3 (the taller)", peaks[0].Index)
	}
}

func TestFindPeaksProminence(t *testing.T) {
	// A small bump riding on the shoulder of a big peak has low prominence.
	x := []float64{0, 10, 9.5, 9.8, 9, 0}
	peaks := FindPeaks(x, 0, 1.0, 1)
	if len(peaks) != 1 || peaks[0].Index != 1 {
		t.Fatalf("prominence filter failed: %+v", peaks)
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	x := []float64{0, 2, 2, 2, 0}
	peaks := FindPeaks(x, 0, 0.5, 1)
	if len(peaks) != 1 {
		t.Fatalf("plateau: found %d peaks, want 1", len(peaks))
	}
	if peaks[0].Index != 1 {
		t.Errorf("plateau peak index %d, want 1", peaks[0].Index)
	}
}

func TestFindPeaksBVPLike(t *testing.T) {
	// Synthetic pulse train at 1.2 Hz sampled at 64 Hz: ~expect beats back.
	fs := 64.0
	hr := 1.2
	x := make([]float64, int(fs*30))
	for i := range x {
		ph := math.Mod(float64(i)/fs*hr, 1)
		x[i] = math.Exp(-50*(ph-0.2)*(ph-0.2)) + 0.05*math.Sin(float64(i))
	}
	peaks := FindPeaks(x, 0.5, 0.3, int(fs*0.4))
	wantBeats := 30 * hr
	if math.Abs(float64(len(peaks))-wantBeats) > 3 {
		t.Errorf("detected %d beats, want ≈%g", len(peaks), wantBeats)
	}
	ibis := Intervals(peaks, fs)
	for _, ibi := range ibis {
		if math.Abs(ibi-1/hr) > 0.1 {
			t.Errorf("IBI %g, want ≈%g", ibi, 1/hr)
		}
	}
}

func TestIntervalsEmpty(t *testing.T) {
	if Intervals(nil, 10) != nil {
		t.Error("Intervals(nil) should be nil")
	}
	if Intervals([]Peak{{Index: 3}}, 10) != nil {
		t.Error("Intervals of single peak should be nil")
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(5)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[4]) > 1e-12 {
		t.Errorf("Hann endpoints %g, %g, want 0", w[0], w[4])
	}
	if math.Abs(w[2]-1) > 1e-12 {
		t.Errorf("Hann centre %g, want 1", w[2])
	}
	if w1 := HannWindow(1); w1[0] != 1 {
		t.Errorf("HannWindow(1) = %v", w1)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := make([]complex128, len(x))
		copy(buf, x)
		FFT(buf)
	}
}

func BenchmarkWelch4096(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Welch(x, 64, 256)
	}
}
