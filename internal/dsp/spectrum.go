package dsp

import (
	"fmt"
	"math"
)

// PSD is a one-sided power spectral density estimate.
type PSD struct {
	// Freqs holds the frequency of each bin in Hz.
	Freqs []float64
	// Power holds the density at each bin (signal²/Hz).
	Power []float64
}

// Welch estimates the one-sided PSD of x sampled at fs Hz using Welch's
// method: Hann-windowed segments of length segLen with 50 % overlap,
// periodograms averaged. segLen is rounded up to a power of two. If x is
// shorter than segLen a single zero-padded segment is used.
func Welch(x []float64, fs float64, segLen int) PSD {
	if len(x) == 0 {
		return PSD{}
	}
	if segLen <= 0 {
		segLen = 256
	}
	segLen = NextPow2(segLen)
	step := segLen / 2
	if step == 0 {
		step = 1
	}
	win := HannWindow(segLen)
	winPow := 0.0
	for _, w := range win {
		winPow += w * w
	}

	nBins := segLen/2 + 1
	acc := make([]float64, nBins)
	segments := 0
	for start := 0; start == 0 || start+segLen <= len(x); start += step {
		seg := make([]complex128, segLen)
		mean := 0.0
		count := 0
		for i := 0; i < segLen && start+i < len(x); i++ {
			mean += x[start+i]
			count++
		}
		if count > 0 {
			mean /= float64(count)
		}
		for i := 0; i < segLen && start+i < len(x); i++ {
			seg[i] = complex((x[start+i]-mean)*win[i], 0)
		}
		FFT(seg)
		for k := 0; k < nBins; k++ {
			m := real(seg[k])*real(seg[k]) + imag(seg[k])*imag(seg[k])
			// One-sided scaling: double the interior bins.
			if k != 0 && k != segLen/2 {
				m *= 2
			}
			acc[k] += m / (fs * winPow)
		}
		segments++
	}
	for k := range acc {
		acc[k] /= float64(segments)
	}
	freqs := make([]float64, nBins)
	for k := range freqs {
		freqs[k] = float64(k) * fs / float64(segLen)
	}
	return PSD{Freqs: freqs, Power: acc}
}

// BandPower integrates the PSD over [lo, hi] Hz using the trapezoid rule.
func (p PSD) BandPower(lo, hi float64) float64 {
	if len(p.Freqs) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(p.Freqs); i++ {
		f0, f1 := p.Freqs[i-1], p.Freqs[i]
		if f1 < lo || f0 > hi {
			continue
		}
		a, b := math.Max(f0, lo), math.Min(f1, hi)
		if b <= a {
			continue
		}
		// Linear interpolation of power at the clipped edges.
		frac0 := (a - f0) / (f1 - f0)
		frac1 := (b - f0) / (f1 - f0)
		p0 := p.Power[i-1] + frac0*(p.Power[i]-p.Power[i-1])
		p1 := p.Power[i-1] + frac1*(p.Power[i]-p.Power[i-1])
		total += 0.5 * (p0 + p1) * (b - a)
	}
	return total
}

// TotalPower integrates the PSD over its full range.
func (p PSD) TotalPower() float64 {
	if len(p.Freqs) == 0 {
		return 0
	}
	return p.BandPower(p.Freqs[0], p.Freqs[len(p.Freqs)-1])
}

// PeakFrequency returns the frequency of the highest-power bin within
// [lo, hi] Hz, or 0 if the band is empty.
func (p PSD) PeakFrequency(lo, hi float64) float64 {
	best, bestF := -1.0, 0.0
	for i, f := range p.Freqs {
		if f < lo || f > hi {
			continue
		}
		if p.Power[i] > best {
			best, bestF = p.Power[i], f
		}
	}
	return bestF
}

// SpectralEntropy returns the normalised Shannon entropy of the PSD within
// [lo, hi] Hz (0 = single tone, 1 = flat spectrum).
func (p PSD) SpectralEntropy(lo, hi float64) float64 {
	var probs []float64
	sum := 0.0
	for i, f := range p.Freqs {
		if f < lo || f > hi {
			continue
		}
		probs = append(probs, p.Power[i])
		sum += p.Power[i]
	}
	if len(probs) < 2 || sum <= 0 {
		return 0
	}
	h := 0.0
	for _, q := range probs {
		q /= sum
		if q > 0 {
			h -= q * math.Log(q)
		}
	}
	return h / math.Log(float64(len(probs)))
}

// String implements fmt.Stringer.
func (p PSD) String() string {
	return fmt.Sprintf("PSD{%d bins, %.3g–%.3g Hz}", len(p.Freqs), first(p.Freqs), last(p.Freqs))
}

func first(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return x[0]
}

func last(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return x[len(x)-1]
}
