package cluster

import (
	"fmt"
	"math"
)

// Silhouette returns the mean silhouette coefficient of the clustering:
// for each point, (b−a)/max(a,b) where a is the mean distance to its own
// cluster's other members and b the smallest mean distance to another
// cluster. Ranges in [−1, 1]; higher is better. Singleton clusters
// contribute 0 for their members, following the scikit-learn convention.
func Silhouette(points [][]float64, assign []int, k int) float64 {
	n := len(points)
	if n == 0 || k < 2 {
		return 0
	}
	total := 0.0
	for i, p := range points {
		own := assign[i]
		// Mean distance to each cluster.
		sums := make([]float64, k)
		counts := make([]int, k)
		for j, q := range points {
			if j == i {
				continue
			}
			sums[assign[j]] += Dist(p, q)
			counts[assign[j]]++
		}
		if counts[own] == 0 {
			continue // singleton: contributes 0
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}

// KSweepPoint is one entry of a K-selection sweep.
type KSweepPoint struct {
	K          int
	Silhouette float64
	Inertia    float64
	Sizes      []int
}

// SweepK clusters points for each K in [kmin, kmax] and reports silhouette
// and inertia, for elbow/silhouette-based selection of the cluster count
// (the paper chose K=4 as "the best balance between intra-cluster
// similarity and inter-cluster separation").
func SweepK(points [][]float64, kmin, kmax int, opts Options) ([]KSweepPoint, error) {
	if kmin < 2 {
		kmin = 2
	}
	if kmax > len(points) {
		kmax = len(points)
	}
	if kmin > kmax {
		return nil, fmt.Errorf("cluster: empty K range [%d, %d]", kmin, kmax)
	}
	var out []KSweepPoint
	for k := kmin; k <= kmax; k++ {
		o := opts
		o.Seed = opts.Seed + int64(k)*101
		res, err := KMeans(points, k, o)
		if err != nil {
			return nil, err
		}
		out = append(out, KSweepPoint{
			K:          k,
			Silhouette: Silhouette(points, res.Assign, k),
			Inertia:    res.Inertia,
			Sizes:      res.Sizes(),
		})
	}
	return out, nil
}

// BestK returns the K with the highest silhouette in the sweep.
func BestK(sweep []KSweepPoint) int {
	best, bk := math.Inf(-1), 0
	for _, p := range sweep {
		if p.Silhouette > best {
			best, bk = p.Silhouette, p.K
		}
	}
	return bk
}

// Standardizer z-scores point coordinates with statistics fitted on a
// training population. Clustering in standardised space prevents large-
// magnitude features (e.g. spectral powers) from dominating distances.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-coordinate mean and std over points.
func FitStandardizer(points [][]float64) *Standardizer {
	if len(points) == 0 {
		return &Standardizer{}
	}
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(points))
	}
	std := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(points)))
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	return &Standardizer{Mean: mean, Std: std}
}

// Apply returns the standardised copy of p.
func (s *Standardizer) Apply(p []float64) []float64 {
	if len(s.Mean) == 0 {
		return clone(p)
	}
	out := make([]float64, len(p))
	for j, v := range p {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyAll standardises a batch of points.
func (s *Standardizer) ApplyAll(points [][]float64) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = s.Apply(p)
	}
	return out
}
