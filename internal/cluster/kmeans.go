// Package cluster implements the clustering machinery of the CLEAR
// methodology: k-means with k-means++ seeding and restarts, the iterative
// subsample-refine-reassign loop of Gutiérrez-Martín et al. (the paper's
// reference [19]), silhouette-based selection of the cluster count K, and
// the hierarchical sub-cluster structure used for unsupervised cold-start
// assignment of new users.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
)

// ErrNonFinite reports input rows containing NaN or ±Inf. A single
// non-finite coordinate poisons every distance it touches (NaN comparisons
// are always false), silently corrupting centroids, so such rows are
// rejected up front with a typed error the caller can branch on.
var ErrNonFinite = errors.New("cluster: non-finite input")

// Clustering telemetry: how many k-means runs/restarts happened, how many
// Lloyd iterations each restart needed to converge, and the inertia of the
// last winning run.
var (
	mKMeansRuns     = obs.GetCounter("cluster.kmeans.runs")
	mKMeansRestarts = obs.GetCounter("cluster.kmeans.restarts")
	hKMeansIters    = obs.GetHistogram("cluster.kmeans.iters", obs.ExpBuckets(1, 2, 10))
	gKMeansInertia  = obs.GetGauge("cluster.kmeans.inertia")
)

// Options configures KMeans.
type Options struct {
	// MaxIter bounds Lloyd iterations per restart (default 100).
	MaxIter int
	// Restarts is the number of independent k-means++ initialisations;
	// the lowest-inertia run wins (default 8).
	Restarts int
	// Seed makes clustering deterministic.
	Seed int64
}

func (o *Options) fillDefaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Restarts == 0 {
		o.Restarts = 8
	}
}

// Result is a flat clustering of points.
type Result struct {
	K         int
	Centroids [][]float64
	// Assign maps each input point to its cluster index.
	Assign []int
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations the winning restart ran
	// before converging (or hitting MaxIter).
	Iters int
}

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	s := make([]int, r.K)
	for _, a := range r.Assign {
		s[a]++
	}
	return s
}

// Members returns the indices of points assigned to cluster k.
func (r *Result) Members(k int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == k {
			out = append(out, i)
		}
	}
	return out
}

// KMeans clusters points into k groups. Points must be non-empty and share
// one dimensionality; k must satisfy 1 ≤ k ≤ len(points).
func KMeans(points [][]float64, k int, opts Options) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	sp := obs.StartSpan("cluster.kmeans")
	defer sp.End()
	mKMeansRuns.Inc()
	rng := rand.New(rand.NewSource(opts.Seed))
	var best *Result
	for r := 0; r < opts.Restarts; r++ {
		rsp := obs.StartSpan("kmeans.restart")
		res := lloyd(points, k, rng, opts.MaxIter)
		rsp.End()
		mKMeansRestarts.Inc()
		hKMeansIters.Observe(float64(res.Iters))
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	gKMeansInertia.Set(best.Inertia)
	return best, nil
}

func validate(points [][]float64, k int) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points")
	}
	if k < 1 || k > len(points) {
		return fmt.Errorf("cluster: k=%d invalid for %d points", k, len(points))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: point %d coordinate %d is %v", ErrNonFinite, i, j, v)
			}
		}
	}
	return nil
}

// lloyd runs one k-means++ init followed by Lloyd iterations.
func lloyd(points [][]float64, k int, rng *rand.Rand, maxIter int) *Result {
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			c := nearest(centroids, p)
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		recomputeCentroids(points, assign, centroids, rng)
		iters = iter + 1
		if !changed && iter > 0 {
			break
		}
	}
	return &Result{K: k, Centroids: centroids, Assign: assign, Inertia: inertia(points, assign, centroids), Iters: iters}
}

// seedPlusPlus picks initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, clone(first))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			d := SqDist(p, centroids[len(centroids)-1])
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		var next []float64
		if total == 0 {
			next = points[rng.Intn(len(points))]
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = points[len(points)-1]
			for i, p := range points {
				acc += d2[i]
				if acc >= r {
					next = p
					break
				}
			}
		}
		centroids = append(centroids, clone(next))
	}
	return centroids
}

// recomputeCentroids sets each centroid to the mean of its members; an
// empty cluster is re-seeded at the point farthest from its centroid.
func recomputeCentroids(points [][]float64, assign []int, centroids [][]float64, rng *rand.Rand) {
	dim := len(points[0])
	k := len(centroids)
	sums := make([][]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for i, p := range points {
		a := assign[i]
		counts[a]++
		for j, v := range p {
			sums[a][j] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			// Re-seed at the globally worst-fitted point.
			worst, worstD := 0, -1.0
			for i, p := range points {
				d := SqDist(p, centroids[assign[i]])
				if d > worstD {
					worst, worstD = i, d
				}
			}
			copy(centroids[c], points[worst])
			continue
		}
		for j := range centroids[c] {
			centroids[c][j] = sums[c][j] / float64(counts[c])
		}
	}
	_ = rng
}

func nearest(centroids [][]float64, p []float64) int {
	best, bi := math.Inf(1), 0
	for i, c := range centroids {
		if d := SqDist(p, c); d < best {
			best, bi = d, i
		}
	}
	return bi
}

func inertia(points [][]float64, assign []int, centroids [][]float64) float64 {
	s := 0.0
	for i, p := range points {
		s += SqDist(p, centroids[assign[i]])
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

func clone(x []float64) []float64 { return append([]float64(nil), x...) }

// AssignAll maps each point to its nearest centroid.
func AssignAll(points [][]float64, centroids [][]float64) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = nearest(centroids, p)
	}
	return out
}

// Refine runs the iterative refinement loop of [19]: for a number of
// rounds, recompute centroids from a random subsample of each cluster's
// members, then reassign every point to its now-nearest centroid. This
// makes the partition robust to outlier volunteers dominating a mean.
func Refine(points [][]float64, res *Result, rounds int, sampleFrac float64, seed int64) *Result {
	if rounds <= 0 {
		return res
	}
	if sampleFrac <= 0 || sampleFrac > 1 {
		sampleFrac = 0.8
	}
	sp := obs.StartSpan("cluster.refine")
	defer sp.End()
	rng := rand.New(rand.NewSource(seed))
	cur := &Result{K: res.K, Centroids: make([][]float64, res.K), Assign: append([]int(nil), res.Assign...)}
	for i, c := range res.Centroids {
		cur.Centroids[i] = clone(c)
	}
	dim := len(points[0])
	for r := 0; r < rounds; r++ {
		for c := 0; c < cur.K; c++ {
			members := cur.members(c)
			if len(members) == 0 {
				continue
			}
			n := int(sampleFrac*float64(len(members)) + 0.5)
			if n < 1 {
				n = 1
			}
			rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			sample := members[:n]
			mean := make([]float64, dim)
			for _, idx := range sample {
				for j, v := range points[idx] {
					mean[j] += v
				}
			}
			for j := range mean {
				mean[j] /= float64(n)
			}
			cur.Centroids[c] = mean
		}
		cur.Assign = AssignAll(points, cur.Centroids)
	}
	cur.Inertia = inertia(points, cur.Assign, cur.Centroids)
	return cur
}

func (r *Result) members(k int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == k {
			out = append(out, i)
		}
	}
	return out
}
