package cluster

import (
	"fmt"
	"math"
)

// Hierarchy is the two-level structure the paper's cold-start Cluster
// Assignment (CA) uses: the top-level clusters, and for each cluster a set
// of internal sub-cluster centroids C_{k,i} capturing its fine structure.
// A new user is assigned to the cluster that minimises the *sum* of
// distances from the user's feature summary to that cluster's internal
// centroids (Section III-B-1 of the paper).
type Hierarchy struct {
	Top *Result
	// Sub[k] holds the internal centroids of top-level cluster k.
	Sub [][][]float64
}

// BuildHierarchy runs a small k-means inside each top-level cluster to
// obtain its internal centroids. subK is clamped to the cluster's member
// count; clusters keep at least their own centroid.
func BuildHierarchy(points [][]float64, top *Result, subK int, opts Options) (*Hierarchy, error) {
	if subK < 1 {
		return nil, fmt.Errorf("cluster: subK must be ≥1, got %d", subK)
	}
	h := &Hierarchy{Top: top, Sub: make([][][]float64, top.K)}
	for k := 0; k < top.K; k++ {
		idx := top.Members(k)
		if len(idx) == 0 {
			h.Sub[k] = [][]float64{clone(top.Centroids[k])}
			continue
		}
		member := make([][]float64, len(idx))
		for i, j := range idx {
			member[i] = points[j]
		}
		kk := subK
		if kk > len(member) {
			kk = len(member)
		}
		o := opts
		o.Seed = opts.Seed + int64(k)*997
		res, err := KMeans(member, kk, o)
		if err != nil {
			return nil, err
		}
		h.Sub[k] = res.Centroids
	}
	return h, nil
}

// Assign returns the top-level cluster whose internal centroids minimise
// the summed distance to x, together with the per-cluster scores. Scores
// are mean (not raw-sum) distances so clusters with different sub-cluster
// counts compare fairly.
//
// Ownership: the returned scores slice is freshly allocated on every call
// and handed to the caller outright — Assign never retains it and
// concurrent calls never share backing arrays, so callers may mutate or
// store it without copying. Assign itself only reads the hierarchy, so any
// number of goroutines may call it concurrently.
func (h *Hierarchy) Assign(x []float64) (best int, scores []float64) {
	scores = make([]float64, h.Top.K)
	bestScore := math.Inf(1)
	for k := 0; k < h.Top.K; k++ {
		s := 0.0
		for _, c := range h.Sub[k] {
			s += Dist(x, c)
		}
		s /= float64(len(h.Sub[k]))
		scores[k] = s
		if s < bestScore {
			bestScore, best = s, k
		}
	}
	return best, scores
}

// AssignFlat returns the top-level cluster with the nearest top centroid,
// ignoring the sub-cluster structure. Used as the ablation baseline for the
// hierarchical assignment.
func (h *Hierarchy) AssignFlat(x []float64) int {
	return nearest(h.Top.Centroids, x)
}
