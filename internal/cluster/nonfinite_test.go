package cluster

import (
	"errors"
	"math"
	"testing"
)

// Non-finite rows must be rejected up front with the typed error: a single
// NaN coordinate silently corrupts every centroid it touches otherwise.
func TestKMeansRejectsNonFinite(t *testing.T) {
	clean := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}}
	if _, err := KMeans(clean, 2, Options{Seed: 1}); err != nil {
		t.Fatalf("clean input rejected: %v", err)
	}
	for name, bad := range map[string]float64{
		"nan":  math.NaN(),
		"+inf": math.Inf(1),
		"-inf": math.Inf(-1),
	} {
		pts := [][]float64{{0, 0}, {0, bad}, {10, 10}, {10, 11}}
		_, err := KMeans(pts, 2, Options{Seed: 1})
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s input: err = %v, want ErrNonFinite", name, err)
		}
	}
}
