package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points per centre with isotropic Gaussian spread.
func blobs(rng *rand.Rand, centres [][]float64, n int, spread float64) ([][]float64, []int) {
	var pts [][]float64
	var truth []int
	for ci, c := range centres {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j, v := range c {
				p[j] = v + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
			truth = append(truth, ci)
		}
	}
	// Shuffle consistently.
	perm := rng.Perm(len(pts))
	sp := make([][]float64, len(pts))
	st := make([]int, len(pts))
	for i, j := range perm {
		sp[i] = pts[j]
		st[i] = truth[j]
	}
	return sp, st
}

// agreement computes the best-case label agreement between two partitions
// of ≤4 clusters by exhaustive permutation matching.
func agreement(a, b []int, k int) float64 {
	perms := permutations(k)
	best := 0
	for _, perm := range perms {
		match := 0
		for i := range a {
			if perm[a[i]] == b[i] {
				match++
			}
		}
		if match > best {
			best = match
		}
	}
	return float64(best) / float64(len(a))
}

func permutations(k int) [][]int {
	if k == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			if !used[i] {
				used[i] = true
				rec(append(cur, i), used)
				used[i] = false
			}
		}
	}
	rec(nil, make([]bool, k))
	return out
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	pts, truth := blobs(rng, centres, 30, 1.0)
	res, err := KMeans(pts, 3, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if ag := agreement(res.Assign, truth, 3); ag < 0.98 {
		t.Errorf("agreement = %.3f, want ≥0.98", ag)
	}
	sizes := res.Sizes()
	for c, s := range sizes {
		if s < 25 || s > 35 {
			t.Errorf("cluster %d size %d, want ≈30", c, s)
		}
	}
}

func TestKMeansK1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := blobs(rng, [][]float64{{5, 5}}, 20, 1)
	res, err := KMeans(pts, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-5) > 0.8 || math.Abs(res.Centroids[0][1]-5) > 0.8 {
		t.Errorf("centroid %v, want ≈(5,5)", res.Centroids[0])
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, Options{}); err == nil {
		t.Error("want error for empty points")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 3, Options{}); err == nil {
		t.Error("want error for k > n")
	}
	if _, err := KMeans(pts, 0, Options{}); err == nil {
		t.Error("want error for k = 0")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, Options{}); err == nil {
		t.Error("want error for ragged points")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}}, 20, 1)
	a, _ := KMeans(pts, 2, Options{Seed: 5})
	b, _ := KMeans(pts, 2, Options{Seed: 5})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give identical clustering")
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	// All identical points: every k must still terminate.
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{1, 2}
	}
	res, err := KMeans(pts, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %g, want 0", res.Inertia)
	}
}

func TestKMeansInertiaImprovesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {6, 0}, {0, 6}, {6, 6}}, 15, 1)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 4; k++ {
		res, err := KMeans(pts, k, Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Errorf("inertia increased at k=%d: %g > %g", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestMembersAndSizesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {9, 9}}, 12, 1)
	res, _ := KMeans(pts, 2, Options{Seed: 2})
	total := 0
	for k := 0; k < res.K; k++ {
		m := res.Members(k)
		if len(m) != res.Sizes()[k] {
			t.Errorf("cluster %d: members %d != size %d", k, len(m), res.Sizes()[k])
		}
		total += len(m)
		for _, i := range m {
			if res.Assign[i] != k {
				t.Errorf("member %d not assigned to %d", i, k)
			}
		}
	}
	if total != len(pts) {
		t.Errorf("members total %d != %d", total, len(pts))
	}
}

func TestSilhouetteOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tight, truthT := blobs(rng, [][]float64{{0, 0}, {20, 0}}, 25, 0.5)
	loose, truthL := blobs(rng, [][]float64{{0, 0}, {2, 0}}, 25, 1.5)
	sT := Silhouette(tight, truthT, 2)
	sL := Silhouette(loose, truthL, 2)
	if sT < 0.8 {
		t.Errorf("tight silhouette %.3f, want high", sT)
	}
	if sT <= sL {
		t.Errorf("tight %.3f should beat loose %.3f", sT, sL)
	}
	if Silhouette(tight, truthT, 1) != 0 {
		t.Error("k=1 silhouette should be 0")
	}
	if Silhouette(nil, nil, 2) != 0 {
		t.Error("empty silhouette should be 0")
	}
}

func TestSweepKFindsTrueK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {12, 0}, {0, 12}, {12, 12}}, 12, 1)
	sweep, err := SweepK(pts, 2, 7, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 6 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	if k := BestK(sweep); k != 4 {
		t.Errorf("BestK = %d, want 4", k)
	}
}

func TestSweepKErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	if _, err := SweepK(pts, 5, 9, Options{}); err == nil {
		t.Error("want error for empty K range")
	}
}

func TestRefineKeepsGoodPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, truth := blobs(rng, [][]float64{{0, 0}, {15, 0}, {0, 15}}, 20, 1)
	res, _ := KMeans(pts, 3, Options{Seed: 4})
	ref := Refine(pts, res, 10, 0.8, 99)
	if ag := agreement(ref.Assign, truth, 3); ag < 0.95 {
		t.Errorf("refined agreement %.3f", ag)
	}
	// Refine with 0 rounds is identity.
	same := Refine(pts, res, 0, 0.8, 99)
	if same != res {
		t.Error("0 rounds should return the input result")
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {15, 0}}, 15, 1)
	res, _ := KMeans(pts, 2, Options{Seed: 4})
	c00 := res.Centroids[0][0]
	a0 := append([]int(nil), res.Assign...)
	Refine(pts, res, 5, 0.5, 1)
	if res.Centroids[0][0] != c00 {
		t.Error("Refine mutated input centroids")
	}
	for i := range a0 {
		if res.Assign[i] != a0[i] {
			t.Fatal("Refine mutated input assignment")
		}
	}
}

func TestHierarchyAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Two top clusters, each made of two sub-blobs.
	pts, truth := blobs(rng, [][]float64{{0, 0}, {0, 4}, {20, 0}, {20, 4}}, 15, 0.7)
	top2 := make([]int, len(truth))
	for i, tr := range truth {
		top2[i] = tr / 2
	}
	res, _ := KMeans(pts, 2, Options{Seed: 11})
	if ag := agreement(res.Assign, top2, 2); ag < 0.95 {
		t.Fatalf("top-level clustering agreement %.3f", ag)
	}
	h, err := BuildHierarchy(pts, res, 2, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if len(h.Sub[k]) != 2 {
			t.Errorf("cluster %d has %d sub-centroids, want 2", k, len(h.Sub[k]))
		}
	}
	// New points near each blob assign to the right top cluster.
	probes := [][]float64{{0, 2}, {20, 2}, {-1, -1}, {21, 5}}
	wantTop := []int{topOf(res, pts, truth, 0), topOf(res, pts, truth, 2),
		topOf(res, pts, truth, 0), topOf(res, pts, truth, 2)}
	for i, p := range probes {
		got, scores := h.Assign(p)
		if got != wantTop[i] {
			t.Errorf("probe %d assigned to %d, want %d (scores %v)", i, got, wantTop[i], scores)
		}
		if h.AssignFlat(p) != wantTop[i] {
			t.Errorf("probe %d flat-assigned wrong", i)
		}
	}
}

// topOf finds which learned cluster contains most points of ground-truth
// blob g (blobs 0,1 form top group 0; 2,3 form top group 1).
func topOf(res *Result, pts [][]float64, truth []int, g int) int {
	counts := map[int]int{}
	for i, tr := range truth {
		if tr == g {
			counts[res.Assign[i]]++
		}
	}
	best, bk := -1, 0
	for k, c := range counts {
		if c > best {
			best, bk = c, k
		}
	}
	_ = pts
	return bk
}

func TestHierarchySubKClamped(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {10}}
	res, _ := KMeans(pts, 2, Options{Seed: 13})
	h, err := BuildHierarchy(pts, res, 5, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for k := range h.Sub {
		if len(h.Sub[k]) > len(res.Members(k)) {
			t.Errorf("cluster %d: %d sub-centroids for %d members", k, len(h.Sub[k]), len(res.Members(k)))
		}
	}
	if _, err := BuildHierarchy(pts, res, 0, Options{}); err == nil {
		t.Error("want error for subK=0")
	}
}

func TestStandardizer(t *testing.T) {
	pts := [][]float64{{0, 100}, {2, 300}, {4, 500}}
	s := FitStandardizer(pts)
	out := s.ApplyAll(pts)
	for j := 0; j < 2; j++ {
		mean, va := 0.0, 0.0
		for _, p := range out {
			mean += p[j]
		}
		mean /= 3
		for _, p := range out {
			va += (p[j] - mean) * (p[j] - mean)
		}
		va /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(va-1) > 1e-9 {
			t.Errorf("coordinate %d: mean %g var %g", j, mean, va)
		}
	}
	// Constant coordinate must not divide by zero.
	cpts := [][]float64{{5, 1}, {5, 2}}
	cs := FitStandardizer(cpts)
	o := cs.Apply([]float64{5, 1.5})
	if math.IsNaN(o[0]) || math.IsInf(o[0], 0) {
		t.Error("constant coordinate produced non-finite value")
	}
	// Empty standardizer is identity.
	e := FitStandardizer(nil)
	if got := e.Apply([]float64{3}); got[0] != 3 {
		t.Error("empty standardizer should be identity")
	}
}

// Property: assignment always picks the argmin-distance centroid.
func TestQuickAssignIsArgmin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		dim := 1 + rng.Intn(4)
		var pts [][]float64
		for i := 0; i < k*6; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64() * 5
			}
			pts = append(pts, p)
		}
		res, err := KMeans(pts, k, Options{Seed: seed, Restarts: 2, MaxIter: 30})
		if err != nil {
			return false
		}
		for i, p := range pts {
			d := SqDist(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				if SqDist(p, c) < d-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: SqDist is symmetric, non-negative and zero iff equal points.
func TestQuickSqDistMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(8)
		a := make([]float64, dim)
		b := make([]float64, dim)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		if SqDist(a, b) != SqDist(b, a) {
			return false
		}
		if SqDist(a, b) < 0 {
			return false
		}
		if SqDist(a, a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKMeans44x123(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	centres := make([][]float64, 4)
	for i := range centres {
		c := make([]float64, 123)
		for j := range c {
			c[j] = rng.NormFloat64() * 3
		}
		centres[i] = c
	}
	pts, _ := blobs(rng, centres, 11, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, 4, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
