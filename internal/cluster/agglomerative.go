package cluster

import (
	"fmt"
	"math"
)

// Linkage selects how agglomerative clustering scores the distance between
// two clusters.
type Linkage int

// Linkage methods.
const (
	// SingleLinkage merges by the minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges by the maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges by the mean pairwise distance (UPGMA).
	AverageLinkage
	// WardLinkage merges by the increase in total within-cluster variance.
	WardLinkage
)

func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	case WardLinkage:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Agglomerative performs bottom-up hierarchical clustering to exactly k
// clusters using the Lance-Williams update for the chosen linkage, then
// returns a Result with centroids computed as member means. It is the
// "standard technique" alternative to k-means for the paper's global
// clustering step and is used by the clustering ablation.
func Agglomerative(points [][]float64, k int, linkage Linkage) (*Result, error) {
	if err := validate(points, k); err != nil {
		return nil, err
	}
	n := len(points)

	// active[i] reports whether cluster i still exists; size[i] its
	// cardinality. d holds the current inter-cluster distances.
	active := make([]bool, n)
	size := make([]float64, n)
	member := make([][]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
		member[i] = []int{i}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				continue
			}
			dist := Dist(points[i], points[j])
			if linkage == WardLinkage {
				// Ward works on squared Euclidean distances.
				dist = dist * dist
			}
			d[i][j] = dist
		}
	}

	remaining := n
	for remaining > k {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					best, bi, bj = d[i][j], i, j
				}
			}
		}
		// Merge bj into bi with the Lance-Williams update.
		ni, nj := size[bi], size[bj]
		for h := 0; h < n; h++ {
			if !active[h] || h == bi || h == bj {
				continue
			}
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(d[bi][h], d[bj][h])
			case CompleteLinkage:
				nd = math.Max(d[bi][h], d[bj][h])
			case AverageLinkage:
				nd = (ni*d[bi][h] + nj*d[bj][h]) / (ni + nj)
			case WardLinkage:
				nh := size[h]
				tot := ni + nj + nh
				nd = ((ni+nh)*d[bi][h] + (nj+nh)*d[bj][h] - nh*d[bi][bj]) / tot
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
			}
			d[bi][h] = nd
			d[h][bi] = nd
		}
		size[bi] += size[bj]
		member[bi] = append(member[bi], member[bj]...)
		active[bj] = false
		remaining--
	}

	// Collect clusters in first-member order for deterministic labels.
	assign := make([]int, n)
	centroids := make([][]float64, 0, k)
	label := 0
	dim := len(points[0])
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		c := make([]float64, dim)
		for _, m := range member[i] {
			assign[m] = label
			for j, v := range points[m] {
				c[j] += v
			}
		}
		for j := range c {
			c[j] /= float64(len(member[i]))
		}
		centroids = append(centroids, c)
		label++
	}
	res := &Result{K: k, Centroids: centroids, Assign: assign}
	res.Inertia = inertia(points, assign, centroids)
	return res, nil
}

// DaviesBouldin computes the Davies-Bouldin index of a clustering (lower is
// better): the mean over clusters of the worst-case ratio of within-cluster
// scatter to between-centroid separation.
func DaviesBouldin(points [][]float64, res *Result) float64 {
	k := res.K
	if k < 2 {
		return 0
	}
	scatter := make([]float64, k)
	counts := make([]int, k)
	for i, p := range points {
		c := res.Assign[i]
		scatter[c] += Dist(p, res.Centroids[c])
		counts[c]++
	}
	for c := range scatter {
		if counts[c] > 0 {
			scatter[c] /= float64(counts[c])
		}
	}
	total := 0.0
	used := 0
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			continue
		}
		worst := 0.0
		for j := 0; j < k; j++ {
			if j == i || counts[j] == 0 {
				continue
			}
			sep := Dist(res.Centroids[i], res.Centroids[j])
			if sep == 0 {
				continue
			}
			if r := (scatter[i] + scatter[j]) / sep; r > worst {
				worst = r
			}
		}
		total += worst
		used++
	}
	if used == 0 {
		return 0
	}
	return total / float64(used)
}

// CalinskiHarabasz computes the Calinski-Harabasz index (higher is better):
// the ratio of between-cluster to within-cluster dispersion, scaled by
// degrees of freedom.
func CalinskiHarabasz(points [][]float64, res *Result) float64 {
	n := len(points)
	k := res.K
	if n <= k || k < 2 {
		return 0
	}
	dim := len(points[0])
	grand := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			grand[j] += v
		}
	}
	for j := range grand {
		grand[j] /= float64(n)
	}
	counts := make([]int, k)
	for _, a := range res.Assign {
		counts[a]++
	}
	var between, within float64
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		between += float64(counts[c]) * SqDist(res.Centroids[c], grand)
	}
	for i, p := range points {
		within += SqDist(p, res.Centroids[res.Assign[i]])
	}
	if within == 0 {
		return math.Inf(1)
	}
	return (between / float64(k-1)) / (within / float64(n-k))
}
