package cluster

import (
	"math/rand"
	"sync"
	"testing"
)

// TestAssignConcurrentNoSharedBacking pins the Assign ownership contract:
// every call returns a freshly allocated scores slice, so concurrent
// callers (the serving layer's drift detector re-scores assignments from
// many sessions at once) can mutate their copies freely. Run with -race.
func TestAssignConcurrentNoSharedBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	pts, _ := blobs(rng, centres, 20, 1.0)
	top, err := KMeans(pts, 4, Options{Seed: 3})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	h, err := BuildHierarchy(pts, top, 2, Options{Seed: 3})
	if err != nil {
		t.Fatalf("BuildHierarchy: %v", err)
	}

	const goroutines, iters = 8, 200
	results := make([][][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < iters; i++ {
				x := []float64{grng.Float64() * 10, grng.Float64() * 10}
				best, scores := h.Assign(x)
				if best < 0 || best >= top.K || len(scores) != top.K {
					t.Errorf("Assign returned best=%d scores len=%d", best, len(scores))
					return
				}
				// Mutating our slice must be safe under the ownership
				// contract; the race detector flags any sharing.
				for j := range scores {
					scores[j] = -1
				}
				results[g] = append(results[g], scores)
			}
		}(g)
	}
	wg.Wait()

	// Distinct calls must never alias the same backing array.
	seen := map[*float64]bool{}
	for _, rs := range results {
		for _, s := range rs {
			if len(s) == 0 {
				continue
			}
			p := &s[0]
			if seen[p] {
				t.Fatalf("two Assign calls returned the same backing array")
			}
			seen[p] = true
		}
	}

	// Same-input calls agree on the winner even when interleaved.
	x := []float64{1, 1}
	b1, s1 := h.Assign(x)
	b2, s2 := h.Assign(x)
	if b1 != b2 {
		t.Fatalf("Assign not deterministic: %d vs %d", b1, b2)
	}
	if &s1[0] == &s2[0] {
		t.Fatalf("repeated Assign calls share a backing array")
	}
}
