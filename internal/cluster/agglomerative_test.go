package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centres := [][]float64{{0, 0}, {12, 0}, {0, 12}}
	pts, truth := blobs(rng, centres, 15, 1.0)
	for _, linkage := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage, WardLinkage} {
		res, err := Agglomerative(pts, 3, linkage)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		if ag := agreement(res.Assign, truth, 3); ag < 0.95 {
			t.Errorf("%v: agreement %.2f", linkage, ag)
		}
		if res.Inertia <= 0 {
			t.Errorf("%v: inertia %g", linkage, res.Inertia)
		}
	}
}

func TestAgglomerativeK1AndKN(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}}
	res, err := Agglomerative(pts, 1, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 must put everything in one cluster")
		}
	}
	res, err = Agglomerative(pts, 3, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatal("k=n must keep singletons")
	}
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(nil, 2, AverageLinkage); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := Agglomerative([][]float64{{1}}, 2, AverageLinkage); err == nil {
		t.Error("want error for k > n")
	}
}

func TestAgglomerativeSingleLinkageChains(t *testing.T) {
	// A chain of near points plus one distant point: single linkage keeps
	// the chain together while complete linkage may split it.
	pts := [][]float64{{0}, {1}, {2}, {3}, {4}, {100}}
	res, err := Agglomerative(pts, 2, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	chain := res.Assign[0]
	for i := 1; i <= 4; i++ {
		if res.Assign[i] != chain {
			t.Fatalf("single linkage split the chain: %v", res.Assign)
		}
	}
	if res.Assign[5] == chain {
		t.Fatal("outlier merged into the chain")
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || WardLinkage.String() != "ward" {
		t.Error("linkage strings wrong")
	}
	if Linkage(99).String() == "" {
		t.Error("unknown linkage should still render")
	}
}

func TestDaviesBouldinOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tightPts, tightTruth := blobs(rng, [][]float64{{0, 0}, {20, 0}}, 20, 0.5)
	loosePts, looseTruth := blobs(rng, [][]float64{{0, 0}, {3, 0}}, 20, 1.5)
	tight, _ := KMeans(tightPts, 2, Options{Seed: 1})
	loose, _ := KMeans(loosePts, 2, Options{Seed: 1})
	_ = tightTruth
	_ = looseTruth
	dbTight := DaviesBouldin(tightPts, tight)
	dbLoose := DaviesBouldin(loosePts, loose)
	if dbTight >= dbLoose {
		t.Errorf("DB: tight %g should be below loose %g", dbTight, dbLoose)
	}
	if DaviesBouldin(tightPts, &Result{K: 1, Centroids: tight.Centroids[:1], Assign: make([]int, len(tightPts))}) != 0 {
		t.Error("DB with k<2 should be 0")
	}
}

func TestCalinskiHarabaszOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tightPts, _ := blobs(rng, [][]float64{{0, 0}, {20, 0}}, 20, 0.5)
	loosePts, _ := blobs(rng, [][]float64{{0, 0}, {3, 0}}, 20, 1.5)
	tight, _ := KMeans(tightPts, 2, Options{Seed: 1})
	loose, _ := KMeans(loosePts, 2, Options{Seed: 1})
	chTight := CalinskiHarabasz(tightPts, tight)
	chLoose := CalinskiHarabasz(loosePts, loose)
	if chTight <= chLoose {
		t.Errorf("CH: tight %g should exceed loose %g", chTight, chLoose)
	}
}

func TestIndicesAgreeOnBestK(t *testing.T) {
	// All three quality indices should prefer the true K on clean blobs.
	rng := rand.New(rand.NewSource(4))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {15, 0}, {0, 15}}, 15, 1.0)
	type score struct{ sil, db, ch float64 }
	scores := map[int]score{}
	for k := 2; k <= 5; k++ {
		res, err := KMeans(pts, k, Options{Seed: int64(k)})
		if err != nil {
			t.Fatal(err)
		}
		scores[k] = score{
			sil: Silhouette(pts, res.Assign, k),
			db:  DaviesBouldin(pts, res),
			ch:  CalinskiHarabasz(pts, res),
		}
	}
	bestSil, bestDB, bestCH := 2, 2, 2
	for k := 3; k <= 5; k++ {
		if scores[k].sil > scores[bestSil].sil {
			bestSil = k
		}
		if scores[k].db < scores[bestDB].db {
			bestDB = k
		}
		if scores[k].ch > scores[bestCH].ch {
			bestCH = k
		}
	}
	if bestSil != 3 || bestDB != 3 || bestCH != 3 {
		t.Errorf("indices disagree on true K: sil=%d db=%d ch=%d", bestSil, bestDB, bestCH)
	}
}

func TestAgglomerativeMatchesKMeansOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := blobs(rng, [][]float64{{0, 0, 0}, {10, 10, 10}}, 12, 0.8)
	km, _ := KMeans(pts, 2, Options{Seed: 6})
	ag, err := Agglomerative(pts, 2, WardLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if a := agreement(km.Assign, ag.Assign, 2); a < 0.99 {
		t.Errorf("kmeans vs ward agreement %.2f", a)
	}
	if math.Abs(km.Inertia-ag.Inertia) > 0.2*km.Inertia {
		t.Errorf("inertia mismatch %g vs %g", km.Inertia, ag.Inertia)
	}
}

func BenchmarkAgglomerative44(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	centres := make([][]float64, 4)
	for i := range centres {
		c := make([]float64, 123)
		for j := range c {
			c[j] = rng.NormFloat64() * 3
		}
		centres[i] = c
	}
	pts, _ := blobs(rng, centres, 11, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Agglomerative(pts, 4, WardLinkage); err != nil {
			b.Fatal(err)
		}
	}
}
