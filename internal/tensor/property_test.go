package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: MatVec agrees with MatMul against a column matrix.
func TestQuickMatVecMatchesMatMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k := 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, k)
		v := Randn(rng, 1, k)
		got := a.MatVec(v)
		want := a.MatMul(v.Reshape(k, 1))
		for i := 0; i < m; i++ {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SumRows equals ones-vector premultiplication.
func TestQuickSumRowsMatchesOnes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, n)
		got := a.SumRows()
		ones := Ones(1, m)
		want := ones.MatMul(a)
		for j := 0; j < n; j++ {
			if math.Abs(got.Data[j]-want.Data[j]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Dot(a, a) == Norm2(a)².
func TestQuickDotNormConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := Randn(rng, 1, n)
		d := a.Dot(a)
		nn := a.Norm2()
		return math.Abs(d-nn*nn) < 1e-9*(1+d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Outer(a,b)·shape and values match elementwise products.
func TestQuickOuterValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, m)
		b := Randn(rng, 1, n)
		o := Outer(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if o.At(i, j) != a.Data[i]*b.Data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ScaleInPlace then ScaleInPlace(1/alpha) restores within
// floating tolerance.
func TestQuickScaleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		alpha := 0.5 + rng.Float64()*4
		a := Randn(rng, 1, n)
		orig := a.Clone()
		a.ScaleInPlace(alpha)
		a.ScaleInPlace(1 / alpha)
		for i := range orig.Data {
			if math.Abs(a.Data[i]-orig.Data[i]) > 1e-12*(1+math.Abs(orig.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
