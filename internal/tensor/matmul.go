package tensor

import (
	"fmt"
	"sync/atomic"
)

// Kernel op accounting: every matmul-family call bumps two process-global
// atomics (call count and multiply-accumulate count). Two uncontended
// atomic adds per kernel call are noise next to the O(m·k·n) work, and
// they give the runtime telemetry an accelerator-utilisation signal
// (MACs/s) without this package importing anything.
var (
	matmulCalls atomic.Int64
	matmulMACs  atomic.Int64
)

// OpStats returns the cumulative matmul-family call and multiply-
// accumulate counts for the process.
func OpStats() (calls, macs int64) {
	return matmulCalls.Load(), matmulMACs.Load()
}

func countMatMul(m, k, n int) {
	matmulCalls.Add(1)
	matmulMACs.Add(int64(m) * int64(k) * int64(n))
}

// MatMul returns the matrix product t @ u. t must be (m, k) and u (k, n);
// the result is (m, n). The inner loops are ordered i-k-j so the innermost
// loop streams both the u row and the output row, which is the cache-friendly
// form for row-major storage.
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	m, k, n := checkMatMul(t, u)
	out := New(m, n)
	matMulInto(out.Data, t.Data, u.Data, m, k, n)
	return out
}

// MatMulInto computes dst = t @ u, reusing dst's storage. dst must already
// have shape (m, n); its previous contents are overwritten.
func (t *Tensor) MatMulInto(dst, u *Tensor) *Tensor {
	m, k, n := checkMatMul(t, u)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	matMulInto(dst.Data, t.Data, u.Data, m, k, n)
	return dst
}

func checkMatMul(t, u *Tensor) (m, k, n int) {
	if len(t.Shape) != 2 || len(u.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v and %v", t.Shape, u.Shape))
	}
	m, k = t.Shape[0], t.Shape[1]
	if u.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", t.Shape, u.Shape))
	}
	n = u.Shape[1]
	return m, k, n
}

func matMulInto(dst, a, b []float64, m, k, n int) {
	countMatMul(m, k, n)
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulAccInto computes dst += t @ u, reusing dst's storage.
func (t *Tensor) MatMulAccInto(dst, u *Tensor) *Tensor {
	m, k, n := checkMatMul(t, u)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	countMatMul(m, k, n)
	a, b, d := t.Data, u.Data, dst.Data
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := d[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// T2 returns the transpose of a rank-2 tensor.
func (t *Tensor) T2() *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: T2 needs a rank-2 tensor, got %v", t.Shape))
	}
	m, n := t.Shape[0], t.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j*m+i] = v
		}
	}
	return out
}

// MatVec returns t @ v for a (m, k) matrix and a length-k vector, as a
// length-m rank-1 tensor.
func (t *Tensor) MatVec(v *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatVec needs a rank-2 matrix, got %v", t.Shape))
	}
	m, k := t.Shape[0], t.Shape[1]
	if v.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec vector size %d, want %d", v.Size(), k))
	}
	countMatMul(m, k, 1)
	out := New(m)
	for i := 0; i < m; i++ {
		row := t.Data[i*k : (i+1)*k]
		s := 0.0
		for j, w := range row {
			s += w * v.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// AddRowVectorInPlace adds the length-n vector v to every row of the (m, n)
// matrix t and returns t. Used for bias addition.
func (t *Tensor) AddRowVectorInPlace(v *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: AddRowVectorInPlace needs rank-2, got %v", t.Shape))
	}
	m, n := t.Shape[0], t.Shape[1]
	if v.Size() != n {
		panic(fmt.Sprintf("tensor: AddRowVectorInPlace vector size %d, want %d", v.Size(), n))
	}
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
	return t
}

// SumRows returns the length-n vector of column sums of the (m, n) matrix t
// (i.e. the sum over rows). Used for bias gradients.
func (t *Tensor) SumRows() *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows needs rank-2, got %v", t.Shape))
	}
	m, n := t.Shape[0], t.Shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Row returns row i of a rank-2 tensor as a rank-1 tensor sharing storage.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row needs rank-2, got %v", t.Shape))
	}
	n := t.Shape[1]
	return &Tensor{Data: t.Data[i*n : (i+1)*n], Shape: []int{n}}
}

// Outer returns the outer product a ⊗ b of two vectors as an (len(a), len(b))
// matrix.
func Outer(a, b *Tensor) *Tensor {
	m, n := a.Size(), b.Size()
	out := New(m, n)
	for i := 0; i < m; i++ {
		av := a.Data[i]
		if av == 0 {
			continue
		}
		row := out.Data[i*n : (i+1)*n]
		for j, bv := range b.Data {
			row[j] = av * bv
		}
	}
	return out
}

// OuterAccInto accumulates dst += a ⊗ b.
func OuterAccInto(dst, a, b *Tensor) *Tensor {
	m, n := a.Size(), b.Size()
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: OuterAccInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	for i := 0; i < m; i++ {
		av := a.Data[i]
		if av == 0 {
			continue
		}
		row := dst.Data[i*n : (i+1)*n]
		for j, bv := range b.Data {
			row[j] += av * bv
		}
	}
	return dst
}
