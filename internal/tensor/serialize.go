package tensor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary format (little-endian):
//
//	magic   uint32  0x544E5352 ("RSNT")
//	rank    uint32
//	shape   rank × uint32
//	data    size × float64 bits
//
// The format is intentionally minimal: checkpoints store a sequence of named
// tensors on top of this (see internal/nn).

const magic uint32 = 0x544E5352

// ErrBadFormat is returned when the stream does not contain a tensor in the
// expected binary format.
var ErrBadFormat = errors.New("tensor: bad serialisation format")

// maxSerializedElems bounds how large a tensor ReadFrom will allocate,
// protecting against corrupt or adversarial streams.
const maxSerializedElems = 1 << 28 // 2 GiB of float64

// WriteTo writes t to w in the package binary format.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.Shape))); err != nil {
		return n, err
	}
	for _, d := range t.Shape {
		if err := write(uint32(d)); err != nil {
			return n, err
		}
	}
	var buf [8]byte
	for _, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += 8
	}
	return n, bw.Flush()
}

// ReadFrom reads a tensor in the package binary format, replacing t's shape
// and data.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return n, err
	}
	n += 4
	if m != magic {
		return n, fmt.Errorf("%w: bad magic %#x", ErrBadFormat, m)
	}
	var rank uint32
	if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
		return n, err
	}
	n += 4
	if rank > 16 {
		return n, fmt.Errorf("%w: implausible rank %d", ErrBadFormat, rank)
	}
	shape := make([]int, rank)
	size := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return n, err
		}
		n += 4
		shape[i] = int(d)
		size *= int(d)
		if size > maxSerializedElems {
			return n, fmt.Errorf("%w: tensor too large (%v)", ErrBadFormat, shape[:i+1])
		}
	}
	data := make([]float64, size)
	var buf [8]byte
	for i := range data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return n, err
		}
		n += 8
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	t.Shape = shape
	t.Data = data
	return n, nil
}
