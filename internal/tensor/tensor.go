// Package tensor provides dense, row-major float64 tensors and the linear
// algebra primitives the rest of the repository builds on: element-wise
// arithmetic, matrix multiplication, reductions, random initialisation and a
// compact binary serialisation format used by model checkpoints.
//
// Tensors are always contiguous in memory. Reshape is therefore free, and
// every operation that produces a tensor allocates a fresh backing slice
// unless its name ends in "InPlace" or it is documented to reuse storage.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major, contiguous float64 tensor.
type Tensor struct {
	// Data holds the elements in row-major order. len(Data) == Size().
	Data []float64
	// Shape holds the extent of each dimension. A scalar has Shape []int{}.
	Shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := sizeOf(shape)
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not alias it afterwards unless that
// sharing is intended.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := sizeOf(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Randn returns a tensor with elements drawn from N(0, stddev²) using rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

func sizeOf(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// offset computes the flat index for idx, checking bounds.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape. One
// dimension may be -1, in which case it is inferred. Panics if the total
// size differs.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping size %d to %v", len(t.Data), shape))
		}
		shape[infer] = len(t.Data) / known
	}
	if sizeOf(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape size mismatch: %d to %v", len(t.Data), shape))
	}
	return &Tensor{Data: t.Data, Shape: shape}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Add returns t + u element-wise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	t.mustMatch(u, "Add")
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v + u.Data[i]
	}
	return out
}

// AddInPlace sets t = t + u and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "AddInPlace")
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
	return t
}

// AddScaledInPlace sets t = t + alpha*u and returns t (axpy).
func (t *Tensor) AddScaledInPlace(alpha float64, u *Tensor) *Tensor {
	t.mustMatch(u, "AddScaledInPlace")
	for i := range t.Data {
		t.Data[i] += alpha * u.Data[i]
	}
	return t
}

// Sub returns t - u element-wise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.mustMatch(u, "Sub")
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v - u.Data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product t * u.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.mustMatch(u, "Mul")
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v * u.Data[i]
	}
	return out
}

// MulInPlace sets t = t * u element-wise and returns t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "MulInPlace")
	for i := range t.Data {
		t.Data[i] *= u.Data[i]
	}
	return t
}

// Scale returns alpha * t.
func (t *Tensor) Scale(alpha float64) *Tensor {
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = alpha * v
	}
	return out
}

// ScaleInPlace sets t = alpha*t and returns t.
func (t *Tensor) ScaleInPlace(alpha float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
	return t
}

// Apply returns f applied to every element of t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of t in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

func (t *Tensor) mustMatch(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, u.Shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty tensor).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	n := len(t.Data)
	if n == 0 {
		return 0
	}
	m := t.Mean()
	ss := 0.0
	for _, v := range t.Data {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the minimum element. Panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum element. Panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMax returns max(|t|) over all elements, or 0 for an empty tensor.
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element. Panics on empty.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Norm2 returns the Euclidean (Frobenius) norm of t.
func (t *Tensor) Norm2() float64 {
	ss := 0.0
	for _, v := range t.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", len(t.Data), len(u.Data)))
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// String renders a short human-readable description of t.
func (t *Tensor) String() string {
	if t.Size() <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%g %g … %g]", t.Shape, t.Data[0], t.Data[1], t.Data[len(t.Data)-1])
}
