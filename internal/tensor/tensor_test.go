package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size() = %d, want 24", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", x.Rank())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %g, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %g, want 1", got)
	}
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %g, want 6", got)
	}
	x.Set(42, 1, 0)
	if got := x.At(1, 0); got != 42 {
		t.Errorf("after Set, At(1,0) = %g, want 42", got)
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched size")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	_ = x.At(2, 0)
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %g, want 6", y.At(2, 1))
	}
	// Shared storage.
	y.Set(-1, 0, 0)
	if x.At(0, 0) != -1 {
		t.Error("Reshape must share storage")
	}
	// Inferred dimension.
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Errorf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := a.Add(b).Data; got[3] != 44 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a).Data; got[0] != 9 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b).Data; got[2] != 90 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Data; got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
	c := a.Clone()
	c.AddScaledInPlace(0.5, b)
	if c.Data[0] != 6 {
		t.Errorf("AddScaledInPlace = %v", c.Data)
	}
	if a.Data[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 3, 2, -4}, 4)
	if x.Sum() != 0 {
		t.Errorf("Sum = %g", x.Sum())
	}
	if x.Mean() != 0 {
		t.Errorf("Mean = %g", x.Mean())
	}
	if x.Min() != -4 || x.Max() != 3 {
		t.Errorf("Min/Max = %g/%g", x.Min(), x.Max())
	}
	if x.AbsMax() != 4 {
		t.Errorf("AbsMax = %g", x.AbsMax())
	}
	if x.ArgMax() != 1 {
		t.Errorf("ArgMax = %d", x.ArgMax())
	}
	want := math.Sqrt((1 + 9 + 4 + 16) / 4.0)
	if !almostEqual(x.Std(), want, 1e-12) {
		t.Errorf("Std = %g, want %g", x.Std(), want)
	}
	if !almostEqual(x.Norm2(), math.Sqrt(30), 1e-12) {
		t.Errorf("Norm2 = %g", x.Norm2())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := a.MatMul(b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 3), New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dim mismatch")
		}
	}()
	a.MatMul(b)
}

// naiveMatMul is a reference j-inner implementation to cross-check the
// cache-friendly one.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		got, want := a.MatMul(b), naiveMatMul(a, b)
		for i := range want.Data {
			if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("trial %d: MatMul[%d] = %g, want %g", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulAccInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 3, 4)
	b := Randn(rng, 1, 4, 5)
	dst := Randn(rng, 1, 3, 5)
	want := dst.Add(a.MatMul(b))
	a.MatMulAccInto(dst, b)
	for i := range want.Data {
		if !almostEqual(dst.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulAccInto[%d] = %g, want %g", i, dst.Data[i], want.Data[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.T2()
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("T2 shape = %v", b.Shape)
	}
	if b.At(2, 0) != 3 || b.At(0, 1) != 4 {
		t.Errorf("T2 values wrong: %v", b.Data)
	}
}

func TestMatVecAndRow(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float64{1, 0, -1}, 3)
	got := a.MatVec(v)
	if got.Data[0] != -2 || got.Data[1] != -2 {
		t.Errorf("MatVec = %v", got.Data)
	}
	r := a.Row(1)
	if r.Data[0] != 4 || r.Size() != 3 {
		t.Errorf("Row = %v", r.Data)
	}
	r.Data[0] = 99
	if a.At(1, 0) != 99 {
		t.Error("Row must share storage")
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	bias := FromSlice([]float64{10, 20, 30}, 3)
	a.AddRowVectorInPlace(bias)
	if a.At(0, 0) != 11 || a.At(1, 2) != 36 {
		t.Errorf("AddRowVectorInPlace = %v", a.Data)
	}
	s := a.SumRows()
	if s.Data[0] != 11+14 || s.Data[2] != 33+36 {
		t.Errorf("SumRows = %v", s.Data)
	}
}

func TestOuter(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4, 5}, 3)
	o := Outer(a, b)
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Errorf("Outer = %v", o.Data)
	}
	dst := New(2, 3)
	OuterAccInto(dst, a, b)
	OuterAccInto(dst, a, b)
	if dst.At(1, 1) != 16 {
		t.Errorf("OuterAccInto = %v", dst.Data)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range [][]int{{}, {1}, {5}, {2, 3}, {3, 4, 5}} {
		x := Randn(rng, 2, shape...)
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo(%v): %v", shape, err)
		}
		var y Tensor
		if _, err := y.ReadFrom(&buf); err != nil {
			t.Fatalf("ReadFrom(%v): %v", shape, err)
		}
		if !x.SameShape(&y) {
			t.Fatalf("round-trip shape %v != %v", x.Shape, y.Shape)
		}
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				t.Fatalf("round-trip data[%d] %g != %g", i, x.Data[i], y.Data[i])
			}
		}
	}
}

func TestSerializeBadMagic(t *testing.T) {
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestRandnStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 2, 10000)
	if math.Abs(x.Mean()) > 0.1 {
		t.Errorf("Randn mean = %g, want ≈0", x.Mean())
	}
	if math.Abs(x.Std()-2) > 0.1 {
		t.Errorf("Randn std = %g, want ≈2", x.Std())
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := RandUniform(rng, -1, 3, 1000)
	if x.Min() < -1 || x.Max() >= 3 {
		t.Errorf("RandUniform out of range: [%g, %g]", x.Min(), x.Max())
	}
}

// Property: (A+B)+C == A+(B+C) within floating tolerance, and A+B == B+A.
func TestQuickAddProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 1
			}
			// Keep magnitudes sane so associativity holds to tolerance.
			raw[i] = math.Mod(raw[i], 1e6)
		}
		n := len(raw)
		a := FromSlice(append([]float64(nil), raw...), n)
		b := a.Scale(0.5)
		c := a.Scale(-0.25)
		l := a.Add(b).Add(c)
		r := a.Add(b.Add(c))
		comm1, comm2 := a.Add(b), b.Add(a)
		for i := 0; i < n; i++ {
			if !almostEqual(l.Data[i], r.Data[i], 1e-6*(1+math.Abs(l.Data[i]))) {
				return false
			}
			if comm1.Data[i] != comm2.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A@(B+C) == A@B + A@C.
func TestQuickMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		m, k, n := 1+local.Intn(6), 1+local.Intn(6), 1+local.Intn(6)
		a := Randn(local, 1, m, k)
		b := Randn(local, 1, k, n)
		c := Randn(local, 1, k, n)
		l := a.MatMul(b.Add(c))
		r := a.MatMul(b).Add(a.MatMul(c))
		for i := range l.Data {
			if !almostEqual(l.Data[i], r.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution and (AB)^T == B^T A^T.
func TestQuickTransposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		m, k, n := 1+local.Intn(6), 1+local.Intn(6), 1+local.Intn(6)
		a := Randn(local, 1, m, k)
		b := Randn(local, 1, k, n)
		aa := a.T2().T2()
		for i := range a.Data {
			if a.Data[i] != aa.Data[i] {
				return false
			}
		}
		l := a.MatMul(b).T2()
		r := b.T2().MatMul(a.T2())
		for i := range l.Data {
			if !almostEqual(l.Data[i], r.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	small := New(2, 2)
	big := New(100)
	if small.String() == "" || big.String() == "" {
		t.Error("String() returned empty")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := Randn(rng, 1, 64, 64)
	y := Randn(rng, 1, 64, 64)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMulInto(dst, y)
	}
}
