package tensor

import (
	"bytes"
	"testing"
)

// FuzzReadFrom hardens the tensor deserialiser against corrupt or
// adversarial streams: it must either return an error or a well-formed
// tensor — never panic or over-allocate.
func FuzzReadFrom(f *testing.F) {
	// Seed with a valid stream and a few mutations.
	var buf bytes.Buffer
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if _, err := x.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x53, 0x4E, 0x54}) // magic only
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	corrupt := append([]byte(nil), valid...)
	corrupt[5] = 0xFF // implausible rank
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var y Tensor
		if _, err := y.ReadFrom(bytes.NewReader(data)); err != nil {
			return // errors are fine; panics are not
		}
		// On success the tensor must be self-consistent.
		n := 1
		for _, d := range y.Shape {
			if d < 0 {
				t.Fatalf("negative dimension %v", y.Shape)
			}
			n *= d
		}
		if n != len(y.Data) {
			t.Fatalf("shape %v size %d != data %d", y.Shape, n, len(y.Data))
		}
	})
}
