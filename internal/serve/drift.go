package serve

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/obs"
)

// Self-healing cluster assignment.
//
// The cold-start assignment (core.Pipeline.AssignMaps) is a one-shot
// decision over the first ~10 % of a user's stream. Two things can make it
// wrong *later*: the decision itself was a misassignment (the budget
// windows were unrepresentative), or the user's physiology drifts away
// from the assigned archetype mid-stream. Either way the session keeps
// being served by a wrong-cluster checkpoint — the exact failure mode the
// paper's robustness tests (RT) quantify as a large accuracy loss.
//
// The drift detector re-evaluates the assignment continuously and cheaply:
// every classified window contributes its per-feature summary vector to a
// per-session ring of the last DriftWindow windows. The ring mean is
// exactly features.Summary over those windows (all maps share one width),
// so re-scoring it through core.Pipeline.AssignFromSummary walks the same
// standardise → hierarchical-assign path as the original cold-start
// decision — rolling verdicts are directly comparable to it.
//
// Evidence and hysteresis: a window is drift-positive when the rolling
// assignment prefers another cluster by a relative score gap above
// DriftThreshold. Only DriftConsecutive consecutive positives raise a
// verdict (transient noise resets the streak), and after any swap a
// cooldown of DriftCooldown windows suppresses further verdicts — a
// session oscillating on a cluster boundary re-assigns at most once per
// cooldown instead of flapping. Prediction-confidence entropy is tracked
// as a corroborating signal (exposed in status; deliberately not gating:
// a wrong-cluster model can be confidently wrong).
//
// The state machine extends the lifecycle:
//
//	monitoring ──verdict──▶ drifting ──confirm──▶ reassigning ──▶ monitoring
//	     ▲                     │ streak broken                      (fine-tune
//	     └─────────────────────┘                                     replay)
//
// On the confirming window the session swaps to the evidence-preferred
// cluster: the stale personalised checkpoint is dropped from the
// single-flight cache, the monitor is rebuilt on the new cluster's
// deployment, and — when labels are retained — the session enters
// StateReassigning, served from the shared cluster baseline (degraded
// mode) while its labels replay through a fresh fine-tune behind the new
// cluster's circuit breaker.

// Drift telemetry.
var (
	mDriftVerdicts   = obs.GetCounter("serve.drift_verdicts")
	mDriftReassigns  = obs.GetCounter("serve.drift_reassigns")
	mDriftSuppressed = obs.GetCounter("serve.drift_suppressed")
	// hDriftGap tracks the relative score gap (assigned − best)/best on
	// drift-positive windows: how decisively the evidence prefers another
	// cluster.
	hDriftGap = obs.GetHistogram("serve.drift_gap", obs.ExpBuckets(0.005, 2, 12))
)

// driftTracker is a session's rolling re-assignment evidence. All access
// under the owning Session's mu.
type driftTracker struct {
	ring   [][]float64 // last cap per-window summary vectors
	sum    []float64   // running sum over the ring
	next   int
	filled int

	streak int     // consecutive drift-positive windows
	score  float64 // cumulative relative gap over the current streak

	cooldown int // windows left with verdicts suppressed

	lastGap  float64 // relative gap on the last full-ring evaluation
	lastBest int     // rolling-evidence cluster on the last evaluation

	entropy    float64 // EWMA of normalised prediction entropy
	hasEntropy bool
}

func newDriftTracker(capWindows int) *driftTracker {
	return &driftTracker{ring: make([][]float64, capWindows), lastBest: -1}
}

// push adds one window's summary vector, maintaining the running sum.
func (d *driftTracker) push(sum []float64) {
	if d.sum == nil {
		d.sum = make([]float64, len(sum))
	}
	if old := d.ring[d.next]; old != nil {
		for i := range old {
			d.sum[i] -= old[i]
		}
	}
	d.ring[d.next] = sum
	for i := range sum {
		d.sum[i] += sum[i]
	}
	d.next = (d.next + 1) % len(d.ring)
	if d.filled < len(d.ring) {
		d.filled++
	}
}

// mean returns the rolling per-feature mean (fresh slice).
func (d *driftTracker) mean() []float64 {
	out := make([]float64, len(d.sum))
	for i, v := range d.sum {
		out[i] = v / float64(d.filled)
	}
	return out
}

// resetEvidence clears the ring and streak but preserves the cooldown —
// an assignment swap must not re-arm the detector before the cooldown
// runs out, or a boundary session flaps.
func (d *driftTracker) resetEvidence() {
	for i := range d.ring {
		d.ring[i] = nil
	}
	if d.sum != nil {
		for i := range d.sum {
			d.sum[i] = 0
		}
	}
	d.next, d.filled = 0, 0
	d.streak, d.score, d.lastGap, d.lastBest = 0, 0, 0, -1
}

// observeEntropy folds one prediction's normalised Shannon entropy into
// the EWMA.
func (d *driftTracker) observeEntropy(probs []float64) {
	if len(probs) < 2 {
		return
	}
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	h /= math.Log(float64(len(probs)))
	const alpha = 0.1
	if !d.hasEntropy {
		d.entropy, d.hasEntropy = h, true
		return
	}
	d.entropy += alpha * (h - d.entropy)
}

// ensureDriftLocked lazily builds the session's tracker. Callers hold
// s.mu.
func (s *Session) ensureDriftLocked() *driftTracker {
	if s.drift == nil {
		s.drift = newDriftTracker(s.srv.cfg.DriftWindow)
	}
	return s.drift
}

// driftObserveLocked folds one classified window into the session's drift
// evidence and, when the hysteresis is satisfied, swaps the assignment.
// Returns true when this window triggered a re-assignment. Callers hold
// s.mu; summary is the window's per-feature mean (nil when the detector is
// disabled), probs the model's prediction.
func (s *Session) driftObserveLocked(ctx context.Context, summary, probs []float64) bool {
	if summary == nil || s.srv.cfg.DriftDisabled || !s.haveAsg {
		return false
	}
	switch s.state {
	case StateAssigned, StateFineTuning, StateMonitoring, StateDrifting:
	default:
		// Reassigning (swap already in flight) and terminal states
		// accumulate no evidence.
		return false
	}
	d := s.ensureDriftLocked()
	if d.cooldown > 0 {
		d.cooldown--
	}
	d.observeEntropy(probs)
	d.push(summary)
	if d.filled < len(d.ring) {
		return false // not enough evidence yet
	}

	asg := s.srv.pipe.AssignFromSummaryCtx(ctx, d.mean(), s.frac)
	d.lastBest = asg.Cluster
	gap := 0.0
	if asg.Cluster != s.asg.Cluster {
		if best := asg.Scores[asg.Cluster]; best > 0 {
			gap = (asg.Scores[s.asg.Cluster] - best) / best
		}
	}
	d.lastGap = gap

	if gap <= s.srv.cfg.DriftThreshold {
		// Streak broken: noise, not drift.
		d.streak, d.score = 0, 0
		if s.state == StateDrifting {
			s.exitDriftLocked()
			s.record(ctx, evDriftCleared, "cluster=%d gap=%.4f", s.asg.Cluster, gap)
		}
		return false
	}
	d.streak++
	d.score += gap
	hDriftGap.Observe(gap)
	if d.streak < s.srv.cfg.DriftConsecutive {
		return false
	}
	if s.state != StateDrifting {
		// Streak hit the verdict threshold. A cooldown swallows the
		// verdict (flap suppression); otherwise enter StateDrifting and
		// require one more positive window to confirm.
		if d.cooldown > 0 {
			mDriftSuppressed.Inc()
			s.record(ctx, evDriftSuppress, "cluster=%d rolling=%d gap=%.4f cooldown=%d",
				s.asg.Cluster, asg.Cluster, gap, d.cooldown)
			d.streak, d.score = 0, 0
			return false
		}
		mDriftVerdicts.Inc()
		s.state = StateDrifting
		s.record(ctx, evDriftVerdict, "cluster=%d rolling=%d gap=%.4f streak=%d score=%.4f",
			s.asg.Cluster, asg.Cluster, gap, d.streak, d.score)
		return false
	}
	// Confirming window while drifting: re-assign.
	s.reassignLocked(ctx, asg)
	return true
}

// exitDriftLocked returns a session whose drift streak broke to its
// resting serving state. Callers hold s.mu.
func (s *Session) exitDriftLocked() {
	switch {
	case s.ftInFlight:
		s.state = StateFineTuning
	case s.personalized:
		s.state = StateMonitoring
	default:
		s.state = StateAssigned
	}
}

// reassignLocked swaps the session onto the evidence-preferred cluster:
// record the event, drop the stale personalised checkpoint, rebuild the
// monitor on the new cluster's shared deployment, arm the cooldown, and —
// when labels are retained — replay them through a fresh fine-tune
// (StateReassigning until the job resolves; served from the shared
// baseline meanwhile). Callers hold s.mu.
func (s *Session) reassignLocked(ctx context.Context, target core.Assignment) {
	s.prevCluster = s.asg.Cluster
	s.reassigns++
	s.asg = target
	if old := s.srv.cache.Remove(s.id); old != nil {
		s.srv.exec.Forget(old)
	}
	s.personalized = false
	s.mon = edge.NewMonitor(s.srv.deps[target.Cluster], nil, s.srv.pipe.Cfg.Extractor)
	d := s.ensureDriftLocked()
	d.resetEvidence()
	d.cooldown = s.srv.cfg.DriftCooldown
	mDriftReassigns.Inc()
	s.record(ctx, evReassigned, "from=%d to=%d reassigns=%d labels=%d",
		s.prevCluster, target.Cluster, s.reassigns, len(s.labels))

	if len(s.labels) > 0 {
		// Serve from the new cluster's shared baseline while the labels
		// replay; the fresh fine-tune runs behind the new cluster's
		// breaker.
		s.degraded = true
		s.ftLabeled = 0
		s.state = StateReassigning
		_, _ = s.tryFineTuneLocked(ctx)
		if !s.ftInFlight {
			// Replay refused (breaker open / queue full): fall back to
			// assigned+degraded; the heal timer or the next push retries.
			s.state = StateAssigned
		}
		return
	}
	s.degraded = false
	s.state = StateAssigned
}

// OverrideAssignment forces the session onto cluster k, as if cold-start
// assignment had picked it: the personalised checkpoint is dropped, the
// monitor rebuilds on k's deployment, and drift evidence restarts from
// empty (the cooldown, if armed, survives — an operator override is not a
// licence to flap). The RT harness uses it to reproduce the paper's
// wrong-cluster experiment; operators can use it to pin a session.
func (s *Session) OverrideAssignment(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateClosed {
		return fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	if !s.haveAsg {
		return fmt.Errorf("%w: session %q not yet assigned", ErrBadRequest, s.id)
	}
	if k < 0 || k >= len(s.srv.deps) {
		return fmt.Errorf("%w: cluster %d out of range [0,%d)", ErrBadRequest, k, len(s.srv.deps))
	}
	if k != s.asg.Cluster {
		s.prevCluster = s.asg.Cluster
		s.asg.Cluster = k
		s.record(context.Background(), evOverride, "from=%d to=%d", s.prevCluster, k)
	}
	if old := s.srv.cache.Remove(s.id); old != nil {
		s.srv.exec.Forget(old)
	}
	s.personalized = false
	s.ftLabeled = 0
	s.mon = edge.NewMonitor(s.srv.deps[k], nil, s.srv.pipe.Cfg.Extractor)
	if s.drift != nil {
		s.drift.resetEvidence()
	}
	if s.state == StateDrifting || s.state == StateMonitoring || s.state == StateReassigning {
		s.exitDriftLocked()
	}
	return nil
}

// DriftStatus is the drift-evidence block of a session's status.
type DriftStatus struct {
	// Streak is the current run of consecutive drift-positive windows.
	Streak int `json:"streak"`
	// Score is the cumulative relative gap over the streak — the
	// session's drift-evidence mass.
	Score float64 `json:"score"`
	// LastGap is the relative score gap on the latest full-ring
	// evaluation (0 when the rolling evidence agrees with the
	// assignment).
	LastGap float64 `json:"last_gap"`
	// RollingCluster is the cluster the rolling evidence prefers (-1
	// before the ring first fills).
	RollingCluster int `json:"rolling_cluster"`
	// CooldownLeft is how many windows of flap suppression remain.
	CooldownLeft int `json:"cooldown_left"`
	// WindowFill is how many of the evidence ring's slots hold data.
	WindowFill int `json:"window_fill"`
	// Entropy is the EWMA of normalised prediction entropy (a
	// corroborating confidence signal; not gating).
	Entropy float64 `json:"entropy"`
}

// driftStatusLocked snapshots the tracker; nil when the detector has
// never observed a window for this session. Callers hold s.mu.
func (s *Session) driftStatusLocked() *DriftStatus {
	if s.drift == nil {
		return nil
	}
	d := s.drift
	return &DriftStatus{
		Streak:         d.streak,
		Score:          d.score,
		LastGap:        d.lastGap,
		RollingCluster: d.lastBest,
		CooldownLeft:   d.cooldown,
		WindowFill:     d.filled,
		Entropy:        d.entropy,
	}
}
