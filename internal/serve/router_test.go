package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/store"
)

// swapHandler lets an httptest server start before its real handler
// exists (the ring needs the server URLs, the router needs the ring).
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// trio is a three-replica router deployment over one shared file store.
type trio struct {
	srvs    [3]*Server
	routers [3]*Router
	https   [3]*httptest.Server
	ring    *shard.Ring
	store   store.Store
}

func newTrio(t *testing.T) *trio {
	t.Helper()
	st, err := store.NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	tr := &trio{store: st}
	var swaps [3]*swapHandler
	nodes := make([]string, 3)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		tr.https[i] = httptest.NewServer(swaps[i])
		nodes[i] = tr.https[i].URL
	}
	tr.ring = shard.New(nodes, 0)
	pipe, _ := fixture(t)
	for i := range tr.srvs {
		self := nodes[i]
		cfg := Config{
			MaxDelay: 500 * time.Microsecond,
			Store:    st,
			Self:     self,
			OwnsID:   func(id string) bool { return tr.ring.Owner(id) == self },
			// Slow janitor so the test controls hand-back timing.
			SnapshotInterval: time.Hour,
		}
		srv, err := New(pipe, cfg)
		if err != nil {
			t.Fatalf("New replica %d: %v", i, err)
		}
		tr.srvs[i] = srv
		tr.routers[i] = NewRouter(srv, RouterConfig{
			Self: self, Ring: tr.ring, HealthInterval: 50 * time.Millisecond,
		})
		swaps[i].set(tr.routers[i].Handler())
	}
	t.Cleanup(func() {
		for i := range tr.srvs {
			tr.https[i].Close()
			tr.routers[i].Stop()
			tr.srvs[i].Shutdown()
		}
		st.Close()
	})
	return tr
}

func (tr *trio) post(t *testing.T, base, path string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

// replicaIdx maps a node URL back to its index.
func (tr *trio) replicaIdx(node string) int {
	for i := range tr.https {
		if tr.https[i].URL == node {
			return i
		}
	}
	return -1
}

// TestRouterOwnershipAndForwarding drives one session's lifecycle through
// the "wrong" replica end to end: creation is local (mint-until-owned),
// every per-session request sent to a non-owner is forwarded to the
// owner, and the non-owner never materialises the session locally.
func TestRouterOwnershipAndForwarding(t *testing.T) {
	tr := newTrio(t)
	_, users := fixture(t)
	u := users[2]

	// Create on replica 0: the minted ID must be owned by replica 0.
	resp, body := tr.post(t, tr.https[0].URL, "/v1/sessions",
		CreateSessionRequest{UserID: u.ID, ExpectedWindows: len(u.Maps)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var cr CreateSessionResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	if owner := tr.ring.Owner(cr.ID); owner != tr.https[0].URL {
		t.Fatalf("minted ID %s owned by %s, not its creator", cr.ID, owner)
	}

	// Stream the lifecycle through replica 1 — every request forwards.
	other := tr.https[1].URL
	base := "/v1/sessions/" + cr.ID
	for i, lm := range u.Maps {
		resp, body := tr.post(t, other, base+"/windows", WindowPayload{Map: &MapPayload{
			Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("forwarded window %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body = tr.post(t, other, base+"/labels",
		map[string]map[int]int{"labels": {0: int(u.Maps[0].Label)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded labels: %d %s", resp.StatusCode, body)
	}

	// The owner holds the session; the forwarding replica does not.
	if _, err := tr.srvs[0].Session(cr.ID); err != nil {
		t.Fatalf("owner lost the session: %v", err)
	}
	tr.srvs[1].mu.RLock()
	_, local := tr.srvs[1].sessions[cr.ID]
	tr.srvs[1].mu.RUnlock()
	if local {
		t.Fatal("forwarding replica materialised a session it does not own")
	}
	if st := tr.routers[1].stats(); st.Forwards == 0 {
		t.Fatal("replica 1 reports zero forwards")
	}
}

// TestRouterFailoverHydration kills a session's owner mid-lifecycle and
// checks the surviving replicas keep serving it: the next request fails
// over to a live node, which hydrates the session from the shared store
// with its windows and labels intact — nothing the client was told we
// accepted is lost.
func TestRouterFailoverHydration(t *testing.T) {
	tr := newTrio(t)
	_, users := fixture(t)
	u := users[3]

	resp, body := tr.post(t, tr.https[0].URL, "/v1/sessions",
		CreateSessionRequest{UserID: u.ID, ExpectedWindows: len(u.Maps)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var cr CreateSessionResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	base := "/v1/sessions/" + cr.ID

	// Half the windows land on the owner (via a peer, for good measure).
	half := len(u.Maps) / 2
	for i := 0; i < half; i++ {
		lm := u.Maps[i]
		resp, body := tr.post(t, tr.https[2].URL, base+"/windows", WindowPayload{Map: &MapPayload{
			Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d: %d %s", i, resp.StatusCode, body)
		}
	}

	// Kill the owner. Shutdown flushes its registry to the shared store
	// (write-through already persisted each accepted window anyway).
	tr.https[0].Close()
	tr.srvs[0].Shutdown()

	// Requests through a survivor must keep working: the forward fails,
	// the router fails over, and the failover owner hydrates from the
	// store resuming at the exact window count the client had reached.
	var wr WindowResponse
	for i := half; i < len(u.Maps); i++ {
		lm := u.Maps[i]
		resp, body := tr.post(t, tr.https[1].URL, base+"/windows", WindowPayload{Map: &MapPayload{
			Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-failover window %d: %d %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatalf("window response: %v", err)
		}
		if wr.Windows != i+1 {
			t.Fatalf("window count %d after failover, want %d (state lost in handoff)", wr.Windows, i+1)
		}
	}

	// The session now lives on whichever survivor the ring failed over
	// to, hydrated (not restarted): cumulative count preserved.
	failover := tr.ring.OwnerExcluding(cr.ID, map[string]bool{tr.https[0].URL: true})
	idx := tr.replicaIdx(failover)
	if idx <= 0 {
		t.Fatalf("failover owner %q not a survivor", failover)
	}
	sess, err := tr.srvs[idx].Session(cr.ID)
	if err != nil {
		t.Fatalf("failover replica %d has no session: %v", idx, err)
	}
	if st := sess.Status(); st.Windows != len(u.Maps) {
		t.Fatalf("hydrated session windows = %d, want %d", st.Windows, len(u.Maps))
	}
}
