package serve

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/obs"
)

// Window-sanitisation telemetry.
var (
	mCorruptWindows  = obs.GetCounter("serve.corrupt_windows")
	mImputedWindows  = obs.GetCounter("serve.imputed_windows")
	mRejectedWindows = obs.GetCounter("serve.rejected_windows")
	mDroppedChannels = obs.GetCounter("serve.dropped_channels")
)

// channelBounds returns the [lo,hi) feature-row blocks of the physiological
// channels when the map uses the standard 123-row layout; otherwise the
// whole map is treated as a single channel.
func channelBounds(rows int) [][2]int {
	if rows == features.TotalFeatureCount {
		b := features.BVPFeatureCount
		g := b + features.GSRFeatureCount
		return [][2]int{{0, b}, {b, g}, {g, rows}}
	}
	return [][2]int{{0, rows}}
}

// sanitizeWindowLocked screens one incoming raw feature map before it can
// reach feature normalisation, cold-start assignment, or the classifier:
//
//   - a clean window passes through untouched (zero-copy fast path);
//   - non-finite cells (NaN/Inf corruption) and fully dead sensor channels
//     (every cell zero or non-finite — a dropped BVP/GSR/SKT stream) are
//     imputed cell-wise from the session's retained history;
//   - a corrupt window with no history to impute from is rejected with
//     ErrCorruptWindow (the HTTP layer maps it to 422).
//
// Callers hold s.mu (the history is s.maps, which the same lock guards).
func (s *Session) sanitizeWindowLocked(m *tensorT) (*tensorT, error) {
	rows, cols := m.Dim(0), m.Dim(1)
	bad := markBadCells(m, rows, cols)
	if bad == nil {
		return m, nil
	}
	mCorruptWindows.Inc()
	if len(s.maps) == 0 {
		mRejectedWindows.Inc()
		return nil, fmt.Errorf("%w: window has non-finite or dead-channel cells and the session has no history to impute from", ErrCorruptWindow)
	}

	out := m.Clone()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !bad[i*cols+j] {
				continue
			}
			v, ok := s.imputeLocked(i, j)
			if !ok {
				mRejectedWindows.Inc()
				return nil, fmt.Errorf("%w: no finite history for feature %d window %d", ErrCorruptWindow, i, j)
			}
			out.Set(v, i, j)
		}
	}
	mImputedWindows.Inc()
	return out, nil
}

// markBadCells flags the cells sanitisation must repair: every non-finite
// cell, plus every cell of a dead channel. It returns nil when the window
// is clean.
func markBadCells(m *tensorT, rows, cols int) []bool {
	var bad []bool
	mark := func(i, j int) {
		if bad == nil {
			bad = make([]bool, rows*cols)
		}
		bad[i*cols+j] = true
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !isFinite(m.At(i, j)) {
				mark(i, j)
			}
		}
	}
	for _, ch := range channelBounds(rows) {
		if deadChannel(m, ch, cols) {
			mDroppedChannels.Inc()
			for i := ch[0]; i < ch[1]; i++ {
				for j := 0; j < cols; j++ {
					mark(i, j)
				}
			}
		}
	}
	return bad
}

// deadChannel reports whether every cell of the channel block is zero or
// non-finite — the signature of a dropped sensor stream. (A live channel
// always carries real-valued feature statistics; an exactly-zero block only
// arises when the upstream signal vanished.)
func deadChannel(m *tensorT, ch [2]int, cols int) bool {
	for i := ch[0]; i < ch[1]; i++ {
		for j := 0; j < cols; j++ {
			if v := m.At(i, j); v != 0 && isFinite(v) {
				return false
			}
		}
	}
	return true
}

// imputeLocked estimates cell (i,j) from the finite values the session's
// retained history holds at the same position. Callers hold s.mu.
func (s *Session) imputeLocked(i, j int) (float64, bool) {
	sum, n := 0.0, 0
	for _, h := range s.maps {
		if i >= h.Dim(0) || j >= h.Dim(1) {
			continue
		}
		if v := h.At(i, j); isFinite(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// corruptMap poisons a clone of m (the fault-injection path, shared with
// tests): kind 0 scatters NaN cells, kind 1 zeroes the channel block
// chosen by pick.
func corruptMap(m *tensorT, kind, pick int) *tensorT {
	out := m.Clone()
	rows, cols := out.Dim(0), out.Dim(1)
	switch kind {
	case 0:
		for j := 0; j < cols; j++ {
			out.Set(math.NaN(), (j*7)%rows, j)
		}
	case 1:
		chans := channelBounds(rows)
		ch := chans[pick%len(chans)]
		for i := ch[0]; i < ch[1]; i++ {
			for j := 0; j < cols; j++ {
				out.Set(0, i, j)
			}
		}
	}
	return out
}
