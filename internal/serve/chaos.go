package serve

// Runtime chaos admin: POST /v1/chaos arms time-bounded fault windows on
// a live replica, so a chaos harness (clear-loadgen -chaos, the CI
// store-outage smoke) can kill the store or partition a node mid-run
// without restarting anything. Gated behind Config.ChaosAdmin — a
// production deployment never mounts this behaviour.
//
// Two windows:
//
//   - store_outage_ms: arms the shared fault injector's StorePutFail
//     point at rate 1.0 for the window — every store write fails, which
//     drives the write-behind path (replay queue, store breaker,
//     durability admission control). Reads keep working, like a disk
//     gone read-only; auto-disarms when the window ends.
//   - partition_ms: an inbound partition. Every request (except
//     /v1/chaos itself) stalls until the window ends and then answers
//     503 + Retry-After WITHOUT reaching its handler — so peers' healthz
//     probes time out and mark the node down, forwarded requests hit
//     their forward deadline and hedge to the failover owner, and no
//     stalled request is ever half-applied after the client gave up.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// chaosState tracks armed windows. gen guards auto-disarm against a
// newer overlapping window.
type chaosState struct {
	mu         sync.Mutex
	gen        int64
	storeUntil time.Time
}

// ChaosRequest is the POST /v1/chaos body; zero fields are ignored.
type ChaosRequest struct {
	// StoreOutageMS arms StorePutFail at rate 1.0 for this many ms.
	StoreOutageMS int64 `json:"store_outage_ms,omitempty"`
	// PartitionMS arms the inbound partition gate for this many ms.
	PartitionMS int64 `json:"partition_ms,omitempty"`
}

// ChaosResponse reports the armed windows' deadlines (Unix ms; 0 = off).
type ChaosResponse struct {
	StoreOutageUntilMS int64 `json:"store_outage_until_ms"`
	PartitionUntilMS   int64 `json:"partition_until_ms"`
}

// handleChaos arms the requested windows.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.ChaosAdmin {
		writeJSON(w, http.StatusForbidden, errorResponse{Error: "chaos admin disabled"})
		return
	}
	var req ChaosRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if req.StoreOutageMS > 0 {
		if s.cfg.Fault == nil {
			writeError(w, r, fmt.Errorf("%w: store outage needs a fault injector (-fault-seed)", ErrBadRequest))
			return
		}
		s.armStoreOutage(time.Duration(req.StoreOutageMS) * time.Millisecond)
	}
	if req.PartitionMS > 0 {
		s.armPartition(time.Duration(req.PartitionMS) * time.Millisecond)
	}
	writeJSON(w, http.StatusOK, s.chaosStatus())
}

// armStoreOutage fails every store write for d via the shared injector.
func (s *Server) armStoreOutage(d time.Duration) {
	s.chaos.mu.Lock()
	s.chaos.gen++
	gen := s.chaos.gen
	s.chaos.storeUntil = time.Now().Add(d)
	s.chaos.mu.Unlock()
	s.cfg.Fault.Enable(fault.StorePutFail, 1)
	obs.Logger().Warn("chaos: store outage armed", "for", d.String())
	s.journal.Record(context.Background(), "chaos", "store outage armed for %s", d)
	time.AfterFunc(d, func() {
		s.chaos.mu.Lock()
		stale := s.chaos.gen != gen
		s.chaos.mu.Unlock()
		if stale {
			return // a newer overlapping window owns the disarm
		}
		s.cfg.Fault.Enable(fault.StorePutFail, 0)
		obs.Logger().Warn("chaos: store outage cleared")
	})
}

// armPartition stalls all inbound requests until now+d.
func (s *Server) armPartition(d time.Duration) {
	atomic.StoreInt64(&s.partUntil, time.Now().Add(d).UnixNano())
	obs.Logger().Warn("chaos: inbound partition armed", "for", d.String())
	s.journal.Record(context.Background(), "chaos", "inbound partition armed for %s", d)
}

func (s *Server) chaosStatus() ChaosResponse {
	var resp ChaosResponse
	s.chaos.mu.Lock()
	if until := s.chaos.storeUntil; !until.IsZero() && time.Now().Before(until) {
		resp.StoreOutageUntilMS = until.UnixMilli()
	}
	s.chaos.mu.Unlock()
	if until := atomic.LoadInt64(&s.partUntil); until > time.Now().UnixNano() {
		resp.PartitionUntilMS = time.Unix(0, until).UnixMilli()
	}
	return resp
}

// chaosGate wraps a handler chain with the partition gate. Unarmed (the
// overwhelming default) it costs one atomic load per request. It also
// stamps X-Clear-Node (this replica's node name) on every response —
// being the outermost wrapper on both the single-node and router muxes,
// it gives one-glance serving-node attribution on every path. A proxied
// response relays the owner's header instead (router.go drops this one
// before copying the upstream's), so the header always names the replica
// whose handler produced the body.
func (s *Server) chaosGate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(nodeHeader, s.cfg.Self)
		until := atomic.LoadInt64(&s.partUntil)
		if until == 0 || time.Now().UnixNano() >= until {
			h.ServeHTTP(w, r)
			return
		}
		if r.URL.Path == "/v1/chaos" {
			h.ServeHTTP(w, r) // the harness can always re-arm / inspect
			return
		}
		// Hold the request for the remainder of the window (a partitioned
		// node is silent, not fast-failing), then refuse WITHOUT invoking
		// the handler — a caller that timed out and hedged elsewhere must
		// never have its request half-applied here afterwards.
		select {
		case <-time.After(time.Until(time.Unix(0, until))):
		case <-r.Context().Done():
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
}
