package serve

// Robustness suite: circuit breaker semantics, fine-tune retry/backoff and
// degraded-mode recovery, window sanitisation, inference deadlines, the
// typed-error → HTTP status table, session snapshot/restore, and the
// Shutdown-vs-lifecycle race (run with -race).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// TestBreakerStateMachine walks the breaker through its full cycle on a
// fake clock: consecutive failures open it, the cooldown admits a single
// half-open probe, a failed probe re-opens, a successful probe closes.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.now = func() time.Time { return now }

	fail := errors.New("boom")
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Done(fail)
	b.Allow()
	b.Done(nil) // success resets the consecutive count
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Done(fail)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("2 consecutive failures after reset opened a threshold-3 breaker (state %v)", b.State())
	}
	b.Allow()
	b.Done(fail)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3rd consecutive failure = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker granted a build")
	}

	now = now.Add(11 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker granted a second concurrent probe")
	}
	b.Done(fail) // failed probe → re-open, cooldown restarts
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	b.Done(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused")
	}
	b.Done(nil)
}

// TestFineTuneRetryBreakerAndRecovery drives the whole degraded-mode loop
// end to end: injected build failures exhaust the retries and trip the
// cluster's breaker, the session is visibly served from the baseline
// (degraded in results, status, HTTP JSON, and Stats), and once the fault
// heals the half-open probe re-personalises the session and re-closes the
// breaker.
func TestFineTuneRetryBreakerAndRecovery(t *testing.T) {
	retriesBefore, giveupsBefore := mFTRetries.Value(), mFTGiveups.Value()
	inj := fault.New(11).Enable(fault.ModelBuild, 1) // every build fails
	srv := newTestServer(t, Config{
		FineTuneRetries:  2,
		FineTuneBackoff:  time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  80 * time.Millisecond,
		Fault:            inj,
	})
	_, users := fixture(t)
	u := users[0]

	sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	var cluster int
	for i, lm := range u.Maps[:len(u.Maps)/2] {
		res, err := sess.PushWindow(lm.Map)
		if err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
		if res.Assignment != nil {
			cluster = res.Assignment.Cluster
		}
	}
	labels := map[int]int{}
	for j := 0; j < len(u.Maps)/2; j++ {
		labels[j] = int(u.Maps[j].Label)
	}
	if _, err := sess.PushLabels(labels); err != nil {
		t.Fatalf("PushLabels: %v", err)
	}

	// The job fails twice (threshold 2 → breaker opens mid-job), gives up,
	// and the session lands in degraded mode.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !sess.Degraded() {
		time.Sleep(2 * time.Millisecond)
	}
	if !sess.Degraded() {
		t.Fatal("session never entered degraded mode under guaranteed build failure")
	}
	if st := srv.BreakerFor(cluster).State(); st != BreakerOpen && st != BreakerHalfOpen {
		t.Fatalf("cluster %d breaker = %v, want open (or half-open after cooldown)", cluster, st)
	}
	if got := mFTRetries.Value(); got <= retriesBefore {
		t.Error("no fine-tune retries counted")
	}
	if got := mFTGiveups.Value(); got <= giveupsBefore {
		t.Error("no fine-tune giveups counted")
	}

	// Degraded serving is visible on every surface.
	res, err := sess.PushWindow(u.Maps[len(u.Maps)/2].Map)
	if err != nil {
		t.Fatalf("degraded PushWindow: %v", err)
	}
	if !res.Degraded || res.Personalized {
		t.Fatalf("degraded window: Degraded=%v Personalized=%v, want true/false", res.Degraded, res.Personalized)
	}
	if st := sess.Status(); !st.Degraded {
		t.Error("Status().Degraded = false in degraded mode")
	}
	stats := srv.Stats()
	if stats.DegradedSessions != 1 {
		t.Errorf("Stats.DegradedSessions = %d, want 1", stats.DegradedSessions)
	}
	if stats.DegradedInferences == 0 {
		t.Error("Stats.DegradedInferences = 0 after a degraded window")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/"+sess.ID(), nil))
	var js struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil || !js.Degraded {
		t.Errorf("HTTP status JSON degraded=%v err=%v, want true", js.Degraded, err)
	}

	// Heal the fault; after the cooldown the next window's opportunistic
	// trigger becomes the half-open probe, which succeeds and recovers
	// both the session and the breaker.
	inj.Enable(fault.ModelBuild, 0)
	time.Sleep(100 * time.Millisecond)
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := sess.PushWindow(u.Maps[len(u.Maps)/2].Map); err != nil {
			t.Fatalf("recovery PushWindow: %v", err)
		}
		if st := sess.Status(); st.Personalized && !st.Degraded {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := sess.Status()
	if !st.Personalized || st.Degraded {
		t.Fatalf("session did not recover: personalized=%v degraded=%v", st.Personalized, st.Degraded)
	}
	if bst := srv.BreakerFor(cluster).State(); bst != BreakerClosed {
		t.Fatalf("breaker did not re-close after successful probe: %v", bst)
	}
	res, err = sess.PushWindow(u.Maps[len(u.Maps)/2+1].Map)
	if err != nil {
		t.Fatalf("post-recovery PushWindow: %v", err)
	}
	if !res.Personalized || res.Degraded {
		t.Fatalf("post-recovery window: Personalized=%v Degraded=%v", res.Personalized, res.Degraded)
	}
}

// TestSanitizeImputesFromHistory pushes damaged windows at an enrolling
// session that has history: scattered NaN cells and a dead sensor channel
// must both be repaired cell-wise, and the stored maps must be finite.
func TestSanitizeImputesFromHistory(t *testing.T) {
	srv := newTestServer(t, Config{})
	_, users := fixture(t)
	u := users[1]
	sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.9) // stay enrolling
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sess.PushWindow(u.Maps[i].Map); err != nil {
			t.Fatalf("clean PushWindow %d: %v", i, err)
		}
	}
	for kind, name := range map[int]string{0: "scattered NaN", 1: "dead channel"} {
		res, err := sess.PushWindow(corruptMap(u.Maps[2+kind].Map, kind, kind))
		if err != nil {
			t.Fatalf("%s window rejected despite history: %v", name, err)
		}
		if !res.Imputed {
			t.Errorf("%s window not flagged Imputed", name)
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for i, m := range sess.maps {
		for _, v := range m.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("stored map %d contains non-finite value after sanitisation", i)
			}
		}
	}
}

// TestCorruptWindowRejectedWithoutHistory: the very first window of a
// session has nothing to impute from — the typed rejection must surface.
func TestCorruptWindowRejectedWithoutHistory(t *testing.T) {
	srv := newTestServer(t, Config{})
	_, users := fixture(t)
	u := users[2]
	sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.9)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	_, err = sess.PushWindow(corruptMap(u.Maps[0].Map, 0, 0))
	if !errors.Is(err, ErrCorruptWindow) {
		t.Fatalf("first corrupt window err = %v, want ErrCorruptWindow", err)
	}
	// The session is not poisoned: the clean copy is accepted afterwards.
	if _, err := sess.PushWindow(u.Maps[0].Map); err != nil {
		t.Fatalf("clean window after rejection: %v", err)
	}
}

// TestExecutorDeadline covers the context path through the executor: an
// injected stall outlasting the caller's deadline yields the typed
// ErrTimeout, and a request whose context is already dead when a dispatch
// round forms is dropped without a pass.
func TestExecutorDeadline(t *testing.T) {
	pipe, users := fixture(t)
	x := pipe.Apply(users[0].Maps[0].Map)
	model := pipe.ModelFor(0)

	inj := fault.New(5).Enable(fault.InferStall, 1).SetStall(300 * time.Millisecond)
	exec := NewExecutor(4, time.Millisecond, 16, 2)
	exec.SetWatchdog(20 * time.Millisecond)
	exec.SetFault(inj)
	defer exec.Close()

	stallsBefore := mExecStalls.Value()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := exec.Submit(ctx, model, x)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled Submit err = %v, want ErrTimeout", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Errorf("caller waited %v, deadline was 30ms — context not honoured", waited)
	}
	// Let the stalled pass finish; the watchdog must have flagged it.
	time.Sleep(400 * time.Millisecond)
	if mExecStalls.Value() <= stallsBefore {
		t.Error("watchdog counted no stalls for a 300ms pass with a 20ms bound")
	}

	// Already-expired requests are dropped from the dispatch round.
	expiredBefore := mExpired.Value()
	dead, kill := context.WithCancel(context.Background())
	kill()
	if _, err := exec.Submit(dead, model, x); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dead-context Submit err = %v, want ErrTimeout", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && mExpired.Value() <= expiredBefore {
		time.Sleep(5 * time.Millisecond)
	}
	if mExpired.Value() <= expiredBefore {
		t.Error("expired queued request was not dropped by the dispatcher")
	}
}

// TestErrorStatusTable maps every typed serve error — wrapped, as handlers
// produce them — to its HTTP status.
func TestErrorStatusTable(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("%w: queue full", ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("%w: %q", ErrSessionNotFound, "s1"), http.StatusNotFound},
		{fmt.Errorf("%w: %q", ErrSessionClosed, "s1"), http.StatusConflict},
		{fmt.Errorf("%w: bad shape", ErrBadRequest), http.StatusBadRequest},
		{fmt.Errorf("%w: no history", ErrCorruptWindow), http.StatusUnprocessableEntity},
		{ErrShutdown, http.StatusServiceUnavailable},
		{fmt.Errorf("%w: context deadline exceeded", ErrTimeout), http.StatusGatewayTimeout},
		{errors.New("untyped"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, httptest.NewRequest("GET", "/v1/stats", nil), tc.err)
		if rec.Code != tc.want {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
		var body errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Errorf("writeError(%v) body %q not a JSON error", tc.err, rec.Body.String())
		}
	}
}

// TestSnapshotRestoreRoundTrip persists a registry holding sessions at
// different lifecycle positions and restores it into a fresh server: the
// enrolment state machine, the cold-start assignment, the label budget,
// and the retained maps must survive bitwise; post-assignment sessions are
// demoted to the cluster baseline and their labels replay a fine-tune.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	srvA := newTestServer(t, Config{})
	_, users := fixture(t)

	// sEnrol: mid-enrolment. sMon: fully personalised and monitoring.
	uE, uM := users[3], users[4]
	sEnrol, err := srvA.CreateSession(uE.ID, len(uE.Maps), 0.9)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sEnrol.PushWindow(uE.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow: %v", err)
		}
	}
	sMon, err := srvA.CreateSession(uM.ID, len(uM.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i, lm := range uM.Maps {
		if _, err := sMon.PushWindow(lm.Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
		if i == len(uM.Maps)/2 {
			labels := map[int]int{}
			for j := 0; j <= i; j++ {
				labels[j] = int(uM.Maps[j].Label)
			}
			if _, err := sMon.PushLabels(labels); err != nil {
				t.Fatalf("PushLabels: %v", err)
			}
			waitState(t, sMon, StateMonitoring)
		}
	}

	var buf bytes.Buffer
	if err := srvA.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	srvB := newTestServer(t, Config{})
	n, err := srvB.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 2 {
		t.Fatalf("Restore = (%d, %v), want (2, nil)", n, err)
	}

	// Enrolling session: byte-exact continuation.
	rE, err := srvB.Session(sEnrol.ID())
	if err != nil {
		t.Fatalf("restored enrolling session: %v", err)
	}
	rE.mu.Lock()
	if rE.state != StateEnrolling || rE.pushed != 2 || len(rE.maps) != 2 ||
		rE.expected != sEnrol.expected || rE.assignAt != sEnrol.assignAt {
		t.Fatalf("enrolling session state drifted: %+v", rE.Status())
	}
	for i, m := range rE.maps {
		for j, v := range m.Data {
			if v != sEnrol.maps[i].Data[j] {
				t.Fatalf("map %d cell %d not bitwise equal after round-trip", i, j)
			}
		}
	}
	rE.mu.Unlock()
	if st := rE.Status(); !st.Restored {
		t.Error("restored session not flagged Restored")
	}

	// Monitored session: demoted to the baseline, assignment and labels
	// intact, then re-personalised from the replayed labels.
	rM, err := srvB.Session(sMon.ID())
	if err != nil {
		t.Fatalf("restored monitored session: %v", err)
	}
	origStatus, gotStatus := sMon.Status(), rM.Status()
	if gotStatus.Cluster != origStatus.Cluster {
		t.Fatalf("cluster %d != %d after restore", gotStatus.Cluster, origStatus.Cluster)
	}
	for i, s := range origStatus.Scores {
		if gotStatus.Scores[i] != s {
			t.Fatalf("assignment score %d not bitwise equal", i)
		}
	}
	if gotStatus.Labeled != origStatus.Labeled {
		t.Fatalf("label budget %d != %d after restore", gotStatus.Labeled, origStatus.Labeled)
	}
	waitState(t, rM, StateMonitoring)
	if st := rM.Status(); !st.Personalized {
		t.Error("restored session's labels did not replay into a fine-tune")
	}

	// The restored sequence counter cannot collide with the old IDs.
	fresh, err := srvB.CreateSession(99, 4, 0.5)
	if err != nil {
		t.Fatalf("CreateSession after restore: %v", err)
	}
	if fresh.ID() == sEnrol.ID() || fresh.ID() == sMon.ID() {
		t.Fatalf("new session reused a restored ID %s", fresh.ID())
	}

	// Corrupt stream → typed error.
	if _, err := srvB.Restore(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage Restore err = %v, want ErrBadSnapshot", err)
	}
}

// TestStoreFlushAndRestoreAll exercises the store-backed persistence path
// that replaced the direct snapshot file: create/push write through to
// the store, FlushAll persists the registry wholesale, and a second
// server hydrates via RestoreAll — with the ownership predicate
// filtering, and an empty store booting to an empty registry.
func TestStoreFlushAndRestoreAll(t *testing.T) {
	ctx := context.Background()
	st, err := store.NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	srvA := newTestServer(t, Config{Store: st, Self: "a"})
	_, users := fixture(t)
	u := users[5]
	sess, err := srvA.CreateSession(u.ID, len(u.Maps), 0.9)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := sess.PushWindow(u.Maps[0].Map); err != nil {
		t.Fatalf("PushWindow: %v", err)
	}
	// Create and push both wrote through already; FlushAll must still
	// cover the whole registry.
	if n := srvA.FlushAll(ctx); n != 1 {
		t.Fatalf("FlushAll = %d, want 1", n)
	}
	if got := st.Stats().Sessions; got != 1 {
		t.Fatalf("store sessions = %d, want 1", got)
	}

	srvB := newTestServer(t, Config{Store: st, Self: "b"})
	if n, err := srvB.RestoreAll(ctx, nil); n != 1 || err != nil {
		t.Fatalf("RestoreAll = (%d, %v), want (1, nil)", n, err)
	}
	r, err := srvB.Session(sess.ID())
	if err != nil {
		t.Fatalf("restored session: %v", err)
	}
	if got := r.Status().Windows; got != 1 {
		t.Fatalf("restored windows = %d, want 1", got)
	}

	// The ownership predicate keeps other replicas' sessions out.
	srvC := newTestServer(t, Config{Store: st, Self: "c"})
	if n, err := srvC.RestoreAll(ctx, func(string) bool { return false }); n != 0 || err != nil {
		t.Fatalf("filtered RestoreAll = (%d, %v), want (0, nil)", n, err)
	}

	// Empty store boots to an empty registry.
	st2, err := store.NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	srvD := newTestServer(t, Config{Store: st2})
	if n, err := srvD.RestoreAll(ctx, nil); n != 0 || err != nil {
		t.Fatalf("empty-store RestoreAll = (%d, %v), want (0, nil)", n, err)
	}
}

// TestShutdownRacesSessionLifecycle hammers CreateSession / PushWindow /
// CloseSession from 8 goroutines while Shutdown lands mid-flight (run with
// -race). Every call must return cleanly — success or a typed error —
// and the registry must drain without panics or deadlocks.
func TestShutdownRacesSessionLifecycle(t *testing.T) {
	pipe, users := fixture(t)
	srv, err := New(pipe, Config{FineTuneBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := users[g%len(users)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sess, err := srv.CreateSession(u.ID*100+g, len(u.Maps), 0.3)
				if err != nil {
					if errors.Is(err, ErrShutdown) || errors.Is(err, ErrOverloaded) {
						return
					}
					t.Errorf("CreateSession: untyped error %v", err)
					return
				}
				for _, lm := range u.Maps[:3] {
					if _, err := sess.PushWindow(lm.Map); err != nil &&
						!errors.Is(err, ErrShutdown) && !errors.Is(err, ErrOverloaded) &&
						!errors.Is(err, ErrSessionClosed) && !errors.Is(err, ErrTimeout) {
						t.Errorf("PushWindow: untyped error %v", err)
						return
					}
				}
				if err := srv.CloseSession(sess.ID()); err != nil &&
					!errors.Is(err, ErrSessionNotFound) {
					t.Errorf("CloseSession: untyped error %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	srv.Shutdown()
	close(stop)
	wg.Wait()
	srv.Shutdown() // idempotent
}
