package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wemac"
)

// chaosTrio is a three-replica deployment over one shared fault-wrapped
// file store, with chaos admin armed and fast breaker/janitor cadences.
type chaosTrio struct {
	srvs    [3]*Server
	routers [3]*Router
	https   [3]*httptest.Server
	ring    *shard.Ring
	store   store.Store
	inj     *fault.Injector
}

func newChaosTrio(t *testing.T) *chaosTrio {
	t.Helper()
	inner, err := store.NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	inj := fault.New(99)
	// One injector wraps the one shared store: arming StorePutFail models
	// the shared durable backend failing for every replica at once.
	st := store.WithRetry(store.WithFault(inner, inj), store.RetryConfig{
		Attempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond,
	})
	tr := &chaosTrio{store: st, inj: inj}
	var swaps [3]*swapHandler
	nodes := make([]string, 3)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		tr.https[i] = httptest.NewServer(swaps[i])
		nodes[i] = tr.https[i].URL
	}
	tr.ring = shard.New(nodes, 0)
	pipe, _ := fixture(t)
	for i := range tr.srvs {
		self := nodes[i]
		cfg := Config{
			MaxDelay:              500 * time.Microsecond,
			Store:                 st,
			Self:                  self,
			OwnsID:                func(id string) bool { return tr.ring.Owner(id) == self },
			SnapshotInterval:      time.Hour,
			StoreBreakerThreshold: 2,
			StoreBreakerCooldown:  100 * time.Millisecond,
			ReplayQueueCap:        64,
			Fault:                 inj,
			ChaosAdmin:            true,
		}
		srv, err := New(pipe, cfg)
		if err != nil {
			t.Fatalf("New replica %d: %v", i, err)
		}
		tr.srvs[i] = srv
		tr.routers[i] = NewRouter(srv, RouterConfig{
			Self: self, Ring: tr.ring,
			HealthInterval:        25 * time.Millisecond,
			ForwardAttemptTimeout: 250 * time.Millisecond,
			PeerBreakerThreshold:  2,
			PeerBreakerCooldown:   250 * time.Millisecond,
		})
		swaps[i].set(tr.routers[i].Handler())
	}
	t.Cleanup(func() {
		inj.Enable(fault.StorePutFail, 0)
		for i := range tr.srvs {
			tr.https[i].Close()
			tr.routers[i].Stop()
			tr.srvs[i].Shutdown()
		}
		st.Close()
	})
	return tr
}

func (tr *chaosTrio) post(t *testing.T, base, path string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

// TestTrioStoreOutageAndPartitionChaos is the in-process mirror of the CI
// chaos smoke: three replicas share one store; mid-run the store stops
// accepting writes, then one replica is partitioned. Every request keeps
// succeeding, the write-behind queues fill and then drain to zero once
// the store heals, partitioned-owner sessions fail over, and they hand
// back after the partition lifts.
func TestTrioStoreOutageAndPartitionChaos(t *testing.T) {
	tr := newChaosTrio(t)
	_, users := fixture(t)
	ctx := context.Background()

	type sessInfo struct {
		id      string
		home    int // replica it was created on (and is owned by)
		user    *wemac.UserMaps
		windows int
	}
	postWindow := func(via string, si *sessInfo) {
		t.Helper()
		lm := si.user.Maps[si.windows%len(si.user.Maps)]
		resp, body := tr.post(t, via, "/v1/sessions/"+si.id+"/windows", WindowPayload{Map: &MapPayload{
			Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window via %s for %s: %d %s", via, si.id, resp.StatusCode, body)
		}
		si.windows++
	}

	// Two sessions per replica; mint-until-owned pins each to its creator.
	var sessions []*sessInfo
	for i := 0; i < 6; i++ {
		u := users[i%len(users)]
		home := i % 3
		resp, body := tr.post(t, tr.https[home].URL, "/v1/sessions",
			CreateSessionRequest{UserID: u.ID, ExpectedWindows: 64})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, resp.StatusCode, body)
		}
		var cr CreateSessionResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatalf("create response: %v", err)
		}
		sessions = append(sessions, &sessInfo{id: cr.ID, home: home, user: u})
	}
	// Healthy phase: every session takes a window through a non-owner.
	for i, si := range sessions {
		postWindow(tr.https[(si.home+1)%3].URL, si)
		_ = i
	}

	// ── Store outage: writes fail on every replica for 600ms. ──
	resp, body := tr.post(t, tr.https[0].URL, "/v1/chaos", ChaosRequest{StoreOutageMS: 600})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm store outage: %d %s", resp.StatusCode, body)
	}
	outageEnd := time.Now().Add(600 * time.Millisecond)
	// Mid-outage traffic must keep succeeding (serving is decoupled from
	// durability) and must land sessions in the replay queues.
	for _, si := range sessions {
		postWindow(tr.https[si.home].URL, si)
	}
	queued := 0
	for _, s := range tr.srvs {
		queued += s.wb.depth()
	}
	if queued == 0 {
		t.Fatal("no sessions queued for replay during the store outage")
	}
	// A dirty session reports durability at-risk through the API.
	dirty := ""
	for _, s := range tr.srvs {
		for _, si := range sessions {
			if s.wb.pending(si.id) {
				dirty = si.id
			}
		}
	}
	gr, err := http.Get(tr.https[1].URL + "/v1/sessions/" + dirty)
	if err != nil {
		t.Fatalf("status during outage: %v", err)
	}
	var stat SessionStatus
	if err := json.NewDecoder(gr.Body).Decode(&stat); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	gr.Body.Close()
	if stat.Durability != "at_risk" {
		t.Fatalf("mid-outage durability = %q, want at_risk", stat.Durability)
	}

	// Store heals: the next writes are the half-open probes; queues must
	// drain to zero and breakers re-close.
	time.Sleep(time.Until(outageEnd) + 50*time.Millisecond)
	for _, si := range sessions {
		postWindow(tr.https[si.home].URL, si)
	}
	waitFor(t, 5*time.Second, "all replay queues to drain", func() bool {
		for _, s := range tr.srvs {
			if s.wb.depth() != 0 || s.wb.br.State() != BreakerClosed {
				return false
			}
		}
		return true
	})
	for _, si := range sessions {
		if _, err := tr.store.GetSession(ctx, si.id); err != nil {
			t.Fatalf("session %s not durable after drain: %v", si.id, err)
		}
	}

	// ── Partition: replica 2 goes silent for 500ms. ──
	failoversBefore := tr.routers[0].stats().Failovers
	evictedBefore := tr.routers[0].stats().Evicted
	resp, body = tr.post(t, tr.https[2].URL, "/v1/chaos", ChaosRequest{PartitionMS: 500})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm partition: %d %s", resp.StatusCode, body)
	}
	// Traffic for replica-2-owned sessions through replica 0 must hedge
	// to the failover owner and succeed.
	for _, si := range sessions {
		if si.home == 2 {
			postWindow(tr.https[0].URL, si)
		}
	}
	if got := tr.routers[0].stats().Failovers; got <= failoversBefore {
		t.Fatalf("failovers = %d, want > %d after partitioned-owner traffic", got, failoversBefore)
	}

	// Partition lifts: probes see replica 2 up again, the janitor kicks,
	// and every failover copy hands back (local == owned everywhere).
	waitFor(t, 5*time.Second, "failover sessions to hand back", func() bool {
		for _, rt := range tr.routers {
			st := rt.stats()
			if st.LocalSessions != st.OwnedSessions || len(st.Down) != 0 {
				return false
			}
		}
		return true
	})
	if got := tr.routers[0].stats().Evicted; got <= evictedBefore {
		t.Fatalf("evicted = %d, want > %d after hand-back", got, evictedBefore)
	}

	// Zero lifecycle loss: every session still answers its status through
	// any replica.
	for i, si := range sessions {
		gr, err := http.Get(tr.https[i%3].URL + "/v1/sessions/" + si.id)
		if err != nil {
			t.Fatalf("final status %s: %v", si.id, err)
		}
		gr.Body.Close()
		if gr.StatusCode != http.StatusOK {
			t.Fatalf("final status %s = %d, want 200", si.id, gr.StatusCode)
		}
	}
}

// TestPeerBreakerFeedsRouting checks the per-peer breaker arc directly:
// consecutive forward failures open the breaker and pull the peer into
// the effective down-set (so routing fails over without eating a forward
// deadline), and a success after the cooldown closes it again.
func TestPeerBreakerFeedsRouting(t *testing.T) {
	tr := newChaosTrio(t)
	rt := tr.routers[0]
	peer := tr.https[1].URL

	errBoom := fmt.Errorf("boom")
	rt.peerDone(peer, errBoom)
	if down := rt.effectiveDown(); down[peer] {
		t.Fatal("one failure below threshold must not down the peer")
	}
	rt.peerDone(peer, errBoom)
	if down := rt.effectiveDown(); !down[peer] {
		t.Fatal("breaker open (threshold 2) must pull the peer into the down-set")
	}
	// Cooldown expiry half-opens the breaker: the peer leaves the
	// down-set so live traffic (or a probe) can test it.
	time.Sleep(300 * time.Millisecond)
	if down := rt.effectiveDown(); down[peer] {
		t.Fatal("half-open peer must leave the down-set")
	}
	rt.peerDone(peer, nil)
	if st := rt.breakers[peer].State(); st != BreakerClosed {
		t.Fatalf("breaker after probe success = %v, want closed", st)
	}
}

// TestJanitorJitter bounds the jittered janitor interval to the
// documented [0.75, 1.25) × HealthInterval band.
func TestJanitorJitter(t *testing.T) {
	tr := newChaosTrio(t)
	rt := tr.routers[0]
	base := rt.cfg.HealthInterval
	lo, hi := time.Duration(float64(base)*0.75), time.Duration(float64(base)*1.25)
	for i := 0; i < 200; i++ {
		if d := rt.jittered(); d < lo || d >= hi {
			t.Fatalf("jittered() = %v outside [%v, %v)", d, lo, hi)
		}
	}
}
