package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
)

// Router turns one Server replica into a member of a multi-node
// deployment: a consistent-hash ring (internal/shard) maps every session
// ID to exactly one owning replica, and the router either serves a
// request locally (we own it, or it was already forwarded once) or
// proxies it to the owner. Combined with the durable store this gives
// horizontal scale-out with zero lifecycle loss:
//
//   - Any replica accepts POST /v1/sessions; mint-until-owned
//     (Config.OwnsID) guarantees the new ID is locally owned, so creation
//     never forwards and replicas can never mint colliding IDs.
//   - Per-session requests hash to their owner. Non-owners forward with
//     an X-Clear-Forwarded marker; a forwarded request is always served
//     locally, so a stale or disagreeing ring can cause at most one hop,
//     never a loop.
//   - A health janitor probes peers' /healthz. Requests owned by a down
//     replica fail over to the ring's next live node (OwnerExcluding),
//     which hydrates the session from the shared store — write-through
//     persistence means the store already holds everything the dead
//     replica acknowledged. Without a persisted checkpoint the hydrated
//     session serves from the degraded cluster baseline and replays its
//     labels (the PR 3/4 machinery); with one it resumes personalised.
//   - When the owner comes back, the janitor persists and evicts the
//     failover copy — and notifies the owner to re-hydrate from the store
//     first, so it never serves the stale copy it held before losing
//     ownership — so exactly one replica serves each session again.
//
// The ring is a runtime concept (shard.Membership): every view carries a
// monotonic epoch, replicas join/leave/drain without a restart
// (membership.go), forwards carry the sender's epoch so a disagreeing
// pair re-resolves against the newer view instead of serving stale
// ownership or looping, and every persist is fenced at
// {epoch, per-session seq} so a lagging ex-owner's write loses at the
// store. The down-set still handles transient deaths within an epoch.

// forwardedHeader marks a proxied request; its value is the forwarding
// node. Its presence forces local serving — the one-hop loop guard.
const forwardedHeader = "X-Clear-Forwarded"

// epochHeader carries the sender's ring epoch on every forward. The
// receiver compares it with its own: a newer request epoch makes the
// receiver pull the sender's view before serving; an older one makes the
// receiver refuse with 421 + its epoch (when it does not own the ID under
// its newer ring) so the sender catches up and re-resolves — never a loop,
// never serving under a ring both sides know is stale.
const epochHeader = "X-Ring-Epoch"

// nodeHeader names the replica whose handler produced the response body.
// chaosGate stamps it on every response; a proxied response relays the
// upstream's value instead (tryForward drops the local stamp before
// copying), so clients and the loadgen's stitching probe can always tell
// which replica actually served them.
const nodeHeader = "X-Clear-Node"

// federationHeader marks a fleet fan-out request (federated trace lookup
// or fleet report scrape). A peer seeing it answers from local state
// only — the loop guard that keeps federation at exactly one hop.
const federationHeader = "X-Clear-Federated"

// errPeerProbe feeds a failed /healthz probe into the peer's breaker.
var errPeerProbe = errors.New("serve: peer healthz probe failed")

// Proxy telemetry: outcome ∈ {ok, error, timeout}; target cardinality is
// the (small, fixed) peer list.
var (
	mProxyVec   = obs.GetCounterVec("serve.proxy", "target", "outcome")
	hProxyLatUS = obs.GetHistogramVec("serve.proxy_latency_us", obs.ExpBuckets(1, 2, 26), "target")
	mEvicted    = obs.GetCounter("serve.sessions_evicted")
)

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Self is this replica's node name and the base URL peers reach it at
	// (e.g. "http://127.0.0.1:8081"). A replica whose Self is NOT in the
	// initial ring boots as a standby: it owns nothing and forwards
	// everything until an admin join admits it.
	Self string
	// Ring is the initial placement ring, the epoch-1 membership. Every
	// replica must be built with the same node list (order-insensitive:
	// the ring sorts). Ignored when Membership is set.
	Ring *shard.Ring
	// Membership, when set, is the versioned ring to route by (shared with
	// the embedding binary's OwnsID predicate). When nil one is derived
	// from Ring at epoch 1.
	Membership *shard.Membership
	// DrainTimeout bounds Drain's handoff loop: a draining replica that
	// cannot land every owned session durably within it exits with an
	// explicit drain_incomplete error instead of silently dropping them.
	// Default 30s.
	DrainTimeout time.Duration
	// HealthInterval is the peer probe + janitor cadence. Each tick is
	// jittered ±25% so a restarted node's peers don't probe in lockstep
	// (thundering-herd on recovery). Default 500ms.
	HealthInterval time.Duration
	// ForwardTimeout bounds a proxied request end to end (all attempts).
	// Default 30s.
	ForwardTimeout time.Duration
	// ForwardAttemptTimeout is the per-attempt forward deadline: an owner
	// that hasn't answered within it is presumed partitioned and the
	// request makes its single hedged retry to the OwnerExcluding
	// failover target. Default 2s (capped at ForwardTimeout).
	ForwardAttemptTimeout time.Duration
	// PeerBreakerThreshold consecutive forward failures to one peer open
	// its breaker for PeerBreakerCooldown: the peer joins the effective
	// down-set, so requests fail over immediately instead of each eating
	// a forward deadline. Healthz probe outcomes feed the breakers too,
	// closing them (and triggering proactive hand-back) on recovery.
	// Defaults 3 and 2s.
	PeerBreakerThreshold int
	PeerBreakerCooldown  time.Duration
}

// Router proxies per-session requests to their ring owner.
type Router struct {
	srv    *Server
	cfg    RouterConfig
	memb   *shard.Membership
	client *http.Client
	probe  *http.Client

	// drain tracks graceful-drain progress (membership.go).
	drain drainState

	mu       sync.Mutex
	down     map[string]bool
	breakers map[string]*Breaker // per-peer forward breakers (lazily grown on join)

	// kick wakes the janitor immediately (buffered, coalescing): fired on
	// a peer's down→up probe transition or its breaker re-closing, so
	// failover-held sessions hand back proactively instead of waiting out
	// the next janitor tick.
	kick chan struct{}

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mForwards  *obs.Counter
	mFailovers *obs.Counter
}

// NewRouter builds a router around srv and starts its health janitor.
// Callers must Stop it before the process exits.
func NewRouter(srv *Server, cfg RouterConfig) *Router {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.ForwardAttemptTimeout <= 0 {
		cfg.ForwardAttemptTimeout = 2 * time.Second
	}
	if cfg.ForwardAttemptTimeout > cfg.ForwardTimeout {
		cfg.ForwardAttemptTimeout = cfg.ForwardTimeout
	}
	if cfg.PeerBreakerThreshold <= 0 {
		cfg.PeerBreakerThreshold = 3
	}
	if cfg.PeerBreakerCooldown <= 0 {
		cfg.PeerBreakerCooldown = 2 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	memb := cfg.Membership
	if memb == nil {
		memb = shard.NewMembership(cfg.Ring.Nodes(), cfg.Ring.VNodes())
	}
	rt := &Router{
		srv:        srv,
		cfg:        cfg,
		memb:       memb,
		client:     &http.Client{Timeout: cfg.ForwardTimeout},
		probe:      &http.Client{Timeout: cfg.HealthInterval},
		down:       map[string]bool{},
		breakers:   map[string]*Breaker{},
		kick:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		mForwards:  obs.GetCounter("serve.forwards"),
		mFailovers: obs.GetCounter("serve.failovers"),
	}
	for _, node := range memb.View().Members {
		if node != cfg.Self {
			rt.breakers[node] = NewBreaker(cfg.PeerBreakerThreshold, cfg.PeerBreakerCooldown)
		}
	}
	srv.SetShardStats(rt.stats)
	srv.SetMembershipStats(rt.membStats)
	srv.SetEpochSource(memb.Epoch)
	rt.wg.Add(1)
	go rt.healthLoop()
	return rt
}

// Membership exposes the router's versioned ring (the embedding binary's
// OwnsID predicate and tests read it).
func (rt *Router) Membership() *shard.Membership { return rt.memb }

// view snapshots the current membership.
func (rt *Router) view() shard.View { return rt.memb.View() }

// breakerFor returns node's forward breaker, creating one on first use —
// peers admitted by a runtime join get breakers lazily.
func (rt *Router) breakerFor(node string) *Breaker {
	if node == rt.cfg.Self {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	br := rt.breakers[node]
	if br == nil {
		br = NewBreaker(rt.cfg.PeerBreakerThreshold, rt.cfg.PeerBreakerCooldown)
		rt.breakers[node] = br
	}
	return br
}

// Stop halts the health janitor.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopc) })
	rt.wg.Wait()
}

// Handler mirrors Server.Handler with per-session routes wrapped in
// ownership routing. Registry-independent routes (create, stats, slo,
// traces, health, obs) are always local.
func (rt *Router) Handler() http.Handler {
	s := rt.srv
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", rt.routeCreate(s.traced("sessions", s.handleCreate)))
	mux.HandleFunc("POST /v1/sessions/{id}/windows", rt.route("windows", s.handleWindow))
	mux.HandleFunc("POST /v1/sessions/{id}/labels", rt.route("labels", s.handleLabels))
	mux.HandleFunc("GET /v1/sessions/{id}", rt.route("status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.route("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/stats", s.traced("stats", s.handleStats))
	mux.HandleFunc("GET /v1/slo", s.traced("slo", s.handleSLO))
	// Fleet observability (fleet.go): traces federate across the ring (a
	// node that doesn't hold the id fans out to peers and stitches the
	// returned segments), /v1/fleet merges every member's stats/SLO/events
	// into one report, /v1/events serves this node's journal segment.
	mux.HandleFunc("GET /v1/traces/{id}", s.traced("traces", rt.handleFederatedTrace))
	mux.HandleFunc("GET /v1/fleet", s.traced("fleet", rt.handleFleet))
	mux.HandleFunc("GET /v1/events", s.traced("events", s.handleEvents))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	// Live topology (membership.go): read the view, mutate it (admin), the
	// replica-to-replica view sync, and the handoff rehydrate notification.
	// Sync and rehydrate run traced so the caller's rpc trace id joins the
	// receiving replica's segment.
	mux.HandleFunc("GET /v1/membership", rt.handleMembershipGet)
	mux.HandleFunc("POST /v1/membership", rt.handleMembershipPost)
	mux.HandleFunc("POST /v1/membership/sync", s.traced("membership_sync", rt.handleMembershipSync))
	mux.HandleFunc("POST /v1/rehydrate", s.traced("rehydrate", rt.handleRehydrate))
	oh := obs.Handler()
	mux.Handle("/metrics", oh)
	mux.Handle("/debug/", oh)
	return s.chaosGate(mux)
}

// route serves a per-session endpoint locally when this replica owns the
// ID (or the request already hopped once), else forwards to the owner.
func (rt *Router) route(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	local := rt.srv.traced(endpoint, h)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			rt.serveForwarded(w, r, local)
			return
		}
		id := r.PathValue("id")
		if rt.Draining() && rt.srv.HasLocal(id) {
			// Graceful drain: sessions whose handoff hasn't landed yet keep
			// serving here; once handed off, ownership routes them away.
			local(w, r)
			return
		}
		owner, failover := rt.ownerFor(id)
		if owner == "" || owner == rt.cfg.Self {
			local(w, r)
			return
		}
		if failover {
			rt.mFailovers.Inc()
		}
		rt.forward(w, r, endpoint, owner, local)
	}
}

// serveForwarded handles a request that already hopped once, fencing it
// by epoch. Same epoch (or a pre-epoch sender): serve — the one-hop
// guard's invariant. A newer request epoch means this replica missed a
// topology change: pull the sender's view, adopt it, then serve (the
// sender resolved ownership under that newer ring). An older request
// epoch means the sender is stale: serve only if this replica owns the
// ID under its newer ring (or still holds it live); otherwise answer 421
// with the local epoch so the sender catches up and re-resolves — never
// serve under a placement both sides can see is stale, and never loop.
func (rt *Router) serveForwarded(w http.ResponseWriter, r *http.Request, local http.HandlerFunc) {
	reqEpoch, _ := strconv.ParseUint(r.Header.Get(epochHeader), 10, 64)
	v := rt.view()
	switch {
	case reqEpoch > v.Epoch:
		if from := r.Header.Get(forwardedHeader); from != "" {
			rt.pullViewFrom(from)
		}
		local(w, r)
	case reqEpoch != 0 && reqEpoch < v.Epoch:
		id := r.PathValue("id")
		owner, _ := rt.ownerFor(id)
		if owner == "" || owner == rt.cfg.Self || rt.srv.HasLocal(id) {
			local(w, r)
			return
		}
		w.Header().Set(epochHeader, strconv.FormatUint(v.Epoch, 10))
		writeJSON(w, http.StatusMisdirectedRequest,
			errorResponse{Error: "serve: ring epoch mismatch: request resolved under a stale view"})
	default:
		local(w, r)
	}
}

// routeCreate serves session creation locally when this replica is a ring
// member, and forwards it to a live member otherwise — a standby (booted
// outside the ring, awaiting its join) or a drained replica can still
// accept client traffic without minting sessions it could never own.
// While shedding (graceful drain) creation stays local so the 503 +
// Retry-After admission-control answer reaches the client.
func (rt *Router) routeCreate(local http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v := rt.view()
		if r.Header.Get(forwardedHeader) != "" || v.Contains(rt.cfg.Self) || rt.Draining() {
			local(w, r)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		tr := obs.NewTraceFromParent("proxy.sessions", r.Header.Get("traceparent"))
		down := rt.effectiveDown()
		for _, member := range v.Members {
			if member == rt.cfg.Self || down[member] {
				continue
			}
			if rt.tryForward(w, r, member, body, tr) == fwdOK {
				rt.mForwards.Inc()
				tr.Finish()
				rt.srv.traces.Add(tr)
				return
			}
		}
		// No live member reachable: serve locally (single-node fallback),
		// under the same trace id the forward attempts carried.
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.Header.Set("traceparent", tr.Traceparent())
		local(w, r)
	}
}

// effectiveDown is the routing down-set: peers the janitor probed down,
// plus peers whose forward breaker is open (answering healthz but failing
// forwards — an asymmetric partition). Breaker cooldown expiry promotes
// open → half-open, which drops the peer from this set so live traffic
// can probe it.
func (rt *Router) effectiveDown() map[string]bool {
	down := map[string]bool{}
	rt.mu.Lock()
	for n := range rt.down {
		down[n] = true
	}
	brs := make(map[string]*Breaker, len(rt.breakers))
	for n, br := range rt.breakers {
		brs[n] = br
	}
	rt.mu.Unlock()
	for n, br := range brs {
		if br.State() == BreakerOpen {
			down[n] = true
		}
	}
	return down
}

// ownerFor resolves an ID's live owner under the current view: the ring
// owner, skipping the effective down-set. failover reports that the
// primary owner was skipped.
func (rt *Router) ownerFor(id string) (owner string, failover bool) {
	ring := rt.view().Ring()
	down := rt.effectiveDown()
	primary := ring.Owner(id)
	if len(down) == 0 {
		return primary, false
	}
	o := ring.OwnerExcluding(id, down)
	return o, o != primary && o != ""
}

// fwdStatus classifies one forward attempt.
type fwdStatus int

const (
	// fwdOK: the peer answered and its response was relayed verbatim.
	fwdOK fwdStatus = iota
	// fwdFail: transport error or attempt deadline; nothing was written,
	// the caller can hedge or serve locally.
	fwdFail
	// fwdMisdirected: the peer refused with 421 + its (newer) epoch —
	// ownership was resolved under a stale view. Nothing was written; the
	// caller pulls the peer's view and re-resolves.
	fwdMisdirected
)

// forward proxies one request to owner, falling back — once — to the
// next live node (or local serving) when the owner turns out dead or
// misses the per-attempt deadline: the single hedged retry. A 421
// epoch-mismatch refusal instead pulls the refusing peer's newer view,
// re-resolves ownership under it, and makes one corrected forward (or
// serves locally if the newer ring points here) — bounded, never a loop.
// The round-trip is attributed to StageProxy for the windows endpoint so
// Σ stages keeps tiling wall time on the hot path.
//
// The hop runs under its own trace segment continuing the client's
// traceparent (or minting a fresh 128-bit id): each attempt records a
// `forward` span carrying the peer and ring epoch, the outgoing request
// carries the segment's traceparent so the owner's handler trace joins
// the same id, and on a relayed response the segment is retained locally
// — so GET /v1/traces/{id} federates into one tree spanning both hops.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, endpoint, owner string, local http.HandlerFunc) {
	var st *obs.StageTimer
	if endpoint == "windows" {
		st = obs.NewStageTimer()
	}
	stop := st.Time(obs.StageProxy)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		stop()
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	tr := obs.NewTraceFromParent("proxy."+endpoint, r.Header.Get("traceparent"))
	serveLocal := func() {
		stop()
		// Local serving replaces the proxy segment: hand the handler the
		// same trace id so its traced() segment keeps the client's id.
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.Header.Set("traceparent", tr.Traceparent())
		local(w, r)
	}
	switch rt.tryForward(w, r, owner, body, tr) {
	case fwdFail:
		// The owner died under us: mark it down and re-resolve. The
		// failover owner hydrates from the shared store; when it is this
		// replica, serve locally (restoring r.Body for the handler).
		rt.markDown(owner, true)
		rt.mFailovers.Inc()
		next, _ := rt.ownerFor(r.PathValue("id"))
		if next == "" || next == rt.cfg.Self || next == owner {
			serveLocal()
			return
		}
		if rt.tryForward(w, r, next, body, tr) != fwdOK {
			rt.markDown(next, true)
			serveLocal()
			return
		}
	case fwdMisdirected:
		// Our view was stale: adopt the peer's, re-resolve, one retry.
		rt.pullViewFrom(owner)
		next, _ := rt.ownerFor(r.PathValue("id"))
		if next == "" || next == rt.cfg.Self {
			serveLocal()
			return
		}
		if rt.tryForward(w, r, next, body, tr) != fwdOK {
			serveLocal()
			return
		}
	}
	stop()
	rt.mForwards.Inc()
	tr.Finish()
	rt.srv.traces.Add(tr)
	if st != nil {
		st.FlushTo(hStageUS)
	}
}

// tryForward attempts one proxied round-trip under the per-attempt
// deadline, streaming the response through verbatim (status, headers,
// body) and stamping the forward with this replica's ring epoch and the
// proxy trace's traceparent (so the peer's handler segment joins the
// same 128-bit trace id). The hop is recorded on tr as a `forward` span
// carrying the peer, the epoch it was sent under, and its outcome. A
// transport error, deadline miss, or epoch-mismatch 421 returns with
// nothing written — the caller can still hedge, re-resolve, or serve
// locally; any other upstream answer is relayed as-is. Each attempt's
// outcome feeds the target's breaker, except when the caller itself
// gave up (its error, not the peer's).
func (rt *Router) tryForward(w http.ResponseWriter, r *http.Request, target string, body []byte, tr *obs.Trace) fwdStatus {
	start := time.Now()
	epoch := rt.view().Epoch
	sp := tr.Start("forward")
	sp.SetAttr("peer", target)
	sp.SetAttr("epoch", strconv.FormatUint(epoch, 10))
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method,
		target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		mProxyVec.With(target, "error").Inc()
		sp.Fail(err)
		return fwdFail
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, rt.cfg.Self)
	req.Header.Set(epochHeader, strconv.FormatUint(epoch, 10))
	if tp := tr.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := rt.client.Do(req)
	hProxyLatUS.With(target).Observe(float64(time.Since(start).Microseconds()))
	if err != nil {
		outcome := "error"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			outcome = "timeout" // attempt deadline fired: peer presumed partitioned
		}
		mProxyVec.With(target, outcome).Inc()
		sp.SetAttr("outcome", outcome)
		sp.Fail(err)
		if r.Context().Err() == nil {
			rt.peerDone(target, err)
		}
		return fwdFail
	}
	rt.peerDone(target, nil)
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusMisdirectedRequest && resp.Header.Get(epochHeader) != "" {
		io.Copy(io.Discard, resp.Body)
		mProxyVec.With(target, "misdirected").Inc()
		sp.SetAttr("outcome", "misdirected")
		sp.End()
		return fwdMisdirected
	}
	// Drop the local node stamp so the relayed response keeps the serving
	// replica's — the header names whoever produced the body.
	w.Header().Del(nodeHeader)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	mProxyVec.With(target, "ok").Inc()
	sp.SetAttr("outcome", "ok")
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	sp.End()
	return fwdOK
}

// markDown updates one node's health, logging transitions. A down→up
// transition kicks the janitor so failover-held sessions hand back
// immediately instead of waiting out the next tick.
func (rt *Router) markDown(node string, down bool) {
	if node == rt.cfg.Self {
		return
	}
	rt.mu.Lock()
	was := rt.down[node]
	if down {
		rt.down[node] = true
	} else {
		delete(rt.down, node)
	}
	rt.mu.Unlock()
	if was != down {
		obs.Logger().Info("peer health changed", "peer", node, "down", down)
		kind := "peer_up"
		if down {
			kind = "peer_down"
		}
		rt.srv.journal.Record(context.Background(), kind, "peer %s", node)
		if !down {
			rt.kickJanitor()
		}
	}
}

// peerDone feeds one forward/probe outcome into node's breaker. The
// State() call first lazily promotes an expired open breaker to
// half-open, so a success can close it. A transition back to closed
// kicks the janitor: the owner is healthy again, hand sessions back now.
func (rt *Router) peerDone(node string, err error) {
	br := rt.breakerFor(node)
	if br == nil {
		return
	}
	before := br.State()
	br.Done(err)
	after := br.State()
	if before == after {
		return
	}
	obs.Logger().Info("peer breaker transition",
		"peer", node, "from", before.String(), "to", after.String())
	rt.srv.journal.Record(context.Background(), "peer_breaker",
		"peer %s: %s -> %s", node, before, after)
	if after == BreakerClosed {
		rt.kickJanitor()
	}
}

// kickJanitor wakes healthLoop immediately (coalescing: a pending kick
// is enough).
func (rt *Router) kickJanitor() {
	select {
	case rt.kick <- struct{}{}:
	default:
	}
}

// jittered spreads janitor ticks across [0.75, 1.25)×HealthInterval so
// replicas started together — or all watching the same peer recover —
// don't probe and hand back in lockstep.
func (rt *Router) jittered() time.Duration {
	return time.Duration(float64(rt.cfg.HealthInterval) * (0.75 + 0.5*rand.Float64()))
}

// healthLoop probes peers and runs the ownership janitor on one jittered
// cadence, waking early on kicks (peer recovery, breaker re-close).
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	t := time.NewTimer(rt.jittered())
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-rt.kick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		case <-rt.stopc:
			return
		}
		rt.probePeers()
		rt.evictNotOwned()
		t.Reset(rt.jittered())
	}
}

// probePeers refreshes the down-set (and each peer's breaker) from every
// member's /healthz. The probe doubles as the anti-entropy path for the
// membership view: a peer reporting a higher epoch — or the same epoch
// with a different member-set hash — makes this replica pull and adopt
// its view, so a replica that missed a join/leave broadcast converges
// within one probe interval. (A standby probes all members; its Self is
// simply absent from the list.)
func (rt *Router) probePeers() {
	v := rt.view()
	for _, node := range v.Members {
		if node == rt.cfg.Self {
			continue
		}
		resp, err := rt.probe.Get(node + "/healthz")
		up := err == nil && resp.StatusCode == http.StatusOK
		var hz HealthzResponse
		if resp != nil {
			if up {
				_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&hz)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if up {
			rt.peerDone(node, nil)
		} else {
			rt.peerDone(node, errPeerProbe)
		}
		rt.markDown(node, !up)
		if up && (hz.Epoch > v.Epoch || (hz.Epoch == v.Epoch && hz.MembersHash != "" && hz.MembersHash != v.Hash())) {
			rt.pullViewFrom(node)
			v = rt.view()
		}
	}
}

// evictNotOwned persists-then-evicts local live sessions whose live owner
// is another (up) replica: the failover copies this node accumulated
// while a peer was down, handed back now that the peer recovered. The
// hand-back is a three-step handshake — persist, notify the owner to
// re-hydrate from the store, evict — in that order. Persist-first means
// the returning owner hydrates state at least as fresh as anything we
// served, so a failed (or deferred, store-breaker-open) persist keeps the
// session here. Notify-before-evict closes the stale-copy hole: the owner
// drops whatever pre-partition copy it still holds and re-reads the
// store before any request routes back to it; a failed notify also keeps
// the session here for the next tick, because evicting without it would
// let the owner serve its stale copy.
func (rt *Router) evictNotOwned() {
	if rt.Draining() {
		return // Drain's handoff loop owns eviction while draining
	}
	s := rt.srv
	s.mu.RLock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	for _, id := range ids {
		owner, _ := rt.ownerFor(id)
		if owner == "" || owner == rt.cfg.Self {
			continue
		}
		sess, err := s.Session(id)
		if err != nil {
			continue
		}
		if err := s.persistSession(context.Background(), sess); err != nil && !errors.Is(err, store.ErrFenced) {
			obs.Logger().Warn("hand-back deferred: persist failed",
				"session", id, "owner", owner, "err", err)
			continue
		}
		if err := rt.notifyRehydrate(owner, id); err != nil {
			obs.Logger().Warn("hand-back deferred: rehydrate notify failed",
				"session", id, "owner", owner, "err", err)
			continue
		}
		if s.evictSession(id) {
			mEvicted.Inc()
			obs.Logger().Info("session handed back", "session", id, "owner", owner)
		}
	}
}

// ShardStats is the consistent-hash routing block of /v1/stats.
type ShardStats struct {
	Self  string   `json:"self"`
	Nodes []string `json:"nodes"`
	Down  []string `json:"down,omitempty"`
	// OwnedSessions counts live local sessions this replica owns under
	// the ring; LocalSessions counts all live local sessions (the
	// difference is failover copies pending hand-back).
	OwnedSessions int   `json:"owned_sessions"`
	LocalSessions int   `json:"local_sessions"`
	Forwards      int64 `json:"forwards"`
	Failovers     int64 `json:"failovers"`
	Evicted       int64 `json:"evicted_sessions"`
	// PeerBreakers maps each peer to its forward-breaker state; an "open"
	// peer routes as down even while its /healthz still answers.
	PeerBreakers map[string]string `json:"peer_breakers,omitempty"`
}

// stats snapshots the routing surface for Server.Stats.
func (rt *Router) stats() *ShardStats {
	v := rt.view()
	ring := v.Ring()
	s := rt.srv
	s.mu.RLock()
	local := len(s.sessions)
	owned := 0
	for id := range s.sessions {
		if ring.Owner(id) == rt.cfg.Self {
			owned++
		}
	}
	s.mu.RUnlock()
	rt.mu.Lock()
	down := make([]string, 0, len(rt.down))
	for n := range rt.down {
		down = append(down, n)
	}
	breakers := make(map[string]string, len(rt.breakers))
	for n, br := range rt.breakers {
		breakers[n] = br.State().String()
	}
	rt.mu.Unlock()
	sort.Strings(down)
	return &ShardStats{
		Self:          rt.cfg.Self,
		Nodes:         v.Members,
		Down:          down,
		OwnedSessions: owned,
		LocalSessions: local,
		Forwards:      rt.mForwards.Value(),
		Failovers:     rt.mFailovers.Value(),
		Evicted:       mEvicted.Value(),
		PeerBreakers:  breakers,
	}
}
