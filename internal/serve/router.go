package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Router turns one Server replica into a member of a multi-node
// deployment: a consistent-hash ring (internal/shard) maps every session
// ID to exactly one owning replica, and the router either serves a
// request locally (we own it, or it was already forwarded once) or
// proxies it to the owner. Combined with the durable store this gives
// horizontal scale-out with zero lifecycle loss:
//
//   - Any replica accepts POST /v1/sessions; mint-until-owned
//     (Config.OwnsID) guarantees the new ID is locally owned, so creation
//     never forwards and replicas can never mint colliding IDs.
//   - Per-session requests hash to their owner. Non-owners forward with
//     an X-Clear-Forwarded marker; a forwarded request is always served
//     locally, so a stale or disagreeing ring can cause at most one hop,
//     never a loop.
//   - A health janitor probes peers' /healthz. Requests owned by a down
//     replica fail over to the ring's next live node (OwnerExcluding),
//     which hydrates the session from the shared store — write-through
//     persistence means the store already holds everything the dead
//     replica acknowledged. Without a persisted checkpoint the hydrated
//     session serves from the degraded cluster baseline and replays its
//     labels (the PR 3/4 machinery); with one it resumes personalised.
//   - When the owner comes back, the janitor persists and evicts the
//     failover copy so exactly one replica serves each session again.
//
// The ring itself is static per process (topology changes are rolling
// restarts with a new -peers list); the down-set handles transient
// deaths between restarts.

// forwardedHeader marks a proxied request; its value is the forwarding
// node. Its presence forces local serving — the one-hop loop guard.
const forwardedHeader = "X-Clear-Forwarded"

// errPeerProbe feeds a failed /healthz probe into the peer's breaker.
var errPeerProbe = errors.New("serve: peer healthz probe failed")

// Proxy telemetry: outcome ∈ {ok, error, timeout}; target cardinality is
// the (small, fixed) peer list.
var (
	mProxyVec   = obs.GetCounterVec("serve.proxy", "target", "outcome")
	hProxyLatUS = obs.GetHistogramVec("serve.proxy_latency_us", obs.ExpBuckets(1, 2, 26), "target")
	mEvicted    = obs.GetCounter("serve.sessions_evicted")
)

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Self is this replica's node name, which must be one of Ring's nodes
	// and the base URL peers reach it at (e.g. "http://127.0.0.1:8081").
	Self string
	// Ring is the shared placement ring. Every replica must be built with
	// the same node list (order-insensitive: the ring sorts).
	Ring *shard.Ring
	// HealthInterval is the peer probe + janitor cadence. Each tick is
	// jittered ±25% so a restarted node's peers don't probe in lockstep
	// (thundering-herd on recovery). Default 500ms.
	HealthInterval time.Duration
	// ForwardTimeout bounds a proxied request end to end (all attempts).
	// Default 30s.
	ForwardTimeout time.Duration
	// ForwardAttemptTimeout is the per-attempt forward deadline: an owner
	// that hasn't answered within it is presumed partitioned and the
	// request makes its single hedged retry to the OwnerExcluding
	// failover target. Default 2s (capped at ForwardTimeout).
	ForwardAttemptTimeout time.Duration
	// PeerBreakerThreshold consecutive forward failures to one peer open
	// its breaker for PeerBreakerCooldown: the peer joins the effective
	// down-set, so requests fail over immediately instead of each eating
	// a forward deadline. Healthz probe outcomes feed the breakers too,
	// closing them (and triggering proactive hand-back) on recovery.
	// Defaults 3 and 2s.
	PeerBreakerThreshold int
	PeerBreakerCooldown  time.Duration
}

// Router proxies per-session requests to their ring owner.
type Router struct {
	srv    *Server
	cfg    RouterConfig
	client *http.Client
	probe  *http.Client

	mu       sync.Mutex
	down     map[string]bool
	breakers map[string]*Breaker // per-peer forward breakers

	// kick wakes the janitor immediately (buffered, coalescing): fired on
	// a peer's down→up probe transition or its breaker re-closing, so
	// failover-held sessions hand back proactively instead of waiting out
	// the next janitor tick.
	kick chan struct{}

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mForwards  *obs.Counter
	mFailovers *obs.Counter
}

// NewRouter builds a router around srv and starts its health janitor.
// Callers must Stop it before the process exits.
func NewRouter(srv *Server, cfg RouterConfig) *Router {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.ForwardAttemptTimeout <= 0 {
		cfg.ForwardAttemptTimeout = 2 * time.Second
	}
	if cfg.ForwardAttemptTimeout > cfg.ForwardTimeout {
		cfg.ForwardAttemptTimeout = cfg.ForwardTimeout
	}
	if cfg.PeerBreakerThreshold <= 0 {
		cfg.PeerBreakerThreshold = 3
	}
	if cfg.PeerBreakerCooldown <= 0 {
		cfg.PeerBreakerCooldown = 2 * time.Second
	}
	rt := &Router{
		srv:        srv,
		cfg:        cfg,
		client:     &http.Client{Timeout: cfg.ForwardTimeout},
		probe:      &http.Client{Timeout: cfg.HealthInterval},
		down:       map[string]bool{},
		breakers:   map[string]*Breaker{},
		kick:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		mForwards:  obs.GetCounter("serve.forwards"),
		mFailovers: obs.GetCounter("serve.failovers"),
	}
	for _, node := range cfg.Ring.Nodes() {
		if node != cfg.Self {
			rt.breakers[node] = NewBreaker(cfg.PeerBreakerThreshold, cfg.PeerBreakerCooldown)
		}
	}
	srv.SetShardStats(rt.stats)
	rt.wg.Add(1)
	go rt.healthLoop()
	return rt
}

// Stop halts the health janitor.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopc) })
	rt.wg.Wait()
}

// Handler mirrors Server.Handler with per-session routes wrapped in
// ownership routing. Registry-independent routes (create, stats, slo,
// traces, health, obs) are always local.
func (rt *Router) Handler() http.Handler {
	s := rt.srv
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.traced("sessions", s.handleCreate))
	mux.HandleFunc("POST /v1/sessions/{id}/windows", rt.route("windows", s.handleWindow))
	mux.HandleFunc("POST /v1/sessions/{id}/labels", rt.route("labels", s.handleLabels))
	mux.HandleFunc("GET /v1/sessions/{id}", rt.route("status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.route("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/stats", s.traced("stats", s.handleStats))
	mux.HandleFunc("GET /v1/slo", s.traced("slo", s.handleSLO))
	mux.HandleFunc("GET /v1/traces/{id}", s.traced("traces", s.handleTrace))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	oh := obs.Handler()
	mux.Handle("/metrics", oh)
	mux.Handle("/debug/", oh)
	return s.chaosGate(mux)
}

// route serves a per-session endpoint locally when this replica owns the
// ID (or the request already hopped once), else forwards to the owner.
func (rt *Router) route(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	local := rt.srv.traced(endpoint, h)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			local(w, r)
			return
		}
		owner, failover := rt.ownerFor(r.PathValue("id"))
		if owner == "" || owner == rt.cfg.Self {
			local(w, r)
			return
		}
		if failover {
			rt.mFailovers.Inc()
		}
		rt.forward(w, r, endpoint, owner, local)
	}
}

// effectiveDown is the routing down-set: peers the janitor probed down,
// plus peers whose forward breaker is open (answering healthz but failing
// forwards — an asymmetric partition). Breaker cooldown expiry promotes
// open → half-open, which drops the peer from this set so live traffic
// can probe it.
func (rt *Router) effectiveDown() map[string]bool {
	down := map[string]bool{}
	rt.mu.Lock()
	for n := range rt.down {
		down[n] = true
	}
	rt.mu.Unlock()
	for n, br := range rt.breakers {
		if br.State() == BreakerOpen {
			down[n] = true
		}
	}
	return down
}

// ownerFor resolves an ID's live owner: the ring owner, skipping the
// effective down-set. failover reports that the primary owner was skipped.
func (rt *Router) ownerFor(id string) (owner string, failover bool) {
	down := rt.effectiveDown()
	primary := rt.cfg.Ring.Owner(id)
	if len(down) == 0 {
		return primary, false
	}
	o := rt.cfg.Ring.OwnerExcluding(id, down)
	return o, o != primary && o != ""
}

// forward proxies one request to owner, falling back — once — to the
// next live node (or local serving) when the owner turns out dead or
// misses the per-attempt deadline: the single hedged retry. The
// round-trip is attributed to StageProxy for the windows endpoint so
// Σ stages keeps tiling wall time on the hot path.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, endpoint, owner string, local http.HandlerFunc) {
	var st *obs.StageTimer
	if endpoint == "windows" {
		st = obs.NewStageTimer()
	}
	stop := st.Time(obs.StageProxy)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		stop()
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ok := rt.tryForward(w, r, owner, body)
	if !ok {
		// The owner died under us: mark it down and re-resolve. The
		// failover owner hydrates from the shared store; when it is this
		// replica, serve locally (restoring r.Body for the handler).
		rt.markDown(owner, true)
		rt.mFailovers.Inc()
		next, _ := rt.ownerFor(r.PathValue("id"))
		if next == "" || next == rt.cfg.Self || next == owner {
			stop()
			r.Body = io.NopCloser(bytes.NewReader(body))
			local(w, r)
			return
		}
		if !rt.tryForward(w, r, next, body) {
			rt.markDown(next, true)
			stop()
			r.Body = io.NopCloser(bytes.NewReader(body))
			local(w, r)
			return
		}
	}
	stop()
	rt.mForwards.Inc()
	if st != nil {
		st.FlushTo(hStageUS)
	}
}

// tryForward attempts one proxied round-trip under the per-attempt
// deadline, streaming the response through verbatim (status, headers,
// body). A transport error or deadline miss returns false with nothing
// written — the caller can still hedge or serve locally; once the
// upstream responded, its answer is relayed as-is. Each attempt's
// outcome feeds the target's breaker, except when the caller itself
// gave up (its error, not the peer's).
func (rt *Router) tryForward(w http.ResponseWriter, r *http.Request, target string, body []byte) bool {
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method,
		target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		mProxyVec.With(target, "error").Inc()
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, rt.cfg.Self)
	resp, err := rt.client.Do(req)
	hProxyLatUS.With(target).Observe(float64(time.Since(start).Microseconds()))
	if err != nil {
		outcome := "error"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			outcome = "timeout" // attempt deadline fired: peer presumed partitioned
		}
		mProxyVec.With(target, outcome).Inc()
		if r.Context().Err() == nil {
			rt.peerDone(target, err)
		}
		return false
	}
	rt.peerDone(target, nil)
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	mProxyVec.With(target, "ok").Inc()
	return true
}

// markDown updates one node's health, logging transitions. A down→up
// transition kicks the janitor so failover-held sessions hand back
// immediately instead of waiting out the next tick.
func (rt *Router) markDown(node string, down bool) {
	if node == rt.cfg.Self {
		return
	}
	rt.mu.Lock()
	was := rt.down[node]
	if down {
		rt.down[node] = true
	} else {
		delete(rt.down, node)
	}
	rt.mu.Unlock()
	if was != down {
		obs.Logger().Info("peer health changed", "peer", node, "down", down)
		if !down {
			rt.kickJanitor()
		}
	}
}

// peerDone feeds one forward/probe outcome into node's breaker. The
// State() call first lazily promotes an expired open breaker to
// half-open, so a success can close it. A transition back to closed
// kicks the janitor: the owner is healthy again, hand sessions back now.
func (rt *Router) peerDone(node string, err error) {
	br := rt.breakers[node]
	if br == nil {
		return
	}
	before := br.State()
	br.Done(err)
	after := br.State()
	if before == after {
		return
	}
	obs.Logger().Info("peer breaker transition",
		"peer", node, "from", before.String(), "to", after.String())
	if after == BreakerClosed {
		rt.kickJanitor()
	}
}

// kickJanitor wakes healthLoop immediately (coalescing: a pending kick
// is enough).
func (rt *Router) kickJanitor() {
	select {
	case rt.kick <- struct{}{}:
	default:
	}
}

// jittered spreads janitor ticks across [0.75, 1.25)×HealthInterval so
// replicas started together — or all watching the same peer recover —
// don't probe and hand back in lockstep.
func (rt *Router) jittered() time.Duration {
	return time.Duration(float64(rt.cfg.HealthInterval) * (0.75 + 0.5*rand.Float64()))
}

// healthLoop probes peers and runs the ownership janitor on one jittered
// cadence, waking early on kicks (peer recovery, breaker re-close).
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	t := time.NewTimer(rt.jittered())
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-rt.kick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		case <-rt.stopc:
			return
		}
		rt.probePeers()
		rt.evictNotOwned()
		t.Reset(rt.jittered())
	}
}

// probePeers refreshes the down-set (and each peer's breaker) from every
// peer's /healthz.
func (rt *Router) probePeers() {
	for _, node := range rt.cfg.Ring.Nodes() {
		if node == rt.cfg.Self {
			continue
		}
		resp, err := rt.probe.Get(node + "/healthz")
		up := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if up {
			rt.peerDone(node, nil)
		} else {
			rt.peerDone(node, errPeerProbe)
		}
		rt.markDown(node, !up)
	}
}

// evictNotOwned persists-then-evicts local live sessions whose live owner
// is another (up) replica: the failover copies this node accumulated
// while a peer was down, handed back now that the peer recovered. The
// persist-first ordering means the returning owner hydrates state at
// least as fresh as anything we served — so a failed (or deferred,
// store-breaker-open) persist keeps the session here until a later tick
// lands it durably.
func (rt *Router) evictNotOwned() {
	s := rt.srv
	s.mu.RLock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	for _, id := range ids {
		owner, _ := rt.ownerFor(id)
		if owner == "" || owner == rt.cfg.Self {
			continue
		}
		sess, err := s.Session(id)
		if err != nil {
			continue
		}
		if err := s.persistSession(context.Background(), sess); err != nil {
			obs.Logger().Warn("hand-back deferred: persist failed",
				"session", id, "owner", owner, "err", err)
			continue
		}
		if s.evictSession(id) {
			mEvicted.Inc()
			obs.Logger().Info("session handed back", "session", id, "owner", owner)
		}
	}
}

// ShardStats is the consistent-hash routing block of /v1/stats.
type ShardStats struct {
	Self  string   `json:"self"`
	Nodes []string `json:"nodes"`
	Down  []string `json:"down,omitempty"`
	// OwnedSessions counts live local sessions this replica owns under
	// the ring; LocalSessions counts all live local sessions (the
	// difference is failover copies pending hand-back).
	OwnedSessions int   `json:"owned_sessions"`
	LocalSessions int   `json:"local_sessions"`
	Forwards      int64 `json:"forwards"`
	Failovers     int64 `json:"failovers"`
	Evicted       int64 `json:"evicted_sessions"`
	// PeerBreakers maps each peer to its forward-breaker state; an "open"
	// peer routes as down even while its /healthz still answers.
	PeerBreakers map[string]string `json:"peer_breakers,omitempty"`
}

// stats snapshots the routing surface for Server.Stats.
func (rt *Router) stats() *ShardStats {
	s := rt.srv
	s.mu.RLock()
	local := len(s.sessions)
	owned := 0
	for id := range s.sessions {
		if rt.cfg.Ring.Owner(id) == rt.cfg.Self {
			owned++
		}
	}
	s.mu.RUnlock()
	rt.mu.Lock()
	down := make([]string, 0, len(rt.down))
	for n := range rt.down {
		down = append(down, n)
	}
	rt.mu.Unlock()
	sort.Strings(down)
	breakers := make(map[string]string, len(rt.breakers))
	for n, br := range rt.breakers {
		breakers[n] = br.State().String()
	}
	return &ShardStats{
		Self:          rt.cfg.Self,
		Nodes:         rt.cfg.Ring.Nodes(),
		Down:          down,
		OwnedSessions: owned,
		LocalSessions: local,
		Forwards:      rt.mForwards.Value(),
		Failovers:     rt.mFailovers.Value(),
		Evicted:       mEvicted.Value(),
		PeerBreakers:  breakers,
	}
}
